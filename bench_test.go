// Benchmarks regenerating every evaluation artifact of the paper (one per
// table/figure; see DESIGN.md §4 for the experiment index) plus the
// ablation benches for the design choices DESIGN.md §5 calls out.
package netarch_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"netarch"
	"netarch/internal/cardinality"
	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/experiments"
	"netarch/internal/kb"
	"netarch/internal/sat"
	"netarch/internal/topo"
)

func benchExperiment(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("shape mismatch:\n%s", res)
		}
	}
}

// BenchmarkFig1Ordering regenerates Figure 1 (F1).
func BenchmarkFig1Ordering(b *testing.B) { benchExperiment(b, experiments.RunF1) }

// BenchmarkListing1Extraction regenerates Listing 1 (L1).
func BenchmarkListing1Extraction(b *testing.B) { benchExperiment(b, experiments.RunL1) }

// BenchmarkEncodeSystem regenerates Listing 2 (L2).
func BenchmarkEncodeSystem(b *testing.B) { benchExperiment(b, experiments.RunL2) }

// BenchmarkListing3Workload regenerates Listing 3 (L3).
func BenchmarkListing3Workload(b *testing.B) { benchExperiment(b, experiments.RunL3) }

// BenchmarkQuery1 regenerates §5.1 query 1.
func BenchmarkQuery1(b *testing.B) { benchExperiment(b, experiments.RunQ1) }

// BenchmarkQuery2 regenerates §5.1 query 2.
func BenchmarkQuery2(b *testing.B) { benchExperiment(b, experiments.RunQ2) }

// BenchmarkQuery3 regenerates §5.1 query 3.
func BenchmarkQuery3(b *testing.B) { benchExperiment(b, experiments.RunQ3) }

// BenchmarkExtractionAccuracy regenerates the §4.1 table (E4.1).
func BenchmarkExtractionAccuracy(b *testing.B) { benchExperiment(b, experiments.RunE41) }

// BenchmarkEncodingCheck regenerates the §4.2 table (E4.2).
func BenchmarkEncodingCheck(b *testing.B) { benchExperiment(b, experiments.RunE42) }

// BenchmarkReasonerComparison regenerates the §5.2 table (E5.2).
func BenchmarkReasonerComparison(b *testing.B) { benchExperiment(b, experiments.RunE52) }

// BenchmarkSpecLinearity regenerates the §3.1 metric series (M3.1).
func BenchmarkSpecLinearity(b *testing.B) { benchExperiment(b, experiments.RunM31) }

// BenchmarkPFCDeadlock regenerates the PFC case table (P1).
func BenchmarkPFCDeadlock(b *testing.B) { benchExperiment(b, experiments.RunP1) }

// BenchmarkGreedyVsSAT regenerates the baseline comparison (B1).
func BenchmarkGreedyVsSAT(b *testing.B) { benchExperiment(b, experiments.RunB1) }

// BenchmarkSynthScaling measures synthesis latency against catalog size
// (S1): the series the paper's tractability bet rides on. The fraction
// tiers shrink the seed catalog; the SKU tiers grow it with the
// parameterized generators and measure relevance slicing on vs off —
// the slice=on series is the PR 10 scale-out claim (50k-SKU synthesis
// within ~2× of the 200-SKU baseline).
func BenchmarkSynthScaling(b *testing.B) {
	full := catalog.CaseStudy()
	for _, frac := range []int{25, 50, 100} {
		sub := experiments.CatalogFraction(full, frac)
		b.Run(fmt.Sprintf("catalog=%d%%", frac), func(b *testing.B) {
			eng, err := netarch.NewEngine(sub)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := eng.Synthesize(netarch.Scenario{Workloads: []string{"inference_app"}})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != netarch.Feasible {
					b.Fatal("expected feasible")
				}
			}
		})
	}
	for _, skus := range []int{5000, 20000, 50000} {
		k := catalog.ScaledCatalog(skus)
		for _, mode := range []netarch.SliceMode{netarch.SliceOn, netarch.SliceOff} {
			b.Run(fmt.Sprintf("skus=%d/slice=%s", skus, mode), func(b *testing.B) {
				eng, err := netarch.NewEngine(k)
				if err != nil {
					b.Fatal(err)
				}
				eng.SetSliceMode(mode)
				// Warm the base cache outside the timer: this benchmark
				// measures the amortized query (BenchmarkColdStart owns
				// the first-query cost), and the unsliced 20k/50k tiers
				// only reach one timed iteration, which would otherwise
				// be pure compile time.
				if _, err := eng.Synthesize(netarch.Scenario{Workloads: []string{"inference_app"}}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := eng.Synthesize(netarch.Scenario{Workloads: []string{"inference_app"}})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Verdict != netarch.Feasible {
						b.Fatal("expected feasible")
					}
				}
			})
		}
	}
}

// BenchmarkSynthWorkloadScaling measures synthesis cost as workloads
// accumulate (the §5.1 "verify how the deployment changes as we add more
// workloads" axis).
func BenchmarkSynthWorkloadScaling(b *testing.B) {
	k := catalog.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	names := []string{"inference_app", "batch_analytics", "storage_backend"}
	for n := 1; n <= 3; n++ {
		b.Run(fmt.Sprintf("workloads=%d", n), func(b *testing.B) {
			eng, err := netarch.NewEngine(k)
			if err != nil {
				b.Fatal(err)
			}
			sc := netarch.Scenario{
				Workloads:  names[:n],
				NumServers: 192,
				Context:    map[string]bool{"pfc_enabled": true},
			}
			// Setup (catalog + engine construction) must not pollute the
			// per-workload series.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Synthesize(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §5) ---------------------------------------

// hardInstance loads a phase-transition random 3-SAT instance.
func hardInstance(s *sat.Solver, seed int64, nVars int) {
	r := rand.New(rand.NewSource(seed))
	nClauses := int(4.1 * float64(nVars))
	s.EnsureVars(nVars)
	for i := 0; i < nClauses; i++ {
		c := make([]sat.Lit, 3)
		for j := range c {
			v := r.Intn(nVars) + 1
			if r.Intn(2) == 0 {
				c[j] = sat.Lit(v)
			} else {
				c[j] = sat.Lit(-v)
			}
		}
		s.AddClause(c...)
	}
}

// BenchmarkAblationNoLearning compares CDCL against plain DPLL
// (chronological backtracking, no learnt clauses).
func BenchmarkAblationNoLearning(b *testing.B) {
	for _, opts := range []struct {
		name string
		o    sat.Options
	}{
		{"cdcl", sat.Options{}},
		{"dpll", sat.Options{NoLearning: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.NewSolverOpts(opts.o)
				hardInstance(s, int64(i%4), 40)
				s.Solve()
			}
		})
	}
}

// BenchmarkAblationStaticOrder compares VSIDS against static variable
// order.
func BenchmarkAblationStaticOrder(b *testing.B) {
	for _, opts := range []struct {
		name string
		o    sat.Options
	}{
		{"vsids", sat.Options{}},
		{"static", sat.Options{StaticOrder: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.NewSolverOpts(opts.o)
				hardInstance(s, int64(i%4), 48)
				s.Solve()
			}
		})
	}
}

// BenchmarkAblationRestarts compares Luby restarts on/off.
func BenchmarkAblationRestarts(b *testing.B) {
	for _, opts := range []struct {
		name string
		o    sat.Options
	}{
		{"luby", sat.Options{}},
		{"none", sat.Options{NoRestarts: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.NewSolverOpts(opts.o)
				hardInstance(s, int64(i%4), 48)
				s.Solve()
			}
		})
	}
}

// BenchmarkAblationSimplify measures solving with and without top-level
// inprocessing (subsumption + self-subsuming resolution) on redundant
// instances of the kind the compiler emits (many overlapping clauses).
func BenchmarkAblationSimplify(b *testing.B) {
	build := func() *sat.Solver {
		r := rand.New(rand.NewSource(3))
		s := sat.NewSolver()
		nVars := 60
		s.EnsureVars(nVars)
		// Base instance plus redundant supersets of many clauses.
		for i := 0; i < 200; i++ {
			c := make([]sat.Lit, 3)
			for j := range c {
				v := r.Intn(nVars) + 1
				if r.Intn(2) == 0 {
					c[j] = sat.Lit(v)
				} else {
					c[j] = sat.Lit(-v)
				}
			}
			s.AddClause(c...)
			if r.Intn(2) == 0 {
				widened := append(append([]sat.Lit(nil), c...), sat.Lit(r.Intn(nVars)+1))
				s.AddClause(widened...)
			}
		}
		return s
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := build()
			s.Solve()
		}
	})
	b.Run("simplify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := build()
			s.Simplify()
			s.Solve()
		}
	})
}

// BenchmarkAblationCardinality compares the sequential counter and the
// totalizer as at-most-k encodings under the optimizer's workload shape.
func BenchmarkAblationCardinality(b *testing.B) {
	const n, k = 40, 12
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver()
			lits := make([]sat.Lit, n)
			for j := range lits {
				lits[j] = sat.Lit(s.NewVar())
			}
			cardinality.AtMostKSeq(s, lits, k)
			cardinality.AtLeastK(s, lits, k)
			if s.Solve() != sat.Sat {
				b.Fatal("want SAT")
			}
		}
	})
	b.Run("totalizer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver()
			lits := make([]sat.Lit, n)
			for j := range lits {
				lits[j] = sat.Lit(s.NewVar())
			}
			tot := cardinality.NewTotalizer(s, lits)
			tot.ConstrainAtMost(k)
			tot.ConstrainAtLeast(k)
			if s.Solve() != sat.Sat {
				b.Fatal("want SAT")
			}
		}
	})
}

// BenchmarkAblationMUS compares the raw assumption core against the
// deletion-minimized MUS on an over-constrained scenario (explanation
// quality vs cost).
func BenchmarkAblationMUS(b *testing.B) {
	k := catalog.CaseStudy()
	sc := netarch.Scenario{
		Context: map[string]bool{
			"pfc_enabled": true, "flooding_enabled": true,
			"deadline_tight": true,
		},
		Require: []netarch.Property{"low_latency_stack"},
	}
	b.Run("minimized", func(b *testing.B) {
		eng, err := netarch.NewEngine(k)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex, err := eng.Explain(sc)
			if err != nil {
				b.Fatal(err)
			}
			if ex == nil || len(ex.Conflicts) == 0 {
				b.Fatal("expected explanation")
			}
			b.ReportMetric(float64(len(ex.Conflicts)), "core-items")
		}
	})
}

// BenchmarkPFCGraphCheck measures the buffer-dependency analysis itself.
func BenchmarkPFCGraphCheck(b *testing.B) {
	for _, kArity := range []int{4, 8} {
		b.Run(fmt.Sprintf("fattree-k=%d", kArity), func(b *testing.B) {
			t, err := topo.NewFatTree(kArity, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := t.PFCDeadlockCheck(true); !rep.Deadlock {
					b.Fatal("expected deadlock under flooding")
				}
			}
		})
	}
}

// BenchmarkDatalogVsSATCheck compares the §3.4 substrate candidates on
// design *checking*: the stratified-Datalog backend vs the SAT engine.
// (Only SAT can also synthesize; this measures the overlap they share.)
func BenchmarkDatalogVsSATCheck(b *testing.B) {
	k := catalog.CaseStudy()
	eng, err := core.New(k)
	if err != nil {
		b.Fatal(err)
	}
	design := core.Design{
		Systems: []string{"linux", "dctcp", "ecmp", "pingmesh", "tcp", "ovs"},
		Hardware: map[kb.HardwareKind]string{
			kb.KindSwitch: "Aristo EX-32x100G",
			kb.KindNIC:    "Mellanor CX-100G",
			kb.KindServer: "Suprima HD-128c",
		},
	}
	sc := core.Scenario{Workloads: []string{"inference_app"}}
	b.Run("datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.DatalogCheck(design, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Check(design, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProofLogging measures the overhead of DRAT logging plus the
// cost of independently checking an UNSAT proof.
func BenchmarkProofLogging(b *testing.B) {
	build := func(s *sat.Solver) [][]sat.Lit {
		var clauses [][]sat.Lit
		n := 6
		v := func(pn, h int) sat.Lit { return sat.Lit(pn*n + h + 1) }
		for pn := 0; pn < n+1; pn++ {
			var c []sat.Lit
			for h := 0; h < n; h++ {
				c = append(c, v(pn, h))
			}
			clauses = append(clauses, c)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 < n+1; p1++ {
				for p2 := p1 + 1; p2 < n+1; p2++ {
					clauses = append(clauses, []sat.Lit{-v(p1, h), -v(p2, h)})
				}
			}
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		return clauses
	}
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver()
			build(s)
			if s.Solve() != sat.Unsat {
				b.Fatal("want UNSAT")
			}
		}
	})
	b.Run("solve+log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver()
			s.AttachProof()
			build(s)
			if s.Solve() != sat.Unsat {
				b.Fatal("want UNSAT")
			}
		}
	})
	b.Run("solve+log+check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.NewSolver()
			p := s.AttachProof()
			clauses := build(s)
			if s.Solve() != sat.Unsat {
				b.Fatal("want UNSAT")
			}
			if err := sat.CheckRUP(clauses, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepeatedQueries alternates Synthesize, Explain, and Optimize
// on one engine over one scenario shape — the paper's interactive what-if
// loop. "cold" disables the compiled-base cache (every query recompiles);
// "warm" primes the cache once, so every measured query is a clone of the
// shared base. The warm/cold ratio is the amortization win.
func BenchmarkRepeatedQueries(b *testing.B) {
	k := catalog.CaseStudy()
	feasible := netarch.Scenario{Workloads: []string{"inference_app"}}
	// Same shape (same workloads), query-side over-constraining only: the
	// explain query shares the synthesis query's compiled base.
	infeasible := netarch.Scenario{
		Workloads: []string{"inference_app"},
		Context: map[string]bool{
			"pfc_enabled": true, "flooding_enabled": true, "deadline_tight": true,
		},
		Require: []netarch.Property{"low_latency_stack"},
	}
	// MinimizeCores keeps the optimize leg representative of the
	// interactive loop (§2.3 trades off compute headroom) while its
	// intrinsic search stays in the same ballpark as the other two query
	// kinds; MinimizeCost's certification alone runs ~200ms/query, which
	// would drown the compile-amortization signal this benchmark exists
	// to measure (cost descent is covered by BenchmarkQuery2).
	objs := []netarch.Objective{{Kind: netarch.MinimizeCores}}
	loop := func(b *testing.B, eng *netarch.Engine) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			switch i % 3 {
			case 0:
				rep, err := eng.Synthesize(feasible)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != netarch.Feasible {
					b.Fatal("expected feasible")
				}
			case 1:
				ex, err := eng.Explain(infeasible)
				if err != nil {
					b.Fatal(err)
				}
				if ex == nil {
					b.Fatal("expected explanation")
				}
			case 2:
				res, err := eng.Optimize(feasible, objs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != netarch.Feasible {
					b.Fatal("expected feasible")
				}
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		eng, err := netarch.NewEngine(k)
		if err != nil {
			b.Fatal(err)
		}
		eng.SetCacheCapacity(0)
		b.ReportAllocs()
		b.ResetTimer()
		loop(b, eng)
	})
	b.Run("warm", func(b *testing.B) {
		eng, err := netarch.NewEngine(k)
		if err != nil {
			b.Fatal(err)
		}
		// Prime the cache: the one compile happens here, outside the timer.
		if _, err := eng.Synthesize(feasible); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		loop(b, eng)
	})
}

// BenchmarkOptimize measures the assumption-based MaxSAT optimizer. The
// "full" rows run a certified lexicographic cost-then-power minimization
// over the whole case-study catalog under both descent strategies (the
// cache is primed off the clock, so the rows measure the descent, not
// compilation). The "trimmed" rows compare the MaxSAT descent against
// the exhaustive enumeration oracle (BruteOptimize — the independent arm
// of the optimize-diff differential) on a design space small enough for
// the oracle to finish: the asymmetry is why the oracle is a test
// fixture and the descent is the product.
func BenchmarkOptimize(b *testing.B) {
	k := catalog.CaseStudy()
	sc := netarch.Scenario{Workloads: []string{"inference_app"}}
	objs := []netarch.Objective{{Kind: netarch.MinimizeCost}, {Kind: netarch.MinimizePower}}
	strategies := []struct {
		name string
		s    netarch.OptimizeStrategy
	}{{"binary", netarch.StrategyBinary}, {"linear", netarch.StrategyLinear}}
	for _, strat := range strategies {
		b.Run("full/"+strat.name, func(b *testing.B) {
			eng, err := netarch.NewEngine(k)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Optimize(sc, objs); err != nil { // prime the cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.OptimizeWithStrategyCtx(context.Background(), sc, objs, netarch.Budget{}, strat.s)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != netarch.Feasible || res.Approximate {
					b.Fatal("want a certified optimum")
				}
			}
		})
	}

	// Trim the space to the systems and SKUs of three witness classes so
	// the exhaustive oracle terminates (the same seeding trick as
	// BenchmarkEnumerateParallel).
	eng, err := netarch.NewEngine(k)
	if err != nil {
		b.Fatal(err)
	}
	seed, err := eng.EnumerateCtx(context.Background(), sc, 3, netarch.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	trim := sc
	allowedSys := map[string]bool{}
	allowedHW := map[netarch.HardwareKind]map[string]bool{}
	for _, d := range seed.Designs {
		for _, s := range d.Systems {
			allowedSys[s] = true
		}
		for kind, name := range d.Hardware {
			if allowedHW[kind] == nil {
				allowedHW[kind] = map[string]bool{}
			}
			allowedHW[kind][name] = true
		}
	}
	for _, s := range k.Systems {
		if !allowedSys[s.Name] {
			trim.ForbiddenSystems = append(trim.ForbiddenSystems, s.Name)
		}
	}
	trim.AllowedHardware = map[netarch.HardwareKind][]string{}
	for kind, names := range allowedHW {
		for name := range names {
			trim.AllowedHardware[kind] = append(trim.AllowedHardware[kind], name)
		}
	}
	const oracleLimit = 500000
	want, err := eng.BruteOptimize(trim, objs, oracleLimit)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("trimmed/maxsat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.Optimize(trim, objs)
			if err != nil {
				b.Fatal(err)
			}
			if res.Verdict != netarch.Feasible || res.ObjectiveValues[0] != want.Values[0] {
				b.Fatalf("maxsat disagrees with the oracle: %v vs %v",
					res.ObjectiveValues, want.Values)
			}
		}
	})
	b.Run("trimmed/brute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eng.BruteOptimize(trim, objs, oracleLimit)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Feasible {
				b.Fatal("oracle lost feasibility")
			}
			b.ReportMetric(float64(res.Models), "models")
		}
	})
}

// BenchmarkEnumerateParallel measures a complete design-class enumeration
// (uncapped, so the pool's cube partitioning actually runs) across a fixed
// ladder of worker counts, so the sub-benchmark names report the real pool
// size regardless of the machine's CPU count. The space is constrained to
// the systems of a few witness designs so the complete enumeration stays in
// benchmark range; the cache is primed so compilation stays off the clock.
// On a multicore machine the wider pools should beat workers=1; the
// determinism contract guarantees every row returns identical designs.
func BenchmarkEnumerateParallel(b *testing.B) {
	k := catalog.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	eng, err := netarch.NewEngine(k)
	if err != nil {
		b.Fatal(err)
	}
	sc := netarch.Scenario{Workloads: []string{"inference_app"}, NumServers: 64}
	// Constrain the space to the systems of three witness classes.
	eng.SetWorkers(1)
	seed, err := eng.EnumerateCtx(context.Background(), sc, 3, netarch.Budget{})
	if err != nil {
		b.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, d := range seed.Designs {
		for _, s := range d.Systems {
			allowed[s] = true
		}
	}
	for _, s := range k.Systems {
		if !allowed[s.Name] {
			sc.ForbiddenSystems = append(sc.ForbiddenSystems, s.Name)
		}
	}
	if _, err := eng.EnumerateCtx(context.Background(), sc, 1, netarch.Budget{}); err != nil { // prime the cache
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng.SetWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.EnumerateCtx(context.Background(), sc, 1<<20, netarch.Budget{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Truncated || len(res.Designs) < 2 {
					b.Fatalf("want a complete multi-class enumeration, got %d classes truncated=%v",
						len(res.Designs), res.Truncated)
				}
			}
		})
	}
}

// BenchmarkColdStart measures a fresh process's first query at full
// catalog scale. "compile" is what every cold process paid before the
// disk tier existed: build the formula, CNF it, Simplify. "disk-warm"
// revives the same base from a persisted snapshot (the cache directory
// is primed once, off the clock) — each iteration asserts through the
// cache counters that no compile ran. The compile/disk-warm ratio is
// the cross-process startup win of DESIGN.md §9.
func BenchmarkColdStart(b *testing.B) {
	k := catalog.CaseStudy()
	sc := netarch.Scenario{Workloads: []string{"inference_app"}}
	firstQuery := func(b *testing.B, eng *netarch.Engine) {
		b.Helper()
		rep, err := eng.Synthesize(sc)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != netarch.Feasible {
			b.Fatal("expected feasible")
		}
	}
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := netarch.NewEngine(k)
			if err != nil {
				b.Fatal(err)
			}
			firstQuery(b, eng)
		}
	})
	b.Run("disk-warm", func(b *testing.B) {
		dir := b.TempDir()
		primer, err := netarch.NewEngine(k)
		if err != nil {
			b.Fatal(err)
		}
		if err := primer.SetCacheDir(dir); err != nil {
			b.Fatal(err)
		}
		firstQuery(b, primer)
		if st := primer.CacheStats(); st.DiskWrites == 0 {
			b.Fatalf("priming run persisted nothing: %v", st)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := netarch.NewEngine(k)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.SetCacheDir(dir); err != nil {
				b.Fatal(err)
			}
			firstQuery(b, eng)
			if st := eng.CacheStats(); st.Misses != 0 || st.DiskHits != 1 {
				b.Fatalf("disk-warm first query compiled instead of reviving: %v", st)
			}
		}
	})
	// Scaled-catalog cold starts: the first query against 5k/20k/50k-SKU
	// catalogs, relevance slicing on vs off. The off series is the cost
	// every cold process would pay without the slicer (the 50k tier runs
	// tens of seconds per compile — expected, that is the point).
	for _, skus := range []int{5000, 20000, 50000} {
		sk := catalog.ScaledCatalog(skus)
		for _, mode := range []netarch.SliceMode{netarch.SliceOn, netarch.SliceOff} {
			b.Run(fmt.Sprintf("skus=%d/slice=%s", skus, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					eng, err := netarch.NewEngine(sk)
					if err != nil {
						b.Fatal(err)
					}
					eng.SetSliceMode(mode)
					firstQuery(b, eng)
				}
			})
		}
	}
}

// BenchmarkCompile measures scenario compilation alone (formula build +
// CNF + arithmetic) at full catalog scale.
func BenchmarkCompile(b *testing.B) {
	k := catalog.CaseStudy()
	eng, err := core.New(k)
	if err != nil {
		b.Fatal(err)
	}
	// Caching off: this benchmark measures compilation itself, so every
	// iteration must actually compile (see BenchmarkRepeatedQueries for
	// the amortized path).
	eng.SetCacheCapacity(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Enumerate(…, 0) compiles and immediately returns no designs.
		if _, err := eng.Enumerate(core.Scenario{Workloads: []string{"inference_app"}}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// stressCatalog grows the §5.1 case-study catalog with an "environment
// model": a phase-transition random 3-SAT rule over free context atoms
// (the joint environment the reasoner must prove consistent with any
// deployment) plus a CXL capacity matrix that collapses to a pigeonhole
// contradiction when cxl_pooling is off. The Q3-style what-if against
// this catalog is the hardest UNSAT query in the suite — tens of
// thousands of conflicts where the plain §5.1 queries take under a
// hundred. The env seed is chosen so the environment alone is
// satisfiable (the cxl_pooling=true family member must be feasible).
func stressCatalog() *netarch.KB {
	k := catalog.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	r := rand.New(rand.NewSource(1))
	const envVars = 240
	var env []kb.Expr
	for i := 0; i < int(4.2*float64(envVars)); i++ {
		c := make([]kb.Expr, 3)
		for j := range c {
			a := kb.CtxAtom(fmt.Sprintf("env_x%d", r.Intn(envVars)+1))
			if r.Intn(2) == 0 {
				a = kb.Not(a)
			}
			c[j] = a
		}
		env = append(env, kb.Or(c...))
	}
	k.Rules = append(k.Rules, kb.Rule{
		Name: "environment_model",
		Expr: kb.And(env...),
		Note: "joint feasibility model of the deployment environment",
	})
	slot := func(p, h int) kb.Expr { return kb.CtxAtom(fmt.Sprintf("cxl_seg%d_slot%d", p, h)) }
	var php []kb.Expr
	for p := 0; p < 6; p++ {
		row := make([]kb.Expr, 5)
		for h := 0; h < 5; h++ {
			row[h] = slot(p, h)
		}
		php = append(php, kb.Or(row...))
	}
	for h := 0; h < 5; h++ {
		for p1 := 0; p1 < 6; p1++ {
			for p2 := p1 + 1; p2 < 6; p2++ {
				php = append(php, kb.Or(kb.Not(slot(p1, h)), kb.Not(slot(p2, h))))
			}
		}
	}
	k.Rules = append(k.Rules, kb.Rule{
		Name: "cxl_capacity_matrix",
		Expr: kb.Or(kb.CtxAtom("cxl_pooling"), kb.And(php...)),
		Note: "without pooling, six resident memory segments must fit five local CXL slots",
	})
	return k
}

// BenchmarkPortfolioWhatIf measures the hardest UNSAT what-if (the Q3
// CXL query against stressCatalog) in a long-lived engine answering a
// scenario family, PR 7's target workload. workers=1 is the baseline
// single-solver engine. workers=8 is the full portfolio stack as it
// ships: SetPortfolio(8) + SetWarmStart(true), so each query races a
// diversified team seeded from the family's previous solve. Both engines
// answer the feasible cxl_pooling=true member and one cold what-if off
// the clock (the service steady state the amortization story targets);
// iterations then measure the repeated what-if. The imports/op metric
// (benchjson Extra) reports shared-clause traffic per query. On a
// single-CPU host the win is entirely profile seeding — the race itself
// costs a slice of every worker — while multi-core hosts add the
// diversified-race win on the cold path.
func BenchmarkPortfolioWhatIf(b *testing.B) {
	on := netarch.Scenario{
		Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
		NumServers: 64,
		Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": true},
	}
	off := on
	off.Context = map[string]bool{"pfc_enabled": true, "cxl_pooling": false}

	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := netarch.NewEngine(stressCatalog())
			if err != nil {
				b.Fatal(err)
			}
			if workers > 1 {
				eng.SetPortfolio(workers)
				eng.SetWarmStart(true)
			}
			// Prime off the clock: the feasible family member, then one
			// cold what-if (first-query compile + first UNSAT proof).
			rep, err := eng.Synthesize(on)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Verdict != netarch.Feasible {
				b.Fatalf("cxl_pooling=true member must be feasible, got %v", rep.Verdict)
			}
			if _, err := eng.Synthesize(off); err != nil {
				b.Fatal(err)
			}
			_, imported0 := eng.PortfolioStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := eng.Synthesize(off)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict != netarch.Infeasible {
					b.Fatalf("what-if must be infeasible, got %v", rep.Verdict)
				}
			}
			b.StopTimer()
			// Clause traffic concentrates in the cold priming race (warm
			// queries end before helpers hit a restart boundary), so
			// report it as an absolute metric next to the steady-state
			// rate. Metrics land after ResetTimer, which clears them.
			_, imported := eng.PortfolioStats()
			b.ReportMetric(float64(imported0), "coldimports")
			b.ReportMetric(float64(imported-imported0)/float64(b.N), "imports/op")
		})
	}
}

// deltaStressCatalog is the live-update benchmark catalog: the case study
// plus 100 "policy" rules, each a deep nested condition chain (depth 500)
// over free policy atoms, guarded so it can never make the KB infeasible
// (setting its guard atom false satisfies the rule). Chains are where
// Tseitin conversion dominates compile time — the converter keys its
// subformula cache on String(), which re-serializes the whole suffix at
// every level, so conversion is quadratic in chain depth while the CNF
// it emits (what Simplify and the solver build pay) stays linear —
// exactly the regime where an operator's one-rule edit should not pay
// for the other 99. rev selects the content of rule 0: two revs differ
// in exactly one assertion, so UpdateKB(deltaStressCatalog(rev')) is a
// one-assertion edit.
func deltaStressCatalog(rev int) *netarch.KB {
	k := catalog.CaseStudy()
	const rules, depth = 100, 500
	var deep func(r *rand.Rand, d int) kb.Expr
	deep = func(r *rand.Rand, d int) kb.Expr {
		leaf := func() kb.Expr {
			a := kb.CtxAtom(fmt.Sprintf("pol_x%d", r.Intn(64)+1))
			if r.Intn(2) == 0 {
				return kb.Not(a)
			}
			return a
		}
		if d == 0 {
			return leaf()
		}
		l, rest := leaf(), deep(r, d-1)
		if r.Intn(2) == 0 {
			return kb.And(l, rest)
		}
		return kb.Or(l, rest)
	}
	// Anchor rule: mentions every policy atom in fixed order, so editing
	// one rule's tree cannot shift the solver-variable index of any atom
	// another rule uses — exactly the stability an operator's catalog has
	// (its context vocabulary doesn't churn when one rule is edited).
	// Without it a one-rule edit would reshuffle atom registration order
	// and force every policy shard to reconvert. Trivially satisfiable:
	// any false atom (or a true anchor) satisfies the implication.
	anchor := make([]kb.Expr, 0, 64+rules)
	for i := 1; i <= 64; i++ {
		anchor = append(anchor, kb.CtxAtom(fmt.Sprintf("pol_x%d", i)))
	}
	for i := 0; i < rules; i++ {
		anchor = append(anchor, kb.CtxAtom(fmt.Sprintf("pol_guard%d", i)))
	}
	k.Rules = append(k.Rules, kb.Rule{
		Name: "policy_vocab_anchor",
		Expr: kb.Implies(kb.And(anchor...), kb.CtxAtom("pol_anchor")),
		Note: "pins the policy atom vocabulary",
	})
	for i := 0; i < rules; i++ {
		seed := int64(7 + i)
		if i == 0 {
			seed = int64(7 + rules + rev) // rev only perturbs rule 0
		}
		r := rand.New(rand.NewSource(seed))
		k.Rules = append(k.Rules, kb.Rule{
			Name: fmt.Sprintf("policy_%d", i),
			Expr: kb.Or(kb.Not(kb.CtxAtom(fmt.Sprintf("pol_guard%d", i))), deep(r, depth)),
			Note: "synthetic deep policy rule",
		})
	}
	return k
}

// BenchmarkDeltaRecompile is the PR 8 acceptance benchmark: against the
// deep-rule catalog, a one-assertion edit applied through UpdateKB
// (shard diff + arena splice, DESIGN.md §14) vs recompiling the same
// base from scratch. Both paths end in a base that is byte-identical to
// a cold compile (delta-diff pins that); this measures what the identity
// costs. The acceptance bar is delta >= 5x faster than full.
func BenchmarkDeltaRecompile(b *testing.B) {
	sc := netarch.Scenario{Workloads: []string{"inference_app"}}

	b.Run("full", func(b *testing.B) {
		eng, err := netarch.NewEngine(deltaStressCatalog(0))
		if err != nil {
			b.Fatal(err)
		}
		eng.SetCacheCapacity(0) // every iteration compiles from scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Enumerate(sc, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("delta-edit", func(b *testing.B) {
		eng, err := netarch.NewEngine(deltaStressCatalog(0))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Enumerate(sc, 0); err != nil { // warm the base
			b.Fatal(err)
		}
		// Pre-build the two alternating revisions: constructing the
		// catalog is the operator's editor, not the reload path.
		revs := [2]*netarch.KB{deltaStressCatalog(1), deltaStressCatalog(2)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate revisions so every iteration is a real one-rule
			// edit that delta-recompiles the warm base.
			up, err := eng.UpdateKB(revs[i%2])
			if err != nil {
				b.Fatal(err)
			}
			if up.BasesUpdated != 1 {
				b.Fatalf("base not revalidated: %+v", up)
			}
		}
	})
}

package netarch_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"netarch"
)

// TestConcurrentQueries hammers one engine from many goroutines running
// mixed SynthesizeCtx / CheckCtx / ExplainCtx queries, with cache
// invalidations racing them. Under -race this is the facade-level
// regression test for the amortization layer's isolation contract:
// every query solves on a private clone of a shared compiled base, so
// concurrent queries must neither interfere nor observe each other.
func TestConcurrentQueries(t *testing.T) {
	k := netarch.DefaultCatalog()
	eng, err := netarch.NewEngine(k)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	feasible := netarch.Scenario{Require: []netarch.Property{"congestion_control"}}
	infeasible := netarch.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	}
	// A witness design to re-check concurrently.
	rep, err := eng.SynthesizeCtx(ctx, feasible, netarch.Budget{})
	if err != nil || rep.Verdict != netarch.Feasible {
		t.Fatalf("seed synthesis failed: %v %v", err, rep)
	}
	witness := *rep.Design

	const goroutines = 12
	const rounds = 4
	errs := make(chan string, goroutines*rounds)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 3 {
				case 0:
					r, err := eng.SynthesizeCtx(ctx, feasible, netarch.Budget{})
					if err != nil {
						errs <- fmt.Sprintf("synthesize: %v", err)
					} else if r.Verdict != netarch.Feasible {
						errs <- fmt.Sprintf("synthesize verdict flipped: %v", r.Explanation)
					}
				case 1:
					r, err := eng.CheckCtx(ctx, witness, feasible, netarch.Budget{})
					if err != nil {
						errs <- fmt.Sprintf("check: %v", err)
					} else if r.Verdict != netarch.Feasible {
						errs <- fmt.Sprintf("check verdict flipped: %v", r.Explanation)
					}
				case 2:
					ex, err := eng.ExplainCtx(ctx, infeasible, netarch.Budget{})
					if err != nil {
						errs <- fmt.Sprintf("explain: %v", err)
					} else if ex == nil || len(ex.Conflicts) == 0 {
						errs <- "explain lost its conflict set"
					}
				}
			}
		}(g)
	}
	// Cache invalidation racing the queries: in-flight clones keep
	// working; subsequent queries recompile.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			eng.InvalidateCache()
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	st := eng.CacheStats()
	if st.Hits+st.Misses == 0 {
		t.Errorf("cache counters should have moved: %+v", st)
	}
}

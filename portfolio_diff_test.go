package netarch_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"netarch"
)

// This file is the facade-level differential for portfolio solving: for
// the §5.1 case-study queries, SynthesizeCtx must return byte-identical
// verdicts and designs whatever the portfolio width — racing diversified
// workers is a latency knob, never an answer knob. `make verify` runs
// these tests explicitly (the portfolio-diff target).

func TestPortfolioWorkerInvariance(t *testing.T) {
	eng, err := netarch.NewEngine(caseStudyAllKB())
	if err != nil {
		t.Fatal(err)
	}
	scenarios := sec51Scenarios(t, eng)
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	ctx := context.Background()
	for _, name := range names {
		sc := scenarios[name]
		eng.SetPortfolio(1)
		want, err := eng.SynthesizeCtx(ctx, sc, netarch.Budget{})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		// Explanations are compared among portfolio runs only: the n==1
		// path uses the legacy core-seeded minimization, which may land
		// on a different (equally minimal) conflict set than the
		// normalized portfolio minimization.
		var wantEx *netarch.Explanation
		for _, n := range []int{2, 4, 8} {
			eng.SetPortfolio(n)
			got, err := eng.SynthesizeCtx(ctx, sc, netarch.Budget{})
			if err != nil {
				t.Fatalf("%s portfolio=%d: %v", name, n, err)
			}
			if got.Verdict != want.Verdict {
				t.Errorf("%s portfolio=%d: verdict %v, want %v", name, n, got.Verdict, want.Verdict)
			}
			if !reflect.DeepEqual(got.Design, want.Design) {
				t.Errorf("%s portfolio=%d: design diverges from sequential", name, n)
			}
			if want.Verdict == netarch.Infeasible {
				if wantEx == nil {
					wantEx = got.Explanation
				} else if !reflect.DeepEqual(got.Explanation, wantEx) {
					t.Errorf("%s portfolio=%d: explanation diverges across widths:\ngot  %v\nwant %v",
						name, n, got.Explanation, wantEx)
				}
			}
		}
	}
	eng.SetPortfolio(0)
}

// TestWarmStartRoundTrip drives the full warm-start loop through the
// public facade: solve with a cache dir, flush the snapshot (now carrying
// the warm profile), restart into a fresh engine over the same dir, and
// prove the revived profile changes nothing about correctness.
func TestWarmStartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc := netarch.Scenario{Workloads: []string{"inference_app"}}

	eng1, err := netarch.NewEngine(caseStudyAllKB())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	eng1.SetWarmStart(true)
	first, err := eng1.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng1.FlushDiskCache(); n == 0 {
		t.Fatal("flush persisted no snapshots after a warm-start solve")
	}

	eng2, err := netarch.NewEngine(caseStudyAllKB())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	eng2.SetWarmStart(true)
	second, err := eng2.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng2.CacheStats(); st.DiskHits == 0 {
		t.Fatalf("restarted engine revived nothing from disk: %+v", st)
	}
	if second.Verdict != first.Verdict {
		t.Fatalf("warm-started verdict %v, cold %v", second.Verdict, first.Verdict)
	}
	// A warm start may legitimately steer the solver to a different
	// model, so validate the design rather than comparing models.
	if second.Verdict == netarch.Feasible {
		chk, err := eng2.Check(*second.Design, sc)
		if err != nil {
			t.Fatal(err)
		}
		if chk.Verdict != netarch.Feasible {
			t.Fatalf("warm-started design fails its own check: %v", chk.Explanation)
		}
	}
}

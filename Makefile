GO ?= go

.PHONY: build test vet race verify parallel-diff bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench-smoke compiles and runs one benchmark iteration so the bench
# suite can't bit-rot between full runs.
bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkCompile -benchtime=1x .

# bench runs the full root benchmark suite with allocation stats and
# renders the results to BENCH_PR2.json (name -> ns/op, B/op, allocs/op)
# via the stdlib-only parser in cmd/benchjson. Commit the JSON to track
# the perf trajectory.
bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . | tee /tmp/netarch-bench.txt
	$(GO) run ./cmd/benchjson < /tmp/netarch-bench.txt > BENCH_PR2.json

# parallel-diff pins the parallel-vs-sequential enumeration differential
# (the DESIGN.md §8 determinism contract over the §5.1 queries) so the
# gate names it even though `test` also covers it.
parallel-diff:
	$(GO) test -run='TestEnumerateParallel|TestEnumerateWorkerCountInvariance' -count=1 . ./internal/core

# verify is the full pre-merge gate: tier-1 (build + test) plus static
# analysis, the race detector over every package, the enumeration
# determinism differential, and a benchmark smoke run.
verify: build vet test race parallel-diff bench-smoke

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test vet race verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: tier-1 (build + test) plus static
# analysis and the race detector over every package.
verify: build vet test race

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test vet race verify parallel-diff snapshot-diff portfolio-diff delta-diff optimize-diff scale-diff fuzz-smoke alloc-budget serve-smoke bench bench-smoke bench-diff clean

# BENCH is the JSON file the bench target writes and bench-diff compares
# against; point it at the next PR's file when cutting a new baseline.
BENCH ?= BENCH_PR10.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench-smoke compiles and runs one benchmark iteration so the bench
# suite can't bit-rot between full runs.
bench-smoke:
	$(GO) test -run=NONE -bench=BenchmarkCompile -benchtime=1x .

# bench runs the full root benchmark suite with allocation stats and
# renders the results to $(BENCH) (name -> ns/op, B/op, allocs/op)
# via the stdlib-only parser in cmd/benchjson. Commit the JSON to track
# the perf trajectory.
bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . | tee /tmp/netarch-bench.txt
	$(GO) run ./cmd/benchjson < /tmp/netarch-bench.txt > $(BENCH)

# bench-diff runs the bench suite and prints per-benchmark deltas against
# the newest committed BENCH_*.json instead of writing a new file — the
# quick "did my change move the needle" loop between baseline cuts.
bench-diff:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . | tee /tmp/netarch-bench.txt
	$(GO) run ./cmd/benchjson -diff "$$(ls BENCH_PR*.json | sort -V | tail -1)" < /tmp/netarch-bench.txt

# alloc-budget pins the hot-path allocation budgets (zero-alloc
# propagate, bounded warm cache-hit queries) so allocation regressions
# fail the gate even though `test` also covers them.
alloc-budget:
	$(GO) test -run='TestPropagateAllocFree|TestWarmQueryAllocBudget' -count=1 ./internal/sat ./internal/core

# parallel-diff pins the parallel-vs-sequential differentials (the
# DESIGN.md §8 enumeration determinism contract and the §11 sharded
# compile byte-identity, both over the §5.1 queries) so the gate names
# them even though `test` also covers them.
parallel-diff:
	$(GO) test -run='TestEnumerateParallel|TestEnumerateWorkerCountInvariance|TestParallelCompileByteIdentity' -count=1 . ./internal/core

# snapshot-diff pins the disk-cache round-trip differential (the
# DESIGN.md §9 restore-equivalence contract): a solver revived from
# bytes answers identically to its in-process Clone, and an engine
# revived from a cache directory answers the §5.1 queries identically
# to the warm in-process path.
snapshot-diff:
	$(GO) test -run='TestSnapshotRestoreSolvesIdentically|TestDiskCacheDifferential|TestDiskWarmSkipsCompile' -count=1 ./internal/sat ./internal/core

# portfolio-diff pins the portfolio determinism contract under the race
# detector: sat-layer worker invariance (Status/Winner/Model identical at
# 1/2/4/8 workers), the facade-level §5.1 differential (verdicts, designs
# and explanations independent of SetPortfolio width), and the clause
# ring's concurrent-safety hammer.
portfolio-diff:
	$(GO) test -race -run='TestRacePortfolioWorkerInvariance|TestShareConcurrentHammer|TestPortfolioSharesClauses' -count=1 ./internal/sat
	$(GO) test -race -run='TestPortfolioWorkerInvariance|TestWarmStartRoundTrip' -count=1 .

# serve-smoke boots the query service on a random port, runs one query
# per mode, hits /healthz and /statsz, injects one fault, SIGTERMs the
# process, and asserts a clean drain — the full serve lifecycle under the
# race detector (see internal/serve TestServeSmoke).
serve-smoke:
	$(GO) test -race -run='TestServeSmoke' -count=1 ./internal/serve

# delta-diff pins the incremental-compilation byte-identity contract
# (DESIGN.md §14): a delta recompile (shard diff + arena splice) of an
# add/remove/edit must produce solver state byte-identical to a
# from-scratch compile at 1/2/8 workers, at both the logic layer
# (ConvertShardsDelta vs ConvertShards) and the engine layer (UpdateKB
# vs cold compile), plus the live-reload staleness ordering.
delta-diff:
	$(GO) test -run='TestConvertShardsDelta|TestUpdateKBByteIdentity|TestKBMutationStalenessOrdering' -count=1 ./internal/logic ./internal/core
	$(GO) test -race -run='TestUpdateKBConcurrentQueries|TestServeReloadUnderLoad' -count=1 ./internal/core ./internal/serve

# optimize-diff pins the MaxSAT optimality differential (DESIGN.md §15):
# lexicographic optima and Pareto frontiers must equal the brute-force
# enumeration oracle's, for both descent strategies, at 1/2/8 workers,
# warm and cold — plus the metamorphic invariants (cost scaling and
# translation, dominated-SKU insertion, bound tightening).
optimize-diff:
	$(GO) test -run='TestOptimizeDifferential|TestParetoDifferential|TestMetamorphic' -count=1 ./internal/core

# scale-diff pins the relevance-slicing soundness gate (DESIGN.md §16):
# on a 5k-SKU scaled catalog, every verdict, lexicographic optimum,
# Pareto frontier, design and explanation from the cone-of-influence
# slice must match the full encoding — over the §5.1 suite plus seeded
# randomized scenarios, at 1/2/8 workers, warm and cold — together with
# the slice edge cases and the 50k-SKU catalog generation smoke.
scale-diff:
	$(GO) test -run='TestScaleDifferential|TestSlice' -count=1 ./internal/core
	$(GO) test -run='TestCatalogScale' -count=1 ./internal/extract

# fuzz-smoke runs the snapshot decoders' fuzz targets briefly so the
# untrusted-bytes contract (typed errors, no panics, no OOM) is
# exercised on every gate, not only in dedicated fuzz sessions, plus the
# MaxSAT bounds fuzzer (random weighted objectives must yield exact,
# witnessed, unbeatable optima).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzRestoreSnapshot -fuzztime=10s ./internal/sat
	$(GO) test -run=NONE -fuzz=FuzzDecodeBase -fuzztime=10s ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzMaxSATBounds -fuzztime=10s ./internal/core

# verify is the full pre-merge gate: tier-1 (build + test) plus static
# analysis, the race detector over every package, the enumeration,
# snapshot, optimality and relevance-slicing differentials, the hot-path
# allocation budgets, the serve lifecycle smoke, a fuzz smoke over the
# snapshot decoders and the MaxSAT bounds, and a benchmark smoke run.
verify: build vet test race parallel-diff snapshot-diff portfolio-diff delta-diff optimize-diff scale-diff alloc-budget serve-smoke fuzz-smoke bench-smoke

clean:
	$(GO) clean ./...

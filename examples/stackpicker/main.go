// Figure 1, interactive: resolve the conditional partial ordering of the
// six network stacks (ZygOS, Linux, Snap, NetChannel, Shenango,
// Demikernel) under different deployment contexts, and let the engine
// pick a stack subject to those preferences.
package main

import (
	"fmt"
	"log"
	"strings"

	"netarch"
)

func main() {
	k := netarch.DefaultCatalog()
	stacks := netarch.Fig1Stacks()

	contexts := []struct {
		label string
		atoms map[string]bool
	}{
		{"low link rate (<40 Gbps)", map[string]bool{}},
		{"high link rate (≥40 Gbps)", map[string]bool{"load_ge_40gbps": true}},
		{"high rate + Pony Express", map[string]bool{"load_ge_40gbps": true, "pony_enabled": true}},
	}

	for _, dim := range []string{"throughput", "isolation", "app_modification"} {
		fmt.Printf("=== dimension: %s ===\n", dim)
		for _, ctx := range contexts {
			r, err := netarch.ResolveOrder(k, dim, ctx.atoms, stacks...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  context: %s\n", ctx.label)
			fmt.Printf("    hasse edges: %s\n", renderEdges(r.HasseEdges()))
			fmt.Printf("    best picks:  %s\n", strings.Join(r.Maximal(), ", "))
			if pairs := r.IncomparablePairs(); len(pairs) > 0 && dim == "isolation" {
				fmt.Printf("    knowledge gaps (no comparison in the literature): %d pairs,\n", len(pairs))
				fmt.Printf("      including shenango vs demikernel: %v\n",
					!r.Comparable("shenango", "demikernel"))
			}
		}
		fmt.Println()
	}

	// Let the engine choose a stack under the throughput preferences at
	// high link rate: PreferOrder penalizes deploying a dominated stack.
	eng, err := netarch.NewEngine(k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Optimize(netarch.Scenario{
		Require: []netarch.Property{"high_throughput_stack"},
		Context: map[string]bool{
			"load_ge_40gbps": true,
			"app_modifiable": true,
			"deadline_tight": false,
		},
	}, []netarch.Objective{
		{Kind: netarch.PreferOrder, Dimension: "throughput"},
		{Kind: netarch.MinimizeSystems},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== engine's pick at ≥40 Gbps (throughput-preferred) ===")
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("systems:", strings.Join(res.Design.Systems, ", "))

	// Emit the raw Figure 1 throughput panel as DOT for rendering.
	spec := k.OrderByDimension("throughput")
	dot, err := spec.DOT("gold3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== graphviz (throughput panel of Figure 1) ===")
	fmt.Print(dot)
}

func renderEdges(edges [][2]string) string {
	if len(edges) == 0 {
		return "(none)"
	}
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e[0] + ">" + e[1]
	}
	return strings.Join(parts, "  ")
}

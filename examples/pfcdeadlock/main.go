// The Microsoft PFC deadlock incident (§2.2, §3.4 of the paper; Guo et
// al., SIGCOMM'16): up-down routing in a Clos excludes cyclic buffer
// dependencies, but Ethernet/ARP flooding silently breaks the routing
// invariant and can deadlock a PFC (lossless) fabric.
//
// This example shows both levels of the paper's argument:
//
//  1. the ground truth — a buffer-dependency graph analysis of the
//     actual topology, with and without flooding; and
//  2. the lightweight rule — "PFC cannot be used with any flooding
//     algorithm", which the reasoning engine checks in milliseconds
//     without any topology model.
package main

import (
	"fmt"
	"log"

	"netarch"
)

func main() {
	// Ground truth: analyse real topologies.
	fmt.Println("--- buffer-dependency analysis (ground truth) ---")
	topos := []struct {
		name  string
		build func() (*netarch.Topology, error)
	}{
		{"leaf-spine 4 spines x 8 leaves", func() (*netarch.Topology, error) {
			return netarch.NewLeafSpine(4, 8, 4, 64)
		}},
		{"fat-tree k=4", func() (*netarch.Topology, error) {
			return netarch.NewFatTree(4, 64)
		}},
	}
	for _, tc := range topos {
		t, err := tc.build()
		if err != nil {
			log.Fatal(err)
		}
		for _, flooding := range []bool{false, true} {
			rep := t.PFCDeadlockCheck(flooding)
			fmt.Printf("%-32s flooding=%-5v -> %s\n", tc.name, flooding, rep)
		}
	}

	// The lightweight rule: the engine refuses PFC+flooding designs and
	// names the expert rule in its explanation — no topology needed.
	fmt.Println()
	fmt.Println("--- the reasoning engine's view (rule pfc_no_flooding) ---")
	eng, err := netarch.NewEngine(netarch.DefaultCatalog())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Synthesize(netarch.Scenario{
		PinnedSystems: []string{"rdma-roce"}, // forces pfc_enabled
		Context:       map[string]bool{"flooding_enabled": true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RoCE on a flooding fabric:", rep.Verdict)
	if rep.Verdict == netarch.Infeasible {
		fmt.Print(rep.Explanation.String())
	}

	// Turning flooding off restores feasibility.
	rep, err = eng.Synthesize(netarch.Scenario{
		PinnedSystems: []string{"rdma-roce"},
		Context:       map[string]bool{"flooding_enabled": false},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RoCE with flooding disabled:", rep.Verdict)
	if rep.Verdict == netarch.Feasible {
		fmt.Printf("fabric: switch=%s nic=%s\n",
			rep.Design.Hardware[netarch.KindSwitch],
			rep.Design.Hardware[netarch.KindNIC])
	}
}

// Quickstart: load the knowledge compendium, ask for a compliant design,
// then ask for something impossible and read the explanation.
package main

import (
	"fmt"
	"log"
	"strings"

	"netarch"
)

func main() {
	k := netarch.DefaultCatalog()
	eng, err := netarch.NewEngine(k)
	if err != nil {
		log.Fatal(err)
	}

	// 1. "Give me a design with congestion control and queue-length
	//    monitoring, under a tight deadline (no research systems)."
	sc := netarch.Scenario{
		Require: []netarch.Property{"congestion_control", "capture_delays"},
		Context: map[string]bool{"deadline_tight": true},
	}
	rep, err := eng.Synthesize(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- feasible ask ---")
	fmt.Println("verdict:", rep.Verdict)
	fmt.Println("systems:", strings.Join(rep.Design.Systems, ", "))
	fmt.Printf("hardware: switch=%s nic=%s server=%s\n",
		rep.Design.Hardware[netarch.KindSwitch],
		rep.Design.Hardware[netarch.KindNIC],
		rep.Design.Hardware[netarch.KindServer])
	fmt.Printf("budget: %d/%d cores, $%d\n\n",
		rep.Design.Metrics["cores_used"], rep.Design.Metrics["cores_total"],
		rep.Design.Metrics["cost_usd"])

	// 2. Optimize instead of taking an arbitrary witness: fewest systems,
	//    then cheapest hardware.
	opt, err := eng.Optimize(sc, []netarch.Objective{
		{Kind: netarch.MinimizeSystems},
		{Kind: netarch.MinimizeCost},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- optimized ---")
	fmt.Println("systems:", strings.Join(opt.Design.Systems, ", "))
	fmt.Printf("minima: %d systems, $%d\n\n", opt.ObjectiveValues[0], opt.ObjectiveValues[1])

	// 3. An impossible ask: a lossless RoCE fabric on a network that
	//    still floods ARP (the Microsoft incident, §2.2 of the paper).
	bad := netarch.Scenario{
		PinnedSystems: []string{"rdma-roce"},
		Context:       map[string]bool{"flooding_enabled": true},
	}
	ex, err := eng.Explain(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- impossible ask ---")
	fmt.Print(ex.String())
}

// What-if workflows from §6 of the paper: when a scenario is infeasible,
// propose the minimal requirements to relax (Suggest); when it is
// under-specified, report where the solution space forks and which
// measurements or preferences would make it unique (Disambiguate). Also
// demonstrates the §3.3 crowd-sourcing flow: an expert contributes a new
// system encoding in the textual DSL and it merges into the compendium.
package main

import (
	"fmt"
	"log"
	"strings"

	"netarch"
)

// expertContribution is a new system encoding contributed in DSL form —
// a hypothetical in-network ML-telemetry system with its own caveats.
const expertContribution = `
system flowlens {
    role: monitoring
    solves: flow_telemetry, detect_queue_length
    requires switch: P4_PROGRAMMABLE
    resource p4_stages: 6
    resource sram_mb: 12
    maturity: research
    context: !deadline_tight
    note origin: "hypothetical contribution showing the crowd-sourcing flow (3.3)"
}

order monitoring {
    flowlens > sonata  "compressed sketches halve the stage budget"
}
`

func main() {
	k := netarch.CaseStudy()

	// --- §3.3: merge an expert's DSL contribution -----------------------
	contrib, err := netarch.ParseDSL(expertContribution)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Merge(contrib); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- merged expert contribution (flowlens) ---")
	st := k.ComputeStats()
	fmt.Printf("compendium now: %d systems, %d order edges\n\n", st.Systems, st.OrderEdges)

	eng, err := netarch.NewEngine(k)
	if err != nil {
		log.Fatal(err)
	}

	// --- Suggest: an over-constrained ask -------------------------------
	// A lossless RoCE fabric, flooding still on, tight deadline, AND a
	// $150k budget: several of these have to give.
	impossible := netarch.Scenario{
		Workloads:     []string{"inference_app"},
		PinnedSystems: []string{"rdma-roce"},
		Context: map[string]bool{
			"flooding_enabled": true,
			"deadline_tight":   true,
		},
		MaxCostUSD: 150_000,
	}
	fmt.Println("--- Suggest: what must I give up? ---")
	sugs, err := eng.Suggest(impossible, 4)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range sugs {
		fmt.Printf("option %d:\n%s", i+1, s)
	}
	fmt.Println()

	// --- Disambiguate: an under-specified ask ---------------------------
	fmt.Println("--- Disambiguate: where does the solution space fork? ---")
	open := netarch.Scenario{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{"deadline_tight": false},
	}
	d, err := eng.Disambiguate(open, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d.String())
	fmt.Println()

	// --- Rack-aware placement -------------------------------------------
	// Listing 3 pins the inference app to racks 0-3; give those racks 12
	// servers each and check the fleet SKU can carry the per-rack share.
	fmt.Println("--- rack-aware placement (deployed_at = racks[0:3]) ---")
	placed := netarch.Scenario{
		Workloads:   []string{"inference_app"},
		RackServers: netarch.RacksOf([]string{"rack0", "rack1", "rack2", "rack3"}, 12),
	}
	rep, err := eng.Synthesize(placed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", rep.Verdict)
	if rep.Verdict == netarch.Feasible {
		fmt.Printf("server SKU able to carry the rack share: %s\n",
			rep.Design.Hardware[netarch.KindServer])
	} else {
		fmt.Print(rep.Explanation.String())
	}

	// Shrink the racks until the placement breaks, to see the explanation.
	placed.RackServers = netarch.RacksOf([]string{"rack0", "rack1", "rack2", "rack3"}, 2)
	rep, err = eng.Synthesize(placed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith only 2 servers per rack:", rep.Verdict)
	if rep.Verdict == netarch.Infeasible {
		for _, c := range rep.Explanation.Conflicts {
			if strings.HasPrefix(c.Name, "resources:rack") {
				fmt.Printf("  %s (%s)\n", c.Name, c.Note)
			}
		}
	}
}

// The §2.3 case study: an architect deploys a latency-sensitive ML
// inference application and must pick five interacting components —
// virtualization, network stack, congestion control, load balancing, and
// queue-length monitoring — plus the hardware they run on.
//
// The program walks the paper's storyline: the naive all-defaults design
// misses the latency goal's requirements; the engine synthesizes a
// compliant design under Listing 3's bound and lexicographic objective;
// and the three §5.1 what-if queries are answered.
package main

import (
	"fmt"
	"log"
	"strings"

	"netarch"
)

func main() {
	k := netarch.CaseStudy() // catalog + the inference_app workload (Listing 3)
	eng, err := netarch.NewEngine(k)
	if err != nil {
		log.Fatal(err)
	}

	// The architect's simplest choices (§2.3): OVS + Linux + Cubic +
	// ECMP, no monitoring, fixed-function hardware. Structurally valid —
	// but it cannot satisfy the workload's queue-monitoring need.
	naive := netarch.Design{
		Systems: []string{"ovs", "linux", "cubic", "ecmp", "tcp"},
		Hardware: map[netarch.HardwareKind]string{
			netarch.KindSwitch: "Aristo FX-32x10G",
			netarch.KindNIC:    "Intella Basic-40G",
			netarch.KindServer: "Dellora R-64c",
		},
	}
	sc := netarch.Scenario{Workloads: []string{"inference_app"}}
	chk, err := eng.Check(naive, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- the naive design (§2.3's starting point) ---")
	fmt.Println("verdict:", chk.Verdict)
	if chk.Verdict == netarch.Infeasible {
		fmt.Print(chk.Explanation.String())
	}
	fmt.Println()

	// Listing 3: the workload encoding carries a performance bound
	// (load balancing at least as good as packet spraying) and the
	// objective Optimize(latency > Hardware cost > monitoring).
	sc = netarch.Scenario{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{"app_modifiable": true},
		Bounds: []netarch.PerformanceBound{
			{Dimension: "load_balancing", Reference: "packet-spraying"},
		},
	}
	opt, err := eng.Optimize(sc, []netarch.Objective{
		{Kind: netarch.PreferOrder, Dimension: "tail_latency"},
		{Kind: netarch.MinimizeCost},
		{Kind: netarch.PreferOrder, Dimension: "monitoring"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- Listing 3: Optimize(latency > hardware cost > monitoring) ---")
	fmt.Println("verdict:", opt.Verdict)
	fmt.Println("systems:", strings.Join(opt.Design.Systems, ", "))
	fmt.Printf("hardware: switch=%s nic=%s server=%s\n",
		opt.Design.Hardware[netarch.KindSwitch],
		opt.Design.Hardware[netarch.KindNIC],
		opt.Design.Hardware[netarch.KindServer])
	fmt.Printf("objective minima: latency-penalty=%d cost=$%d monitoring-penalty=%d\n\n",
		opt.ObjectiveValues[0], opt.ObjectiveValues[1], opt.ObjectiveValues[2])

	// §5.1 query 1: more applications, servers frozen.
	fmt.Println("--- §5.1 Q1: add workloads without changing servers ---")
	frozen := opt.Design.Hardware[netarch.KindServer]
	k.Workloads = append(k.Workloads,
		netarch.Workload{
			Name: "batch_analytics", PeakCores: 1600, PeakMemoryGB: 14400,
			PeakBandwidthGbps: 80, KFlows: 20,
			Needs: []netarch.Property{"congestion_control"},
		})
	eng, err = netarch.NewEngine(k)
	if err != nil {
		log.Fatal(err)
	}
	q1 := netarch.Scenario{
		Workloads:      []string{"inference_app", "batch_analytics"},
		PinnedHardware: map[netarch.HardwareKind]string{netarch.KindServer: frozen},
	}
	rep, err := eng.Synthesize(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %s frozen: %v\n", frozen, rep.Verdict)
	if rep.Verdict == netarch.Infeasible {
		fmt.Print(rep.Explanation.String())
		q1.NumServers = 128
		if rep, err = eng.Synthesize(q1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after growing the fleet to 128 servers of the same SKU: %v\n", rep.Verdict)
	}
	fmt.Println()

	// §5.1 query 2: keep Sonata unless re-planning saves a lot.
	fmt.Println("--- §5.1 Q2: keep Sonata? ---")
	base := netarch.Scenario{
		Workloads: []string{"inference_app"},
		Require:   []netarch.Property{"flow_telemetry", "detect_queue_length"},
	}
	keep := base
	keep.PinnedSystems = []string{"sonata"}
	a, err := eng.Optimize(keep, []netarch.Objective{{Kind: netarch.MinimizeCost}})
	if err != nil {
		log.Fatal(err)
	}
	b, err := eng.Optimize(base, []netarch.Objective{{Kind: netarch.MinimizeCost}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keep sonata: $%d; re-plan freely: $%d; savings $%d\n\n",
		a.ObjectiveValues[0], b.ObjectiveValues[0], a.ObjectiveValues[0]-b.ObjectiveValues[0])

	// §5.1 query 3: is CXL pooling worthwhile?
	fmt.Println("--- §5.1 Q3: deploy CXL memory pooling? ---")
	for _, pool := range []bool{false, true} {
		sc := netarch.Scenario{
			Workloads: []string{"inference_app", "batch_analytics"},
			Context:   map[string]bool{"cxl_pooling": pool},
		}
		r, err := eng.Optimize(sc, []netarch.Objective{{Kind: netarch.MinimizeCost}})
		if err != nil {
			log.Fatal(err)
		}
		if r.Verdict == netarch.Feasible {
			fmt.Printf("cxl_pooling=%-5v cost=$%d server=%s\n",
				pool, r.ObjectiveValues[0], r.Design.Hardware[netarch.KindServer])
		} else {
			fmt.Printf("cxl_pooling=%-5v INFEASIBLE\n", pool)
		}
	}
}

// Closed-loop load benchmark for the serve layer (DESIGN.md §12): an
// in-process server with a warm clone pool takes sustained concurrent
// synth queries at 2× its admission capacity, so the run exercises the
// full request path — admission, pool take, solve, response render — and
// the shed path together. Reported metrics (captured into BENCH_PR6.json
// by `make bench` through cmd/benchjson's Extra map):
//
//	qps        completed requests (200s) per second of wall time
//	p50_ms     median warm-request latency, successful requests only
//	p99_ms     99th-percentile warm-request latency
//	shed_rate  fraction of offered requests shed with 429
package netarch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"netarch"
	"netarch/internal/serve"
)

func BenchmarkServeWarmLoad(b *testing.B) {
	eng, err := netarch.NewEngine(netarch.CaseStudy())
	if err != nil {
		b.Fatal(err)
	}
	// Capacity scales with the machine: GOMAXPROCS executing queries
	// plus an equal-depth queue; the closed loop below offers 2× that.
	g := runtime.GOMAXPROCS(0)
	srv, err := serve.New(serve.Config{
		Engine:       eng,
		Addr:         "127.0.0.1:0",
		MaxInFlight:  g,
		QueueDepth:   g,
		DrainTimeout: 10 * time.Second,
		Prewarm:      []netarch.Scenario{{Workloads: []string{"inference_app"}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		b.Fatal(err)
	}
	url := "http://" + srv.Addr() + "/v1/synth"
	body := []byte(`{"scenario":{"workloads":["inference_app"]}}`)

	// Warm the HTTP connections and the per-mode stats path.
	for i := 0; i < 4; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// 2× admission capacity of closed-loop workers, b.N requests total.
	workers := 4 * g // 2 × (MaxInFlight + QueueDepth)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     int64
		offered   int64
	)
	var wg sync.WaitGroup
	work := make(chan struct{})

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)

				mu.Lock()
				offered++
				switch resp.StatusCode {
				case http.StatusOK:
					latencies = append(latencies, lat)
				case http.StatusTooManyRequests:
					sheds++
				default:
					var eb serve.ErrorBody
					if json.Unmarshal(raw, &eb) != nil {
						b.Errorf("malformed %d body: %s", resp.StatusCode, raw)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	b.StopTimer()

	if len(latencies) == 0 {
		b.Fatal("no successful requests")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	b.ReportMetric(float64(len(latencies))/wall.Seconds(), "qps")
	b.ReportMetric(quant(0.50), "p50_ms")
	b.ReportMetric(quant(0.99), "p99_ms")
	b.ReportMetric(float64(sheds)/float64(offered), "shed_rate")
}

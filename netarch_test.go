package netarch_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"netarch"
)

// TestPublicAPISurface exercises the exported facade end to end: load the
// catalog, synthesize, check, optimize, explain — the quickstart flow.
func TestPublicAPISurface(t *testing.T) {
	k := netarch.DefaultCatalog()
	eng, err := netarch.NewEngine(k)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := eng.Synthesize(netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != netarch.Feasible {
		t.Fatalf("catalog scenario must be feasible: %v", rep.Explanation)
	}
	if len(rep.Design.Systems) == 0 {
		t.Fatal("design must deploy systems")
	}

	// Check the witness back.
	chk, err := eng.Check(*rep.Design, netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Verdict != netarch.Feasible {
		t.Fatalf("witness must pass its own check: %v", chk.Explanation)
	}

	// Optimize.
	opt, err := eng.Optimize(netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	}, []netarch.Objective{{Kind: netarch.MinimizeSystems}})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Verdict != netarch.Feasible || opt.ObjectiveValues[0] < 1 {
		t.Fatalf("optimize failed: %+v", opt)
	}

	// Explain an impossible ask.
	ex, err := eng.Explain(netarch.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil || len(ex.Conflicts) == 0 {
		t.Fatal("impossible scenario must produce an explanation")
	}
}

// TestGovernedAPISurface exercises the resource-governance facade: *Ctx
// queries under budgets, the typed exhaustion error, and degraded-mode
// labelling.
func TestGovernedAPISurface(t *testing.T) {
	eng, err := netarch.NewEngine(netarch.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}

	// A generous budget answers like the ungoverned call.
	rep, err := eng.SynthesizeCtx(context.Background(), netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	}, netarch.Budget{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != netarch.Feasible {
		t.Fatalf("governed synthesize failed: %v", rep.Explanation)
	}
	if rep.Spent.Wall <= 0 {
		t.Errorf("budget accounting missing: %+v", rep.Spent)
	}

	// An expired context is a typed, inspectable refusal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.SynthesizeCtx(ctx, netarch.Scenario{}, netarch.Budget{})
	if !netarch.IsResourceExhausted(err) {
		t.Fatalf("want resource exhaustion, got %v", err)
	}
	var re *netarch.ErrResourceExhausted
	if !errors.As(err, &re) || re.Cause != "canceled" {
		t.Fatalf("exhaustion not inspectable: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) must hold")
	}

	// Governed enumeration labels its completeness explicitly.
	res, err := eng.EnumerateCtx(context.Background(), netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	}, 2, netarch.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Reason != "limit" {
		t.Fatalf("limit truncation mislabeled: %+v", res)
	}
}

func TestCaseStudyExport(t *testing.T) {
	k := netarch.CaseStudy()
	if k.WorkloadByName("inference_app") == nil {
		t.Fatal("case study must include the inference workload")
	}
	g := netarch.NewGreedy(k)
	if g == nil {
		t.Fatal("greedy constructor broken")
	}
}

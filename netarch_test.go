package netarch_test

import (
	"testing"

	"netarch"
)

// TestPublicAPISurface exercises the exported facade end to end: load the
// catalog, synthesize, check, optimize, explain — the quickstart flow.
func TestPublicAPISurface(t *testing.T) {
	k := netarch.DefaultCatalog()
	eng, err := netarch.NewEngine(k)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := eng.Synthesize(netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != netarch.Feasible {
		t.Fatalf("catalog scenario must be feasible: %v", rep.Explanation)
	}
	if len(rep.Design.Systems) == 0 {
		t.Fatal("design must deploy systems")
	}

	// Check the witness back.
	chk, err := eng.Check(*rep.Design, netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Verdict != netarch.Feasible {
		t.Fatalf("witness must pass its own check: %v", chk.Explanation)
	}

	// Optimize.
	opt, err := eng.Optimize(netarch.Scenario{
		Require: []netarch.Property{"congestion_control"},
	}, []netarch.Objective{{Kind: netarch.MinimizeSystems}})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Verdict != netarch.Feasible || opt.ObjectiveValues[0] < 1 {
		t.Fatalf("optimize failed: %+v", opt)
	}

	// Explain an impossible ask.
	ex, err := eng.Explain(netarch.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil || len(ex.Conflicts) == 0 {
		t.Fatal("impossible scenario must produce an explanation")
	}
}

func TestCaseStudyExport(t *testing.T) {
	k := netarch.CaseStudy()
	if k.WorkloadByName("inference_app") == nil {
		t.Fatal("case study must include the inference workload")
	}
	g := netarch.NewGreedy(k)
	if g == nil {
		t.Fatal("greedy constructor broken")
	}
}

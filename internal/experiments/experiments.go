// Package experiments reproduces every evaluation artifact of the paper:
// Figure 1, Listings 1–3, the §4 LLM study, the §5.1 prototype queries,
// the §5.2 reasoner comparison, the §3.1 linearity metric, the PFC case
// ([14], §3.4), and the greedy-baseline comparison. Each experiment is a
// deterministic function returning a Result whose Pass field asserts the
// paper's qualitative claim (the "shape": who wins, what is caught, what
// grows linearly) — absolute numbers are ours, the shape is the paper's.
package experiments

import (
	"fmt"
	"strings"
)

// Result is one reproduced experiment.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (F1, L1, Q1, …).
	ID string
	// Title describes the artifact reproduced.
	Title string
	// PaperClaim is the qualitative claim the paper makes.
	PaperClaim string
	// Rows is the regenerated table; Rows[0] is the header.
	Rows [][]string
	// Finding summarizes what this reproduction measured.
	Finding string
	// Pass reports whether the measured shape matches the paper's claim.
	Pass bool
}

// Table renders the rows as an aligned text table.
func (r *Result) Table() string {
	if len(r.Rows) == 0 {
		return ""
	}
	widths := make([]int, len(r.Rows[0]))
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range r.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// String renders the full experiment report.
func (r *Result) String() string {
	status := "SHAPE-MATCH"
	if !r.Pass {
		status = "SHAPE-MISMATCH"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "paper:    %s\n", r.PaperClaim)
	fmt.Fprintf(&b, "measured: %s\n", r.Finding)
	if len(r.Rows) > 0 {
		b.WriteString(r.Table())
	}
	return b.String()
}

// Runner is a named experiment entry point.
type Runner struct {
	ID  string
	Run func() (*Result, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"F1", RunF1},
		{"L1", RunL1},
		{"L2", RunL2},
		{"L3", RunL3},
		{"Q1", RunQ1},
		{"Q2", RunQ2},
		{"Q3", RunQ3},
		{"E4.1", RunE41},
		{"E4.2", RunE42},
		{"E5.2", RunE52},
		{"M3.1", RunM31},
		{"P1", RunP1},
		{"B1", RunB1},
		{"S1", RunS1},
	}
}

// RunAll executes every experiment, returning results and the first error.
func RunAll() ([]*Result, error) {
	var out []*Result
	for _, r := range All() {
		res, err := r.Run()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", r.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

package experiments

import (
	"fmt"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/kb"
)

// caseStudyAll returns the case-study KB extended with the two additional
// workloads the §5.1 queries introduce.
func caseStudyAll() *kb.KB {
	k := catalog.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	return k
}

// RunQ1 reproduces §5.1 query 1: "I want to support more applications,
// but I can't change my servers since that requires time and human
// effort." The engine first provisions for the inference app alone, then
// is asked to absorb two more workloads with the server SKU frozen.
func RunQ1() (*Result, error) {
	k := caseStudyAll()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	// Baseline: cost-optimal fleet for the inference app only.
	base, err := eng.Optimize(core.Scenario{
		Workloads: []string{"inference_app"},
	}, []core.Objective{{Kind: core.MinimizeCost}})
	if err != nil {
		return nil, err
	}
	if base.Verdict != core.Feasible {
		return nil, fmt.Errorf("baseline infeasible: %s", base.Explanation)
	}
	frozenServer := base.Design.Hardware[kb.KindServer]

	res := &Result{
		ID:         "Q1",
		Title:      "§5.1 Q1: support more applications without changing servers",
		PaperClaim: "the reasoning layer mimics the §2.3 outcomes: adding workloads under frozen hardware either re-plans systems or names the conflict",
		Rows:       [][]string{{"step", "verdict", "detail"}},
	}
	res.Rows = append(res.Rows, []string{
		"provision for inference_app",
		"FEASIBLE",
		fmt.Sprintf("server=%s cost=$%d", frozenServer, base.ObjectiveValues[0]),
	})

	// Add the two new workloads, servers frozen at the baseline SKU and
	// the same fleet size.
	grown := core.Scenario{
		Workloads:      []string{"inference_app", "batch_analytics", "storage_backend"},
		PinnedHardware: map[kb.HardwareKind]string{kb.KindServer: frozenServer},
		Context:        map[string]bool{"pfc_enabled": true}, // storage wants lossless
	}
	rep, err := eng.Synthesize(grown)
	if err != nil {
		return nil, err
	}
	verdict := rep.Verdict.String()
	detail := ""
	if rep.Verdict == core.Infeasible {
		detail = firstConflict(rep.Explanation)
	} else {
		detail = fmt.Sprintf("cores %d/%d", rep.Design.Metrics["cores_used"], rep.Design.Metrics["cores_total"])
	}
	res.Rows = append(res.Rows, []string{"add 2 workloads, servers frozen", verdict, detail})

	// If infeasible on capacity, find the smallest fleet growth that
	// fixes it while keeping the SKU frozen — the actionable answer the
	// architect wants.
	infeasibleAsExpected := rep.Verdict == core.Infeasible
	fixedAt := 0
	if infeasibleAsExpected {
		for n := 64; n <= 256; n += 16 {
			grown.NumServers = n
			rep2, err := eng.Synthesize(grown)
			if err != nil {
				return nil, err
			}
			if rep2.Verdict == core.Feasible {
				fixedAt = n
				res.Rows = append(res.Rows, []string{
					fmt.Sprintf("grow fleet to %d servers (same SKU)", n),
					"FEASIBLE",
					fmt.Sprintf("cores %d/%d", rep2.Design.Metrics["cores_used"], rep2.Design.Metrics["cores_total"]),
				})
				break
			}
		}
	}
	res.Pass = infeasibleAsExpected && fixedAt > 0
	res.Finding = fmt.Sprintf(
		"frozen servers cannot absorb the new workloads (capacity conflict named); growing the fleet to %d servers of the same SKU restores feasibility",
		fixedAt)
	if !res.Pass {
		res.Finding = "unexpected shape — see rows"
	}
	return res, nil
}

// RunQ2 reproduces §5.1 query 2: "I have already deployed Sonata, and I
// don't want to change it unless there are huge performance benefits or
// cost savings." The engine prices both worlds and recommends.
func RunQ2() (*Result, error) {
	k := caseStudyAll()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	sc := core.Scenario{
		Workloads: []string{"inference_app"},
		Require:   []kb.Property{"flow_telemetry", "detect_queue_length"},
	}
	keep := sc
	keep.PinnedSystems = []string{"sonata"}
	withSonata, err := eng.Optimize(keep, []core.Objective{{Kind: core.MinimizeCost}})
	if err != nil {
		return nil, err
	}
	free, err := eng.Optimize(sc, []core.Objective{{Kind: core.MinimizeCost}})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "Q2",
		Title:      "§5.1 Q2: keep Sonata unless huge benefits or cost savings",
		PaperClaim: "the engine quantifies the cost of keeping an incumbent system vs re-planning",
		Rows:       [][]string{{"world", "verdict", "cost USD", "monitoring systems"}},
	}
	if withSonata.Verdict != core.Feasible || free.Verdict != core.Feasible {
		res.Finding = "one world infeasible — see explanation"
		return res, nil
	}
	res.Rows = append(res.Rows,
		[]string{"keep sonata", "FEASIBLE", fmt.Sprint(withSonata.ObjectiveValues[0]),
			monitoringOf(k, withSonata.Design)},
		[]string{"re-plan freely", "FEASIBLE", fmt.Sprint(free.ObjectiveValues[0]),
			monitoringOf(k, free.Design)},
	)
	keepCost, freeCost := withSonata.ObjectiveValues[0], free.ObjectiveValues[0]
	savings := keepCost - freeCost
	threshold := keepCost / 10 // "huge" = >10% savings
	recommendation := "KEEP sonata"
	if savings > threshold {
		recommendation = "REPLACE sonata"
	}
	res.Rows = append(res.Rows, []string{"recommendation", recommendation,
		fmt.Sprintf("savings $%d", savings), fmt.Sprintf("threshold $%d", threshold)})
	// Shape: keeping the incumbent costs at least as much as re-planning
	// (it is a strictly more constrained problem), and the delta drives
	// the recommendation.
	res.Pass = keepCost >= freeCost
	res.Finding = fmt.Sprintf(
		"keeping Sonata costs $%d vs $%d re-planned; savings $%d vs huge-threshold $%d → %s",
		keepCost, freeCost, savings, threshold, recommendation)
	return res, nil
}

func monitoringOf(k *kb.KB, d *core.Design) string {
	out := ""
	for _, s := range d.Systems {
		if sys := k.SystemByName(s); sys != nil && sys.Role == kb.RoleMonitoring {
			if out != "" {
				out += " "
			}
			out += s
		}
	}
	if out == "" {
		out = "(none)"
	}
	return out
}

// RunQ3 reproduces §5.1 query 3: "Given my current workloads, is it
// worthwhile to deploy CXL memory pooling?" The engine prices the
// memory-heavy workload mix with and without pooling.
func RunQ3() (*Result, error) {
	k := caseStudyAll()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	sc := core.Scenario{
		Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
		NumServers: 64, // enough cores that memory, not CPU, is the binding budget
		Context:    map[string]bool{"pfc_enabled": true},
	}
	without := sc
	without.Context = map[string]bool{"pfc_enabled": true, "cxl_pooling": false}
	withPool := sc
	withPool.Context = map[string]bool{"pfc_enabled": true, "cxl_pooling": true}

	res := &Result{
		ID:         "Q3",
		Title:      "§5.1 Q3: is CXL memory pooling worthwhile for these workloads?",
		PaperClaim: "the engine answers what-if hardware questions by re-solving under the toggled assumption",
		Rows:       [][]string{{"world", "verdict", "cost USD", "server SKU"}},
	}
	price := func(s core.Scenario) (*core.OptimizeResult, error) {
		return eng.Optimize(s, []core.Objective{{Kind: core.MinimizeCost}})
	}
	a, err := price(without)
	if err != nil {
		return nil, err
	}
	b, err := price(withPool)
	if err != nil {
		return nil, err
	}
	row := func(label string, r *core.OptimizeResult) []string {
		if r.Verdict != core.Feasible {
			return []string{label, "INFEASIBLE", "-", firstConflict(r.Explanation)}
		}
		return []string{label, "FEASIBLE", fmt.Sprint(r.ObjectiveValues[0]),
			r.Design.Hardware[kb.KindServer]}
	}
	res.Rows = append(res.Rows, row("without CXL pooling", a), row("with CXL pooling", b))

	worthwhile := false
	if a.Verdict == core.Feasible && b.Verdict == core.Feasible {
		worthwhile = b.ObjectiveValues[0] < a.ObjectiveValues[0]
	} else if b.Verdict == core.Feasible {
		worthwhile = true
	}
	verdict := "NOT WORTHWHILE"
	if worthwhile {
		verdict = "WORTHWHILE"
	}
	res.Rows = append(res.Rows, []string{"verdict", verdict, "", ""})
	// Shape: pooling only adds capacity, so the with-pooling optimum can
	// never cost more; for this memory-heavy mix it must strictly win.
	res.Pass = a.Verdict == core.Feasible && b.Verdict == core.Feasible &&
		b.ObjectiveValues[0] <= a.ObjectiveValues[0] && worthwhile
	res.Finding = fmt.Sprintf("CXL pooling is %s for this workload mix", verdict)
	if a.Verdict == core.Feasible && b.Verdict == core.Feasible {
		res.Finding += fmt.Sprintf(" (cost $%d -> $%d)", a.ObjectiveValues[0], b.ObjectiveValues[0])
	}
	return res, nil
}

func firstConflict(e *core.Explanation) string {
	if e == nil || len(e.Conflicts) == 0 {
		return "(no explanation)"
	}
	return e.Conflicts[0].Name
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/kb"
	"netarch/internal/topo"
)

// RunM31 reproduces §3.1's success metric: "the length of specification
// should grow linearly with the number of systems, hardware and workloads
// included" — and contrasts it against the P4-program-packing domain the
// paper excludes, whose description grows super-linearly.
func RunM31() (*Result, error) {
	full := catalog.Default()
	res := &Result{
		ID:    "M3.1",
		Title: "§3.1 metric: specification length vs knowledge-base size",
		PaperClaim: "spec length grows linearly in the number of systems/hardware; P4-program packing " +
			"would grow super-linearly and is excluded",
		Rows: [][]string{{"entries (systems+hardware)", "spec size (facts)", "facts/entry"}},
	}
	type pt struct{ n, size int }
	var pts []pt
	for frac := 1; frac <= 5; frac++ {
		sub := &kb.KB{
			Systems:  full.Systems[:len(full.Systems)*frac/5],
			Hardware: full.Hardware[:len(full.Hardware)*frac/5],
		}
		st := sub.ComputeStats()
		n := st.Systems + st.Hardware
		pts = append(pts, pt{n, st.SpecSize})
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(st.SpecSize),
			fmt.Sprintf("%.2f", float64(st.SpecSize)/float64(n)),
		})
	}
	// Linearity: facts/entry stays within a narrow band.
	minR, maxR := 1e18, 0.0
	for _, p := range pts {
		r := float64(p.size) / float64(p.n)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	linear := maxR/minR < 1.8

	// Contrast: describing exactly which subsets of P4 programs co-fit a
	// switch requires up to 2^k facts for k programs (the paper's
	// excluded domain). We count the subsets that would need explicit
	// enumeration for the catalog's P4 systems.
	p4Systems := 0
	for i := range full.Systems {
		if full.Systems[i].Resources[kb.ResP4Stages] > 0 {
			p4Systems++
		}
	}
	subsetFacts := int64(1) << p4Systems
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("(excluded domain: %d P4 programs)", p4Systems),
		fmt.Sprintf("%d subset facts", subsetFacts),
		"exponential",
	})

	res.Pass = linear
	res.Finding = fmt.Sprintf(
		"facts/entry stays in [%.2f, %.2f] — linear; explicit P4-packing would need %d facts for %d programs (excluded, handled by the stage-budget approximation instead)",
		minR, maxR, subsetFacts, p4Systems)
	return res, nil
}

// RunP1 reproduces the PFC deadlock case ([14], §2.2, §3.4): the
// graph-theoretic ground truth (cyclic buffer dependencies appear exactly
// when flooding is enabled) agrees with the encoded expert rule, and the
// engine rejects PFC+flooding designs.
func RunP1() (*Result, error) {
	res := &Result{
		ID:    "P1",
		Title: "PFC deadlock: up-down routing safe, flooding deadlocks (Guo et al. incident)",
		PaperClaim: "Microsoft reasoned up-down routing excludes cyclic buffer dependencies, but flooding " +
			"broke the invariant; the expert rule 'PFC ⇒ no flooding' is checkable in predicate logic",
		Rows: [][]string{{"topology", "flooding", "cyclic buffer dependency", "witness length"}},
	}
	type tc struct {
		label string
		build func() (*topo.Topology, error)
	}
	cases := []tc{
		{"leaf-spine 4x8", func() (*topo.Topology, error) { return topo.NewLeafSpine(4, 8, 4, 64) }},
		{"fat-tree k=4", func() (*topo.Topology, error) { return topo.NewFatTree(4, 64) }},
		{"fat-tree k=8", func() (*topo.Topology, error) { return topo.NewFatTree(8, 64) }},
	}
	pass := true
	for _, c := range cases {
		t, err := c.build()
		if err != nil {
			return nil, err
		}
		for _, flooding := range []bool{false, true} {
			rep := t.PFCDeadlockCheck(flooding)
			if rep.Deadlock != flooding {
				pass = false
			}
			res.Rows = append(res.Rows, []string{
				c.label, fmt.Sprint(flooding), fmt.Sprint(rep.Deadlock),
				fmt.Sprint(len(rep.Cycle)),
			})
		}
	}

	// The expert rule agrees: the engine rejects pfc+flooding.
	eng, err := core.New(catalog.Default())
	if err != nil {
		return nil, err
	}
	rep, err := eng.Synthesize(core.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	})
	if err != nil {
		return nil, err
	}
	ruleFires := rep.Verdict == core.Infeasible
	if !ruleFires {
		pass = false
	}
	res.Rows = append(res.Rows, []string{
		"engine (rule pfc_no_flooding)", "true", fmt.Sprint(ruleFires), "-",
	})
	res.Pass = pass
	res.Finding = "graph check and expert rule agree on every configuration: deadlock iff flooding"
	if !pass {
		res.Finding = "disagreement between graph check and rule — see rows"
	}
	return res, nil
}

// CatalogFraction cuts the catalog down to roughly frac percent while
// keeping every role and hardware kind represented, so smaller catalogs
// stay feasible for the case-study workload. Rules and orders carry
// over, filtered to the surviving systems and SKUs: a rule is kept when
// every system and hardware atom it mentions survives (context,
// property, and capability atoms never disqualify — they exist at every
// fraction), and an order keeps exactly the edges and equalities whose
// endpoints both survive. Earlier revisions dropped Rules and Orders
// entirely, which made every caller patch them back by hand at
// frac=100 and silently under-constrained every smaller fraction.
// Shared by the S1 experiment and the scaling benchmarks.
func CatalogFraction(full *kb.KB, frac int) *kb.KB {
	sub := &kb.KB{Workloads: full.Workloads}
	perRole := map[kb.Role][]kb.System{}
	for _, s := range full.Systems {
		perRole[s.Role] = append(perRole[s.Role], s)
	}
	for _, role := range kb.Roles() {
		ss := perRole[role]
		n := len(ss) * frac / 100
		if n < 1 {
			n = 1
		}
		sub.Systems = append(sub.Systems, ss[:n]...)
	}
	perKind := map[kb.HardwareKind][]kb.Hardware{}
	for _, h := range full.Hardware {
		perKind[h.Kind] = append(perKind[h.Kind], h)
	}
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		hs := perKind[kind]
		n := len(hs) * frac / 100
		if n < 2 {
			n = 2
		}
		sub.Hardware = append(sub.Hardware, hs[:n]...)
	}
	haveSys := map[string]bool{}
	for i := range sub.Systems {
		haveSys[sub.Systems[i].Name] = true
	}
	haveHw := map[string]bool{}
	for i := range sub.Hardware {
		haveHw[sub.Hardware[i].Name] = true
	}
	var atoms []string
	for _, r := range full.Rules {
		atoms = r.Expr.Atoms(atoms[:0])
		keep := true
		for _, a := range atoms {
			if name, ok := strings.CutPrefix(a, "system:"); ok && !haveSys[name] {
				keep = false
				break
			}
			if name, ok := strings.CutPrefix(a, "hw:"); ok && !haveHw[name] {
				keep = false
				break
			}
		}
		if keep {
			sub.Rules = append(sub.Rules, r)
		}
	}
	// Order endpoints that are not systems (opaque items a dimension
	// ranks) always survive; system endpoints must be in the sub-KB.
	isSys := map[string]bool{}
	for i := range full.Systems {
		isSys[full.Systems[i].Name] = true
	}
	keepNode := func(name string) bool { return !isSys[name] || haveSys[name] }
	for _, spec := range full.Orders {
		o := kb.OrderSpec{Dimension: spec.Dimension}
		for _, e := range spec.Edges {
			if keepNode(e.Better) && keepNode(e.Worse) {
				o.Edges = append(o.Edges, e)
			}
		}
		for _, q := range spec.Equals {
			if keepNode(q.A) && keepNode(q.B) {
				o.Equals = append(o.Equals, q)
			}
		}
		if len(o.Edges) > 0 || len(o.Equals) > 0 {
			sub.Orders = append(sub.Orders, o)
		}
	}
	return sub
}

// RunS1 measures synthesis latency as the catalog grows — the paper bets
// that "the power of such solvers to explore combinatorial search spaces
// will be critical"; the shim must stay interactive at full catalog
// scale.
func RunS1() (*Result, error) {
	res := &Result{
		ID:         "S1",
		Title:      "shim scalability: synthesis latency vs catalog size",
		PaperClaim: "SAT solvers make the combinatorial design space tractable at compendium scale",
		Rows:       [][]string{{"systems", "hardware", "compile+solve", "conflicts"}},
	}
	full := catalog.CaseStudy()
	pass := true
	var fullDur time.Duration
	for frac := 1; frac <= 4; frac++ {
		sub := CatalogFraction(full, frac*25)
		eng, err := core.New(sub)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := eng.Synthesize(core.Scenario{Workloads: []string{"inference_app"}})
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		// Per-role slicing keeps every fraction feasible, so each row is
		// a real end-to-end synthesis, not a fast UNSAT.
		if rep.Verdict != core.Feasible {
			pass = false
		}
		if frac == 4 {
			fullDur = dur
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(len(sub.Systems)), fmt.Sprint(len(sub.Hardware)),
			dur.Round(time.Millisecond).String(), fmt.Sprint(rep.SolverConflicts),
		})
	}
	if fullDur > 5*time.Second {
		pass = false
	}
	res.Pass = pass
	res.Finding = fmt.Sprintf("full-catalog synthesis completes in %s — interactive-speed",
		fullDur.Round(time.Millisecond))
	return res, nil
}

package experiments

import (
	"fmt"
	"math/rand"

	"netarch/internal/core"
	"netarch/internal/kb"
)

// cannedQuery is one §5.2 comparison query with its ground-truth checker.
type cannedQuery struct {
	name    string
	nuanced bool
	// run returns (satCorrect, greedyCorrect).
	run func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error)
}

// RunE52 reproduces §5.2: the SAT engine vs the LLM-style greedy
// reasoner. Both answer straightforward aggregate questions correctly;
// only the SAT engine survives the nuanced, interacting ones.
func RunE52() (*Result, error) {
	k := caseStudyAll()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	g := core.NewGreedy(k)

	queries := []cannedQuery{
		{
			name: "minimum cores for workloads+simon (simple aggregate)",
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				// Ground truth by direct arithmetic.
				w := k.WorkloadByName("inference_app")
				want := w.PeakCores + k.SystemByName("simon").CoresPerKFlows*w.KFlows
				got := g.MinCores([]string{"inference_app"}, []string{"simon"})
				return true, got == want, nil
			},
		},
		{
			name: "deployability of dctcp on an ECN fabric (simple)",
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				sc := core.Scenario{
					Workloads:     []string{"inference_app"},
					PinnedSystems: []string{"dctcp"},
				}
				rep, err := eng.Synthesize(sc)
				if err != nil {
					return false, false, err
				}
				satOK := rep.Verdict == core.Feasible
				d, ok := g.Synthesize(sc)
				greedyOK := ok && d.HasSystem("dctcp")
				return satOK, greedyOK, nil
			},
		},
		{
			name:    "lossless storage on a flooding fabric (PFC rule)",
			nuanced: true,
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				sc := core.Scenario{
					Workloads: []string{"storage_backend"},
					Context:   map[string]bool{"flooding_enabled": true, "pfc_enabled": true},
				}
				rep, err := eng.Synthesize(sc)
				if err != nil {
					return false, false, err
				}
				// Ground truth: infeasible (pfc_no_flooding).
				satCorrect := rep.Verdict == core.Infeasible
				d, ok := g.Synthesize(sc)
				greedyCorrect := !ok // claiming a design is the wrong answer
				if ok {
					chk, err := eng.Check(*d, sc)
					if err != nil {
						return false, false, err
					}
					greedyCorrect = chk.Verdict == core.Feasible // (never; kept for symmetry)
				}
				return satCorrect, greedyCorrect, nil
			},
		},
		{
			name:    "P4-friendly systems on forced programmable switches (stage budget)",
			nuanced: true,
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				// Small-pipeline P4 switch only; sonata(8)+marple(10)
				// exceed its 12 stages.
				sc := core.Scenario{
					Workloads:     []string{"inference_app"},
					Require:       []kb.Property{"flow_telemetry"},
					PinnedSystems: []string{"sonata", "marple"},
					AllowedHardware: map[kb.HardwareKind][]string{
						kb.KindSwitch: {"Tofinia P4-32x100G"},
					},
				}
				rep, err := eng.Synthesize(sc)
				if err != nil {
					return false, false, err
				}
				satCorrect := rep.Verdict == core.Infeasible
				d, ok := g.Synthesize(sc)
				greedyCorrect := !ok
				if ok {
					chk, err := eng.Check(*d, sc)
					if err != nil {
						return false, false, err
					}
					greedyCorrect = chk.Verdict == core.Feasible
				}
				return satCorrect, greedyCorrect, nil
			},
		},
		{
			name:    "Annulus without WAN/DC competition (usefulness gate)",
			nuanced: true,
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				sc := core.Scenario{
					Workloads:        []string{"inference_app"},
					ForbiddenSystems: allCCExcept(k, "annulus"),
					Context:          map[string]bool{"wan_dc_mix": false},
				}
				rep, err := eng.Synthesize(sc)
				if err != nil {
					return false, false, err
				}
				satCorrect := rep.Verdict == core.Infeasible
				d, ok := g.Synthesize(sc)
				greedyCorrect := !ok
				if ok && d.HasSystem("annulus") {
					greedyCorrect = false // annulus solves nothing here
				}
				return satCorrect, greedyCorrect, nil
			},
		},
		{
			name:    "kernel-bypass stack without app modification (hidden requirement)",
			nuanced: true,
			run: func(eng *core.Engine, g *core.GreedyReasoner) (bool, bool, error) {
				sc := core.Scenario{
					Workloads:        []string{"inference_app"},
					Require:          []kb.Property{"low_latency_stack"},
					ForbiddenSystems: []string{"shenango", "caladan", "snap"},
					Context:          map[string]bool{"app_modifiable": false, "deadline_tight": false},
				}
				// Remaining low-latency stacks (zygos/demikernel/ix) all
				// require app modification: infeasible.
				rep, err := eng.Synthesize(sc)
				if err != nil {
					return false, false, err
				}
				satCorrect := rep.Verdict == core.Infeasible
				d, ok := g.Synthesize(sc)
				greedyCorrect := !ok
				if ok {
					chk, err := eng.Check(*d, sc)
					if err != nil {
						return false, false, err
					}
					greedyCorrect = chk.Verdict == core.Feasible
				}
				return satCorrect, greedyCorrect, nil
			},
		},
	}

	res := &Result{
		ID:    "E5.2",
		Title: "§5.2: SAT engine vs LLM-style greedy reasoner",
		PaperClaim: "the LLM accurately determined straightforward requirements (minimum cores) but failed " +
			"on nuances (contextual comparisons, forced programmable switches)",
		Rows: [][]string{{"query", "class", "SAT correct", "greedy correct"}},
	}
	satSimple, satNuanced := 0, 0
	greedySimple, greedyNuanced := 0, 0
	nSimple, nNuanced := 0, 0
	for _, q := range queries {
		satOK, greedyOK, err := q.run(eng, g)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", q.name, err)
		}
		class := "simple"
		if q.nuanced {
			class = "nuanced"
			nNuanced++
			if satOK {
				satNuanced++
			}
			if greedyOK {
				greedyNuanced++
			}
		} else {
			nSimple++
			if satOK {
				satSimple++
			}
			if greedyOK {
				greedySimple++
			}
		}
		res.Rows = append(res.Rows, []string{q.name, class, fmt.Sprint(satOK), fmt.Sprint(greedyOK)})
	}
	res.Pass = satSimple == nSimple && satNuanced == nNuanced &&
		greedySimple == nSimple && greedyNuanced < nNuanced
	res.Finding = fmt.Sprintf(
		"SAT %d/%d simple, %d/%d nuanced; greedy %d/%d simple, %d/%d nuanced — the paper's asymmetry",
		satSimple, nSimple, satNuanced, nNuanced, greedySimple, nSimple, greedyNuanced, nNuanced)
	return res, nil
}

func allCCExcept(k *kb.KB, keep string) []string {
	var out []string
	for _, s := range k.SystemsByRole(kb.RoleCongestionControl) {
		if s.Name != keep {
			out = append(out, s.Name)
		}
	}
	return out
}

// RunB1 compares greedy vs SAT synthesis over randomized scenarios: the
// SAT verdict is ground truth (the procedure is complete); the greedy
// baseline's answer is scored against it.
func RunB1() (*Result, error) {
	k := caseStudyAll()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	g := core.NewGreedy(k)
	rng := rand.New(rand.NewSource(99))

	props := []kb.Property{
		"congestion_control", "load_balancing", "detect_queue_length",
		"flow_telemetry", "low_latency_stack", "packet_filtering",
		"network_virtualization", "tail_latency_control",
	}
	ctxAtoms := []string{
		"deadline_tight", "app_modifiable", "wan_dc_mix",
		"flooding_enabled", "pfc_enabled", "scavenger_ok", "deep_queues",
	}

	const trials = 100
	correct, feasibleCount := 0, 0
	for i := 0; i < trials; i++ {
		sc := core.Scenario{
			Workloads: []string{"inference_app"},
			Context:   map[string]bool{},
		}
		for _, a := range ctxAtoms {
			if rng.Intn(2) == 0 {
				sc.Context[a] = rng.Intn(2) == 0
			}
		}
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(props))
		for _, pi := range perm[:n] {
			sc.Require = append(sc.Require, props[pi])
		}
		rep, err := eng.Synthesize(sc)
		if err != nil {
			return nil, err
		}
		truth := rep.Verdict == core.Feasible
		if truth {
			feasibleCount++
		}
		d, claimed := g.Synthesize(sc)
		greedyRight := false
		if claimed {
			chk, err := eng.Check(*d, sc)
			if err != nil {
				return nil, err
			}
			greedyRight = truth && chk.Verdict == core.Feasible
		} else {
			greedyRight = !truth
		}
		if greedyRight {
			correct++
		}
	}

	res := &Result{
		ID:    "B1",
		Title: "baseline: greedy (whiteboard-style) vs SAT synthesis on random scenarios",
		PaperClaim: "manual planning can easily result in overlooked design choices or missed complex " +
			"inter-dependencies (§1); complete search does not",
		Rows: [][]string{
			{"reasoner", "correct", "of", "accuracy"},
			{"SAT engine (ground truth: complete)", fmt.Sprint(trials), fmt.Sprint(trials), "100%"},
			{"greedy baseline", fmt.Sprint(correct), fmt.Sprint(trials),
				fmt.Sprintf("%d%%", correct*100/trials)},
			{"feasible scenarios in sample", fmt.Sprint(feasibleCount), fmt.Sprint(trials), "-"},
		},
	}
	res.Pass = correct < trials && feasibleCount > 0 && feasibleCount < trials
	res.Finding = fmt.Sprintf(
		"greedy agrees with the complete engine on %d/%d random scenarios (%d feasible in sample)",
		correct, trials, feasibleCount)
	return res, nil
}

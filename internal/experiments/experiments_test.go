package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsShapeMatch is the repository's headline integration
// test: every reproduced evaluation artifact must match the paper's
// qualitative claim.
func TestAllExperimentsShapeMatch(t *testing.T) {
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(All()) {
		t.Fatalf("ran %d of %d experiments", len(results), len(All()))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s (%s): shape mismatch\n%s", r.ID, r.Title, r.String())
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID: "X", Title: "t", PaperClaim: "c", Finding: "f", Pass: true,
		Rows: [][]string{{"a", "bb"}, {"ccc", "d"}},
	}
	s := r.String()
	for _, want := range []string{"== X: t [SHAPE-MATCH]", "paper:    c", "measured: f", "ccc"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
	r.Pass = false
	if !strings.Contains(r.String(), "SHAPE-MISMATCH") {
		t.Error("failing result must render as mismatch")
	}
	empty := &Result{ID: "Y"}
	if empty.Table() != "" {
		t.Error("empty rows must render empty table")
	}
}

func TestEdgeSetsEqual(t *testing.T) {
	a := [][2]string{{"a", "b"}, {"c", "d"}}
	b := [][2]string{{"c", "d"}, {"a", "b"}}
	if !edgeSetsEqual(a, b) {
		t.Error("order must not matter")
	}
	if edgeSetsEqual(a, a[:1]) {
		t.Error("length must matter")
	}
}

func TestFig1ReferenceCoversAllDimensions(t *testing.T) {
	for _, dim := range []string{"throughput", "isolation", "app_modification"} {
		if len(fig1Reference[dim]) == 0 {
			t.Errorf("no reference contexts for dimension %s", dim)
		}
	}
}

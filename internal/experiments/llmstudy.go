package experiments

import (
	"fmt"

	"netarch/internal/catalog"
	"netarch/internal/extract"
	"netarch/internal/kb"
)

// RunE41 reproduces §4.1: extraction accuracy of the (simulated) LLM on
// structured hardware spec sheets vs prose system descriptions, split by
// fact class.
func RunE41() (*Result, error) {
	llm := extract.NewSimulatedLLM(41)

	// Hardware corpus: render every catalog SKU to a spec sheet, extract
	// it back, score field-exactly.
	var hwAcc extract.Accuracy
	hwCount := 0
	for _, h := range catalog.Hardware() {
		h := h
		got, err := llm.ExtractHardware(extract.RenderSpecSheet(&h))
		if err != nil {
			return nil, err
		}
		hwAcc.Add(extract.ScoreHardware(got, h))
		hwCount++
	}

	// System corpus: repeated trials over the prose docs, scored by fact
	// class (hardware requirements / conditions / resource numbers).
	var capAcc, condAcc, numAcc extract.Accuracy
	const trials = 40
	annulusConditionMissed := 0
	for trial := 0; trial < trials; trial++ {
		for _, doc := range extract.SystemDocs() {
			got := llm.ExtractSystem(doc)
			s := extract.ScoreSystem(got, doc.Truth)
			_ = s
			// Class-level scoring.
			for kind, caps := range doc.Truth.RequiresCaps {
				for _, c := range caps {
					capAcc.Total++
					if reqHasCap(got.RequiresCaps[kind], c) {
						capAcc.Correct++
					}
				}
			}
			conds := append(append([]kb.Condition{}, doc.Truth.RequiresContext...), doc.Truth.UsefulOnlyWhen...)
			for _, c := range conds {
				condAcc.Total++
				if encHasCondition(got, c) {
					condAcc.Correct++
				} else if doc.Name == "annulus" && c.Atom == "wan_dc_mix" {
					annulusConditionMissed++
				}
			}
			for r, v := range doc.Truth.Resources {
				numAcc.Total++
				if got.Resources[r] == v {
					numAcc.Correct++
				}
			}
			if doc.Truth.CoresPerKFlows != 0 {
				numAcc.Total++
				if got.CoresPerKFlows == doc.Truth.CoresPerKFlows {
					numAcc.Correct++
				}
			}
		}
	}

	res := &Result{
		ID:    "E4.1",
		Title: "§4.1: extraction accuracy by source and fact class",
		PaperClaim: "hardware specs extract at 100%; system encodings find hardware requirements but miss " +
			"conditions (e.g. Annulus needed only under WAN/DC competition) and resource amounts",
		Rows: [][]string{
			{"corpus", "fact class", "accuracy"},
			{fmt.Sprintf("hardware specs (n=%d)", hwCount), "all fields", pct(hwAcc)},
			{"system docs", "hardware requirements", pct(capAcc)},
			{"system docs", "conditions (deploy/useful-when)", pct(condAcc)},
			{"system docs", "resource amounts", pct(numAcc)},
		},
	}
	res.Pass = hwAcc.Frac() == 1.0 &&
		capAcc.Frac() == 1.0 &&
		condAcc.Frac() < 1.0 &&
		numAcc.Frac() < 1.0 &&
		annulusConditionMissed > 0
	res.Finding = fmt.Sprintf(
		"hardware %s, hw-requirements %s ≫ conditions %s / amounts %s; the Annulus WAN/DC condition was missed in %d/%d trials",
		pct(hwAcc), pct(capAcc), pct(condAcc), pct(numAcc), annulusConditionMissed, trials)
	return res, nil
}

func pct(a extract.Accuracy) string {
	return fmt.Sprintf("%.0f%% (%d/%d)", 100*a.Frac(), a.Correct, a.Total)
}

func reqHasCap(caps []kb.Capability, c kb.Capability) bool {
	for _, x := range caps {
		if x == c {
			return true
		}
	}
	return false
}

func encHasCondition(s kb.System, cond kb.Condition) bool {
	for _, c := range s.RequiresContext {
		if c == cond {
			return true
		}
	}
	for _, c := range s.UsefulOnlyWhen {
		if c == cond {
			return true
		}
	}
	return false
}

// RunE42 reproduces §4.2: checking existing encodings. Existence-class
// errors (a missing requirement/condition) are caught reliably; value-
// class errors are caught only when the source sentence pins the value.
func RunE42() (*Result, error) {
	docs := extract.SystemDocs()

	var existenceCaught, existenceTotal int
	var valueCaught, valueTotal int
	shenangoCaught := false
	sonataCaught := false

	for _, doc := range docs {
		truth := doc.Truth
		// Drop each capability requirement.
		for kind, caps := range truth.RequiresCaps {
			for _, c := range caps {
				broken := truth
				broken.RequiresCaps = map[kb.HardwareKind][]kb.Capability{}
				for k2, cs := range truth.RequiresCaps {
					for _, c2 := range cs {
						if k2 == kind && c2 == c {
							continue
						}
						broken.RequiresCaps[k2] = append(broken.RequiresCaps[k2], c2)
					}
				}
				existenceTotal++
				for _, is := range extract.CheckSystemEncoding(broken, doc) {
					if is.Kind == "missing_requirement" {
						existenceCaught++
						if doc.Name == "shenango" && c == kb.CapInterruptPoll {
							shenangoCaught = true
						}
						break
					}
				}
			}
		}
		// Drop each condition.
		for ci := range truth.UsefulOnlyWhen {
			broken := truth
			broken.UsefulOnlyWhen = append(
				append([]kb.Condition{}, truth.UsefulOnlyWhen[:ci]...),
				truth.UsefulOnlyWhen[ci+1:]...)
			existenceTotal++
			for _, is := range extract.CheckSystemEncoding(broken, doc) {
				if is.Kind == "missing_condition" {
					existenceCaught++
					break
				}
			}
		}
		// Perturb each resource value: off-by-one and plausible-swap.
		for r, v := range truth.Resources {
			for _, alt := range []int64{v + 1, v * 2} {
				broken := truth
				broken.Resources = map[kb.Resource]int64{}
				for r2, v2 := range truth.Resources {
					broken.Resources[r2] = v2
				}
				broken.Resources[r] = alt
				valueTotal++
				for _, is := range extract.CheckSystemEncoding(broken, doc) {
					if is.Kind == "wrong_value" {
						valueCaught++
						if doc.Name == "sonata" && r == kb.ResP4Stages {
							sonataCaught = true
						}
						break
					}
				}
			}
		}
		// The plausible-confusion variant: a wrong value equal to another
		// number in the sentence escapes (number-loaded sentences).
		for r, v := range truth.Resources {
			for _, sent := range doc.Sentences {
				res, _, ok := resourceSentence(sent, string(r))
				if !ok {
					continue
				}
				_ = res
				for _, n := range extract.AllNumbers(sent) {
					if n == v {
						continue
					}
					broken := truth
					broken.Resources = map[kb.Resource]int64{r: n}
					valueTotal++
					for _, is := range extract.CheckSystemEncoding(broken, doc) {
						if is.Kind == "wrong_value" {
							valueCaught++
							break
						}
					}
				}
			}
		}
	}

	exRate := rate(existenceCaught, existenceTotal)
	valRate := rate(valueCaught, valueTotal)
	res := &Result{
		ID:    "E4.2",
		Title: "§4.2: checking encodings — existence vs value asymmetry",
		PaperClaim: "the checker finds missing conditions (Shenango interrupt polling) and wrong P4-stage " +
			"counts (Sonata), but cannot always verify values in number-loaded conditions",
		Rows: [][]string{
			{"error class", "injected", "caught", "rate"},
			{"existence (missing requirement/condition)", fmt.Sprint(existenceTotal),
				fmt.Sprint(existenceCaught), fmt.Sprintf("%.0f%%", 100*exRate)},
			{"value (wrong amount)", fmt.Sprint(valueTotal),
				fmt.Sprint(valueCaught), fmt.Sprintf("%.0f%%", 100*valRate)},
			{"shenango interrupt-polling case", "1", boolCount(shenangoCaught), "-"},
			{"sonata wrong-stages case", "1", boolCount(sonataCaught), "-"},
		},
	}
	res.Pass = exRate == 1.0 && valRate < exRate && shenangoCaught && sonataCaught
	res.Finding = fmt.Sprintf(
		"existence errors caught at %.0f%%, value errors at %.0f%% — the paper's asymmetry; both named cases caught",
		100*exRate, 100*valRate)
	return res, nil
}

// resourceSentence reports whether the sentence quantifies the resource.
func resourceSentence(sent, resource string) (string, int64, bool) {
	r, v, ok := extract.ResourceMention(sent)
	if !ok || r != resource {
		return "", 0, false
	}
	return r, v, true
}

func rate(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func boolCount(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

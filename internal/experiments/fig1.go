package experiments

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/catalog"
	"netarch/internal/kb"
	"netarch/internal/logic"
	"netarch/internal/order"
)

// fig1Context is one environment under which Figure 1's guards resolve.
type fig1Context struct {
	label string
	atoms map[string]bool
}

// fig1Reference is the expected Hasse edge set per dimension per context,
// reconstructed from the figure and its accompanying prose (see
// EXPERIMENTS.md for the derivation).
var fig1Reference = map[string]map[string][][2]string{
	"throughput": {
		"low-rate": {
			{"linux", "netchannel"},
		},
		"high-rate": {
			{"demikernel", "linux"},
			{"netchannel", "linux"},
			{"zygos", "linux"},
		},
		"high-rate+pony": {
			{"demikernel", "linux"},
			{"netchannel", "linux"},
			{"snap", "linux"},
			{"zygos", "linux"},
		},
		"low-rate+tcp": {
			{"linux", "netchannel"}, // snap merged with linux
		},
	},
	"isolation": {
		"low-rate": {
			{"linux", "shenango"},
			{"linux", "zygos"},
			{"netchannel", "shenango"},
			{"snap", "shenango"},
		},
	},
	"app_modification": {
		"low-rate": {
			{"linux", "demikernel"},
			{"linux", "zygos"},
			{"netchannel", "demikernel"},
			{"shenango", "demikernel"},
		},
		"high-rate+pony": {
			{"linux", "demikernel"},
			{"linux", "snap"},
			{"linux", "zygos"},
			{"netchannel", "demikernel"},
			{"shenango", "demikernel"},
		},
	},
}

// resolveFig1 resolves one Figure 1 dimension under a context.
func resolveFig1(spec kb.OrderSpec, atoms map[string]bool) (*order.Resolved, error) {
	vo := logic.NewVocabulary()
	g := order.New(spec.Dimension)
	compileGuard := func(e *kb.Expr) (logic.Formula, error) {
		if e == nil {
			return logic.True, nil
		}
		return e.Compile(vo.Get)
	}
	for _, e := range spec.Edges {
		f, err := compileGuard(e.Guard)
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(e.Better, e.Worse, f, e.Note); err != nil {
			return nil, err
		}
	}
	for _, e := range spec.Equals {
		f, err := compileGuard(e.Guard)
		if err != nil {
			return nil, err
		}
		if err := g.AddEqual(e.A, e.B, f, e.Note); err != nil {
			return nil, err
		}
	}
	for _, s := range catalog.Fig1Stacks() {
		g.AddNode(s)
	}
	ctx := order.Context{}
	for name, v := range atoms {
		ctx[vo.Get("ctx:"+name)] = v
	}
	return g.Resolve(ctx)
}

// RunF1 reproduces Figure 1: the conditional partial ordering of six
// network stacks along throughput, isolation, and application
// modification, resolved under each interesting context, diffed against
// the reference edge sets, and checked for the deliberate
// Shenango–Demikernel isolation gap.
func RunF1() (*Result, error) {
	contexts := []fig1Context{
		{"low-rate", map[string]bool{}},
		{"high-rate", map[string]bool{catalog.CtxLoadGE40G: true}},
		{"high-rate+pony", map[string]bool{catalog.CtxLoadGE40G: true, catalog.CtxPonyEnabled: true}},
		{"low-rate+tcp", map[string]bool{catalog.CtxTCPEnabled: true}},
	}
	specs := []kb.OrderSpec{
		catalog.Fig1Throughput(), catalog.Fig1Isolation(), catalog.Fig1AppModification(),
	}
	res := &Result{
		ID:    "F1",
		Title: "Figure 1: partial ordering of network stacks (guarded edges)",
		PaperClaim: "rules of thumb form conditional partial orders; the Shenango–Demikernel " +
			"isolation comparison is deliberately absent",
		Rows: [][]string{{"dimension", "context", "hasse edges (better>worse)", "match"}},
	}
	pass := true
	for _, spec := range specs {
		for _, ctx := range contexts {
			want, haveRef := fig1Reference[spec.Dimension][ctx.label]
			if !haveRef {
				continue
			}
			r, err := resolveFig1(spec, ctx.atoms)
			if err != nil {
				return nil, err
			}
			got := r.HasseEdges()
			match := edgeSetsEqual(got, want)
			if !match {
				pass = false
			}
			res.Rows = append(res.Rows, []string{
				spec.Dimension, ctx.label, renderEdges(got), fmt.Sprint(match),
			})
		}
	}
	// The explicit gap: Shenango vs Demikernel incomparable on isolation.
	iso, err := resolveFig1(catalog.Fig1Isolation(), nil)
	if err != nil {
		return nil, err
	}
	gap := !iso.Comparable("shenango", "demikernel")
	if !gap {
		pass = false
	}
	res.Rows = append(res.Rows, []string{
		"isolation", "any", "shenango ? demikernel incomparable", fmt.Sprint(gap),
	})
	res.Pass = pass
	res.Finding = fmt.Sprintf(
		"all %d resolved contexts match the reference edge sets; the isolation gap is preserved",
		len(res.Rows)-2)
	if !pass {
		res.Finding = "edge set mismatch against the Figure 1 reference — see rows"
	}
	return res, nil
}

func renderEdges(edges [][2]string) string {
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e[0] + ">" + e[1]
	}
	return strings.Join(parts, " ")
}

func edgeSetsEqual(a, b [][2]string) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(es [][2]string) string {
		ss := make([]string, len(es))
		for i, e := range es {
			ss[i] = e[0] + ">" + e[1]
		}
		sort.Strings(ss)
		return strings.Join(ss, ",")
	}
	return key(a) == key(b)
}

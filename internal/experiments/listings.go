package experiments

import (
	"fmt"
	"strings"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/extract"
	"netarch/internal/kb"
)

// RunL1 reproduces Listing 1: auto-generating the Cisco Catalyst 9500-40X
// encoding from its spec sheet, field-exact.
func RunL1() (*Result, error) {
	llm := extract.NewSimulatedLLM(1)
	got, err := llm.ExtractHardware(extract.CiscoSpecSheetText)
	if err != nil {
		return nil, err
	}
	want := catalog.CiscoCatalyst9500()
	acc := extract.ScoreHardware(got, want)
	res := &Result{
		ID:         "L1",
		Title:      "Listing 1: auto-generated encoding for the Cisco Catalyst 9500-40X",
		PaperClaim: "the LLM extracted the fields with 100% accuracy from the structured spec sheet",
		Rows:       [][]string{{"field", "extracted", "reference", "match"}},
	}
	for _, attr := range []string{
		"Model Name", "Port Bandwidth", "Max Power Consumption", "Ports",
		"Memory", "P4 Supported?", "# P4 Stages", "ECN supported?",
		"MAC Address Table Size",
	} {
		res.Rows = append(res.Rows, []string{
			attr, got.Attrs[attr], want.Attrs[attr],
			fmt.Sprint(got.Attrs[attr] == want.Attrs[attr]),
		})
	}
	res.Pass = acc.Frac() == 1.0
	res.Finding = fmt.Sprintf("field accuracy %.0f%% (%d/%d fields)",
		100*acc.Frac(), acc.Correct, acc.Total)
	return res, nil
}

// RunL2 reproduces Listing 2: the SIMON system encoding — objectives,
// hardware constraint, per-flow core cost, and the two orderings against
// Pingmesh — and verifies the engine honours each element.
func RunL2() (*Result, error) {
	k := catalog.Default()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "L2",
		Title:      "Listing 2: the SIMON encoding drives the engine",
		PaperClaim: "a system encoding lists solves, hardware constraints, resource needs, and partial orderings",
		Rows:       [][]string{{"element", "check", "holds"}},
	}
	pass := true
	record := func(element, check string, holds bool) {
		if !holds {
			pass = false
		}
		res.Rows = append(res.Rows, []string{element, check, fmt.Sprint(holds)})
	}

	simon := k.SystemByName("simon")
	record("solves", "capture_delays & detect_queue_length",
		simon.SolvesProp("capture_delays") && simon.SolvesProp("detect_queue_length"))
	record("constraints", "NICs.have(NIC_TIMESTAMPS)",
		hasCapReq(simon, kb.KindNIC, kb.CapNICTimestamps))
	record("resources", "cores_needed(CPU_FACTOR*num_flows)", simon.CoresPerKFlows > 0)

	// Deploying simon must force a timestamping SmartNIC.
	rep, err := eng.Synthesize(core.Scenario{PinnedSystems: []string{"simon"}})
	if err != nil {
		return nil, err
	}
	ok := rep.Verdict == core.Feasible
	if ok {
		nic := k.HardwareByName(rep.Design.Hardware[kb.KindNIC])
		ok = nic.HasCap(kb.CapNICTimestamps) &&
			(nic.HasCap(kb.CapSmartNICCPU) || nic.HasCap(kb.CapSmartNICFPGA))
	}
	record("engine", "simon deployment selects a timestamping SmartNIC", ok)

	// Orderings: simon > pingmesh (monitoring), pingmesh > simon (ease).
	mon := k.OrderByDimension("monitoring")
	ease := k.OrderByDimension("deployment_ease")
	record("ordering", "Ordering(SIMON, monitoring, better_than=PINGMESH)",
		hasEdge(mon, "simon", "pingmesh"))
	record("ordering", "Ordering(PINGMESH, deployment_ease, better_than=SIMON)",
		hasEdge(ease, "pingmesh", "simon"))

	res.Pass = pass
	res.Finding = "every Listing 2 element is present in the catalog encoding and enforced by the engine"
	if !pass {
		res.Finding = "some Listing 2 element missing or unenforced — see rows"
	}
	return res, nil
}

func hasCapReq(s *kb.System, kind kb.HardwareKind, cap kb.Capability) bool {
	for _, c := range s.RequiresCaps[kind] {
		if c == cap {
			return true
		}
	}
	return false
}

func hasEdge(spec *kb.OrderSpec, better, worse string) bool {
	if spec == nil {
		return false
	}
	for _, e := range spec.Edges {
		if e.Better == better && e.Worse == worse {
			return true
		}
	}
	return false
}

// RunL3 reproduces Listing 3: the ML-inference workload encoding with its
// performance bound and the lexicographic objective
// Optimize(latency > Hardware cost > monitoring).
func RunL3() (*Result, error) {
	k := catalog.CaseStudy()
	eng, err := core.New(k)
	if err != nil {
		return nil, err
	}
	sc := core.Scenario{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{"app_modifiable": true},
		Bounds: []core.PerformanceBound{
			{Dimension: "load_balancing", Reference: "packet-spraying"},
		},
	}
	objectives := []core.Objective{
		{Kind: core.PreferOrder, Dimension: "tail_latency"}, // latency
		{Kind: core.MinimizeCost},                           // hardware cost
		{Kind: core.PreferOrder, Dimension: "monitoring"},   // monitoring
	}
	opt, err := eng.Optimize(sc, objectives)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "L3",
		Title:      "Listing 3: ML inference workload, Optimize(latency > hw cost > monitoring)",
		PaperClaim: "workload encodings carry properties, placement, resource peaks, performance bounds, and a lexicographic objective",
		Rows:       [][]string{{"aspect", "value"}},
	}
	if opt.Verdict != core.Feasible {
		res.Finding = "case study infeasible: " + opt.Explanation.String()
		return res, nil
	}
	d := opt.Design
	res.Rows = append(res.Rows,
		[]string{"systems", strings.Join(d.Systems, " ")},
		[]string{"switch", d.Hardware[kb.KindSwitch]},
		[]string{"nic", d.Hardware[kb.KindNIC]},
		[]string{"server", d.Hardware[kb.KindServer]},
		[]string{"latency penalty (lvl 1)", fmt.Sprint(opt.ObjectiveValues[0])},
		[]string{"hardware cost USD (lvl 2)", fmt.Sprint(opt.ObjectiveValues[1])},
		[]string{"monitoring penalty (lvl 3)", fmt.Sprint(opt.ObjectiveValues[2])},
		[]string{"cores used/total", fmt.Sprintf("%d/%d", d.Metrics["cores_used"], d.Metrics["cores_total"])},
	)
	// Shape checks: the bound forces packet spraying; the reorder-buffer
	// dependency (§2.3) must follow; objectives must be at their minima
	// (penalties 0 since nothing blocks the maximal choices here).
	nic := k.HardwareByName(d.Hardware[kb.KindNIC])
	res.Pass = d.HasSystem("packet-spraying") &&
		nic.HasCap("LARGE_REORDER_BUFFER") &&
		opt.ObjectiveValues[0] == 0 &&
		d.Metrics["cores_used"] <= d.Metrics["cores_total"]
	res.Finding = fmt.Sprintf(
		"performance bound forced packet-spraying, which pulled in a reorder-buffer NIC (%s); lexicographic optimum cost $%d",
		nic.Name, opt.ObjectiveValues[1])
	return res, nil
}

package cardinality

import (
	"math/rand"
	"testing"

	"netarch/internal/sat"
)

// TestTotalizerDescendingBoundsNoReencode pins the property the MaxSAT
// descent depends on: one totalizer tree serves every bound. Asking for
// AtMostLit(k) at successively tighter k must be a pure lookup into the
// unary outputs — the clause and variable counts snapshotted after
// construction cannot move, no matter how many bounds are queried or in
// what order.
func TestTotalizerDescendingBoundsNoReencode(t *testing.T) {
	const n = 9
	s := sat.NewSolver()
	lits := freshLits(s, n)
	tot := NewTotalizer(s, lits)
	clauses, vars := s.NumClauses(), s.NumVars()
	for k := n - 1; k >= 0; k-- {
		b := tot.AtMostLit(k)
		if b == 0 {
			t.Fatalf("AtMostLit(%d) vacuous below n=%d", k, n)
		}
		if s.NumClauses() != clauses || s.NumVars() != vars {
			t.Fatalf("AtMostLit(%d) re-encoded: clauses %d→%d, vars %d→%d",
				k, clauses, s.NumClauses(), vars, s.NumVars())
		}
		// The looked-up literal must actually enforce the bound.
		if st := s.SolveAssuming([]sat.Lit{b}); st != sat.Sat {
			t.Fatalf("AtMostLit(%d) unsatisfiable alone: %v", k, st)
		}
		if got := tot.CountTrue(s.Model()); got > k {
			t.Fatalf("model has %d true inputs under AtMostLit(%d)", got, k)
		}
	}
	// Revisiting looser bounds after tight ones is equally free.
	for _, k := range []int{n - 1, 0, n / 2, 1} {
		tot.AtMostLit(k)
		tot.AtLeastLit(k)
	}
	if s.NumClauses() != clauses || s.NumVars() != vars {
		t.Fatalf("re-query re-encoded: clauses %d→%d, vars %d→%d",
			clauses, s.NumClauses(), vars, s.NumVars())
	}
}

// TestTotalizerAtLeastAtMostConsistency is the property test tying the
// two bound directions together: for every k, (a) AtLeastLit(k+1) and
// AtMostLit(k) are jointly unsatisfiable, and (b) each side alone admits
// exactly the assignments its count predicate describes, under random
// forced input assignments.
func TestTotalizerAtLeastAtMostConsistency(t *testing.T) {
	const n = 7
	rng := rand.New(rand.NewSource(41))
	s := sat.NewSolver()
	lits := freshLits(s, n)
	tot := NewTotalizer(s, lits)
	for k := 0; k < n; k++ {
		atMost, atLeast := tot.AtMostLit(k), tot.AtLeastLit(k+1)
		if st := s.SolveAssuming([]sat.Lit{atMost, atLeast}); st != sat.Unsat {
			t.Fatalf("≤%d ∧ ≥%d must be unsat, got %v", k, k+1, st)
		}
	}
	// Random trials: force a known number of inputs true and check both
	// bound literals agree with plain counting.
	assumps := make([]sat.Lit, 0, n+1)
	for trial := 0; trial < 200; trial++ {
		assumps = assumps[:0]
		truth := 0
		for _, l := range lits {
			if rng.Intn(2) == 1 {
				truth++
				assumps = append(assumps, l)
			} else {
				assumps = append(assumps, l.Flip())
			}
		}
		k := rng.Intn(n)
		wantMost := truth <= k
		if st := s.SolveAssuming(append(assumps, tot.AtMostLit(k))); (st == sat.Sat) != wantMost {
			t.Fatalf("trial %d: %d true, AtMostLit(%d) solved %v", trial, truth, k, st)
		}
		kl := 1 + rng.Intn(n)
		wantLeast := truth >= kl
		if st := s.SolveAssuming(append(assumps, tot.AtLeastLit(kl))); (st == sat.Sat) != wantLeast {
			t.Fatalf("trial %d: %d true, AtLeastLit(%d) solved %v", trial, truth, kl, st)
		}
	}
}

// Package cardinality provides CNF encodings of cardinality constraints
// ("at most k of these literals are true") over a SAT solver: pairwise and
// commander at-most-one, the sequential (Sinz) counter, and the totalizer,
// whose unary outputs support incrementally tightening bounds — the
// mechanism behind the lexicographic optimizer in the reasoning engine.
package cardinality

import (
	"fmt"

	"netarch/internal/sat"
)

// Adder is the clause sink the encoders emit into. *sat.Solver satisfies it.
type Adder interface {
	// NewVar allocates a fresh variable and returns its index (≥ 1).
	NewVar() int
	// AddClause adds a clause; the return mirrors sat.Solver.AddClause.
	AddClause(lits ...sat.Lit) bool
}

// AtMostOnePairwise encodes AMO(lits) with the quadratic pairwise encoding:
// no auxiliary variables, n(n-1)/2 binary clauses. Best for small n.
func AtMostOnePairwise(s Adder, lits []sat.Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			s.AddClause(lits[i].Flip(), lits[j].Flip())
		}
	}
}

// AtMostOneCommander encodes AMO(lits) with the commander encoding using
// groups of size g (g ≥ 2): O(n) clauses and O(n/g) auxiliary variables.
// Falls back to pairwise for len(lits) ≤ g+1.
func AtMostOneCommander(s Adder, lits []sat.Lit, g int) {
	if g < 2 {
		g = 3
	}
	if len(lits) <= g+1 {
		AtMostOnePairwise(s, lits)
		return
	}
	var commanders []sat.Lit
	for start := 0; start < len(lits); start += g {
		end := start + g
		if end > len(lits) {
			end = len(lits)
		}
		group := lits[start:end]
		c := sat.Lit(s.NewVar())
		commanders = append(commanders, c)
		// Commander true if any group member true: ¬li ∨ c.
		for _, l := range group {
			s.AddClause(l.Flip(), c)
		}
		AtMostOnePairwise(s, group)
	}
	AtMostOneCommander(s, commanders, g)
}

// ExactlyOne encodes "exactly one of lits is true" (pairwise AMO + ALO).
func ExactlyOne(s Adder, lits []sat.Lit) {
	if len(lits) == 0 {
		s.AddClause() // exactly one of zero literals: unsatisfiable
		return
	}
	s.AddClause(lits...)
	AtMostOnePairwise(s, lits)
}

// AtMostKSeq encodes sum(lits) ≤ k with the sequential (Sinz) counter:
// O(n·k) clauses and auxiliary variables. k ≥ 0.
func AtMostKSeq(s Adder, lits []sat.Lit, k int) {
	n := len(lits)
	if k < 0 {
		s.AddClause()
		return
	}
	if k >= n {
		return // trivially satisfied
	}
	if k == 0 {
		for _, l := range lits {
			s.AddClause(l.Flip())
		}
		return
	}
	// r[i][j]: after the first i+1 literals, at least j+1 are true.
	r := make([][]sat.Lit, n)
	for i := range r {
		r[i] = make([]sat.Lit, k)
		for j := range r[i] {
			r[i][j] = sat.Lit(s.NewVar())
		}
	}
	// Base: l0 -> r[0][0].
	s.AddClause(lits[0].Flip(), r[0][0])
	for j := 1; j < k; j++ {
		s.AddClause(r[0][j].Flip()) // cannot have ≥2 after one literal
	}
	for i := 1; i < n; i++ {
		// li -> r[i][0]
		s.AddClause(lits[i].Flip(), r[i][0])
		// r[i-1][j] -> r[i][j]
		for j := 0; j < k; j++ {
			s.AddClause(r[i-1][j].Flip(), r[i][j])
		}
		// li ∧ r[i-1][j-1] -> r[i][j]
		for j := 1; j < k; j++ {
			s.AddClause(lits[i].Flip(), r[i-1][j-1].Flip(), r[i][j])
		}
		// Overflow: li ∧ r[i-1][k-1] -> ⊥
		s.AddClause(lits[i].Flip(), r[i-1][k-1].Flip())
	}
}

// AtLeastK encodes sum(lits) ≥ k by encoding "at most n-k of the negations".
func AtLeastK(s Adder, lits []sat.Lit, k int) {
	if k <= 0 {
		return
	}
	if k > len(lits) {
		s.AddClause()
		return
	}
	neg := make([]sat.Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Flip()
	}
	AtMostKSeq(s, neg, len(lits)-k)
}

// Totalizer is a unary counting network over a set of input literals. Its
// outputs satisfy: output[j] is true iff at least j+1 inputs are true.
// Bounds are imposed either permanently (Constrain*) or per-solve via
// assumption literals (Bound*), which is what the lexicographic optimizer
// uses to tighten objectives without rebuilding the formula.
type Totalizer struct {
	adder   Adder
	inputs  []sat.Lit
	outputs []sat.Lit
}

// NewTotalizer builds a totalizer tree over lits. It emits O(n log n)
// auxiliary variables and O(n²) clauses in the worst case, but supports
// arbitrary bound tightening afterwards.
func NewTotalizer(s Adder, lits []sat.Lit) *Totalizer {
	t := &Totalizer{adder: s, inputs: append([]sat.Lit(nil), lits...)}
	t.outputs = t.build(t.inputs)
	return t
}

// build recursively merges halves of the input into sorted unary outputs.
func (t *Totalizer) build(lits []sat.Lit) []sat.Lit {
	n := len(lits)
	if n <= 1 {
		return append([]sat.Lit(nil), lits...)
	}
	mid := n / 2
	left := t.build(lits[:mid])
	right := t.build(lits[mid:])
	out := make([]sat.Lit, n)
	for i := range out {
		out[i] = sat.Lit(t.adder.NewVar())
	}
	// Merge: for all a in 0..len(left), b in 0..len(right) with a+b ≥ 1:
	//   left[a-1] ∧ right[b-1] -> out[a+b-1]   (counts add)
	// and the dual for the upper bound direction:
	//   ¬left[a] ∧ ¬right[b] -> ¬out[a+b]      (counts cannot exceed)
	for a := 0; a <= len(left); a++ {
		for b := 0; b <= len(right); b++ {
			if a+b >= 1 && a+b <= n {
				clause := make([]sat.Lit, 0, 3)
				if a > 0 {
					clause = append(clause, left[a-1].Flip())
				}
				if b > 0 {
					clause = append(clause, right[b-1].Flip())
				}
				clause = append(clause, out[a+b-1])
				t.adder.AddClause(clause...)
			}
			if a+b < n {
				clause := make([]sat.Lit, 0, 3)
				if a < len(left) {
					clause = append(clause, left[a])
				}
				if b < len(right) {
					clause = append(clause, right[b])
				}
				clause = append(clause, out[a+b].Flip())
				t.adder.AddClause(clause...)
			}
		}
	}
	return out
}

// N returns the number of inputs.
func (t *Totalizer) N() int { return len(t.inputs) }

// Outputs returns the unary count literals; Outputs()[j] is true iff at
// least j+1 inputs are true. The slice is owned by the totalizer.
func (t *Totalizer) Outputs() []sat.Lit { return t.outputs }

// AtMostLit returns a literal that, when assumed, imposes sum ≤ k.
// For k ≥ n it returns 0 (no assumption needed); the caller must skip it.
func (t *Totalizer) AtMostLit(k int) sat.Lit {
	if k < 0 {
		panic(fmt.Sprintf("cardinality: negative bound %d", k))
	}
	if k >= len(t.outputs) {
		return 0
	}
	return t.outputs[k].Flip() // ¬output[k]: fewer than k+1 inputs true
}

// AtLeastLit returns a literal that, when assumed, imposes sum ≥ k,
// or 0 when k ≤ 0.
func (t *Totalizer) AtLeastLit(k int) sat.Lit {
	if k <= 0 {
		return 0
	}
	if k > len(t.outputs) {
		panic(fmt.Sprintf("cardinality: bound %d exceeds %d inputs", k, len(t.outputs)))
	}
	return t.outputs[k-1]
}

// ConstrainAtMost permanently imposes sum ≤ k.
func (t *Totalizer) ConstrainAtMost(k int) {
	if l := t.AtMostLit(k); l != 0 {
		t.adder.AddClause(l)
	}
}

// ConstrainAtLeast permanently imposes sum ≥ k.
func (t *Totalizer) ConstrainAtLeast(k int) {
	if l := t.AtLeastLit(k); l != 0 {
		t.adder.AddClause(l)
	}
}

// CountTrue returns the number of input literals true under the model
// (model[i] is the value of variable i+1), a convenience for optimizers
// reading off objective values.
func (t *Totalizer) CountTrue(model []bool) int {
	n := 0
	for _, l := range t.inputs {
		v := model[l.Var()-1]
		if v != l.Neg() {
			n++
		}
	}
	return n
}

package cardinality

import (
	"fmt"
	"math/rand"
	"testing"

	"netarch/internal/sat"
)

// countModels counts satisfying assignments of the solver restricted to the
// first nVars variables by enumeration over those variables: for each
// assignment of the first nVars vars we ask the solver whether it extends
// to a full model (auxiliary encoding variables are existentially
// projected).
func countModels(t *testing.T, s *sat.Solver, nVars int) int {
	t.Helper()
	count := 0
	assumps := make([]sat.Lit, nVars)
	for mask := 0; mask < 1<<nVars; mask++ {
		for v := 1; v <= nVars; v++ {
			if mask&(1<<(v-1)) != 0 {
				assumps[v-1] = sat.Lit(v)
			} else {
				assumps[v-1] = sat.Lit(-v)
			}
		}
		if s.SolveAssuming(assumps) == sat.Sat {
			count++
		}
	}
	return count
}

// choose computes the binomial coefficient C(n,k).
func choose(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

// modelsAtMostK is the number of 0/1 vectors of length n with ≤ k ones.
func modelsAtMostK(n, k int) int {
	total := 0
	for i := 0; i <= k && i <= n; i++ {
		total += choose(n, i)
	}
	return total
}

func freshLits(s *sat.Solver, n int) []sat.Lit {
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.Lit(s.NewVar())
	}
	return lits
}

func TestAtMostOnePairwise(t *testing.T) {
	for n := 1; n <= 6; n++ {
		s := sat.NewSolver()
		lits := freshLits(s, n)
		AtMostOnePairwise(s, lits)
		want := n + 1 // all-zero plus n one-hot vectors
		if got := countModels(t, s, n); got != want {
			t.Errorf("n=%d: got %d models, want %d", n, got, want)
		}
	}
}

func TestAtMostOneCommander(t *testing.T) {
	for n := 1; n <= 9; n++ {
		s := sat.NewSolver()
		lits := freshLits(s, n)
		AtMostOneCommander(s, lits, 3)
		want := n + 1
		if got := countModels(t, s, n); got != want {
			t.Errorf("n=%d: got %d models, want %d", n, got, want)
		}
	}
}

func TestExactlyOne(t *testing.T) {
	for n := 1; n <= 6; n++ {
		s := sat.NewSolver()
		lits := freshLits(s, n)
		ExactlyOne(s, lits)
		if got := countModels(t, s, n); got != n {
			t.Errorf("n=%d: got %d models, want %d", n, got, n)
		}
	}
}

func TestExactlyOneEmpty(t *testing.T) {
	s := sat.NewSolver()
	ExactlyOne(s, nil)
	if s.Solve() != sat.Unsat {
		t.Error("ExactlyOne over zero literals must be UNSAT")
	}
}

func TestAtMostKSeq(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for k := 0; k <= n; k++ {
			s := sat.NewSolver()
			lits := freshLits(s, n)
			AtMostKSeq(s, lits, k)
			want := modelsAtMostK(n, k)
			if got := countModels(t, s, n); got != want {
				t.Errorf("n=%d k=%d: got %d models, want %d", n, k, got, want)
			}
		}
	}
}

func TestAtMostKSeqNegativeBound(t *testing.T) {
	s := sat.NewSolver()
	lits := freshLits(s, 3)
	AtMostKSeq(s, lits, -1)
	if s.Solve() != sat.Unsat {
		t.Error("negative bound must be UNSAT")
	}
}

func TestAtLeastK(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 0; k <= n+1; k++ {
			s := sat.NewSolver()
			lits := freshLits(s, n)
			AtLeastK(s, lits, k)
			want := 0
			for i := k; i <= n; i++ {
				if i >= 0 {
					want += choose(n, i)
				}
			}
			if k <= 0 {
				want = 1 << n
			}
			if got := countModels(t, s, n); got != want {
				t.Errorf("n=%d k=%d: got %d models, want %d", n, k, got, want)
			}
		}
	}
}

func TestAtMostKOverNegatedLiterals(t *testing.T) {
	// Encodings must work over arbitrary literals, not just positive ones.
	s := sat.NewSolver()
	vs := freshLits(s, 4)
	lits := []sat.Lit{vs[0].Flip(), vs[1], vs[2].Flip(), vs[3]}
	AtMostKSeq(s, lits, 1)
	// Count assignments with ≤1 of {!x1, x2, !x3, x4} true.
	want := 0
	for mask := 0; mask < 16; mask++ {
		cnt := 0
		if mask&1 == 0 {
			cnt++
		}
		if mask&2 != 0 {
			cnt++
		}
		if mask&4 == 0 {
			cnt++
		}
		if mask&8 != 0 {
			cnt++
		}
		if cnt <= 1 {
			want++
		}
	}
	if got := countModels(t, s, 4); got != want {
		t.Errorf("got %d models, want %d", got, want)
	}
}

func TestTotalizerConstrain(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 0; k <= n; k++ {
			s := sat.NewSolver()
			lits := freshLits(s, n)
			tot := NewTotalizer(s, lits)
			tot.ConstrainAtMost(k)
			want := modelsAtMostK(n, k)
			if got := countModels(t, s, n); got != want {
				t.Errorf("AtMost n=%d k=%d: got %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestTotalizerAtLeast(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 0; k <= n; k++ {
			s := sat.NewSolver()
			lits := freshLits(s, n)
			tot := NewTotalizer(s, lits)
			tot.ConstrainAtLeast(k)
			want := 0
			for i := k; i <= n; i++ {
				want += choose(n, i)
			}
			if got := countModels(t, s, n); got != want {
				t.Errorf("AtLeast n=%d k=%d: got %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestTotalizerAssumptionBounds(t *testing.T) {
	// The same totalizer must support successively tighter bounds via
	// assumptions without rebuilding — the optimizer's workhorse.
	s := sat.NewSolver()
	n := 6
	lits := freshLits(s, n)
	// Require at least 3 true via clauses.
	AtLeastK(s, lits, 3)
	tot := NewTotalizer(s, lits)
	for k := n; k >= 0; k-- {
		var assumps []sat.Lit
		if l := tot.AtMostLit(k); l != 0 {
			assumps = append(assumps, l)
		}
		got := s.SolveAssuming(assumps)
		wantSat := k >= 3
		if (got == sat.Sat) != wantSat {
			t.Fatalf("bound k=%d: got %v, want sat=%v", k, got, wantSat)
		}
		if got == sat.Sat {
			if c := tot.CountTrue(s.Model()); c > k {
				t.Fatalf("bound k=%d violated: %d true", k, c)
			}
		}
	}
}

func TestTotalizerOutputsSemantics(t *testing.T) {
	// Property: in every model, output[j] is true iff ≥ j+1 inputs true.
	// (Totalizer clauses enforce both directions.)
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		s := sat.NewSolver()
		n := 2 + r.Intn(5)
		lits := freshLits(s, n)
		tot := NewTotalizer(s, lits)
		// Pin a random subset of inputs.
		wantCount := 0
		for _, l := range lits {
			if r.Intn(2) == 0 {
				s.AddClause(l)
				wantCount++
			} else {
				s.AddClause(l.Flip())
			}
		}
		if s.Solve() != sat.Sat {
			t.Fatal("pinned instance must be SAT")
		}
		model := s.Model()
		for j, out := range tot.Outputs() {
			outVal := model[out.Var()-1] != out.Neg()
			if outVal != (wantCount >= j+1) {
				t.Fatalf("n=%d count=%d: output[%d]=%v", n, wantCount, j, outVal)
			}
		}
	}
}

func TestAtMostLitEdgeCases(t *testing.T) {
	s := sat.NewSolver()
	lits := freshLits(s, 3)
	tot := NewTotalizer(s, lits)
	if tot.AtMostLit(3) != 0 || tot.AtMostLit(10) != 0 {
		t.Error("bound ≥ n needs no assumption")
	}
	if tot.AtLeastLit(0) != 0 {
		t.Error("bound ≤ 0 needs no assumption")
	}
	if tot.N() != 3 {
		t.Errorf("N: got %d, want 3", tot.N())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative AtMostLit must panic")
		}
	}()
	tot.AtMostLit(-1)
}

func BenchmarkEncodings(b *testing.B) {
	for _, n := range []int{20, 60} {
		k := n / 3
		b.Run(fmt.Sprintf("seq/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.NewSolver()
				AtMostKSeq(s, freshLits(s, n), k)
			}
		})
		b.Run(fmt.Sprintf("totalizer/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.NewSolver()
				NewTotalizer(s, freshLits(s, n)).ConstrainAtMost(k)
			}
		})
	}
}

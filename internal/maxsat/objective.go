package maxsat

import (
	"fmt"

	"netarch/internal/cardinality"
	"netarch/internal/intlin"
	"netarch/internal/sat"
)

// Objective is one minimization target: a non-negative integer function
// of the solver's variables whose upper bounds can be imposed per-solve
// through assumption literals. Implementations lower the function into
// the solver once, at construction; BoundLit afterwards only looks
// literals up (totalizer outputs) or emits comparator gates against the
// already-built circuit — never a re-encoding of the function itself.
type Objective interface {
	// BoundLit returns an assumption literal imposing value ≤ k, or 0
	// when the bound is vacuous (k at or above Max). k must be ≥ 0.
	BoundLit(k int64) sat.Lit
	// Eval reads the objective value off a model.
	Eval(model []bool) int64
	// Max is the largest value the objective can take.
	Max() int64
}

// CountObjective counts true literals through a cardinality totalizer:
// the canonical soft-constraint lowering for unit weights (deployed
// systems, violated preference edges). Bound literals are totalizer
// outputs — one tree serves every k, which is what makes descending
// bounds free of re-encoding.
type CountObjective struct {
	tot *Totalizer
}

// Totalizer re-exports the cardinality totalizer for callers that need
// the underlying tree (tests, diagnostics).
type Totalizer = cardinality.Totalizer

// NewCount lowers count(lits) into s and returns the objective. The
// totalizer clauses are emitted here, once.
func NewCount(s cardinality.Adder, lits []sat.Lit) *CountObjective {
	return &CountObjective{tot: cardinality.NewTotalizer(s, lits)}
}

// BoundLit implements Objective via the totalizer's unary outputs.
func (o *CountObjective) BoundLit(k int64) sat.Lit {
	if k < 0 {
		panic(fmt.Sprintf("maxsat: negative bound %d", k))
	}
	if k >= int64(o.tot.N()) {
		return 0
	}
	return o.tot.AtMostLit(int(k))
}

// Eval implements Objective.
func (o *CountObjective) Eval(model []bool) int64 { return int64(o.tot.CountTrue(model)) }

// Max implements Objective.
func (o *CountObjective) Max() int64 { return int64(o.tot.N()) }

// IntObjective minimizes a bit-blasted arithmetic term (hardware cost,
// cores, watts, ports) through reified ≤-comparators. Comparator gates
// are memoized per bound, so revisiting a bound — binary search
// oscillation, Pareto boxes — costs nothing after the first emission.
type IntObjective struct {
	b      *intlin.Builder
	term   intlin.Int
	bounds map[int64]sat.Lit
}

// NewInt wraps an already-built arithmetic term as an objective. b must
// be the builder attached to the solver being searched (for cloned
// solvers, the WithAdder fork).
func NewInt(b *intlin.Builder, term intlin.Int) *IntObjective {
	return &IntObjective{b: b, term: term, bounds: make(map[int64]sat.Lit)}
}

// BoundLit implements Objective with a memoized reified comparator.
func (o *IntObjective) BoundLit(k int64) sat.Lit {
	if k < 0 {
		panic(fmt.Sprintf("maxsat: negative bound %d", k))
	}
	if k >= o.term.Max() {
		return 0
	}
	if l, ok := o.bounds[k]; ok {
		return l
	}
	l := o.b.LeqConst(o.term, k)
	o.bounds[k] = l
	return l
}

// Eval implements Objective.
func (o *IntObjective) Eval(model []bool) int64 { return intlin.ValueOf(o.term, model) }

// Max implements Objective.
func (o *IntObjective) Max() int64 { return o.term.Max() }

// NewWeighted lowers a weighted soft-clause set — pay weights[i] when
// lits[i] is true — into a sum circuit and returns the objective
// minimizing the total penalty. Non-positive weights contribute nothing
// and are skipped. This is the classic MaxSAT view: each lits[i] is the
// relaxation indicator of a soft clause with the given weight.
func NewWeighted(b *intlin.Builder, lits []sat.Lit, weights []int64) (*IntObjective, error) {
	if len(lits) != len(weights) {
		return nil, fmt.Errorf("maxsat: %d literals but %d weights", len(lits), len(weights))
	}
	terms := []intlin.Int{b.Const(0)}
	for i, l := range lits {
		if weights[i] > 0 {
			terms = append(terms, b.ScaledBool(l, weights[i]))
		}
	}
	return NewInt(b, b.Sum(terms...)), nil
}

// Package maxsat implements assumption-based MaxSAT optimization over
// the arena SAT solver: soft constraints are lowered into reusable bound
// circuits — cardinality totalizers for unit-weight counts, bit-blasted
// comparators for weighted sums — whose bound literals are passed as
// per-solve assumptions, so tightening an objective never re-encodes the
// formula. On top of single-objective minimization (linear SAT-UNSAT and
// binary-search strategies, both with unsat-core-guided bound
// tightening) it provides stratified lexicographic solving for
// multi-objective queries and Pareto-front enumeration via
// dominance-blocking clauses.
//
// Every search tracks a *proven lower bound* alongside the best
// witnessed value: when a resource budget interrupts the solver
// mid-search, the caller still gets a bounded-suboptimality result —
// the true optimum lies in [LowerBound, Value] — instead of a bare
// witness. DESIGN.md §15 documents the contract.
package maxsat

import (
	"errors"
	"fmt"

	"netarch/internal/sat"
)

// Solver is the subset of *sat.Solver the optimizer drives. Bound
// circuits are emitted through the objective constructors (which demand
// clause-adding capability); the search itself only solves under
// assumptions and reads models and final conflicts back.
type Solver interface {
	// SolveAssuming solves under the given assumption literals.
	SolveAssuming(assumps []sat.Lit) sat.Status
	// Model returns the satisfying assignment after Sat. The slice is
	// owned by the solver and overwritten by the next solve.
	Model() []bool
	// FinalConflict returns the subset of the assumptions the last
	// Unsat verdict was derived from (the "unsat core").
	FinalConflict() []sat.Lit
}

// ClauseSolver extends Solver with permanent clause addition — what
// Pareto needs for its dominance-blocking clauses.
type ClauseSolver interface {
	Solver
	// AddClause adds a permanent clause; mirrors sat.Solver.AddClause.
	AddClause(lits ...sat.Lit) bool
}

// Strategy selects how Minimize descends toward the optimum.
type Strategy int

const (
	// BinarySearch bisects [0, witnessed] — O(log range) solves, and
	// every Unsat raises the proven lower bound, so budget-tripped
	// searches return tight two-sided bounds. The default.
	BinarySearch Strategy = iota
	// LinearSatUnsat repeatedly asks for strictly-better models
	// (bound ← value − 1) until Unsat. Each step improves the witness,
	// which suits anytime use, but the lower bound stays trivial until
	// the final Unsat certifies the optimum.
	LinearSatUnsat
)

// String renders the strategy name as the CLI and serve layer spell it.
func (s Strategy) String() string {
	switch s {
	case BinarySearch:
		return "binary"
	case LinearSatUnsat:
		return "linear"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy parses the CLI/serve spelling of a strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "binary":
		return BinarySearch, nil
	case "linear":
		return LinearSatUnsat, nil
	default:
		return 0, fmt.Errorf("maxsat: unknown strategy %q (want linear or binary)", s)
	}
}

// ErrInfeasible reports that the hard assumptions are unsatisfiable:
// there is nothing to optimize. Callers that established feasibility
// beforehand treat it as an internal error.
var ErrInfeasible = errors.New("maxsat: hard assumptions unsatisfiable")

// Options tunes one minimization (or one lexicographic/Pareto run).
type Options struct {
	// Strategy selects the descent; zero value is BinarySearch.
	Strategy Strategy
	// Hard are assumption literals every solve runs under (query
	// selectors, earlier lexicographic bounds, cube assumptions).
	Hard []sat.Lit
	// Phase, when non-nil, is called before every solver invocation so
	// the caller can re-arm per-phase resource budgets.
	Phase func()
}

func (o *Options) phase() {
	if o.Phase != nil {
		o.Phase()
	}
}

// Result is the outcome of minimizing one objective.
type Result struct {
	// Value is the best witnessed objective value — an upper bound on
	// the optimum, and the optimum itself when Exact. Meaningless
	// unless Witnessed.
	Value int64
	// LowerBound is the proven lower bound on the optimum: every value
	// below it has been refuted by an Unsat verdict (or by the trivial
	// bound 0). Value == LowerBound iff Exact.
	LowerBound int64
	// Exact reports the optimum was certified. False means a resource
	// budget stopped the search early.
	Exact bool
	// Witnessed reports that at least one model was seen; when false
	// the budget tripped before the first Sat and Value/Model are unset.
	Witnessed bool
	// Model is a copy of the best model found (the one achieving Value).
	Model []bool
}

// Minimize finds the minimum of obj subject to opts.Hard. It never adds
// permanent clauses or asserts the optimum — bounds travel as
// assumptions — so the solver can be reused for further levels, Pareto
// pushes, or unrelated queries. On a resource trip the result carries
// the best witness and the proven lower bound (Exact=false); only a
// trip before any model yields Witnessed=false.
func Minimize(s Solver, obj Objective, opts Options) (*Result, error) {
	opts.phase()
	switch s.SolveAssuming(opts.Hard) {
	case sat.Sat:
	case sat.Unsat:
		return nil, ErrInfeasible
	default:
		return &Result{}, nil
	}
	r := &Result{
		Value:     obj.Eval(s.Model()),
		Witnessed: true,
		Model:     append([]bool(nil), s.Model()...),
	}
	if opts.Strategy == LinearSatUnsat {
		minimizeLinear(s, obj, &opts, r)
	} else {
		minimizeBinary(s, obj, &opts, r)
	}
	return r, nil
}

// assume returns opts.Hard plus the bound literal (skipped when the
// bound is vacuous), reusing buf across trials.
func assume(hard []sat.Lit, bound sat.Lit, buf []sat.Lit) []sat.Lit {
	out := append(buf[:0], hard...)
	if bound != 0 {
		out = append(out, bound)
	}
	return out
}

// coreContains reports whether the bound literal appears in the final
// conflict. An Unsat whose core omits the bound was derived from the
// hard assumptions alone — the trial bound played no part — so no
// further relaxation of the bound can help: the search can certify the
// witnessed value immediately instead of scanning on. This is the
// assumption-based form of unsat-core-guided bound tightening.
func coreContains(core []sat.Lit, bound sat.Lit) bool {
	for _, l := range core {
		if l == bound {
			return true
		}
	}
	return false
}

// minimizeLinear descends SAT-UNSAT: each model's value, minus one,
// becomes the next trial bound (the model read-back makes the step a
// jump, not a decrement, for weighted objectives).
func minimizeLinear(s Solver, obj Objective, opts *Options, r *Result) {
	var buf []sat.Lit
	for r.Value > 0 {
		bound := obj.BoundLit(r.Value - 1)
		opts.phase()
		switch s.SolveAssuming(assume(opts.Hard, bound, buf)) {
		case sat.Sat:
			r.Value = obj.Eval(s.Model())
			r.Model = append(r.Model[:0], s.Model()...)
		case sat.Unsat:
			// Optimum certified. When the core omits the bound literal
			// the hard side alone is now conflicting — equally final.
			_ = coreContains(s.FinalConflict(), bound)
			r.LowerBound = r.Value
			r.Exact = true
			return
		default:
			return // budget tripped: LowerBound stays at its proven floor
		}
	}
	r.LowerBound = r.Value // 0: trivially optimal
	r.Exact = true
}

// minimizeBinary bisects [LowerBound, Value]. Sat shrinks the upper
// bound to the model's value; Unsat raises the proven lower bound — to
// mid+1 normally, or all the way to the witnessed value when the core
// shows the hard assumptions conflict without the trial bound.
func minimizeBinary(s Solver, obj Objective, opts *Options, r *Result) {
	var buf []sat.Lit
	for r.LowerBound < r.Value {
		mid := r.LowerBound + (r.Value-r.LowerBound)/2
		bound := obj.BoundLit(mid)
		opts.phase()
		switch s.SolveAssuming(assume(opts.Hard, bound, buf)) {
		case sat.Sat:
			if v := obj.Eval(s.Model()); v < mid {
				r.Value = v // model read-back can only improve the bound
			} else {
				r.Value = mid
			}
			r.Model = append(r.Model[:0], s.Model()...)
		case sat.Unsat:
			if bound != 0 && !coreContains(s.FinalConflict(), bound) {
				// Core-guided tightening: the conflict did not use the
				// bound, so even the unbounded hard side refutes
				// anything below the witness.
				r.LowerBound = r.Value
				break
			}
			r.LowerBound = mid + 1
		default:
			return // budget tripped: [LowerBound, Value] is the answer
		}
	}
	r.Exact = true
}

// LexResult is the outcome of a stratified lexicographic optimization.
type LexResult struct {
	// Values[i] is the best witnessed value for level i, for every
	// level that established a witness (a trailing level the budget cut
	// before its first model is absent, as are all levels after it).
	Values []int64
	// LowerBounds[i] is the proven lower bound for level i, parallel to
	// Values. LowerBounds[i] == Values[i] for every certified level;
	// only the last present level can be loose, and only when !Exact.
	LowerBounds []int64
	// Exact reports every level was certified.
	Exact bool
	// Model is a copy of the best model: it achieves Values[i] on every
	// certified level (and the witnessed upper bound on a loose last
	// level).
	Model []bool
}

// Lexicographic minimizes the objectives in priority order: each level
// is minimized subject to every earlier level held at its optimum
// (carried as bound-literal assumptions, never permanent clauses). A
// budget trip finishes the run with the levels proven so far and Exact
// false — stratified degradation, not an error.
func Lexicographic(s Solver, objs []Objective, opts Options) (*LexResult, error) {
	res := &LexResult{Exact: true}
	hard := append([]sat.Lit(nil), opts.Hard...)
	if len(objs) == 0 {
		opts.phase()
		switch s.SolveAssuming(hard) {
		case sat.Sat:
			res.Model = append([]bool(nil), s.Model()...)
			return res, nil
		case sat.Unsat:
			return nil, ErrInfeasible
		default:
			res.Exact = false
			return res, nil
		}
	}
	for _, obj := range objs {
		lvl := opts
		lvl.Hard = hard
		r, err := Minimize(s, obj, lvl)
		if err != nil {
			return nil, err
		}
		if !r.Witnessed {
			res.Exact = false
			break
		}
		res.Values = append(res.Values, r.Value)
		res.LowerBounds = append(res.LowerBounds, r.LowerBound)
		res.Model = r.Model
		if !r.Exact {
			res.Exact = false
			break
		}
		if bl := obj.BoundLit(r.Value); bl != 0 {
			hard = append(hard, bl)
		}
	}
	return res, nil
}

// ParetoPoint is one non-dominated objective vector and a model
// achieving it.
type ParetoPoint struct {
	Values []int64
	Model  []bool
}

// ParetoResult is the outcome of a Pareto-front enumeration.
type ParetoResult struct {
	// Points holds the frontier in discovery order. Each point is
	// certified Pareto-optimal over the space reachable under
	// opts.Hard; when !Exact the budget tripped and further frontier
	// points may exist beyond Points.
	Points []ParetoPoint
	// Exact reports the frontier is provably complete.
	Exact bool
}

// Pareto enumerates the full non-dominated frontier of the objectives
// under opts.Hard. Each round finds any model, pushes it to a Pareto
// point by a stratified lexicographic descent inside the dominated box
// (bounds as assumptions), then adds a permanent dominance-blocking
// clause — "some objective strictly below this point" — and repeats
// until Unsat proves the frontier complete. The blocking clauses are
// the only permanent mutations; run Pareto on a dedicated clone.
func Pareto(s ClauseSolver, objs []Objective, opts Options) (*ParetoResult, error) {
	if len(objs) == 0 {
		return nil, errors.New("maxsat: pareto requires at least one objective")
	}
	res := &ParetoResult{}
	first := true
	for {
		opts.phase()
		switch s.SolveAssuming(opts.Hard) {
		case sat.Sat:
		case sat.Unsat:
			if first {
				return nil, ErrInfeasible
			}
			res.Exact = true
			return res, nil
		default:
			return res, nil
		}
		first = false
		// Push the model to a Pareto point: minimize each objective in
		// turn, holding every other objective at its current bound.
		cur := make([]int64, len(objs))
		for i, obj := range objs {
			cur[i] = obj.Eval(s.Model())
		}
		model := append([]bool(nil), s.Model()...)
		for j, obj := range objs {
			lvl := opts
			lvl.Hard = append(append([]sat.Lit(nil), opts.Hard...), boundAll(objs, cur, j)...)
			r, err := Minimize(s, obj, lvl)
			if err != nil {
				// The box contains the current model, so Unsat here is
				// impossible; surface solver poisoning loudly.
				return nil, err
			}
			if !r.Witnessed || !r.Exact {
				return res, nil // budget tripped mid-push
			}
			cur[j] = r.Value
			model = r.Model
			// The push model may have improved later coordinates too;
			// tightening their boxes is sound and deterministic.
			for i := j + 1; i < len(objs); i++ {
				if v := objs[i].Eval(model); v < cur[i] {
					cur[i] = v
				}
			}
		}
		res.Points = append(res.Points, ParetoPoint{Values: cur, Model: model})
		// Dominance block: any further model must beat this point on
		// some coordinate. An empty block means the point is the zero
		// vector — it dominates everything, so the frontier is done.
		var block []sat.Lit
		for i, obj := range objs {
			if cur[i] > 0 {
				if bl := obj.BoundLit(cur[i] - 1); bl != 0 {
					block = append(block, bl)
				}
			}
		}
		if len(block) == 0 {
			res.Exact = true
			return res, nil
		}
		s.AddClause(block...)
	}
}

// boundAll returns bound literals pinning every objective except skip to
// its current value, skipping vacuous bounds.
func boundAll(objs []Objective, cur []int64, skip int) []sat.Lit {
	var out []sat.Lit
	for i, obj := range objs {
		if i == skip {
			continue
		}
		if bl := obj.BoundLit(cur[i]); bl != 0 {
			out = append(out, bl)
		}
	}
	return out
}

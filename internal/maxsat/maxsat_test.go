package maxsat

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"netarch/internal/intlin"
	"netarch/internal/sat"
)

// fixture is a small formula over n decision variables plus a
// brute-force evaluator: every test in this file checks the engine
// against exhaustive enumeration of the decision-variable assignments
// (auxiliary encoding variables are existentially projected by the
// solver itself).
type fixture struct {
	s       *sat.Solver
	n       int
	decided []sat.Lit // one positive literal per decision variable
}

func newFixture(t *testing.T, n int, clauses [][]int) *fixture {
	t.Helper()
	s := sat.NewSolver()
	f := &fixture{s: s, n: n}
	for v := 1; v <= n; v++ {
		if s.NewVar() != v {
			t.Fatalf("variable numbering drifted")
		}
		f.decided = append(f.decided, sat.Lit(v))
	}
	for _, cl := range clauses {
		lits := make([]sat.Lit, len(cl))
		for i, v := range cl {
			lits[i] = sat.Lit(v)
		}
		if !s.AddClause(lits...) {
			t.Fatalf("clause %v poisoned the solver", cl)
		}
	}
	return f
}

// assignments calls fn for every assignment of the decision variables
// that extends to a model of the formula.
func (f *fixture) assignments(fn func(bits []bool)) {
	assumps := make([]sat.Lit, f.n)
	bits := make([]bool, f.n)
	for mask := 0; mask < 1<<f.n; mask++ {
		for v := 1; v <= f.n; v++ {
			if mask&(1<<(v-1)) != 0 {
				assumps[v-1] = sat.Lit(v)
				bits[v-1] = true
			} else {
				assumps[v-1] = sat.Lit(-v)
				bits[v-1] = false
			}
		}
		if f.s.SolveAssuming(assumps) == sat.Sat {
			fn(bits)
		}
	}
}

func countTrue(bits []bool) int64 {
	var n int64
	for _, b := range bits {
		if b {
			n++
		}
	}
	return n
}

func strategies() []Strategy { return []Strategy{BinarySearch, LinearSatUnsat} }

func TestMinimizeCountMatchesBruteForce(t *testing.T) {
	// (x1∨x2) ∧ (x2∨x3) ∧ (x4∨x5∨x6) ∧ (¬x2∨x6): brute-force minimum
	// computed below, engine must certify exactly it.
	clauses := [][]int{{1, 2}, {2, 3}, {4, 5, 6}, {-2, 6}}
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			f := newFixture(t, 6, clauses)
			want := int64(1 << 30)
			f.assignments(func(bits []bool) {
				if v := countTrue(bits); v < want {
					want = v
				}
			})
			obj := NewCount(f.s, f.decided)
			res, err := Minimize(f.s, obj, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			if !res.Exact || !res.Witnessed {
				t.Fatalf("expected exact witnessed result, got %+v", res)
			}
			if res.Value != want || res.LowerBound != want {
				t.Fatalf("optimum = %d (lb %d), brute force says %d", res.Value, res.LowerBound, want)
			}
			if got := obj.Eval(res.Model); got != want {
				t.Fatalf("model re-check: achieves %d, claimed %d", got, want)
			}
		})
	}
}

func TestMinimizeWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		clauses := [][]int{{1, 2, 3}, {-1, 4}, {2, 5}, {-3, -5, 1}}
		weights := make([]int64, 5)
		for i := range weights {
			weights[i] = rng.Int63n(50)
		}
		for _, strat := range strategies() {
			f := newFixture(t, 5, clauses)
			weigh := func(bits []bool) int64 {
				var v int64
				for i, b := range bits {
					if b && weights[i] > 0 {
						v += weights[i]
					}
				}
				return v
			}
			want := int64(1 << 40)
			f.assignments(func(bits []bool) {
				if v := weigh(bits); v < want {
					want = v
				}
			})
			arith := intlin.New(f.s)
			obj, err := NewWeighted(arith, f.decided, weights)
			if err != nil {
				t.Fatalf("NewWeighted: %v", err)
			}
			res, err := Minimize(f.s, obj, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			if !res.Exact || res.Value != want {
				t.Fatalf("trial %d %v: optimum %d (exact %v), brute force %d, weights %v",
					trial, strat, res.Value, res.Exact, want, weights)
			}
			if got := obj.Eval(res.Model); got != res.Value {
				t.Fatalf("model achieves %d, claimed %d", got, res.Value)
			}
		}
	}
}

func TestMinimizeRespectsHardAssumptions(t *testing.T) {
	f := newFixture(t, 4, [][]int{{1, 2}, {3, 4}})
	obj := NewCount(f.s, f.decided)
	// Unconstrained minimum is 2; forcing x1 and x3 false pushes the
	// minimum onto x2 and x4 — still 2 — while forcing x1 true makes 2
	// achievable only with x1 counted.
	res, err := Minimize(f.s, obj, Options{Hard: []sat.Lit{sat.Lit(1), sat.Lit(2)}})
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !res.Exact || res.Value != 3 {
		t.Fatalf("hard-assumption minimum = %d (exact %v), want 3", res.Value, res.Exact)
	}
	if !res.Model[0] || !res.Model[1] {
		t.Fatalf("model violates hard assumptions: %v", res.Model[:4])
	}
}

func TestMinimizeInfeasibleHard(t *testing.T) {
	f := newFixture(t, 2, [][]int{{1, 2}})
	obj := NewCount(f.s, f.decided)
	_, err := Minimize(f.s, obj, Options{Hard: []sat.Lit{sat.Lit(-1), sat.Lit(-2)}})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinimizeBudgetTripKeepsBounds(t *testing.T) {
	for _, strat := range strategies() {
		t.Run(strat.String(), func(t *testing.T) {
			f := newFixture(t, 8, [][]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
			obj := NewCount(f.s, f.decided)
			// Let the initial model through, then interrupt every
			// subsequent solve: the descent can never finish.
			solves := 0
			f.s.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
				if ev != sat.EventSolve {
					return false
				}
				solves++
				return solves > 1
			})
			res, err := Minimize(f.s, obj, Options{Strategy: strat})
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			if res.Exact {
				t.Fatalf("result exact despite interrupts (solves=%d)", solves)
			}
			if !res.Witnessed {
				t.Fatalf("no witness survived the trip")
			}
			const opt = 4 // one literal per clause
			if res.LowerBound > opt || res.Value < opt {
				t.Fatalf("bounds [%d, %d] exclude the true optimum %d", res.LowerBound, res.Value, opt)
			}
			if got := obj.Eval(res.Model); got != res.Value {
				t.Fatalf("witness achieves %d, claimed %d", got, res.Value)
			}
		})
	}
}

func TestLexicographicMatchesBruteForce(t *testing.T) {
	// Level 1: minimize x1..x3 count; level 2: minimize x4..x6 count
	// subject to level 1's optimum.
	clauses := [][]int{{1, 2, 3}, {4, 5, 6}, {-1, 5}, {-2, 6}}
	for _, strat := range strategies() {
		f := newFixture(t, 6, clauses)
		type vec struct{ a, b int64 }
		best := vec{1 << 30, 1 << 30}
		f.assignments(func(bits []bool) {
			v := vec{countTrue(bits[:3]), countTrue(bits[3:])}
			if v.a < best.a || (v.a == best.a && v.b < best.b) {
				best = v
			}
		})
		o1 := NewCount(f.s, f.decided[:3])
		o2 := NewCount(f.s, f.decided[3:])
		res, err := Lexicographic(f.s, []Objective{o1, o2}, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("Lexicographic: %v", err)
		}
		if !res.Exact {
			t.Fatalf("expected exact result")
		}
		if len(res.Values) != 2 || res.Values[0] != best.a || res.Values[1] != best.b {
			t.Fatalf("%v: lex optimum %v, brute force (%d, %d)", strat, res.Values, best.a, best.b)
		}
		for i, lb := range res.LowerBounds {
			if lb != res.Values[i] {
				t.Fatalf("exact level %d has loose lower bound %d != %d", i, lb, res.Values[i])
			}
		}
		if o1.Eval(res.Model) != best.a || o2.Eval(res.Model) != best.b {
			t.Fatalf("model does not achieve the lex optimum")
		}
	}
}

// bruteFrontier computes the non-dominated set of (a, b) count vectors
// by exhaustive enumeration.
func bruteFrontier(f *fixture, split int) [][]int64 {
	seen := map[[2]int64]bool{}
	f.assignments(func(bits []bool) {
		seen[[2]int64{countTrue(bits[:split]), countTrue(bits[split:])}] = true
	})
	var pts [][2]int64
	for p := range seen {
		pts = append(pts, p)
	}
	var frontier [][]int64
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q != p && q[0] <= p[0] && q[1] <= p[1] {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, []int64{p[0], p[1]})
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i][0] != frontier[j][0] {
			return frontier[i][0] < frontier[j][0]
		}
		return frontier[i][1] < frontier[j][1]
	})
	return frontier
}

func TestParetoMatchesBruteForce(t *testing.T) {
	// Conflicting pulls: deploying few of x1..x3 forces many of x4..x6
	// and vice versa, so the frontier has several points.
	clauses := [][]int{
		{1, 4}, {2, 5}, {3, 6}, // each pair needs one side
		{1, 2, 3, 4}, {-1, -4}, // a little asymmetry
	}
	for _, strat := range strategies() {
		f := newFixture(t, 6, clauses)
		want := bruteFrontier(f, 3)
		o1 := NewCount(f.s, f.decided[:3])
		o2 := NewCount(f.s, f.decided[3:])
		res, err := Pareto(f.s, []Objective{o1, o2}, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("Pareto: %v", err)
		}
		if !res.Exact {
			t.Fatalf("frontier not certified complete")
		}
		got := make([][]int64, 0, len(res.Points))
		for _, p := range res.Points {
			got = append(got, p.Values)
			if o1.Eval(p.Model) != p.Values[0] || o2.Eval(p.Model) != p.Values[1] {
				t.Fatalf("point %v not achieved by its model", p.Values)
			}
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i][0] != got[j][0] {
				return got[i][0] < got[j][0]
			}
			return got[i][1] < got[j][1]
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%v: frontier %v, brute force %v", strat, got, want)
		}
	}
}

func TestParetoZeroPointTerminates(t *testing.T) {
	// Unconstrained variables: the all-false model evaluates both
	// objectives to 0, which dominates everything — one point, done.
	f := newFixture(t, 4, nil)
	o1 := NewCount(f.s, f.decided[:2])
	o2 := NewCount(f.s, f.decided[2:])
	res, err := Pareto(f.s, []Objective{o1, o2}, Options{})
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if !res.Exact || len(res.Points) != 1 {
		t.Fatalf("want exactly the zero point, got %+v", res)
	}
	if res.Points[0].Values[0] != 0 || res.Points[0].Values[1] != 0 {
		t.Fatalf("frontier %v, want [0 0]", res.Points[0].Values)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, strat := range strategies() {
		got, err := ParseStrategy(strat.String())
		if err != nil || got != strat {
			t.Fatalf("ParseStrategy(%q) = %v, %v", strat.String(), got, err)
		}
	}
	if s, err := ParseStrategy(""); err != nil || s != BinarySearch {
		t.Fatalf("empty strategy should default to binary, got %v, %v", s, err)
	}
	if _, err := ParseStrategy("simulated-annealing"); err == nil {
		t.Fatalf("bogus strategy accepted")
	}
}

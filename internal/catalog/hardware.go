package catalog

import (
	"fmt"

	"netarch/internal/kb"
)

// CiscoCatalyst9500 is the hardware encoding from Listing 1 of the paper:
// the auto-generated Cisco Catalyst 9500-40X entry. The extraction
// experiment (§4.1 / L1) must reproduce exactly this from the bundled spec
// sheet.
func CiscoCatalyst9500() kb.Hardware {
	return kb.Hardware{
		Name:   "Cisco Catalyst 9500-40X",
		Kind:   kb.KindSwitch,
		Vendor: "Cisco",
		Caps:   []kb.Capability{kb.CapECN},
		Quant: map[kb.Resource]int64{
			kb.ResBandwidthGbps: 10,
			kb.ResPowerW:        950,
			kb.ResPortCount:     40,
			kb.ResMemoryGB:      16,
			kb.ResMACEntries:    64000,
		},
		Attrs: map[string]string{
			"Model Name":             "Cisco Catalyst 9500-40X",
			"Port Bandwidth":         "10 Gbps",
			"Max Power Consumption":  "950W",
			"Ports":                  "40x 10 Gigabit Ethernet SFP+",
			"Memory":                 "16 GB",
			"P4 Supported?":          "No",
			"# P4 Stages":            "N/A",
			"ECN supported?":         "Yes",
			"MAC Address Table Size": "64,000 entries",
		},
	}
}

// switchFamily describes a parameterized product line used by the
// generator. The paper's prototype encodes "about 200 hardware specs …
// from publicly available information"; the generator reproduces that
// scale with deterministic synthetic SKUs whose feature mix matches the
// real market segments (fixed-function ToR, ECN datacenter, QCN-capable,
// deep-buffer, P4-programmable).
type switchFamily struct {
	vendor  string
	series  string
	speeds  []int64 // Gbps per port
	ports   []int64
	caps    []kb.Capability
	stages  int64 // P4 stages when programmable
	bufMB   int64
	basePow int64
}

var switchFamilies = []switchFamily{
	{vendor: "Aristo", series: "FX", speeds: []int64{10, 25}, ports: []int64{32, 48},
		caps: []kb.Capability{}, bufMB: 12, basePow: 350},
	{vendor: "Aristo", series: "EX", speeds: []int64{25, 100}, ports: []int64{32, 64},
		caps: []kb.Capability{kb.CapECN}, bufMB: 16, basePow: 420},
	{vendor: "Brocadia", series: "QN", speeds: []int64{40, 100}, ports: []int64{32, 64},
		caps: []kb.Capability{kb.CapECN, kb.CapQCN, kb.CapPFC}, bufMB: 32, basePow: 520},
	{vendor: "Brocadia", series: "DB", speeds: []int64{100, 200}, ports: []int64{32},
		caps: []kb.Capability{kb.CapECN, kb.CapPFC, CapDeepBuffers}, bufMB: 256, basePow: 700},
	{vendor: "Tofinia", series: "P4", speeds: []int64{100, 400}, ports: []int64{32, 64},
		caps:   []kb.Capability{kb.CapECN, kb.CapPFC, kb.CapP4, kb.CapINT, CapPacketTrimming},
		stages: 12, bufMB: 22, basePow: 620},
	{vendor: "Tofinia", series: "P4X", speeds: []int64{400}, ports: []int64{32, 64},
		caps:   []kb.Capability{kb.CapECN, kb.CapPFC, kb.CapP4, kb.CapINT, kb.CapQCN, CapPacketTrimming},
		stages: 20, bufMB: 64, basePow: 900},
	{vendor: "Celesto", series: "INT", speeds: []int64{100, 200}, ports: []int64{32, 48},
		caps: []kb.Capability{kb.CapECN, kb.CapINT, kb.CapPFC}, bufMB: 42, basePow: 560},
	{vendor: "Aquantia", series: "EC", speeds: []int64{25, 50}, ports: []int64{24, 48},
		caps: []kb.Capability{kb.CapECN, kb.CapPFC}, bufMB: 24, basePow: 440},
}

// GenerateSwitches returns the synthetic switch SKUs (one per family ×
// speed × port count), deterministic across runs.
func GenerateSwitches() []kb.Hardware {
	var out []kb.Hardware
	for _, f := range switchFamilies {
		for _, sp := range f.speeds {
			for _, p := range f.ports {
				h := kb.Hardware{
					Name:   fmt.Sprintf("%s %s-%dx%dG", f.vendor, f.series, p, sp),
					Kind:   kb.KindSwitch,
					Vendor: f.vendor,
					Caps:   append([]kb.Capability(nil), f.caps...),
					Quant: map[kb.Resource]int64{
						kb.ResBandwidthGbps: sp,
						kb.ResPortCount:     p,
						kb.ResBufferMB:      f.bufMB,
						kb.ResPowerW:        f.basePow + p*sp/10,
						kb.ResMACEntries:    32000 + 1000*p,
					},
					CostUSD: 4000 + 22*p*sp/10*10,
				}
				if f.stages > 0 {
					h.Quant[kb.ResP4Stages] = f.stages
					h.Quant[kb.ResSRAMMB] = f.stages * 2
				}
				out = append(out, h)
			}
		}
	}
	return out
}

// nicFamily is a parameterized NIC product line.
type nicFamily struct {
	vendor  string
	series  string
	speeds  []int64
	caps    []kb.Capability
	cores   int64 // SmartNIC CPU cores (CPU SmartNICs)
	reorder int64 // reorder buffer KB
}

var nicFamilies = []nicFamily{
	{vendor: "Intella", series: "Basic", speeds: []int64{10, 25, 40},
		caps: []kb.Capability{}},
	{vendor: "Intella", series: "Flex", speeds: []int64{25, 40, 100},
		caps: []kb.Capability{kb.CapDPDK, kb.CapSRIOV}},
	{vendor: "Mellanor", series: "CX", speeds: []int64{25, 40, 100, 200},
		caps: []kb.Capability{kb.CapDPDK, kb.CapSRIOV, kb.CapRDMA, kb.CapNICTimestamps, kb.CapInterruptPoll}},
	{vendor: "Mellanor", series: "CX-R", speeds: []int64{100, 200},
		caps:    []kb.Capability{kb.CapDPDK, kb.CapSRIOV, kb.CapRDMA, kb.CapNICTimestamps, kb.CapInterruptPoll, CapLargeReorderBuf},
		reorder: 2048},
	{vendor: "Xilinxa", series: "FPGA", speeds: []int64{40, 100},
		caps:    []kb.Capability{kb.CapDPDK, kb.CapSmartNICFPGA, kb.CapNICTimestamps, CapLargeReorderBuf},
		reorder: 1024},
	{vendor: "Marvella", series: "SoC", speeds: []int64{25, 100},
		caps:  []kb.Capability{kb.CapDPDK, kb.CapSmartNICCPU, kb.CapNICTimestamps, kb.CapRDMA, kb.CapInterruptPoll},
		cores: 8},
	{vendor: "Broadcoma", series: "Stingra", speeds: []int64{100, 200},
		caps:  []kb.Capability{kb.CapDPDK, kb.CapSmartNICCPU, kb.CapSRIOV, kb.CapNICTimestamps, kb.CapInterruptPoll, CapLargeReorderBuf},
		cores: 16, reorder: 4096},
}

// GenerateNICs returns the synthetic NIC SKUs.
func GenerateNICs() []kb.Hardware {
	var out []kb.Hardware
	for _, f := range nicFamilies {
		for _, sp := range f.speeds {
			h := kb.Hardware{
				Name:   fmt.Sprintf("%s %s-%dG", f.vendor, f.series, sp),
				Kind:   kb.KindNIC,
				Vendor: f.vendor,
				Caps:   append([]kb.Capability(nil), f.caps...),
				Quant: map[kb.Resource]int64{
					kb.ResBandwidthGbps: sp,
					kb.ResPowerW:        15 + sp/10,
				},
				CostUSD: 200 + sp*9,
			}
			if f.cores > 0 {
				h.Quant[kb.ResCores] = f.cores
			}
			if f.reorder > 0 {
				h.Quant[kb.ResReorderBufKB] = f.reorder
			}
			out = append(out, h)
		}
	}
	return out
}

// serverFamily is a parameterized server product line.
type serverFamily struct {
	vendor     string
	series     string
	cores      []int64
	memPerCore int64
	caps       []kb.Capability
}

var serverFamilies = []serverFamily{
	{vendor: "Dellora", series: "R", cores: []int64{16, 32, 64}, memPerCore: 4,
		caps: []kb.Capability{}},
	{vendor: "Dellora", series: "RX", cores: []int64{32, 64, 96}, memPerCore: 8,
		caps: []kb.Capability{}},
	{vendor: "Suprima", series: "HD", cores: []int64{64, 128}, memPerCore: 8,
		caps: []kb.Capability{}},
	{vendor: "Suprima", series: "CXL", cores: []int64{64, 96, 128}, memPerCore: 16,
		caps: []kb.Capability{kb.CapCXL}},
	{vendor: "HPEon", series: "DL", cores: []int64{24, 48, 96}, memPerCore: 4,
		caps: []kb.Capability{}},
}

// GenerateServers returns the synthetic server SKUs.
func GenerateServers() []kb.Hardware {
	var out []kb.Hardware
	for _, f := range serverFamilies {
		for _, c := range f.cores {
			out = append(out, kb.Hardware{
				Name:   fmt.Sprintf("%s %s-%dc", f.vendor, f.series, c),
				Kind:   kb.KindServer,
				Vendor: f.vendor,
				Caps:   append([]kb.Capability(nil), f.caps...),
				Quant: map[kb.Resource]int64{
					kb.ResCores:    c,
					kb.ResMemoryGB: c * f.memPerCore,
					kb.ResPowerW:   180 + 6*c,
				},
				CostUSD: 3000 + 140*c,
			})
		}
	}
	return out
}

// Hardware returns the full hardware catalog: the curated Listing 1 entry
// plus the generated families (≈200 specs once replicated variants are
// included, matching the paper's "about 200 hardware specs").
func Hardware() []kb.Hardware {
	out := []kb.Hardware{CiscoCatalyst9500()}
	out = append(out, GenerateSwitches()...)
	out = append(out, GenerateNICs()...)
	out = append(out, GenerateServers()...)
	// Replicated regional variants pad the catalog to the paper's scale
	// while remaining honest: each variant is a distinct SKU record (same
	// silicon, different optics/region), as real vendor catalogs have.
	var variants []kb.Hardware
	for _, h := range GenerateSwitches() {
		for _, region := range []string{"SR", "LR", "ER"} {
			v := h
			v.Name = h.Name + "-" + region
			v.Quant = map[kb.Resource]int64{}
			for k, q := range h.Quant {
				v.Quant[k] = q
			}
			switch region {
			case "LR":
				v.Quant[kb.ResPowerW] += 40
				v.CostUSD += 1500
			case "ER":
				v.Quant[kb.ResPowerW] += 90
				v.CostUSD += 4000
			}
			variants = append(variants, v)
		}
	}
	for _, h := range GenerateNICs() {
		for _, form := range []string{"OCP", "LP"} {
			v := h
			v.Name = h.Name + "-" + form
			variants = append(variants, v)
		}
	}
	for _, h := range GenerateServers() {
		v := h
		v.Name = h.Name + "-2PSU"
		v.Quant = map[kb.Resource]int64{}
		for k, q := range h.Quant {
			v.Quant[k] = q
		}
		v.Quant[kb.ResPowerW] += 50
		v.CostUSD += 400
		variants = append(variants, v)
	}
	out = append(out, variants...)
	return out
}

package catalog

import "netarch/internal/kb"

// Default assembles the full seed knowledge base: 50+ systems, ~200
// hardware specs, the Figure 1 partial orders, and the expert rules.
// The result is freshly built on every call so callers may mutate it.
func Default() *kb.KB {
	return &kb.KB{
		Systems:  Systems(),
		Hardware: Hardware(),
		Rules:    Rules(),
		Orders:   Orders(),
	}
}

// InferenceWorkload is the ML-inference application of the case study
// (§2.3, Listing 3): latency-sensitive serving spread over racks 0–3 with
// 2800 peak cores and 30 Gbit/s peak bandwidth.
func InferenceWorkload() kb.Workload {
	return kb.Workload{
		Name:              "inference_app",
		Properties:        []string{"dc_flows", "short_flows", "high_priority"},
		DeployedAt:        []string{"rack0", "rack1", "rack2", "rack3"},
		PeakCores:         2800,
		PeakMemoryGB:      16000,
		PeakBandwidthGbps: 30,
		KFlows:            50,
		Needs: []kb.Property{
			PropCongestionControl,
			PropLoadBalancing,
			PropQueueLengths, // monitor network queue lengths (§2.3)
		},
	}
}

// BatchAnalyticsWorkload is a second workload used by the §5.1 "support
// more applications" query: throughput-bound, flexible placement.
func BatchAnalyticsWorkload() kb.Workload {
	return kb.Workload{
		Name:              "batch_analytics",
		Properties:        []string{"dc_flows", "long_flows"},
		DeployedAt:        []string{"rack4", "rack5"},
		PeakCores:         1600,
		PeakMemoryGB:      14400,
		PeakBandwidthGbps: 80,
		KFlows:            20,
		Needs:             []kb.Property{PropCongestionControl, PropBwAllocation},
	}
}

// StorageWorkload is a third workload: a disaggregated storage backend
// that wants a lossless fabric (driving the RoCE/PFC rules).
func StorageWorkload() kb.Workload {
	return kb.Workload{
		Name:              "storage_backend",
		Properties:        []string{"dc_flows", "incast_heavy"},
		DeployedAt:        []string{"rack6", "rack7"},
		PeakCores:         800,
		PeakMemoryGB:      70000,
		PeakBandwidthGbps: 100,
		KFlows:            12,
		Needs:             []kb.Property{PropLowLatTransport, PropCongestionControl},
	}
}

// CaseStudy returns the §2.3 case-study knowledge base: the full catalog
// plus the ML-inference workload.
func CaseStudy() *kb.KB {
	k := Default()
	k.Workloads = append(k.Workloads, InferenceWorkload())
	return k
}

package catalog

import "netarch/internal/kb"

func guard(e kb.Expr) *kb.Expr { return &e }

// Fig1Throughput is the yellow dimension of Figure 1: relative throughput
// of the six network stacks, conditional on link load and Snap's transport.
func Fig1Throughput() kb.OrderSpec {
	ge40 := kb.CtxAtom(CtxLoadGE40G)
	lt40 := kb.Not(kb.CtxAtom(CtxLoadGE40G))
	pony := kb.CtxAtom(CtxPonyEnabled)
	tcp := kb.CtxAtom(CtxTCPEnabled)
	return kb.OrderSpec{
		Dimension: "throughput",
		Edges: []kb.OrderEdge{
			{Better: "netchannel", Worse: "linux", Guard: guard(ge40),
				Note: "NetChannel supports high throughput; relevant above 40 Gbit/s [SIGCOMM'22]"},
			{Better: "linux", Worse: "netchannel", Guard: guard(lt40),
				Note: "Linux sufficiently performant at low link rates [Snap SOSP'19, Shenango NSDI'19]"},
			{Better: "snap", Worse: "linux", Guard: guard(pony),
				Note: "Snap with Pony Express outperforms the kernel stack [SOSP'19]"},
			{Better: "zygos", Worse: "linux", Guard: guard(ge40),
				Note: "kernel bypass beats kernel stack at high rates [SOSP'17]"},
			{Better: "demikernel", Worse: "linux", Guard: guard(ge40),
				Note: "library-OS datapath beats kernel stack at high rates [SOSP'21]"},
		},
		Equals: []kb.OrderEq{
			{A: "snap", B: "linux", Guard: guard(kb.And(tcp, kb.Not(pony))),
				Note: "Snap over classic TCP performs on par with the kernel stack"},
		},
	}
}

// Fig1Isolation is the red dimension of Figure 1: process isolation. The
// Shenango–Demikernel pair is deliberately incomparable — the paper could
// not find a comparison in the literature, and the encoding preserves the
// gap rather than inventing an answer (§3.1).
func Fig1Isolation() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "isolation",
		Edges: []kb.OrderEdge{
			{Better: "linux", Worse: "shenango",
				Note: "Shenango offers low latencies but less process isolation [NSDI'19]"},
			{Better: "linux", Worse: "zygos",
				Note: "dedicated-core bypass weakens isolation"},
			{Better: "snap", Worse: "shenango",
				Note: "Snap's microkernel boundary preserves isolation [SOSP'19]"},
			{Better: "netchannel", Worse: "shenango",
				Note: "NetChannel keeps kernel-mediated isolation [SIGCOMM'22]"},
		},
	}
}

// Fig1AppModification is the blue dimension of Figure 1: "better" means
// fewer application modifications required.
func Fig1AppModification() kb.OrderSpec {
	pony := kb.CtxAtom(CtxPonyEnabled)
	return kb.OrderSpec{
		Dimension: "app_modification",
		Edges: []kb.OrderEdge{
			{Better: "linux", Worse: "demikernel",
				Note: "Demikernel requires porting applications to its libOS API [SOSP'21]"},
			{Better: "linux", Worse: "zygos",
				Note: "ZygOS requires application integration [SOSP'17]"},
			{Better: "linux", Worse: "snap", Guard: guard(pony),
				Note: "using Pony requires application modification (§3.1)"},
			{Better: "netchannel", Worse: "demikernel",
				Note: "NetChannel is a drop-in kernel path [SIGCOMM'22]"},
			{Better: "shenango", Worse: "demikernel",
				Note: "Shenango's runtime needs fewer app changes than a libOS port"},
		},
	}
}

// Fig1Stacks lists the six network stacks drawn in Figure 1.
func Fig1Stacks() []string {
	return []string{"zygos", "linux", "snap", "netchannel", "shenango", "demikernel"}
}

// MonitoringOrder ranks monitoring systems by fidelity (Listing 2's
// "better_than = PINGMESH").
func MonitoringOrder() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "monitoring",
		Edges: []kb.OrderEdge{
			{Better: "simon", Worse: "pingmesh",
				Note: "Simon reconstructs per-queue delays; Pingmesh samples end-to-end RTTs (Listing 2)"},
			{Better: "sonata", Worse: "pingmesh",
				Note: "query-driven telemetry subsumes RTT probing"},
			{Better: "marple", Worse: "everflow",
				Note: "language-directed switch queries vs mirror-based sampling"},
		},
	}
}

// DeploymentEaseOrder ranks systems by how easy they are to roll out
// (Listing 2's second ordering).
func DeploymentEaseOrder() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "deployment_ease",
		Edges: []kb.OrderEdge{
			{Better: "pingmesh", Worse: "simon",
				Note: "Pingmesh needs no SmartNICs (Listing 2)"},
			{Better: "ecmp", Worse: "packet-spraying",
				Note: "packet spraying requires larger NIC reorder buffers (§2.3)"},
			{Better: "cubic", Worse: "hpcc",
				Note: "HPCC needs INT switches; Cubic runs anywhere"},
			{Better: "ovs", Worse: "accelnet-offload",
				Note: "offload requires FPGA SmartNIC provisioning"},
		},
	}
}

// TailLatencyOrder ranks congestion controls by tail-latency impact.
func TailLatencyOrder() kb.OrderSpec {
	wan := kb.CtxAtom(CtxWanDCMix)
	incast := kb.CtxAtom(CtxIncastHeavy)
	return kb.OrderSpec{
		Dimension: "tail_latency",
		Edges: []kb.OrderEdge{
			{Better: "annulus", Worse: "cubic", Guard: guard(wan),
				Note: "Annulus improves tail latency under WAN/DC mixes (§2.3)"},
			{Better: "swift", Worse: "cubic",
				Note: "delay targets bound queueing [SIGCOMM'20]"},
			{Better: "hpcc", Worse: "dctcp",
				Note: "INT-precise control beats ECN marking [SIGCOMM'19]"},
			{Better: "bfc", Worse: "hpcc", Guard: guard(incast),
				Note: "per-hop backpressure wins under heavy incast [NSDI'22]"},
			{Better: "dctcp", Worse: "cubic",
				Note: "ECN-based control keeps queues shorter [SIGCOMM'10]"},
		},
	}
}

// LoadBalancingOrder ranks load balancers by balance quality (the
// dimension Listing 3's performance bound references).
func LoadBalancingOrder() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "load_balancing",
		Edges: []kb.OrderEdge{
			{Better: "packet-spraying", Worse: "ecmp",
				Note: "ECMP hash collisions cause load imbalance (§2.3)"},
			{Better: "conga", Worse: "ecmp",
				Note: "congestion-aware flowlet routing beats static hashing"},
			{Better: "conga", Worse: "vlb",
				Note: "adaptive beats oblivious"},
			{Better: "packet-spraying", Worse: "vlb",
				Note: "per-packet spreading achieves near-ideal balance"},
			{Better: "wcmp", Worse: "ecmp",
				Note: "weighted hashing absorbs asymmetry"},
		},
	}
}

// CPUEfficiencyOrder ranks network stacks by CPU efficiency — the axis
// Shenango and Snap papers lead with.
func CPUEfficiencyOrder() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "cpu_efficiency",
		Edges: []kb.OrderEdge{
			{Better: "shenango", Worse: "linux",
				Note: "microsecond core reallocation reclaims stranded cycles [NSDI'19]"},
			{Better: "caladan", Worse: "shenango",
				Note: "interference-aware allocation improves on Shenango's IOKernel [OSDI'20]"},
			{Better: "snap", Worse: "linux",
				Note: "userspace packet processing with upgradeable engines [SOSP'19]"},
			{Better: "shenango", Worse: "zygos",
				Note: "ZygOS dedicates cores; Shenango reallocates them"},
		},
	}
}

// MonitoringCostOrder ranks monitoring systems by operating cost (the
// subjective counterpart to MonitoringOrder's fidelity ranking).
func MonitoringCostOrder() kb.OrderSpec {
	return kb.OrderSpec{
		Dimension: "monitoring_cost",
		Edges: []kb.OrderEdge{
			{Better: "pingmesh", Worse: "simon",
				Note: "probing uses one core; Simon burns cores per kiloflow"},
			{Better: "pingmesh", Worse: "everflow",
				Note: "mirror-based capture needs collector fleets"},
			{Better: "sketchvisor", Worse: "everflow",
				Note: "sketches compress to constant memory"},
			{Better: "sonata", Worse: "everflow",
				Note: "on-switch reduction only exports query answers"},
		},
	}
}

// Orders returns every order spec in the catalog.
func Orders() []kb.OrderSpec {
	return []kb.OrderSpec{
		Fig1Throughput(),
		Fig1Isolation(),
		Fig1AppModification(),
		MonitoringOrder(),
		DeploymentEaseOrder(),
		TailLatencyOrder(),
		LoadBalancingOrder(),
		CPUEfficiencyOrder(),
		MonitoringCostOrder(),
	}
}

// Package catalog is the seed knowledge compendium of the reproduction:
// encodings of 50+ deployable systems across the paper's seven roles,
// ~200 hardware specs, the Figure 1 partial orders, and the expert rules
// discussed throughout the paper (§2.2, §2.3, §3, §5.1).
//
// Facts are sourced from the papers the target publication cites; each
// encoding carries provenance notes. The catalog is the "initial
// knowledge-base" the paper expects a small team to bootstrap (§3.3).
package catalog

import "netarch/internal/kb"

// Context atoms used across the catalog. Queries set these to describe
// the deployment environment.
const (
	CtxLoadGE40G      = "load_ge_40gbps"    // per-server network load ≥ 40 Gbit/s
	CtxPonyEnabled    = "pony_enabled"      // Snap's Pony Express transport in use
	CtxTCPEnabled     = "tcp_enabled"       // Snap used with classic TCP
	CtxDeadlineTight  = "deadline_tight"    // sharp deployment deadline (no research systems)
	CtxWanDCMix       = "wan_dc_mix"        // competing WAN and DC traffic aggregates
	CtxAppModifiable  = "app_modifiable"    // applications can be modified/recompiled
	CtxFloodingOn     = "flooding_enabled"  // L2/ARP flooding present in the fabric
	CtxPFCOn          = "pfc_enabled"       // priority flow control enabled fabric-wide
	CtxScavenger      = "scavenger_ok"      // delay-based CC may run as scavenger class
	CtxDeepQueues     = "deep_queues"       // switch queues provisioned deep
	CtxLosslessNeeded = "lossless_required" // workload requires a lossless fabric
	CtxIncastHeavy    = "incast_heavy"      // workload has heavy incast patterns
	CtxVirtFeatures   = "virt_features_on"  // switch virtualization features in use
	CtxCXLPooling     = "cxl_pooling"       // CXL memory pooling deployed
	CtxEdgeSite       = "edge_site"         // deployment at an edge site
	CtxMultiTenant    = "multi_tenant"      // multi-tenant isolation required
)

// Properties solved by catalog systems.
const (
	PropCongestionControl kb.Property = "congestion_control"
	PropLowLatencyStack   kb.Property = "low_latency_stack"
	PropHighTputStack     kb.Property = "high_throughput_stack"
	PropKernelStack       kb.Property = "kernel_network_stack"
	PropCaptureDelays     kb.Property = "capture_delays"
	PropQueueLengths      kb.Property = "detect_queue_length"
	PropFlowTelemetry     kb.Property = "flow_telemetry"
	PropPacketFilter      kb.Property = "packet_filtering"
	PropStatefulFW        kb.Property = "stateful_firewall"
	PropNetVirt           kb.Property = "network_virtualization"
	PropLoadBalancing     kb.Property = "load_balancing"
	PropL4LoadBalancing   kb.Property = "l4_load_balancing"
	PropReliableTransport kb.Property = "reliable_transport"
	PropLowLatTransport   kb.Property = "low_latency_transport"
	PropTailLatency       kb.Property = "tail_latency_control"
	PropBwAllocation      kb.Property = "bandwidth_allocation"
)

// Extra capabilities beyond the kb canonical set.
const (
	CapLargeReorderBuf kb.Capability = "LARGE_REORDER_BUFFER"
	CapPacketTrimming  kb.Capability = "PACKET_TRIMMING"
	CapDeepBuffers     kb.Capability = "DEEP_BUFFERS"
)

// NetworkStacks returns the network-stack encodings, including the six
// systems of Figure 1.
func NetworkStacks() []kb.System {
	return []kb.System{
		{
			Name: "linux", Role: kb.RoleNetworkStack,
			Solves:   []kb.Property{PropKernelStack, PropHighTputStack},
			Maturity: "production",
			Notes:    map[string]string{"throughput": "sufficient below ~40 Gbps [Snap SOSP'19, Shenango NSDI'19]"},
		},
		{
			Name: "zygos", Role: kb.RoleNetworkStack,
			Solves:          []kb.Property{PropLowLatencyStack},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK}},
			RequiresContext: []kb.Condition{{Atom: CtxDeadlineTight, Value: false}, {Atom: CtxAppModifiable, Value: true}},
			AppModification: true,
			Resources:       map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:        "research",
			Notes:           map[string]string{"origin": "SOSP'17 work-stealing kernel bypass"},
		},
		{
			Name: "snap", Role: kb.RoleNetworkStack,
			Solves:    []kb.Property{PropHighTputStack, PropLowLatencyStack},
			Resources: map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:  "production",
			Notes:     map[string]string{"pony": "Pony Express improves throughput but requires app modification [SOSP'19]"},
		},
		{
			Name: "netchannel", Role: kb.RoleNetworkStack,
			Solves:         []kb.Property{PropHighTputStack},
			UsefulOnlyWhen: []kb.Condition{{Atom: CtxLoadGE40G, Value: true}},
			Resources:      map[kb.Resource]int64{kb.ResCores: 3},
			RequiresContext: []kb.Condition{
				{Atom: CtxDeadlineTight, Value: false},
			},
			Maturity: "research",
			Notes:    map[string]string{"relevance": "only relevant at NIC speeds above 40 Gbit/s [SIGCOMM'22]"},
		},
		{
			Name: "shenango", Role: kb.RoleNetworkStack,
			Solves: []kb.Property{PropLowLatencyStack},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{
				kb.KindNIC: {kb.CapInterruptPoll, kb.CapDPDK},
			},
			RequiresContext: []kb.Condition{{Atom: CtxDeadlineTight, Value: false}},
			Resources:       map[kb.Resource]int64{kb.ResCores: 1}, // dedicated spin-polling core
			Maturity:        "research",
			Notes: map[string]string{
				"isolation": "low latency but less process isolation [NSDI'19]",
				"spin_core": "dedicates a core for spin polling (objective fact, §4.2)",
			},
		},
		{
			Name: "demikernel", Role: kb.RoleNetworkStack,
			Solves:          []kb.Property{PropLowLatencyStack},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK}},
			RequiresContext: []kb.Condition{{Atom: CtxAppModifiable, Value: true}, {Atom: CtxDeadlineTight, Value: false}},
			AppModification: true,
			Resources:       map[kb.Resource]int64{kb.ResCores: 1},
			Maturity:        "research",
			Notes:           map[string]string{"origin": "SOSP'21 library OS datapath"},
		},
		{
			Name: "ix", Role: kb.RoleNetworkStack,
			Solves:          []kb.Property{PropLowLatencyStack, PropHighTputStack},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK}},
			RequiresContext: []kb.Condition{{Atom: CtxDeadlineTight, Value: false}, {Atom: CtxAppModifiable, Value: true}},
			AppModification: true,
			Maturity:        "research",
		},
		{
			Name: "mtcp", Role: kb.RoleNetworkStack,
			Solves:          []kb.Property{PropHighTputStack},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK}},
			RequiresContext: []kb.Condition{{Atom: CtxAppModifiable, Value: true}},
			AppModification: true,
			Maturity:        "research",
		},
		{
			Name: "caladan", Role: kb.RoleNetworkStack,
			Solves:          []kb.Property{PropLowLatencyStack},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK, kb.CapInterruptPoll}},
			RequiresContext: []kb.Condition{{Atom: CtxDeadlineTight, Value: false}},
			Resources:       map[kb.Resource]int64{kb.ResCores: 1},
			Maturity:        "research",
		},
	}
}

// CongestionControls returns the congestion-control encodings.
func CongestionControls() []kb.System {
	return []kb.System{
		{
			Name: "cubic", Role: kb.RoleCongestionControl,
			Solves:   []kb.Property{PropCongestionControl},
			Maturity: "production",
			Notes:    map[string]string{"default": "Linux default loss-based CCA"},
		},
		{
			Name: "dctcp", Role: kb.RoleCongestionControl,
			Solves:       []kb.Property{PropCongestionControl},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapECN}},
			Maturity:     "production",
			Notes:        map[string]string{"ecn": "requires ECN marking at switches [SIGCOMM'10]"},
		},
		{
			Name: "hpcc", Role: kb.RoleCongestionControl,
			Solves:       []kb.Property{PropCongestionControl, PropTailLatency},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapINT}},
			Maturity:     "research",
			Notes:        map[string]string{"int": "needs INT-enabled switches [SIGCOMM'19] (§3.1)"},
		},
		{
			Name: "timely", Role: kb.RoleCongestionControl,
			Solves:       []kb.Property{PropCongestionControl},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
			RequiresContext: []kb.Condition{
				{Atom: CtxScavenger, Value: true}, {Atom: CtxDeepQueues, Value: true},
			},
			Resources: map[kb.Resource]int64{kb.ResQoSClasses: 1},
			Maturity:  "production",
			Notes: map[string]string{
				"qos":   "depends on a specific QoS level for acknowledgements and NIC timestamps (§3.1)",
				"delay": "delay-based: cannot compete with buffer-filling unless scavenger with deep queues (§2.2)",
			},
		},
		{
			Name: "swift", Role: kb.RoleCongestionControl,
			Solves:       []kb.Property{PropCongestionControl, PropTailLatency},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
			RequiresContext: []kb.Condition{
				{Atom: CtxScavenger, Value: true}, {Atom: CtxDeepQueues, Value: true},
			},
			Resources: map[kb.Resource]int64{kb.ResQoSClasses: 1},
			Maturity:  "production",
			Notes:     map[string]string{"delay": "delay-based scavenger caveat as Timely (§2.2)"},
		},
		{
			Name: "vegas", Role: kb.RoleCongestionControl,
			Solves: []kb.Property{PropCongestionControl},
			RequiresContext: []kb.Condition{
				{Atom: CtxScavenger, Value: true}, {Atom: CtxDeepQueues, Value: true},
			},
			Maturity: "production",
			Notes:    map[string]string{"delay": "delay-based scavenger caveat (§2.2, RFC 6297)"},
		},
		{
			Name: "annulus", Role: kb.RoleCongestionControl,
			Solves:         []kb.Property{PropCongestionControl, PropTailLatency},
			RequiresCaps:   map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapQCN}},
			UsefulOnlyWhen: []kb.Condition{{Atom: CtxWanDCMix, Value: true}},
			Maturity:       "research",
			Notes: map[string]string{
				"qcn":  "requires switches to support QCN notifications (§2.3)",
				"when": "required only when there is competing WAN and DC traffic (§4.1)",
			},
		},
		{
			Name: "bfc", Role: kb.RoleCongestionControl,
			Solves:       []kb.Property{PropCongestionControl, PropTailLatency},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
			Resources:    map[kb.Resource]int64{kb.ResP4Stages: 6, kb.ResSRAMMB: 4},
			Maturity:     "research",
			Notes:        map[string]string{"hw": "per-hop backpressure needs programmable switches [NSDI'22]"},
		},
		{
			Name: "dcqcn", Role: kb.RoleCongestionControl,
			Solves: []kb.Property{PropCongestionControl},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{
				kb.KindSwitch: {kb.CapECN}, kb.KindNIC: {kb.CapRDMA},
			},
			RequiresContext: []kb.Condition{{Atom: CtxPFCOn, Value: true}},
			Maturity:        "production",
			Notes:           map[string]string{"pfc": "RoCE deployments run DCQCN over a PFC fabric [SIGCOMM'15/'16]"},
		},
		{
			Name: "bbr", Role: kb.RoleCongestionControl,
			Solves:   []kb.Property{PropCongestionControl},
			Maturity: "production",
		},
		{
			Name: "pcc", Role: kb.RoleCongestionControl,
			Solves:   []kb.Property{PropCongestionControl},
			Maturity: "research",
			RequiresContext: []kb.Condition{
				{Atom: CtxDeadlineTight, Value: false},
			},
		},
		{
			Name: "fastpass", Role: kb.RoleCongestionControl,
			Solves:    []kb.Property{PropBwAllocation, PropCongestionControl},
			Resources: map[kb.Resource]int64{kb.ResCores: 8}, // centralized arbiter
			Maturity:  "research",
			Notes:     map[string]string{"central": "centralized zero-queue allocator [SIGCOMM'14]"},
		},
		{
			Name: "bwe", Role: kb.RoleCongestionControl,
			Solves:         []kb.Property{PropBwAllocation},
			UsefulOnlyWhen: []kb.Condition{{Atom: CtxWanDCMix, Value: true}},
			Resources:      map[kb.Resource]int64{kb.ResCores: 4},
			Maturity:       "production",
			Notes:          map[string]string{"scope": "hierarchical WAN bandwidth allocation [SIGCOMM'15]"},
		},
	}
}

// MonitoringSystems returns the monitoring encodings, including Listing 2's
// SIMON.
func MonitoringSystems() []kb.System {
	return []kb.System{
		{
			// Listing 2 of the paper, faithfully transcribed.
			Name: "simon", Role: kb.RoleMonitoring,
			Solves:         []kb.Property{PropCaptureDelays, PropQueueLengths},
			RequiresCaps:   map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
			CoresPerKFlows: 2, // CPU_FACTOR * num_flows
			Maturity:       "research",
			Notes: map[string]string{
				"smartnic": "deploying Simon requires SmartNICs (§2.3); encoded as rule simon_needs_smartnic",
			},
		},
		{
			Name: "pingmesh", Role: kb.RoleMonitoring,
			Solves:    []kb.Property{PropCaptureDelays},
			Resources: map[kb.Resource]int64{kb.ResCores: 1},
			Maturity:  "production",
		},
		{
			Name: "sonata", Role: kb.RoleMonitoring,
			Solves:       []kb.Property{PropFlowTelemetry, PropQueueLengths},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
			Resources:    map[kb.Resource]int64{kb.ResP4Stages: 8, kb.ResSRAMMB: 8, kb.ResCores: 4},
			Maturity:     "research",
			Notes:        map[string]string{"stages": "query pipeline needs 8 P4 stages (§4.2 checks this number)"},
		},
		{
			Name: "marple", Role: kb.RoleMonitoring,
			Solves:       []kb.Property{PropFlowTelemetry, PropQueueLengths},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
			Resources:    map[kb.Resource]int64{kb.ResP4Stages: 10, kb.ResSRAMMB: 16},
			Maturity:     "research",
		},
		{
			Name: "everflow", Role: kb.RoleMonitoring,
			Solves:    []kb.Property{PropFlowTelemetry},
			Resources: map[kb.Resource]int64{kb.ResCores: 8},
			Maturity:  "production",
		},
		{
			Name: "int-collector", Role: kb.RoleMonitoring,
			Solves:       []kb.Property{PropQueueLengths, PropFlowTelemetry},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapINT}},
			Resources:    map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:     "research",
		},
		{
			Name: "netsight", Role: kb.RoleMonitoring,
			Solves:    []kb.Property{PropFlowTelemetry},
			Resources: map[kb.Resource]int64{kb.ResCores: 16},
			Maturity:  "research",
			RequiresContext: []kb.Condition{
				{Atom: CtxDeadlineTight, Value: false},
			},
		},
		{
			Name: "sketchvisor", Role: kb.RoleMonitoring,
			Solves:    []kb.Property{PropFlowTelemetry},
			Resources: map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:  "research",
		},
	}
}

// Firewalls returns the firewall encodings.
func Firewalls() []kb.System {
	return []kb.System{
		{
			Name: "iptables", Role: kb.RoleFirewall,
			Solves:          []kb.Property{PropPacketFilter, PropStatefulFW},
			RequiresSystems: []string{"linux"},
			Maturity:        "production",
		},
		{
			Name: "ebpf-firewall", Role: kb.RoleFirewall,
			Solves:          []kb.Property{PropPacketFilter},
			RequiresSystems: []string{"linux"},
			Resources:       map[kb.Resource]int64{kb.ResCores: 1},
			Maturity:        "production",
		},
		{
			Name: "smartnic-firewall", Role: kb.RoleFirewall,
			Solves:       []kb.Property{PropPacketFilter, PropStatefulFW},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapSmartNICFPGA}},
			Maturity:     "production",
			Notes:        map[string]string{"sharing": "shares SmartNIC already provisioned for other offloads (§2.3)"},
		},
		{
			Name: "switch-acl", Role: kb.RoleFirewall,
			Solves:    []kb.Property{PropPacketFilter},
			Resources: map[kb.Resource]int64{kb.ResSRAMMB: 2},
			Maturity:  "production",
		},
		{
			Name: "p4-firewall", Role: kb.RoleFirewall,
			Solves:       []kb.Property{PropPacketFilter, PropStatefulFW},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
			Resources:    map[kb.Resource]int64{kb.ResP4Stages: 4, kb.ResSRAMMB: 6},
			Maturity:     "research",
		},
		{
			Name: "edge-proxy-fw", Role: kb.RoleFirewall,
			Solves:          []kb.Property{PropStatefulFW, PropPacketFilter},
			RequiresContext: []kb.Condition{{Atom: CtxEdgeSite, Value: true}},
			Resources:       map[kb.Resource]int64{kb.ResCores: 8},
			Maturity:        "production",
			Notes:           map[string]string{"edge": "connection-terminating proxy colocated at edge sites (§1)"},
		},
	}
}

// VirtualSwitches returns the virtualization encodings.
func VirtualSwitches() []kb.System {
	return []kb.System{
		{
			Name: "ovs", Role: kb.RoleVirtualSwitch,
			Solves:    []kb.Property{PropNetVirt},
			Resources: map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:  "production",
		},
		{
			Name: "ovs-dpdk", Role: kb.RoleVirtualSwitch,
			Solves:        []kb.Property{PropNetVirt},
			RequiresCaps:  map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapDPDK}},
			Resources:     map[kb.Resource]int64{kb.ResCores: 4},
			ConflictsWith: []string{"ovs"},
			Maturity:      "production",
		},
		{
			Name: "andromeda", Role: kb.RoleVirtualSwitch,
			Solves:    []kb.Property{PropNetVirt},
			Resources: map[kb.Resource]int64{kb.ResCores: 4},
			Maturity:  "production",
			Notes:     map[string]string{"origin": "NSDI'18 cloud virtualization dataplane"},
		},
		{
			Name: "vfp", Role: kb.RoleVirtualSwitch,
			Solves:    []kb.Property{PropNetVirt},
			Resources: map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:  "production",
		},
		{
			Name: "accelnet-offload", Role: kb.RoleVirtualSwitch,
			Solves:       []kb.Property{PropNetVirt},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapSmartNICFPGA}},
			Maturity:     "production",
			Notes:        map[string]string{"offload": "hardware-offloaded virtualization (§2.3 option)"},
		},
		{
			Name: "sriov-passthrough", Role: kb.RoleVirtualSwitch,
			Solves:        []kb.Property{PropNetVirt},
			RequiresCaps:  map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapSRIOV}},
			ConflictsWith: []string{"ovs", "ovs-dpdk"},
			Maturity:      "production",
			Notes:         map[string]string{"caveat": "bypasses host policy; conflicts with host vswitch dataplanes"},
		},
	}
}

// LoadBalancers returns the load-balancing encodings.
func LoadBalancers() []kb.System {
	return []kb.System{
		{
			Name: "ecmp", Role: kb.RoleLoadBalancer,
			Solves:   []kb.Property{PropLoadBalancing},
			Maturity: "production",
			Notes:    map[string]string{"imbalance": "hash collisions cause load imbalance for few large flows (§2.3)"},
		},
		{
			Name: "wcmp", Role: kb.RoleLoadBalancer,
			Solves:   []kb.Property{PropLoadBalancing},
			Maturity: "production",
		},
		{
			Name: "packet-spraying", Role: kb.RoleLoadBalancer,
			Solves:       []kb.Property{PropLoadBalancing},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {CapLargeReorderBuf}},
			Maturity:     "research",
			Notes:        map[string]string{"reorder": "requires larger reorder buffers at NICs (§2.3)"},
		},
		{
			Name: "vlb", Role: kb.RoleLoadBalancer,
			Solves:   []kb.Property{PropLoadBalancing},
			Maturity: "production",
		},
		{
			Name: "conga", Role: kb.RoleLoadBalancer,
			Solves:       []kb.Property{PropLoadBalancing},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
			Resources:    map[kb.Resource]int64{kb.ResP4Stages: 5, kb.ResSRAMMB: 4},
			Maturity:     "research",
		},
		{
			Name: "hedera", Role: kb.RoleLoadBalancer,
			Solves:        []kb.Property{PropLoadBalancing},
			RequiresAnyOf: [][]string{{"everflow", "sonata", "int-collector"}},
			Resources:     map[kb.Resource]int64{kb.ResCores: 4},
			Maturity:      "research",
			Notes:         map[string]string{"dep": "centralized scheduler needs a flow-telemetry feed"},
		},
		{
			Name: "maglev", Role: kb.RoleLoadBalancer,
			Solves:    []kb.Property{PropL4LoadBalancing},
			Resources: map[kb.Resource]int64{kb.ResCores: 8},
			Maturity:  "production",
		},
		{
			Name: "ananta", Role: kb.RoleLoadBalancer,
			Solves:    []kb.Property{PropL4LoadBalancing},
			Resources: map[kb.Resource]int64{kb.ResCores: 6},
			Maturity:  "production",
		},
	}
}

// Transports returns the transport-protocol encodings.
func Transports() []kb.System {
	return []kb.System{
		{
			Name: "tcp", Role: kb.RoleTransport,
			Solves:   []kb.Property{PropReliableTransport},
			Maturity: "production",
		},
		{
			Name: "udp", Role: kb.RoleTransport,
			Solves:   []kb.Property{},
			Maturity: "production",
		},
		{
			Name: "quic", Role: kb.RoleTransport,
			Solves:    []kb.Property{PropReliableTransport},
			Resources: map[kb.Resource]int64{kb.ResCores: 2},
			Maturity:  "production",
		},
		{
			Name: "rdma-roce", Role: kb.RoleTransport,
			Solves:          []kb.Property{PropReliableTransport, PropLowLatTransport},
			RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapRDMA}, kb.KindSwitch: {kb.CapPFC}},
			RequiresContext: []kb.Condition{{Atom: CtxPFCOn, Value: true}},
			Maturity:        "production",
			Notes:           map[string]string{"pfc": "RoCEv2 needs a lossless PFC fabric [SIGCOMM'16]; see rule pfc_no_flooding"},
		},
		{
			Name: "rdma-iwarp", Role: kb.RoleTransport,
			Solves:       []kb.Property{PropReliableTransport, PropLowLatTransport},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapRDMA}},
			Maturity:     "production",
			Notes:        map[string]string{"lossless": "runs over lossy fabrics; no PFC requirement"},
		},
		{
			Name: "homa", Role: kb.RoleTransport,
			Solves:          []kb.Property{PropLowLatTransport},
			RequiresContext: []kb.Condition{{Atom: CtxDeadlineTight, Value: false}},
			Maturity:        "research",
		},
		{
			Name: "ndp", Role: kb.RoleTransport,
			Solves:       []kb.Property{PropLowLatTransport},
			RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {CapPacketTrimming}},
			Maturity:     "research",
			RequiresContext: []kb.Condition{
				{Atom: CtxDeadlineTight, Value: false},
			},
		},
	}
}

// Systems returns every system encoding in the catalog.
func Systems() []kb.System {
	var out []kb.System
	out = append(out, NetworkStacks()...)
	out = append(out, CongestionControls()...)
	out = append(out, MonitoringSystems()...)
	out = append(out, Firewalls()...)
	out = append(out, VirtualSwitches()...)
	out = append(out, LoadBalancers()...)
	out = append(out, Transports()...)
	return out
}

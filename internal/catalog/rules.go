package catalog

import "netarch/internal/kb"

// Rules returns the catalog's free-form predicate-logic facts — the
// nuances that don't fit the structured system fields. Each rule is the
// kind of fact the paper argues is "simple to check with predicate logic"
// (§3.4) yet easy for humans to forget.
func Rules() []kb.Rule {
	return []kb.Rule{
		{
			// The paper's canonical example (§3.4): an expert who had
			// anticipated the Microsoft incident would have encoded that
			// PFC cannot be used with any flooding algorithm.
			Name: "pfc_no_flooding",
			Expr: kb.Implies(kb.CtxAtom(CtxPFCOn), kb.Not(kb.CtxAtom(CtxFloodingOn))),
			Note: "PFC requires absence of cyclic buffer dependencies; flooding breaks up-down routing [Guo SIGCOMM'16]; validated by internal/topo",
		},
		{
			// §2.3: "Deploying Simon for monitoring latencies requires
			// SmartNICs". The structured field covers NIC timestamps;
			// the SmartNIC disjunction needs a rule.
			Name: "simon_needs_smartnic",
			Expr: kb.Implies(
				kb.SystemAtom("simon"),
				kb.Or(
					kb.CapAtom(kb.KindNIC, kb.CapSmartNICFPGA),
					kb.CapAtom(kb.KindNIC, kb.CapSmartNICCPU),
				)),
			Note: "Simon's per-packet timestamp processing runs on SmartNICs (§2.3)",
		},
		{
			Name: "pony_requires_app_modification",
			Expr: kb.Implies(kb.CtxAtom(CtxPonyEnabled), kb.CtxAtom(CtxAppModifiable)),
			Note: "using Pony requires application modification (§3.1)",
		},
		{
			Name: "pony_requires_snap",
			Expr: kb.Implies(kb.CtxAtom(CtxPonyEnabled), kb.SystemAtom("snap")),
			Note: "Pony Express is Snap's transport engine [SOSP'19]",
		},
		{
			Name: "tcp_mode_requires_tcp_transport",
			Expr: kb.Implies(kb.CtxAtom(CtxTCPEnabled), kb.SystemAtom("tcp")),
			Note: "running stacks in TCP mode presumes the TCP transport",
		},
		{
			Name: "lossless_fabric_needs_pfc",
			Expr: kb.Implies(kb.CtxAtom(CtxLosslessNeeded), kb.CtxAtom(CtxPFCOn)),
			Note: "lossless Ethernet is provided by PFC",
		},
		{
			// §2.3: QCN-capable switches lose performance when QCN is
			// used together with virtualization features.
			Name: "qcn_with_virtualization_penalty",
			Expr: kb.Implies(
				kb.And(kb.SystemAtom("annulus"), kb.CtxAtom(CtxVirtFeatures)),
				kb.CtxAtom("reduced_switch_perf")),
			Note: "switches supporting QCN offer lower performance when combined with virtualization features (§2.3)",
		},
		{
			Name: "vswitch_implies_virt_features",
			Expr: kb.Implies(
				kb.Or(
					kb.SystemAtom("ovs"), kb.SystemAtom("ovs-dpdk"),
					kb.SystemAtom("andromeda"), kb.SystemAtom("vfp"),
					kb.SystemAtom("accelnet-offload"),
				),
				kb.CtxAtom(CtxVirtFeatures)),
			Note: "any overlay dataplane exercises switch virtualization features",
		},
		{
			// The VMware double-encapsulation incident (§2.2): two overlay
			// layers encapsulating the same traffic corrupt checksums.
			Name: "no_double_encapsulation",
			Expr: kb.Not(kb.And(kb.SystemAtom("ovs"), kb.SystemAtom("andromeda"))),
			Note: "double encapsulation at different layers caused zero throughput via checksum errors [VMware Antrea 1.7 notes] (§2.2)",
		},
		{
			// Common-sense rule (§3.4): servers must run some network
			// stack for any transport to exist.
			Name: "transport_needs_stack",
			Expr: kb.Implies(
				kb.Or(kb.SystemAtom("tcp"), kb.SystemAtom("quic"), kb.SystemAtom("homa")),
				kb.Or(
					kb.SystemAtom("linux"), kb.SystemAtom("snap"),
					kb.SystemAtom("netchannel"), kb.SystemAtom("shenango"),
					kb.SystemAtom("zygos"), kb.SystemAtom("demikernel"),
					kb.SystemAtom("ix"), kb.SystemAtom("mtcp"), kb.SystemAtom("caladan"),
				)),
			Note: "common-sense rule: a transport runs on some host network stack (§3.4)",
		},
		{
			Name: "cubic_fills_buffers",
			Expr: kb.Implies(kb.SystemAtom("cubic"), kb.Not(kb.CtxAtom(CtxScavenger))),
			Note: "a buffer-filling CCA in the fabric denies the scavenger assumption delay-based CCAs need (§2.2)",
		},
		{
			Name: "edge_fw_colocation_bonus",
			Expr: kb.Implies(
				kb.SystemAtom("edge-proxy-fw"),
				kb.CtxAtom(CtxEdgeSite)),
			Note: "deploying a load balancer at an edge site eases colocated firewalls since resources are provisioned (§1)",
		},
	}
}

package catalog

import (
	"fmt"

	"netarch/internal/kb"
)

// Parameterized catalog scale-out (ROADMAP "catalog and scenario
// scale-out"): the seed generators enumerate vendor families × speed
// grades × port counts (~200 SKUs); ScaledHardware multiplies that
// matrix along a fourth axis — firmware variants — to reach 5k/20k/50k
// SKUs. Firmware revisions are how real catalogs actually balloon: the
// silicon is identical, the cost/power/feature envelope drifts a little
// per revision, and the occasional revision unlocks a capability
// (telemetry firmware enabling INT, offload firmware enabling DPDK).
// The generator is fully deterministic (a fixed multiplicative hash of
// the base SKU name seeds every perturbation), so two processes built
// from the same target size agree byte-for-byte — which the compiled
// base disk cache and the scale differential both rely on.
//
// The shape of the output is deliberately dominance-heavy: most
// firmware revisions only make a SKU strictly worse (more power, more
// cost, same capabilities), mirroring the long tail of a vendor price
// list. That is the regime the core slicer's dominance pruning is built
// for, while the periodic capability or capacity upgrades guarantee the
// pruned frontier still has meaningful diversity.

// scaleSeed is a cheap deterministic string hash (FNV-1a, 64-bit) used
// to seed per-SKU perturbations. Not crypto — just stable spread.
func scaleSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// cloneHardware deep-copies one SKU so variants never alias the base
// maps.
func cloneHardware(h kb.Hardware) kb.Hardware {
	v := h
	v.Caps = append([]kb.Capability(nil), h.Caps...)
	v.Quant = make(map[kb.Resource]int64, len(h.Quant))
	for k, q := range h.Quant {
		v.Quant[k] = q
	}
	if h.Attrs != nil {
		v.Attrs = make(map[string]string, len(h.Attrs))
		for k, a := range h.Attrs {
			v.Attrs[k] = a
		}
	}
	return v
}

// hasCap reports whether the variant already carries cap.
func hasCap(h *kb.Hardware, cap kb.Capability) bool {
	for _, c := range h.Caps {
		if c == cap {
			return true
		}
	}
	return false
}

// firmwareVariant derives revision rev of a base SKU. Revisions drift
// cost and power upward by a small seed-dependent amount; every 7th
// (seed-offset) revision instead improves a capacity, and every 11th
// unlocks a kind-appropriate capability, so later firmware is not
// uniformly dominated.
func firmwareVariant(base kb.Hardware, rev int) kb.Hardware {
	v := cloneHardware(base)
	v.Name = fmt.Sprintf("%s fw%d", base.Name, rev)
	seed := scaleSeed(v.Name)
	v.CostUSD += int64(seed%13) * 15
	v.Quant[kb.ResPowerW] += int64(seed % 9)
	if v.Attrs == nil {
		v.Attrs = map[string]string{}
	}
	v.Attrs["firmware"] = fmt.Sprintf("rev%d", rev)
	switch (seed + uint64(rev)) % 11 {
	case 3: // capacity upgrade: strictly better on one axis
		switch base.Kind {
		case kb.KindSwitch:
			v.Quant[kb.ResBufferMB] += 16
		case kb.KindNIC:
			v.Quant[kb.ResBandwidthGbps] += 25
		case kb.KindServer:
			v.Quant[kb.ResMemoryGB] += 128
		}
	case 7: // feature unlock: new capability (new dominance group)
		switch base.Kind {
		case kb.KindSwitch:
			if !hasCap(&v, kb.CapINT) {
				v.Caps = append(v.Caps, kb.CapINT)
				v.CostUSD += 900
			}
		case kb.KindNIC:
			if !hasCap(&v, kb.CapDPDK) {
				v.Caps = append(v.Caps, kb.CapDPDK)
				v.CostUSD += 120
			}
		case kb.KindServer:
			if !hasCap(&v, kb.CapCXL) {
				v.Caps = append(v.Caps, kb.CapCXL)
				v.CostUSD += 600
			}
		}
	}
	return v
}

// ScaledHardware grows the seed catalog to at least total SKUs by
// stamping firmware revisions over every base SKU in round-robin order
// (rev 1 of everything, then rev 2, ...), preserving the seed catalog
// as an exact prefix. Deterministic: same total, same bytes.
func ScaledHardware(total int) []kb.Hardware {
	base := Hardware()
	out := make([]kb.Hardware, 0, total)
	out = append(out, base...)
	for rev := 1; len(out) < total; rev++ {
		for _, h := range base {
			if len(out) >= total {
				break
			}
			out = append(out, firmwareVariant(h, rev))
		}
	}
	return out
}

// ScaledWorkloads derives ~24 workload profiles from the three
// hand-written case-study workloads by sweeping deployment scale and
// need mixes — the "dozens of workload profiles" axis of the scale-out.
// Profiles are deterministic and named wl_<seed>_<i>.
func ScaledWorkloads() []kb.Workload {
	seeds := []kb.Workload{
		InferenceWorkload(),
		BatchAnalyticsWorkload(),
		StorageWorkload(),
	}
	extraNeeds := [][]kb.Property{
		nil,
		{PropFlowTelemetry},
		{PropTailLatency},
		{PropBwAllocation, PropQueueLengths},
		{PropLowLatTransport},
		{PropLoadBalancing, PropFlowTelemetry},
		{PropReliableTransport},
	}
	out := make([]kb.Workload, 0, len(seeds)*(len(extraNeeds)+1))
	out = append(out, seeds...)
	for si, s := range seeds {
		for vi, extra := range extraNeeds {
			scale := int64(1 + (si+vi)%3)
			w := kb.Workload{
				Name:              fmt.Sprintf("wl_%s_%d", s.Name, vi),
				Properties:        append([]string(nil), s.Properties...),
				DeployedAt:        append([]string(nil), s.DeployedAt...),
				PeakCores:         s.PeakCores * scale / 2,
				PeakMemoryGB:      s.PeakMemoryGB * scale / 2,
				PeakBandwidthGbps: s.PeakBandwidthGbps,
				KFlows:            s.KFlows * scale,
				Needs:             append([]kb.Property(nil), s.Needs...),
			}
			for _, p := range extra {
				dup := false
				for _, have := range w.Needs {
					if have == p {
						dup = true
					}
				}
				if !dup {
					w.Needs = append(w.Needs, p)
				}
			}
			out = append(out, w)
		}
	}
	return out
}

// ScaledCatalog is the full scale-out knowledge base: the seed systems,
// rules and orders over a firmware-scaled hardware matrix of at least
// total SKUs, with the ~24 derived workload profiles attached. This is
// the corpus the scale differential and the 5k/20k/50k benchmark tiers
// run against.
func ScaledCatalog(total int) *kb.KB {
	k := Default()
	k.Hardware = ScaledHardware(total)
	k.Workloads = ScaledWorkloads()
	return k
}

package catalog

import (
	"bytes"
	"testing"

	"netarch/internal/kb"
	"netarch/internal/logic"
	"netarch/internal/order"
)

func TestDefaultValidates(t *testing.T) {
	k := Default()
	if err := k.Validate(); err != nil {
		t.Fatalf("catalog must validate: %v", err)
	}
}

func TestCatalogScaleMatchesPaper(t *testing.T) {
	k := Default()
	st := k.ComputeStats()
	// §5.1: "over fifty systems, spread across Network Stacks, Congestion
	// Control, Network Monitoring, Firewalls, Virtual Switches, Load
	// Balancers, and Transport Protocols".
	if st.Systems <= 50 {
		t.Errorf("paper claims >50 systems; catalog has %d", st.Systems)
	}
	for _, role := range kb.Roles() {
		if n := len(k.SystemsByRole(role)); n == 0 {
			t.Errorf("role %s has no systems", role)
		}
	}
	// §5.1: "about 200 hardware specs".
	if st.Hardware < 150 || st.Hardware > 260 {
		t.Errorf("paper claims ~200 hardware specs; catalog has %d", st.Hardware)
	}
	kinds := map[kb.HardwareKind]int{}
	for i := range k.Hardware {
		kinds[k.Hardware[i].Kind]++
	}
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		if kinds[kind] == 0 {
			t.Errorf("no hardware of kind %s", kind)
		}
	}
}

func TestHardwareNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, h := range Hardware() {
		if seen[h.Name] {
			t.Errorf("duplicate hardware name %q", h.Name)
		}
		seen[h.Name] = true
	}
}

func TestListing1Encoding(t *testing.T) {
	h := CiscoCatalyst9500()
	// The fields shown in Listing 1.
	if h.Attrs["Model Name"] != "Cisco Catalyst 9500-40X" ||
		h.Attrs["Port Bandwidth"] != "10 Gbps" ||
		h.Attrs["Max Power Consumption"] != "950W" ||
		h.Attrs["Memory"] != "16 GB" ||
		h.Attrs["P4 Supported?"] != "No" ||
		h.Attrs["ECN supported?"] != "Yes" ||
		h.Attrs["MAC Address Table Size"] != "64,000 entries" {
		t.Errorf("Listing 1 fields wrong: %+v", h.Attrs)
	}
	if !h.HasCap(kb.CapECN) || h.HasCap(kb.CapP4) {
		t.Error("capability derivation wrong")
	}
	if h.Q(kb.ResPowerW) != 950 || h.Q(kb.ResMACEntries) != 64000 {
		t.Error("quantity derivation wrong")
	}
}

// resolveOrder compiles a serialized OrderSpec into an order.Graph and
// resolves it under the given context atoms.
func resolveOrder(t *testing.T, spec kb.OrderSpec, ctxAtoms map[string]bool) *order.Resolved {
	t.Helper()
	vo := logic.NewVocabulary()
	g := order.New(spec.Dimension)
	compileGuard := func(e *kb.Expr) logic.Formula {
		if e == nil {
			return logic.True
		}
		f, err := e.Compile(vo.Get)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, e := range spec.Edges {
		if err := g.AddEdge(e.Better, e.Worse, compileGuard(e.Guard), e.Note); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range spec.Equals {
		if err := g.AddEqual(e.A, e.B, compileGuard(e.Guard), e.Note); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range Fig1Stacks() {
		if spec.Dimension == "throughput" || spec.Dimension == "isolation" || spec.Dimension == "app_modification" {
			g.AddNode(s)
		}
	}
	ctx := order.Context{}
	for name, v := range ctxAtoms {
		ctx[vo.Get("ctx:"+name)] = v
	}
	r, err := g.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFig1ThroughputLowRate(t *testing.T) {
	r := resolveOrder(t, Fig1Throughput(), map[string]bool{CtxLoadGE40G: false})
	if !r.Better("linux", "netchannel") {
		t.Error("below 40G, Linux must beat NetChannel")
	}
	if r.Better("netchannel", "linux") || r.Better("zygos", "linux") {
		t.Error("high-rate edges must be inactive below 40G")
	}
}

func TestFig1ThroughputHighRateWithPony(t *testing.T) {
	r := resolveOrder(t, Fig1Throughput(), map[string]bool{
		CtxLoadGE40G: true, CtxPonyEnabled: true,
	})
	for _, c := range [][2]string{
		{"netchannel", "linux"}, {"snap", "linux"},
		{"zygos", "linux"}, {"demikernel", "linux"},
	} {
		if !r.Better(c[0], c[1]) {
			t.Errorf("at ≥40G with Pony, %s must beat %s", c[0], c[1])
		}
	}
}

func TestFig1SnapTCPEquivalence(t *testing.T) {
	r := resolveOrder(t, Fig1Throughput(), map[string]bool{CtxTCPEnabled: true})
	if !r.Equal("snap", "linux") {
		t.Error("Snap over TCP must be equal to Linux (dashed line)")
	}
}

func TestFig1IsolationGap(t *testing.T) {
	// The paper explicitly notes: "there is no arrow between Shenango and
	// Demikernel comparing their isolation properties because we couldn't
	// find a comparison in the literature." The encoding must preserve
	// the incomparability.
	r := resolveOrder(t, Fig1Isolation(), nil)
	if r.Comparable("shenango", "demikernel") {
		t.Error("Shenango and Demikernel must be incomparable on isolation")
	}
	if !r.Better("linux", "shenango") {
		t.Error("Linux must beat Shenango on isolation")
	}
}

func TestFig1AppModification(t *testing.T) {
	r := resolveOrder(t, Fig1AppModification(), map[string]bool{CtxPonyEnabled: true})
	if !r.Better("linux", "snap") {
		t.Error("with Pony, Linux must beat Snap on app modification")
	}
	r2 := resolveOrder(t, Fig1AppModification(), nil)
	if r2.Better("linux", "snap") {
		t.Error("without Pony, no Linux>Snap app-mod edge")
	}
	if !r2.Better("linux", "demikernel") {
		t.Error("Linux must always beat Demikernel on app modification")
	}
}

func TestAllOrdersResolveAcyclic(t *testing.T) {
	// Every catalog order must resolve without preference cycles under
	// all extreme contexts (all atoms false / all true).
	for _, spec := range Orders() {
		for _, setting := range []bool{false, true} {
			vo := logic.NewVocabulary()
			g := order.New(spec.Dimension)
			for _, e := range spec.Edges {
				f := logic.True
				if e.Guard != nil {
					var err error
					f, err = e.Guard.Compile(vo.Get)
					if err != nil {
						t.Fatal(err)
					}
				}
				if err := g.AddEdge(e.Better, e.Worse, f, e.Note); err != nil {
					t.Fatal(err)
				}
			}
			for _, e := range spec.Equals {
				f := logic.True
				if e.Guard != nil {
					var err error
					f, err = e.Guard.Compile(vo.Get)
					if err != nil {
						t.Fatal(err)
					}
				}
				if err := g.AddEqual(e.A, e.B, f, e.Note); err != nil {
					t.Fatal(err)
				}
			}
			ctx := order.Context{}
			if setting {
				for i := 1; i <= vo.Len(); i++ {
					ctx[logic.Var(i)] = true
				}
			}
			// Guards CtxLoadGE40G both-true activates netchannel>linux;
			// with !CtxLoadGE40G guard also... all-true sets load_ge_40
			// true so lt40 guard is false: no conflict. All-false: only
			// lt40 edge. Either way must be acyclic.
			if _, err := g.Resolve(ctx); err != nil {
				t.Errorf("order %s (ctx=%v): %v", spec.Dimension, setting, err)
			}
		}
	}
}

func TestCaseStudyKB(t *testing.T) {
	k := CaseStudy()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	w := k.WorkloadByName("inference_app")
	if w == nil {
		t.Fatal("inference workload missing")
	}
	if w.PeakCores != 2800 || w.PeakBandwidthGbps != 30 {
		t.Error("Listing 3 quantities wrong")
	}
	if len(w.DeployedAt) != 4 {
		t.Error("Listing 3 places the app on racks[0:3] (4 racks, python slice style in paper is 3 — we use the listing's racks[0:3] inclusive reading of 4 racks? no: match DeployedAt)")
	}
}

func TestRulesReferenceKnownSystems(t *testing.T) {
	// Validate() checks this, but assert the key rules exist by name.
	k := Default()
	want := map[string]bool{
		"pfc_no_flooding":         false,
		"simon_needs_smartnic":    false,
		"no_double_encapsulation": false,
	}
	for _, r := range k.Rules {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("rule %q missing", name)
		}
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	k := Default()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := kb.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.Systems) != len(k.Systems) || len(k2.Hardware) != len(k.Hardware) ||
		len(k2.Rules) != len(k.Rules) || len(k2.Orders) != len(k.Orders) {
		t.Error("catalog JSON roundtrip lost entries")
	}
}

func TestSpecSizeLinearity(t *testing.T) {
	// §3.1 success metric: spec size must grow linearly in entry count.
	// Fit size = a*n + b over prefixes of the catalog and check residuals.
	k := Default()
	type pt struct{ n, size int }
	var pts []pt
	for frac := 1; frac <= 4; frac++ {
		sub := &kb.KB{
			Systems:  k.Systems[:len(k.Systems)*frac/4],
			Hardware: k.Hardware[:len(k.Hardware)*frac/4],
		}
		st := sub.ComputeStats()
		pts = append(pts, pt{st.Systems + st.Hardware, st.SpecSize})
	}
	// Linear growth: size per entry must be within a tight band across
	// prefixes (generators produce homogeneous entries).
	first := float64(pts[0].size) / float64(pts[0].n)
	last := float64(pts[3].size) / float64(pts[3].n)
	ratio := last / first
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("spec size per entry drifts superlinearly: %.2f -> %.2f", first, last)
	}
}

package logic

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestConvertShardsDeltaIdentity pins the delta-compilation contract: for
// any edit of the assertion list — add, remove, edit, reorder, or a mix —
// and any worker count, converting with the previous ShardSet yields a
// CNF byte-identical to a cold ConvertShards over the new list.
func TestConvertShardsDeltaIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	mutate := func(fs []Formula, base int) []Formula {
		out := append([]Formula(nil), fs...)
		switch r.Intn(4) {
		case 0: // add
			i := r.Intn(len(out) + 1)
			out = append(out[:i:i], append([]Formula{randFormula(r, base, 20)}, out[i:]...)...)
		case 1: // remove
			if len(out) > 1 {
				i := r.Intn(len(out))
				out = append(out[:i:i], out[i+1:]...)
			}
		case 2: // edit
			out[r.Intn(len(out))] = randFormula(r, base, 20)
		default: // reorder
			r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		}
		return out
	}
	for iter := 0; iter < 60; iter++ {
		const base = 6
		fs := make([]Formula, 0, 10)
		for j := 0; j < 10; j++ {
			fs = append(fs, randFormula(r, base, 20))
		}
		_, prev := ConvertShardsDelta(base, fs, nil, 2)
		if prev.Converted != len(fs) || prev.Reused != 0 {
			t.Fatalf("iter %d: cold conversion stats = %d reused / %d converted, want 0/%d",
				iter, prev.Reused, prev.Converted, len(fs))
		}
		for hop := 0; hop < 3; hop++ {
			fs = mutate(fs, base)
			want := ConvertShards(base, fs, 1)
			var next *ShardSet
			for _, w := range []int{1, 2, 8} {
				got, set := ConvertShardsDelta(base, fs, prev, w)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("iter %d hop %d: workers=%d delta CNF diverges from cold convert",
						iter, hop, w)
				}
				if set.Reused+set.Converted != len(fs) {
					t.Fatalf("iter %d hop %d: stats %d+%d != %d shards",
						iter, hop, set.Reused, set.Converted, len(fs))
				}
				next = set
			}
			prev = next
		}
	}
}

// TestConvertShardsDeltaSingleEdit checks the reuse accounting a live KB
// edit relies on: changing one assertion out of n reconverts exactly one
// shard.
func TestConvertShardsDeltaSingleEdit(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	const base = 6
	fs := make([]Formula, 12)
	for j := range fs {
		fs[j] = randFormula(r, base, 25)
	}
	_, prev := ConvertShardsDelta(base, fs, nil, 4)
	edited := append([]Formula(nil), fs...)
	for {
		f := randFormula(r, base, 25)
		fresh := true
		for _, old := range fs {
			if reflect.DeepEqual(f, old) {
				fresh = false
				break
			}
		}
		if fresh {
			edited[7] = f
			break
		}
	}
	got, set := ConvertShardsDelta(base, edited, prev, 4)
	if set.Reused != len(fs)-1 || set.Converted != 1 {
		t.Fatalf("single edit: %d reused / %d converted, want %d/1",
			set.Reused, set.Converted, len(fs)-1)
	}
	if want := ConvertShards(base, edited, 1); !reflect.DeepEqual(want, got) {
		t.Fatal("single-edit delta CNF diverges from cold convert")
	}
}

// TestConvertShardsDeltaRebase checks reuse across a vocabulary resize:
// shards converted at one base splice byte-identically into a compile at
// a larger or smaller base, as long as the formulas themselves are
// unchanged (the structural hash guarantees the atoms still fit).
func TestConvertShardsDeltaRebase(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const lowBase = 4
	fs := make([]Formula, 8)
	for j := range fs {
		fs[j] = randFormula(r, lowBase, 20) // atoms ≤ 4 fit every base below
	}
	_, prev := ConvertShardsDelta(7, fs, nil, 2)
	for _, newBase := range []int{4, 7, 9} {
		got, set := ConvertShardsDelta(newBase, fs, prev, 2)
		if set.Reused != len(fs) {
			t.Fatalf("base %d: reused %d of %d shards", newBase, set.Reused, len(fs))
		}
		if want := ConvertShards(newBase, fs, 1); !reflect.DeepEqual(want, got) {
			t.Fatalf("base %d: rebased delta CNF diverges from cold convert", newBase)
		}
	}
}

// TestShardSetLen covers the nil-safe length accessor.
func TestShardSetLen(t *testing.T) {
	var nilSet *ShardSet
	if nilSet.Len() != 0 {
		t.Fatal("nil ShardSet should have length 0")
	}
	_, set := ConvertShardsDelta(3, []Formula{V(1), V(2)}, nil, 1)
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
}

package logic

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// ShardKey is the structural content hash of one assertion formula. Two
// formulas share a key exactly when they are structurally identical,
// including variable indices — any vocabulary renumbering therefore
// changes the key and forces a reconversion, which is what makes reuse
// across compiles sound (see ConvertShardsDelta).
type ShardKey [sha256.Size]byte

// shard is the conversion result of a single assertion: the clause buffer
// produced by a private Tseitin converter whose auxiliary variables are
// numbered locally from base+1. Once built, a shard is immutable — the
// merge step copies literals out rather than shifting them in place, so
// the same shard can be spliced into any number of later compiles.
type shard struct {
	key     ShardKey
	base    int // vocabulary size the shard was converted at
	clauses []Clause
	numAux  int
}

// ShardSet records the per-assertion conversion results of one
// ConvertShardsDelta call so the next call over an edited assertion list
// can reuse the unchanged shards. The set is immutable after creation
// and safe to share across goroutines.
type ShardSet struct {
	shards []shard

	// Reused and Converted report how the producing call sourced its
	// shards: cache hits against the previous set vs fresh Tseitin runs.
	Reused    int
	Converted int
}

// Len returns the number of assertion shards in the set.
func (s *ShardSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.shards)
}

// hashFormula serializes f structurally (kind byte; variable index for
// KindVar; arg count then args for connectives — a prefix code, so the
// encoding is injective) into buf and returns its SHA-256 together with
// the grown buffer for reuse.
func hashFormula(f Formula, buf []byte) (ShardKey, []byte) {
	buf = appendFormula(buf[:0], f)
	return sha256.Sum256(buf), buf
}

func appendFormula(buf []byte, f Formula) []byte {
	buf = append(buf, byte(f.kind))
	switch f.kind {
	case KindVar:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.v))
	case KindNot, KindAnd, KindOr:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.args)))
		for _, a := range f.args {
			buf = appendFormula(buf, a)
		}
	}
	return buf
}

// ConvertShards converts a sequence of assertions to one CNF by converting
// each assertion independently — possibly on a pool of workers — and
// merging the per-assertion clause buffers deterministically.
//
// Every variable occurring in fs must be ≤ base (the caller's vocabulary
// size when the assertion list was finished). Each assertion is converted
// by a private shard converter whose auxiliary variables are numbered from
// a local counter starting at base+1, with a per-shard Tseitin cache; the
// merge then rewrites assertion i's local aux variables to
// base + offset(i) + k, where offset(i) is the total aux count of
// assertions 0..i-1, and concatenates the clause buffers in assertion
// order.
//
// Because shard i's clauses are a pure function of (base, fs[i]) and the
// merge is a pure function of the shard sequence, the result is
// byte-identical for every worker count — workers trade CPU for latency,
// nothing else. The price relative to one shared converter is the loss of
// cross-assertion subformula caching: a subformula repeated across
// assertions gets one definition per assertion instead of one overall.
// (Within an assertion the cache still deduplicates.)
//
// The returned CNF has NumVars = base + total aux count, so callers can
// pad their vocabulary to cover the auxiliary block.
func ConvertShards(base int, fs []Formula, workers int) *CNF {
	cnf, _ := ConvertShardsDelta(base, fs, nil, workers)
	return cnf
}

// ConvertShardsDelta is ConvertShards with shard-level reuse: assertions
// whose content hash matches a shard in prev (the ShardSet returned by an
// earlier call) skip Tseitin conversion entirely and splice the cached
// clause buffer instead. Pass prev == nil for a cold conversion.
//
// The output is byte-identical to ConvertShards(base, fs, …) regardless
// of prev, the worker count, or how the assertion list was edited
// (additions, removals, edits, reorders). The argument: a shard's clause
// buffer is a pure function of (shardBase, formula) — Tseitin allocates
// aux variables and emits clauses in a deterministic structural order —
// so a cached shard converted at shardBase equals the fresh shard at the
// current base with every aux variable v > shardBase renamed to
// base + (v − shardBase). The merge applies exactly that renaming (plus
// the usual prefix-sum offset) while copying literals into a fresh
// buffer, so cached and fresh shards are indistinguishable downstream.
// Reuse is keyed on the structural hash including variable indices:
// a hash match implies the cached formula is identical to the one the
// caller just built against the *current* vocabulary, whose atoms are
// therefore all ≤ base — the shard contract holds even when the
// vocabulary shrank since the shard was converted.
//
// The returned ShardSet snapshots this call's shards (reused ones share
// clause buffers with prev; both sets stay valid) for the next delta.
func ConvertShardsDelta(base int, fs []Formula, prev *ShardSet, workers int) (*CNF, *ShardSet) {
	shards := make([]shard, len(fs))

	var prevByKey map[ShardKey]*shard
	if prev != nil && len(prev.shards) > 0 {
		prevByKey = make(map[ShardKey]*shard, len(prev.shards))
		for i := range prev.shards {
			prevByKey[prev.shards[i].key] = &prev.shards[i]
		}
	}

	var reused, converted atomic.Int64
	convert := func(i int, buf []byte) []byte {
		var key ShardKey
		key, buf = hashFormula(fs[i], buf)
		if old, ok := prevByKey[key]; ok {
			shards[i] = *old
			reused.Add(1)
			return buf
		}
		next := Var(base)
		cv := &Converter{
			CNF:   &CNF{NumVars: base},
			cache: make(map[string]Lit),
			fresh: func() Var { next++; return next },
		}
		cv.Assert(fs[i])
		shards[i] = shard{key: key, base: base, clauses: cv.CNF.Clauses, numAux: int(next) - base}
		converted.Add(1)
		return buf
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		var buf []byte
		for i := range fs {
			buf = convert(i, buf)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var buf []byte
				for {
					i := int(next.Add(1)) - 1
					if i >= len(fs) {
						return
					}
					buf = convert(i, buf)
				}
			}()
		}
		wg.Wait()
	}

	nClauses, nLits := 0, 0
	for i := range shards {
		nClauses += len(shards[i].clauses)
		for _, cl := range shards[i].clauses {
			nLits += len(cl)
		}
	}
	out := &CNF{Clauses: make([]Clause, 0, nClauses)}
	slab := make([]Lit, 0, nLits)
	off := 0
	for i := range shards {
		sh := &shards[i]
		// Rename this shard's local aux variables (> sh.base) into the
		// merged numbering: past the current base and the aux blocks of
		// every earlier shard. Named atoms (≤ sh.base) are global and
		// pass through unchanged. Literals are copied into a fresh slab —
		// shard buffers are immutable so they can be reused next delta.
		delta := base + off - sh.base
		for _, cl := range sh.clauses {
			start := len(slab)
			for _, l := range cl {
				if int(l.Var()) > sh.base {
					s := Lit(int(l.Var()) + delta)
					if l < 0 {
						s = -s
					}
					slab = append(slab, s)
				} else {
					slab = append(slab, l)
				}
			}
			out.Clauses = append(out.Clauses, slab[start:len(slab):len(slab)])
		}
		off += sh.numAux
	}
	out.NumVars = base + off
	return out, &ShardSet{shards: shards, Reused: int(reused.Load()), Converted: int(converted.Load())}
}

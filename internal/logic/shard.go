package logic

import (
	"sync"
	"sync/atomic"
)

// ConvertShards converts a sequence of assertions to one CNF by converting
// each assertion independently — possibly on a pool of workers — and
// merging the per-assertion clause buffers deterministically.
//
// Every variable occurring in fs must be ≤ base (the caller's vocabulary
// size when the assertion list was finished). Each assertion is converted
// by a private shard converter whose auxiliary variables are numbered from
// a local counter starting at base+1, with a per-shard Tseitin cache; the
// merge then rewrites assertion i's local aux variables to
// base + offset(i) + k, where offset(i) is the total aux count of
// assertions 0..i-1, and concatenates the clause buffers in assertion
// order.
//
// Because shard i's clauses are a pure function of (base, fs[i]) and the
// merge is a pure function of the shard sequence, the result is
// byte-identical for every worker count — workers trade CPU for latency,
// nothing else. The price relative to one shared converter is the loss of
// cross-assertion subformula caching: a subformula repeated across
// assertions gets one definition per assertion instead of one overall.
// (Within an assertion the cache still deduplicates.)
//
// The returned CNF has NumVars = base + total aux count, so callers can
// pad their vocabulary to cover the auxiliary block.
func ConvertShards(base int, fs []Formula, workers int) *CNF {
	type shard struct {
		clauses []Clause
		numAux  int
	}
	shards := make([]shard, len(fs))
	convert := func(i int) {
		next := Var(base)
		cv := &Converter{
			CNF:   &CNF{NumVars: base},
			cache: make(map[string]Lit),
			fresh: func() Var { next++; return next },
		}
		cv.Assert(fs[i])
		shards[i] = shard{clauses: cv.CNF.Clauses, numAux: int(next) - base}
	}
	if workers > len(fs) {
		workers = len(fs)
	}
	if workers <= 1 {
		for i := range fs {
			convert(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(fs) {
						return
					}
					convert(i)
				}
			}()
		}
		wg.Wait()
	}

	nClauses := 0
	for i := range shards {
		nClauses += len(shards[i].clauses)
	}
	out := &CNF{Clauses: make([]Clause, 0, nClauses)}
	off := 0
	for i := range shards {
		// Shift this shard's local aux variables (> base) past the aux
		// blocks of every earlier shard; named atoms (≤ base) are global
		// and pass through unchanged.
		for _, cl := range shards[i].clauses {
			for j, l := range cl {
				if int(l.Var()) > base {
					shifted := Lit(int(l.Var()) + off)
					if l < 0 {
						shifted = -shifted
					}
					cl[j] = shifted
				}
			}
			out.Clauses = append(out.Clauses, cl)
		}
		off += shards[i].numAux
	}
	out.NumVars = base + off
	return out
}

package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a CNF literal: a variable with a sign. Positive literals are the
// variable itself; negative literals are its negation. The integer value is
// +int(v) or -int(v); 0 is invalid.
type Lit int32

// MkLit builds a literal from a variable and a sign (neg == true means ¬v).
func MkLit(v Var, neg bool) Lit {
	if neg {
		return -Lit(v)
	}
	return Lit(v)
}

// Var returns the literal's variable.
func (l Lit) Var() Var {
	if l < 0 {
		return Var(-l)
	}
	return Var(l)
}

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l < 0 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause { return append(Clause(nil), c...) }

// String renders the clause as "(l1 | l2 | ...)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		if l < 0 {
			parts[i] = fmt.Sprintf("!x%d", -l)
		} else {
			parts[i] = fmt.Sprintf("x%d", l)
		}
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// AddClause appends a clause (copying the literals).
func (c *CNF) AddClause(lits ...Lit) {
	cl := make(Clause, len(lits))
	copy(cl, lits)
	for _, l := range lits {
		if int(l.Var()) > c.NumVars {
			c.NumVars = int(l.Var())
		}
	}
	c.Clauses = append(c.Clauses, cl)
}

// Eval evaluates the CNF under the assignment (vars absent are false).
func (c *CNF) Eval(assign map[Var]bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if assign[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the CNF as a conjunction of clauses.
func (c *CNF) String() string {
	parts := make([]string, len(c.Clauses))
	for i, cl := range c.Clauses {
		parts[i] = cl.String()
	}
	return strings.Join(parts, " & ")
}

// Converter turns formulas into CNF via the Tseitin transformation with
// Plaisted–Greenbaum polarity optimization: definitional clauses are only
// emitted for the polarities in which a subformula actually occurs.
// Auxiliary variables are allocated from the supplied Vocabulary so that
// they never collide with knowledge-base atoms.
type Converter struct {
	Vocab *Vocabulary
	CNF   *CNF

	// cache maps structurally-identified subformulas to their definition
	// literal, keyed by a canonical string. Caching is best-effort: it
	// trades a little hashing for avoiding duplicate aux variables when
	// the same rule body is asserted repeatedly (common for generated
	// knowledge bases).
	cache map[string]Lit

	// fresh, when non-nil, replaces Vocab.Fresh("") as the auxiliary-
	// variable allocator. Shard converters (ConvertShards) use it to
	// number aux variables from a local counter so each assertion can be
	// converted independently of every other.
	fresh func() Var
}

// freshAux allocates one auxiliary variable.
func (cv *Converter) freshAux() Var {
	if cv.fresh != nil {
		return cv.fresh()
	}
	return cv.Vocab.Fresh("")
}

// NewConverter returns a Converter emitting into a fresh CNF.
func NewConverter(vocab *Vocabulary) *Converter {
	return &Converter{
		Vocab: vocab,
		CNF:   &CNF{NumVars: vocab.Len()},
		cache: make(map[string]Lit),
	}
}

// Assert adds clauses equivalent (equisatisfiable) to f to the CNF.
// Asserting False adds the empty clause.
func (cv *Converter) Assert(f Formula) {
	f = Simplify(f)
	switch f.kind {
	case KindTrue:
		return
	case KindFalse:
		cv.CNF.AddClause() // empty clause: unsatisfiable
		return
	case KindAnd:
		for _, a := range f.args {
			cv.Assert(a)
		}
		return
	}
	// Top-level disjunctions become a single clause over definition
	// literals, avoiding one aux var per assertion.
	if f.kind == KindOr {
		clause := make(Clause, 0, len(f.args))
		for _, a := range f.args {
			clause = append(clause, cv.lit(a))
		}
		cv.CNF.AddClause(clause...)
		return
	}
	cv.CNF.AddClause(cv.lit(f))
}

// AssertClause adds a raw clause.
func (cv *Converter) AssertClause(lits ...Lit) { cv.CNF.AddClause(lits...) }

// lit returns a literal l such that l → f holds in every model of the CNF
// (Plaisted–Greenbaum, positive polarity context, which is sound for
// assertions).
func (cv *Converter) lit(f Formula) Lit {
	switch f.kind {
	case KindVar:
		return Lit(f.v)
	case KindNot:
		return cv.negLit(f.args[0])
	case KindTrue, KindFalse:
		// Handled by Simplify in Assert; still be defensive.
		v := cv.freshAux()
		cv.growTo(v)
		if f.kind == KindTrue {
			cv.CNF.AddClause(Lit(v))
		} else {
			cv.CNF.AddClause(-Lit(v))
		}
		return Lit(v)
	}
	key := f.String()
	if l, ok := cv.cache[key]; ok {
		return l
	}
	v := cv.freshAux()
	cv.growTo(v)
	d := Lit(v)
	switch f.kind {
	case KindAnd:
		// d → (a1 ∧ … ∧ an): clauses (¬d ∨ ai)
		for _, a := range f.args {
			cv.CNF.AddClause(-d, cv.lit(a))
		}
	case KindOr:
		// d → (a1 ∨ … ∨ an): clause (¬d ∨ a1 ∨ … ∨ an)
		clause := make(Clause, 0, len(f.args)+1)
		clause = append(clause, -d)
		for _, a := range f.args {
			clause = append(clause, cv.lit(a))
		}
		cv.CNF.AddClause(clause...)
	}
	cv.cache[key] = d
	return d
}

// negLit returns a literal l such that l → ¬f.
func (cv *Converter) negLit(f Formula) Lit {
	switch f.kind {
	case KindVar:
		return -Lit(f.v)
	case KindNot:
		return cv.lit(f.args[0])
	}
	// l → ¬f  ≡  l → (¬a1 ∨ …) for And, via De Morgan; reuse lit on the
	// pushed-in form. NNF push is linear here because Simplify already
	// flattened the tree.
	return cv.lit(NNF(Not(f)))
}

// growTo ensures the CNF var count covers v.
func (cv *Converter) growTo(v Var) {
	if int(v) > cv.CNF.NumVars {
		cv.CNF.NumVars = int(v)
	}
}

// DirectCNF converts f to CNF by distribution, without auxiliary variables.
// The result is logically equivalent to f (not merely equisatisfiable) but
// can be exponentially large; it is intended for tests and for the tiny
// guard formulas attached to partial-order edges.
func DirectCNF(f Formula) []Clause {
	f = NNF(Simplify(f))
	return distribute(f)
}

func distribute(f Formula) []Clause {
	switch f.kind {
	case KindTrue:
		return nil
	case KindFalse:
		return []Clause{{}}
	case KindVar:
		return []Clause{{Lit(f.v)}}
	case KindNot:
		// NNF guarantees the argument is a variable.
		return []Clause{{-Lit(f.args[0].v)}}
	case KindAnd:
		var out []Clause
		for _, a := range f.args {
			out = append(out, distribute(a)...)
		}
		return out
	case KindOr:
		out := []Clause{{}}
		for _, a := range f.args {
			sub := distribute(a)
			next := make([]Clause, 0, len(out)*len(sub))
			for _, c1 := range out {
				for _, c2 := range sub {
					merged := make(Clause, 0, len(c1)+len(c2))
					merged = append(merged, c1...)
					merged = append(merged, c2...)
					next = append(next, normalizeClause(merged))
				}
			}
			out = compactClauses(next)
		}
		return out
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// normalizeClause sorts literals by variable (negative first within a
// variable) and deduplicates; a tautological clause (containing both l and
// ¬l) is returned as nil to be dropped by compactClauses.
func normalizeClause(c Clause) Clause {
	sort.Slice(c, func(i, j int) bool {
		vi, vj := c[i].Var(), c[j].Var()
		if vi != vj {
			return vi < vj
		}
		return c[i] < c[j]
	})
	out := c[:0]
	var prev Lit
	for i, l := range c {
		if i > 0 && l == prev {
			continue
		}
		out = append(out, l)
		prev = l
	}
	for i := 0; i+1 < len(out); i++ {
		if out[i].Var() == out[i+1].Var() {
			return nil // contains l and ¬l: tautology
		}
	}
	return out
}

func compactClauses(cs []Clause) []Clause {
	out := cs[:0]
	for _, c := range cs {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// Package logic provides a propositional-logic formula representation with
// named variables, structural simplification, negation normal form, and
// Tseitin conversion to CNF.
//
// The package is the front end of the reasoning shim described in the paper
// "Lightweight Automated Reasoning for Network Architectures" (HotNets '24):
// knowledge-base rules are assembled as Formula values and compiled to CNF
// for the CDCL solver in internal/sat.
//
// Formulas are immutable; all combinators return new values. The zero
// Formula is invalid — use True, False, or the constructors.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the top-level connective of a Formula node.
type Kind uint8

// Formula node kinds.
const (
	KindFalse Kind = iota // the constant ⊥
	KindTrue              // the constant ⊤
	KindVar               // a propositional variable
	KindNot               // ¬f
	KindAnd               // f1 ∧ … ∧ fn
	KindOr                // f1 ∨ … ∨ fn
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindFalse:
		return "false"
	case KindTrue:
		return "true"
	case KindVar:
		return "var"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Var is a propositional variable, identified by an index into a Vocabulary.
// Variables are 1-based; 0 is reserved as "no variable".
type Var uint32

// Formula is an immutable propositional formula. Implies, Iff and Ite are
// provided as derived constructors and are expanded structurally, so the
// node kinds are limited to the six above.
type Formula struct {
	kind Kind
	v    Var       // valid when kind == KindVar
	args []Formula // valid when kind is KindNot (len 1), KindAnd, KindOr
}

// True is the constant ⊤.
var True = Formula{kind: KindTrue}

// False is the constant ⊥.
var False = Formula{kind: KindFalse}

// Kind reports the top-level connective.
func (f Formula) Kind() Kind { return f.kind }

// Variable returns the variable of a KindVar node, or 0 otherwise.
func (f Formula) Variable() Var {
	if f.kind == KindVar {
		return f.v
	}
	return 0
}

// Args returns the immediate subformulas. Callers must not mutate the
// returned slice.
func (f Formula) Args() []Formula { return f.args }

// IsConst reports whether f is ⊤ or ⊥.
func (f Formula) IsConst() bool { return f.kind == KindTrue || f.kind == KindFalse }

// V returns the formula consisting of the single variable v.
// It panics if v is 0, which is reserved.
func V(v Var) Formula {
	if v == 0 {
		panic("logic: variable 0 is reserved")
	}
	return Formula{kind: KindVar, v: v}
}

// Not returns ¬f, folding constants and double negation.
func Not(f Formula) Formula {
	switch f.kind {
	case KindTrue:
		return False
	case KindFalse:
		return True
	case KindNot:
		return f.args[0]
	}
	return Formula{kind: KindNot, args: []Formula{f}}
}

// And returns the conjunction of fs. Nested conjunctions are flattened,
// ⊤ operands are dropped, and any ⊥ operand collapses the result to ⊥.
// And() is ⊤.
func And(fs ...Formula) Formula { return nary(KindAnd, fs) }

// Or returns the disjunction of fs. Nested disjunctions are flattened,
// ⊥ operands are dropped, and any ⊤ operand collapses the result to ⊤.
// Or() is ⊥.
func Or(fs ...Formula) Formula { return nary(KindOr, fs) }

func nary(k Kind, fs []Formula) Formula {
	unit, zero := True, False
	if k == KindOr {
		unit, zero = False, True
	}
	args := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch {
		case f.kind == unit.kind:
			// drop identity element
		case f.kind == zero.kind:
			return zero
		case f.kind == k:
			args = append(args, f.args...)
		default:
			args = append(args, f)
		}
	}
	switch len(args) {
	case 0:
		return unit
	case 1:
		return args[0]
	}
	return Formula{kind: k, args: args}
}

// Implies returns a → b, i.e. ¬a ∨ b.
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

// Iff returns a ↔ b, i.e. (a → b) ∧ (b → a).
func Iff(a, b Formula) Formula { return And(Implies(a, b), Implies(b, a)) }

// Xor returns a ⊕ b.
func Xor(a, b Formula) Formula { return Or(And(a, Not(b)), And(Not(a), b)) }

// Ite returns "if c then t else e", i.e. (c → t) ∧ (¬c → e).
func Ite(c, t, e Formula) Formula { return And(Implies(c, t), Implies(Not(c), e)) }

// Vars appends every variable occurring in f to dst (with duplicates) and
// returns the extended slice. Use VarSet for the deduplicated set.
func (f Formula) Vars(dst []Var) []Var {
	switch f.kind {
	case KindVar:
		return append(dst, f.v)
	case KindNot, KindAnd, KindOr:
		for _, a := range f.args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// VarSet returns the sorted set of variables occurring in f.
func (f Formula) VarSet() []Var {
	all := f.Vars(nil)
	seen := make(map[Var]bool, len(all))
	out := all[:0]
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of nodes in the formula tree.
func (f Formula) Size() int {
	n := 1
	for _, a := range f.args {
		n += a.Size()
	}
	return n
}

// Depth returns the height of the formula tree; constants and variables
// have depth 1.
func (f Formula) Depth() int {
	d := 0
	for _, a := range f.args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return d + 1
}

// Eval evaluates f under the given assignment. Variables absent from the
// map are treated as false.
func (f Formula) Eval(assign map[Var]bool) bool {
	switch f.kind {
	case KindTrue:
		return true
	case KindFalse:
		return false
	case KindVar:
		return assign[f.v]
	case KindNot:
		return !f.args[0].Eval(assign)
	case KindAnd:
		for _, a := range f.args {
			if !a.Eval(assign) {
				return false
			}
		}
		return true
	case KindOr:
		for _, a := range f.args {
			if a.Eval(assign) {
				return true
			}
		}
		return false
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// String renders the formula using a vocabulary-free notation (variables
// print as x<N>). Use Vocabulary.Render for named output.
func (f Formula) String() string {
	var b strings.Builder
	f.write(&b, nil)
	return b.String()
}

func (f Formula) write(b *strings.Builder, names func(Var) string) {
	name := func(v Var) string {
		if names != nil {
			if s := names(v); s != "" {
				return s
			}
		}
		return fmt.Sprintf("x%d", v)
	}
	switch f.kind {
	case KindTrue:
		b.WriteString("true")
	case KindFalse:
		b.WriteString("false")
	case KindVar:
		b.WriteString(name(f.v))
	case KindNot:
		b.WriteString("!")
		arg := f.args[0]
		if arg.kind == KindAnd || arg.kind == KindOr {
			b.WriteString("(")
			arg.write(b, names)
			b.WriteString(")")
		} else {
			arg.write(b, names)
		}
	case KindAnd, KindOr:
		op := " & "
		if f.kind == KindOr {
			op = " | "
		}
		for i, a := range f.args {
			if i > 0 {
				b.WriteString(op)
			}
			if a.kind == KindAnd || a.kind == KindOr {
				b.WriteString("(")
				a.write(b, names)
				b.WriteString(")")
			} else {
				a.write(b, names)
			}
		}
	}
}

// Equal reports structural equality of two formulas.
func Equal(a, b Formula) bool {
	if a.kind != b.kind || a.v != b.v || len(a.args) != len(b.args) {
		return false
	}
	for i := range a.args {
		if !Equal(a.args[i], b.args[i]) {
			return false
		}
	}
	return true
}

// Vocabulary allocates variables and remembers their names. It is the
// bridge between symbolic knowledge-base atoms and solver variables.
// The zero value is ready to use. Vocabulary is not safe for concurrent use.
type Vocabulary struct {
	names  []string       // names[i] is the name of Var(i+1)
	byName map[string]Var // reverse index
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byName: make(map[string]Var)}
}

// Fresh allocates a new variable with the given name (which may be empty
// for anonymous variables). Names need not be unique, but Lookup returns
// the first variable registered under a name.
func (vo *Vocabulary) Fresh(name string) Var {
	vo.names = append(vo.names, name)
	v := Var(len(vo.names))
	if name != "" {
		if vo.byName == nil {
			vo.byName = make(map[string]Var)
		}
		if _, dup := vo.byName[name]; !dup {
			vo.byName[name] = v
		}
	}
	return v
}

// Get returns the variable registered under name, allocating it if needed.
func (vo *Vocabulary) Get(name string) Var {
	if v, ok := vo.byName[name]; ok {
		return v
	}
	return vo.Fresh(name)
}

// Lookup returns the variable registered under name, or 0 if absent.
func (vo *Vocabulary) Lookup(name string) Var {
	return vo.byName[name]
}

// Names returns a copy of all variable names in allocation order
// (names[i] belongs to Var(i+1); anonymous variables contribute "").
// Together with RestoreVocabulary it round-trips a vocabulary exactly,
// which base-snapshot serialization relies on.
func (vo *Vocabulary) Names() []string {
	return append([]string(nil), vo.names...)
}

// RestoreVocabulary rebuilds a vocabulary from Names output: variable
// indices, lookup results, and Len match the original vocabulary.
func RestoreVocabulary(names []string) *Vocabulary {
	vo := NewVocabulary()
	for _, n := range names {
		vo.Fresh(n)
	}
	return vo
}

// Atom is shorthand for V(vo.Get(name)).
func (vo *Vocabulary) Atom(name string) Formula { return V(vo.Get(name)) }

// Name returns the name of v, or "" if v is anonymous or out of range.
func (vo *Vocabulary) Name(v Var) string {
	if v == 0 || int(v) > len(vo.names) {
		return ""
	}
	return vo.names[v-1]
}

// Len returns the number of variables allocated so far.
func (vo *Vocabulary) Len() int { return len(vo.names) }

// Render renders f with variable names from the vocabulary.
func (vo *Vocabulary) Render(f Formula) string {
	var b strings.Builder
	f.write(&b, vo.Name)
	return b.String()
}

package logic

import (
	"math/rand"
	"testing"
)

// cnfSatisfiableBrute brute-forces satisfiability of a CNF over its first
// nOrig variables being projected: it checks whether any assignment over
// all NumVars satisfies the CNF.
func cnfSatisfiableBrute(c *CNF) (bool, map[Var]bool) {
	n := c.NumVars
	if n > 22 {
		panic("cnfSatisfiableBrute: too many variables")
	}
	assign := make(map[Var]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 1; i <= n; i++ {
			assign[Var(i)] = mask&(1<<(i-1)) != 0
		}
		if c.Eval(assign) {
			out := make(map[Var]bool, n)
			for k, v := range assign {
				out[k] = v
			}
			return true, out
		}
	}
	return false, nil
}

// formulaSatisfiableBrute brute-forces satisfiability of a formula.
func formulaSatisfiableBrute(f Formula) bool {
	vars := f.VarSet()
	assign := make(map[Var]bool, len(vars))
	for mask := 0; mask < 1<<len(vars); mask++ {
		for i, v := range vars {
			assign[v] = mask&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestLitBasics(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Error("positive literal misbehaves")
	}
	n := MkLit(5, true)
	if n.Var() != 5 || !n.Neg() {
		t.Error("negative literal misbehaves")
	}
	if l.Flip() != n || n.Flip() != l {
		t.Error("Flip must complement")
	}
}

func TestClauseString(t *testing.T) {
	c := Clause{1, -2}
	if got := c.String(); got != "(x1 | !x2)" {
		t.Errorf("Clause.String: got %q", got)
	}
}

func TestTseitinEquisatisfiable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 250; i++ {
		vo := NewVocabulary()
		for j := 0; j < 5; j++ {
			vo.Fresh("") // allocate the 5 base variables
		}
		f := randFormula(r, 5, 25)
		cv := NewConverter(vo)
		cv.Assert(f)
		wantSat := formulaSatisfiableBrute(f)
		gotSat, model := cnfSatisfiableBrute(cv.CNF)
		if wantSat != gotSat {
			t.Fatalf("equisatisfiability broken for %v: formula sat=%v cnf sat=%v",
				f, wantSat, gotSat)
		}
		if gotSat {
			// Soundness: a CNF model restricted to original vars must
			// satisfy the original formula (Plaisted–Greenbaum keeps
			// this direction).
			if !f.Eval(model) {
				t.Fatalf("CNF model does not satisfy original formula %v", f)
			}
		}
	}
}

func TestAssertTrueFalse(t *testing.T) {
	vo := NewVocabulary()
	cv := NewConverter(vo)
	cv.Assert(True)
	if len(cv.CNF.Clauses) != 0 {
		t.Error("asserting true must add no clauses")
	}
	cv.Assert(False)
	if sat, _ := cnfSatisfiableBrute(cv.CNF); sat {
		t.Error("asserting false must make the CNF unsatisfiable")
	}
}

func TestAssertConjunctionSplits(t *testing.T) {
	vo := NewVocabulary()
	a, b := vo.Atom("a"), vo.Atom("b")
	cv := NewConverter(vo)
	cv.Assert(And(a, b))
	// Both conjuncts become unit clauses, no aux variables needed.
	if len(cv.CNF.Clauses) != 2 {
		t.Fatalf("got %d clauses, want 2", len(cv.CNF.Clauses))
	}
	if cv.CNF.NumVars != 2 {
		t.Errorf("got %d vars, want 2 (no aux vars)", cv.CNF.NumVars)
	}
}

func TestAssertDisjunctionSingleClause(t *testing.T) {
	vo := NewVocabulary()
	a, b, c := vo.Atom("a"), vo.Atom("b"), vo.Atom("c")
	cv := NewConverter(vo)
	cv.Assert(Or(a, Not(b), c))
	if len(cv.CNF.Clauses) != 1 {
		t.Fatalf("flat disjunction should be one clause, got %d", len(cv.CNF.Clauses))
	}
}

func TestConverterCacheReuse(t *testing.T) {
	vo := NewVocabulary()
	a, b, c := vo.Atom("a"), vo.Atom("b"), vo.Atom("c")
	sub := And(a, b)
	cv := NewConverter(vo)
	cv.Assert(Or(sub, c))
	n1 := cv.CNF.NumVars
	cv.Assert(Or(sub, Not(c)))
	n2 := cv.CNF.NumVars
	if n2 != n1 {
		t.Errorf("repeated subformula must reuse its aux var: %d -> %d", n1, n2)
	}
}

func TestDirectCNFEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		f := randFormula(r, 4, 14)
		clauses := DirectCNF(f)
		g := clausesToFormula(clauses)
		if !enumEquivalent(t, f, g) {
			t.Fatalf("DirectCNF not equivalent for %v: got %v", f, g)
		}
	}
}

func clausesToFormula(cs []Clause) Formula {
	conj := make([]Formula, 0, len(cs))
	for _, c := range cs {
		disj := make([]Formula, 0, len(c))
		for _, l := range c {
			a := V(l.Var())
			if l.Neg() {
				a = Not(a)
			}
			disj = append(disj, a)
		}
		conj = append(conj, Or(disj...))
	}
	return And(conj...)
}

func TestDirectCNFTautologyDropped(t *testing.T) {
	x := V(1)
	cs := DirectCNF(Or(x, Not(x)))
	if len(cs) != 0 {
		t.Errorf("tautology should produce no clauses, got %v", cs)
	}
}

func TestCNFEvalAndString(t *testing.T) {
	var c CNF
	c.AddClause(1, -2)
	c.AddClause(2)
	if c.NumVars != 2 {
		t.Errorf("NumVars: got %d, want 2", c.NumVars)
	}
	if !c.Eval(map[Var]bool{1: true, 2: true}) {
		t.Error("satisfying assignment rejected")
	}
	if c.Eval(map[Var]bool{1: false, 2: true}) {
		t.Error("falsifying assignment accepted")
	}
	if got := c.String(); got != "(x1 | !x2) & (x2)" {
		t.Errorf("String: got %q", got)
	}
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// enumEquivalent checks logical equivalence of two formulas by enumerating
// all assignments over the union of their variables. Only usable for small
// variable counts.
func enumEquivalent(t *testing.T, a, b Formula) bool {
	t.Helper()
	vars := And(a, b).VarSet()
	if len(vars) > 20 {
		t.Fatalf("enumEquivalent: too many variables (%d)", len(vars))
	}
	assign := make(map[Var]bool, len(vars))
	for mask := 0; mask < 1<<len(vars); mask++ {
		for i, v := range vars {
			assign[v] = mask&(1<<i) != 0
		}
		if a.Eval(assign) != b.Eval(assign) {
			return false
		}
	}
	return true
}

func TestConstants(t *testing.T) {
	if True.Eval(nil) != true {
		t.Error("True must evaluate to true")
	}
	if False.Eval(nil) != false {
		t.Error("False must evaluate to false")
	}
	if !True.IsConst() || !False.IsConst() || V(1).IsConst() {
		t.Error("IsConst misclassifies")
	}
}

func TestNotFolding(t *testing.T) {
	if !Equal(Not(True), False) || !Equal(Not(False), True) {
		t.Error("constant negation must fold")
	}
	x := V(1)
	if !Equal(Not(Not(x)), x) {
		t.Error("double negation must cancel")
	}
}

func TestAndOrIdentities(t *testing.T) {
	x, y := V(1), V(2)
	cases := []struct {
		name string
		got  Formula
		want Formula
	}{
		{"And()", And(), True},
		{"Or()", Or(), False},
		{"And(x)", And(x), x},
		{"Or(y)", Or(y), y},
		{"And(x,True)", And(x, True), x},
		{"Or(x,False)", Or(x, False), x},
		{"And(x,False)", And(x, False), False},
		{"Or(x,True)", Or(x, True), True},
		{"And flatten", And(And(x, y), x), And(x, y, x)},
	}
	for _, c := range cases {
		if !Equal(c.got, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestDerivedConnectives(t *testing.T) {
	x, y, z := V(1), V(2), V(3)
	assign := map[Var]bool{}
	for mask := 0; mask < 8; mask++ {
		assign[1] = mask&1 != 0
		assign[2] = mask&2 != 0
		assign[4] = mask&4 != 0
		a, b, c := assign[1], assign[2], assign[4]
		_ = c
		if Implies(x, y).Eval(assign) != (!a || b) {
			t.Fatalf("Implies wrong at %v", assign)
		}
		if Iff(x, y).Eval(assign) != (a == b) {
			t.Fatalf("Iff wrong at %v", assign)
		}
		if Xor(x, y).Eval(assign) != (a != b) {
			t.Fatalf("Xor wrong at %v", assign)
		}
		assign[3] = assign[4]
		want := assign[2]
		if !a {
			want = assign[3]
		}
		if Ite(x, y, z).Eval(assign) != want {
			t.Fatalf("Ite wrong at %v", assign)
		}
	}
}

func TestVarSet(t *testing.T) {
	f := And(V(3), Or(V(1), Not(V(3))), V(2))
	got := f.VarSet()
	want := []Var{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("VarSet: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VarSet: got %v, want %v", got, want)
		}
	}
}

func TestSizeDepth(t *testing.T) {
	f := And(V(1), Or(V(2), Not(V(3))))
	if f.Size() != 6 {
		t.Errorf("Size: got %d, want 6", f.Size())
	}
	if f.Depth() != 4 {
		t.Errorf("Depth: got %d, want 4", f.Depth())
	}
	if V(1).Depth() != 1 {
		t.Errorf("var depth: got %d, want 1", V(1).Depth())
	}
}

func TestVZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("V(0) must panic")
		}
	}()
	V(0)
}

func TestVocabulary(t *testing.T) {
	vo := NewVocabulary()
	a := vo.Get("pfc")
	b := vo.Get("flooding")
	if a == b {
		t.Fatal("distinct names must get distinct vars")
	}
	if vo.Get("pfc") != a {
		t.Error("Get must be idempotent per name")
	}
	if vo.Lookup("pfc") != a || vo.Lookup("nope") != 0 {
		t.Error("Lookup wrong")
	}
	if vo.Name(a) != "pfc" || vo.Name(0) != "" || vo.Name(Var(99)) != "" {
		t.Error("Name wrong")
	}
	if vo.Len() != 2 {
		t.Errorf("Len: got %d, want 2", vo.Len())
	}
	anon := vo.Fresh("")
	if vo.Name(anon) != "" {
		t.Error("anonymous var must have empty name")
	}
	f := Implies(vo.Atom("pfc"), Not(vo.Atom("flooding")))
	if got := vo.Render(f); got != "!pfc | !flooding" {
		t.Errorf("Render: got %q", got)
	}
}

func TestVocabularyDuplicateNames(t *testing.T) {
	vo := NewVocabulary()
	a := vo.Fresh("dup")
	b := vo.Fresh("dup")
	if a == b {
		t.Fatal("Fresh must always allocate")
	}
	if vo.Lookup("dup") != a {
		t.Error("Lookup must return the first registration")
	}
}

// randFormula builds a random formula over nv variables with the given
// node budget, for property tests.
func randFormula(r *rand.Rand, nv, budget int) Formula {
	if budget <= 1 {
		return V(Var(r.Intn(nv) + 1))
	}
	switch r.Intn(6) {
	case 0:
		return Not(randFormula(r, nv, budget-1))
	case 1:
		return True
	case 2:
		return False
	default:
		n := 2 + r.Intn(3)
		args := make([]Formula, n)
		for i := range args {
			args[i] = randFormula(r, nv, budget/n)
		}
		if r.Intn(2) == 0 {
			return And(args...)
		}
		return Or(args...)
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		f := randFormula(r, 5, 30)
		if !enumEquivalent(t, f, Simplify(f)) {
			t.Fatalf("Simplify changed semantics of %v -> %v", f, Simplify(f))
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		f := randFormula(r, 5, 30)
		once := Simplify(f)
		twice := Simplify(once)
		if !Equal(once, twice) {
			t.Fatalf("Simplify not idempotent: %v vs %v", once, twice)
		}
	}
}

func TestSimplifyComplement(t *testing.T) {
	x := V(1)
	if !Equal(Simplify(And(x, Not(x))), False) {
		t.Error("x & !x must simplify to false")
	}
	if !Equal(Simplify(Or(x, Not(x))), True) {
		t.Error("x | !x must simplify to true")
	}
	if !Equal(Simplify(And(x, x, x)), x) {
		t.Error("x & x & x must simplify to x")
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		f := randFormula(r, 5, 30)
		if !enumEquivalent(t, f, NNF(f)) {
			t.Fatalf("NNF changed semantics of %v", f)
		}
	}
}

func TestNNFShape(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var check func(f Formula) bool
	check = func(f Formula) bool {
		if f.Kind() == KindNot && f.Args()[0].Kind() != KindVar {
			return false
		}
		for _, a := range f.Args() {
			if !check(a) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 200; i++ {
		f := NNF(randFormula(r, 5, 30))
		if !check(f) {
			t.Fatalf("NNF left a non-atomic negation in %v", f)
		}
	}
}

func TestSubstitute(t *testing.T) {
	x, y, z := V(1), V(2), V(3)
	f := And(x, Or(y, Not(x)))
	g := Substitute(f, map[Var]Formula{1: z})
	want := And(z, Or(y, Not(z)))
	if !Equal(g, want) {
		t.Errorf("Substitute: got %v, want %v", g, want)
	}
	h := Substitute(f, map[Var]Formula{1: True})
	if !enumEquivalent(t, h, y) {
		t.Errorf("Substitute with constant: got %v", h)
	}
}

func TestCofactor(t *testing.T) {
	x, y := V(1), V(2)
	f := Or(And(x, y), And(Not(x), Not(y)))
	if !Equal(Cofactor(f, 1, true), y) {
		t.Errorf("Cofactor(x=1): got %v, want y", Cofactor(f, 1, true))
	}
	if !Equal(Cofactor(f, 1, false), Not(y)) {
		t.Errorf("Cofactor(x=0): got %v, want !y", Cofactor(f, 1, false))
	}
}

func TestEvalQuickShannon(t *testing.T) {
	// Property: f ≡ (x ∧ f|x=1) ∨ (¬x ∧ f|x=0) — the Shannon expansion.
	r := rand.New(rand.NewSource(5))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randFormula(rr, 4, 20)
		x := Var(r.Intn(4) + 1)
		expanded := Or(And(V(x), Cofactor(f, x, true)), And(Not(V(x)), Cofactor(f, x, false)))
		vars := And(f, expanded).VarSet()
		assign := make(map[Var]bool)
		for mask := 0; mask < 1<<len(vars); mask++ {
			for i, v := range vars {
				assign[v] = mask&(1<<i) != 0
			}
			if f.Eval(assign) != expanded.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	f := And(V(1), Or(V(2), Not(V(3))))
	if got := f.String(); got != "x1 & (x2 | !x3)" {
		t.Errorf("String: got %q", got)
	}
	if got := Not(And(V(1), V(2))).String(); got != "!(x1 & x2)" {
		t.Errorf("String: got %q", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(And(V(1), V(2)), And(V(1), V(2))) {
		t.Error("identical formulas must be Equal")
	}
	if Equal(And(V(1), V(2)), And(V(2), V(1))) {
		t.Error("Equal is structural; operand order matters")
	}
	if Equal(V(1), Not(V(1))) {
		t.Error("x and !x must differ")
	}
}

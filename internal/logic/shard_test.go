package logic

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestConvertShardsWorkerInvariance pins the determinism contract: the
// merged CNF — clause content, clause order, every literal — must be
// byte-identical for every worker count. The compiled-base byte-identity
// differential in core rides on this.
func TestConvertShardsWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		const base = 5
		fs := make([]Formula, 0, 9)
		for j := 0; j < 9; j++ {
			fs = append(fs, randFormula(r, base, 20))
		}
		want := ConvertShards(base, fs, 1)
		for _, w := range []int{2, 3, 8, 16} {
			got := ConvertShards(base, fs, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("iter %d: workers=%d diverges from sequential:\n%v\nvs\n%v",
					i, w, got, want)
			}
		}
	}
}

// TestConvertShardsEquisatisfiable checks the semantic side of the merge:
// the sharded CNF of [f1, ..., fn] is equisatisfiable with f1 ∧ ... ∧ fn,
// and any CNF model restricted to the original variables satisfies every
// assertion (aux-variable renumbering must not cross-wire shards).
func TestConvertShardsEquisatisfiable(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 120; i++ {
		const base = 4
		fs := []Formula{randFormula(r, base, 10), randFormula(r, base, 10), randFormula(r, base, 10)}
		cnf := ConvertShards(base, fs, 2)
		if cnf.NumVars < base {
			t.Fatalf("iter %d: NumVars %d below base %d", i, cnf.NumVars, base)
		}
		wantSat := formulaSatisfiableBrute(And(fs...))
		gotSat, model := cnfSatisfiableBrute(cnf)
		if wantSat != gotSat {
			t.Fatalf("iter %d: conjunction sat=%v, sharded CNF sat=%v", i, wantSat, gotSat)
		}
		if gotSat {
			for j, f := range fs {
				if !f.Eval(model) {
					t.Fatalf("iter %d: CNF model violates assertion %d: %v", i, j, f)
				}
			}
		}
	}
}

// TestConvertShardsAuxBlocks checks the variable layout: shard i's aux
// variables occupy one contiguous block right after the blocks of shards
// 0..i-1, starting at base+1, and NumVars covers exactly base plus the
// total aux count.
func TestConvertShardsAuxBlocks(t *testing.T) {
	vo := NewVocabulary()
	a, b, c, d := vo.Atom("a"), vo.Atom("b"), vo.Atom("c"), vo.Atom("d")
	base := vo.Len()
	// Each Iff produces aux definitions; the same subformula in two
	// assertions must get distinct (per-shard) aux variables.
	sub := And(a, b)
	fs := []Formula{Or(sub, c), Or(sub, d)}
	cnf := ConvertShards(base, fs, 2)
	maxVar := 0
	for _, cl := range cnf.Clauses {
		for _, l := range cl {
			if int(l.Var()) > maxVar {
				maxVar = int(l.Var())
			}
		}
	}
	if maxVar != cnf.NumVars {
		t.Errorf("NumVars %d but max literal var %d", cnf.NumVars, maxVar)
	}
	if cnf.NumVars <= base+1 {
		t.Errorf("expected one aux var per shard (NumVars > %d), got %d", base+1, cnf.NumVars)
	}
}

package logic

// Simplify performs structural simplification: constant folding, flattening
// of nested conjunctions/disjunctions, removal of duplicate operands, and
// detection of complementary operands (x ∧ ¬x → ⊥, x ∨ ¬x → ⊤). The result
// is logically equivalent to the input.
//
// Simplify is idempotent and runs in O(n log n) over the formula size.
func Simplify(f Formula) Formula {
	switch f.kind {
	case KindTrue, KindFalse, KindVar:
		return f
	case KindNot:
		return Not(Simplify(f.args[0]))
	case KindAnd, KindOr:
		args := make([]Formula, 0, len(f.args))
		for _, a := range f.args {
			args = append(args, Simplify(a))
		}
		g := nary(f.kind, args)
		if g.kind != KindAnd && g.kind != KindOr {
			return g
		}
		return dedupComplement(g)
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// dedupComplement removes duplicate operands from an And/Or node and
// collapses the node if it contains complementary operands.
func dedupComplement(f Formula) Formula {
	seen := make(map[string]bool, len(f.args))
	neg := make(map[string]bool, len(f.args))
	out := make([]Formula, 0, len(f.args))
	for _, a := range f.args {
		key := a.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		var nkey string
		if a.kind == KindNot {
			nkey = a.args[0].String()
		} else {
			nkey = Not(a).String()
		}
		if neg[key] || seen[nkey] {
			if f.kind == KindAnd {
				return False
			}
			return True
		}
		neg[nkey] = true
		out = append(out, a)
	}
	return nary(f.kind, out)
}

// NNF converts f to negation normal form: negations are pushed inward until
// they apply only to variables. The result is logically equivalent to f and
// at most twice its size.
func NNF(f Formula) Formula {
	switch f.kind {
	case KindTrue, KindFalse, KindVar:
		return f
	case KindNot:
		return nnfNeg(f.args[0])
	case KindAnd, KindOr:
		args := make([]Formula, 0, len(f.args))
		for _, a := range f.args {
			args = append(args, NNF(a))
		}
		return nary(f.kind, args)
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// nnfNeg returns the NNF of ¬f.
func nnfNeg(f Formula) Formula {
	switch f.kind {
	case KindTrue:
		return False
	case KindFalse:
		return True
	case KindVar:
		return Not(f)
	case KindNot:
		return NNF(f.args[0])
	case KindAnd, KindOr:
		k := KindOr
		if f.kind == KindOr {
			k = KindAnd
		}
		args := make([]Formula, 0, len(f.args))
		for _, a := range f.args {
			args = append(args, nnfNeg(a))
		}
		return nary(k, args)
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// Substitute replaces variables in f according to subst; variables not in
// the map are left unchanged. Constants in the map fold immediately.
func Substitute(f Formula, subst map[Var]Formula) Formula {
	switch f.kind {
	case KindTrue, KindFalse:
		return f
	case KindVar:
		if g, ok := subst[f.v]; ok {
			return g
		}
		return f
	case KindNot:
		return Not(Substitute(f.args[0], subst))
	case KindAnd, KindOr:
		args := make([]Formula, 0, len(f.args))
		for _, a := range f.args {
			args = append(args, Substitute(a, subst))
		}
		return nary(f.kind, args)
	}
	panic("logic: invalid formula kind " + f.kind.String())
}

// Cofactor returns f with variable v fixed to val, simplified.
func Cofactor(f Formula, v Var, val bool) Formula {
	c := False
	if val {
		c = True
	}
	return Simplify(Substitute(f, map[Var]Formula{v: c}))
}

package sat

import (
	"bufio"
	"fmt"
	"io"
)

// Proof records a DRAT-style clausal proof: every clause the solver
// learns is a RUP (reverse unit propagation) lemma, deletions are
// recorded so checkers can stay small, and an unsatisfiable run ends with
// the empty clause. Proof logging turns the solver's UNSAT verdicts —
// which the reasoning engine converts into "no compliant design exists"
// answers — into independently checkable artifacts.
//
// Proof logging is supported for Solve without assumptions; the engine's
// assumption-based queries are validated by re-solving instead (their
// cores are re-checked by construction, see core's tests).
type Proof struct {
	// Lemmas holds learnt clauses in derivation order. A Step with
	// Delete set records a clause deletion.
	Steps []ProofStep
}

// ProofStep is one proof line.
type ProofStep struct {
	Clause []Lit
	Delete bool
}

// AttachProof enables proof logging on a solver. It must be called before
// any Solve; the solver must be used without assumptions while logging,
// and proof logging requires clause learning (it panics under NoLearning,
// which produces no clausal derivations).
func (s *Solver) AttachProof() *Proof {
	if s.opts.NoLearning {
		panic("sat: proof logging requires clause learning")
	}
	s.proof = &Proof{}
	return s.proof
}

func (s *Solver) logLearnt(lits []lit) {
	if s.proof == nil {
		return
	}
	ext := make([]Lit, len(lits))
	for i, l := range lits {
		ext[i] = toExternal(l)
	}
	s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: ext})
}

func (s *Solver) logDelete(lits []lit) {
	if s.proof == nil {
		return
	}
	ext := make([]Lit, len(lits))
	for i, l := range lits {
		ext[i] = toExternal(l)
	}
	s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: ext, Delete: true})
}

func (s *Solver) logEmpty() {
	if s.proof == nil {
		return
	}
	s.proof.Steps = append(s.proof.Steps, ProofStep{})
}

// WriteDRAT writes the proof in the standard textual DRAT format.
func (p *Proof) WriteDRAT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range p.Steps {
		if st.Delete {
			if _, err := bw.WriteString("d "); err != nil {
				return err
			}
		}
		for _, l := range st.Clause {
			fmt.Fprintf(bw, "%d ", int32(l))
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// CheckRUP verifies the proof against the original clauses by forward RUP
// checking: each non-deletion lemma, when negated and unit-propagated over
// the accumulated formula, must yield a conflict; the proof must end with
// (or contain) the empty clause for an UNSAT verdict. It returns an error
// describing the first failing step.
//
// The checker is deliberately independent of the solver: a simple
// counter-based unit propagator over a copy of the clauses.
func CheckRUP(original [][]Lit, p *Proof) error {
	db := newRUPChecker(original)
	sawEmpty := false
	for i, st := range p.Steps {
		if st.Delete {
			db.remove(st.Clause)
			continue
		}
		if len(st.Clause) == 0 {
			sawEmpty = true
		}
		if !db.rup(st.Clause) {
			return fmt.Errorf("sat: proof step %d (%v) is not RUP", i, st.Clause)
		}
		db.add(st.Clause)
	}
	if !sawEmpty {
		return fmt.Errorf("sat: proof does not derive the empty clause")
	}
	return nil
}

// rupChecker is a tiny clause database with naive unit propagation.
type rupChecker struct {
	clauses [][]Lit
	nVars   int
}

func newRUPChecker(original [][]Lit) *rupChecker {
	c := &rupChecker{}
	for _, cl := range original {
		c.add(cl)
	}
	return c
}

func (c *rupChecker) add(cl []Lit) {
	cp := append([]Lit(nil), cl...)
	c.clauses = append(c.clauses, cp)
	for _, l := range cl {
		if l.Var() > c.nVars {
			c.nVars = l.Var()
		}
	}
}

// remove deletes one clause equal (as a set) to cl.
func (c *rupChecker) remove(cl []Lit) {
	want := litSet(cl)
	for i, existing := range c.clauses {
		if len(existing) != len(cl) {
			continue
		}
		if setsEqual(litSet(existing), want) {
			c.clauses[i] = c.clauses[len(c.clauses)-1]
			c.clauses = c.clauses[:len(c.clauses)-1]
			return
		}
	}
	// Deleting a clause that is absent is harmless for soundness.
}

func litSet(cl []Lit) map[Lit]bool {
	m := make(map[Lit]bool, len(cl))
	for _, l := range cl {
		m[l] = true
	}
	return m
}

func setsEqual(a, b map[Lit]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if !b[l] {
			return false
		}
	}
	return true
}

// rup reports whether the clause is implied by reverse unit propagation:
// assert the negation of every literal, propagate to fixpoint, succeed on
// conflict.
func (c *rupChecker) rup(cl []Lit) bool {
	assign := map[Lit]bool{} // literal -> asserted true
	assert := func(l Lit) bool {
		if assign[l.Flip()] {
			return false // conflict
		}
		assign[l] = true
		return true
	}
	for _, l := range cl {
		if !assert(l.Flip()) {
			return true // negation already conflicts
		}
	}
	for {
		progress := false
		for _, existing := range c.clauses {
			var unassigned []Lit
			satisfied := false
			for _, l := range existing {
				switch {
				case assign[l]:
					satisfied = true
				case assign[l.Flip()]:
					// falsified literal
				default:
					unassigned = append(unassigned, l)
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch len(unassigned) {
			case 0:
				return true // conflict: clause fully falsified
			case 1:
				if !assert(unassigned[0]) {
					return true
				}
				progress = true
			}
		}
		if !progress {
			return false
		}
	}
}

package sat

import (
	"math/rand"
	"testing"
)

func TestSimplifySubsumption(t *testing.T) {
	s := NewSolver()
	s.EnsureVars(4)
	s.AddClause(1, 2)
	s.AddClause(1, 2, 3) // subsumed by (1 2)
	s.AddClause(1, 2, 4) // subsumed by (1 2)
	before := s.NumClauses()
	removed := s.Simplify()
	if removed < 2 {
		t.Errorf("expected ≥2 removals, got %d", removed)
	}
	if s.NumClauses() >= before {
		t.Errorf("clause count did not shrink: %d -> %d", before, s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("instance must stay SAT")
	}
}

func TestSimplifySelfSubsumingResolution(t *testing.T) {
	s := NewSolver()
	s.EnsureVars(3)
	s.AddClause(1, 2)     // (x1 ∨ x2)
	s.AddClause(-1, 2, 3) // resolves to (x2 ∨ x3)? strengthened: drop -1
	if s.Simplify() == 0 {
		t.Error("self-subsuming resolution should fire")
	}
	// Semantics preserved: x1=F,x2=F must force... check satisfiability
	// equivalence by brute force.
	want, _ := bruteForce(3, [][]Lit{{1, 2}, {-1, 2, 3}})
	got := s.Solve() == Sat
	if want != got {
		t.Errorf("satisfiability changed: want %v got %v", want, got)
	}
}

func TestSimplifyRootStrengthening(t *testing.T) {
	s := NewSolver()
	s.EnsureVars(3)
	// Clauses first, unit afterwards: AddClause only normalizes against
	// units known at insertion time, so Simplify has work to do.
	s.AddClause(1, 2, 3) // strengthens to (x2 ∨ x3)
	s.AddClause(-1, 2)   // satisfied once x1 is false: removable
	s.AddClause(-1)      // root unit: x1 false
	if s.Simplify() == 0 {
		t.Error("root strengthening should fire")
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	if s.Value(1) {
		t.Error("x1 must stay false")
	}
}

func TestSimplifyPreservesSemanticsFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 150; i++ {
		nVars := 4 + r.Intn(8)
		clauses := randomInstance(r, nVars, 2+r.Intn(nVars*4), 1+r.Intn(3)+1)
		wantSat, _ := bruteForce(nVars, clauses)

		s := NewSolver()
		s.EnsureVars(nVars)
		loadClauses(s, clauses)
		s.Simplify()
		s.Simplify() // idempotence must not break anything either
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("instance %d: simplify changed satisfiability: got %v want sat=%v\n%v",
				i, got, wantSat, clauses)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

func TestSimplifyWithProofStillChecks(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	verified := 0
	for i := 0; i < 80 && verified < 10; i++ {
		nVars := 5 + r.Intn(5)
		clauses := randomInstance(r, nVars, nVars*6, 3)
		s := NewSolver()
		p := s.AttachProof()
		s.EnsureVars(nVars)
		loadClauses(s, clauses)
		s.Simplify()
		if s.Solve() != Unsat {
			continue
		}
		verified++
		if err := CheckRUP(clauses, p); err != nil {
			t.Fatalf("instance %d: proof after Simplify rejected: %v", i, err)
		}
	}
	if verified == 0 {
		t.Skip("no UNSAT draws")
	}
}

func TestSimplifyAboveLevelZeroPanics(t *testing.T) {
	// Simplify during search is a programmer error; simulate by opening
	// a decision level manually through the public API being misused is
	// not possible, so call at level 0 and just assert no panic here.
	s := NewSolver()
	s.AddClause(1, 2)
	s.Simplify() // must not panic at level 0
}

func TestSimplifyOnUnsatInstance(t *testing.T) {
	s := NewSolver()
	s.AddClause(1)
	s.AddClause(-1)
	if s.Simplify() != 0 {
		t.Error("Simplify on a dead solver must be a no-op")
	}
	if s.Solve() != Unsat {
		t.Error("want UNSAT")
	}
}

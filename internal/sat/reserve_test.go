package sat

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestReserveClausesByteIdentity pins the capacity-only contract: a solver
// that pre-sizes its arena for the exact clause load snapshots
// byte-identically to one that grows by appending, and a reserve large
// enough for the whole load leaves exactly one slab allocation's worth of
// capacity in place (no reallocation mid-build).
func TestReserveClausesByteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	clauses := make([][]Lit, 200)
	nLits := 0
	for i := range clauses {
		n := 1 + r.Intn(5)
		cl := make([]Lit, n)
		for j := range cl {
			l := Lit(r.Intn(40) + 1)
			if r.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		clauses[i] = cl
		nLits += n
	}
	build := func(reserve bool) *Solver {
		s := NewSolver()
		s.EnsureVars(40)
		if reserve {
			s.ReserveClauses(len(clauses), nLits)
		}
		for _, cl := range clauses {
			s.AddClause(cl...)
		}
		return s
	}
	plain, reserved := build(false), build(true)
	if !bytes.Equal(plain.Snapshot(), reserved.Snapshot()) {
		t.Fatal("ReserveClauses changed snapshot bytes")
	}
	if got, want := cap(reserved.ca.data), len(clauses)*clsHeaderWords+nLits; got < want {
		t.Fatalf("reserved capacity %d below requested %d", got, want)
	}
	// Zero/negative requests are no-ops.
	before := cap(plain.ca.data)
	plain.ReserveClauses(0, 0)
	plain.ReserveClauses(-1, -1)
	if cap(plain.ca.data) != before {
		t.Fatal("no-op reserve changed capacity")
	}
}

// TestWarmProfileClone checks the deep copy: mutating the clone must not
// write through to the original (profiles are shared with live solvers).
func TestWarmProfileClone(t *testing.T) {
	var nilP *WarmProfile
	if nilP.Clone() != nil {
		t.Fatal("nil profile should clone to nil")
	}
	p := &WarmProfile{Phases: []bool{true, false, true}, Activity: []uint16{9, 8, 7}}
	q := p.Clone()
	q.Phases[0] = false
	q.Activity[0] = 0
	q.Truncate(1)
	if !p.Phases[0] || p.Activity[0] != 9 || len(p.Phases) != 3 || len(p.Activity) != 3 {
		t.Fatalf("clone mutation leaked into original: %+v", p)
	}
}

package sat

import "math"

// This file implements the clause arena: the clause database as one flat
// slab of uint32 words (MiniSat's RegionAllocator design — Eén &
// Sörensson), replacing the per-clause heap objects the solver used
// before. A clause is addressed by a cref, its word offset into the slab,
// and stores its metadata inline:
//
//	word 0:      size<<2 | learnt<<1 | deleted
//	word 1:      LBD
//	words 2–3:   activity (float64 bits, little-halves order)
//	words 4…:    the literals
//
// The payoffs over heap clauses:
//
//   - Allocation: adding a clause is a slab append — no per-clause
//     object, no separate literal array, no pointer for the GC to trace.
//     The slab itself is pointer-free, so GC scan cost is O(1) in the
//     clause count.
//   - Locality: propagation walks literals that sit next to their
//     metadata in one contiguous region instead of chasing a pointer per
//     clause.
//   - Clone: a deep copy of the clause database is one slab copy, and
//     clause identity survives for free — a cref means the same clause in
//     every copy, so watch lists and reason references copy verbatim with
//     no forwarding marks, translation maps, or clone locks.
//   - Snapshot: the slab serializes (and validates) directly.
//
// Deleted clauses leave garbage words behind; compact() reclaims them
// in place once they exceed a fraction of the slab (see maybeCompact),
// preserving arena order — and hence watch-order determinism — exactly.

// cref addresses a clause: the word offset of its header in the arena.
type cref uint32

// crefUndef is the nil clause reference.
const crefUndef cref = ^cref(0)

// clsHeaderWords is the per-clause metadata size in words.
const clsHeaderWords = 4

const (
	clsLearnt  = 1 << 1
	clsDeleted = 1 << 0
)

// arena is the flat clause slab. data is declared []lit (lit is a
// uint32) so literal access needs no casts; header words are stored as
// lit-typed raw uint32s and cast by the accessors.
type arena struct {
	data []lit
	// wasted counts the words occupied by deleted clauses, the trigger
	// for compaction.
	wasted int
}

// alloc appends a clause and returns its reference.
func (a *arena) alloc(lits []lit, learnt bool) cref {
	c := cref(len(a.data))
	hdr := lit(len(lits)) << 2
	if learnt {
		hdr |= clsLearnt
	}
	a.data = append(a.data, hdr, 0, 0, 0)
	a.data = append(a.data, lits...)
	return c
}

// reserve grows the slab's capacity to hold at least extra more words
// without reallocating. Capacity-only: the slab's contents, length, and
// every cref are unchanged, so snapshots and clones are byte-identical
// with or without the call.
func (a *arena) reserve(extra int) {
	need := len(a.data) + extra
	if need <= cap(a.data) {
		return
	}
	grown := make([]lit, len(a.data), need)
	copy(grown, a.data)
	a.data = grown
}

func (a *arena) size(c cref) int     { return int(a.data[c] >> 2) }
func (a *arena) learnt(c cref) bool  { return a.data[c]&clsLearnt != 0 }
func (a *arena) deleted(c cref) bool { return a.data[c]&clsDeleted != 0 }

// setDeleted marks the clause deleted and accounts its words as garbage.
func (a *arena) setDeleted(c cref) {
	if a.data[c]&clsDeleted != 0 {
		return
	}
	a.data[c] |= clsDeleted
	a.wasted += clsHeaderWords + a.size(c)
}

func (a *arena) lbd(c cref) int       { return int(a.data[c+1]) }
func (a *arena) setLBD(c cref, v int) { a.data[c+1] = lit(v) }

func (a *arena) activity(c cref) float64 {
	bits := uint64(a.data[c+2]) | uint64(a.data[c+3])<<32
	return math.Float64frombits(bits)
}

func (a *arena) setActivity(c cref, v float64) {
	bits := math.Float64bits(v)
	a.data[c+2] = lit(bits)
	a.data[c+3] = lit(bits >> 32)
}

// lits returns the clause's literal slice, aliasing the slab. The slice
// is invalidated by alloc (append may move the slab) and by compact;
// callers must not hold it across either.
func (a *arena) lits(c cref) []lit {
	off := c + clsHeaderWords
	return a.data[off : off+cref(a.size(c)) : off+cref(a.size(c))]
}

// clone returns a deep copy of the arena — the near-memcpy at the heart
// of Solver.Clone.
func (a *arena) clone() arena {
	return arena{data: append(make([]lit, 0, len(a.data)), a.data...), wasted: a.wasted}
}

// maybeCompact reclaims garbage once deleted clauses hold more than a
// quarter of a non-trivial slab. Callers must hold no crefs across the
// call (compaction relocates clauses); the solver invokes it only from
// reduceDB and Simplify, where none are held.
func (s *Solver) maybeCompact() {
	if s.ca.wasted*4 > len(s.ca.data) && s.ca.wasted > 1<<12 {
		s.compactArena()
	}
}

// compactArena squeezes deleted clauses out of the arena in place and
// rewrites every clause reference (clause lists, watch lists, reasons).
// Live clauses keep their relative order, so watch lists keep their
// order and propagation — and hence the search — is unchanged; deleted
// watchers are dropped here exactly as propagate would have dropped them
// lazily. Compaction is a pure function of the solver state, so clones
// and snapshot-restored solvers compact identically.
func (s *Solver) compactArena() {
	a := &s.ca
	// Pass 1: slide live clauses down, recording old→new offsets. Both
	// lists are strictly increasing, so remapping is a binary search.
	oldOffs := s.gcOld[:0]
	newOffs := s.gcNew[:0]
	w := 0
	for r := 0; r < len(a.data); {
		n := clsHeaderWords + int(a.data[r]>>2)
		if a.data[r]&clsDeleted == 0 {
			oldOffs = append(oldOffs, cref(r))
			newOffs = append(newOffs, cref(w))
			if w != r {
				copy(a.data[w:w+n], a.data[r:r+n])
			}
			w += n
		}
		r += n
	}
	a.data = a.data[:w]
	a.wasted = 0
	s.gcOld, s.gcNew = oldOffs, newOffs

	reloc := func(c cref) cref {
		lo, hi := 0, len(oldOffs)
		for lo < hi {
			mid := (lo + hi) / 2
			if oldOffs[mid] < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return newOffs[lo]
	}

	// Pass 2: rewrite the reference holders. Deleted clauses are gone:
	// their watchers are dropped and their reasons cleared (a deleted
	// clause can only be the reason of a level-0 assignment — reduceDB
	// never deletes locked clauses and Simplify runs at level 0 — and
	// level-0 reasons are never walked by analyze or analyzeFinal).
	for i, c := range s.clauses {
		s.clauses[i] = reloc(c)
	}
	for i, c := range s.learnts {
		s.learnts[i] = reloc(c)
	}
	for v, c := range s.reason {
		if c == crefUndef {
			continue
		}
		if wasDeleted(c, oldOffs) {
			s.reason[v] = crefUndef
		} else {
			s.reason[v] = reloc(c)
		}
	}
	for li := range s.watches {
		ws := s.watches[li]
		n := 0
		for _, wt := range ws {
			if wasDeleted(wt.c, oldOffs) {
				continue
			}
			ws[n] = watcher{c: reloc(wt.c), blocker: wt.blocker}
			n++
		}
		s.watches[li] = ws[:n]
	}
}

// wasDeleted reports whether c is absent from the sorted live-offset
// list — i.e. it referenced a clause compaction discarded.
func wasDeleted(c cref, live []cref) bool {
	lo, hi := 0, len(live)
	for lo < hi {
		mid := (lo + hi) / 2
		if live[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo == len(live) || live[lo] != c
}

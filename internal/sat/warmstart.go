package sat

// Warm-start profiles capture the cheap-to-store part of a finished
// search — saved phases and a quantized snapshot of VSIDS activities —
// so a later solve over the same (or a structurally related) instance
// can start where the last one left off. Queries in one scenario family
// share almost all structure, so the variable ordering and polarities
// that closed the previous solve are a strong prior for the next.
//
// Activities are stored as uint16 fractions of the running maximum:
// absolute magnitudes are meaningless across solves (the solver rescales
// them continually), only the relative order matters, and 16 bits
// preserve order far beyond what branching can distinguish.

// WarmProfile is a snapshot-persistable search prior. Zero values (no
// phases, no activity) are valid and apply as a no-op prefix.
type WarmProfile struct {
	Phases   []bool   // saved polarity per variable (true = branch negative)
	Activity []uint16 // VSIDS activity / max, quantized to 0..65535
}

// ExtractProfile captures the solver's current phases and activities.
// The receiver is read but not mutated.
func (s *Solver) ExtractProfile() *WarmProfile {
	p := &WarmProfile{
		Phases:   append([]bool(nil), s.polarity[:s.nVars]...),
		Activity: make([]uint16, s.nVars),
	}
	max := 0.0
	for _, a := range s.activity[:s.nVars] {
		if a > max {
			max = a
		}
	}
	if max > 0 {
		for v, a := range s.activity[:s.nVars] {
			p.Activity[v] = uint16(a / max * 65535)
		}
	}
	return p
}

// Clone returns a deep copy of the profile, so a caller can Truncate or
// otherwise adapt it without mutating a profile shared with live solvers
// (warm slots hand the same *WarmProfile to every clone of a base).
func (p *WarmProfile) Clone() *WarmProfile {
	if p == nil {
		return nil
	}
	return &WarmProfile{
		Phases:   append([]bool(nil), p.Phases...),
		Activity: append([]uint16(nil), p.Activity...),
	}
}

// Truncate trims the profile to its first n variables. Used when a
// profile extracted from a specialized query clone (which layers
// selector variables on top) is stored against the shared base.
func (p *WarmProfile) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if len(p.Phases) > n {
		p.Phases = p.Phases[:n]
	}
	if len(p.Activity) > n {
		p.Activity = p.Activity[:n]
	}
}

// ApplyProfile overwrites the solver's saved phases and activities with
// the profile's, as a prefix (profiles from a smaller vocabulary leave
// later variables untouched). Must be called at decision level 0.
func (s *Solver) ApplyProfile(p *WarmProfile) {
	if s.decisionLevel() != 0 {
		panic("sat: ApplyProfile called above decision level 0")
	}
	if p == nil {
		return
	}
	for v, ph := range p.Phases {
		if v >= s.nVars {
			break
		}
		s.polarity[v] = ph
	}
	n := len(p.Activity)
	if n > s.nVars {
		n = s.nVars
	}
	if n > 0 {
		// Dequantize against varInc so freshly bumped variables still
		// outrank the prior, letting the current conflict signal win.
		scale := s.varInc / 65535
		for v := 0; v < n; v++ {
			s.activity[v] = float64(p.Activity[v]) * scale
		}
		s.order.rebuild()
	}
}

// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, VSIDS
// variable activity with phase saving, first-UIP clause learning with
// recursive minimization, LBD-guided learnt-clause deletion, Luby restarts,
// and solving under assumptions with final-conflict (core) extraction.
//
// It is the decision procedure underneath the lightweight reasoning shim of
// the HotNets '24 paper this repository reproduces: the paper's prototype is
// "a shim layer over SAT solvers", and since Go bindings to Z3/cvc5 are thin
// and unmaintained, the solver is built from scratch on the standard library.
//
// Literals use the DIMACS convention at the API boundary: +v asserts
// variable v, -v asserts its negation, v ≥ 1.
package sat

import (
	"errors"
	"fmt"
)

// Lit is a DIMACS-style literal: +v or -v for variable v ≥ 1.
type Lit int32

// Var returns the literal's variable (≥ 1).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l < 0 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return -l }

// String renders the literal in DIMACS style.
func (l Lit) String() string { return fmt.Sprintf("%d", int32(l)) }

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means the solver stopped before reaching a verdict
	// (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; see Model.
	Sat
	// Unsat means no satisfying assignment exists under the current
	// clauses and assumptions; see FinalConflict.
	Unsat
)

// String returns "SAT", "UNSAT" or "UNKNOWN".
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// PhasePolicy selects the polarity a decision assigns to its variable.
// Different polarities steer the search into different regions of the
// space, which makes the policy a cheap diversification axis for
// portfolio solving (see PortfolioOptions).
type PhasePolicy uint8

// Phase policies.
const (
	// PhaseSaved assigns the variable's last assigned polarity
	// (MiniSat-style phase saving; false before the first assignment).
	PhaseSaved PhasePolicy = iota
	// PhaseFalse always decides false first (what NoPhaseSaving does).
	PhaseFalse
	// PhaseTrue always decides true first.
	PhaseTrue
	// PhaseRandom derives a fixed pseudo-random polarity per variable
	// from Options.Seed. Deterministic for a given seed.
	PhaseRandom
)

// Options configures solver heuristics. The zero value enables the full
// CDCL feature set; fields exist chiefly for the ablation benchmarks and
// for portfolio diversification.
type Options struct {
	// NoLearning disables clause learning and non-chronological
	// backjumping; the solver degrades to DPLL with chronological
	// backtracking. Assumptions are not supported in this mode.
	NoLearning bool
	// StaticOrder disables VSIDS: decisions pick the lowest-indexed
	// unassigned variable instead of the highest-activity one.
	StaticOrder bool
	// NoRestarts disables Luby restarts.
	NoRestarts bool
	// NoPhaseSaving makes every decision assign false first instead of
	// the saved phase. Legacy spelling of PhasePolicy: PhaseFalse; it
	// wins over a zero (PhaseSaved) PhasePolicy.
	NoPhaseSaving bool
	// Seed, when nonzero, diversifies the search deterministically: the
	// next Solve adds a tiny seeded perturbation to every VSIDS
	// activity (breaking ties differently per seed), and PhaseRandom
	// polarities derive from it. Two solvers in equal state with equal
	// Seed search identically; different seeds explore differently.
	Seed uint64
	// RestartBase, when > 0, overrides the Luby restart unit (default
	// 100 conflicts). Smaller bases restart aggressively, larger ones
	// commit to deeper searches.
	RestartBase int64
	// PhasePolicy selects the polarity assigned by decisions; see the
	// PhasePolicy constants.
	PhasePolicy PhasePolicy
	// MaxConflicts, when > 0, bounds the total number of conflicts
	// before Solve returns Unknown.
	MaxConflicts int64
	// MaxDecisions, when > 0, bounds the total number of decisions
	// before Solve returns Unknown.
	MaxDecisions int64
	// FaultHook, when non-nil, is invoked at every Solve entry and at
	// every conflict boundary; returning true interrupts the solver (the
	// running Solve returns Unknown with StopCause StopInterrupt). The
	// deterministic fault-injection seam for testing degraded paths —
	// see SetFaultHook.
	FaultHook func(FaultEvent, Stats) bool
}

// Stats reports cumulative solver counters.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnts      int64 // clauses learnt (including later deleted)
	Deleted      int64 // learnt clauses deleted by DB reduction
	Exported     int64 // learnt clauses published to a ClauseRing (share.go)
	Imported     int64 // clauses adopted from a ClauseRing
	MaxTrail     int   // deepest trail seen
}

// lit is the internal literal encoding: variable index v (0-based) becomes
// 2v for the positive literal and 2v+1 for the negative one.
type lit uint32

func toInternal(l Lit) lit {
	v := uint32(l.Var() - 1)
	if l.Neg() {
		return lit(2*v + 1)
	}
	return lit(2 * v)
}

func toExternal(l lit) Lit {
	v := Lit(l/2) + 1
	if l&1 == 1 {
		return -v
	}
	return v
}

func (l lit) flip() lit  { return l ^ 1 }
func (l lit) v() uint32  { return uint32(l) / 2 }
func (l lit) sign() bool { return l&1 == 1 } // true means negative

// lbool is a three-valued assignment: 0 undefined, 1 true, 2 false.
type lbool uint8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = 2
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// watcher pairs a watching clause with a "blocker" literal whose
// satisfaction lets propagation skip visiting the clause. It is a flat
// 8-byte pair — pointer-free, so watch lists cost the garbage collector
// nothing to scan.
type watcher struct {
	c       cref
	blocker lit
}

// Solver is an incremental CDCL SAT solver. It is not safe for concurrent
// use. Create with NewSolver or NewSolverOpts; add variables and clauses,
// then call Solve or SolveAssuming any number of times, interleaved with
// further AddClause calls.
type Solver struct {
	opts  Options
	stats Stats

	nVars int
	// ca is the clause arena: every problem and learnt clause lives in
	// one flat slab (see arena.go), addressed by cref offsets.
	ca      arena
	clauses []cref
	learnts []cref

	watches  [][]watcher // indexed by internal lit
	assigns  []lbool     // indexed by var
	level    []int32     // decision level per var
	reason   []cref      // implying clause per var (crefUndef for decisions)
	polarity []bool      // saved phase: last assigned sign (true = negative)
	trail    []lit
	trailLim []int // trail index at each decision level
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	claInc float64

	seen      []byte
	transient []uint32 // vars marked seen by redundant(); cleared per conflict

	// Scratch buffers recycled across calls so the hot path stays
	// allocation-free: learntBuf backs analyze's learnt clause (copied out
	// before being stored), lbdStamp/lbdGen count distinct decision levels
	// without a per-conflict map, and addBuf backs AddClause normalization.
	learntBuf []lit
	lbdStamp  []uint64
	lbdGen    uint64
	addBuf    []lit
	// Simplify pass-2 scratch: a generation-stamped literal-membership
	// mark array replacing per-clause hash sets (see Simplify).
	simpMark []uint64
	simpGen  uint64
	// Arena-compaction scratch: the old→new offset tables (see
	// compactArena), recycled across compactions.
	gcOld []cref
	gcNew []cref
	okay  bool // false once a top-level contradiction is recorded
	model []bool

	conflict []Lit // final conflict clause (negated assumptions subset)

	assumptions []lit

	// no-learning mode bookkeeping: flipped[d] reports whether the
	// decision at level d+1 has already been tried both ways.
	flipped []bool

	maxLearnts   float64
	learntGrowth float64
	restartBase  int64

	proof *Proof // non-nil when DRAT logging is attached

	// seeded records that the Options.Seed activity perturbation has been
	// applied, so repeated Solve calls don't keep re-perturbing.
	seeded bool

	// Clause-sharing attachment (see share.go); shareRing nil when
	// detached. shareSeen tracks the last ring ticket consumed per slot.
	shareRing *ClauseRing
	shareID   int32
	shareLBD  int
	shareIn   bool
	shareSeen []uint64

	stop stopFlag // set by Interrupt; polled at conflict boundaries

	// Per-call work budgets (absolute caps against stats; 0 = none) and
	// the reason the last Solve returned Unknown. See SetBudget/StopCause.
	confLimit int64
	decLimit  int64
	stopCause StopCause
}

// NewSolver returns a solver with default options.
func NewSolver() *Solver { return NewSolverOpts(Options{}) }

// NewSolverOpts returns a solver with the given options.
func NewSolverOpts(opts Options) *Solver {
	s := &Solver{
		opts:         opts,
		varInc:       1.0,
		claInc:       1.0,
		okay:         true,
		maxLearnts:   0, // set on first Solve relative to clause count
		learntGrowth: 1.1,
		restartBase:  100,
	}
	if opts.RestartBase > 0 {
		s.restartBase = opts.RestartBase
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// Options returns a copy of the solver's current options.
func (s *Solver) Options() Options { return s.opts }

// SetOptions replaces the solver's options in place — the portfolio's
// way to diversify a cloned worker without rebuilding it. May only be
// called at decision level 0. A positive RestartBase takes effect
// immediately; a nonzero Seed re-arms the activity perturbation for the
// next Solve. The whole Options value is replaced, FaultHook included.
func (s *Solver) SetOptions(opts Options) {
	if s.decisionLevel() != 0 {
		panic("sat: SetOptions called above decision level 0")
	}
	s.opts = opts
	if opts.RestartBase > 0 {
		s.restartBase = opts.RestartBase
	}
	s.seeded = false
}

// splitmix64 is the SplitMix64 finalizer — an allocation-free way to
// derive per-variable pseudo-random bits from a seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// perturbActivities applies the Options.Seed diversification: tiny
// positive noise — at most varInc·2⁻¹⁰ — on every VSIDS activity, enough
// to break ties differently per seed yet small enough to defer to real
// activity once conflict bumps accumulate. Noise only increases
// activities, so restoring heap order is an up-walk per variable.
func (s *Solver) perturbActivities() {
	s.seeded = true
	scale := s.varInc / 1024
	for v := 0; v < s.nVars; v++ {
		s.activity[v] += float64(splitmix64(s.opts.Seed^uint64(v))>>11) / (1 << 53) * scale
		s.order.update(v)
	}
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of live learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Stats returns a copy of the cumulative solver statistics.
func (s *Solver) Stats() Stats { return s.stats }

// NewVar allocates a fresh variable and returns its index (≥ 1).
func (s *Solver) NewVar() int {
	if len(s.assigns) == cap(s.assigns) {
		// Grow all per-variable slices together, doubling: one-at-a-time
		// variable creation (the arithmetic encoder, query selectors)
		// otherwise reallocates eight slices each on append's less
		// aggressive large-slice growth policy.
		n := 2 * len(s.assigns)
		if n < 64 {
			n = 64
		}
		s.growVarCaps(n)
	}
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.polarity = append(s.polarity, true) // default phase: false
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.order.insert(s.nVars - 1)
	return s.nVars
}

// EnsureVars allocates variables until NumVars ≥ n. Bulk growth (the
// compiler materializes the whole vocabulary in one call) pre-sizes every
// per-variable slice once instead of doubling each through thousands of
// appends.
func (s *Solver) EnsureVars(n int) {
	if n > s.nVars && n > cap(s.assigns) {
		s.growVarCaps(n)
	}
	for s.nVars < n {
		s.NewVar()
	}
}

// growVarCaps reallocates every per-variable slice with capacity for n
// variables, preserving contents.
func (s *Solver) growVarCaps(n int) {
	watches := make([][]watcher, len(s.watches), 2*n)
	copy(watches, s.watches)
	s.watches = watches
	assigns := make([]lbool, len(s.assigns), n)
	copy(assigns, s.assigns)
	s.assigns = assigns
	level := make([]int32, len(s.level), n)
	copy(level, s.level)
	s.level = level
	reason := make([]cref, len(s.reason), n)
	copy(reason, s.reason)
	s.reason = reason
	polarity := make([]bool, len(s.polarity), n)
	copy(polarity, s.polarity)
	s.polarity = polarity
	activity := make([]float64, len(s.activity), n)
	copy(activity, s.activity)
	s.activity = activity
	seen := make([]byte, len(s.seen), n)
	copy(seen, s.seen)
	s.seen = seen
	s.order.grow(n)
}

// ReserveClauses pre-sizes the clause arena for a bulk load of nClauses
// clauses totalling nLits literals, so a compiler splicing a known CNF
// (the delta-merge path hands the exact clause and literal counts over)
// appends into one allocation instead of doubling the slab repeatedly.
// Capacity-only: solver state, clause references, clones, and snapshot
// bytes are identical with or without the call.
func (s *Solver) ReserveClauses(nClauses, nLits int) {
	if nClauses <= 0 && nLits <= 0 {
		return
	}
	s.ca.reserve(nClauses*clsHeaderWords + nLits)
}

// ErrVarRange is returned by AddClause when a literal references variable 0
// or a variable that was never allocated.
var ErrVarRange = errors.New("sat: literal references unallocated variable")

// AddClause adds a clause over DIMACS-style literals. Variables referenced
// beyond NumVars are allocated implicitly. The empty clause makes the
// instance trivially unsatisfiable. AddClause may only be called at
// decision level 0, i.e. not from within a Solve callback.
//
// Returns false if the clause makes the instance unsatisfiable at the top
// level (the solver remains usable; Solve will report Unsat).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called above decision level 0")
	}
	// Allocate implicit variables, then normalize.
	maxVar := 0
	for _, l := range lits {
		if l == 0 {
			panic("sat: literal 0 is invalid")
		}
		if l.Var() > maxVar {
			maxVar = l.Var()
		}
	}
	s.EnsureVars(maxVar)

	// Normalize: drop false/duplicate literals, detect satisfied or
	// tautological clauses. Duplicate detection marks s.seen with a bit
	// per polarity (1 positive, 2 negative); all marks are cleared before
	// any return. s.seen is all-zero here: AddClause runs at level 0,
	// never from inside analyze.
	norm := s.addBuf[:0]
	trivial := false // satisfied at level 0, or a tautology
	shrunk := false
	for _, ext := range lits {
		l := toInternal(ext)
		switch s.value(l) {
		case lTrue:
			trivial = true
		case lFalse:
			shrunk = true
			continue // falsified at level 0: drop
		}
		if trivial {
			break
		}
		v := l.v()
		bit := byte(1)
		if l.sign() {
			bit = 2
		}
		if s.seen[v]&(bit^3) != 0 {
			trivial = true // tautology
			break
		}
		if s.seen[v]&bit != 0 {
			shrunk = true
			continue
		}
		s.seen[v] |= bit
		norm = append(norm, l)
	}
	for _, l := range norm {
		s.seen[l.v()] = 0
	}
	s.addBuf = norm[:0]
	if trivial {
		return true
	}
	// Clauses shortened against level-0 units are RUP lemmas; record them
	// so the proof checker sees the clause the solver actually uses.
	if shrunk && s.proof != nil {
		s.logLearnt(norm)
	}
	switch len(norm) {
	case 0:
		s.okay = false
		s.logEmpty()
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], crefUndef)
		if s.propagate() != crefUndef {
			s.okay = false
			s.logEmpty()
			return false
		}
		return true
	}
	// The arena copies the scratch buffer into the slab; no per-clause
	// allocation.
	c := s.ca.alloc(norm, false)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// attach registers the first two literals of c as watched.
func (s *Solver) attach(c cref) {
	cl := s.ca.lits(c)
	s.watches[cl[0].flip()] = append(s.watches[cl[0].flip()], watcher{c, cl[1]})
	s.watches[cl[1].flip()] = append(s.watches[cl[1].flip()], watcher{c, cl[0]})
}

// detachAll lazily detaches a clause by marking it deleted; propagate
// skips and removes deleted watchers as it encounters them, and arena
// compaction reclaims the slab words.
func (s *Solver) detachAll(c cref) { s.ca.setDeleted(c) }

// value returns the current assignment of an internal literal.
func (s *Solver) value(l lit) lbool {
	a := s.assigns[l.v()]
	if a == lUndef {
		return lUndef
	}
	if l.sign() {
		return a ^ 3 // swaps lTrue and lFalse
	}
	return a
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// uncheckedEnqueue records an assignment implied by from (crefUndef =
// decision or top-level fact).
func (s *Solver) uncheckedEnqueue(l lit, from cref) {
	v := l.v()
	s.assigns[v] = boolToLbool(!l.sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.polarity[v] = l.sign()
	s.trail = append(s.trail, l)
	if len(s.trail) > s.stats.MaxTrail {
		s.stats.MaxTrail = len(s.trail)
	}
}

// Value returns the model value of variable v after a Sat result.
// It panics if the last Solve did not return Sat.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	if v < 1 || v > len(s.model) {
		panic("sat: Value out of range")
	}
	return s.model[v-1]
}

// Model returns the satisfying assignment found by the last Sat solve;
// index i holds the value of variable i+1. The returned slice is owned by
// the solver and valid until the next Solve.
func (s *Solver) Model() []bool { return s.model }

// VerifyModel reports whether model (index v-1 holds variable v's value)
// satisfies every live problem clause, every level-0 fact on the trail,
// and every given assumption — the portfolio's re-check before adopting
// a verdict from a racing worker. It reads the solver but never mutates
// it; the caller must own the solver (not safe concurrently with Solve).
func (s *Solver) VerifyModel(model []bool, assumps []Lit) bool {
	if len(model) < s.nVars {
		return false
	}
	holds := func(l lit) bool { return model[l.v()] != l.sign() }
	for _, a := range assumps {
		if a == 0 || a.Var() > s.nVars || !holds(toInternal(a)) {
			return false
		}
	}
	// Level-0 trail facts: units are absorbed into the trail by AddClause
	// and never reach the clause list, so the model must agree with them.
	bound := len(s.trail)
	if len(s.trailLim) > 0 {
		bound = s.trailLim[0]
	}
	for _, l := range s.trail[:bound] {
		if !holds(l) {
			return false
		}
	}
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		ok := false
		for _, l := range s.ca.lits(c) {
			if holds(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// FinalConflict returns, after an Unsat result from SolveAssuming, a subset
// of the assumptions whose conjunction is already unsatisfiable (the
// "final conflict" or assumption core), as the literals that were assumed.
func (s *Solver) FinalConflict() []Lit { return s.conflict }

// Okay reports whether the instance is still possibly satisfiable at the
// top level (false once an empty clause was derived).
func (s *Solver) Okay() bool { return s.okay }

// Solve decides the instance with no assumptions.
func (s *Solver) Solve() Status { return s.SolveAssuming(nil) }

// SolveAssuming decides the instance under the given assumption literals.
// On Unsat, FinalConflict reports the subset of assumptions used. On
// Unknown, StopCause reports which limit stopped the solve.
func (s *Solver) SolveAssuming(assumps []Lit) Status {
	st := s.solveAssuming(assumps)
	if st == Unknown {
		s.stopCause = s.unknownCause()
	} else {
		s.stopCause = StopNone
	}
	return st
}

func (s *Solver) solveAssuming(assumps []Lit) Status {
	s.model = nil
	s.conflict = nil
	if s.fireFault(EventSolve) {
		s.Interrupt()
	}
	if s.interrupted() {
		// Sticky interrupt (see Interrupt): refuse to start.
		return Unknown
	}
	if s.conflictsExhausted() || s.decisionsExhausted() {
		// A budget already spent by earlier calls: refuse to start
		// rather than run an unbounded search (see SetBudget).
		return Unknown
	}
	if !s.okay {
		return Unsat
	}
	if s.opts.Seed != 0 && !s.seeded {
		s.perturbActivities()
	}
	if s.opts.NoLearning {
		if len(assumps) > 0 {
			panic("sat: assumptions unsupported with NoLearning")
		}
		return s.solveDPLL()
	}
	s.assumptions = s.assumptions[:0]
	for _, a := range assumps {
		if a == 0 {
			panic("sat: literal 0 is invalid")
		}
		s.EnsureVars(a.Var())
		s.assumptions = append(s.assumptions, toInternal(a))
	}
	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 1000 {
			s.maxLearnts = 1000
		}
	}
	defer s.cancelUntil(0)

	var curRestarts int64
	for {
		// Restart boundaries double as clause-import points: the solver
		// is at level 0, so adopting a shared clause is a plain AddClause.
		// An import can expose top-level unsatisfiability (every shared
		// clause is implied by the common formula, so the verdict is
		// sound); FinalConflict stays nil, as on any top-level Unsat.
		if !s.importShared() {
			return Unsat
		}
		budget := s.restartBase * luby(2, curRestarts)
		if s.opts.NoRestarts {
			budget = -1
		}
		st := s.search(budget)
		if st != Unknown {
			return st
		}
		if s.interrupted() {
			return Unknown
		}
		if s.conflictsExhausted() || s.decisionsExhausted() {
			return Unknown
		}
		curRestarts++
		s.stats.Restarts++
	}
}

// search runs CDCL until a verdict, a conflict budget is exhausted
// (returns Unknown to trigger a restart), or the global conflict cap hits.
func (s *Solver) search(conflictBudget int64) Status {
	var conflicts int64
	for {
		if s.interrupted() || s.decisionsExhausted() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			conflicts++
			if s.fireFault(EventConflict) {
				// Forced interrupt at this conflict boundary. A verdict
				// reached at the same boundary (top-level conflict below)
				// still wins; otherwise the loop-top check stops us.
				s.Interrupt()
			}
			if s.decisionLevel() == 0 {
				s.okay = false
				s.logEmpty()
				return Unsat
			}
			learnt, backLevel, lbd := s.analyze(confl)
			s.cancelUntil(backLevel)
			s.logLearnt(learnt)
			s.recordLearnt(learnt, lbd)
			s.exportLearnt(learnt, lbd)
			s.decayActivities()
			continue
		}
		if conflictBudget >= 0 && conflicts >= conflictBudget {
			s.cancelUntil(0)
			return Unknown
		}
		if s.conflictsExhausted() {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
			s.maxLearnts *= s.learntGrowth
		}
		// Assumptions become pseudo-decisions at successive levels.
		next := lit(0)
		haveNext := false
		for s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty level to keep
				// decisionLevel aligned with assumption index.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.analyzeFinal(a.flip())
				return Unsat
			default:
				next = a
				haveNext = true
			}
			break
		}
		if !haveNext {
			v := s.pickBranchVar()
			if v < 0 {
				// All variables assigned: model found.
				s.extractModel()
				return Sat
			}
			s.stats.Decisions++
			next = s.decisionLit(v)
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, crefUndef)
	}
}

// decisionLit chooses the phase for a decision on variable v per the
// configured PhasePolicy (with NoPhaseSaving as the legacy spelling of
// PhaseFalse).
func (s *Solver) decisionLit(v int) lit {
	neg := true // negative literal = assign false
	switch {
	case s.opts.PhasePolicy == PhaseTrue:
		neg = false
	case s.opts.PhasePolicy == PhaseRandom:
		neg = splitmix64(s.opts.Seed^(uint64(v)<<1|1))&1 == 1
	case s.opts.PhasePolicy == PhaseFalse || s.opts.NoPhaseSaving:
		neg = true
	default: // PhaseSaved
		neg = s.polarity[v]
	}
	if neg {
		return lit(2*uint32(v) + 1)
	}
	return lit(2 * uint32(v))
}

// pickBranchVar returns the next unassigned decision variable (0-based),
// or -1 if all variables are assigned.
func (s *Solver) pickBranchVar() int {
	if s.opts.StaticOrder {
		for v := 0; v < s.nVars; v++ {
			if s.assigns[v] == lUndef {
				return v
			}
		}
		return -1
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// extractModel snapshots the current full assignment as the model.
func (s *Solver) extractModel() {
	s.model = make([]bool, s.nVars)
	for v := 0; v < s.nVars; v++ {
		s.model[v] = s.assigns[v] == lTrue
	}
}

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].v()
		s.assigns[v] = lUndef
		s.reason[v] = crefUndef
		if !s.opts.StaticOrder {
			s.order.insert(int(v))
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// recordLearnt installs a learnt clause and asserts its first literal.
// learnt may alias the analyze scratch buffer; the arena copies it.
func (s *Solver) recordLearnt(learnt []lit, lbd int) {
	s.stats.Learnts++
	if len(learnt) == 1 {
		s.uncheckedEnqueue(learnt[0], crefUndef)
		return
	}
	c := s.ca.alloc(learnt, true)
	s.ca.setLBD(c, lbd)
	s.ca.setActivity(c, s.claInc)
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.uncheckedEnqueue(learnt[0], c)
}

// luby computes the Luby restart sequence value for index i with base y.
func luby(y, i int64) int64 {
	size, seq := int64(1), int64(0)
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	pow := int64(1)
	for ; seq > 0; seq-- {
		pow *= y
	}
	return pow
}

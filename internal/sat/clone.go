package sat

// Clone returns a deep copy of the solver that shares no mutable state
// with the original: the clause database (problem and learnt clauses),
// watch lists, trail, and heuristic state (VSIDS activities, order heap,
// saved phases, clause activities) are all copied verbatim, so a clone
// continues exactly where the original stands and two clones of the same
// solver run identical searches. Cloning is the mechanism behind compiled-
// base caching: compile (and Simplify) once, then hand every query its
// own private snapshot.
//
// Clone may only be called at decision level 0 (i.e. not from inside a
// Solve callback); it panics otherwise. The copy deliberately resets
// per-run state rather than inheriting it:
//
//   - Stats are zeroed: a clone accounts for its own work only.
//   - Work budgets (SetBudget) and the last StopCause are cleared.
//   - A pending Interrupt is NOT inherited — the clone is runnable even
//     if the original was stopped; likewise any Watch watchdog keeps
//     targeting the original only.
//   - An attached DRAT proof is NOT cloned: proofs record one solver's
//     derivation history and would be unsound spliced onto another.
//     Call AttachProof on the clone before its first Solve if needed.
//   - The fault hook (Options.FaultHook) IS carried over, like every
//     other option; use SetFaultHook on the clone to change it.
func (s *Solver) Clone() *Solver {
	if s.decisionLevel() != 0 {
		panic("sat: Clone called above decision level 0")
	}
	// Clone leaves forwarding marks (clause.cloneIdx) in the source
	// clauses while it runs; serialize so concurrent clones of one
	// solver — the compiled-base cache clones a shared base from many
	// query goroutines — never see each other's marks.
	s.cloneMu.Lock()
	defer s.cloneMu.Unlock()
	n := &Solver{
		opts:         s.opts,
		nVars:        s.nVars,
		qhead:        s.qhead,
		varInc:       s.varInc,
		claInc:       s.claInc,
		okay:         s.okay,
		maxLearnts:   s.maxLearnts,
		learntGrowth: s.learntGrowth,
		restartBase:  s.restartBase,
	}

	// Deleted clauses are detached lazily, so watch lists and reasons may
	// reference clauses that are in neither s.clauses nor s.learnts; the
	// memoized cloneClause maps those on demand, preserving identity.
	// Memoization uses forwarding marks written into the source clauses
	// (cloneIdx = 1+index into dsts, reset before returning) rather than a
	// pointer map — on an 80k-clause base the map's inserts and lookups
	// were the bulk of Clone's cost. Clause structs and their literal
	// arrays come from two slabs sized for the live database (one
	// allocation each instead of two per clause); lazily-discovered
	// stragglers fall back to the heap.
	nClauses := len(s.clauses) + len(s.learnts)
	nLits := 0
	for _, c := range s.clauses {
		nLits += len(c.lits)
	}
	for _, c := range s.learnts {
		nLits += len(c.lits)
	}
	clauseSlab := make([]clause, nClauses)
	litSlab := make([]lit, nLits)
	srcs := make([]*clause, 0, nClauses)
	dsts := make([]*clause, 0, nClauses)
	cloneClause := func(c *clause) *clause {
		if c == nil {
			return nil
		}
		if c.cloneIdx != 0 {
			return dsts[c.cloneIdx-1]
		}
		var d *clause
		if len(clauseSlab) > 0 {
			d = &clauseSlab[0]
			clauseSlab = clauseSlab[1:]
		} else {
			d = new(clause)
		}
		if len(c.lits) <= len(litSlab) {
			// Full-slice cap: runtime appends (there are none on clause
			// lits, but belt and braces) can never bleed into a neighbor.
			d.lits = litSlab[:len(c.lits):len(c.lits)]
			litSlab = litSlab[len(c.lits):]
			copy(d.lits, c.lits)
		} else {
			d.lits = append([]lit(nil), c.lits...)
		}
		d.learnt = c.learnt
		d.deleted = c.deleted
		d.activity = c.activity
		d.lbd = c.lbd
		srcs = append(srcs, c)
		dsts = append(dsts, d)
		c.cloneIdx = int32(len(dsts))
		return d
	}
	n.clauses = make([]*clause, len(s.clauses))
	for i, c := range s.clauses {
		n.clauses[i] = cloneClause(c)
	}
	n.learnts = make([]*clause, len(s.learnts))
	for i, c := range s.learnts {
		n.learnts[i] = cloneClause(c)
	}
	// Watch lists are copied verbatim rather than re-attached: their order
	// determines propagation order, and a clone must search identically.
	// One watcher slab backs every list; full-slice caps keep runtime
	// appends (watch moves) from bleeding across lists.
	nWatchers := 0
	for _, ws := range s.watches {
		nWatchers += len(ws)
	}
	watcherSlab := make([]watcher, nWatchers)
	n.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) == 0 {
			continue
		}
		nw := watcherSlab[:len(ws):len(ws)]
		watcherSlab = watcherSlab[len(ws):]
		for j, w := range ws {
			nw[j] = watcher{c: cloneClause(w.c), blocker: w.blocker}
		}
		n.watches[i] = nw
	}
	n.reason = make([]*clause, len(s.reason))
	for i, c := range s.reason {
		n.reason[i] = cloneClause(c)
	}

	// Reset the forwarding marks so the source is pristine for the next
	// Clone (and so a clone of the clone starts unmarked — the slab
	// structs were zeroed on allocation and marked only via srcs).
	for _, c := range srcs {
		c.cloneIdx = 0
	}

	n.assigns = append([]lbool(nil), s.assigns...)
	n.level = append([]int32(nil), s.level...)
	n.polarity = append([]bool(nil), s.polarity...)
	n.trail = append([]lit(nil), s.trail...)
	n.trailLim = append([]int(nil), s.trailLim...)
	n.activity = append([]float64(nil), s.activity...)
	n.order = s.order.clone(&n.activity)
	n.seen = make([]byte, len(s.seen))
	return n
}

package sat

// Clone returns a deep copy of the solver that shares no mutable state
// with the original: the clause database (problem and learnt clauses),
// watch lists, trail, and heuristic state (VSIDS activities, order heap,
// saved phases, clause activities) are all copied verbatim, so a clone
// continues exactly where the original stands and two clones of the same
// solver run identical searches. Cloning is the mechanism behind compiled-
// base caching: compile (and Simplify) once, then hand every query its
// own private snapshot.
//
// With the arena clause database, Clone is a near-memcpy: the whole
// clause DB is one slab copy, and clause references (crefs) mean the same
// clause in source and copy, so the clause lists, watch lists, and reason
// array copy verbatim with no per-clause work. Clone is read-only on the
// source; any number of goroutines may clone one frozen solver
// concurrently (the compiled-base cache does exactly that).
//
// Clone may only be called at decision level 0 (i.e. not from inside a
// Solve callback); it panics otherwise. The copy deliberately resets
// per-run state rather than inheriting it:
//
//   - Stats are zeroed: a clone accounts for its own work only.
//   - Work budgets (SetBudget) and the last StopCause are cleared.
//   - A pending Interrupt is NOT inherited — the clone is runnable even
//     if the original was stopped; likewise any Watch watchdog keeps
//     targeting the original only.
//   - An attached DRAT proof is NOT cloned: proofs record one solver's
//     derivation history and would be unsound spliced onto another.
//     Call AttachProof on the clone before its first Solve if needed.
//   - The fault hook (Options.FaultHook) IS carried over, like every
//     other option; use SetFaultHook on the clone to change it.
func (s *Solver) Clone() *Solver {
	if s.decisionLevel() != 0 {
		panic("sat: Clone called above decision level 0")
	}
	// A clause-sharing attachment (SetShare) is NOT inherited: the ring
	// pairs a solver with a portfolio race, and a clone belongs to none
	// until its own race attaches it. The seeded flag IS copied — the
	// clone's activities already carry any applied perturbation.
	n := &Solver{
		opts:         s.opts,
		nVars:        s.nVars,
		qhead:        s.qhead,
		varInc:       s.varInc,
		claInc:       s.claInc,
		okay:         s.okay,
		maxLearnts:   s.maxLearnts,
		learntGrowth: s.learntGrowth,
		restartBase:  s.restartBase,
		seeded:       s.seeded,
	}
	n.ca = s.ca.clone()
	n.clauses = append([]cref(nil), s.clauses...)
	n.learnts = append([]cref(nil), s.learnts...)
	n.reason = make([]cref, len(s.reason), s.nVars+32)
	copy(n.reason, s.reason)

	// Watch lists are copied verbatim rather than re-attached: their order
	// determines propagation order, and a clone must search identically.
	// One watcher slab backs every list; full-slice caps keep runtime
	// appends (watch moves) from bleeding across lists.
	nWatchers := 0
	for _, ws := range s.watches {
		nWatchers += len(ws)
	}
	watcherSlab := make([]watcher, 0, nWatchers)
	n.watches = make([][]watcher, len(s.watches), 2*(s.nVars+32))
	for i, ws := range s.watches {
		if len(ws) == 0 {
			continue
		}
		off := len(watcherSlab)
		watcherSlab = append(watcherSlab, ws...)
		n.watches[i] = watcherSlab[off:len(watcherSlab):len(watcherSlab)]
	}

	// Per-variable slices carry a little slack capacity: queries layer a
	// handful of selector variables onto each clone (NewVar), and exact-
	// capacity slices would make the first of those reallocate every
	// per-variable array at full size.
	const slack = 32
	nv := s.nVars + slack
	n.assigns = make([]lbool, len(s.assigns), nv)
	copy(n.assigns, s.assigns)
	n.level = make([]int32, len(s.level), nv)
	copy(n.level, s.level)
	n.polarity = make([]bool, len(s.polarity), nv)
	copy(n.polarity, s.polarity)
	// The trail grows toward nVars during search; size it once.
	n.trail = make([]lit, len(s.trail), nv)
	copy(n.trail, s.trail)
	n.trailLim = append([]int(nil), s.trailLim...)
	n.activity = make([]float64, len(s.activity), nv)
	copy(n.activity, s.activity)
	n.order = s.order.clone(&n.activity)
	n.order.grow(nv)
	n.seen = make([]byte, len(s.seen), nv)
	return n
}

package sat

// varHeap is a binary max-heap of variable indices ordered by activity,
// with an index table supporting in-place priority updates (the classic
// MiniSat order heap).
type varHeap struct {
	activity *[]float64
	heap     []int
	indices  []int // indices[v] is v's position in heap, or -1
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

// clone deep-copies the heap, rebinding it to the given activity slice
// (the clone's own, so later bumps don't couple the two solvers).
func (h *varHeap) clone(activity *[]float64) *varHeap {
	return &varHeap{
		activity: activity,
		heap:     append([]int(nil), h.heap...),
		indices:  append([]int(nil), h.indices...),
	}
}

// grow pre-sizes the heap's backing arrays for n variables (see
// Solver.EnsureVars).
func (h *varHeap) grow(n int) {
	if cap(h.heap) < n {
		heap := make([]int, len(h.heap), n)
		copy(heap, h.heap)
		h.heap = heap
	}
	if cap(h.indices) < n {
		indices := make([]int, len(h.indices), n)
		copy(indices, h.indices)
		h.indices = indices
	}
}

func (h *varHeap) less(a, b int) bool {
	act := *h.activity
	return act[a] > act[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v int) bool {
	return v < len(h.indices) && h.indices[v] >= 0
}

// insert adds v if absent.
func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.indices[v])
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.up(h.indices[v])
	}
}

// rebuild re-establishes heap order after activities were rewritten
// wholesale (warm-start profiles may lower them; update only handles
// increases). Membership is unchanged — only order is restored, by the
// classic bottom-up heapify.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// removeMax pops the highest-activity variable.
func (h *varHeap) removeMax() int {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.indices[top] = -1
	h.heap = h.heap[:len(h.heap)-1]
	if len(h.heap) > 1 {
		h.down(0)
	}
	return top
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		left := 2*i + 1
		if left >= len(h.heap) {
			break
		}
		child := left
		if right := left + 1; right < len(h.heap) && h.less(h.heap[right], h.heap[left]) {
			child = right
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = i
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i
}

package sat

import "testing"

// TestPropagateAllocFree pins the hot-loop allocation budget at zero:
// once the trail, watch lists, and heap have reached steady-state
// capacity, a decision followed by unit propagation across a long
// implication chain and a backtrack must not touch the allocator at
// all. The clause arena is what makes this possible — watchers are
// pointer-free {cref, blocker} pairs and clause literals live in the
// flat slab — so any future allocation on this path is a regression
// against the DESIGN.md §11 layout.
func TestPropagateAllocFree(t *testing.T) {
	s := NewSolver()
	const n = 256
	s.EnsureVars(n)
	// v_i -> v_{i+1}: one decision at the chain head propagates n-1 units.
	for i := 1; i < n; i++ {
		if !s.AddClause(Lit(-i), Lit(i+1)) {
			t.Fatal("chain clause rejected")
		}
	}
	run := func() {
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(lit(0), crefUndef) // decide v1 = true
		if confl := s.propagate(); confl != crefUndef {
			t.Fatal("unexpected conflict in implication chain")
		}
		if len(s.trail) != n {
			t.Fatalf("chain propagated %d of %d vars", len(s.trail), n)
		}
		s.cancelUntil(0)
	}
	run() // warm-up: grow trail/trailLim to steady-state capacity
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("decide+propagate+backtrack allocated %.1f allocs/run; budget is 0", allocs)
	}
}

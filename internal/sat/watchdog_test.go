package sat

import (
	"context"
	"testing"
	"time"
)

// phpClauses builds the PHP(n+1, n) clause list (unsatisfiable) without
// touching a solver, for portfolio and fresh-solver tests.
func phpClauses(n int) (clauses [][]Lit, nVars int) {
	v := func(p, h int) Lit { return Lit(p*n + h + 1) }
	for p := 0; p < n+1; p++ {
		var c []Lit
		for h := 0; h < n; h++ {
			c = append(c, v(p, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+1; p1++ {
			for p2 := p1 + 1; p2 < n+1; p2++ {
				clauses = append(clauses, []Lit{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return clauses, (n + 1) * n
}

func TestSetBudgetConflicts(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 8, 7) // needs far more than 5 conflicts
	s.SetBudget(5, 0)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted solve returned %v, want Unknown", st)
	}
	if s.StopCause() != StopConflicts {
		t.Fatalf("StopCause = %v, want StopConflicts", s.StopCause())
	}
	if got := s.Stats().Conflicts; got < 5 {
		t.Fatalf("stats report %d conflicts, want >= 5", got)
	}
	// Lifting the budget lets the same solver finish the proof.
	s.SetBudget(0, 0)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("unbudgeted re-solve returned %v, want Unsat", st)
	}
	if s.StopCause() != StopNone {
		t.Fatalf("StopCause after verdict = %v, want StopNone", s.StopCause())
	}
}

func TestSetBudgetDecisions(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 8, 7)
	s.SetBudget(0, 3)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("decision-budgeted solve returned %v, want Unknown", st)
	}
	if s.StopCause() != StopDecisions {
		t.Fatalf("StopCause = %v, want StopDecisions", s.StopCause())
	}
}

func TestSetBudgetReArm(t *testing.T) {
	// Each SetBudget call grants a fresh allowance relative to work
	// already done, so repeated phases make forward progress and the
	// accumulated budget eventually completes the proof.
	s := NewSolver()
	pigeonhole(s, 7, 6)
	for phase := 0; phase < 10000; phase++ {
		s.SetBudget(20, 0)
		switch st := s.Solve(); st {
		case Unsat:
			return // proof finished across re-armed phases
		case Unknown:
			if s.StopCause() != StopConflicts {
				t.Fatalf("phase %d: StopCause = %v, want StopConflicts", phase, s.StopCause())
			}
		default:
			t.Fatalf("phase %d: got %v", phase, st)
		}
	}
	t.Fatal("re-armed phases never completed the proof")
}

func TestFaultHookSolveEntry(t *testing.T) {
	s := NewSolver()
	s.AddClause(1, 2)
	s.SetFaultHook(func(ev FaultEvent, _ Stats) bool { return ev == EventSolve })
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve-entry fault returned %v, want Unknown", st)
	}
	if s.StopCause() != StopInterrupt {
		t.Fatalf("StopCause = %v, want StopInterrupt", s.StopCause())
	}
	// Removing the hook and clearing the (sticky) interrupt restores the
	// solver.
	s.SetFaultHook(nil)
	s.ClearInterrupt()
	if st := s.Solve(); st != Sat {
		t.Fatalf("recovered solve returned %v, want Sat", st)
	}
}

func TestFaultHookNthConflict(t *testing.T) {
	const n = 4
	s := NewSolver()
	pigeonhole(s, 8, 7)
	s.SetFaultHook(func(ev FaultEvent, st Stats) bool {
		return ev == EventConflict && st.Conflicts >= n
	})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("Nth-conflict fault returned %v, want Unknown", st)
	}
	if s.StopCause() != StopInterrupt {
		t.Fatalf("StopCause = %v, want StopInterrupt", s.StopCause())
	}
	if got := s.Stats().Conflicts; got != n {
		t.Fatalf("stopped after %d conflicts, want exactly %d", got, n)
	}
}

func TestFaultHookObservesWithoutTripping(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 6, 5)
	sawSolve, sawConflict := false, false
	s.SetFaultHook(func(ev FaultEvent, _ Stats) bool {
		switch ev {
		case EventSolve:
			sawSolve = true
		case EventConflict:
			sawConflict = true
		}
		return false
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("observed solve returned %v, want Unsat", st)
	}
	if !sawSolve || !sawConflict {
		t.Fatalf("hook saw solve=%v conflict=%v, want both", sawSolve, sawConflict)
	}
}

func TestWatchExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSolver()
	s.AddClause(1)
	release := Watch(ctx, s)
	defer release()
	// The interrupt is set synchronously for an already-done context, so
	// the refusal is deterministic, not racy.
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve under expired context returned %v, want Unknown", st)
	}
	if s.StopCause() != StopInterrupt {
		t.Fatalf("StopCause = %v, want StopInterrupt", s.StopCause())
	}
}

func TestWatchDeadlineStopsHardSolve(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 12, 11) // minutes of work, far past the deadline
	deadline := 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	release := Watch(ctx, s)
	defer release()
	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)
	if st != Unknown {
		t.Fatalf("deadline solve returned %v, want Unknown", st)
	}
	if s.StopCause() != StopInterrupt {
		t.Fatalf("StopCause = %v, want StopInterrupt", s.StopCause())
	}
	// Generous bound: the solver polls at conflict boundaries, so it must
	// stop within a small multiple of the deadline, never hang.
	if elapsed > 10*deadline+2*time.Second {
		t.Fatalf("solve ran %s past a %s deadline", elapsed, deadline)
	}
}

func TestWatchReleaseDisarms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSolver()
	s.AddClause(1, 2)
	release := Watch(ctx, s)
	release() // disarm before the cancel fires
	cancel()
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve after released watchdog returned %v, want Sat", st)
	}
	// Background contexts are a no-op watch.
	release = Watch(context.Background(), s)
	release()
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve under background watch returned %v, want Sat", st)
	}
}

func TestWatchGroupInterruptsRegisteredSolvers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := WatchAll(ctx)
	defer g.Release()
	var solvers []*Solver
	for i := 0; i < 3; i++ {
		s := NewSolver()
		pigeonhole(s, 12, 11) // minutes of work without the interrupt
		g.Add(s)
		solvers = append(solvers, s)
	}
	done := make(chan Status, len(solvers))
	for _, s := range solvers {
		s := s
		go func() { done <- s.Solve() }()
	}
	cancel()
	for range solvers {
		select {
		case st := <-done:
			if st != Unknown {
				t.Fatalf("interrupted worker returned %v, want Unknown", st)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("a registered worker hung past the group cancel")
		}
	}
	for i, s := range solvers {
		if s.StopCause() != StopInterrupt {
			t.Fatalf("worker %d: StopCause = %v, want StopInterrupt", i, s.StopCause())
		}
	}
}

func TestWatchGroupAddAfterFire(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := WatchAll(ctx)
	defer g.Release()
	// The group starts fired: Add must interrupt synchronously, so a
	// drained pool cannot start new work.
	s := NewSolver()
	s.AddClause(1)
	g.Add(s)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("solve after fired Add returned %v, want Unknown", st)
	}
	if s.StopCause() != StopInterrupt {
		t.Fatalf("StopCause = %v, want StopInterrupt", s.StopCause())
	}
}

func TestWatchGroupDetachAndRelease(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := WatchAll(ctx)
	s := NewSolver()
	s.AddClause(1, 2)
	detach := g.Add(s)
	detach() // worker finished before the context fired
	g.Release()
	detach() // safe after Release
	cancel()
	if st := s.Solve(); st != Sat {
		t.Fatalf("detached solver returned %v, want Sat", st)
	}

	// An inert group (no cancellable context) is pure bookkeeping.
	inert := WatchAll(context.Background())
	d := inert.Add(s)
	d()
	inert.Release()
	s2 := NewSolver()
	s2.AddClause(3)
	inert2 := WatchAll(nil)
	inert2.Add(s2)
	inert2.Release()
	if st := s2.Solve(); st != Sat {
		t.Fatalf("solver under inert group returned %v, want Sat", st)
	}
}

func TestStopCauseStrings(t *testing.T) {
	cases := map[StopCause]string{
		StopNone:      "none",
		StopInterrupt: "interrupt",
		StopConflicts: "conflict budget",
		StopDecisions: "decision budget",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if EventSolve.String() != "solve" || EventConflict.String() != "conflict" {
		t.Error("FaultEvent strings wrong")
	}
}

// TestPortfolioDrainsDeliveredVerdict is the regression test for the
// cancellation race: a worker that reaches its verdict at the same
// instant the context is cancelled must win, not be thrown away. The
// fault hook cancels the context deterministically at the solver's final
// conflict (learned from a probe run), so every iteration exercises the
// exact race window.
func TestPortfolioDrainsDeliveredVerdict(t *testing.T) {
	clauses, nVars := phpClauses(6)

	// Probe: how many conflicts does the default configuration need?
	probe := NewSolver()
	probe.EnsureVars(nVars)
	for _, c := range clauses {
		probe.AddClause(c...)
	}
	if st := probe.Solve(); st != Unsat {
		t.Fatalf("probe returned %v, want Unsat", st)
	}
	final := probe.Stats().Conflicts
	if final == 0 {
		t.Fatal("probe finished without conflicts; instance too easy for the race")
	}

	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		hook := func(ev FaultEvent, st Stats) bool {
			if ev == EventConflict && st.Conflicts == final {
				// Cancel at the exact conflict that completes the proof:
				// the verdict lands together with ctx.Done.
				cancel()
			}
			return false
		}
		res := SolvePortfolio(ctx, clauses, nVars, []Options{{FaultHook: hook}})
		cancel()
		if res.Status != Unsat || res.Winner != 0 {
			t.Fatalf("iteration %d: got %+v, want the delivered Unsat verdict", i, res)
		}
	}
}

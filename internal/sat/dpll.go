package sat

// solveDPLL decides the instance without clause learning: plain DPLL with
// unit propagation, chronological backtracking, and (optionally) the same
// branching heuristics. Used by the "no learning" ablation benchmark.
func (s *Solver) solveDPLL() Status {
	defer s.cancelUntil(0)
	// flippedAt[d] reports whether the decision opening level d+1 has
	// already been tried in both phases.
	s.flipped = s.flipped[:0]
	for {
		if s.interrupted() || s.decisionsExhausted() {
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.stats.Conflicts++
			if s.fireFault(EventConflict) {
				s.Interrupt()
			}
			// Backtrack chronologically to the deepest unflipped decision.
			level := s.decisionLevel()
			for level > 0 && s.flipped[level-1] {
				level--
			}
			if level == 0 {
				s.okay = false
				return Unsat
			}
			// The decision literal opening `level`.
			dec := s.trail[s.trailLim[level-1]]
			s.cancelUntil(level - 1)
			s.flipped = s.flipped[:level-1]
			// Re-open the level with the flipped phase.
			s.trailLim = append(s.trailLim, len(s.trail))
			s.flipped = append(s.flipped, true)
			s.uncheckedEnqueue(dec.flip(), crefUndef)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			s.extractModel()
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.flipped = append(s.flipped, false)
		s.uncheckedEnqueue(s.decisionLit(v), crefUndef)
		if s.conflictsExhausted() {
			return Unknown
		}
	}
}

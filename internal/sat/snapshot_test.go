package sat

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// snapshotStates enumerates solver states worth snapshotting: pristine,
// post-Simplify (deleted stragglers in watch lists), post-Solve (learnts,
// activities, saved phases), and top-level-contradictory.
func snapshotStates(t *testing.T) map[string]*Solver {
	t.Helper()
	states := make(map[string]*Solver)

	fresh := NewSolver()
	satInstance(fresh)
	states["fresh"] = fresh

	simplified := NewSolver()
	satInstance(simplified)
	simplified.AddClause(1)
	simplified.Simplify()
	states["simplified"] = simplified

	solved := NewSolver()
	php(solved, 5)
	if st := solved.Solve(); st != Unsat {
		t.Fatalf("php(6,5): got %v, want Unsat", st)
	}
	states["solved"] = solved

	solvedSat := NewSolver()
	satInstance(solvedSat)
	if st := solvedSat.Solve(); st != Sat {
		t.Fatalf("satInstance: got %v, want Sat", st)
	}
	states["solved-sat"] = solvedSat

	contradictory := NewSolver()
	contradictory.AddClause(1)
	contradictory.AddClause(-1)
	states["contradictory"] = contradictory

	return states
}

// TestSnapshotRestoreSolvesIdentically is the restore-equivalence
// differential: a restored solver must behave exactly like a Clone of the
// original — same statuses, same models, same search statistics — across
// the representative solver states.
func TestSnapshotRestoreSolvesIdentically(t *testing.T) {
	for name, s := range snapshotStates(t) {
		t.Run(name, func(t *testing.T) {
			clone := s.Clone()
			restored, err := RestoreSnapshot(s.Snapshot())
			if err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			assumps := [][]Lit{nil, {-1}, {1, 7}}
			if s.NumVars() < 7 {
				assumps = [][]Lit{nil, {-1}, {1}}
			}
			for _, as := range assumps {
				stC := clone.SolveAssuming(as)
				stR := restored.SolveAssuming(as)
				if stC != stR {
					t.Fatalf("assuming %v: clone %v, restored %v", as, stC, stR)
				}
				if !reflect.DeepEqual(clone.Model(), restored.Model()) {
					t.Fatalf("assuming %v: models differ\nclone    %v\nrestored %v",
						as, clone.Model(), restored.Model())
				}
				if !reflect.DeepEqual(clone.FinalConflict(), restored.FinalConflict()) {
					t.Fatalf("assuming %v: final conflicts differ: clone %v, restored %v",
						as, clone.FinalConflict(), restored.FinalConflict())
				}
				if clone.Stats() != restored.Stats() {
					t.Fatalf("assuming %v: search diverged: clone %+v, restored %+v",
						as, clone.Stats(), restored.Stats())
				}
			}
		})
	}
}

// TestSnapshotDeterministic: the same solver state must serialize to the
// same bytes, and a restored solver must re-serialize to those bytes —
// snapshots are canonical, which the disk cache's CRC story relies on.
func TestSnapshotDeterministic(t *testing.T) {
	for name, s := range snapshotStates(t) {
		t.Run(name, func(t *testing.T) {
			snap := s.Snapshot()
			if again := s.Snapshot(); !bytes.Equal(snap, again) {
				t.Fatalf("two snapshots of one state differ (%d vs %d bytes)", len(snap), len(again))
			}
			restored, err := RestoreSnapshot(snap)
			if err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			if resnap := restored.Snapshot(); !bytes.Equal(snap, resnap) {
				t.Fatalf("restored solver re-serializes differently (%d vs %d bytes)", len(snap), len(resnap))
			}
		})
	}
}

// TestSnapshotIndependence: mutating a restored solver must not leak into
// the original (they share no clause storage).
func TestSnapshotIndependence(t *testing.T) {
	a := NewSolver()
	satInstance(a)
	restored, err := RestoreSnapshot(a.Snapshot())
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	restored.AddClause(-1)
	restored.AddClause(-2)
	restored.AddClause(-3)
	if st := restored.Solve(); st != Unsat {
		t.Fatalf("restored with extra clauses: got %v, want Unsat", st)
	}
	if st := a.Solve(); st != Sat {
		t.Fatalf("original after restored mutated: got %v, want Sat", st)
	}
}

func TestSnapshotPanicsAboveLevelZero(t *testing.T) {
	s := NewSolver()
	satInstance(s)
	s.trailLim = append(s.trailLim, len(s.trail)) // simulate an open decision level
	defer func() {
		if recover() == nil {
			t.Fatalf("Snapshot above level 0 did not panic")
		}
	}()
	s.Snapshot()
}

// TestRestoreSnapshotRejectsTruncation: every proper prefix of a valid
// snapshot must fail with ErrBadSnapshot — never panic, never succeed.
func TestRestoreSnapshotRejectsTruncation(t *testing.T) {
	s := NewSolver()
	satInstance(s)
	s.Solve()
	snap := s.Snapshot()
	for n := 0; n < len(snap); n++ {
		if _, err := RestoreSnapshot(snap[:n]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix of %d/%d bytes: got err %v, want ErrBadSnapshot", n, len(snap), err)
		}
	}
	// Trailing garbage is also rejected: the format is self-delimiting.
	if _, err := RestoreSnapshot(append(append([]byte{}, snap...), 0)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte: got err %v, want ErrBadSnapshot", err)
	}
}

// TestRestoreSnapshotOOMGuard: hostile length prefixes must be rejected
// before any allocation proportional to the claimed (not actual) size.
func TestRestoreSnapshotOOMGuard(t *testing.T) {
	// A header that declares ~2^50 variables in a few dozen bytes.
	huge := binary.LittleEndian.AppendUint32(nil, snapshotVersion)
	huge = binary.AppendUvarint(huge, 1<<50)
	if _, err := RestoreSnapshot(huge); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("huge nVars: got err %v, want ErrBadSnapshot", err)
	}

	// A plausible small header followed by a clause section that claims
	// 2^40 clauses.
	s := NewSolver()
	satInstance(s)
	snap := s.Snapshot()
	r := &snapReader{b: snap}
	r.u32("version")
	r.uvarint("nVars")
	r.byte("okay")
	r.uvarint("qhead")
	r.uvarint("restartBase")
	for i := 0; i < 4; i++ {
		r.f64("scalar")
	}
	forged := append([]byte{}, snap[:r.off]...)
	forged = binary.AppendUvarint(forged, 1<<40)
	if _, err := RestoreSnapshot(forged); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("huge clause count: got err %v, want ErrBadSnapshot", err)
	}
}

func TestRestoreSnapshotRejectsWrongVersion(t *testing.T) {
	s := NewSolver()
	satInstance(s)
	snap := s.Snapshot()
	// Both directions of skew must be rejected up front: a future format
	// this decoder has never seen, and the v1 per-clause layout that the
	// arena rewrite (v2) replaced — a v1 body read as an arena slab would
	// be garbage, so the version gate is the only line of defense.
	for _, v := range []uint32{snapshotVersion + 1, 1} {
		binary.LittleEndian.PutUint32(snap, v)
		if _, err := RestoreSnapshot(snap); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("version %d: got err %v, want ErrBadSnapshot", v, err)
		}
	}
}

// restoreBudgetedProbe solve-checks a restored solver under a tight budget
// so fuzz inputs that restore successfully can't stall the fuzzer.
func restoreBudgetedProbe(s *Solver) {
	if s.NumVars() > 1<<12 {
		return
	}
	s.SetBudget(200, 2000)
	s.Solve()
}

// FuzzRestoreSnapshot hammers the decoder with mutated snapshots. The
// contract under arbitrary bytes: a typed error or a structurally sound
// solver — never a panic, never an input-amplifying allocation. When the
// decode succeeds, the restored solver must survive a (budgeted) solve
// and re-serialize to bytes that restore again.
func FuzzRestoreSnapshot(f *testing.F) {
	seed := func(build func(s *Solver)) {
		s := NewSolver()
		build(s)
		f.Add(s.Snapshot())
	}
	seed(func(s *Solver) { satInstance(s) })
	seed(func(s *Solver) {
		satInstance(s)
		s.AddClause(1)
		s.Simplify()
	})
	seed(func(s *Solver) {
		php(s, 4)
		s.Solve()
	})
	seed(func(s *Solver) {
		s.AddClause(1)
		s.AddClause(-1)
	})
	seed(func(s *Solver) {}) // empty solver
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		s, err := RestoreSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("non-typed error from RestoreSnapshot: %v", err)
			}
			if s != nil {
				t.Fatalf("RestoreSnapshot returned both a solver and an error")
			}
			return
		}
		// The decode accepted the bytes, so they describe a structurally
		// valid level-0 solver; solving it must not fault.
		restoreBudgetedProbe(s)
		// And the accepted state must round-trip.
		resnap := s.Snapshot()
		if _, err := RestoreSnapshot(resnap); err != nil {
			t.Fatalf("re-snapshot of accepted input failed to restore: %v", err)
		}
	})
}

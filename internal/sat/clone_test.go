package sat

import (
	"reflect"
	"testing"
)

// php builds the pigeonhole principle PHP(n+1, n): unsatisfiable, with a
// non-trivial search, so clones exercise learning and restarts.
func php(s *Solver, holes int) {
	pigeons := holes + 1
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		row := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = v(p, h)
		}
		s.AddClause(row...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
}

// satInstance builds a satisfiable instance with some structure.
func satInstance(s *Solver) {
	s.EnsureVars(12)
	s.AddClause(1, 2, 3)
	s.AddClause(-1, 4)
	s.AddClause(-2, 5)
	s.AddClause(-3, 6)
	s.AddClause(-4, -5)
	s.AddClause(7, 8)
	s.AddClause(-7, 9, 10)
	s.AddClause(-9, -10)
	s.AddClause(11, -12)
	s.AddClause(-11, 12, 1)
}

func TestCloneSolvesIdentically(t *testing.T) {
	a := NewSolver()
	satInstance(a)
	b := a.Clone()

	stA := a.Solve()
	stB := b.Solve()
	if stA != Sat || stB != Sat {
		t.Fatalf("statuses: original %v, clone %v; want Sat, Sat", stA, stB)
	}
	if !reflect.DeepEqual(a.Model(), b.Model()) {
		t.Fatalf("models differ:\noriginal %v\nclone    %v", a.Model(), b.Model())
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("search diverged: original %+v, clone %+v", a.Stats(), b.Stats())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewSolver()
	satInstance(a)
	b := a.Clone()

	// Constrain only the clone; the original must keep its solutions.
	b.AddClause(-1)
	b.AddClause(-2)
	b.AddClause(-3)
	if st := b.Solve(); st != Unsat {
		t.Fatalf("clone with extra clauses: got %v, want Unsat (1∨2∨3 blocked)", st)
	}
	if st := a.Solve(); st != Sat {
		t.Fatalf("original after clone mutated: got %v, want Sat", st)
	}

	// And the reverse: solving the original must not disturb a new clone.
	c := a.Clone()
	a.AddClause(-1)
	if st := c.Solve(); st != Sat {
		t.Fatalf("clone after original mutated: got %v, want Sat", st)
	}
}

func TestCloneAfterSolveContinuesIdentically(t *testing.T) {
	// Solve once so the original holds learnt clauses and heuristic state,
	// then clone and run an incremental query on both.
	a := NewSolver()
	php(a, 5)
	if st := a.Solve(); st != Unsat {
		t.Fatalf("php(6,5): got %v, want Unsat", st)
	}

	b := NewSolver()
	satInstance(b)
	if st := b.Solve(); st != Sat {
		t.Fatalf("setup: got %v, want Sat", st)
	}
	c := b.Clone()
	assumps := []Lit{-1, 7}
	stB := b.SolveAssuming(assumps)
	stC := c.SolveAssuming(assumps)
	if stB != stC {
		t.Fatalf("post-solve clone diverged: original %v, clone %v", stB, stC)
	}
	if stB == Sat && !reflect.DeepEqual(b.Model(), c.Model()) {
		t.Fatalf("models differ after incremental solve")
	}
}

func TestCloneFinalConflictMatches(t *testing.T) {
	a := NewSolver()
	a.EnsureVars(4)
	a.AddClause(-1, -2) // assuming 1 and 2 together is contradictory
	a.AddClause(3, 4)
	b := a.Clone()

	assumps := []Lit{1, 2, 3}
	if st := a.SolveAssuming(assumps); st != Unsat {
		t.Fatalf("original: got %v, want Unsat", st)
	}
	if st := b.SolveAssuming(assumps); st != Unsat {
		t.Fatalf("clone: got %v, want Unsat", st)
	}
	if !reflect.DeepEqual(a.FinalConflict(), b.FinalConflict()) {
		t.Fatalf("final conflicts differ: original %v, clone %v",
			a.FinalConflict(), b.FinalConflict())
	}
}

func TestCloneResetsRunState(t *testing.T) {
	a := NewSolver()
	satInstance(a)
	a.Interrupt()
	a.SetBudget(1, 1)
	if st := a.Solve(); st != Unknown {
		t.Fatalf("interrupted original: got %v, want Unknown", st)
	}

	// The clone must not inherit the interrupt, the budgets, or the stats.
	b := a.Clone()
	if st := b.Solve(); st != Sat {
		t.Fatalf("clone of interrupted solver: got %v, want Sat (interrupt must not be inherited)", st)
	}
	if b.StopCause() != StopNone {
		t.Fatalf("clone StopCause: got %v, want StopNone", b.StopCause())
	}

	c := a.Clone()
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("clone stats not zeroed: %+v", got)
	}
}

func TestCloneAfterSimplify(t *testing.T) {
	a := NewSolver()
	satInstance(a)
	a.AddClause(1) // a root unit to strengthen against
	a.Simplify()   // leaves deleted clauses lingering in watch lists
	b := a.Clone()
	stA, stB := a.Solve(), b.Solve()
	if stA != Sat || stB != Sat {
		t.Fatalf("after simplify: original %v, clone %v; want Sat, Sat", stA, stB)
	}
	if !reflect.DeepEqual(a.Model(), b.Model()) {
		t.Fatalf("models differ after Simplify+Clone")
	}
}

func TestClonePanicsAboveLevelZero(t *testing.T) {
	// Drive the solver to a nonzero decision level via a fault hook that
	// fires mid-search, then observe that Clone refuses. Simpler: fake it
	// by checking the guard through a trail limit push is not reachable
	// from the public API at rest — instead verify the panic path directly.
	s := NewSolver()
	satInstance(s)
	s.trailLim = append(s.trailLim, len(s.trail)) // simulate an open decision level
	defer func() {
		if recover() == nil {
			t.Fatalf("Clone above level 0 did not panic")
		}
	}()
	s.Clone()
}

func TestCloneUnsatisfiableInstance(t *testing.T) {
	a := NewSolver()
	a.AddClause(1)
	a.AddClause(-1) // top-level contradiction: okay=false
	b := a.Clone()
	if st := b.Solve(); st != Unsat {
		t.Fatalf("clone of contradictory instance: got %v, want Unsat", st)
	}
}

package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF in DIMACS format and loads its clauses into a new
// solver. Comment lines ("c ...") are ignored; the problem line
// ("p cnf <vars> <clauses>") is validated loosely (the declared counts are
// advisory). Clauses are zero-terminated literal sequences, possibly
// spanning lines.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := NewSolver()
	if err := LoadDIMACS(r, s); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadDIMACS reads DIMACS CNF from r and adds its clauses to s.
func LoadDIMACS(r io.Reader, s *Solver) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var clause []Lit
	sawProblem := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			fields := strings.Fields(text)
			if len(fields) < 4 || fields[1] != "cnf" {
				return fmt.Errorf("sat: line %d: malformed problem line %q", line, text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return fmt.Errorf("sat: line %d: bad variable count in %q", line, text)
			}
			s.EnsureVars(nv)
			sawProblem = true
			continue
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("sat: line %d: bad literal %q", line, tok)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			clause = append(clause, Lit(n))
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sat: reading DIMACS: %w", err)
	}
	if len(clause) > 0 {
		s.AddClause(clause...)
	}
	if !sawProblem && s.NumClauses() == 0 && s.NumVars() == 0 {
		return fmt.Errorf("sat: empty DIMACS input")
	}
	return nil
}

// WriteDIMACS writes the solver's problem clauses in DIMACS CNF format.
// Root-level unit facts (which the solver stores on the trail rather than
// in the clause database) are emitted as unit clauses, and a solver that
// has derived a top-level contradiction emits the empty clause, so the
// output is equisatisfiable with the loaded instance.
func WriteDIMACS(w io.Writer, s *Solver) error {
	bw := bufio.NewWriter(w)
	live := 0
	for _, c := range s.clauses {
		if !s.ca.deleted(c) {
			live++
		}
	}
	rootUnits := 0
	if s.decisionLevel() == 0 {
		rootUnits = len(s.trail)
	} else {
		rootUnits = s.trailLim[0]
	}
	total := live + rootUnits
	if !s.okay {
		total++
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), total)
	for i := 0; i < rootUnits; i++ {
		fmt.Fprintf(bw, "%d 0\n", int32(toExternal(s.trail[i])))
	}
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		for _, l := range s.ca.lits(c) {
			fmt.Fprintf(bw, "%d ", int32(toExternal(l)))
		}
		fmt.Fprintln(bw, 0)
	}
	if !s.okay {
		fmt.Fprintln(bw, 0) // empty clause: recorded contradiction
	}
	return bw.Flush()
}

package sat

import "sort"

// analyze derives a first-UIP learnt clause from a conflict, minimizes it,
// and returns the clause (asserting literal first), the backjump level, and
// the clause's LBD (number of distinct decision levels).
func (s *Solver) analyze(confl cref) (learnt []lit, backLevel, lbd int) {
	// learnt grows in the recycled learntBuf; callers (recordLearnt,
	// logLearnt) copy before storing, so the buffer is free again by the
	// next conflict.
	learnt = append(s.learntBuf[:0], 0) // placeholder for the asserting literal
	counter := 0
	var p lit
	havePath := false
	idx := len(s.trail) - 1

	for {
		// Bump and scan the conflict/reason clause.
		if s.ca.learnt(confl) {
			s.bumpClause(confl)
		}
		start := 0
		if havePath {
			start = 1 // lits[0] is the literal we just resolved on
		}
		for _, q := range s.ca.lits(confl)[start:] {
			v := q.v()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.bumpVar(int(v))
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select the next literal on the current level to resolve.
		for s.seen[s.trail[idx].v()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.v()] = 0
		counter--
		if counter == 0 {
			break // p is the first UIP
		}
		confl = s.reason[p.v()]
		havePath = true
		// Invariant: a reason clause has its implied literal first. While
		// a clause is locked as a reason its first literal stays true, so
		// propagation never reorders it.
		if s.ca.lits(confl)[0] != p {
			panic("sat: reason clause invariant violated")
		}
	}
	learnt[0] = p.flip()

	// Recursive clause minimization: drop literals implied by the rest.
	s.minimize(&learnt)

	// Compute backjump level: highest level among learnt[1:].
	if len(learnt) == 1 {
		backLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].v()] > s.level[learnt[maxI].v()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		backLevel = int(s.level[learnt[1].v()])
	}

	// LBD: distinct decision levels among the learnt literals, counted
	// with a generation-stamped per-level scratch slice (no map).
	s.lbdGen++
	lbd = 0
	for _, q := range learnt {
		lv := int(s.level[q.v()])
		if lv >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, make([]uint64, lv+1-len(s.lbdStamp))...)
		}
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			lbd++
		}
	}

	// Clear seen flags for the literals we kept.
	for _, q := range learnt {
		s.seen[q.v()] = 0
	}
	s.learntBuf = learnt // retain the (possibly grown) backing array
	return learnt, backLevel, lbd
}

// minimize removes learnt[1:] literals whose negation is implied by the
// remaining literals, via the standard recursive reason-walk test.
// The seen[] flags of kept literals remain set for the caller.
func (s *Solver) minimize(learnt *[]lit) {
	ls := *learnt
	// Mark all literals (learnt[0]'s var flag was cleared in analyze; set
	// it so redundant() can rely on membership marks).
	for _, q := range ls {
		s.seen[q.v()] = 1
	}
	out := ls[:1]
	for _, q := range ls[1:] {
		if s.reason[q.v()] == crefUndef || !s.redundant(q, 0) {
			out = append(out, q)
		} else {
			s.seen[q.v()] = 0 // dropped
		}
	}
	*learnt = out
}

// redundant reports whether literal q is implied by literals already marked
// seen, by walking reasons depth-first. depth guards pathological recursion.
func (s *Solver) redundant(q lit, depth int) bool {
	if depth > 30 {
		return false
	}
	r := s.reason[q.v()]
	if r == crefUndef {
		return false
	}
	for _, p := range s.ca.lits(r) {
		if p.v() == q.v() {
			continue
		}
		if s.level[p.v()] == 0 || s.seen[p.v()] != 0 {
			continue
		}
		if s.reason[p.v()] == crefUndef || !s.redundant(p, depth+1) {
			return false
		}
		// p proved redundant: mark so repeated walks shortcut. We must
		// remember to clear it, but since it is genuinely implied by
		// seen literals, leaving the mark only over-approximates the
		// clause's implied set during this single analyze call, and all
		// marks are cleared below via clearTransient.
		s.transient = append(s.transient, p.v())
		s.seen[p.v()] = 1
	}
	return true
}

// analyzeFinal computes the final conflict clause (assumption core) when
// assumption p is falsified under the current trail.
func (s *Solver) analyzeFinal(p lit) {
	s.conflict = s.conflict[:0]
	s.conflict = append(s.conflict, toExternal(p.flip()))
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.v()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].v()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == crefUndef {
			// A decision above level 0 while assumptions are pending is
			// itself an assumption; report it as assumed.
			s.conflict = append(s.conflict, toExternal(s.trail[i]))
		} else {
			for _, q := range s.ca.lits(s.reason[v]) {
				if q.v() != v && s.level[q.v()] > 0 {
					s.seen[q.v()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.v()] = 0
	// Deduplicate (p itself may also appear via the trail walk).
	sort.Slice(s.conflict, func(i, j int) bool { return s.conflict[i] < s.conflict[j] })
	out := s.conflict[:0]
	var prev Lit
	for i, l := range s.conflict {
		if i > 0 && l == prev {
			continue
		}
		out = append(out, l)
		prev = l
	}
	s.conflict = out
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if !s.opts.StaticOrder {
		s.order.update(v)
	}
}

// bumpClause increases a learnt clause's activity.
func (s *Solver) bumpClause(c cref) {
	act := s.ca.activity(c) + s.claInc
	s.ca.setActivity(c, act)
	if act > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

// decayActivities applies the per-conflict activity decay.
func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
	s.clearTransient()
}

// clearTransient resets seen marks set by redundant().
func (s *Solver) clearTransient() {
	for _, v := range s.transient {
		s.seen[v] = 0
	}
	s.transient = s.transient[:0]
}

// reduceDB deletes roughly half the learnt clauses, keeping glue clauses
// (LBD ≤ 2), reasons of current assignments, and the most active rest.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		aGlue, bGlue := s.ca.lbd(a) <= 2, s.ca.lbd(b) <= 2
		if aGlue != bGlue {
			return aGlue // glue clauses first (kept)
		}
		return s.ca.activity(a) > s.ca.activity(b)
	})
	keep := s.learnts[:0]
	locked := func(c cref) bool {
		v := s.ca.lits(c)[0].v()
		return s.assigns[v] != lUndef && s.reason[v] == c
	}
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || s.ca.lbd(c) <= 2 || locked(c) || s.ca.size(c) == 2 {
			keep = append(keep, c)
		} else {
			s.detachAll(c)
			s.logDelete(s.ca.lits(c))
			s.stats.Deleted++
		}
	}
	s.learnts = keep
	s.maybeCompact()
}

package sat

import (
	"context"
	"sync"
	"sync/atomic"
)

// Interrupt asks the solver to stop: a running Solve returns Unknown at
// the next conflict boundary, and any Solve started while the interrupt
// is pending returns Unknown immediately. The flag is sticky — call
// ClearInterrupt to make the solver runnable again. Interrupt is safe to
// call from other goroutines and is idempotent.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// ClearInterrupt re-arms a solver that was stopped with Interrupt.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// interrupted polls and clears nothing — the flag is reset at the start
// of each Solve.
func (s *Solver) interrupted() bool { return s.stop.Load() }

// PortfolioStats aggregates clause-sharing traffic over one race.
type PortfolioStats struct {
	Workers int
	// FirstVerdict is the index of the worker whose definitive verdict
	// arrived first (-1 when none did). Unlike Winner it is NOT
	// deterministic — it reports scheduling, for observability only.
	FirstVerdict int
	Exported     int64 // learnt clauses published to the ring, all workers
	Imported     int64 // ring clauses adopted, all workers
}

// PortfolioResult is the outcome of a portfolio race.
type PortfolioResult struct {
	Status Status
	// Winner is 0 for every definitive verdict and -1 otherwise. The
	// race's determinism contract pins all observable outputs to the
	// reference worker (index 0): helpers can only accelerate an Unsat
	// verdict (implied clauses make any worker's Unsat sound) or salvage
	// a verified model when the reference is cut short, so the reference
	// is always the accountable configuration.
	Winner int
	// Model holds the satisfying assignment when Status is Sat.
	Model []bool
	Stats PortfolioStats
}

// PortfolioOptions returns the diversified option set for worker i of a
// portfolio whose reference (worker 0) runs ref unchanged. Helpers get a
// per-worker seed (VSIDS perturbation + PhaseRandom source) and cycle
// through restart-schedule and phase-polarity variations.
func PortfolioOptions(i int, ref Options) Options {
	o := ref
	if i == 0 {
		return o
	}
	o.Seed = uint64(i)
	switch (i - 1) % 6 {
	case 0:
		o.RestartBase = 50
	case 1:
		o.RestartBase = 100
		o.PhasePolicy = PhaseTrue
	case 2:
		o.RestartBase = 200
		o.PhasePolicy = PhaseRandom
	case 3:
		o.NoRestarts = true
	case 4:
		o.RestartBase = 32
		o.PhasePolicy = PhaseFalse
	case 5:
		o.PhasePolicy = PhaseRandom
	}
	return o
}

// RacePortfolio races the given solvers on the same assumptions and
// returns a verdict that is independent of scheduling. The caller
// provides the solvers (typically: the query's own solver at index 0 and
// diversified clones after it); the race attaches them to a shared
// clause ring for the duration and detaches them before returning.
//
// Determinism contract: worker 0 is the reference — it exports learnt
// clauses but never imports, so its search is byte-identical to running
// it alone. Unsat is accepted from any worker (imported clauses are
// resolvents of the shared instance, so every worker's Unsat is sound).
// Sat is only ever reported with the reference's model; a helper that
// finds a model has it re-verified against its full clause set, which
// proves the verdict and lets the race stop the other helpers, but the
// reference still runs to completion to produce the canonical model.
// The two exceptions — context cancellation and a reference stopped by
// an external budget/interrupt — cannot themselves be deterministic, and
// only there may a verified helper model be salvaged.
//
// Solvers are left interrupted unless the race completed via the
// reference; callers reusing a solver should ClearInterrupt it (taking
// care not to mask an external watchdog's interrupt).
func RacePortfolio(ctx context.Context, solvers []*Solver, assumps []Lit) (res PortfolioResult) {
	n := len(solvers)
	res = PortfolioResult{
		Status: Unknown,
		Winner: -1,
		Stats:  PortfolioStats{Workers: n, FirstVerdict: -1},
	}
	if n == 0 {
		return res
	}
	if n == 1 {
		st := solvers[0].SolveAssuming(assumps)
		res.Status = st
		if st == Sat || st == Unsat {
			res.Winner = 0
			res.Stats.FirstVerdict = 0
		}
		if st == Sat {
			res.Model = append([]bool(nil), solvers[0].Model()...)
		}
		return res
	}

	ring := NewClauseRing(DefaultRingSlots)
	for i, s := range solvers {
		s.SetShare(ring, i, DefaultShareLBD, i != 0)
	}

	type outcome struct {
		idx    int
		status Status
		model  []bool
	}
	results := make(chan outcome, n)
	var wg sync.WaitGroup
	for i, s := range solvers {
		wg.Add(1)
		go func(i int, s *Solver) {
			defer wg.Done()
			st := s.SolveAssuming(assumps)
			var model []bool
			if st == Sat {
				model = append([]bool(nil), s.Model()...)
			}
			results <- outcome{i, st, model}
		}(i, s)
	}

	// Teardown must run exactly once: both the deferred cleanup and the
	// cancellation/drain path want it, and interrupt+Wait twice would be
	// wasted work at best and a double-Wait hazard at worst.
	var teardownOnce sync.Once
	teardown := func() {
		teardownOnce.Do(func() {
			for _, s := range solvers {
				s.Interrupt()
			}
			wg.Wait()
		})
	}
	defer func() {
		teardown()
		for _, s := range solvers {
			s.SetShare(nil, 0, 0, false)
			res.Stats.Exported += s.stats.Exported
			res.Stats.Imported += s.stats.Imported
		}
	}()

	noteFirst := func(i int) {
		if res.Stats.FirstVerdict < 0 {
			res.Stats.FirstVerdict = i
		}
	}
	satProved := false
	var helperModel []bool

	// drain finishes a race that can no longer be deterministic (context
	// cancelled, or the reference tripped an external budget): stop
	// everyone, then salvage any verdict that was actually reached rather
	// than throwing it away.
	drain := func(pending int) PortfolioResult {
		teardown()
		for ; pending > 0; pending-- {
			out := <-results
			switch {
			case out.status == Unsat:
				noteFirst(out.idx)
				res.Status, res.Winner = Unsat, 0
				return res
			case out.status == Sat && out.idx == 0:
				noteFirst(0)
				res.Status, res.Winner, res.Model = Sat, 0, out.model
				return res
			case out.status == Sat:
				if !satProved && solvers[out.idx].VerifyModel(out.model, assumps) {
					noteFirst(out.idx)
					satProved, helperModel = true, out.model
				}
			}
		}
		if satProved {
			res.Status, res.Winner, res.Model = Sat, 0, helperModel
		}
		return res
	}

	for pending := n; pending > 0; {
		var out outcome
		// Prefer an already-delivered result over cancellation: when a
		// verdict and ctx.Done land together, a bare two-way select could
		// pick Done and discard the verdict.
		select {
		case out = <-results:
		default:
			select {
			case out = <-results:
			case <-ctx.Done():
				return drain(pending)
			}
		}
		pending--
		switch {
		case out.status == Unsat:
			noteFirst(out.idx)
			res.Status, res.Winner = Unsat, 0
			return res
		case out.status == Sat && out.idx == 0:
			noteFirst(0)
			res.Status, res.Winner, res.Model = Sat, 0, out.model
			return res
		case out.status == Sat:
			// A helper found a model. Verify it (the helper is done, so
			// reading its state is safe — the channel send ordered it),
			// then stop the remaining helpers: the verdict is proved, and
			// only the reference's canonical model is still wanted.
			if solvers[out.idx].VerifyModel(out.model, assumps) {
				noteFirst(out.idx)
				if !satProved {
					satProved, helperModel = true, out.model
				}
				for j := 1; j < n; j++ {
					if j != out.idx {
						solvers[j].Interrupt()
					}
				}
			}
		case out.idx == 0:
			// The reference stopped without a verdict — an external
			// interrupt or budget trip. Determinism is already off the
			// table; salvage what the helpers proved.
			if satProved {
				res.Status, res.Winner, res.Model = Sat, 0, helperModel
				return res
			}
			return drain(pending)
		}
	}
	// All workers returned Unknown (every definitive reference outcome
	// returns above, so reaching here means a fully exhausted race).
	if satProved {
		res.Status, res.Winner, res.Model = Sat, 0, helperModel
	}
	return res
}

// SolvePortfolio races one solver per option set over the same clauses
// and returns the race verdict. The clauses are loaded once into a base
// solver (built with configs[0]); every other worker starts from a
// near-memcpy Clone of that base with its own options applied, so setup
// cost is one compile plus cheap slab copies rather than an AddClause
// replay per worker. A cancelled context yields Unknown.
//
// Portfolio solving is the standard answer to heavy-tailed SAT runtimes:
// different heuristics win on different instances, and the race takes
// the minimum — with the determinism contract documented on
// RacePortfolio, so the verdict does not depend on which worker was
// scheduled first.
func SolvePortfolio(ctx context.Context, clauses [][]Lit, nVars int, configs []Options) PortfolioResult {
	if len(configs) == 0 {
		configs = []Options{{}, {NoRestarts: true}, {NoPhaseSaving: true}}
	}
	base := NewSolverOpts(configs[0])
	base.EnsureVars(nVars)
	for _, c := range clauses {
		base.AddClause(c...)
	}
	solvers := make([]*Solver, len(configs))
	solvers[0] = base
	for i := 1; i < len(configs); i++ {
		s := base.Clone()
		s.SetOptions(configs[i])
		solvers[i] = s
	}
	return RacePortfolio(ctx, solvers, nil)
}

// stopFlag is a tiny wrapper so the Solver zero-value works.
type stopFlag struct{ v atomic.Bool }

func (f *stopFlag) Store(b bool) { f.v.Store(b) }
func (f *stopFlag) Load() bool   { return f.v.Load() }

package sat

import (
	"context"
	"sync"
	"sync/atomic"
)

// Interrupt asks the solver to stop: a running Solve returns Unknown at
// the next conflict boundary, and any Solve started while the interrupt
// is pending returns Unknown immediately. The flag is sticky — call
// ClearInterrupt to make the solver runnable again. Interrupt is safe to
// call from other goroutines and is idempotent.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// ClearInterrupt re-arms a solver that was stopped with Interrupt.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// interrupted polls and clears nothing — the flag is reset at the start
// of each Solve.
func (s *Solver) interrupted() bool { return s.stop.Load() }

// PortfolioResult is the outcome of a portfolio race.
type PortfolioResult struct {
	Status Status
	// Winner is the index of the configuration that finished first
	// (-1 when the context was cancelled before any verdict).
	Winner int
	// Model holds the winner's satisfying assignment when Status is Sat.
	Model []bool
}

// SolvePortfolio races one solver per option set over the same clauses
// and returns the first definitive verdict, cancelling the rest. The
// clauses are loaded into each solver independently (solvers are not
// safe for concurrent sharing). A cancelled context yields Unknown.
//
// Portfolio solving is the standard answer to heavy-tailed SAT runtimes:
// different heuristics win on different instances, and the race takes the
// minimum.
func SolvePortfolio(ctx context.Context, clauses [][]Lit, nVars int, configs []Options) PortfolioResult {
	if len(configs) == 0 {
		configs = []Options{{}, {NoRestarts: true}, {NoPhaseSaving: true}}
	}
	type outcome struct {
		idx    int
		status Status
		model  []bool
	}
	results := make(chan outcome, len(configs))
	solvers := make([]*Solver, len(configs))
	var wg sync.WaitGroup
	for i, opts := range configs {
		s := NewSolverOpts(opts)
		s.EnsureVars(nVars)
		for _, c := range clauses {
			s.AddClause(c...)
		}
		solvers[i] = s
		wg.Add(1)
		go func(i int, s *Solver) {
			defer wg.Done()
			st := s.Solve()
			var model []bool
			if st == Sat {
				model = append([]bool(nil), s.Model()...)
			}
			results <- outcome{i, st, model}
		}(i, s)
	}
	stopAll := func() {
		for _, s := range solvers {
			s.Interrupt()
		}
	}
	defer func() {
		stopAll()
		wg.Wait()
	}()

	definitive := func(out outcome) bool { return out.status == Sat || out.status == Unsat }
	won := func(out outcome) PortfolioResult {
		return PortfolioResult{Status: out.status, Winner: out.idx, Model: out.model}
	}
	pending := len(configs)
	for pending > 0 {
		// Prefer an already-delivered result over cancellation: when a
		// winner and ctx.Done land together, a bare two-way select could
		// pick Done and discard the won verdict.
		select {
		case out := <-results:
			pending--
			if definitive(out) {
				return won(out)
			}
			continue
		default:
		}
		select {
		case <-ctx.Done():
			// Stop the workers, then drain everything they produced: a
			// verdict that was reached is returned, not thrown away.
			// Every goroutine sends exactly once (buffered channel)
			// before wg.Done, so after Wait all results are available.
			stopAll()
			wg.Wait()
			for ; pending > 0; pending-- {
				if out := <-results; definitive(out) {
					return won(out)
				}
			}
			return PortfolioResult{Status: Unknown, Winner: -1}
		case out := <-results:
			pending--
			if definitive(out) {
				return won(out)
			}
		}
	}
	return PortfolioResult{Status: Unknown, Winner: -1}
}

// stopFlag is a tiny wrapper so the Solver zero-value works.
type stopFlag struct{ v atomic.Bool }

func (f *stopFlag) Store(b bool) { f.v.Store(b) }
func (f *stopFlag) Load() bool   { return f.v.Load() }

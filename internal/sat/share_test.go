package sat

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestShareImportValidates pins the importer's validation contract: an
// imported clause is never out of the consumer's variable range, zero
// literals and own publishes are dropped, and each entry imports once.
func TestShareImportValidates(t *testing.T) {
	ring := NewClauseRing(8)
	s := NewSolver()
	s.EnsureVars(3)
	s.AddClause(1, 2)
	s.SetShare(ring, 1, DefaultShareLBD, true)

	ring.Publish(0, []Lit{5})      // variable beyond the importer's range
	ring.Publish(0, []Lit{0, 1})   // zero literal
	ring.Publish(1, []Lit{2})      // importer's own src id
	ring.Publish(0, []Lit{-1, -2}) // valid

	if !s.importShared() {
		t.Fatal("importShared reported unsat on a satisfiable mix")
	}
	if got := s.Stats().Imported; got != 1 {
		t.Fatalf("Imported = %d, want 1 (only the valid foreign clause)", got)
	}
	if n := s.NumVars(); n != 3 {
		t.Fatalf("import grew the variable space to %d", n)
	}
	// Entries are consumed once: a second sweep adds nothing.
	if !s.importShared() {
		t.Fatal("second importShared reported unsat")
	}
	if got := s.Stats().Imported; got != 1 {
		t.Fatalf("Imported = %d after resweep, want 1", got)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
}

// TestShareSkipsTornEntries: a slot mid-write (odd sequence) is skipped
// without being marked seen, so the entry is picked up once the writer
// releases it.
func TestShareSkipsTornEntries(t *testing.T) {
	ring := NewClauseRing(4)
	s := NewSolver()
	s.EnsureVars(4)
	s.SetShare(ring, 1, DefaultShareLBD, true)

	if !ring.Publish(0, []Lit{3, 4}) {
		t.Fatal("publish into an empty ring failed")
	}
	var slot *shareSlot
	for i := range ring.slots {
		if ring.slots[i].ticket.Load() != 0 {
			slot = &ring.slots[i]
		}
	}
	seq := slot.seq.Load()
	slot.seq.Store(seq | 1) // simulate a writer holding the slot
	s.importShared()
	if got := s.Stats().Imported; got != 0 {
		t.Fatalf("imported %d clauses from a mid-write slot", got)
	}
	slot.seq.Store(seq &^ 1) // writer releases
	s.importShared()
	if got := s.Stats().Imported; got != 1 {
		t.Fatalf("Imported = %d after release, want 1", got)
	}
}

// TestShareImportUnsat: an imported unit conflicting with a level-0 fact
// exposes unsatisfiability through importShared's false return, the same
// contract AddClause has.
func TestShareImportUnsat(t *testing.T) {
	ring := NewClauseRing(4)
	s := NewSolver()
	s.EnsureVars(2)
	s.AddClause(1) // fact: x1
	s.SetShare(ring, 1, DefaultShareLBD, true)
	ring.Publish(0, []Lit{-1})
	if s.importShared() {
		t.Fatal("importShared missed the implied empty clause")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve = %v after conflicting import, want Unsat", st)
	}
}

// TestShareConcurrentHammer races publishers spraying arbitrary (partly
// garbage) clauses against an importing solver. The property under test
// is pure safety — no panic, no out-of-range clause, race-clean under
// -race — not progress; torn and dropped entries are expected.
func TestShareConcurrentHammer(t *testing.T) {
	ring := NewClauseRing(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lits := make([]Lit, 1+r.Intn(maxSharedLits))
				for j := range lits {
					v := 1 + r.Intn(40) // half the range is out of bounds for the importer
					if r.Intn(2) == 0 {
						v = -v
					}
					lits[j] = Lit(v)
				}
				ring.Publish(w, lits)
			}
		}(w)
	}
	s := NewSolver()
	s.EnsureVars(20)
	s.SetShare(ring, 99, DefaultShareLBD, true)
	for i := 0; i < 500; i++ {
		if !s.importShared() {
			break // arbitrary clauses may well be jointly unsat; still safe
		}
	}
	close(stop)
	wg.Wait()
	if n := s.NumVars(); n != 20 {
		t.Fatalf("hammer grew the importer's variable space to %d", n)
	}
}

// TestRingDropsOversized: Publish refuses empty and oversized clauses.
func TestRingDropsOversized(t *testing.T) {
	ring := NewClauseRing(2)
	if ring.Publish(0, nil) {
		t.Fatal("published an empty clause")
	}
	long := make([]Lit, maxSharedLits+1)
	for i := range long {
		long[i] = Lit(i + 1)
	}
	if ring.Publish(0, long) {
		t.Fatal("published an oversized clause")
	}
	if ring.Published() != 0 {
		t.Fatalf("Published = %d, want 0", ring.Published())
	}
}

// TestPortfolioSharesClauses: on a hard UNSAT instance with several
// workers, learnt clauses actually flow through the ring (the perf story
// of the portfolio depends on it).
func TestPortfolioSharesClauses(t *testing.T) {
	clauses, nVars := pigeonholeClauses(7)
	configs := make([]Options, 4)
	for i := range configs {
		configs[i] = PortfolioOptions(i, Options{})
	}
	res := SolvePortfolio(context.Background(), clauses, nVars, configs)
	if res.Status != Unsat {
		t.Fatalf("PHP(7) = %v, want Unsat", res.Status)
	}
	if res.Stats.Exported == 0 {
		t.Fatalf("no clauses exported: %+v", res.Stats)
	}
}

// pigeonholeClauses is PHP(n+1 pigeons, n holes) as a clause list (the
// solver-loading variant lives in solver_test.go).
func pigeonholeClauses(n int) (clauses [][]Lit, nVars int) {
	v := func(p, h int) Lit { return Lit(p*n + h + 1) } // p in [0,n], h in [0,n)
	for p := 0; p <= n; p++ {
		row := make([]Lit, n)
		for h := 0; h < n; h++ {
			row[h] = v(p, h)
		}
		clauses = append(clauses, row)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				clauses = append(clauses, []Lit{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return clauses, (n + 1) * n
}

// TestRacePortfolioWorkerInvariance pins the determinism contract at the
// sat layer: Status, Winner, and the model (byte for byte) are identical
// for 1, 2, 4, and 8 workers, on both satisfiable and unsatisfiable
// instances.
func TestRacePortfolioWorkerInvariance(t *testing.T) {
	type instance struct {
		name    string
		clauses [][]Lit
		nVars   int
	}
	var cases []instance
	phpClauses, phpVars := pigeonholeClauses(6)
	cases = append(cases, instance{"php6", phpClauses, phpVars})
	r := rand.New(rand.NewSource(7))
	for len(cases) < 4 {
		nVars := 14 + r.Intn(4)
		cl := randomInstance(r, nVars, nVars*3, 3)
		if ok, _ := bruteForce(nVars, cl); ok {
			cases = append(cases, instance{"sat-rand", cl, nVars})
		}
	}

	run := func(inst instance, workers int) PortfolioResult {
		base := NewSolver()
		base.EnsureVars(inst.nVars)
		for _, c := range inst.clauses {
			base.AddClause(c...)
		}
		solvers := make([]*Solver, workers)
		solvers[0] = base
		for i := 1; i < workers; i++ {
			s := base.Clone()
			s.SetOptions(PortfolioOptions(i, Options{}))
			solvers[i] = s
		}
		return RacePortfolio(context.Background(), solvers, nil)
	}

	for _, inst := range cases {
		want := run(inst, 1)
		for _, w := range []int{2, 4, 8} {
			got := run(inst, w)
			if got.Status != want.Status || got.Winner != want.Winner {
				t.Fatalf("%s workers=%d: (%v, winner %d), want (%v, winner %d)",
					inst.name, w, got.Status, got.Winner, want.Status, want.Winner)
			}
			if len(got.Model) != len(want.Model) {
				t.Fatalf("%s workers=%d: model length %d, want %d", inst.name, w, len(got.Model), len(want.Model))
			}
			for i := range got.Model {
				if got.Model[i] != want.Model[i] {
					t.Fatalf("%s workers=%d: model diverges at var %d", inst.name, w, i+1)
				}
			}
		}
	}
}

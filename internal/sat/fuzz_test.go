package sat

import (
	"strings"
	"testing"
)

// FuzzLoadDIMACS checks the parser never panics and that parseable input
// yields a solver whose verdict is stable under re-serialization.
func FuzzLoadDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("p cnf 0 0\n")
	f.Add("garbage\n")
	f.Add("p cnf 2 1\n1 999999 0\n")
	f.Add("1 2 0")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return // keep instances small
		}
		s, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 64 || s.NumClauses() > 512 {
			return // avoid pathological solve times under fuzzing
		}
		st := s.Solve()
		// Round trip: serialize and reparse; verdict must match. Note
		// Solve may have added learnt clauses, but WriteDIMACS only
		// emits problem clauses, and level-0 strengthening is
		// satisfiability-preserving.
		var b strings.Builder
		if err := WriteDIMACS(&b, s); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, b.String())
		}
		if st2 := s2.Solve(); st2 != st {
			t.Fatalf("verdict changed across serialization: %v -> %v", st, st2)
		}
	})
}

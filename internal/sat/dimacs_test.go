package sat

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 || s.NumClauses() != 2 {
		t.Fatalf("got %d vars %d clauses", s.NumVars(), s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 4 0\n"
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("clause spanning lines: got %d clauses, want 1", s.NumClauses())
	}
}

func TestParseDIMACSTrailingClause(t *testing.T) {
	// Final clause missing its 0 terminator is accepted.
	in := "p cnf 2 1\n1 2\n"
	s, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("got %d clauses, want 1", s.NumClauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p dnf 2 1\n1 0\n",
		"p cnf 2 1\none 0\n",
		"",
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	s := NewSolver()
	s.EnsureVars(4)
	s.AddClause(1, -2)
	s.AddClause(2, 3, -4)
	s.AddClause(-1, 4)

	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumClauses() != s.NumClauses() {
		t.Fatalf("roundtrip clause count: got %d, want %d", s2.NumClauses(), s.NumClauses())
	}
	if s.Solve() != s2.Solve() {
		t.Error("roundtrip changed satisfiability")
	}
}

func TestHeapOrdering(t *testing.T) {
	act := []float64{5, 1, 9, 3, 7}
	h := newVarHeap(&act)
	for v := range act {
		h.insert(v)
	}
	want := []int{2, 4, 0, 3, 1}
	for i, w := range want {
		if h.empty() {
			t.Fatalf("heap empty at pop %d", i)
		}
		if got := h.removeMax(); got != w {
			t.Fatalf("pop %d: got %d, want %d", i, got, w)
		}
	}
	if !h.empty() {
		t.Error("heap should be empty")
	}
}

func TestHeapUpdateAndReinsert(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newVarHeap(&act)
	for v := range act {
		h.insert(v)
	}
	act[0] = 100
	h.update(0)
	if got := h.removeMax(); got != 0 {
		t.Fatalf("after update, max should be var 0, got %d", got)
	}
	h.insert(0) // reinsert
	if got := h.removeMax(); got != 0 {
		t.Fatalf("after reinsert, max should be var 0, got %d", got)
	}
	h.insert(0)
	h.insert(0) // duplicate insert must be a no-op
	h.removeMax()
	if h.contains(0) {
		t.Error("duplicate insert corrupted the heap")
	}
}

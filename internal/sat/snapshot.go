package sat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file implements solver state serialization: Snapshot renders a
// level-0 solver into a self-contained byte string and RestoreSnapshot
// reconstructs a behaviorally identical solver from it. A restored solver
// relates to the original exactly as a Clone does (DESIGN.md §7): the
// clause database, watch-list order, trail, saved phases, VSIDS
// activities, and order heap are preserved verbatim, so a restored solver
// runs the same search, conflict for conflict. Snapshot is the substrate
// of the persistent compiled-base cache: a frozen post-Simplify base can
// be written to disk and revived in another process without recompiling.
//
// Format version 2 serializes the clause arena verbatim — one length
// prefix and the raw slab words — so clause references (crefs) in the
// clause lists, reasons, and watch lists round-trip unchanged and encode
// cost is a single pass over flat memory. Like Snapshot's other callers
// of the arena, encoding is read-only on the solver, so concurrent
// Snapshot/Clone calls on one frozen solver need no locking.
//
// The decoder treats its input as untrusted. Every count is bounded by
// the remaining input length before any allocation (memory stays O(input
// size)), the arena is re-walked clause by clause so every header, length,
// and literal is validated, every cref is checked against the set of
// valid clause starts, and the watch-list/trail invariants the search
// relies on are re-validated, so truncated, bit-flipped, or adversarial
// bytes yield a typed ErrBadSnapshot — never a panic, an OOM, or a solver
// whose later solve calls can fault.

// ErrBadSnapshot is returned (wrapped, with detail) by RestoreSnapshot
// when the input is not a well-formed solver snapshot.
var ErrBadSnapshot = errors.New("sat: malformed solver snapshot")

// snapshotVersion is the solver-section format version. Version 2
// introduced the arena clause database (serialized as the raw slab);
// version-1 snapshots (per-clause records) are rejected. Bump it on any
// incompatible layout change; RestoreSnapshot rejects other versions.
const snapshotVersion = 2

// maxSnapshotVars bounds the variable count a snapshot may declare; it
// exists purely to keep arithmetic on 2*nVars comfortably inside int32
// literal space. Real instances are orders of magnitude smaller.
const maxSnapshotVars = 1 << 28

// Snapshot serializes the solver's complete search-relevant state. It may
// only be called at decision level 0 (like Clone) and panics otherwise.
//
// Per-run state is deliberately not captured, mirroring Clone: statistics,
// work budgets, pending interrupts, the last model/final conflict, an
// attached DRAT proof, and all Options (including any fault hook) are
// absent from the snapshot; RestoreSnapshot returns a solver with default
// options, and the caller re-applies what it needs.
func (s *Solver) Snapshot() []byte {
	if s.decisionLevel() != 0 {
		panic("sat: Snapshot called above decision level 0")
	}
	nWatchers := 0
	for _, ws := range s.watches {
		nWatchers += len(ws)
	}
	buf := make([]byte, 0, 80+4*len(s.ca.data)+5*(len(s.clauses)+len(s.learnts))+10*nWatchers+10*s.nVars)

	u32 := func(v uint32) {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	uv := func(v uint64) {
		buf = binary.AppendUvarint(buf, v)
	}
	f64 := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}

	u32(snapshotVersion)
	uv(uint64(s.nVars))
	if s.okay {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	uv(uint64(s.qhead))
	uv(uint64(s.restartBase))
	f64(s.varInc)
	f64(s.claInc)
	f64(s.maxLearnts)
	f64(s.learntGrowth)

	// The clause arena, verbatim: word count then raw little-endian words.
	// Deleted-but-unreclaimed clauses ride along; the decoder recomputes
	// the garbage accounting.
	uv(uint64(len(s.ca.data)))
	off := len(buf)
	buf = append(buf, make([]byte, 4*len(s.ca.data))...)
	for _, w := range s.ca.data {
		binary.LittleEndian.PutUint32(buf[off:], uint32(w))
		off += 4
	}

	uv(uint64(len(s.clauses)))
	for _, c := range s.clauses {
		uv(uint64(c))
	}
	uv(uint64(len(s.learnts)))
	for _, c := range s.learnts {
		uv(uint64(c))
	}

	uv(uint64(len(s.trail)))
	for _, l := range s.trail {
		uv(uint64(l))
	}

	// Saved phases, one bit per variable.
	pol := make([]byte, (s.nVars+7)/8)
	for v := 0; v < s.nVars; v++ {
		if s.polarity[v] {
			pol[v/8] |= 1 << (v % 8)
		}
	}
	buf = append(buf, pol...)

	// VSIDS activities: the pristine post-compile case is all-zero, so a
	// flag byte elides the array entirely.
	allZero := true
	for _, a := range s.activity {
		if a != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, a := range s.activity {
			f64(a)
		}
	}

	uv(uint64(len(s.order.heap)))
	for _, v := range s.order.heap {
		uv(uint64(v))
	}

	for _, c := range s.reason {
		if c == crefUndef {
			uv(0)
		} else {
			uv(uint64(c) + 1)
		}
	}

	for _, ws := range s.watches {
		uv(uint64(len(ws)))
		for _, w := range ws {
			uv(uint64(w.c))
			uv(uint64(w.blocker))
		}
	}
	return buf
}

// snapReader is a bounds-checked cursor over untrusted snapshot bytes.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) rem() int { return len(r.b) - r.off }

func (r *snapReader) fail(what string) error {
	return fmt.Errorf("%w: truncated or oversized %s at offset %d", ErrBadSnapshot, what, r.off)
}

func (r *snapReader) u32(what string) (uint32, error) {
	if r.rem() < 4 {
		return 0, r.fail(what)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *snapReader) byte(what string) (byte, error) {
	if r.rem() < 1 {
		return 0, r.fail(what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *snapReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

// count reads a length prefix and rejects values that could not possibly
// be backed by the remaining input (each counted element occupies at
// least one encoded byte), bounding every allocation by the input size.
func (r *snapReader) count(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, r.fail(what)
	}
	return int(v), nil
}

func (r *snapReader) f64(what string) (float64, error) {
	if r.rem() < 8 {
		return 0, r.fail(what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// finiteNonNeg validates heuristic scalars: NaN, infinities, and negative
// values would send the search loop or the clause-DB sizing haywire.
func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// crefIndex locates c in the sorted list of valid clause starts,
// returning its index or -1.
func crefIndex(starts []cref, c cref) int {
	i := sort.Search(len(starts), func(i int) bool { return starts[i] >= c })
	if i < len(starts) && starts[i] == c {
		return i
	}
	return -1
}

// RestoreSnapshot reconstructs a solver from Snapshot output. The restored
// solver behaves identically to the snapshotted one: same clause database,
// same watch order, same trail and heuristic state, hence the same search.
// Options, budgets, fault hooks, and proofs are not restored; set them on
// the returned solver as needed.
//
// The input is untrusted: any structural violation returns an error
// wrapping ErrBadSnapshot. Allocation is bounded by the input length, so
// hostile length prefixes cannot OOM the process.
func RestoreSnapshot(data []byte) (*Solver, error) {
	r := &snapReader{b: data}
	version, err := r.u32("version")
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported solver snapshot version %d (have %d)",
			ErrBadSnapshot, version, snapshotVersion)
	}
	nv64, err := r.uvarint("variable count")
	if err != nil {
		return nil, err
	}
	// Every variable owns at least one polarity bit per 8 plus a reason
	// entry, so nVars beyond the remaining byte count is unsatisfiable.
	if nv64 > uint64(r.rem()) || nv64 > maxSnapshotVars {
		return nil, r.fail("variable count")
	}
	nVars := int(nv64)
	okayByte, err := r.byte("okay flag")
	if err != nil {
		return nil, err
	}
	qh64, err := r.uvarint("qhead")
	if err != nil {
		return nil, err
	}
	rb64, err := r.uvarint("restart base")
	if err != nil {
		return nil, err
	}
	if rb64 < 1 || rb64 > math.MaxInt64 {
		return nil, fmt.Errorf("%w: restart base %d out of range", ErrBadSnapshot, rb64)
	}
	varInc, err := r.f64("varInc")
	if err != nil {
		return nil, err
	}
	claInc, err := r.f64("claInc")
	if err != nil {
		return nil, err
	}
	maxLearnts, err := r.f64("maxLearnts")
	if err != nil {
		return nil, err
	}
	learntGrowth, err := r.f64("learntGrowth")
	if err != nil {
		return nil, err
	}
	if !finiteNonNeg(varInc) || !finiteNonNeg(claInc) || !finiteNonNeg(maxLearnts) ||
		!finiteNonNeg(learntGrowth) || learntGrowth < 1 {
		return nil, fmt.Errorf("%w: non-finite or out-of-range heuristic scalars", ErrBadSnapshot)
	}

	// The arena slab: each word is 4 raw bytes, so the count check bounds
	// the allocation by a quarter of the remaining input.
	nWords64, err := r.uvarint("arena length")
	if err != nil {
		return nil, err
	}
	if nWords64 > uint64(r.rem())/4 {
		return nil, r.fail("arena length")
	}
	nWords := int(nWords64)
	slab := make([]lit, nWords)
	for i := range slab {
		slab[i] = lit(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}

	// Walk the arena validating each clause record in place and collecting
	// the (sorted, by construction) valid clause starts. Every literal is
	// range-checked here, so later consumers can index assignment arrays
	// without further checks.
	maxLit := uint64(2 * nVars)
	var starts []cref
	wasted := 0
	for off := 0; off < nWords; {
		hdr := slab[off]
		size := int(hdr >> 2)
		if size < 2 {
			// Units live on the trail and empty clauses flip okay; a
			// stored clause below two literals breaks watch invariants.
			return nil, fmt.Errorf("%w: arena clause of length %d at word %d", ErrBadSnapshot, size, off)
		}
		end := off + clsHeaderWords + size
		if end > nWords {
			return nil, fmt.Errorf("%w: arena clause overruns slab at word %d", ErrBadSnapshot, off)
		}
		lbd := uint64(slab[off+1])
		if lbd > uint64(nVars)+1 {
			return nil, fmt.Errorf("%w: clause lbd %d out of range", ErrBadSnapshot, lbd)
		}
		act := math.Float64frombits(uint64(slab[off+2]) | uint64(slab[off+3])<<32)
		if !finiteNonNeg(act) {
			return nil, fmt.Errorf("%w: non-finite clause activity", ErrBadSnapshot)
		}
		for _, l := range slab[off+clsHeaderWords : end] {
			if uint64(l) >= maxLit {
				return nil, fmt.Errorf("%w: literal %d out of range", ErrBadSnapshot, uint64(l))
			}
		}
		if hdr&clsDeleted != 0 {
			wasted += clsHeaderWords + size
		}
		starts = append(starts, cref(off))
		off = end
	}
	ca := arena{data: slab, wasted: wasted}

	readCrefList := func(what string, wantLearnt bool) ([]cref, error) {
		n, err := r.count(what)
		if err != nil {
			return nil, err
		}
		out := make([]cref, n)
		for i := range out {
			c64, err := r.uvarint(what)
			if err != nil {
				return nil, err
			}
			if c64 >= uint64(nWords) || crefIndex(starts, cref(c64)) < 0 {
				return nil, fmt.Errorf("%w: %s entry %d is not a clause start", ErrBadSnapshot, what, c64)
			}
			c := cref(c64)
			// Section membership must agree with the learnt flag so the
			// two clause lists stay coherent with DB-reduction bookkeeping.
			if ca.learnt(c) != wantLearnt {
				return nil, fmt.Errorf("%w: clause at %d in wrong section", ErrBadSnapshot, c64)
			}
			out[i] = c
		}
		return out, nil
	}
	clauses, err := readCrefList("problem clause list", false)
	if err != nil {
		return nil, err
	}
	learnts, err := readCrefList("learnt clause list", true)
	if err != nil {
		return nil, err
	}

	nTrail, err := r.count("trail length")
	if err != nil {
		return nil, err
	}
	if nTrail > nVars || qh64 > uint64(nTrail) {
		return nil, fmt.Errorf("%w: trail length %d / qhead %d out of range", ErrBadSnapshot, nTrail, qh64)
	}
	trail := make([]lit, nTrail)
	assigns := make([]lbool, nVars)
	for i := range trail {
		lv, err := r.uvarint("trail literal")
		if err != nil {
			return nil, err
		}
		if lv >= maxLit {
			return nil, fmt.Errorf("%w: trail literal %d out of range", ErrBadSnapshot, lv)
		}
		l := lit(lv)
		if assigns[l.v()] != lUndef {
			return nil, fmt.Errorf("%w: variable %d assigned twice on trail", ErrBadSnapshot, l.v()+1)
		}
		assigns[l.v()] = boolToLbool(!l.sign())
		trail[i] = l
	}

	polBytes := (nVars + 7) / 8
	if r.rem() < polBytes {
		return nil, r.fail("polarity bits")
	}
	polarity := make([]bool, nVars)
	for v := 0; v < nVars; v++ {
		polarity[v] = r.b[r.off+v/8]&(1<<(v%8)) != 0
	}
	r.off += polBytes

	actFlag, err := r.byte("activity flag")
	if err != nil {
		return nil, err
	}
	activity := make([]float64, nVars)
	if actFlag == 1 {
		for v := 0; v < nVars; v++ {
			a, err := r.f64("variable activity")
			if err != nil {
				return nil, err
			}
			if !finiteNonNeg(a) {
				return nil, fmt.Errorf("%w: non-finite variable activity", ErrBadSnapshot)
			}
			activity[v] = a
		}
	} else if actFlag != 0 {
		return nil, fmt.Errorf("%w: unknown activity flag %d", ErrBadSnapshot, actFlag)
	}

	nHeap, err := r.count("order heap length")
	if err != nil {
		return nil, err
	}
	if nHeap > nVars {
		return nil, fmt.Errorf("%w: order heap longer than variable count", ErrBadSnapshot)
	}
	heap := make([]int, nHeap)
	indices := make([]int, nVars)
	for i := range indices {
		indices[i] = -1
	}
	for i := range heap {
		v64, err := r.uvarint("order heap entry")
		if err != nil {
			return nil, err
		}
		if v64 >= uint64(nVars) {
			return nil, fmt.Errorf("%w: order heap variable %d out of range", ErrBadSnapshot, v64)
		}
		v := int(v64)
		if indices[v] != -1 {
			return nil, fmt.Errorf("%w: variable %d twice in order heap", ErrBadSnapshot, v+1)
		}
		indices[v] = i
		heap[i] = v
	}

	reason := make([]cref, nVars)
	for v := 0; v < nVars; v++ {
		id, err := r.uvarint("reason reference")
		if err != nil {
			return nil, err
		}
		if id == 0 {
			reason[v] = crefUndef
			continue
		}
		c64 := id - 1
		if c64 >= uint64(nWords) || crefIndex(starts, cref(c64)) < 0 {
			return nil, fmt.Errorf("%w: reason clause %d out of range", ErrBadSnapshot, c64)
		}
		if assigns[v] == lUndef {
			return nil, fmt.Errorf("%w: reason on unassigned variable %d", ErrBadSnapshot, v+1)
		}
		reason[v] = cref(c64)
	}

	watches := make([][]watcher, 2*nVars)
	watchCount := make([]int32, len(starts))
	for li := 0; li < 2*nVars; li++ {
		n, err := r.count("watch list length")
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		ws := make([]watcher, n)
		for j := 0; j < n; j++ {
			c64, err := r.uvarint("watcher clause")
			if err != nil {
				return nil, err
			}
			var ci int
			if c64 >= uint64(nWords) {
				ci = -1
			} else {
				ci = crefIndex(starts, cref(c64))
			}
			if ci < 0 {
				return nil, fmt.Errorf("%w: watcher clause %d out of range", ErrBadSnapshot, c64)
			}
			bl, err := r.uvarint("watcher blocker")
			if err != nil {
				return nil, err
			}
			if bl >= maxLit {
				return nil, fmt.Errorf("%w: watcher blocker %d out of range", ErrBadSnapshot, bl)
			}
			c := cref(c64)
			if !ca.deleted(c) {
				// Propagation assumes a live watcher sits in the list of
				// the negation of one of the clause's first two literals;
				// anything else could mis-propagate or mis-index.
				cl := ca.lits(c)
				if lit(li) != cl[0].flip() && lit(li) != cl[1].flip() {
					return nil, fmt.Errorf("%w: watcher misplaced for live clause %d", ErrBadSnapshot, c64)
				}
				watchCount[ci]++
			}
			ws[j] = watcher{c: c, blocker: lit(bl)}
		}
		watches[li] = ws
	}
	for i, c := range starts {
		if !ca.deleted(c) && watchCount[i] != 2 {
			return nil, fmt.Errorf("%w: live clause at %d has %d watchers (want 2)", ErrBadSnapshot, c, watchCount[i])
		}
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.rem())
	}

	n := &Solver{
		opts:         Options{},
		nVars:        nVars,
		ca:           ca,
		clauses:      clauses,
		learnts:      learnts,
		watches:      watches,
		assigns:      assigns,
		level:        make([]int32, nVars), // level-0 snapshot: all zero
		reason:       reason,
		polarity:     polarity,
		trail:        trail,
		qhead:        int(qh64),
		activity:     activity,
		varInc:       varInc,
		claInc:       claInc,
		seen:         make([]byte, nVars),
		okay:         okayByte != 0,
		maxLearnts:   maxLearnts,
		learntGrowth: learntGrowth,
		restartBase:  int64(rb64),
	}
	n.order = &varHeap{activity: &n.activity, heap: heap, indices: indices}
	return n, nil
}

package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// bruteForce decides a clause set over nVars ≤ 22 variables by enumeration.
func bruteForce(nVars int, clauses [][]Lit) (bool, []bool) {
	if nVars > 22 {
		panic("bruteForce: too many variables")
	}
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, c := range clauses {
			csat := false
			for _, l := range c {
				val := mask&(1<<(l.Var()-1)) != 0
				if val != l.Neg() {
					csat = true
					break
				}
			}
			if !csat {
				ok = false
				break
			}
		}
		if ok {
			model := make([]bool, nVars)
			for i := 0; i < nVars; i++ {
				model[i] = mask&(1<<i) != 0
			}
			return true, model
		}
	}
	return false, nil
}

// checkModel verifies that the solver's model satisfies every clause.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if s.Value(l.Var()) != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model does not satisfy clause %v", c)
		}
	}
}

// randomInstance generates a random k-SAT instance.
func randomInstance(r *rand.Rand, nVars, nClauses, k int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		c := make([]Lit, k)
		for j := range c {
			v := r.Intn(nVars) + 1
			if r.Intn(2) == 0 {
				c[j] = Lit(v)
			} else {
				c[j] = Lit(-v)
			}
		}
		clauses[i] = c
	}
	return clauses
}

func loadClauses(s *Solver, clauses [][]Lit) {
	for _, c := range clauses {
		s.AddClause(c...)
	}
}

func TestLitConversions(t *testing.T) {
	for _, ext := range []Lit{1, -1, 7, -7, 100} {
		in := toInternal(ext)
		if back := toExternal(in); back != ext {
			t.Errorf("roundtrip %d -> %d", ext, back)
		}
		if toInternal(ext.Flip()) != toInternal(ext).flip() {
			t.Errorf("flip mismatch for %d", ext)
		}
	}
	if Lit(-3).Var() != 3 || !Lit(-3).Neg() || Lit(3).Neg() {
		t.Error("Lit accessors wrong")
	}
}

func TestTrivial(t *testing.T) {
	s := NewSolver()
	if s.Solve() != Sat {
		t.Fatal("empty instance must be SAT")
	}
	s.AddClause(1)
	if s.Solve() != Sat || !s.Value(1) {
		t.Fatal("unit clause must force x1=true")
	}
	s.AddClause(-1)
	if s.Solve() != Unsat {
		t.Fatal("x1 & !x1 must be UNSAT")
	}
	if s.Okay() {
		t.Error("Okay must be false after top-level contradiction")
	}
}

func TestEmptyClause(t *testing.T) {
	s := NewSolver()
	if s.AddClause() {
		t.Error("empty clause must report failure")
	}
	if s.Solve() != Unsat {
		t.Error("instance with empty clause must be UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver()
	s.AddClause(1, -1)   // tautology: ignored
	s.AddClause(2, 2, 2) // collapses to unit
	if s.Solve() != Sat || !s.Value(2) {
		t.Fatal("want SAT with x2=true")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := NewSolver()
	// x1 -> x2 -> x3 -> x4; assert x1.
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3, 4)
	s.AddClause(1)
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	for v := 1; v <= 4; v++ {
		if !s.Value(v) {
			t.Errorf("x%d should be true", v)
		}
	}
}

func TestFuzzAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		nVars := 3 + r.Intn(10)
		nClauses := 1 + r.Intn(nVars*5)
		k := 2 + r.Intn(2)
		clauses := randomInstance(r, nVars, nClauses, k)
		wantSat, _ := bruteForce(nVars, clauses)

		s := NewSolver()
		s.EnsureVars(nVars)
		loadClauses(s, clauses)
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("instance %d: got %v, want sat=%v\nclauses: %v", i, got, wantSat, clauses)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

func TestFuzzOptionVariants(t *testing.T) {
	variants := []Options{
		{NoRestarts: true},
		{StaticOrder: true},
		{NoPhaseSaving: true},
		{NoLearning: true},
		{NoLearning: true, StaticOrder: true},
	}
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 120; i++ {
		nVars := 3 + r.Intn(8)
		nClauses := 1 + r.Intn(nVars*4)
		clauses := randomInstance(r, nVars, nClauses, 3)
		wantSat, _ := bruteForce(nVars, clauses)
		for vi, opts := range variants {
			s := NewSolverOpts(opts)
			s.EnsureVars(nVars)
			loadClauses(s, clauses)
			got := s.Solve()
			if (got == Sat) != wantSat {
				t.Fatalf("instance %d variant %d (%+v): got %v, want sat=%v",
					i, vi, opts, got, wantSat)
			}
			if got == Sat {
				checkModel(t, s, clauses)
			}
		}
	}
}

// pigeonhole builds PHP(m pigeons, n holes): unsatisfiable when m > n.
// Variable p*n+h+1 means pigeon p sits in hole h.
func pigeonhole(s *Solver, m, n int) {
	v := func(p, h int) Lit { return Lit(p*n + h + 1) }
	for p := 0; p < m; p++ {
		c := make([]Lit, n)
		for h := 0; h < n; h++ {
			c[h] = v(p, h)
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < m; p1++ {
			for p2 := p1 + 1; p2 < m; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 3; n <= 7; n++ {
		s := NewSolver()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want UNSAT", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want SAT", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	s.AddClause(-1, 2) // x1 -> x2
	s.AddClause(-2, 3) // x2 -> x3

	if s.SolveAssuming([]Lit{1, -3}) != Unsat {
		t.Fatal("assuming x1 and !x3 must be UNSAT")
	}
	core := s.FinalConflict()
	if len(core) == 0 {
		t.Fatal("expected a nonempty final conflict")
	}
	// The core must be a subset of the assumptions and itself unsat.
	for _, l := range core {
		if l != 1 && l != -3 {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	// Solver must remain usable: the same instance is SAT without the
	// conflicting assumption.
	if s.SolveAssuming([]Lit{1}) != Sat {
		t.Fatal("assuming only x1 must be SAT")
	}
	if !s.Value(3) {
		t.Error("x3 must be implied by x1")
	}
	if s.Solve() != Sat {
		t.Fatal("no assumptions must be SAT")
	}
}

func TestAssumptionCoreMinimalish(t *testing.T) {
	// Irrelevant assumptions must not be required in the core... the
	// final conflict may overapproximate, but assuming exactly the core
	// must still be UNSAT (core soundness).
	s := NewSolver()
	s.AddClause(-1, -2) // not both x1, x2
	s.EnsureVars(6)
	if s.SolveAssuming([]Lit{5, 1, 6, 2}) != Unsat {
		t.Fatal("want UNSAT")
	}
	core := append([]Lit(nil), s.FinalConflict()...)
	if s.SolveAssuming(core) != Unsat {
		t.Fatalf("core %v is not itself unsatisfiable", core)
	}
}

func TestAssumptionsFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 150; i++ {
		nVars := 4 + r.Intn(8)
		clauses := randomInstance(r, nVars, 2+r.Intn(nVars*3), 3)
		nAssume := 1 + r.Intn(3)
		seenVar := map[int]bool{}
		var assumps []Lit
		for len(assumps) < nAssume {
			v := r.Intn(nVars) + 1
			if seenVar[v] {
				continue
			}
			seenVar[v] = true
			l := Lit(v)
			if r.Intn(2) == 0 {
				l = -l
			}
			assumps = append(assumps, l)
		}
		// Reference: brute force with assumptions as unit clauses.
		ref := append([][]Lit{}, clauses...)
		for _, a := range assumps {
			ref = append(ref, []Lit{a})
		}
		wantSat, _ := bruteForce(nVars, ref)

		s := NewSolver()
		s.EnsureVars(nVars)
		loadClauses(s, clauses)
		got := s.SolveAssuming(assumps)
		if (got == Sat) != wantSat {
			t.Fatalf("instance %d: got %v, want sat=%v (assumps %v)", i, got, wantSat, assumps)
		}
		if got == Sat {
			checkModel(t, s, ref)
		} else {
			core := append([]Lit(nil), s.FinalConflict()...)
			// Core must be subset of assumptions.
			for _, l := range core {
				ok := false
				for _, a := range assumps {
					if a == l {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("instance %d: core lit %v not among assumptions %v", i, l, assumps)
				}
			}
			// Core must be sufficient for unsatisfiability.
			refCore := append([][]Lit{}, clauses...)
			for _, a := range core {
				refCore = append(refCore, []Lit{a})
			}
			if coreSat, _ := bruteForce(nVars, refCore); coreSat {
				t.Fatalf("instance %d: core %v does not entail UNSAT", i, core)
			}
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := NewSolver()
	s.AddClause(1, 2)
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	s.AddClause(-1)
	if s.Solve() != Sat || !s.Value(2) {
		t.Fatal("after adding !x1, want SAT with x2")
	}
	s.AddClause(-2)
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT after blocking both")
	}
}

func TestIncrementalFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 60; i++ {
		nVars := 4 + r.Intn(8)
		all := randomInstance(r, nVars, 4+r.Intn(nVars*3), 3)
		s := NewSolver()
		s.EnsureVars(nVars)
		var added [][]Lit
		for len(added) < len(all) {
			chunk := 1 + r.Intn(3)
			for j := 0; j < chunk && len(added) < len(all); j++ {
				c := all[len(added)]
				added = append(added, c)
				s.AddClause(c...)
			}
			wantSat, _ := bruteForce(nVars, added)
			got := s.Solve()
			if (got == Sat) != wantSat {
				t.Fatalf("instance %d after %d clauses: got %v, want sat=%v",
					i, len(added), got, wantSat)
			}
			if got == Sat {
				checkModel(t, s, added)
			}
			if got == Unsat {
				break
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 6, 5)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("expected nonzero stats, got %+v", st)
	}
}

func TestValuePanicsWithoutModel(t *testing.T) {
	s := NewSolver()
	s.AddClause(1)
	s.AddClause(-1)
	s.Solve()
	defer func() {
		if recover() == nil {
			t.Error("Value after UNSAT must panic")
		}
	}()
	s.Value(1)
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, int64(i)); got != w {
			t.Errorf("luby(2,%d): got %d, want %d", i, got, w)
		}
	}
}

func TestAddClauseAfterUnsat(t *testing.T) {
	s := NewSolver()
	s.AddClause(1)
	if ok := s.AddClause(-1); ok {
		t.Error("AddClause creating contradiction must report failure")
	}
	if s.AddClause(2) {
		t.Error("AddClause after contradiction must report failure")
	}
}

func TestEnsureVars(t *testing.T) {
	s := NewSolver()
	s.EnsureVars(10)
	if s.NumVars() != 10 {
		t.Fatalf("NumVars: got %d, want 10", s.NumVars())
	}
	s.EnsureVars(5)
	if s.NumVars() != 10 {
		t.Error("EnsureVars must not shrink")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String wrong")
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := NewSolverOpts(Options{MaxConflicts: 1})
	pigeonhole(s, 8, 7)
	if got := s.Solve(); got != Unknown {
		// A tiny budget on a hard instance should exhaust. (If the solver
		// got lucky the test would be flaky, so only check it's a legal
		// outcome.)
		if got != Unsat {
			t.Fatalf("got %v, want Unknown or Unsat", got)
		}
	}
}

func TestHardRandomInstances(t *testing.T) {
	// Near the phase-transition ratio (4.26 clauses/var for 3-SAT),
	// exercising restarts and clause deletion.
	r := rand.New(rand.NewSource(46))
	for i := 0; i < 10; i++ {
		nVars := 18
		clauses := randomInstance(r, nVars, int(4.3*float64(nVars)), 3)
		wantSat, _ := bruteForce(nVars, clauses)
		s := NewSolver()
		s.EnsureVars(nVars)
		loadClauses(s, clauses)
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("instance %d: got %v, want sat=%v", i, got, wantSat)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

func TestModelEnumerationViaBlocking(t *testing.T) {
	// Count models of (x1 | x2) & (x2 | x3) by blocking clauses; compare
	// against brute-force count.
	clauses := [][]Lit{{1, 2}, {2, 3}}
	nVars := 3
	wantCount := 0
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, c := range clauses {
			cs := false
			for _, l := range c {
				if (mask&(1<<(l.Var()-1)) != 0) != l.Neg() {
					cs = true
				}
			}
			if !cs {
				ok = false
			}
		}
		if ok {
			wantCount++
		}
	}
	s := NewSolver()
	s.EnsureVars(nVars)
	loadClauses(s, clauses)
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 1<<nVars {
			t.Fatal("enumeration does not terminate")
		}
		block := make([]Lit, nVars)
		for v := 1; v <= nVars; v++ {
			if s.Value(v) {
				block[v-1] = Lit(-v)
			} else {
				block[v-1] = Lit(v)
			}
		}
		s.AddClause(block...)
	}
	if count != wantCount {
		t.Fatalf("model count: got %d, want %d", count, wantCount)
	}
}

func TestReduceDBKeepsSoundness(t *testing.T) {
	// Force many conflicts so reduceDB triggers, then verify a SAT result
	// on a model-checkable instance.
	r := rand.New(rand.NewSource(47))
	s := NewSolver()
	s.maxLearnts = 10 // force aggressive reduction
	nVars := 16
	clauses := randomInstance(r, nVars, 60, 3)
	s.EnsureVars(nVars)
	loadClauses(s, clauses)
	wantSat, _ := bruteForce(nVars, clauses)
	got := s.Solve()
	if (got == Sat) != wantSat {
		t.Fatalf("got %v, want sat=%v", got, wantSat)
	}
	if got == Sat {
		checkModel(t, s, clauses)
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	for _, n := range []int{6, 7, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSolver()
				pigeonhole(s, n+1, n)
				if s.Solve() != Unsat {
					b.Fatal("want UNSAT")
				}
			}
		})
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	r := rand.New(rand.NewSource(48))
	nVars := 60
	instances := make([][][]Lit, 8)
	for i := range instances {
		instances[i] = randomInstance(r, nVars, int(4.2*float64(nVars)), 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		s.EnsureVars(nVars)
		loadClauses(s, instances[i%len(instances)])
		s.Solve()
	}
}

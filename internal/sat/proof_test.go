package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// solveWithProof loads the clauses, solves with logging, and returns the
// proof plus the status.
func solveWithProof(clauses [][]Lit, nVars int) (*Proof, Status, *Solver) {
	s := NewSolver()
	p := s.AttachProof()
	s.EnsureVars(nVars)
	for _, c := range clauses {
		s.AddClause(c...)
	}
	return p, s.Solve(), s
}

func TestProofPigeonholeVerifies(t *testing.T) {
	for n := 3; n <= 6; n++ {
		var clauses [][]Lit
		v := func(pn, h int) Lit { return Lit(pn*n + h + 1) }
		for pn := 0; pn < n+1; pn++ {
			var c []Lit
			for h := 0; h < n; h++ {
				c = append(c, v(pn, h))
			}
			clauses = append(clauses, c)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 < n+1; p1++ {
				for p2 := p1 + 1; p2 < n+1; p2++ {
					clauses = append(clauses, []Lit{-v(p1, h), -v(p2, h)})
				}
			}
		}
		proof, st, _ := solveWithProof(clauses, (n+1)*n)
		if st != Unsat {
			t.Fatalf("PHP(%d+1,%d): want UNSAT", n, n)
		}
		if err := CheckRUP(clauses, proof); err != nil {
			t.Fatalf("PHP(%d+1,%d): proof rejected: %v", n, n, err)
		}
	}
}

func TestProofRandomUnsatVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	verified := 0
	for i := 0; i < 120 && verified < 25; i++ {
		nv := 6 + r.Intn(6)
		clauses := randomInstance(r, nv, nv*6, 3)
		proof, st, _ := solveWithProof(clauses, nv)
		if st != Unsat {
			continue
		}
		verified++
		if err := CheckRUP(clauses, proof); err != nil {
			t.Fatalf("instance %d: proof rejected: %v", i, err)
		}
	}
	if verified == 0 {
		t.Fatal("no UNSAT instances drawn; adjust generator")
	}
}

func TestProofCorruptionDetected(t *testing.T) {
	// A proof for one instance must not verify against a different one.
	clauses := [][]Lit{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}
	proof, st, _ := solveWithProof(clauses, 2)
	if st != Unsat {
		t.Fatal("want UNSAT")
	}
	if err := CheckRUP(clauses, proof); err != nil {
		t.Fatalf("genuine proof rejected: %v", err)
	}
	// Remove a needed original clause: the proof must now fail.
	if err := CheckRUP(clauses[:3], proof); err == nil {
		t.Error("proof must fail against a weaker formula")
	}
	// Inject a bogus lemma at the front: not RUP.
	bogus := &Proof{Steps: append([]ProofStep{{Clause: []Lit{3}}}, proof.Steps...)}
	if err := CheckRUP(clauses, bogus); err == nil {
		t.Error("bogus lemma must be rejected")
	}
	// A proof missing the empty clause is incomplete.
	var trimmed Proof
	for _, stp := range proof.Steps {
		if len(stp.Clause) != 0 || stp.Delete {
			trimmed.Steps = append(trimmed.Steps, stp)
		}
	}
	if err := CheckRUP(clauses, &trimmed); err == nil ||
		!strings.Contains(err.Error(), "empty clause") {
		t.Errorf("incomplete proof must be rejected, got %v", err)
	}
}

func TestProofDeletionsDoNotBreakChecking(t *testing.T) {
	// Force clause-DB reductions during an UNSAT solve and verify the
	// proof still checks with its deletion lines.
	r := rand.New(rand.NewSource(5))
	nv := 16
	clauses := randomInstance(r, nv, nv*7, 3)
	s := NewSolver()
	p := s.AttachProof()
	s.maxLearnts = 8 // aggressive reduction
	s.EnsureVars(nv)
	for _, c := range clauses {
		s.AddClause(c...)
	}
	if st := s.Solve(); st != Unsat {
		t.Skip("instance drew SAT; deletion path untested here")
	}
	hasDelete := false
	for _, stp := range p.Steps {
		if stp.Delete {
			hasDelete = true
		}
	}
	if err := CheckRUP(clauses, p); err != nil {
		t.Fatalf("proof with deletions rejected (deletions present: %v): %v", hasDelete, err)
	}
}

func TestWriteDRATFormat(t *testing.T) {
	p := &Proof{Steps: []ProofStep{
		{Clause: []Lit{1, -2}},
		{Clause: []Lit{1, -2}, Delete: true},
		{},
	}}
	var buf bytes.Buffer
	if err := p.WriteDRAT(&buf); err != nil {
		t.Fatal(err)
	}
	want := "1 -2 0\nd 1 -2 0\n0\n"
	if buf.String() != want {
		t.Errorf("DRAT output:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestAttachProofPanicsWithoutLearning(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AttachProof under NoLearning must panic")
		}
	}()
	NewSolverOpts(Options{NoLearning: true}).AttachProof()
}

func TestProofEmptyOnAddClauseConflict(t *testing.T) {
	s := NewSolver()
	p := s.AttachProof()
	s.AddClause(1)
	s.AddClause(-1)
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT")
	}
	if err := CheckRUP([][]Lit{{1}, {-1}}, p); err != nil {
		t.Fatalf("unit-conflict proof rejected: %v", err)
	}
}

func TestEmptyAddClausePoisonsAndLogsEmptyStep(t *testing.T) {
	// Documents the contract the enumeration loop must respect: a clause
	// with zero literals is the empty clause — it flips the solver to
	// not-okay (every later Solve answers Unsat without searching) and,
	// under proof logging, lands as the terminal empty proof step. An
	// AllSAT loop that blocks an empty projection this way poisons its
	// solver and pollutes the proof, which is why core's enumerator
	// terminates the empty-vocabulary case without emitting the clause.
	s := NewSolver()
	p := s.AttachProof()
	s.AddClause(1, 2)
	if s.Solve() != Sat {
		t.Fatal("setup solve must be Sat")
	}
	if ok := s.AddClause(); ok {
		t.Fatal("empty AddClause must report unsatisfiability")
	}
	if s.Okay() {
		t.Fatal("empty AddClause must poison the solver (okay=false)")
	}
	if s.Solve() != Unsat {
		t.Fatal("poisoned solver must answer Unsat")
	}
	last := p.Steps[len(p.Steps)-1]
	if len(last.Clause) != 0 || last.Delete {
		t.Fatalf("last proof step = %+v, want the empty clause", last)
	}
	if err := CheckRUP([][]Lit{{1, 2}, {}}, p); err != nil {
		t.Fatalf("proof with explicit empty original rejected: %v", err)
	}
}

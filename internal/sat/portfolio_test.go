package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestPortfolioSat(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 20; i++ {
		nVars := 10 + r.Intn(8)
		clauses := randomInstance(r, nVars, nVars*3, 3)
		wantSat, _ := bruteForce(nVars, clauses)
		res := SolvePortfolio(context.Background(), clauses, nVars, nil)
		if (res.Status == Sat) != wantSat {
			t.Fatalf("instance %d: portfolio %v, want sat=%v", i, res.Status, wantSat)
		}
		if res.Status == Sat {
			if res.Winner < 0 || res.Model == nil {
				t.Fatal("winner/model missing")
			}
			// Model must satisfy every clause.
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if res.Model[l.Var()-1] != l.Neg() {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("portfolio model violates clause %v", c)
				}
			}
		}
	}
}

func TestPortfolioUnsat(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 7, 6)
	var clauses [][]Lit
	// Rebuild the PHP clauses directly.
	n := 6
	v := func(pn, h int) Lit { return Lit(pn*n + h + 1) }
	for pn := 0; pn < n+1; pn++ {
		var c []Lit
		for h := 0; h < n; h++ {
			c = append(c, v(pn, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+1; p1++ {
			for p2 := p1 + 1; p2 < n+1; p2++ {
				clauses = append(clauses, []Lit{-v(p1, h), -v(p2, h)})
			}
		}
	}
	res := SolvePortfolio(context.Background(), clauses, (n+1)*n, []Options{
		{}, {NoRestarts: true}, {StaticOrder: true},
	})
	if res.Status != Unsat {
		t.Fatalf("PHP must be UNSAT, got %v", res.Status)
	}
}

func TestPortfolioCancellation(t *testing.T) {
	// A hard instance with an already-cancelled context returns Unknown
	// promptly and leaks no goroutines past the call.
	s := NewSolver()
	pigeonhole(s, 12, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var clauses [][]Lit
	n := 11
	v := func(pn, h int) Lit { return Lit(pn*n + h + 1) }
	for pn := 0; pn < n+1; pn++ {
		var c []Lit
		for h := 0; h < n; h++ {
			c = append(c, v(pn, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+1; p1++ {
			for p2 := p1 + 1; p2 < n+1; p2++ {
				clauses = append(clauses, []Lit{-v(p1, h), -v(p2, h)})
			}
		}
	}
	start := time.Now()
	res := SolvePortfolio(ctx, clauses, (n+1)*n, nil)
	if res.Status != Unknown || res.Winner != -1 {
		t.Fatalf("cancelled portfolio must be Unknown/-1, got %+v", res)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation took too long")
	}
}

func TestInterruptStopsSolve(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 12, 11) // far beyond quick solving
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(20 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != Unknown && st != Unsat {
			t.Fatalf("interrupted solve returned %v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Interrupt did not stop the solve")
	}
	// The solver must remain usable afterwards.
	s2 := NewSolver()
	s2.AddClause(1)
	if s2.Solve() != Sat {
		t.Fatal("fresh solve after interrupt broken")
	}
}

func TestInterruptIsSticky(t *testing.T) {
	s := NewSolver()
	s.AddClause(1, 2)
	s.Interrupt()
	if s.Solve() != Unknown {
		t.Fatal("a pending interrupt must stop Solve before it starts")
	}
	s.ClearInterrupt()
	if s.Solve() != Sat {
		t.Fatal("ClearInterrupt must re-arm the solver")
	}
}

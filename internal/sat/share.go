package sat

import "sync/atomic"

// Clause sharing between portfolio workers.
//
// Workers exchange small-LBD learnt clauses through a fixed-size ring of
// single-writer-per-publish slots guarded by per-slot sequence numbers
// (a seqlock). A publisher claims a slot by CAS-ing its sequence from
// even (stable) to odd (writing), stores the payload, and releases with
// seq+2; if the CAS loses — another publisher holds the slot, or a lap
// arrived first — the clause is simply dropped. Sharing is best-effort:
// a dropped or overwritten clause costs nothing but a missed pruning
// opportunity, because every shared clause is a resolvent of the common
// problem instance and therefore implied — importing any subset, in any
// order, preserves soundness.
//
// Consumers scan all slots at restart boundaries (decision level 0),
// skipping slots that are mid-write (odd seq), already seen (per-consumer
// ticket cursor), or torn (seq changed across the payload read). Every
// payload word — sequence, ticket, meta, and each literal — is an atomic,
// so the protocol is also race-detector-clean: the seqlock provides
// multi-word *consistency*, the atomics provide word-level visibility.

// maxSharedLits bounds the clauses worth exchanging; longer resolvents
// rarely prune other workers' searches and would bloat the slots.
const maxSharedLits = 8

// DefaultShareLBD is the largest LBD a portfolio worker exports.
const DefaultShareLBD = 4

// DefaultRingSlots is the ring capacity used by portfolio races.
const DefaultRingSlots = 256

type shareSlot struct {
	seq    atomic.Uint64 // even = stable, odd = being written
	ticket atomic.Uint64 // global publish number (1-based); 0 = never written
	meta   atomic.Uint64 // src<<32 | nLits
	lits   [maxSharedLits]atomic.Int32
}

// ClauseRing is the lock-free exchange between portfolio workers. One
// ring serves one race; attach solvers with SetShare.
type ClauseRing struct {
	slots     []shareSlot
	pos       atomic.Uint64 // ticket counter; slot index = ticket % len(slots)
	published atomic.Int64
	dropped   atomic.Int64
}

// NewClauseRing returns a ring with the given number of slots (minimum 1).
func NewClauseRing(slots int) *ClauseRing {
	if slots < 1 {
		slots = 1
	}
	return &ClauseRing{slots: make([]shareSlot, slots)}
}

// Published returns how many clauses were successfully written.
func (r *ClauseRing) Published() int64 { return r.published.Load() }

// Dropped returns how many publish attempts lost a slot claim.
func (r *ClauseRing) Dropped() int64 { return r.dropped.Load() }

// Publish offers a clause to the ring on behalf of worker src. It never
// blocks: contention for the slot drops the clause. Reports whether the
// clause was written.
func (r *ClauseRing) Publish(src int, lits []Lit) bool {
	n := len(lits)
	if n == 0 || n > maxSharedLits {
		return false
	}
	t := r.pos.Add(1) // 1-based so ticket 0 means "slot never written"
	slot := &r.slots[t%uint64(len(r.slots))]
	seq := slot.seq.Load()
	if seq&1 == 1 || !slot.seq.CompareAndSwap(seq, seq+1) {
		r.dropped.Add(1)
		return false
	}
	slot.ticket.Store(t)
	slot.meta.Store(uint64(src)<<32 | uint64(n))
	for i, l := range lits {
		slot.lits[i].Store(int32(l))
	}
	slot.seq.Store(seq + 2)
	r.published.Add(1)
	return true
}

// SetShare attaches the solver to a ring as worker id, exporting learnt
// clauses with LBD ≤ maxLBD and importing others' clauses at restart
// boundaries when importing is true. Pass a nil ring to detach. Must be
// called at decision level 0 (between solves).
func (s *Solver) SetShare(ring *ClauseRing, id, maxLBD int, importing bool) {
	if s.decisionLevel() != 0 {
		panic("sat: SetShare called above decision level 0")
	}
	s.shareRing = ring
	s.shareID = int32(id)
	s.shareLBD = maxLBD
	s.shareIn = importing && ring != nil
	s.shareSeen = nil
	if s.shareIn {
		s.shareSeen = make([]uint64, len(ring.slots))
	}
}

// exportLearnt offers a freshly learnt clause to the attached ring.
// Called from search immediately after the clause is recorded.
func (s *Solver) exportLearnt(learnt []lit, lbd int) {
	if s.shareRing == nil || lbd > s.shareLBD || len(learnt) == 0 || len(learnt) > maxSharedLits {
		return
	}
	var buf [maxSharedLits]Lit
	for i, l := range learnt {
		buf[i] = toExternal(l)
	}
	if s.shareRing.Publish(int(s.shareID), buf[:len(learnt)]) {
		s.stats.Exported++
	}
}

// importShared drains unseen ring entries into the solver at decision
// level 0. Returns false if an imported clause exposed unsatisfiability
// (AddClause derived the empty clause); the solver is then in the okay ==
// false state and the caller must return Unsat. Entries that fail
// validation — empty, oversized, a zero literal, or a variable beyond
// this solver's range — are marked seen and skipped, so one malformed
// publish can never corrupt an importer.
func (s *Solver) importShared() bool {
	if s.shareRing == nil || !s.shareIn {
		return true
	}
	var buf [maxSharedLits]Lit
	for i := range s.shareRing.slots {
		slot := &s.shareRing.slots[i]
		seq := slot.seq.Load()
		if seq&1 == 1 {
			continue // mid-write; catch it next restart
		}
		t := slot.ticket.Load()
		if t == 0 || t <= s.shareSeen[i] {
			continue // never written, or already consumed
		}
		meta := slot.meta.Load()
		n := int(meta & 0xffffffff)
		src := int32(meta >> 32)
		valid := n >= 1 && n <= maxSharedLits
		if valid {
			for j := 0; j < n; j++ {
				l := Lit(slot.lits[j].Load())
				if l == 0 || l.Var() > s.nVars {
					valid = false
					break
				}
				buf[j] = l
			}
		}
		if slot.seq.Load() != seq {
			continue // torn read; don't mark seen, retry next restart
		}
		s.shareSeen[i] = t
		if !valid || src == s.shareID {
			continue
		}
		s.stats.Imported++
		if !s.AddClause(buf[:n]...) {
			return false
		}
	}
	return true
}

package sat

import (
	"math/rand"
	"testing"
)

// TestWarmProfileRoundTrip: a profile extracted from one solve biases a
// fresh solver over the same instance without changing any verdict.
func TestWarmProfileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		nVars := 10 + r.Intn(8)
		clauses := randomInstance(r, nVars, nVars*4, 3)
		wantSat, _ := bruteForce(nVars, clauses)

		first := NewSolver()
		first.EnsureVars(nVars)
		for _, c := range clauses {
			first.AddClause(c...)
		}
		first.Solve()
		p := first.ExtractProfile()
		if len(p.Phases) != nVars || len(p.Activity) != nVars {
			t.Fatalf("profile sized (%d,%d), want %d", len(p.Phases), len(p.Activity), nVars)
		}

		warm := NewSolver()
		warm.EnsureVars(nVars)
		for _, c := range clauses {
			warm.AddClause(c...)
		}
		warm.ApplyProfile(p)
		if got := warm.Solve(); (got == Sat) != wantSat {
			t.Fatalf("instance %d: warm-started solve %v, want sat=%v", i, got, wantSat)
		}
		if got := warm.Solve(); (got == Sat) != wantSat {
			t.Fatalf("instance %d: warm re-solve %v, want sat=%v", i, got, wantSat)
		}
	}
}

// TestWarmProfilePrefixAndTruncate: profiles apply as a prefix — smaller
// profiles leave later variables alone, larger solvers ignore the tail —
// and Truncate trims in place.
func TestWarmProfilePrefixAndTruncate(t *testing.T) {
	p := &WarmProfile{
		Phases:   []bool{true, false, true, true},
		Activity: []uint16{100, 65535, 3, 9},
	}
	p.Truncate(2)
	if len(p.Phases) != 2 || len(p.Activity) != 2 {
		t.Fatalf("Truncate(2) left (%d,%d)", len(p.Phases), len(p.Activity))
	}
	p.Truncate(10) // growing is a no-op
	if len(p.Phases) != 2 {
		t.Fatalf("Truncate(10) changed length to %d", len(p.Phases))
	}

	s := NewSolver()
	s.EnsureVars(1) // smaller than the profile
	s.AddClause(1)
	s.ApplyProfile(p) // must not panic or write past nVars
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}

	big := NewSolver()
	big.EnsureVars(8) // larger than the profile
	big.AddClause(1, 2)
	big.ApplyProfile(p)
	if st := big.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	big.ApplyProfile(nil) // nil profile is a no-op
}

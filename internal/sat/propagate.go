package sat

// propagate performs unit propagation over all enqueued literals using
// two-watched literals. It returns the conflicting clause, or crefUndef if
// the queue drained without conflict.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; visit watchers of p (stored under p)
		s.qhead++
		s.stats.Propagations++

		// The watch list is compacted in place with a lagging write index;
		// while no watcher has been dropped or rewritten (n == i, the
		// common case: blockers true), entries are not rewritten at all.
		ws := s.watches[p]
		n := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.ca.deleted(w.c) {
				continue // lazily drop deleted clauses
			}
			// Fast path: blocker already true.
			if s.value(w.blocker) == lTrue {
				if n != i {
					ws[n] = w
				}
				n++
				continue
			}
			c := w.c
			cl := s.ca.lits(c)
			// Ensure the false literal (¬p) is at position 1.
			falseLit := p.flip()
			if cl[0] == falseLit {
				cl[0], cl[1] = cl[1], cl[0]
			}
			first := cl[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != lFalse {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1].flip()] = append(s.watches[cl[1].flip()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved elsewhere
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				n += copy(ws[n:], ws[i+1:])
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return crefUndef
}

package sat

// propagate performs unit propagation over all enqueued literals using
// two-watched literals. It returns the conflicting clause, or nil if the
// queue drained without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; visit watchers of p (stored under p)
		s.qhead++
		s.stats.Propagations++

		// The watch list is compacted in place with a lagging write index;
		// while no watcher has been dropped or rewritten (n == i, the
		// common case: blockers true), entries are not rewritten at all.
		ws := s.watches[p]
		n := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if w.c.deleted {
				continue // lazily drop deleted clauses
			}
			// Fast path: blocker already true.
			if s.value(w.blocker) == lTrue {
				if n != i {
					ws[n] = w
				}
				n++
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is at position 1.
			falseLit := p.flip()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].flip()] = append(s.watches[c.lits[1].flip()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved elsewhere
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				n += copy(ws[n:], ws[i+1:])
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

package sat

// propagate performs unit propagation over all enqueued literals using
// two-watched literals. It returns the conflicting clause, or nil if the
// queue drained without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; visit watchers of p (stored under p)
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if w.c.deleted {
				continue // lazily drop deleted clauses
			}
			// Fast path: blocker already true.
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is at position 1.
			falseLit := p.flip()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].flip()] = append(s.watches[c.lits[1].flip()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved elsewhere
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, restore list.
				kept = append(kept, ws[i+1:]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
	}
	return nil
}

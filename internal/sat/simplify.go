package sat

// Simplify performs top-level (decision level 0) inprocessing on the
// problem clauses:
//
//   - removes clauses satisfied by root-level assignments,
//   - strengthens clauses by deleting root-falsified literals,
//   - removes subsumed clauses (a clause implied by a subset clause), and
//   - applies self-subsuming resolution (if C ∨ x subsumes D except for
//     ¬x in D, drop ¬x from D).
//
// Simplify preserves satisfiability and all models over the original
// variables; it may only be called at decision level 0. It returns the
// number of clauses removed plus literals deleted.
func (s *Solver) Simplify() int {
	if s.decisionLevel() != 0 {
		panic("sat: Simplify called above decision level 0")
	}
	if !s.okay {
		return 0
	}
	removed := 0

	// Pass 1: strengthen against root assignments.
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		satisfied := false
		kept := c.lits[:0]
		dropped := 0
		for _, l := range c.lits {
			switch s.value(l) {
			case lTrue:
				satisfied = true
			case lFalse:
				dropped++
				continue
			}
			kept = append(kept, l)
			if satisfied {
				break
			}
		}
		if satisfied {
			s.detachAll(c)
			removed++
			continue
		}
		if dropped == 0 {
			continue
		}
		// Rebuild the clause under its new length. Watches may now point
		// at removed literals; re-adding via AddClause keeps invariants.
		lits := make([]Lit, len(kept))
		for i, l := range kept {
			lits[i] = toExternal(l)
		}
		s.detachAll(c)
		removed += dropped
		if s.proof != nil {
			// The strengthened clause is a RUP lemma.
			s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: lits})
		}
		if !s.AddClause(lits...) {
			return removed
		}
	}
	s.compactClauses()

	// Pass 2: backward subsumption + self-subsuming resolution with
	// signature filtering. Instead of testing all clause pairs (quadratic
	// in the clause count, which dominates compile time at full-catalog
	// scale), each candidate subsumer is tested only against clauses
	// sharing its least-occurring variable — any clause it subsumes (or
	// strengthens) must contain that variable in one polarity or the
	// other, so the occurrence list is a complete candidate set.
	type entry struct {
		c   *clause
		sig uint64
		set map[lit]bool
	}
	var entries []entry
	occ := make([][]int32, s.nVars) // var → indices of entries containing it
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		var sig uint64
		set := make(map[lit]bool, len(c.lits))
		for _, l := range c.lits {
			sig |= 1 << (uint(l.v()) % 64)
			set[l] = true
			occ[l.v()] = append(occ[l.v()], int32(len(entries)))
		}
		entries = append(entries, entry{c, sig, set})
	}
	for i := 0; i < len(entries); i++ {
		small := entries[i]
		if small.c.deleted {
			continue
		}
		// Probe via the variable with the shortest occurrence list.
		probe := small.c.lits[0].v()
		for _, l := range small.c.lits[1:] {
			if len(occ[l.v()]) < len(occ[probe]) {
				probe = l.v()
			}
		}
		for _, j := range occ[probe] {
			if int(j) == i {
				continue
			}
			big := entries[j]
			if big.c.deleted || len(big.c.lits) < len(small.c.lits) {
				continue
			}
			if small.sig&^big.sig != 0 {
				continue // signature says small has a var big lacks
			}
			// Count matches and the single complementary literal, if any.
			missing := 0
			var flipLit lit
			flips := 0
			for l := range small.set {
				switch {
				case big.set[l]:
				case big.set[l.flip()]:
					flips++
					flipLit = l.flip()
				default:
					missing++
				}
			}
			if missing > 0 {
				continue
			}
			if flips == 0 {
				// small subsumes big.
				s.detachAll(big.c)
				s.logDelete(big.c)
				removed++
			} else if flips == 1 && len(big.c.lits) > 2 {
				// Self-subsuming resolution: drop flipLit from big.
				lits := make([]Lit, 0, len(big.c.lits)-1)
				for _, l := range big.c.lits {
					if l != flipLit {
						lits = append(lits, toExternal(l))
					}
				}
				s.detachAll(big.c)
				removed++
				if s.proof != nil {
					s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: lits})
				}
				if !s.AddClause(lits...) {
					return removed
				}
				// The strengthened clause was appended to s.clauses; it
				// is not revisited this pass (acceptable: Simplify is
				// idempotent across calls).
				big.c.deleted = true
			}
		}
	}
	s.compactClauses()
	return removed
}

// compactClauses drops deleted clauses from the problem-clause list.
func (s *Solver) compactClauses() {
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
}

package sat

// Simplify performs top-level (decision level 0) inprocessing on the
// problem clauses:
//
//   - removes clauses satisfied by root-level assignments,
//   - strengthens clauses by deleting root-falsified literals,
//   - removes subsumed clauses (a clause implied by a subset clause), and
//   - applies self-subsuming resolution (if C ∨ x subsumes D except for
//     ¬x in D, drop ¬x from D).
//
// Simplify preserves satisfiability and all models over the original
// variables; it may only be called at decision level 0. It returns the
// number of clauses removed plus literals deleted.
func (s *Solver) Simplify() int {
	if s.decisionLevel() != 0 {
		panic("sat: Simplify called above decision level 0")
	}
	if !s.okay {
		return 0
	}
	removed := 0

	// Pass 1: strengthen against root assignments. AddClause appends to
	// both s.clauses and the arena; the range snapshots the clause list,
	// and crefs stay valid across arena appends, but literal slices must
	// not be held across the AddClause call.
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		cl := s.ca.lits(c)
		satisfied := false
		dropped := 0
		for _, l := range cl {
			switch s.value(l) {
			case lTrue:
				satisfied = true
			case lFalse:
				dropped++
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			s.detachAll(c)
			removed++
			continue
		}
		if dropped == 0 {
			continue
		}
		// Rebuild the clause under its new length. Watches may now point
		// at removed literals; re-adding via AddClause keeps invariants.
		lits := make([]Lit, 0, len(cl)-dropped)
		for _, l := range cl {
			if s.value(l) != lFalse {
				lits = append(lits, toExternal(l))
			}
		}
		s.detachAll(c)
		removed += dropped
		if s.proof != nil {
			// The strengthened clause is a RUP lemma.
			s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: lits})
		}
		if !s.AddClause(lits...) {
			return removed
		}
	}
	s.compactClauses()

	// Pass 2: backward subsumption + self-subsuming resolution with
	// signature filtering. Instead of testing all clause pairs (quadratic
	// in the clause count, which dominates compile time at full-catalog
	// scale), each candidate subsumer is tested only against clauses
	// sharing its least-occurring variable — any clause it subsumes (or
	// strengthens) must contain that variable in one polarity or the
	// other, so the occurrence list is a complete candidate set.
	//
	// Literal membership in the candidate subsumer is tested against a
	// generation-stamped mark array (one uint64 per internal literal)
	// instead of a per-clause hash set: marking the small clause is a
	// handful of stores, each membership probe one load, and nothing is
	// allocated per clause. The subsume/strengthen decisions depend only
	// on aggregate counts (and on flipLit, which is unique when flips ==
	// 1), so the outcome is identical to the set-based version.
	type entry struct {
		c   cref
		sig uint64
	}
	if len(s.simpMark) < 2*s.nVars {
		s.simpMark = make([]uint64, 2*s.nVars)
		s.simpGen = 0
	}
	mark := s.simpMark
	// Occurrence lists in CSR form: one counting pass sizes a flat slab
	// and per-variable offsets exactly, so building them is three fixed
	// allocations instead of append-growing one slice per variable.
	nLive, totalLits := 0, 0
	for _, c := range s.clauses {
		if !s.ca.deleted(c) {
			nLive++
			totalLits += s.ca.size(c)
		}
	}
	entries := make([]entry, 0, nLive)
	occStart := make([]int32, s.nVars+1) // var v's list is occSlab[occStart[v]:occStart[v+1]]
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		for _, l := range s.ca.lits(c) {
			occStart[l.v()+1]++
		}
	}
	for v := 0; v < s.nVars; v++ {
		occStart[v+1] += occStart[v]
	}
	occSlab := make([]int32, totalLits)
	cursor := make([]int32, s.nVars)
	copy(cursor, occStart[:s.nVars])
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		var sig uint64
		for _, l := range s.ca.lits(c) {
			sig |= 1 << (uint(l.v()) % 64)
			occSlab[cursor[l.v()]] = int32(len(entries))
			cursor[l.v()]++
		}
		entries = append(entries, entry{c, sig})
	}
	occLen := func(v uint32) int32 { return occStart[v+1] - occStart[v] }
	for i := 0; i < len(entries); i++ {
		small := entries[i]
		if s.ca.deleted(small.c) {
			continue
		}
		smallLits := s.ca.lits(small.c)
		smallLen := len(smallLits)
		// Probe via the variable with the shortest occurrence list.
		probe := smallLits[0].v()
		for _, l := range smallLits[1:] {
			if occLen(l.v()) < occLen(probe) {
				probe = l.v()
			}
		}
		// Stamp the small clause's literals into the mark array.
		s.simpGen++
		gen := s.simpGen
		for _, l := range smallLits {
			mark[l] = gen
		}
		for _, j := range occSlab[occStart[probe]:occStart[probe+1]] {
			if int(j) == i {
				continue
			}
			big := entries[j]
			if s.ca.deleted(big.c) || s.ca.size(big.c) < smallLen {
				continue
			}
			if small.sig&^big.sig != 0 {
				continue // signature says small has a var big lacks
			}
			// Count matches and the single complementary literal, if any.
			// Clauses are normalized (each variable at most once), so
			// walking big counts each small literal at most once.
			bigLits := s.ca.lits(big.c)
			matches := 0
			var flipLit lit
			flips := 0
			for _, l := range bigLits {
				if mark[l] == gen {
					matches++
				} else if mark[l.flip()] == gen {
					flips++
					flipLit = l
				}
			}
			if matches+flips < smallLen {
				continue // some small literal missing from big entirely
			}
			if flips == 0 {
				// small subsumes big.
				s.detachAll(big.c)
				s.logDelete(bigLits)
				removed++
			} else if flips == 1 && len(bigLits) > 2 {
				// Self-subsuming resolution: drop flipLit from big.
				lits := make([]Lit, 0, len(bigLits)-1)
				for _, l := range bigLits {
					if l != flipLit {
						lits = append(lits, toExternal(l))
					}
				}
				s.detachAll(big.c)
				removed++
				if s.proof != nil {
					s.proof.Steps = append(s.proof.Steps, ProofStep{Clause: lits})
				}
				if !s.AddClause(lits...) {
					return removed
				}
				// The strengthened clause was appended to s.clauses; it
				// is not revisited this pass (acceptable: Simplify is
				// idempotent across calls). AddClause may have moved the
				// arena; smallLits is not used again this iteration.
			}
		}
	}
	s.compactClauses()
	s.maybeCompact()
	return removed
}

// compactClauses drops deleted clauses from the problem-clause list.
func (s *Solver) compactClauses() {
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !s.ca.deleted(c) {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
}

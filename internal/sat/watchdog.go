package sat

import (
	"context"
	"sync"
)

// This file is the solver's resource-governance surface: per-call work
// budgets (SetBudget), a typed reason for every Unknown verdict
// (StopCause), a context watchdog that converts cancellation into
// Interrupt (Watch), and a deterministic fault-injection seam
// (SetFaultHook) so callers can exercise every degraded path in tests.

// StopCause explains why the last Solve call returned Unknown.
type StopCause int

// Stop causes.
const (
	// StopNone: the last solve reached a verdict (or none ran yet).
	StopNone StopCause = iota
	// StopInterrupt: Interrupt was called (directly, by a Watch
	// watchdog, or by a fault hook).
	StopInterrupt
	// StopConflicts: the conflict budget was exhausted.
	StopConflicts
	// StopDecisions: the decision budget was exhausted.
	StopDecisions
)

// String names the stop cause.
func (c StopCause) String() string {
	switch c {
	case StopInterrupt:
		return "interrupt"
	case StopConflicts:
		return "conflict budget"
	case StopDecisions:
		return "decision budget"
	default:
		return "none"
	}
}

// StopCause reports why the last Solve returned Unknown (StopNone after a
// definitive verdict). Only meaningful from the goroutine that ran Solve.
func (s *Solver) StopCause() StopCause { return s.stopCause }

// SetBudget bounds the work of subsequent Solve calls relative to work
// already done: at most conflicts more conflicts and decisions more
// decisions may be spent (across all further calls) before Solve returns
// Unknown. A zero lifts the corresponding bound. Call again to re-arm a
// fresh allowance for a new phase. Budgets compose with Options
// MaxConflicts/MaxDecisions (absolute caps); whichever trips first wins.
func (s *Solver) SetBudget(conflicts, decisions int64) {
	s.confLimit = 0
	s.decLimit = 0
	if conflicts > 0 {
		s.confLimit = s.stats.Conflicts + conflicts
	}
	if decisions > 0 {
		s.decLimit = s.stats.Decisions + decisions
	}
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// callback; see Options.FaultHook. The hook runs on the solving goroutine
// at every Solve entry and every conflict boundary; returning true
// interrupts the solver at that point. It exists to make degraded paths
// — interrupts and Unknown verdicts at exactly the Nth conflict —
// deterministically reproducible in tests.
func (s *Solver) SetFaultHook(h func(FaultEvent, Stats) bool) { s.opts.FaultHook = h }

// FaultEvent tells a FaultHook where in the solve it is being invoked.
type FaultEvent int

// Fault-hook invocation points.
const (
	// EventSolve fires once at the start of every Solve/SolveAssuming.
	EventSolve FaultEvent = iota
	// EventConflict fires at every conflict boundary, immediately after
	// the conflict is counted (Stats.Conflicts includes it).
	EventConflict
)

// String names the fault event.
func (e FaultEvent) String() string {
	if e == EventConflict {
		return "conflict"
	}
	return "solve"
}

func (s *Solver) fireFault(ev FaultEvent) bool {
	return s.opts.FaultHook != nil && s.opts.FaultHook(ev, s.stats)
}

func (s *Solver) conflictsExhausted() bool {
	if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
		return true
	}
	return s.confLimit > 0 && s.stats.Conflicts >= s.confLimit
}

func (s *Solver) decisionsExhausted() bool {
	if s.opts.MaxDecisions > 0 && s.stats.Decisions >= s.opts.MaxDecisions {
		return true
	}
	return s.decLimit > 0 && s.stats.Decisions >= s.decLimit
}

// unknownCause classifies an Unknown verdict. Interrupts dominate: a
// watchdog or fault hook stopping the solver is reported even if a budget
// happens to be exhausted too.
func (s *Solver) unknownCause() StopCause {
	switch {
	case s.interrupted():
		return StopInterrupt
	case s.conflictsExhausted():
		return StopConflicts
	case s.decisionsExhausted():
		return StopDecisions
	default:
		return StopInterrupt
	}
}

// Watch arms a watchdog that converts ctx cancellation (deadline expiry
// or explicit cancel) into Interrupt on s, making every context-governed
// query bounded: the running Solve returns Unknown at the next conflict
// boundary instead of hanging. If ctx is already done, the interrupt is
// set synchronously before Watch returns, so a subsequent Solve refuses
// to start deterministically.
//
// The returned release function stops the watchdog; call it (typically
// deferred) when the governed query ends. It does not clear a fired
// interrupt — the solver stays stopped, which is what a per-query solver
// wants; call ClearInterrupt explicitly to reuse the solver.
func Watch(ctx context.Context, s *Solver) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	select {
	case <-ctx.Done():
		s.Interrupt()
		return func() {}
	default:
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			s.Interrupt()
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// WatchGroup is the fan-out analogue of Watch: one watchdog goroutine
// interrupting a dynamic set of solvers when a shared context fires.
// A parallel query registers each worker or probe solver with Add and
// detaches it when that solver's work ends; Release stops the watchdog
// when the query is over. After the context has fired, Add interrupts
// the solver synchronously, so a drained pool cannot start new work.
type WatchGroup struct {
	mu      sync.Mutex
	solvers map[*Solver]struct{}
	fired   bool

	stop chan struct{}
	done chan struct{}
}

// WatchAll arms a group watchdog on ctx. With a context that can never
// fire (nil, or a nil Done channel) the group is inert: Add and Release
// still work but cost only the registration bookkeeping. If ctx is
// already done, the group starts in the fired state — every Add
// interrupts its solver deterministically before returning, mirroring
// Watch's synchronous pre-check.
func WatchAll(ctx context.Context) *WatchGroup {
	g := &WatchGroup{solvers: make(map[*Solver]struct{})}
	if ctx == nil || ctx.Done() == nil {
		return g
	}
	select {
	case <-ctx.Done():
		g.fired = true
		return g
	default:
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go func() {
		defer close(g.done)
		select {
		case <-ctx.Done():
			g.fire()
		case <-g.stop:
		}
	}()
	return g
}

func (g *WatchGroup) fire() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fired = true
	for s := range g.solvers {
		s.Interrupt()
	}
}

// Add registers s for interruption and returns its detach function
// (safe to call after Release). If the context already fired, s is
// interrupted synchronously and the registration is a no-op, so a
// subsequent Solve refuses to start.
func (g *WatchGroup) Add(s *Solver) (detach func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fired {
		s.Interrupt()
		return func() {}
	}
	g.solvers[s] = struct{}{}
	return func() {
		g.mu.Lock()
		delete(g.solvers, s)
		g.mu.Unlock()
	}
}

// Release stops the watchdog goroutine; call it exactly once, when the
// governed query ends. Like Watch's release, it does not clear
// interrupts already delivered — per-query solvers stay stopped.
func (g *WatchGroup) Release() {
	if g.stop == nil {
		return
	}
	close(g.stop)
	<-g.done
}

// Package datalog implements a stratified Datalog evaluator with
// semi-naive iteration — the "rule-based systems" alternative the paper
// weighs against SAT solvers and theorem provers when choosing a logic
// substrate (§3.4, citing Datalog and SWI-Prolog).
//
// The engine supports Horn rules with variables and stratified negation.
// It can *check* a fully-specified design (all atoms known) but cannot
// *search* for one — which is precisely the trade-off the paper lands on:
// "the query can be expressed as an existentially quantified formula …
// a SAT/SMT solver can answer", while forward-chaining rule systems only
// derive consequences of given facts. The engine's bridge in package core
// demonstrates both halves of that comparison.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable (capitalized by convention, checked by IsVar) or a
// constant.
type Term struct {
	// Name is the variable name or constant value.
	Name string
	// Var marks the term as a variable.
	Var bool
}

// V returns a variable term.
func V(name string) Term { return Term{Name: name, Var: true} }

// C returns a constant term.
func C(value string) Term { return Term{Name: value} }

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.Name
		if t.Var {
			parts[i] = strings.ToUpper(t.Name[:1]) + t.Name[1:]
		}
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Literal is an atom or its negation.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos returns a positive body literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated body literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Rule is Head :- Body. An empty body asserts the head as a fact schema
// (its arguments must be constants).
type Rule struct {
	Head Atom
	Body []Literal
}

// Program is a set of rules.
type Program struct {
	Rules []Rule
}

// Add appends a rule.
func (p *Program) Add(head Atom, body ...Literal) {
	p.Rules = append(p.Rules, Rule{Head: head, Body: body})
}

// tuple is one ground fact's argument list, joined for set membership.
type tupleSet struct {
	arity  int
	tuples map[string][]string
}

func newTupleSet(arity int) *tupleSet {
	return &tupleSet{arity: arity, tuples: map[string][]string{}}
}

func key(args []string) string { return strings.Join(args, "\x00") }

func (ts *tupleSet) add(args []string) bool {
	k := key(args)
	if _, ok := ts.tuples[k]; ok {
		return false
	}
	cp := append([]string(nil), args...)
	ts.tuples[k] = cp
	return true
}

func (ts *tupleSet) has(args []string) bool {
	_, ok := ts.tuples[key(args)]
	return ok
}

// DB is a fact database: predicate name → ground tuples.
type DB struct {
	rels map[string]*tupleSet
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: map[string]*tupleSet{}} }

// AddFact inserts a ground fact.
func (db *DB) AddFact(pred string, args ...string) error {
	ts, ok := db.rels[pred]
	if !ok {
		ts = newTupleSet(len(args))
		db.rels[pred] = ts
	}
	if ts.arity != len(args) {
		return fmt.Errorf("datalog: %s arity mismatch: %d vs %d", pred, ts.arity, len(args))
	}
	ts.add(args)
	return nil
}

// Has reports whether the ground fact is present.
func (db *DB) Has(pred string, args ...string) bool {
	ts, ok := db.rels[pred]
	return ok && ts.has(args)
}

// All returns every tuple of a predicate, sorted lexicographically.
func (db *DB) All(pred string) [][]string {
	ts, ok := db.rels[pred]
	if !ok {
		return nil
	}
	out := make([][]string, 0, len(ts.tuples))
	for _, t := range ts.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return key(out[i]) < key(out[j])
	})
	return out
}

// Count returns the number of tuples of a predicate.
func (db *DB) Count(pred string) int {
	if ts, ok := db.rels[pred]; ok {
		return len(ts.tuples)
	}
	return 0
}

// Eval evaluates the program over the database bottom-up (semi-naive
// within each stratum) and returns a new database containing the EDB plus
// every derived fact. It fails if the program cannot be stratified
// (negation through recursion).
func (p *Program) Eval(edb *DB) (*DB, error) {
	strata, err := p.stratify()
	if err != nil {
		return nil, err
	}
	out := NewDB()
	for pred, ts := range edb.rels {
		cp := newTupleSet(ts.arity)
		for _, t := range ts.tuples {
			cp.add(t)
		}
		out.rels[pred] = cp
	}
	for _, stratum := range strata {
		if err := evalStratum(stratum, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stratify orders the rules into strata such that negation only refers to
// lower strata.
func (p *Program) stratify() ([][]Rule, error) {
	// Predicate stratum numbers via fixpoint over dependency constraints:
	// head ≥ positive body; head ≥ negative body + 1.
	stratum := map[string]int{}
	for _, r := range p.Rules {
		if _, ok := stratum[r.Head.Pred]; !ok {
			stratum[r.Head.Pred] = 0
		}
		for _, l := range r.Body {
			if _, ok := stratum[l.Atom.Pred]; !ok {
				stratum[l.Atom.Pred] = 0
			}
		}
	}
	n := len(stratum)
	for iter := 0; ; iter++ {
		if iter > n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
		changed := false
		for _, r := range p.Rules {
			for _, l := range r.Body {
				need := stratum[l.Atom.Pred]
				if l.Negated {
					need++
				}
				if stratum[r.Head.Pred] < need {
					stratum[r.Head.Pred] = need
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// evalStratum runs naive iteration to fixpoint over one stratum.
// (Semi-naive delta tracking is applied per round: only rules whose body
// could match a newly derived fact re-fire; with the small fact bases of
// architecture checking, plain fixpoint rounds with early exit suffice
// and stay obviously correct.)
func evalStratum(rules []Rule, db *DB) error {
	for {
		changed := false
		for _, r := range rules {
			derived, err := fire(r, db)
			if err != nil {
				return err
			}
			for _, args := range derived {
				ts, ok := db.rels[r.Head.Pred]
				if !ok {
					ts = newTupleSet(len(args))
					db.rels[r.Head.Pred] = ts
				}
				if ts.arity != len(args) {
					return fmt.Errorf("datalog: %s arity mismatch", r.Head.Pred)
				}
				if ts.add(args) {
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

// fire computes all ground head tuples derivable from one rule.
func fire(r Rule, db *DB) ([][]string, error) {
	bindings := []map[string]string{{}}
	for _, l := range r.Body {
		var next []map[string]string
		for _, b := range bindings {
			matches, err := match(l, b, db)
			if err != nil {
				return nil, err
			}
			next = append(next, matches...)
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	var out [][]string
	for _, b := range bindings {
		args := make([]string, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.Var {
				v, ok := b[t.Name]
				if !ok {
					return nil, fmt.Errorf("datalog: unbound variable %s in head of %s", t.Name, r.Head.Pred)
				}
				args[i] = v
			} else {
				args[i] = t.Name
			}
		}
		out = append(out, args)
	}
	return out, nil
}

// match extends a binding against one body literal.
func match(l Literal, b map[string]string, db *DB) ([]map[string]string, error) {
	if l.Negated {
		// Negation-as-failure: every variable must already be bound.
		args := make([]string, len(l.Atom.Args))
		for i, t := range l.Atom.Args {
			if t.Var {
				v, ok := b[t.Name]
				if !ok {
					return nil, fmt.Errorf("datalog: unsafe negation: %s unbound in ¬%s", t.Name, l.Atom.Pred)
				}
				args[i] = v
			} else {
				args[i] = t.Name
			}
		}
		if db.Has(l.Atom.Pred, args...) {
			return nil, nil
		}
		return []map[string]string{b}, nil
	}
	ts, ok := db.rels[l.Atom.Pred]
	if !ok {
		return nil, nil
	}
	if ts.arity != len(l.Atom.Args) {
		return nil, fmt.Errorf("datalog: %s arity mismatch in body", l.Atom.Pred)
	}
	var out []map[string]string
tuples:
	for _, tup := range ts.tuples {
		nb := b
		copied := false
		for i, t := range l.Atom.Args {
			if !t.Var {
				if tup[i] != t.Name {
					continue tuples
				}
				continue
			}
			if v, bound := nb[t.Name]; bound {
				if v != tup[i] {
					continue tuples
				}
				continue
			}
			if !copied {
				cp := make(map[string]string, len(nb)+1)
				for k, v := range nb {
					cp[k] = v
				}
				nb = cp
				copied = true
			}
			nb[t.Name] = tup[i]
		}
		out = append(out, nb)
	}
	return out, nil
}

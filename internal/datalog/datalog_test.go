package datalog

import (
	"strings"
	"testing"
)

func mustAdd(t *testing.T, db *DB, pred string, args ...string) {
	t.Helper()
	if err := db.AddFact(pred, args...); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveClosure(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "edge", "a", "b")
	mustAdd(t, db, "edge", "b", "c")
	mustAdd(t, db, "edge", "c", "d")

	var p Program
	p.Add(NewAtom("path", V("x"), V("y")), Pos(NewAtom("edge", V("x"), V("y"))))
	p.Add(NewAtom("path", V("x"), V("z")),
		Pos(NewAtom("edge", V("x"), V("y"))),
		Pos(NewAtom("path", V("y"), V("z"))))

	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count("path") != 6 {
		t.Errorf("path count: got %d, want 6 (%v)", out.Count("path"), out.All("path"))
	}
	if !out.Has("path", "a", "d") || out.Has("path", "d", "a") {
		t.Error("closure wrong")
	}
}

func TestStratifiedNegation(t *testing.T) {
	// unreachable(X) :- node(X), !reach(X)
	db := NewDB()
	for _, n := range []string{"a", "b", "c"} {
		mustAdd(t, db, "node", n)
	}
	mustAdd(t, db, "edge", "a", "b")
	mustAdd(t, db, "start", "a")

	var p Program
	p.Add(NewAtom("reach", V("x")), Pos(NewAtom("start", V("x"))))
	p.Add(NewAtom("reach", V("y")),
		Pos(NewAtom("reach", V("x"))), Pos(NewAtom("edge", V("x"), V("y"))))
	p.Add(NewAtom("unreachable", V("x")),
		Pos(NewAtom("node", V("x"))), Neg(NewAtom("reach", V("x"))))

	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("unreachable", "c") || out.Has("unreachable", "a") || out.Has("unreachable", "b") {
		t.Errorf("unreachable wrong: %v", out.All("unreachable"))
	}
}

func TestNonStratifiableRejected(t *testing.T) {
	// p(X) :- q(X), !p(X): negation through recursion.
	var p Program
	p.Add(NewAtom("p", V("x")), Pos(NewAtom("q", V("x"))), Neg(NewAtom("p", V("x"))))
	db := NewDB()
	mustAdd(t, db, "q", "a")
	if _, err := p.Eval(db); err == nil || !strings.Contains(err.Error(), "stratifiable") {
		t.Errorf("want stratification error, got %v", err)
	}
}

func TestUnsafeNegationRejected(t *testing.T) {
	// viol(X) :- !fact(X): X unbound under negation.
	var p Program
	p.Add(NewAtom("viol", V("x")), Neg(NewAtom("fact", V("x"))))
	db := NewDB()
	mustAdd(t, db, "fact", "a")
	if _, err := p.Eval(db); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Errorf("want unsafe-negation error, got %v", err)
	}
}

func TestUnboundHeadRejected(t *testing.T) {
	var p Program
	p.Add(NewAtom("out", V("y")), Pos(NewAtom("in", V("x"))))
	db := NewDB()
	mustAdd(t, db, "in", "a")
	if _, err := p.Eval(db); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("want unbound-head error, got %v", err)
	}
}

func TestArityMismatch(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "p", "a")
	if err := db.AddFact("p", "a", "b"); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestConstantsInBody(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "cap", "nic", "TS")
	mustAdd(t, db, "cap", "switch", "ECN")
	var p Program
	p.Add(NewAtom("nicCap", V("c")), Pos(NewAtom("cap", C("nic"), V("c"))))
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("nicCap", "TS") || out.Has("nicCap", "ECN") {
		t.Errorf("constant filter wrong: %v", out.All("nicCap"))
	}
}

func TestJoinSharedVariable(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "deployed", "simon")
	mustAdd(t, db, "deployed", "cubic")
	mustAdd(t, db, "conflicts", "simon", "cubic")
	mustAdd(t, db, "conflicts", "simon", "ghost")
	var p Program
	p.Add(NewAtom("violation", V("a"), V("b")),
		Pos(NewAtom("deployed", V("a"))),
		Pos(NewAtom("conflicts", V("a"), V("b"))),
		Pos(NewAtom("deployed", V("b"))))
	out, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count("violation") != 1 || !out.Has("violation", "simon", "cubic") {
		t.Errorf("join wrong: %v", out.All("violation"))
	}
}

func TestEvalDoesNotMutateEDB(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "edge", "a", "b")
	var p Program
	p.Add(NewAtom("path", V("x"), V("y")), Pos(NewAtom("edge", V("x"), V("y"))))
	if _, err := p.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Count("path") != 0 {
		t.Error("Eval must not write into the input database")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("cap", C("nic"), V("c"))
	if got := a.String(); got != "cap(nic,C)" {
		t.Errorf("String: %q", got)
	}
}

func TestAllSortedAndCount(t *testing.T) {
	db := NewDB()
	mustAdd(t, db, "p", "b")
	mustAdd(t, db, "p", "a")
	mustAdd(t, db, "p", "a") // duplicate
	all := db.All("p")
	if len(all) != 2 || all[0][0] != "a" || all[1][0] != "b" {
		t.Errorf("All: %v", all)
	}
	if db.Count("p") != 2 || db.Count("nope") != 0 {
		t.Error("Count wrong")
	}
	if db.All("nope") != nil {
		t.Error("All of missing pred must be nil")
	}
}

package extract

import "netarch/internal/kb"

// CiscoSpecSheetText is the bundled vendor spec sheet for the Cisco
// Catalyst 9500-40X — the source document behind Listing 1 of the paper.
const CiscoSpecSheetText = `Cisco Catalyst 9500 Series Data Sheet

Model Name: Cisco Catalyst 9500-40X
Port Bandwidth: 10 Gbps
Max Power Consumption: 950W
Ports: 40x 10 Gigabit Ethernet SFP+
Memory: 16 GB
P4 Supported?: No
# P4 Stages: N/A
ECN supported?: Yes
MAC Address Table Size: 64,000 entries
`

// SystemDoc is a source document describing a system: the prose a human
// or LLM extracts an encoding from, plus the ground-truth encoding used
// for scoring.
type SystemDoc struct {
	Name      string
	Role      kb.Role
	Sentences []string
	// Truth is the reference encoding an expert would write.
	Truth kb.System
}

// SystemDocs returns the corpus of system descriptions used by the §4
// experiments. Sentences follow the conventions of systems papers: direct
// requirement statements, conditional applicability buried mid-prose, and
// resource numbers inline.
func SystemDocs() []SystemDoc {
	return []SystemDoc{
		{
			Name: "timely", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"TIMELY uses RTT gradients as its congestion signal.",
				"It requires NIC timestamps to measure RTTs precisely.",
				"Acknowledgements must travel in a dedicated QoS class, consuming 1 of the fabric's 8 QoS classes.",
				"As a delay-based scheme it only works when run as a scavenger transport with deep queues.",
			},
			Truth: kb.System{
				Name: "timely", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
				Resources:    map[kb.Resource]int64{kb.ResQoSClasses: 1},
				RequiresContext: []kb.Condition{
					{Atom: "scavenger_ok", Value: true},
					{Atom: "deep_queues", Value: true},
				},
			},
		},
		{
			Name: "swift", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"Swift targets a small fixed delay using NIC timestamps.",
				"It requires NIC timestamps and consumes 1 QoS class for acknowledgements.",
				"Like other delay-based schemes it only works when deployed as a scavenger transport with deep queues.",
			},
			Truth: kb.System{
				Name: "swift", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
				Resources:    map[kb.Resource]int64{kb.ResQoSClasses: 1},
				RequiresContext: []kb.Condition{
					{Atom: "scavenger_ok", Value: true},
					{Atom: "deep_queues", Value: true},
				},
			},
		},
		{
			Name: "hpcc", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"HPCC leverages in-network telemetry for precise congestion control.",
				"It requires INT-enabled switches along every path.",
			},
			Truth: kb.System{
				Name: "hpcc", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapINT}},
			},
		},
		{
			Name: "annulus", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"Annulus adds a second control loop reacting to QCN notifications from switches.",
				"It requires QCN support at switches.",
				"The mechanism is only needed when WAN and datacenter traffic compete at the same bottleneck.",
			},
			Truth: kb.System{
				Name: "annulus", Role: kb.RoleCongestionControl,
				Solves:         []kb.Property{"congestion_control"},
				RequiresCaps:   map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapQCN}},
				UsefulOnlyWhen: []kb.Condition{{Atom: "wan_dc_mix", Value: true}},
			},
		},
		{
			Name: "shenango", Role: kb.RoleNetworkStack,
			Sentences: []string{
				"Shenango achieves high CPU efficiency by reallocating cores at microsecond scale.",
				"It dedicates 1 core for spin polling.",
				"The NIC must support interrupt polling for the IOKernel's fast path.",
				"It requires DPDK-capable NICs.",
			},
			Truth: kb.System{
				Name: "shenango", Role: kb.RoleNetworkStack,
				Solves: []kb.Property{"low_latency_stack"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{
					kb.KindNIC: {kb.CapDPDK, kb.CapInterruptPoll},
				},
				Resources: map[kb.Resource]int64{kb.ResCores: 1},
			},
		},
		{
			Name: "sonata", Role: kb.RoleMonitoring,
			Sentences: []string{
				"Sonata compiles streaming telemetry queries onto programmable switches.",
				"It requires P4 programmable switches.",
				"A typical query pipeline of 4 queries uses 8 P4 stages.",
			},
			Truth: kb.System{
				Name: "sonata", Role: kb.RoleMonitoring,
				Solves:       []kb.Property{"flow_telemetry", "detect_queue_length"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
				Resources:    map[kb.Resource]int64{kb.ResP4Stages: 8},
			},
		},
		{
			Name: "simon", Role: kb.RoleMonitoring,
			Sentences: []string{
				"SIMON reconstructs per-queue delays from edge timestamps.",
				"It requires NIC timestamps on every server.",
				"Reconstruction consumes 2 cores per thousand flows.",
			},
			Truth: kb.System{
				Name: "simon", Role: kb.RoleMonitoring,
				Solves:         []kb.Property{"capture_delays", "detect_queue_length"},
				RequiresCaps:   map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapNICTimestamps}},
				CoresPerKFlows: 2,
			},
		},
		{
			Name: "dctcp", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"DCTCP reacts to the fraction of ECN-marked packets.",
				"It requires ECN marking at switches along the path.",
			},
			Truth: kb.System{
				Name: "dctcp", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapECN}},
			},
		},
		{
			Name: "bfc", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"BFC performs per-hop, per-flow backpressure.",
				"It requires P4 programmable switches.",
				"The dataplane program occupies 6 P4 stages of the pipeline.",
			},
			Truth: kb.System{
				Name: "bfc", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
				Resources:    map[kb.Resource]int64{kb.ResP4Stages: 6},
			},
		},
		{
			Name: "marple", Role: kb.RoleMonitoring,
			Sentences: []string{
				"Marple compiles performance queries to switch hardware.",
				"It requires P4 programmable switches.",
				"A full query set of 7 operators consumes 10 P4 stages.",
			},
			Truth: kb.System{
				Name: "marple", Role: kb.RoleMonitoring,
				Solves:       []kb.Property{"flow_telemetry"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
				Resources:    map[kb.Resource]int64{kb.ResP4Stages: 10},
			},
		},
		{
			Name: "vegas", Role: kb.RoleCongestionControl,
			Sentences: []string{
				"Vegas infers congestion from RTT increases before loss occurs.",
				"As a delay-based scheme it only works when run as a scavenger transport beneath loss-based traffic.",
			},
			Truth: kb.System{
				Name: "vegas", Role: kb.RoleCongestionControl,
				Solves: []kb.Property{"congestion_control"},
				RequiresContext: []kb.Condition{
					{Atom: "scavenger_ok", Value: true},
				},
			},
		},
		{
			Name: "netchannel", Role: kb.RoleNetworkStack,
			Sentences: []string{
				"NetChannel disaggregates the host network stack into channels.",
				"Its benefits only appear at link speeds of 40 Gbps and above.",
				"The data path consumes 3 cores for channel processing.",
			},
			Truth: kb.System{
				Name: "netchannel", Role: kb.RoleNetworkStack,
				Solves:         []kb.Property{"high_throughput_stack"},
				UsefulOnlyWhen: []kb.Condition{{Atom: "load_ge_40gbps", Value: true}},
				Resources:      map[kb.Resource]int64{kb.ResCores: 3},
			},
		},
	}
}

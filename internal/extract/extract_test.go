package extract

import (
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

func TestParseSpecSheet(t *testing.T) {
	fields, err := ParseSpecSheet(CiscoSpecSheetText)
	if err != nil {
		t.Fatal(err)
	}
	if fields["Model Name"] != "Cisco Catalyst 9500-40X" {
		t.Errorf("Model Name: %q", fields["Model Name"])
	}
	if fields["Ports"] != "40x 10 Gigabit Ethernet SFP+" {
		t.Errorf("Ports: %q", fields["Ports"])
	}
	if _, ok := fields["Cisco Catalyst 9500 Series Data Sheet"]; ok {
		t.Error("header line must not become a field")
	}
	if _, err := ParseSpecSheet("just prose\nno fields here\n"); err == nil {
		t.Error("field-free text must error")
	}
}

func TestListing1ExtractionExact(t *testing.T) {
	// L1: extraction from the bundled spec sheet must reproduce the
	// catalog's Listing 1 encoding field-for-field.
	m := NewSimulatedLLM(1)
	got, err := m.ExtractHardware(CiscoSpecSheetText)
	if err != nil {
		t.Fatal(err)
	}
	want := catalog.CiscoCatalyst9500()
	if got.Name != want.Name || got.Kind != want.Kind {
		t.Errorf("identity: got %s/%s", got.Name, got.Kind)
	}
	for _, attr := range []string{
		"Model Name", "Port Bandwidth", "Max Power Consumption", "Ports",
		"Memory", "P4 Supported?", "# P4 Stages", "ECN supported?",
		"MAC Address Table Size",
	} {
		if got.Attrs[attr] != want.Attrs[attr] {
			t.Errorf("attr %q: got %q, want %q", attr, got.Attrs[attr], want.Attrs[attr])
		}
	}
	acc := ScoreHardware(got, want)
	if acc.Frac() != 1.0 {
		t.Errorf("Listing 1 accuracy: got %.2f, want 1.0 (%+v)", acc.Frac(), acc)
	}
}

func TestHardwareExtractionCorpus100Percent(t *testing.T) {
	// §4.1: 100% accuracy across the full ~200-spec corpus.
	m := NewSimulatedLLM(2)
	var total Accuracy
	for _, h := range catalog.Hardware() {
		h := h
		text := RenderSpecSheet(&h)
		got, err := m.ExtractHardware(text)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		acc := ScoreHardware(got, h)
		if acc.Frac() != 1.0 {
			t.Fatalf("%s: accuracy %.2f (%+v)\nsheet:\n%s", h.Name, acc.Frac(), acc, text)
		}
		total.Add(acc)
	}
	if total.Frac() != 1.0 {
		t.Errorf("corpus accuracy %.4f, want 1.0", total.Frac())
	}
}

func TestSystemExtractionMissesNuances(t *testing.T) {
	// §4.1: hardware requirements reliably found; conditions missed.
	m := NewSimulatedLLM(7)
	var capAcc, condAcc Accuracy
	trials := 50
	for trial := 0; trial < trials; trial++ {
		for _, doc := range SystemDocs() {
			got := m.ExtractSystem(doc)
			// Capability requirements must always be found.
			for kind, caps := range doc.Truth.RequiresCaps {
				for _, c := range caps {
					capAcc.Total++
					if hasCap(got.RequiresCaps[kind], c) {
						capAcc.Correct++
					}
				}
			}
			// Conditions are found only sometimes.
			for _, c := range append(append([]kb.Condition{}, doc.Truth.RequiresContext...), doc.Truth.UsefulOnlyWhen...) {
				condAcc.Total++
				if hasCondition(got, c) {
					condAcc.Correct++
				}
			}
		}
	}
	if capAcc.Frac() != 1.0 {
		t.Errorf("capability extraction: got %.2f, want 1.0", capAcc.Frac())
	}
	if condAcc.Frac() > 0.7 {
		t.Errorf("condition extraction should miss nuances: got %.2f", condAcc.Frac())
	}
	if condAcc.Frac() < 0.1 {
		t.Errorf("condition extraction should not be hopeless: got %.2f", condAcc.Frac())
	}
}

func TestExtractionDeterministicPerSeed(t *testing.T) {
	a := NewSimulatedLLM(42)
	b := NewSimulatedLLM(42)
	for _, doc := range SystemDocs() {
		sa := a.ExtractSystem(doc)
		sb := b.ExtractSystem(doc)
		if ScoreSystem(sa, sb).Frac() != 1.0 {
			t.Fatalf("%s: same seed produced different encodings", doc.Name)
		}
	}
}

func TestCheckerFindsMissingShenangoRequirement(t *testing.T) {
	// §4.2's concrete example: "it identified that we missed checking
	// whether the NIC supports interrupt polling, which is a requirement
	// for Shenango."
	var doc SystemDoc
	for _, d := range SystemDocs() {
		if d.Name == "shenango" {
			doc = d
		}
	}
	broken := doc.Truth
	broken.RequiresCaps = map[kb.HardwareKind][]kb.Capability{
		kb.KindNIC: {kb.CapDPDK}, // interrupt polling omitted
	}
	issues := CheckSystemEncoding(broken, doc)
	found := false
	for _, is := range issues {
		if is.Kind == "missing_requirement" && strings.Contains(is.Detail, "INTERRUPT_POLLING") {
			found = true
		}
	}
	if !found {
		t.Errorf("checker must flag the missing interrupt-polling requirement: %v", issues)
	}
	// The correct encoding raises no missing-requirement issues.
	for _, is := range CheckSystemEncoding(doc.Truth, doc) {
		if is.Kind == "missing_requirement" || is.Kind == "missing_condition" {
			t.Errorf("truth encoding flagged: %v", is)
		}
	}
}

func TestCheckerFlagsWrongSonataStages(t *testing.T) {
	// §4.2: "it does raise an alarm if we encode the wrong number of P4
	// stages to deploy Sonata."
	var doc SystemDoc
	for _, d := range SystemDocs() {
		if d.Name == "sonata" {
			doc = d
		}
	}
	broken := doc.Truth
	broken.Resources = map[kb.Resource]int64{kb.ResP4Stages: 16} // wrong
	issues := CheckSystemEncoding(broken, doc)
	found := false
	for _, is := range issues {
		if is.Kind == "wrong_value" {
			found = true
		}
	}
	if !found {
		t.Errorf("checker must flag the wrong stage count: %v", issues)
	}
}

func TestCheckerValueAsymmetry(t *testing.T) {
	// §4.2: existence checks beat value checks. A value matching *some*
	// number in a number-loaded sentence escapes detection.
	var doc SystemDoc
	for _, d := range SystemDocs() {
		if d.Name == "sonata" {
			doc = d
		}
	}
	// "A typical query pipeline of 4 queries uses 8 P4 stages": encoding
	// stages=4 is wrong but matches a sentence number → escapes.
	sneaky := doc.Truth
	sneaky.Resources = map[kb.Resource]int64{kb.ResP4Stages: 4}
	for _, is := range CheckSystemEncoding(sneaky, doc) {
		if is.Kind == "wrong_value" {
			t.Errorf("number-loaded sentence should mask the plausible wrong value: %v", is)
		}
	}
	// Removing the resource entirely is always caught (existence).
	missing := doc.Truth
	missing.Resources = nil
	caught := false
	for _, is := range CheckSystemEncoding(missing, doc) {
		if is.Kind == "missing_resource" {
			caught = true
		}
	}
	if !caught {
		t.Error("existence check must catch the missing resource")
	}
}

func TestCheckerCatchRates(t *testing.T) {
	// E4.2 aggregate: existence-class errors are caught at a higher rate
	// than value-class errors across the corpus.
	docs := SystemDocs()
	var existenceCaught, existenceTotal, valueCaught, valueTotal int
	for _, doc := range docs {
		// Existence perturbation: drop each condition and each cap.
		truth := doc.Truth
		for kind, caps := range truth.RequiresCaps {
			for _, c := range caps {
				broken := truth
				broken.RequiresCaps = map[kb.HardwareKind][]kb.Capability{}
				for k2, cs := range truth.RequiresCaps {
					for _, c2 := range cs {
						if k2 == kind && c2 == c {
							continue
						}
						broken.RequiresCaps[k2] = append(broken.RequiresCaps[k2], c2)
					}
				}
				existenceTotal++
				for _, is := range CheckSystemEncoding(broken, doc) {
					if is.Kind == "missing_requirement" {
						existenceCaught++
						break
					}
				}
			}
		}
		// Value perturbations: off-by-one (usually refutable) and the
		// "plausible confusion" variant — swapping in another number
		// from the same sentence, which a source-grounded check cannot
		// refute (§4.2: conditions "loaded with numbers").
		for r, v := range truth.Resources {
			alts := []int64{v + 1}
			for _, sent := range doc.Sentences {
				lower := strings.ToLower(sent)
				if res, _, ok := resourceFrom(lower); ok && res == string(r) {
					for _, n := range allNumbers(lower) {
						if n != v {
							alts = append(alts, n)
						}
					}
				}
			}
			for _, alt := range alts {
				broken := truth
				broken.Resources = map[kb.Resource]int64{}
				for r2, v2 := range truth.Resources {
					broken.Resources[r2] = v2
				}
				broken.Resources[r] = alt
				valueTotal++
				for _, is := range CheckSystemEncoding(broken, doc) {
					if is.Kind == "wrong_value" {
						valueCaught++
						break
					}
				}
			}
		}
	}
	if existenceTotal == 0 || valueTotal == 0 {
		t.Fatal("corpus must exercise both error classes")
	}
	exRate := float64(existenceCaught) / float64(existenceTotal)
	valRate := float64(valueCaught) / float64(valueTotal)
	if exRate != 1.0 {
		t.Errorf("existence catch rate: got %.2f, want 1.0", exRate)
	}
	if valRate >= exRate {
		t.Errorf("value catch rate (%.2f) must be below existence rate (%.2f)", valRate, exRate)
	}
}

func TestObjectivitySplit(t *testing.T) {
	claims := []string{
		"Shenango dedicates a core for spin polling",
		"Simon is better than Pingmesh for monitoring",
		"HPCC requires INT-enabled switches",
		"Snap with Pony Express outperforms the kernel stack",
	}
	obj, subj := CheckObjectivity(claims)
	if len(obj) != 2 || len(subj) != 2 {
		t.Fatalf("split wrong: objective=%v subjective=%v", obj, subj)
	}
	if !IsSubjective("A beats B") || IsSubjective("A requires B") {
		t.Error("IsSubjective misclassifies")
	}
}

func TestOrderNotesAreMostlySubjective(t *testing.T) {
	// §4.2: "the controversial questions were all about comparisons
	// between systems" — order-edge notes (comparisons) should skew
	// subjective relative to system constraint notes.
	var orderNotes, constraintNotes []string
	for _, spec := range catalog.Orders() {
		for _, e := range spec.Edges {
			orderNotes = append(orderNotes, e.Note)
		}
	}
	for _, s := range catalog.Systems() {
		for _, n := range s.Notes {
			constraintNotes = append(constraintNotes, n)
		}
	}
	_, subjOrder := CheckObjectivity(orderNotes)
	_, subjConstraint := CheckObjectivity(constraintNotes)
	orderRate := float64(len(subjOrder)) / float64(len(orderNotes))
	constraintRate := float64(len(subjConstraint)) / float64(len(constraintNotes))
	if orderRate <= constraintRate {
		t.Errorf("order notes should be more subjective: order=%.2f constraint=%.2f",
			orderRate, constraintRate)
	}
}

func TestFirstNumberAndAllNumbers(t *testing.T) {
	if v, ok := firstNumber("64,000 entries"); !ok || v != 64000 {
		t.Errorf("firstNumber comma: got %d %v", v, ok)
	}
	if v, ok := firstNumber("40x 10 Gigabit"); !ok || v != 40 {
		t.Errorf("firstNumber: got %d %v", v, ok)
	}
	if _, ok := firstNumber("no digits"); ok {
		t.Error("firstNumber must fail without digits")
	}
	nums := allNumbers("4 queries uses 8 p4 stages")
	if len(nums) != 3 || nums[0] != 4 || nums[1] != 8 || nums[2] != 4 {
		t.Errorf("allNumbers: got %v", nums)
	}
}

func TestAccuracyHelpers(t *testing.T) {
	a := Accuracy{}
	if a.Frac() != 1.0 {
		t.Error("empty accuracy must be 1.0")
	}
	a.Add(Accuracy{Correct: 1, Total: 2})
	a.Add(Accuracy{Correct: 1, Total: 2})
	if a.Frac() != 0.5 {
		t.Errorf("Frac: got %f", a.Frac())
	}
}

func TestIssueString(t *testing.T) {
	is := Issue{Kind: "wrong_value", Detail: "x"}
	if is.String() != "wrong_value: x" {
		t.Errorf("Issue.String: %q", is.String())
	}
}

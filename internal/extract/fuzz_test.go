package extract

import "testing"

// FuzzParseSpecSheet checks the spec-sheet parser never panics and that
// extraction from a rendered sheet is stable.
func FuzzParseSpecSheet(f *testing.F) {
	f.Add(CiscoSpecSheetText)
	f.Add("Model Name: X\nPorts: 1x\n")
	f.Add("no colon lines\n\n\n")
	f.Add(": empty key\nkey:\n")
	f.Add("Memory: 16 GB\nMemory: 32 GB\n")
	f.Fuzz(func(t *testing.T, src string) {
		fields, err := ParseSpecSheet(src)
		if err != nil {
			return
		}
		h, err := HardwareFromSpec(fields)
		if err != nil {
			return
		}
		// Re-render and re-extract: the second pass must score 100%
		// against the first (rendering is canonical).
		llm := NewSimulatedLLM(1)
		h2, err := llm.ExtractHardware(RenderSpecSheet(&h))
		if err != nil {
			t.Fatalf("re-extraction failed: %v", err)
		}
		// Attrs differ (render uses canonical fields); compare the
		// semantic fields only.
		if h2.Name != h.Name || h2.Kind != h.Kind {
			t.Fatalf("identity changed: %s/%s -> %s/%s", h.Name, h.Kind, h2.Name, h2.Kind)
		}
		for r, v := range h.Quant {
			if h2.Q(r) != v {
				t.Fatalf("quant %s changed: %d -> %d", r, v, h2.Q(r))
			}
		}
	})
}

// FuzzFirstNumber checks numeric parsing never panics and respects comma
// grouping.
func FuzzFirstNumber(f *testing.F) {
	f.Add("64,000 entries")
	f.Add("1,2,3")
	f.Add(",,,")
	f.Add("950W max")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		v, ok := firstNumber(src)
		if ok && v < 0 {
			t.Fatalf("negative parse from %q", src)
		}
		_ = allNumbers(src)
	})
}

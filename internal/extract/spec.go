// Package extract reproduces §4 of the paper ("Can We Auto-Generate
// Encodings?"): turning source documents into knowledge-base encodings and
// checking human-written encodings against sources.
//
// The paper used GPT-4o; this reproduction substitutes a deterministic
// rule-based extractor plus a seeded noise model that reproduces the
// paper's observed error profile:
//
//   - Hardware spec sheets are "highly structured and specific": the
//     extractor recovers fields with 100% accuracy (§4.1).
//   - System descriptions are prose: the extractor identifies hardware
//     requirements but "occasionally missed nuances about how much of a
//     resource is needed, or under what conditions can a system not be
//     deployed" — e.g. the Annulus WAN/DC-mix condition (§4.1).
//   - Checking is asymmetric: the checker reliably detects a *missing*
//     condition but "could not always check for the correctness of a
//     condition (especially if it's loaded with numbers)" (§4.2).
package extract

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"netarch/internal/kb"
)

// ParseSpecSheet parses vendor spec-sheet text of "Key: Value" lines into
// an ordered field map. Blank lines and lines without a colon are skipped
// (headers, marketing prose). Values keep internal punctuation.
func ParseSpecSheet(text string) (map[string]string, error) {
	fields := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		idx := strings.Index(line, ":")
		if idx <= 0 {
			continue
		}
		key := strings.TrimSpace(line[:idx])
		val := strings.TrimSpace(line[idx+1:])
		if key == "" || val == "" {
			continue
		}
		fields[key] = val
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("extract: no fields found in spec sheet")
	}
	return fields, nil
}

// RenderSpecSheet renders a hardware encoding back into spec-sheet text —
// the inverse of extraction, used to build the synthetic corpus for the
// §4.1 experiment at the paper's ~200-spec scale.
func RenderSpecSheet(h *kb.Hardware) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model Name: %s\n", h.Name)
	fmt.Fprintf(&b, "Device Class: %s\n", deviceClass(h.Kind))
	if h.Vendor != "" {
		fmt.Fprintf(&b, "Vendor: %s\n", h.Vendor)
	}
	if v := h.Q(kb.ResBandwidthGbps); v > 0 {
		fmt.Fprintf(&b, "Port Bandwidth: %d Gbps\n", v)
	}
	if v := h.Q(kb.ResPortCount); v > 0 {
		fmt.Fprintf(&b, "Ports: %dx ports\n", v)
	}
	if v := h.Q(kb.ResPowerW); v > 0 {
		fmt.Fprintf(&b, "Max Power Consumption: %dW\n", v)
	}
	if v := h.Q(kb.ResMemoryGB); v > 0 {
		fmt.Fprintf(&b, "Memory: %d GB\n", v)
	}
	if v := h.Q(kb.ResCores); v > 0 {
		fmt.Fprintf(&b, "Cores: %d\n", v)
	}
	if v := h.Q(kb.ResBufferMB); v > 0 {
		fmt.Fprintf(&b, "Packet Buffer: %d MB\n", v)
	}
	if v := h.Q(kb.ResSRAMMB); v > 0 {
		fmt.Fprintf(&b, "SRAM: %d MB\n", v)
	}
	if v := h.Q(kb.ResMACEntries); v > 0 {
		fmt.Fprintf(&b, "MAC Address Table Size: %s entries\n", withCommas(v))
	}
	if v := h.Q(kb.ResReorderBufKB); v > 0 {
		fmt.Fprintf(&b, "Reorder Buffer: %d KB\n", v)
	}
	if h.HasCap(kb.CapP4) {
		fmt.Fprintf(&b, "P4 Supported?: Yes\n")
		fmt.Fprintf(&b, "# P4 Stages: %d\n", h.Q(kb.ResP4Stages))
	} else {
		fmt.Fprintf(&b, "P4 Supported?: No\n")
		fmt.Fprintf(&b, "# P4 Stages: N/A\n")
	}
	capFields := []struct {
		label string
		cap   kb.Capability
	}{
		{"ECN supported?", kb.CapECN},
		{"QCN supported?", kb.CapQCN},
		{"PFC supported?", kb.CapPFC},
		{"INT supported?", kb.CapINT},
		{"RDMA supported?", kb.CapRDMA},
		{"SR-IOV supported?", kb.CapSRIOV},
		{"Hardware Timestamps?", kb.CapNICTimestamps},
		{"Interrupt Polling?", kb.CapInterruptPoll},
		{"DPDK Support?", kb.CapDPDK},
		{"FPGA SmartNIC?", kb.CapSmartNICFPGA},
		{"CPU SmartNIC?", kb.CapSmartNICCPU},
		{"CXL Support?", kb.CapCXL},
		{"Deep Buffers?", kb.Capability("DEEP_BUFFERS")},
		{"Packet Trimming?", kb.Capability("PACKET_TRIMMING")},
		{"Large Reorder Buffer?", kb.Capability("LARGE_REORDER_BUFFER")},
	}
	for _, cf := range capFields {
		if h.HasCap(cf.cap) {
			fmt.Fprintf(&b, "%s: Yes\n", cf.label)
		}
	}
	if h.CostUSD > 0 {
		fmt.Fprintf(&b, "List Price: $%d\n", h.CostUSD)
	}
	return b.String()
}

func deviceClass(k kb.HardwareKind) string {
	switch k {
	case kb.KindSwitch:
		return "Ethernet Switch"
	case kb.KindNIC:
		return "Network Interface Card"
	case kb.KindServer:
		return "Rack Server"
	default:
		return string(k)
	}
}

func withCommas(v int64) string {
	s := strconv.FormatInt(v, 10)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// HardwareFromSpec converts parsed spec-sheet fields into a hardware
// encoding, interpreting the conventional field names. Unrecognized
// fields are preserved in Attrs.
func HardwareFromSpec(fields map[string]string) (kb.Hardware, error) {
	h := kb.Hardware{Quant: map[kb.Resource]int64{}, Attrs: map[string]string{}}
	for k, v := range fields {
		h.Attrs[k] = v
	}
	name, ok := fields["Model Name"]
	if !ok {
		return h, fmt.Errorf("extract: spec sheet lacks Model Name")
	}
	h.Name = name
	h.Vendor = fields["Vendor"]
	switch cls := fields["Device Class"]; {
	case strings.Contains(cls, "Switch"):
		h.Kind = kb.KindSwitch
	case strings.Contains(cls, "Interface"):
		h.Kind = kb.KindNIC
	case strings.Contains(cls, "Server"):
		h.Kind = kb.KindServer
	default:
		// Fall back on hints in the name/ports (real sheets omit class).
		h.Kind = kb.KindSwitch
	}

	num := func(key string) (int64, bool) {
		v, ok := fields[key]
		if !ok {
			return 0, false
		}
		return firstNumber(v)
	}
	if v, ok := num("Port Bandwidth"); ok {
		h.Quant[kb.ResBandwidthGbps] = v
	}
	if v, ok := num("Ports"); ok {
		h.Quant[kb.ResPortCount] = v
	}
	if v, ok := num("Max Power Consumption"); ok {
		h.Quant[kb.ResPowerW] = v
	}
	if v, ok := num("Memory"); ok {
		h.Quant[kb.ResMemoryGB] = v
	}
	if v, ok := num("Cores"); ok {
		h.Quant[kb.ResCores] = v
	}
	if v, ok := num("Packet Buffer"); ok {
		h.Quant[kb.ResBufferMB] = v
	}
	if v, ok := num("SRAM"); ok {
		h.Quant[kb.ResSRAMMB] = v
	}
	if v, ok := num("MAC Address Table Size"); ok {
		h.Quant[kb.ResMACEntries] = v
	}
	if v, ok := num("Reorder Buffer"); ok {
		h.Quant[kb.ResReorderBufKB] = v
	}
	if v, ok := num("List Price"); ok {
		h.CostUSD = v
	}

	yes := func(key string) bool {
		return strings.EqualFold(strings.TrimSpace(fields[key]), "yes")
	}
	addCap := func(cond bool, c kb.Capability) {
		if cond {
			h.Caps = append(h.Caps, c)
		}
	}
	addCap(yes("ECN supported?"), kb.CapECN)
	addCap(yes("QCN supported?"), kb.CapQCN)
	addCap(yes("PFC supported?"), kb.CapPFC)
	addCap(yes("INT supported?"), kb.CapINT)
	addCap(yes("RDMA supported?"), kb.CapRDMA)
	addCap(yes("SR-IOV supported?"), kb.CapSRIOV)
	addCap(yes("Hardware Timestamps?"), kb.CapNICTimestamps)
	addCap(yes("Interrupt Polling?"), kb.CapInterruptPoll)
	addCap(yes("DPDK Support?"), kb.CapDPDK)
	addCap(yes("FPGA SmartNIC?"), kb.CapSmartNICFPGA)
	addCap(yes("CPU SmartNIC?"), kb.CapSmartNICCPU)
	addCap(yes("CXL Support?"), kb.CapCXL)
	addCap(yes("Deep Buffers?"), kb.Capability("DEEP_BUFFERS"))
	addCap(yes("Packet Trimming?"), kb.Capability("PACKET_TRIMMING"))
	addCap(yes("Large Reorder Buffer?"), kb.Capability("LARGE_REORDER_BUFFER"))
	if yes("P4 Supported?") {
		h.Caps = append(h.Caps, kb.CapP4)
		if v, ok := num("# P4 Stages"); ok {
			h.Quant[kb.ResP4Stages] = v
		}
	}
	sort.Slice(h.Caps, func(i, j int) bool { return h.Caps[i] < h.Caps[j] })
	return h, nil
}

// firstNumber extracts the first integer in a string, tolerating commas
// ("64,000 entries" → 64000).
func firstNumber(s string) (int64, bool) {
	start := -1
	var digits []byte
	for i := 0; i <= len(s); i++ {
		if i < len(s) && (s[i] >= '0' && s[i] <= '9') {
			if start < 0 {
				start = i
			}
			digits = append(digits, s[i])
			continue
		}
		if start >= 0 {
			if i < len(s) && s[i] == ',' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				continue // thousands separator
			}
			break
		}
	}
	if len(digits) == 0 {
		return 0, false
	}
	v, err := strconv.ParseInt(string(digits), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

package extract

import (
	"math/rand"
	"strings"

	"netarch/internal/kb"
)

// SimulatedLLM stands in for the paper's GPT-4o (§4): a rule-based
// extractor whose error profile is calibrated to the paper's findings.
// Structured spec sheets extract perfectly; prose system descriptions
// lose conditional requirements and occasionally garble inline numbers.
// All randomness is seeded for reproducible experiments.
type SimulatedLLM struct {
	rng *rand.Rand
	// MissConditionProb is the chance a conditional-applicability
	// sentence ("only needed when …") is not encoded — the Annulus
	// failure the paper reports.
	MissConditionProb float64
	// NumberErrProb is the chance an inline resource number is encoded
	// off by a small factor ("occasionally missed nuances about how much
	// of a resource is needed").
	NumberErrProb float64
}

// NewSimulatedLLM returns a simulated extractor with the default error
// profile (conditions missed 60% of the time, numbers garbled 25%).
func NewSimulatedLLM(seed int64) *SimulatedLLM {
	return &SimulatedLLM{
		rng:               rand.New(rand.NewSource(seed)),
		MissConditionProb: 0.6,
		NumberErrProb:     0.25,
	}
}

// ExtractHardware extracts a hardware encoding from spec-sheet text.
// Following §4.1, extraction from structured sheets is exact: "the LLM
// extracted the fields with 100% accuracy (unless it was missing in the
// spec itself)".
func (m *SimulatedLLM) ExtractHardware(specText string) (kb.Hardware, error) {
	fields, err := ParseSpecSheet(specText)
	if err != nil {
		return kb.Hardware{}, err
	}
	return HardwareFromSpec(fields)
}

// ExtractSystem extracts a system encoding from a prose description,
// applying the noise model. The returned encoding is what a human
// reviewer receives for checking (§4.2).
func (m *SimulatedLLM) ExtractSystem(doc SystemDoc) kb.System {
	out := kb.System{Name: doc.Name, Role: doc.Role}
	// The simulated model knows what the system is *for* (role-level
	// purpose is never what the paper reports it missing).
	out.Solves = append(out.Solves, doc.Truth.Solves...)

	for _, sent := range doc.Sentences {
		lower := strings.ToLower(sent)

		// Direct hardware requirements: reliably extracted (§4.1: "LLMs
		// were able to identify the hardware requirements of systems").
		for _, mk := range capMarkers {
			if strings.Contains(lower, mk.phrase) {
				if out.RequiresCaps == nil {
					out.RequiresCaps = map[kb.HardwareKind][]kb.Capability{}
				}
				if !hasCap(out.RequiresCaps[mk.kind], mk.cap) {
					out.RequiresCaps[mk.kind] = append(out.RequiresCaps[mk.kind], mk.cap)
				}
			}
		}

		// Conditional applicability: dropped with MissConditionProb.
		if cond, ok := conditionFrom(lower); ok {
			if m.rng.Float64() >= m.MissConditionProb {
				if isDeployabilityCondition(lower) {
					out.RequiresContext = append(out.RequiresContext, cond)
				} else {
					out.UsefulOnlyWhen = append(out.UsefulOnlyWhen, cond)
				}
			}
			continue
		}

		// Inline resource numbers: perturbed with NumberErrProb.
		if res, val, ok := resourceFrom(lower); ok {
			if m.rng.Float64() < m.NumberErrProb {
				val = perturb(m.rng, val)
			}
			if res == "cores_per_kflows" {
				out.CoresPerKFlows = val
			} else {
				if out.Resources == nil {
					out.Resources = map[kb.Resource]int64{}
				}
				out.Resources[kb.Resource(res)] = val
			}
		}
	}
	return out
}

// capMarker maps a requirement phrase to a capability.
type capMarker struct {
	phrase string
	kind   kb.HardwareKind
	cap    kb.Capability
}

var capMarkers = []capMarker{
	{"nic timestamps", kb.KindNIC, kb.CapNICTimestamps},
	{"int-enabled switches", kb.KindSwitch, kb.CapINT},
	{"ecn marking at switches", kb.KindSwitch, kb.CapECN},
	{"qcn support", kb.KindSwitch, kb.CapQCN},
	{"qcn notifications from switches", kb.KindSwitch, kb.CapQCN},
	{"interrupt polling", kb.KindNIC, kb.CapInterruptPoll},
	{"dpdk-capable nics", kb.KindNIC, kb.CapDPDK},
	{"p4 programmable switches", kb.KindSwitch, kb.CapP4},
	{"programmable switches", kb.KindSwitch, kb.CapP4},
	{"rdma-capable nics", kb.KindNIC, kb.CapRDMA},
	{"smartnic", kb.KindNIC, kb.CapSmartNICCPU},
}

func hasCap(caps []kb.Capability, c kb.Capability) bool {
	for _, x := range caps {
		if x == c {
			return true
		}
	}
	return false
}

// conditionFrom recognizes conditional-applicability sentences and maps
// them to context conditions.
func conditionFrom(lower string) (kb.Condition, bool) {
	switch {
	case strings.Contains(lower, "wan and datacenter traffic compete"),
		strings.Contains(lower, "competing wan and dc"):
		return kb.Condition{Atom: "wan_dc_mix", Value: true}, true
	case strings.Contains(lower, "scavenger transport"):
		return kb.Condition{Atom: "scavenger_ok", Value: true}, true
	case strings.Contains(lower, "40 gbps and above"),
		strings.Contains(lower, "above 40 gbps"):
		return kb.Condition{Atom: "load_ge_40gbps", Value: true}, true
	}
	return kb.Condition{}, false
}

// isDeployabilityCondition distinguishes "works only if deployed as X"
// (a deployment precondition) from "only useful when X" (a usefulness
// gate).
func isDeployabilityCondition(lower string) bool {
	return strings.Contains(lower, "only works when") ||
		strings.Contains(lower, "works when run as")
}

// resourceFrom recognizes inline resource consumption statements.
func resourceFrom(lower string) (string, int64, bool) {
	n, ok := firstNumber(lower)
	if !ok {
		return "", 0, false
	}
	switch {
	case strings.Contains(lower, "cores per thousand flows"):
		return "cores_per_kflows", n, true
	case strings.Contains(lower, "p4 stages"):
		// Number-loaded sentence: take the number nearest "stages" (the
		// naive extractor takes the first number — a realistic bug when
		// the sentence contains several, which the checker experiment
		// exploits).
		return string(kb.ResP4Stages), n, true
	case strings.Contains(lower, "qos class"):
		return string(kb.ResQoSClasses), n, true
	case strings.Contains(lower, "core for spin polling"),
		strings.Contains(lower, "cores for channel processing"):
		return string(kb.ResCores), n, true
	}
	return "", 0, false
}

// perturb returns a plausibly-wrong value: off by one or doubled.
func perturb(rng *rand.Rand, v int64) int64 {
	switch rng.Intn(3) {
	case 0:
		return v + 1
	case 1:
		if v > 1 {
			return v - 1
		}
		return v + 1
	default:
		return v * 2
	}
}

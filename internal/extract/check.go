package extract

import (
	"fmt"
	"strings"

	"netarch/internal/kb"
)

// Issue is one problem a checking pass found in a candidate encoding.
type Issue struct {
	// Kind is one of "missing_requirement", "missing_condition",
	// "missing_resource", "wrong_value", "subjective_claim".
	Kind   string
	Detail string
}

// String renders the issue.
func (i Issue) String() string { return i.Kind + ": " + i.Detail }

// CheckSystemEncoding re-reads the source document and reports issues in
// a candidate encoding. Per §4.2, the check is asymmetric by
// construction: the *existence* of a requirement or condition is verified
// reliably, but a numeric value is only refutable when the value matches
// none of the numbers in the source sentence — number-loaded sentences
// cannot pin the value down.
func CheckSystemEncoding(sys kb.System, doc SystemDoc) []Issue {
	var issues []Issue

	// Requirement existence: every capability marker in the document
	// must appear in the encoding (the Shenango interrupt-polling case).
	for _, sent := range doc.Sentences {
		lower := strings.ToLower(sent)
		for _, mk := range capMarkers {
			if !strings.Contains(lower, mk.phrase) {
				continue
			}
			if !hasCap(sys.RequiresCaps[mk.kind], mk.cap) {
				issues = append(issues, Issue{
					Kind: "missing_requirement",
					Detail: fmt.Sprintf("document requires %s on %s (%q) but the encoding omits it",
						mk.cap, mk.kind, sent),
				})
			}
		}
		// Condition existence.
		if cond, ok := conditionFrom(lower); ok {
			if !hasCondition(sys, cond) {
				issues = append(issues, Issue{
					Kind: "missing_condition",
					Detail: fmt.Sprintf("document states a condition (%s=%v: %q) the encoding omits",
						cond.Atom, cond.Value, sent),
				})
			}
		}
		// Resource value check: refutable only against the sentence's
		// own numbers.
		if res, _, ok := resourceFrom(lower); ok {
			nums := allNumbers(lower)
			var encoded int64
			var present bool
			if res == "cores_per_kflows" {
				encoded, present = sys.CoresPerKFlows, sys.CoresPerKFlows != 0
			} else {
				encoded, present = sys.Resources[kb.Resource(res)], sys.Resources[kb.Resource(res)] != 0
			}
			if !present {
				issues = append(issues, Issue{
					Kind:   "missing_resource",
					Detail: fmt.Sprintf("document quantifies %s (%q) but the encoding omits it", res, sent),
				})
				continue
			}
			found := false
			for _, n := range nums {
				if n == encoded {
					found = true
					break
				}
			}
			if !found {
				issues = append(issues, Issue{
					Kind: "wrong_value",
					Detail: fmt.Sprintf("encoding says %s=%d but the document sentence %q contains %v",
						res, encoded, sent, nums),
				})
			}
		}
	}
	return issues
}

// hasCondition reports whether the encoding contains the condition in
// either its deployability or usefulness lists.
func hasCondition(sys kb.System, cond kb.Condition) bool {
	for _, c := range sys.RequiresContext {
		if c == cond {
			return true
		}
	}
	for _, c := range sys.UsefulOnlyWhen {
		if c == cond {
			return true
		}
	}
	return false
}

// AllNumbers extracts every integer in a string (commas inside digit runs
// are treated as thousands separators).
func AllNumbers(s string) []int64 { return allNumbers(s) }

// ResourceMention reports the resource a sentence quantifies and the
// value a naive first-number reading gives, if any.
func ResourceMention(sentence string) (resource string, value int64, ok bool) {
	return resourceFrom(strings.ToLower(sentence))
}

// allNumbers extracts every integer in a string.
func allNumbers(s string) []int64 {
	var out []int64
	for i := 0; i < len(s); {
		if s[i] < '0' || s[i] > '9' {
			i++
			continue
		}
		j := i
		var v int64
		for j < len(s) && ((s[j] >= '0' && s[j] <= '9') || (s[j] == ',' && j+1 < len(s) && s[j+1] >= '0' && s[j+1] <= '9')) {
			if s[j] != ',' {
				v = v*10 + int64(s[j]-'0')
			}
			j++
		}
		out = append(out, v)
		i = j
	}
	return out
}

// subjectiveMarkers are comparative phrasings that make a claim
// subjective rather than checkable (§4.2: objective properties vs
// controversial comparisons).
var subjectiveMarkers = []string{
	"better than", "better", "worse", "outperforms", "beats",
	"faster than", "slower than", "best", "superior", "wins",
}

// IsSubjective reports whether a claim reads as a comparison/opinion
// rather than an objective, checkable fact.
func IsSubjective(claim string) bool {
	lower := strings.ToLower(claim)
	for _, m := range subjectiveMarkers {
		if strings.Contains(lower, m) {
			return true
		}
	}
	return false
}

// CheckObjectivity partitions claims into objective facts and subjective
// comparisons, the split the paper says the final design must make (§4.2).
func CheckObjectivity(claims []string) (objective, subjective []string) {
	for _, c := range claims {
		if IsSubjective(c) {
			subjective = append(subjective, c)
		} else {
			objective = append(objective, c)
		}
	}
	return objective, subjective
}

// Accuracy is a field-level extraction score.
type Accuracy struct {
	Correct int
	Total   int
}

// Frac returns the accuracy fraction (1.0 when Total is 0).
func (a Accuracy) Frac() float64 {
	if a.Total == 0 {
		return 1.0
	}
	return float64(a.Correct) / float64(a.Total)
}

// Add accumulates another score.
func (a *Accuracy) Add(b Accuracy) {
	a.Correct += b.Correct
	a.Total += b.Total
}

// ScoreHardware compares an extracted hardware encoding against the
// reference, field by field: kind, every capability, every quantity, and
// cost.
func ScoreHardware(got, want kb.Hardware) Accuracy {
	var a Accuracy
	score := func(ok bool) {
		a.Total++
		if ok {
			a.Correct++
		}
	}
	score(got.Name == want.Name)
	score(got.Kind == want.Kind)
	capsU := map[kb.Capability]bool{}
	for _, c := range got.Caps {
		capsU[c] = true
	}
	for _, c := range want.Caps {
		capsU[c] = true
	}
	for c := range capsU {
		score(got.HasCap(c) == want.HasCap(c))
	}
	quantU := map[kb.Resource]bool{}
	for r := range got.Quant {
		quantU[r] = true
	}
	for r := range want.Quant {
		quantU[r] = true
	}
	for r := range quantU {
		score(got.Q(r) == want.Q(r))
	}
	if got.CostUSD != 0 || want.CostUSD != 0 {
		score(got.CostUSD == want.CostUSD)
	}
	return a
}

// ScoreSystem compares an extracted system encoding against the
// reference: capability requirements, conditions, and resource numbers.
func ScoreSystem(got, want kb.System) Accuracy {
	var a Accuracy
	score := func(ok bool) {
		a.Total++
		if ok {
			a.Correct++
		}
	}
	// Capability requirements (union of both sides).
	type kc struct {
		kind kb.HardwareKind
		cap  kb.Capability
	}
	capsU := map[kc]bool{}
	for kind, caps := range got.RequiresCaps {
		for _, c := range caps {
			capsU[kc{kind, c}] = true
		}
	}
	for kind, caps := range want.RequiresCaps {
		for _, c := range caps {
			capsU[kc{kind, c}] = true
		}
	}
	for k := range capsU {
		score(hasCap(got.RequiresCaps[k.kind], k.cap) == hasCap(want.RequiresCaps[k.kind], k.cap))
	}
	// Conditions (union; membership in either list counts).
	condsU := map[kb.Condition]bool{}
	for _, c := range append(append([]kb.Condition{}, got.RequiresContext...), got.UsefulOnlyWhen...) {
		condsU[c] = true
	}
	for _, c := range append(append([]kb.Condition{}, want.RequiresContext...), want.UsefulOnlyWhen...) {
		condsU[c] = true
	}
	for c := range condsU {
		score(hasCondition(got, c) == hasCondition(want, c))
	}
	// Resources.
	resU := map[kb.Resource]bool{}
	for r := range got.Resources {
		resU[r] = true
	}
	for r := range want.Resources {
		resU[r] = true
	}
	for r := range resU {
		score(got.Resources[r] == want.Resources[r])
	}
	if got.CoresPerKFlows != 0 || want.CoresPerKFlows != 0 {
		score(got.CoresPerKFlows == want.CoresPerKFlows)
	}
	return a
}

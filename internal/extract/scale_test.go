package extract

import (
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

// TestCatalogScale is the large-catalog smoke for the 50k-SKU scale-out
// (make scale-diff): the generated corpus must validate as a knowledge
// base, hit the advertised sizes, keep the seed catalog as an exact
// prefix, and round-trip through the §4.1 ingestion pipeline — rendered
// spec sheets re-extracted by the simulated LLM and scored at 100%
// accuracy. A deterministic stride keeps the ingestion sample a few
// hundred sheets so the whole test stays well under 30 seconds.
func TestCatalogScale(t *testing.T) {
	const total = 50000
	k := catalog.ScaledCatalog(total)
	if err := k.Validate(); err != nil {
		t.Fatalf("50k catalog does not validate: %v", err)
	}
	if len(k.Hardware) < total {
		t.Fatalf("scaled catalog has %d SKUs, want >= %d", len(k.Hardware), total)
	}
	if len(k.Workloads) < 24 {
		t.Fatalf("scaled catalog has %d workload profiles, want >= 24", len(k.Workloads))
	}
	if len(k.Rules) == 0 || len(k.Orders) == 0 {
		t.Fatalf("scaled catalog dropped rules (%d) or orders (%d)", len(k.Rules), len(k.Orders))
	}

	// Seed prefix and global name uniqueness: variants must never shadow
	// a real SKU (the slicer and the snapshot envelope key on names).
	seed := catalog.Hardware()
	seen := make(map[string]bool, len(k.Hardware))
	for i := range k.Hardware {
		name := k.Hardware[i].Name
		if seen[name] {
			t.Fatalf("duplicate SKU name %q at index %d", name, i)
		}
		seen[name] = true
		if i < len(seed) && name != seed[i].Name {
			t.Fatalf("seed prefix broken at %d: got %q want %q", i, name, seed[i].Name)
		}
	}

	// Ingestion round-trip over a strided sample (~500 sheets): render,
	// re-extract, score. The checker's §4.1 guarantee — 100% on spec
	// sheets — must survive the generated firmware variants.
	m := NewSimulatedLLM(2)
	var sampled int
	var total100 Accuracy
	for i := 0; i < len(k.Hardware); i += 97 {
		h := k.Hardware[i]
		got, err := m.ExtractHardware(RenderSpecSheet(&h))
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		acc := ScoreHardware(got, h)
		if acc.Frac() != 1.0 {
			t.Fatalf("%s: ingestion accuracy %.2f (%+v)", h.Name, acc.Frac(), acc)
		}
		total100.Add(acc)
		sampled++
	}
	if sampled < 400 {
		t.Fatalf("sampled only %d sheets; stride too coarse for a meaningful smoke", sampled)
	}
	if total100.Frac() != 1.0 {
		t.Fatalf("sampled corpus accuracy %.4f, want 1.0", total100.Frac())
	}

	// Kind balance: dominance pruning groups per kind, so each kind must
	// scale, not just the most numerous seed class.
	byKind := map[kb.HardwareKind]int{}
	for i := range k.Hardware {
		byKind[k.Hardware[i].Kind]++
	}
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		if byKind[kind] < total/10 {
			t.Fatalf("kind %s has only %d of %d SKUs", kind, byKind[kind], total)
		}
	}
}

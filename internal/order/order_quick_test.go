package order

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"netarch/internal/logic"
)

// randomDAGOrder builds a random acyclic conditional order over n items:
// edges only point from lower to higher index, so every context resolves
// acyclically.
func randomDAGOrder(r *rand.Rand, n, nEdges, nAtoms int, vo *logic.Vocabulary) *Graph {
	g := New("prop")
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("s%d", i))
	}
	for e := 0; e < nEdges; e++ {
		i := r.Intn(n - 1)
		j := i + 1 + r.Intn(n-i-1)
		guard := logic.Formula(logic.True)
		if r.Intn(2) == 0 {
			v := vo.Get(fmt.Sprintf("a%d", r.Intn(nAtoms)))
			guard = logic.V(v)
			if r.Intn(2) == 0 {
				guard = logic.Not(guard)
			}
		}
		if err := g.AddEdge(fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", j), guard, ""); err != nil {
			panic(err)
		}
	}
	return g
}

func TestQuickResolvedIsStrictPartialOrder(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vo := logic.NewVocabulary()
		n := 3 + r.Intn(6)
		g := randomDAGOrder(r, n, 1+r.Intn(2*n), 3, vo)
		ctx := Context{}
		for i := 1; i <= vo.Len(); i++ {
			ctx[logic.Var(i)] = r.Intn(2) == 0
		}
		res, err := g.Resolve(ctx)
		if err != nil {
			return false // DAG construction guarantees acyclicity
		}
		names := g.Nodes()
		// Irreflexive, antisymmetric, transitive.
		for _, a := range names {
			if res.Better(a, a) {
				return false
			}
			for _, b := range names {
				if res.Better(a, b) && res.Better(b, a) {
					return false
				}
				for _, c := range names {
					if res.Better(a, b) && res.Better(b, c) && !res.Better(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickHasseRegeneratesClosure(t *testing.T) {
	// Property: the transitive closure of the Hasse edges equals the
	// full Better relation.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vo := logic.NewVocabulary()
		n := 3 + r.Intn(5)
		g := randomDAGOrder(r, n, 1+r.Intn(2*n), 2, vo)
		res, err := g.Resolve(nil)
		if err != nil {
			return false
		}
		hasse := res.HasseEdges()
		// Rebuild closure from Hasse edges.
		adj := map[string]map[string]bool{}
		for _, e := range hasse {
			if adj[e[0]] == nil {
				adj[e[0]] = map[string]bool{}
			}
			adj[e[0]][e[1]] = true
		}
		var reach func(from, to string, seen map[string]bool) bool
		reach = func(from, to string, seen map[string]bool) bool {
			if adj[from][to] {
				return true
			}
			for next := range adj[from] {
				if !seen[next] {
					seen[next] = true
					if reach(next, to, seen) {
						return true
					}
				}
			}
			return false
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if a == b {
					continue
				}
				want := res.Better(a, b)
				got := reach(a, b, map[string]bool{a: true})
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaximalNeverDominated(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vo := logic.NewVocabulary()
		n := 3 + r.Intn(6)
		g := randomDAGOrder(r, n, 1+r.Intn(2*n), 2, vo)
		res, err := g.Resolve(nil)
		if err != nil {
			return false
		}
		maximal := map[string]bool{}
		for _, m := range res.Maximal() {
			maximal[m] = true
		}
		for _, a := range g.Nodes() {
			dominated := false
			for _, b := range g.Nodes() {
				if res.Better(b, a) {
					dominated = true
				}
			}
			if maximal[a] == dominated {
				return false // maximal iff not dominated
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

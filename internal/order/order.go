// Package order implements conditional partial orders — the paper's
// "rules of thumb" (§3.1, Figure 1). An order relates systems along one
// dimension (throughput, isolation, deployment ease, …) with edges that
// may be guarded by a context formula: "Snap > Linux for throughput if
// Pony is enabled", "Linux is sufficient below 40 Gbps".
//
// Guards are propositional formulas over a logic.Vocabulary shared with
// the knowledge base, so the same context atoms drive both the partial
// orders and the deployability constraints.
package order

import (
	"fmt"
	"sort"

	"netarch/internal/logic"
)

// Edge is a guarded preference: Better is preferred to Worse along the
// graph's dimension whenever Guard evaluates true in the query context.
// An always-on edge has Guard logic.True.
type Edge struct {
	Better string
	Worse  string
	Guard  logic.Formula
	// Note records the provenance of the rule (paper citation, operator
	// experience), surfaced in explanations.
	Note string
}

// Equivalence records that two items are considered equal along the
// dimension (Figure 1's dashed lines), under a guard.
type Equivalence struct {
	A, B  string
	Guard logic.Formula
	Note  string
}

// Graph is a conditional partial order along a single dimension.
// The zero value is unusable; create with New.
type Graph struct {
	dimension string
	nodes     []string
	nodeSet   map[string]bool
	edges     []Edge
	equals    []Equivalence
}

// New returns an empty conditional partial order for the given dimension.
func New(dimension string) *Graph {
	return &Graph{dimension: dimension, nodeSet: make(map[string]bool)}
}

// Dimension returns the dimension name this order ranks.
func (g *Graph) Dimension() string { return g.dimension }

// AddNode registers an item. Adding edges registers endpoints implicitly;
// explicit registration is useful for items with no known comparisons
// (the paper stresses incompleteness is expected).
func (g *Graph) AddNode(name string) {
	if !g.nodeSet[name] {
		g.nodeSet[name] = true
		g.nodes = append(g.nodes, name)
	}
}

// Nodes returns all registered items in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// Edges returns all guarded edges.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// Equivalences returns all guarded equivalences.
func (g *Graph) Equivalences() []Equivalence {
	return append([]Equivalence(nil), g.equals...)
}

// AddEdge records "better > worse when guard". Self-loops are rejected.
func (g *Graph) AddEdge(better, worse string, guard logic.Formula, note string) error {
	if better == worse {
		return fmt.Errorf("order: self-comparison of %q", better)
	}
	g.AddNode(better)
	g.AddNode(worse)
	g.edges = append(g.edges, Edge{Better: better, Worse: worse, Guard: guard, Note: note})
	return nil
}

// AddEqual records "a = b when guard" (Figure 1's dashed line).
func (g *Graph) AddEqual(a, b string, guard logic.Formula, note string) error {
	if a == b {
		return fmt.Errorf("order: self-equivalence of %q", a)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.equals = append(g.equals, Equivalence{A: a, B: b, Guard: guard, Note: note})
	return nil
}

// Context is an assignment of the guard atoms; missing atoms are false.
type Context map[logic.Var]bool

// Resolve evaluates every guard under ctx and returns the concrete partial
// order that applies: equivalent nodes are merged into classes, and an
// error is returned if the active edges create a preference cycle (which
// indicates contradictory rules of thumb — worth surfacing, not masking).
func (g *Graph) Resolve(ctx Context) (*Resolved, error) {
	// Union-find over nodes for active equivalences.
	parent := make(map[string]string, len(g.nodes))
	for _, n := range g.nodes {
		parent[n] = n
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, eq := range g.equals {
		if eq.Guard.Eval(ctx) {
			ra, rb := find(eq.A), find(eq.B)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}

	r := &Resolved{
		dimension: g.dimension,
		classes:   nil,
	}
	classOf := make(map[string]int)
	memberOf := make(map[string][]string)
	for _, n := range g.nodes {
		memberOf[find(n)] = append(memberOf[find(n)], n)
	}
	roots := make([]string, 0, len(memberOf))
	for root := range memberOf {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		members := memberOf[root]
		sort.Strings(members)
		idx := len(r.classes)
		r.classes = append(r.classes, members)
		for _, m := range members {
			classOf[m] = idx
		}
	}
	r.classOf = classOf

	n := len(r.classes)
	r.adj = make([][]bool, n)
	for i := range r.adj {
		r.adj[i] = make([]bool, n)
	}
	r.edgeNotes = make(map[[2]int][]string)
	for _, e := range g.edges {
		if !e.Guard.Eval(ctx) {
			continue
		}
		a, b := classOf[e.Better], classOf[e.Worse]
		if a == b {
			return nil, fmt.Errorf(
				"order[%s]: %q > %q contradicts an active equivalence (%s)",
				g.dimension, e.Better, e.Worse, e.Note)
		}
		r.adj[a][b] = true
		key := [2]int{a, b}
		r.edgeNotes[key] = append(r.edgeNotes[key], e.Note)
	}

	// Transitive closure (Floyd–Warshall over booleans).
	r.closure = make([][]bool, n)
	for i := range r.closure {
		r.closure[i] = append([]bool(nil), r.adj[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !r.closure[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if r.closure[k][j] {
					r.closure[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if r.closure[i][i] {
			return nil, fmt.Errorf(
				"order[%s]: preference cycle through %v — contradictory rules",
				g.dimension, r.classes[i])
		}
	}
	return r, nil
}

// Resolved is a concrete (guard-free) partial order over equivalence
// classes of items.
type Resolved struct {
	dimension string
	classes   [][]string // equivalence classes, each sorted
	classOf   map[string]int
	adj       [][]bool // direct better-than edges between classes
	closure   [][]bool // transitive closure
	edgeNotes map[[2]int][]string
}

// Dimension returns the dimension name.
func (r *Resolved) Dimension() string { return r.dimension }

// Classes returns the equivalence classes.
func (r *Resolved) Classes() [][]string {
	out := make([][]string, len(r.classes))
	for i, c := range r.classes {
		out[i] = append([]string(nil), c...)
	}
	return out
}

// Better reports whether a is strictly preferred to b (transitively).
// Unknown items are never preferred.
func (r *Resolved) Better(a, b string) bool {
	ia, oka := r.classOf[a]
	ib, okb := r.classOf[b]
	if !oka || !okb || ia == ib {
		return false
	}
	return r.closure[ia][ib]
}

// Equal reports whether a and b were merged by an equivalence.
func (r *Resolved) Equal(a, b string) bool {
	ia, oka := r.classOf[a]
	ib, okb := r.classOf[b]
	return oka && okb && ia == ib
}

// Comparable reports whether a and b are related (either direction or equal).
func (r *Resolved) Comparable(a, b string) bool {
	return r.Equal(a, b) || r.Better(a, b) || r.Better(b, a)
}

// Maximal returns the items not dominated by any other item — the
// candidates an architect should consider along this dimension.
func (r *Resolved) Maximal() []string {
	var out []string
	for i, members := range r.classes {
		dominated := false
		for j := range r.classes {
			if j != i && r.closure[j][i] {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, members...)
		}
	}
	sort.Strings(out)
	return out
}

// Minimal returns the items that dominate no other item.
func (r *Resolved) Minimal() []string {
	var out []string
	for i, members := range r.classes {
		dominates := false
		for j := range r.classes {
			if j != i && r.closure[i][j] {
				dominates = true
				break
			}
		}
		if !dominates {
			out = append(out, members...)
		}
	}
	sort.Strings(out)
	return out
}

// IncomparablePairs returns all unordered item pairs with no relation —
// the gaps in the knowledge base that §3.1 says architects can fill only
// if the answer would change a design decision.
func (r *Resolved) IncomparablePairs() [][2]string {
	var out [][2]string
	items := make([]string, 0, len(r.classOf))
	for it := range r.classOf {
		items = append(items, it)
	}
	sort.Strings(items)
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if !r.Comparable(items[i], items[j]) {
				out = append(out, [2]string{items[i], items[j]})
			}
		}
	}
	return out
}

// HasseEdges returns the transitive reduction as (better, worse) pairs of
// representative items (first member of each class), the minimal edge set
// drawn in a Hasse diagram like Figure 1.
func (r *Resolved) HasseEdges() [][2]string {
	n := len(r.classes)
	var out [][2]string
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !r.closure[i][j] {
				continue
			}
			// Edge i→j is redundant if some k has i→k→j.
			redundant := false
			for k := 0; k < n && !redundant; k++ {
				if k != i && k != j && r.closure[i][k] && r.closure[k][j] {
					redundant = true
				}
			}
			if !redundant {
				out = append(out, [2]string{r.classes[i][0], r.classes[j][0]})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Notes returns the provenance notes attached to the direct edge between
// the classes of a and b, if any.
func (r *Resolved) Notes(a, b string) []string {
	ia, oka := r.classOf[a]
	ib, okb := r.classOf[b]
	if !oka || !okb {
		return nil
	}
	return append([]string(nil), r.edgeNotes[[2]int{ia, ib}]...)
}

package order

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/logic"
)

// DOT renders the conditional graph in Graphviz format in the style of the
// paper's Figure 1: solid arrows point from the better to the worse system,
// dashed undirected lines mark equivalences, and guard conditions label the
// edges. vocab translates guard atoms to names; dimensions may color edges
// via the color parameter (empty means default).
func (g *Graph) DOT(vocab *logic.Vocabulary, color string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeID(g.dimension))
	fmt.Fprintf(&b, "  label=%q;\n  rankdir=TB;\n  node [shape=box];\n", g.dimension)
	nodes := append([]string(nil), g.nodes...)
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	attrs := func(guard logic.Formula, extra string) string {
		var parts []string
		if extra != "" {
			parts = append(parts, extra)
		}
		if color != "" {
			parts = append(parts, fmt.Sprintf("color=%q", color))
		}
		if guard.Kind() != logic.KindTrue {
			label := guard.String()
			if vocab != nil {
				label = vocab.Render(guard)
			}
			parts = append(parts, fmt.Sprintf("label=%q", label))
		}
		if len(parts) == 0 {
			return ""
		}
		return " [" + strings.Join(parts, ", ") + "]"
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.Better, e.Worse, attrs(e.Guard, ""))
	}
	for _, eq := range g.equals {
		fmt.Fprintf(&b, "  %q -> %q%s;\n", eq.A, eq.B, attrs(eq.Guard, "dir=none, style=dashed"))
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

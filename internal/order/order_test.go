package order

import (
	"strings"
	"testing"

	"netarch/internal/logic"
)

func mustEdge(t *testing.T, g *Graph, better, worse string, guard logic.Formula) {
	t.Helper()
	if err := g.AddEdge(better, worse, guard, "test"); err != nil {
		t.Fatal(err)
	}
}

func TestBasicChain(t *testing.T) {
	g := New("throughput")
	mustEdge(t, g, "a", "b", logic.True)
	mustEdge(t, g, "b", "c", logic.True)
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Better("a", "b") || !r.Better("b", "c") {
		t.Error("direct edges missing")
	}
	if !r.Better("a", "c") {
		t.Error("transitivity missing")
	}
	if r.Better("c", "a") || r.Better("a", "a") {
		t.Error("spurious preference")
	}
	if r.Better("a", "ghost") || r.Better("ghost", "a") {
		t.Error("unknown items must be unpreferred")
	}
}

func TestGuardedEdges(t *testing.T) {
	vo := logic.NewVocabulary()
	hiRate := vo.Get("load_ge_40g")
	g := New("throughput")
	mustEdge(t, g, "netchannel", "linux", logic.V(hiRate))
	mustEdge(t, g, "linux", "netchannel", logic.Not(logic.V(hiRate)))

	low, err := g.Resolve(Context{})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Better("linux", "netchannel") || low.Better("netchannel", "linux") {
		t.Error("below 40G linux should win")
	}
	high, err := g.Resolve(Context{hiRate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !high.Better("netchannel", "linux") || high.Better("linux", "netchannel") {
		t.Error("above 40G netchannel should win")
	}
}

func TestEquivalenceMerging(t *testing.T) {
	g := New("isolation")
	if err := g.AddEqual("x", "y", logic.True, "same paper"); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, "x", "z", logic.True)
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal("x", "y") {
		t.Error("x and y must be merged")
	}
	if !r.Better("y", "z") {
		t.Error("preference must apply through the merged class")
	}
	found := false
	for _, c := range r.Classes() {
		if len(c) == 2 && c[0] == "x" && c[1] == "y" {
			found = true
		}
	}
	if !found {
		t.Errorf("classes wrong: %v", r.Classes())
	}
}

func TestEquivalenceContradiction(t *testing.T) {
	g := New("d")
	if err := g.AddEqual("a", "b", logic.True, ""); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, "a", "b", logic.True)
	if _, err := g.Resolve(nil); err == nil {
		t.Error("edge inside an equivalence class must be an error")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("d")
	mustEdge(t, g, "a", "b", logic.True)
	mustEdge(t, g, "b", "c", logic.True)
	mustEdge(t, g, "c", "a", logic.True)
	if _, err := g.Resolve(nil); err == nil {
		t.Error("preference cycle must be an error")
	}
}

func TestGuardedCycleOnlyWhenActive(t *testing.T) {
	vo := logic.NewVocabulary()
	p := vo.Get("p")
	g := New("d")
	mustEdge(t, g, "a", "b", logic.True)
	mustEdge(t, g, "b", "a", logic.V(p))
	if _, err := g.Resolve(Context{}); err != nil {
		t.Errorf("inactive guard must not cycle: %v", err)
	}
	if _, err := g.Resolve(Context{p: true}); err == nil {
		t.Error("active guard must cycle")
	}
}

func TestMaximalMinimal(t *testing.T) {
	g := New("d")
	mustEdge(t, g, "top", "mid", logic.True)
	mustEdge(t, g, "mid", "bot", logic.True)
	g.AddNode("island")
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := []string{"island", "top"}
	gotMax := r.Maximal()
	if len(gotMax) != 2 || gotMax[0] != wantMax[0] || gotMax[1] != wantMax[1] {
		t.Errorf("Maximal: got %v, want %v", gotMax, wantMax)
	}
	wantMin := []string{"bot", "island"}
	gotMin := r.Minimal()
	if len(gotMin) != 2 || gotMin[0] != wantMin[0] || gotMin[1] != wantMin[1] {
		t.Errorf("Minimal: got %v, want %v", gotMin, wantMin)
	}
}

func TestIncomparablePairs(t *testing.T) {
	g := New("isolation")
	mustEdge(t, g, "a", "b", logic.True)
	g.AddNode("c")
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := r.IncomparablePairs()
	// a-c and b-c are incomparable.
	if len(pairs) != 2 {
		t.Fatalf("got %v, want two pairs", pairs)
	}
}

func TestHasseReduction(t *testing.T) {
	g := New("d")
	mustEdge(t, g, "a", "b", logic.True)
	mustEdge(t, g, "b", "c", logic.True)
	mustEdge(t, g, "a", "c", logic.True) // redundant
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	edges := r.HasseEdges()
	if len(edges) != 2 {
		t.Fatalf("Hasse edges: got %v, want 2 edges", edges)
	}
	for _, e := range edges {
		if e == [2]string{"a", "c"} {
			t.Error("redundant edge a->c must be reduced away")
		}
	}
}

func TestNotes(t *testing.T) {
	g := New("d")
	if err := g.AddEdge("a", "b", logic.True, "SIGCOMM'19 measurement"); err != nil {
		t.Fatal(err)
	}
	r, err := g.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	notes := r.Notes("a", "b")
	if len(notes) != 1 || notes[0] != "SIGCOMM'19 measurement" {
		t.Errorf("Notes: got %v", notes)
	}
	if r.Notes("b", "a") != nil {
		t.Error("reverse direction must carry no notes")
	}
}

func TestSelfEdgeRejected(t *testing.T) {
	g := New("d")
	if err := g.AddEdge("a", "a", logic.True, ""); err == nil {
		t.Error("self edge must be rejected")
	}
	if err := g.AddEqual("a", "a", logic.True, ""); err == nil {
		t.Error("self equivalence must be rejected")
	}
}

func TestAccessors(t *testing.T) {
	g := New("throughput")
	mustEdge(t, g, "a", "b", logic.True)
	if g.Dimension() != "throughput" {
		t.Error("Dimension wrong")
	}
	if len(g.Nodes()) != 2 || len(g.Edges()) != 1 || len(g.Equivalences()) != 0 {
		t.Error("accessors wrong")
	}
	r, _ := g.Resolve(nil)
	if r.Dimension() != "throughput" {
		t.Error("Resolved.Dimension wrong")
	}
	if !r.Comparable("a", "b") || r.Comparable("a", "ghost") {
		t.Error("Comparable wrong")
	}
}

func TestDOTOutput(t *testing.T) {
	vo := logic.NewVocabulary()
	pony := vo.Get("pony_enabled")
	g := New("throughput")
	mustEdge(t, g, "snap", "linux", logic.V(pony))
	if err := g.AddEqual("snap", "shenango", logic.True, ""); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT(vo, "yellow")
	for _, want := range []string{
		"digraph", `"snap" -> "linux"`, "pony_enabled",
		"style=dashed", `color="yellow"`, `label="throughput"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
}

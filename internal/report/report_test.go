package report

import (
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/core"
	"netarch/internal/kb"
)

func TestRenderFeasible(t *testing.T) {
	k := catalog.CaseStudy()
	eng, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	sc := core.Scenario{
		Workloads: []string{"inference_app"},
		Require:   []kb.Property{"congestion_control"},
		Context:   map[string]bool{"deadline_tight": true},
	}
	rep, err := eng.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != core.Feasible {
		t.Fatalf("scenario infeasible: %v", rep.Explanation)
	}
	md := Render(k, sc, rep, Options{ShowNotes: true})
	for _, want := range []string{
		"# Network architecture reasoning report",
		"**Verdict:** FEASIBLE",
		"## Scenario",
		"- workloads: inference_app",
		"- required properties: congestion_control",
		"deadline_tight=true",
		"## Systems",
		"| system | role | solves |",
		"## Hardware",
		"| kind | SKU | capabilities | unit cost |",
		"## Budget",
		"- cores:",
		"## Operating context",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every deployed system appears in the table.
	for _, s := range rep.Design.Systems {
		if !strings.Contains(md, "| "+s+" |") {
			t.Errorf("system %s missing from table", s)
		}
	}
}

func TestRenderInfeasibleWithSuggestions(t *testing.T) {
	k := catalog.CaseStudy()
	eng, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	sc := core.Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	}
	rep, err := eng.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != core.Infeasible {
		t.Fatal("want infeasible")
	}
	md := Render(k, sc, rep, Options{Title: "Custom title"})
	for _, want := range []string{
		"# Custom title",
		"**Verdict:** INFEASIBLE",
		"## Conflict",
		"rule:pfc_no_flooding",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q:\n%s", want, md)
		}
	}

	sugs, err := eng.Suggest(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	ext := RenderSuggestions(sugs)
	if !strings.Contains(ext, "## Suggested relaxations") ||
		!strings.Contains(ext, "**Option 1**") {
		t.Errorf("suggestions section wrong:\n%s", ext)
	}
	if RenderSuggestions(nil) != "" {
		t.Error("empty suggestions must render empty")
	}
}

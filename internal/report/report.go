// Package report renders reasoning results as Markdown documents — the
// artifact an architect files with their design review. A report contains
// the verdict, the deployed systems with their provenance notes, the
// selected hardware with the capabilities that drove the selection, the
// budget figures, and (when infeasible) the minimal conflict with
// suggested relaxations.
package report

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/core"
	"netarch/internal/kb"
)

// Options controls report rendering.
type Options struct {
	// Title overrides the document heading.
	Title string
	// ShowNotes includes each system's provenance notes.
	ShowNotes bool
}

// Render produces a Markdown report for a query result against its
// knowledge base and scenario.
func Render(k *kb.KB, sc core.Scenario, rep *core.Report, opts Options) string {
	var b strings.Builder
	title := opts.Title
	if title == "" {
		title = "Network architecture reasoning report"
	}
	fmt.Fprintf(&b, "# %s\n\n", title)
	fmt.Fprintf(&b, "**Verdict:** %s\n\n", rep.Verdict)

	renderScenario(&b, &sc)

	if rep.Verdict == core.Infeasible {
		b.WriteString("## Conflict\n\n")
		b.WriteString("The following requirements cannot hold together (minimal set):\n\n")
		for _, c := range rep.Explanation.Conflicts {
			fmt.Fprintf(&b, "- `%s`", c.Name)
			if c.Note != "" {
				fmt.Fprintf(&b, " — %s", c.Note)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
		return b.String()
	}

	d := rep.Design
	b.WriteString("## Systems\n\n")
	b.WriteString("| system | role | solves |\n|---|---|---|\n")
	for _, name := range d.Systems {
		s := k.SystemByName(name)
		if s == nil {
			fmt.Fprintf(&b, "| %s | ? | ? |\n", name)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", s.Name, s.Role, joinProps(s.Solves))
	}
	b.WriteString("\n")

	if opts.ShowNotes {
		b.WriteString("### Provenance\n\n")
		for _, name := range d.Systems {
			s := k.SystemByName(name)
			if s == nil || len(s.Notes) == 0 {
				continue
			}
			keys := make([]string, 0, len(s.Notes))
			for key := range s.Notes {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				fmt.Fprintf(&b, "- **%s** (%s): %s\n", s.Name, key, s.Notes[key])
			}
		}
		b.WriteString("\n")
	}

	b.WriteString("## Hardware\n\n")
	b.WriteString("| kind | SKU | capabilities | unit cost |\n|---|---|---|---|\n")
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		name := d.Hardware[kind]
		if name == "" {
			continue
		}
		h := k.HardwareByName(name)
		caps := make([]string, len(h.Caps))
		for i, c := range h.Caps {
			caps[i] = string(c)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | $%d |\n", kind, h.Name, strings.Join(caps, ", "), h.CostUSD)
	}
	b.WriteString("\n")

	b.WriteString("## Budget\n\n")
	fmt.Fprintf(&b, "- cores: %d used of %d provisioned\n",
		d.Metrics["cores_used"], d.Metrics["cores_total"])
	fmt.Fprintf(&b, "- hardware cost: $%d\n\n", d.Metrics["cost_usd"])

	if len(d.Context) > 0 {
		b.WriteString("## Operating context\n\n")
		atoms := make([]string, 0, len(d.Context))
		for a := range d.Context {
			atoms = append(atoms, a)
		}
		sort.Strings(atoms)
		for _, a := range atoms {
			fmt.Fprintf(&b, "- `%s` = %v\n", a, d.Context[a])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func renderScenario(b *strings.Builder, sc *core.Scenario) {
	var lines []string
	if len(sc.Workloads) > 0 {
		lines = append(lines, fmt.Sprintf("- workloads: %s", strings.Join(sc.Workloads, ", ")))
	}
	if len(sc.Require) > 0 {
		lines = append(lines, fmt.Sprintf("- required properties: %s", joinProps(sc.Require)))
	}
	if len(sc.Context) > 0 {
		atoms := make([]string, 0, len(sc.Context))
		for a, v := range sc.Context {
			atoms = append(atoms, fmt.Sprintf("%s=%v", a, v))
		}
		sort.Strings(atoms)
		lines = append(lines, fmt.Sprintf("- pinned context: %s", strings.Join(atoms, ", ")))
	}
	if len(sc.PinnedSystems) > 0 {
		lines = append(lines, fmt.Sprintf("- pinned systems: %s", strings.Join(sc.PinnedSystems, ", ")))
	}
	if len(sc.ForbiddenSystems) > 0 {
		lines = append(lines, fmt.Sprintf("- forbidden systems: %s", strings.Join(sc.ForbiddenSystems, ", ")))
	}
	if sc.MaxCostUSD > 0 {
		lines = append(lines, fmt.Sprintf("- budget: $%d", sc.MaxCostUSD))
	}
	if len(lines) == 0 {
		return
	}
	b.WriteString("## Scenario\n\n")
	b.WriteString(strings.Join(lines, "\n"))
	b.WriteString("\n\n")
}

func joinProps(ps []kb.Property) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = string(p)
	}
	return strings.Join(ss, ", ")
}

// RenderSuggestions appends a relaxation section produced by
// Engine.Suggest to an infeasibility report.
func RenderSuggestions(sugs []*core.Suggestion) string {
	if len(sugs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("## Suggested relaxations\n\n")
	for i, s := range sugs {
		fmt.Fprintf(&b, "**Option %d** — relax:\n\n", i+1)
		for _, c := range s.Drop {
			fmt.Fprintf(&b, "- `%s`", c.Name)
			if c.Note != "" {
				fmt.Fprintf(&b, " — %s", c.Note)
			}
			b.WriteString("\n")
		}
		if s.Witness != nil {
			fmt.Fprintf(&b, "\nthen feasible with: %s\n\n", strings.Join(s.Witness.Systems, ", "))
		}
	}
	return b.String()
}

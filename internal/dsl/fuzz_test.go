package dsl

import (
	"strings"
	"testing"
)

// FuzzParseExpr checks the expression parser never panics and that
// anything it accepts round-trips through FormatExpr.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"ctx:a",
		"ctx:a -> !ctx:b",
		"(ctx:a | ctx:b) & ctx:c",
		"a <-> b <-> c",
		"!(!x)",
		"true & false",
		"-> ->", "((((", "a &&& b", "!",
		"system:rdma-roce -> ctx:pfc_enabled",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		text := FormatExpr(e)
		e2, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, text, err)
		}
		if FormatExpr(e2) != text {
			t.Fatalf("format not idempotent: %q -> %q", text, FormatExpr(e2))
		}
	})
}

// FuzzParseString checks the block parser never panics and that accepted
// inputs survive a Format/Parse round trip.
func FuzzParseString(f *testing.F) {
	f.Add(sampleDSL)
	f.Add("system x {\n role: monitoring\n}\n")
	f.Add("hardware \"a b\" {\n kind: nic\n}\n")
	f.Add("rule r: ctx:a -> ctx:b\n")
	f.Add("order d {\n a > b\n}\n")
	f.Add("system {\n")
	f.Add("}")
	f.Fuzz(func(t *testing.T, src string) {
		k, err := ParseString(src)
		if err != nil {
			return
		}
		k2, err := ParseString(Format(k))
		if err != nil {
			t.Fatalf("accepted input failed round trip: %v", err)
		}
		if k.ComputeStats() != k2.ComputeStats() {
			t.Fatalf("round trip changed stats")
		}
	})
}

func TestFuzzSeedsAreInteresting(t *testing.T) {
	// The seed corpus must include both accepting and rejecting inputs so
	// the fuzz targets exercise both paths even without -fuzz.
	accept, reject := 0, 0
	for _, seed := range []string{"ctx:a", "-> ->", "true & false", "(((("} {
		if _, err := ParseExpr(seed); err == nil {
			accept++
		} else {
			reject++
		}
	}
	if accept == 0 || reject == 0 {
		t.Error("seed corpus must cover both outcomes")
	}
	if !strings.Contains(sampleDSL, "system simon") {
		t.Error("sample must include simon")
	}
}

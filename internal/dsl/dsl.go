// Package dsl implements a textual encoding language for the knowledge
// base, in the spirit of the paper's Listings 2–3: system, hardware, and
// workload blocks, free-form rules in predicate logic, and partial-order
// blocks with guarded edges. The format is the crowd-sourcing surface the
// paper envisions (§3.3): experts write their system's block, the parser
// validates it, and Merge composes contributions.
//
// Grammar sketch (line-oriented; '#' starts a comment):
//
//	system <name> {
//	    role: monitoring
//	    solves: capture_delays, detect_queue_length
//	    requires nic: NIC_TIMESTAMPS
//	    requires system: linux
//	    requires any-of: sonata | marple
//	    conflicts: cubic
//	    context: !deadline_tight, app_modifiable
//	    useful-when: wan_dc_mix
//	    resource cores: 2
//	    cores-per-kflows: 2
//	    app-modification: true
//	    maturity: research
//	    note <key>: "text"
//	}
//
//	hardware "Cisco Catalyst 9500-40X" {
//	    kind: switch
//	    vendor: Cisco
//	    caps: ECN, PFC
//	    quant ports: 40
//	    cost: 12000
//	    attr "Port Bandwidth": "10 Gbps"
//	}
//
//	workload inference_app {
//	    properties: dc_flows, short_flows
//	    deployed-at: rack0, rack1
//	    peak-cores: 2800
//	    peak-memory-gb: 16000
//	    peak-bandwidth-gbps: 30
//	    kflows: 50
//	    needs: congestion_control
//	}
//
//	rule pfc_no_flooding: ctx:pfc_enabled -> !ctx:flooding_enabled  "note"
//
//	order monitoring {
//	    simon > pingmesh  "accuracy"
//	    snap = linux when ctx:tcp_enabled & !ctx:pony_enabled  "on par"
//	}
//
// Rule and guard expressions use atoms (namespace:name), !, &, |, ->,
// <->, and parentheses, with the usual precedence (! binds tightest,
// <-> loosest).
package dsl

import (
	"fmt"
	"strings"
)

// ParseError reports a syntax or semantic error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dsl: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// line is one logical source line with its number.
type line struct {
	num  int
	text string
}

// splitLines strips comments and blank lines. A '#' outside quotes starts
// a comment.
func splitLines(src string) []line {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		out = append(out, line{num: i + 1, text: text})
	}
	return out
}

func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return s[:i]
			}
		}
	}
	return s
}

// splitKV splits "key: value" at the first ':' that is outside quotes.
// Atom colons only appear on the value side, so the first colon wins for
// field lines; callers that need different behaviour (rule lines) handle
// it themselves.
func splitKV(s string) (key, value string, ok bool) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ':':
			if !inQuote {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

// commaList splits a comma-separated list, trimming items and dropping
// empties.
func commaList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// unquote removes surrounding double quotes if present.
func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// name parses a block header name: either a bare word or a quoted string.
func headerName(s string) (string, string) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, `"`) {
		if end := strings.Index(s[1:], `"`); end >= 0 {
			return s[1 : end+1], strings.TrimSpace(s[end+2:])
		}
		return s, ""
	}
	if i := strings.IndexAny(s, " \t{"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i:])
	}
	return s, ""
}

// trailingQuote extracts an optional trailing quoted note from a line,
// returning the rest and the note.
func trailingQuote(s string) (rest, note string) {
	s = strings.TrimSpace(s)
	if !strings.HasSuffix(s, `"`) {
		return s, ""
	}
	// find matching opening quote
	for i := len(s) - 2; i >= 0; i-- {
		if s[i] == '"' {
			return strings.TrimSpace(s[:i]), s[i+1 : len(s)-1]
		}
	}
	return s, ""
}

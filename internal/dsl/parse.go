package dsl

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"netarch/internal/kb"
)

// Parse reads a knowledge base in the DSL format and validates it.
func Parse(r io.Reader) (*kb.KB, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dsl: reading: %w", err)
	}
	k, err := ParseString(string(src))
	if err != nil {
		return nil, err
	}
	return k, nil
}

// ParseString parses DSL source text into a validated knowledge base.
func ParseString(src string) (*kb.KB, error) {
	p := &parser{lines: splitLines(src), kb: &kb.KB{}}
	if err := p.run(); err != nil {
		return nil, err
	}
	if err := p.kb.Validate(); err != nil {
		return nil, err
	}
	return p.kb, nil
}

type parser struct {
	lines []line
	pos   int
	kb    *kb.KB
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) cur() line { return p.lines[p.pos] }

func (p *parser) run() error {
	for !p.eof() {
		l := p.cur()
		switch {
		case strings.HasPrefix(l.text, "system "):
			if err := p.parseSystem(); err != nil {
				return err
			}
		case strings.HasPrefix(l.text, "hardware "):
			if err := p.parseHardware(); err != nil {
				return err
			}
		case strings.HasPrefix(l.text, "workload "):
			if err := p.parseWorkload(); err != nil {
				return err
			}
		case strings.HasPrefix(l.text, "rule "):
			if err := p.parseRule(); err != nil {
				return err
			}
		case strings.HasPrefix(l.text, "order "):
			if err := p.parseOrder(); err != nil {
				return err
			}
		default:
			return errf(l.num, "expected a top-level block (system/hardware/workload/rule/order), got %q", l.text)
		}
	}
	return nil
}

// blockLines consumes a "<kw> <name> {" header and returns the name plus
// the body lines up to the matching "}".
func (p *parser) blockLines(keyword string) (string, []line, error) {
	header := p.cur()
	rest := strings.TrimPrefix(header.text, keyword+" ")
	name, tail := headerName(rest)
	if name == "" {
		return "", nil, errf(header.num, "%s block needs a name", keyword)
	}
	if strings.TrimSpace(tail) != "{" {
		return "", nil, errf(header.num, "%s %s: expected '{' at end of header", keyword, name)
	}
	p.pos++
	var body []line
	for !p.eof() {
		l := p.cur()
		if l.text == "}" {
			p.pos++
			return name, body, nil
		}
		body = append(body, l)
		p.pos++
	}
	return "", nil, errf(header.num, "%s %s: missing closing '}'", keyword, name)
}

func (p *parser) parseSystem() error {
	name, body, err := p.blockLines("system")
	if err != nil {
		return err
	}
	s := kb.System{Name: name}
	for _, l := range body {
		key, value, ok := splitKV(l.text)
		if !ok {
			return errf(l.num, "system %s: expected 'key: value', got %q", name, l.text)
		}
		switch {
		case key == "role":
			s.Role = kb.Role(value)
		case key == "solves":
			for _, v := range commaList(value) {
				s.Solves = append(s.Solves, kb.Property(v))
			}
		case key == "requires system":
			s.RequiresSystems = append(s.RequiresSystems, commaList(value)...)
		case key == "requires any-of":
			var group []string
			for _, v := range strings.Split(value, "|") {
				if v = strings.TrimSpace(v); v != "" {
					group = append(group, v)
				}
			}
			if len(group) == 0 {
				return errf(l.num, "system %s: empty any-of group", name)
			}
			s.RequiresAnyOf = append(s.RequiresAnyOf, group)
		case strings.HasPrefix(key, "requires "):
			kind := kb.HardwareKind(strings.TrimPrefix(key, "requires "))
			if s.RequiresCaps == nil {
				s.RequiresCaps = map[kb.HardwareKind][]kb.Capability{}
			}
			for _, v := range commaList(value) {
				s.RequiresCaps[kind] = append(s.RequiresCaps[kind], kb.Capability(v))
			}
		case key == "conflicts":
			s.ConflictsWith = append(s.ConflictsWith, commaList(value)...)
		case key == "context":
			conds, err := parseConditions(value)
			if err != nil {
				return errf(l.num, "system %s: %v", name, err)
			}
			s.RequiresContext = append(s.RequiresContext, conds...)
		case key == "useful-when":
			conds, err := parseConditions(value)
			if err != nil {
				return errf(l.num, "system %s: %v", name, err)
			}
			s.UsefulOnlyWhen = append(s.UsefulOnlyWhen, conds...)
		case strings.HasPrefix(key, "resource "):
			res := kb.Resource(strings.TrimPrefix(key, "resource "))
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return errf(l.num, "system %s: resource %s: bad number %q", name, res, value)
			}
			if s.Resources == nil {
				s.Resources = map[kb.Resource]int64{}
			}
			s.Resources[res] = n
		case key == "cores-per-kflows":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return errf(l.num, "system %s: bad cores-per-kflows %q", name, value)
			}
			s.CoresPerKFlows = n
		case key == "app-modification":
			s.AppModification = value == "true"
		case key == "maturity":
			s.Maturity = value
		case strings.HasPrefix(key, "note "):
			if s.Notes == nil {
				s.Notes = map[string]string{}
			}
			s.Notes[strings.TrimPrefix(key, "note ")] = unquote(value)
		default:
			return errf(l.num, "system %s: unknown field %q", name, key)
		}
	}
	p.kb.Systems = append(p.kb.Systems, s)
	return nil
}

// parseConditions parses "atom, !atom, ..." into conditions.
func parseConditions(value string) ([]kb.Condition, error) {
	var out []kb.Condition
	for _, v := range commaList(value) {
		c := kb.Condition{Atom: v, Value: true}
		if strings.HasPrefix(v, "!") {
			c = kb.Condition{Atom: strings.TrimPrefix(v, "!"), Value: false}
		}
		if c.Atom == "" {
			return nil, fmt.Errorf("empty condition atom in %q", value)
		}
		out = append(out, c)
	}
	return out, nil
}

func (p *parser) parseHardware() error {
	name, body, err := p.blockLines("hardware")
	if err != nil {
		return err
	}
	h := kb.Hardware{Name: name}
	for _, l := range body {
		key, value, ok := splitKV(l.text)
		if !ok {
			return errf(l.num, "hardware %s: expected 'key: value', got %q", name, l.text)
		}
		switch {
		case key == "kind":
			h.Kind = kb.HardwareKind(value)
		case key == "vendor":
			h.Vendor = value
		case key == "caps":
			for _, v := range commaList(value) {
				h.Caps = append(h.Caps, kb.Capability(v))
			}
		case strings.HasPrefix(key, "quant "):
			res := kb.Resource(strings.TrimPrefix(key, "quant "))
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return errf(l.num, "hardware %s: quant %s: bad number %q", name, res, value)
			}
			if h.Quant == nil {
				h.Quant = map[kb.Resource]int64{}
			}
			h.Quant[res] = n
		case key == "cost":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return errf(l.num, "hardware %s: bad cost %q", name, value)
			}
			h.CostUSD = n
		case strings.HasPrefix(key, "attr "):
			if h.Attrs == nil {
				h.Attrs = map[string]string{}
			}
			h.Attrs[unquote(strings.TrimPrefix(key, "attr "))] = unquote(value)
		default:
			return errf(l.num, "hardware %s: unknown field %q", name, key)
		}
	}
	p.kb.Hardware = append(p.kb.Hardware, h)
	return nil
}

func (p *parser) parseWorkload() error {
	name, body, err := p.blockLines("workload")
	if err != nil {
		return err
	}
	w := kb.Workload{Name: name}
	for _, l := range body {
		key, value, ok := splitKV(l.text)
		if !ok {
			return errf(l.num, "workload %s: expected 'key: value', got %q", name, l.text)
		}
		num := func() (int64, error) {
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return 0, errf(l.num, "workload %s: %s: bad number %q", name, key, value)
			}
			return n, nil
		}
		var n int64
		switch key {
		case "properties":
			w.Properties = append(w.Properties, commaList(value)...)
		case "deployed-at":
			w.DeployedAt = append(w.DeployedAt, commaList(value)...)
		case "needs":
			for _, v := range commaList(value) {
				w.Needs = append(w.Needs, kb.Property(v))
			}
		case "peak-cores":
			if n, err = num(); err != nil {
				return err
			}
			w.PeakCores = n
		case "peak-memory-gb":
			if n, err = num(); err != nil {
				return err
			}
			w.PeakMemoryGB = n
		case "peak-bandwidth-gbps":
			if n, err = num(); err != nil {
				return err
			}
			w.PeakBandwidthGbps = n
		case "kflows":
			if n, err = num(); err != nil {
				return err
			}
			w.KFlows = n
		default:
			return errf(l.num, "workload %s: unknown field %q", name, key)
		}
	}
	p.kb.Workloads = append(p.kb.Workloads, w)
	return nil
}

// parseRule parses `rule <name>: <expr> ["note"]` on one line.
func (p *parser) parseRule() error {
	l := p.cur()
	p.pos++
	rest := strings.TrimPrefix(l.text, "rule ")
	name, exprText, ok := splitKV(rest)
	if !ok || name == "" {
		return errf(l.num, "rule: expected 'rule <name>: <expr>', got %q", l.text)
	}
	exprText, note := trailingQuote(exprText)
	e, err := ParseExpr(exprText)
	if err != nil {
		return errf(l.num, "rule %s: %v", name, err)
	}
	p.kb.Rules = append(p.kb.Rules, kb.Rule{Name: name, Expr: e, Note: note})
	return nil
}

// parseOrder parses an order block of edge lines:
//
//	a > b [when <expr>] ["note"]
//	a = b [when <expr>] ["note"]
func (p *parser) parseOrder() error {
	dim, body, err := p.blockLines("order")
	if err != nil {
		return err
	}
	spec := kb.OrderSpec{Dimension: dim}
	for _, l := range body {
		text, note := trailingQuote(l.text)
		var guard *kb.Expr
		if i := strings.Index(text, " when "); i >= 0 {
			g, err := ParseExpr(strings.TrimSpace(text[i+6:]))
			if err != nil {
				return errf(l.num, "order %s: guard: %v", dim, err)
			}
			guard = &g
			text = strings.TrimSpace(text[:i])
		}
		var op string
		switch {
		case strings.Contains(text, ">"):
			op = ">"
		case strings.Contains(text, "="):
			op = "="
		default:
			return errf(l.num, "order %s: expected 'a > b' or 'a = b', got %q", dim, l.text)
		}
		parts := strings.SplitN(text, op, 2)
		a := strings.TrimSpace(parts[0])
		b := strings.TrimSpace(parts[1])
		if a == "" || b == "" {
			return errf(l.num, "order %s: malformed edge %q", dim, l.text)
		}
		if op == ">" {
			spec.Edges = append(spec.Edges, kb.OrderEdge{Better: a, Worse: b, Guard: guard, Note: note})
		} else {
			spec.Equals = append(spec.Equals, kb.OrderEq{A: a, B: b, Guard: guard, Note: note})
		}
	}
	p.kb.Orders = append(p.kb.Orders, spec)
	return nil
}

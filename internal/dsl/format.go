package dsl

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/kb"
)

// Format renders a knowledge base in the DSL syntax. Format and
// Parse round-trip: ParseString(Format(k)) yields an equivalent KB.
func Format(k *kb.KB) string {
	var b strings.Builder
	for i := range k.Systems {
		formatSystem(&b, &k.Systems[i])
	}
	for i := range k.Hardware {
		formatHardware(&b, &k.Hardware[i])
	}
	for i := range k.Workloads {
		formatWorkload(&b, &k.Workloads[i])
	}
	for _, r := range k.Rules {
		fmt.Fprintf(&b, "rule %s: %s", r.Name, FormatExpr(r.Expr))
		if r.Note != "" {
			fmt.Fprintf(&b, "  %q", r.Note)
		}
		b.WriteString("\n")
	}
	if len(k.Rules) > 0 {
		b.WriteString("\n")
	}
	for i := range k.Orders {
		formatOrder(&b, &k.Orders[i])
	}
	return b.String()
}

func blockName(name string) string {
	if strings.ContainsAny(name, " \t{}:") {
		return fmt.Sprintf("%q", name)
	}
	return name
}

func formatSystem(b *strings.Builder, s *kb.System) {
	fmt.Fprintf(b, "system %s {\n", blockName(s.Name))
	fmt.Fprintf(b, "    role: %s\n", s.Role)
	if len(s.Solves) > 0 {
		fmt.Fprintf(b, "    solves: %s\n", joinProps(s.Solves))
	}
	kinds := make([]string, 0, len(s.RequiresCaps))
	for kind := range s.RequiresCaps {
		kinds = append(kinds, string(kind))
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		caps := make([]string, len(s.RequiresCaps[kb.HardwareKind(kind)]))
		for i, c := range s.RequiresCaps[kb.HardwareKind(kind)] {
			caps[i] = string(c)
		}
		fmt.Fprintf(b, "    requires %s: %s\n", kind, strings.Join(caps, ", "))
	}
	if len(s.RequiresSystems) > 0 {
		fmt.Fprintf(b, "    requires system: %s\n", strings.Join(s.RequiresSystems, ", "))
	}
	for _, group := range s.RequiresAnyOf {
		fmt.Fprintf(b, "    requires any-of: %s\n", strings.Join(group, " | "))
	}
	if len(s.ConflictsWith) > 0 {
		fmt.Fprintf(b, "    conflicts: %s\n", strings.Join(s.ConflictsWith, ", "))
	}
	if len(s.RequiresContext) > 0 {
		fmt.Fprintf(b, "    context: %s\n", joinConditions(s.RequiresContext))
	}
	if len(s.UsefulOnlyWhen) > 0 {
		fmt.Fprintf(b, "    useful-when: %s\n", joinConditions(s.UsefulOnlyWhen))
	}
	for _, res := range sortedResources(s.Resources) {
		fmt.Fprintf(b, "    resource %s: %d\n", res, s.Resources[res])
	}
	if s.CoresPerKFlows != 0 {
		fmt.Fprintf(b, "    cores-per-kflows: %d\n", s.CoresPerKFlows)
	}
	if s.AppModification {
		fmt.Fprintf(b, "    app-modification: true\n")
	}
	if s.Maturity != "" {
		fmt.Fprintf(b, "    maturity: %s\n", s.Maturity)
	}
	for _, key := range sortedKeys(s.Notes) {
		fmt.Fprintf(b, "    note %s: %q\n", key, s.Notes[key])
	}
	b.WriteString("}\n\n")
}

func formatHardware(b *strings.Builder, h *kb.Hardware) {
	fmt.Fprintf(b, "hardware %s {\n", blockName(h.Name))
	fmt.Fprintf(b, "    kind: %s\n", h.Kind)
	if h.Vendor != "" {
		fmt.Fprintf(b, "    vendor: %s\n", h.Vendor)
	}
	if len(h.Caps) > 0 {
		caps := make([]string, len(h.Caps))
		for i, c := range h.Caps {
			caps[i] = string(c)
		}
		fmt.Fprintf(b, "    caps: %s\n", strings.Join(caps, ", "))
	}
	for _, res := range sortedResources(h.Quant) {
		fmt.Fprintf(b, "    quant %s: %d\n", res, h.Quant[res])
	}
	if h.CostUSD != 0 {
		fmt.Fprintf(b, "    cost: %d\n", h.CostUSD)
	}
	for _, key := range sortedKeys(h.Attrs) {
		fmt.Fprintf(b, "    attr %q: %q\n", key, h.Attrs[key])
	}
	b.WriteString("}\n\n")
}

func formatWorkload(b *strings.Builder, w *kb.Workload) {
	fmt.Fprintf(b, "workload %s {\n", blockName(w.Name))
	if len(w.Properties) > 0 {
		fmt.Fprintf(b, "    properties: %s\n", strings.Join(w.Properties, ", "))
	}
	if len(w.DeployedAt) > 0 {
		fmt.Fprintf(b, "    deployed-at: %s\n", strings.Join(w.DeployedAt, ", "))
	}
	if w.PeakCores != 0 {
		fmt.Fprintf(b, "    peak-cores: %d\n", w.PeakCores)
	}
	if w.PeakMemoryGB != 0 {
		fmt.Fprintf(b, "    peak-memory-gb: %d\n", w.PeakMemoryGB)
	}
	if w.PeakBandwidthGbps != 0 {
		fmt.Fprintf(b, "    peak-bandwidth-gbps: %d\n", w.PeakBandwidthGbps)
	}
	if w.KFlows != 0 {
		fmt.Fprintf(b, "    kflows: %d\n", w.KFlows)
	}
	if len(w.Needs) > 0 {
		fmt.Fprintf(b, "    needs: %s\n", joinProps(w.Needs))
	}
	b.WriteString("}\n\n")
}

func formatOrder(b *strings.Builder, spec *kb.OrderSpec) {
	fmt.Fprintf(b, "order %s {\n", blockName(spec.Dimension))
	writeEdge := func(a, op, c string, guard *kb.Expr, note string) {
		fmt.Fprintf(b, "    %s %s %s", a, op, c)
		if guard != nil {
			fmt.Fprintf(b, " when %s", FormatExpr(*guard))
		}
		if note != "" {
			fmt.Fprintf(b, "  %q", note)
		}
		b.WriteString("\n")
	}
	for _, e := range spec.Edges {
		writeEdge(e.Better, ">", e.Worse, e.Guard, e.Note)
	}
	for _, e := range spec.Equals {
		writeEdge(e.A, "=", e.B, e.Guard, e.Note)
	}
	b.WriteString("}\n\n")
}

func joinProps(ps []kb.Property) string {
	ss := make([]string, len(ps))
	for i, p := range ps {
		ss[i] = string(p)
	}
	return strings.Join(ss, ", ")
}

func joinConditions(cs []kb.Condition) string {
	ss := make([]string, len(cs))
	for i, c := range cs {
		if c.Value {
			ss[i] = c.Atom
		} else {
			ss[i] = "!" + c.Atom
		}
	}
	return strings.Join(ss, ", ")
}

func sortedResources(m map[kb.Resource]int64) []kb.Resource {
	out := make([]kb.Resource, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package dsl

import (
	"fmt"
	"strings"

	"netarch/internal/kb"
)

// ParseExpr parses a rule/guard expression over namespaced atoms with
// operators (tightest to loosest): ! & | -> <->, plus parentheses and the
// constants true/false. The implication arrow is right-associative.
func ParseExpr(s string) (kb.Expr, error) {
	p := &exprParser{toks: tokenizeExpr(s)}
	e, err := p.parseIff()
	if err != nil {
		return kb.Expr{}, err
	}
	if !p.eof() {
		return kb.Expr{}, fmt.Errorf("unexpected trailing %q", p.peek())
	}
	return e, nil
}

// tokenizeExpr splits an expression into tokens.
func tokenizeExpr(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')' || c == '!' || c == '&' || c == '|':
			toks = append(toks, string(c))
			i++
		case strings.HasPrefix(s[i:], "<->"):
			toks = append(toks, "<->")
			i += 3
		case strings.HasPrefix(s[i:], "->"):
			toks = append(toks, "->")
			i += 2
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t()!&|<>-", rune(s[j])) {
				j++
			}
			// Allow '-' inside atoms (system names like "rdma-roce")
			// unless it begins an arrow.
			for j < len(s) && s[j] == '-' && !strings.HasPrefix(s[j:], "->") {
				j++
				for j < len(s) && !strings.ContainsRune(" \t()!&|<>-", rune(s[j])) {
					j++
				}
			}
			if j == i {
				// Unrecognized single character: emit as its own token
				// so the parser reports it.
				j = i + 1
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type exprParser struct {
	toks []string
	pos  int
}

func (p *exprParser) eof() bool { return p.pos >= len(p.toks) }

func (p *exprParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *exprParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *exprParser) expect(tok string) error {
	if p.peek() != tok {
		return fmt.Errorf("expected %q, got %q", tok, p.peek())
	}
	p.pos++
	return nil
}

// parseIff: or ( "<->" or )*  — left-assoc chains are fine for iff.
func (p *exprParser) parseIff() (kb.Expr, error) {
	left, err := p.parseImplies()
	if err != nil {
		return kb.Expr{}, err
	}
	for p.peek() == "<->" {
		p.next()
		right, err := p.parseImplies()
		if err != nil {
			return kb.Expr{}, err
		}
		left = kb.Iff(left, right)
	}
	return left, nil
}

// parseImplies: or ( "->" implies )?  — right-associative.
func (p *exprParser) parseImplies() (kb.Expr, error) {
	left, err := p.parseOr()
	if err != nil {
		return kb.Expr{}, err
	}
	if p.peek() == "->" {
		p.next()
		right, err := p.parseImplies()
		if err != nil {
			return kb.Expr{}, err
		}
		return kb.Implies(left, right), nil
	}
	return left, nil
}

func (p *exprParser) parseOr() (kb.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return kb.Expr{}, err
	}
	args := []kb.Expr{left}
	for p.peek() == "|" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return kb.Expr{}, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return kb.Or(args...), nil
}

func (p *exprParser) parseAnd() (kb.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return kb.Expr{}, err
	}
	args := []kb.Expr{left}
	for p.peek() == "&" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return kb.Expr{}, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return kb.And(args...), nil
}

func (p *exprParser) parseUnary() (kb.Expr, error) {
	switch tok := p.peek(); tok {
	case "!":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return kb.Expr{}, err
		}
		return kb.Not(inner), nil
	case "(":
		p.next()
		inner, err := p.parseIff()
		if err != nil {
			return kb.Expr{}, err
		}
		if err := p.expect(")"); err != nil {
			return kb.Expr{}, err
		}
		return inner, nil
	case "true":
		p.next()
		return kb.TrueExpr(), nil
	case "false":
		p.next()
		return kb.FalseExpr(), nil
	case "", ")", "&", "|", "->", "<->":
		return kb.Expr{}, fmt.Errorf("expected atom, got %q", tok)
	default:
		p.next()
		return kb.Atom(tok), nil
	}
}

// FormatExpr renders an expression in the DSL's syntax (inverse of
// ParseExpr up to parenthesization).
func FormatExpr(e kb.Expr) string {
	return formatExpr(e, 0)
}

// precedence levels: 4 atom/not, 3 and, 2 or, 1 implies, 0 iff.
func exprPrec(e kb.Expr) int {
	switch e.Op {
	case "and":
		return 3
	case "or":
		return 2
	case "implies":
		return 1
	case "iff":
		return 0
	default:
		return 4
	}
}

// formatExpr renders e, parenthesizing when its precedence is below
// minPrec. And/or chains are associative; implies is right-associative;
// iff is rendered left-associatively (matching the parser).
func formatExpr(e kb.Expr, minPrec int) string {
	prec := exprPrec(e)
	var s string
	switch e.Op {
	case "atom":
		s = e.Atom
	case "true":
		s = "true"
	case "false":
		s = "false"
	case "not":
		s = "!" + formatExpr(e.Args[0], 4)
	case "and", "or":
		op := " & "
		if e.Op == "or" {
			op = " | "
		}
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = formatExpr(a, prec)
		}
		s = strings.Join(parts, op)
	case "implies":
		s = formatExpr(e.Args[0], prec+1) + " -> " + formatExpr(e.Args[1], prec)
	case "iff":
		s = formatExpr(e.Args[0], prec) + " <-> " + formatExpr(e.Args[1], prec+1)
	default:
		s = "<bad>"
	}
	if prec < minPrec {
		return "(" + s + ")"
	}
	return s
}

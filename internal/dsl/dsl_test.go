package dsl

import (
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
	"netarch/internal/logic"
)

const sampleDSL = `
# The SIMON encoding, Listing 2 of the paper, in DSL form.
system simon {
    role: monitoring
    solves: capture_delays, detect_queue_length
    requires nic: NIC_TIMESTAMPS
    cores-per-kflows: 2
    maturity: research
    note smartnic: "requires SmartNICs (2.3)"
}

system pingmesh {
    role: monitoring
    solves: capture_delays
    resource cores: 1
    maturity: production
}

system shenango {
    role: network_stack
    solves: low_latency_stack
    requires nic: INTERRUPT_POLLING, DPDK
    context: !deadline_tight
    resource cores: 1
    maturity: research
}

system cubic {
    role: congestion_control
    solves: congestion_control
    conflicts: annulus
}

system annulus {
    role: congestion_control
    solves: congestion_control
    requires switch: QCN
    useful-when: wan_dc_mix
    requires any-of: simon | pingmesh
}

hardware "Cisco Catalyst 9500-40X" {
    kind: switch
    vendor: Cisco
    caps: ECN
    quant ports: 40
    quant power_w: 950
    cost: 12000
    attr "Port Bandwidth": "10 Gbps"
}

hardware nic-ts {
    kind: nic
    caps: NIC_TIMESTAMPS, INTERRUPT_POLLING, DPDK
    quant bandwidth_gbps: 100
}

workload inference_app {
    properties: dc_flows, short_flows, high_priority
    deployed-at: rack0, rack1, rack2
    peak-cores: 2800
    peak-memory-gb: 900
    peak-bandwidth-gbps: 30
    kflows: 50
    needs: congestion_control
}

rule pfc_no_flooding: ctx:pfc_enabled -> !ctx:flooding_enabled  "Guo SIGCOMM'16"

order monitoring {
    simon > pingmesh  "accuracy"
}

order deployment_ease {
    pingmesh > simon when !ctx:smartnics_everywhere  "no SmartNIC needed"
    simon = pingmesh when ctx:smartnics_everywhere
}
`

func TestParseSample(t *testing.T) {
	k, err := ParseString(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	simon := k.SystemByName("simon")
	if simon == nil {
		t.Fatal("simon missing")
	}
	if simon.Role != kb.RoleMonitoring || !simon.SolvesProp("capture_delays") ||
		simon.CoresPerKFlows != 2 || simon.Maturity != "research" {
		t.Errorf("simon fields wrong: %+v", simon)
	}
	if simon.Notes["smartnic"] != "requires SmartNICs (2.3)" {
		t.Errorf("simon note wrong: %q", simon.Notes["smartnic"])
	}
	sh := k.SystemByName("shenango")
	if len(sh.RequiresCaps[kb.KindNIC]) != 2 {
		t.Errorf("shenango caps wrong: %v", sh.RequiresCaps)
	}
	if len(sh.RequiresContext) != 1 || sh.RequiresContext[0] != (kb.Condition{Atom: "deadline_tight", Value: false}) {
		t.Errorf("shenango context wrong: %v", sh.RequiresContext)
	}
	ann := k.SystemByName("annulus")
	if len(ann.UsefulOnlyWhen) != 1 || ann.UsefulOnlyWhen[0].Atom != "wan_dc_mix" {
		t.Errorf("annulus useful-when wrong: %v", ann.UsefulOnlyWhen)
	}
	if len(ann.RequiresAnyOf) != 1 || len(ann.RequiresAnyOf[0]) != 2 {
		t.Errorf("annulus any-of wrong: %v", ann.RequiresAnyOf)
	}
	cisco := k.HardwareByName("Cisco Catalyst 9500-40X")
	if cisco == nil || cisco.Kind != kb.KindSwitch || cisco.Q("ports") != 40 ||
		cisco.CostUSD != 12000 || cisco.Attrs["Port Bandwidth"] != "10 Gbps" {
		t.Errorf("cisco wrong: %+v", cisco)
	}
	w := k.WorkloadByName("inference_app")
	if w == nil || w.PeakCores != 2800 || len(w.Properties) != 3 || w.KFlows != 50 {
		t.Errorf("workload wrong: %+v", w)
	}
	if len(k.Rules) != 1 || k.Rules[0].Note != "Guo SIGCOMM'16" {
		t.Errorf("rule wrong: %+v", k.Rules)
	}
	if len(k.Orders) != 2 {
		t.Fatalf("orders wrong: %+v", k.Orders)
	}
	ease := k.OrderByDimension("deployment_ease")
	if len(ease.Edges) != 1 || ease.Edges[0].Guard == nil {
		t.Errorf("guarded edge wrong: %+v", ease.Edges)
	}
	if len(ease.Equals) != 1 || ease.Equals[0].Guard == nil {
		t.Errorf("guarded equal wrong: %+v", ease.Equals)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"garbage top", "bogus line\n", "expected a top-level block"},
		{"missing brace", "system x\nrole: monitoring\n", "expected '{'"},
		{"unclosed block", "system x {\n role: monitoring\n", "missing closing"},
		{"unknown field", "system x {\n role: monitoring\n frobnicate: 1\n}\n", "unknown field"},
		{"bad number", "system x {\n role: monitoring\n resource cores: many\n}\n", "bad number"},
		{"bad rule expr", "rule r: ctx:a -> (\n", "expected atom"},
		{"bad order line", "order d {\n just words\n}\n", "expected 'a > b'"},
		{"empty anyof", "system x {\n role: monitoring\n requires any-of: \n}\n", "empty any-of"},
		{"kv missing", "system x {\n no colon here\n}\n", "expected 'key: value'"},
		{"invalid kb", "system x {\n role: nonsense\n}\n", "unknown role"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("system x {\n role: monitoring\n frobnicate: 1\n}\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("want line 3 in error, got %v", err)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := `
# full-line comment
system x {        # trailing comment
    role: monitoring
    note why: "contains # not a comment"
}
`
	k, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Systems[0].Notes["why"] != "contains # not a comment" {
		t.Errorf("quoted # mishandled: %q", k.Systems[0].Notes["why"])
	}
}

func TestExprParsePrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want string // kb.Expr.String() rendering
	}{
		{"ctx:a", "ctx:a"},
		{"!ctx:a", "!(ctx:a)"},
		{"ctx:a & ctx:b | ctx:c", "((ctx:a & ctx:b) | ctx:c)"},
		{"ctx:a | ctx:b & ctx:c", "(ctx:a | (ctx:b & ctx:c))"},
		{"ctx:a -> ctx:b -> ctx:c", "(ctx:a -> (ctx:b -> ctx:c))"},
		{"(ctx:a | ctx:b) & ctx:c", "((ctx:a | ctx:b) & ctx:c)"},
		{"ctx:a <-> ctx:b", "(ctx:a <-> ctx:b)"},
		{"!(ctx:a & ctx:b)", "!((ctx:a & ctx:b))"},
		{"true -> false", "(true -> false)"},
		{"system:rdma-roce -> ctx:pfc_enabled", "(system:rdma-roce -> ctx:pfc_enabled)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "&", "ctx:a &", "ctx:a ctx:b", "(ctx:a", "ctx:a)", "-> ctx:a", "! & ctx:a",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

// exprSemanticsEqual compares two expressions by compiling both to logic
// over a shared vocabulary and brute-forcing all assignments.
func exprSemanticsEqual(t *testing.T, a, b kb.Expr) bool {
	t.Helper()
	vo := logic.NewVocabulary()
	fa, err := a.Compile(vo.Get)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Compile(vo.Get)
	if err != nil {
		t.Fatal(err)
	}
	vars := logic.And(fa, fb).VarSet()
	if len(vars) > 16 {
		t.Fatal("too many vars for brute force")
	}
	assign := map[logic.Var]bool{}
	for mask := 0; mask < 1<<len(vars); mask++ {
		for i, v := range vars {
			assign[v] = mask&(1<<i) != 0
		}
		if fa.Eval(assign) != fb.Eval(assign) {
			return false
		}
	}
	return true
}

func TestExprFormatRoundTrip(t *testing.T) {
	exprs := []string{
		"ctx:a -> !ctx:b",
		"(ctx:a | ctx:b) & !(ctx:c & ctx:d)",
		"ctx:a <-> ctx:b -> ctx:c",
		"!(ctx:a) | ctx:b & ctx:c",
		"system:x & (ctx:y -> prop:z)",
	}
	for _, src := range exprs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		e2, err := ParseExpr(FormatExpr(e1))
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", FormatExpr(e1), src, err)
		}
		if !exprSemanticsEqual(t, e1, e2) {
			t.Errorf("%q: format/parse changed semantics: %q", src, FormatExpr(e1))
		}
	}
}

func TestFormatParseRoundTripSample(t *testing.T) {
	k1, err := ParseString(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(k1)
	k2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n---\n%s", err, text)
	}
	s1, s2 := k1.ComputeStats(), k2.ComputeStats()
	if s1 != s2 {
		t.Errorf("round trip changed stats: %+v vs %+v", s1, s2)
	}
	if k2.SystemByName("simon").Notes["smartnic"] != "requires SmartNICs (2.3)" {
		t.Error("round trip lost notes")
	}
}

func TestFullCatalogRoundTrip(t *testing.T) {
	// The entire seed compendium must survive DSL format -> parse.
	k1 := catalog.Default()
	text := Format(k1)
	k2, err := ParseString(text)
	if err != nil {
		t.Fatalf("catalog DSL reparse failed: %v", err)
	}
	s1, s2 := k1.ComputeStats(), k2.ComputeStats()
	if s1 != s2 {
		t.Errorf("catalog round trip changed stats: %+v vs %+v", s1, s2)
	}
	// Spot-check a guarded order edge survived with semantics intact.
	tp1 := k1.OrderByDimension("throughput")
	tp2 := k2.OrderByDimension("throughput")
	if len(tp1.Edges) != len(tp2.Edges) || len(tp1.Equals) != len(tp2.Equals) {
		t.Fatal("throughput order lost edges")
	}
	for i := range tp1.Edges {
		g1, g2 := tp1.Edges[i].Guard, tp2.Edges[i].Guard
		if (g1 == nil) != (g2 == nil) {
			t.Fatalf("edge %d guard presence changed", i)
		}
		if g1 != nil && !exprSemanticsEqual(t, *g1, *g2) {
			t.Errorf("edge %d guard semantics changed: %s vs %s", i, g1, g2)
		}
	}
	// And the rules.
	if len(k1.Rules) != len(k2.Rules) {
		t.Fatal("rules lost")
	}
	for i := range k1.Rules {
		if !exprSemanticsEqual(t, k1.Rules[i].Expr, k2.Rules[i].Expr) {
			t.Errorf("rule %s semantics changed", k1.Rules[i].Name)
		}
	}
}

func TestParsedKBDrivesEngine(t *testing.T) {
	// A DSL-authored KB must work end to end (the crowd-sourcing flow).
	k, err := ParseString(sampleDSL)
	if err != nil {
		t.Fatal(err)
	}
	// kb validity is checked in ParseString; compile an order.
	r, err := k.OrderByDimension("deployment_ease").Resolve(map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Better("pingmesh", "simon") {
		t.Error("guarded edge must be active when atom is false")
	}
	r2, err := k.OrderByDimension("deployment_ease").Resolve(map[string]bool{"smartnics_everywhere": true})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Equal("pingmesh", "simon") {
		t.Error("guarded equal must merge when atom is true")
	}
}

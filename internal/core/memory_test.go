package core

import (
	"strings"
	"testing"

	"netarch/internal/kb"
)

// memoryKB builds a KB with two server SKUs where only CXL pooling can
// make the smaller one viable for a memory-heavy workload.
func memoryKB(memGB int64) *kb.KB {
	k := miniKB()
	k.Hardware = append(k.Hardware,
		kb.Hardware{Name: "srv-cxl", Kind: kb.KindServer,
			Caps:    []kb.Capability{kb.CapCXL},
			Quant:   map[kb.Resource]int64{kb.ResCores: 64, kb.ResMemoryGB: 512},
			CostUSD: 15000},
	)
	// Give existing servers memory figures.
	k.HardwareByName("srv-small").Quant[kb.ResMemoryGB] = 64
	k.HardwareByName("srv-big").Quant[kb.ResMemoryGB] = 256
	k.Workloads = append(k.Workloads, kb.Workload{
		Name: "memhog", PeakMemoryGB: memGB,
		Needs: []kb.Property{"congestion_control"},
	})
	return k
}

func TestMemoryBudgetSelectsBiggerServer(t *testing.T) {
	// 20,000 GB over 48 servers: srv-small (64GB→3072 total) is out,
	// srv-big (256GB→12288) is out, srv-cxl (512GB→24576) fits.
	e := mustEngine(t, memoryKB(20000))
	rep, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindServer] != "srv-cxl" {
		t.Errorf("memory demand must force srv-cxl, got %s",
			rep.Design.Hardware[kb.KindServer])
	}
}

func TestMemoryBudgetInfeasibleExplained(t *testing.T) {
	// 30,000 GB exceeds even srv-cxl's 24,576 without pooling.
	e := mustEngine(t, memoryKB(30000))
	rep, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("want infeasible without pooling")
	}
	cited := false
	for _, c := range rep.Explanation.Conflicts {
		if strings.Contains(c.Name, "resources:memory") {
			cited = true
		}
	}
	if !cited {
		t.Errorf("explanation must cite memory: %v", rep.Explanation)
	}
}

func TestMemoryCXLPoolingUnlocks(t *testing.T) {
	// With pooling, srv-cxl stretches to 24576*1.5 = 36864 ≥ 30000.
	e := mustEngine(t, memoryKB(30000))
	rep, err := e.Synthesize(Scenario{
		Context: map[string]bool{"cxl_pooling": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("pooling must unlock feasibility: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindServer] != "srv-cxl" {
		t.Errorf("pooling only helps CXL-capable servers, got %s",
			rep.Design.Hardware[kb.KindServer])
	}
	// Pooling must NOT stretch non-CXL servers: pin srv-big and confirm
	// still infeasible.
	rep, err = e.Synthesize(Scenario{
		Context:        map[string]bool{"cxl_pooling": true},
		PinnedHardware: map[kb.HardwareKind]string{kb.KindServer: "srv-big"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Error("pooling must not stretch non-CXL servers")
	}
}

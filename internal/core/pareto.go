package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"netarch/internal/maxsat"
	"netarch/internal/sat"
)

// This file implements multi-objective Pareto-front enumeration on top
// of the parallel enumerator's machinery (DESIGN.md §15): the compiled
// instance is specialized once, the objective circuits are lowered onto
// the pristine template, the model space is split into the same fixed
// cube set enumeration uses, and each cube's local frontier is computed
// by maxsat.Pareto on a fresh clone — lexicographic push to a Pareto
// point, then a dominance-blocking clause, repeat until Unsat. The
// deterministic merge unions the cube frontiers, drops cross-cube
// dominated points, dedupes equal vectors (lowest cube wins, so the
// witness choice is schedule-independent), and sorts. A point that is
// Pareto-optimal globally is Pareto-optimal inside its own cube, and a
// cube-local point dominated globally is dominated by some other cube's
// local frontier point — so on a complete run the merged set is exactly
// the global non-dominated frontier, independent of the worker count.

// ParetoPoint is one non-dominated objective vector with a witnessing
// design that achieves it.
type ParetoPoint struct {
	// Values[i] is the value of objectives[i] at this point.
	Values []int64
	Design *Design
}

// ParetoResult is the outcome of a governed Pareto-front enumeration.
type ParetoResult struct {
	// Points is the non-dominated frontier, sorted by objective vector.
	// On a complete run it is exactly the set of non-dominated value
	// vectors; under a budget trip it holds the mutually non-dominated
	// points found so far (further frontier points may exist, and an
	// un-searched region could in principle dominate a listed point).
	Points []ParetoPoint
	// Complete reports the frontier is provably the whole non-dominated
	// set. An infeasible scenario yields Complete with zero points.
	Complete bool
	// Exhausted carries the typed resource error when a budget tripped
	// (nil on complete runs).
	Exhausted *ErrResourceExhausted
	// Spent is the total resource consumption across all cube workers.
	Spent BudgetSpent
}

// Pareto enumerates the full Pareto frontier of the objectives over the
// scenario's design space: every objective vector no design can improve
// on in one coordinate without worsening another, each with a witness.
func (e *Engine) Pareto(sc Scenario, objectives []Objective) (*ParetoResult, error) {
	return e.ParetoCtx(context.Background(), sc, objectives, Budget{})
}

// ParetoCtx is Pareto under a context and resource budget, using the
// engine's default strategy. Resource exhaustion is not an error: the
// partial frontier is returned with Complete false and Exhausted set,
// mirroring EnumerateCtx.
func (e *Engine) ParetoCtx(ctx context.Context, sc Scenario, objectives []Objective, b Budget) (*ParetoResult, error) {
	return e.ParetoWithStrategyCtx(ctx, sc, objectives, b, e.OptimizeStrategy())
}

// ParetoWithStrategyCtx is ParetoCtx with an explicit per-query MaxSAT
// strategy.
func (e *Engine) ParetoWithStrategyCtx(ctx context.Context, sc Scenario, objectives []Objective, b Budget, strat OptimizeStrategy) (*ParetoResult, error) {
	if len(objectives) == 0 {
		return nil, fmt.Errorf("core: pareto requires at least one objective")
	}
	base, shared, err := e.baseFor(&sc)
	if err != nil {
		return nil, err
	}
	solver := base.solver
	if shared {
		solver = e.takeClone(base)
	}
	g := newEnumGov(ctx, b)
	g.query = "pareto"
	defer g.done()
	tpl := e.specialize(base, &sc, solver)
	// Lower the objective circuits onto the template BEFORE any clone is
	// taken: every cube worker inherits the same totalizers and penalty
	// literals, which is what makes cube results fork-independent.
	specs, err := tpl.objectiveSpecs(objectives)
	if err != nil {
		return nil, err
	}
	r := &paretoRun{g: g, tpl: tpl, specs: specs, strat: strat}
	return r.run(e.enumWorkers()), nil
}

// paretoCube is one cube's outcome: its local frontier in discovery
// order, and whether it was drained to a certified-complete frontier.
type paretoCube struct {
	points []ParetoPoint
	exact  bool
}

// paretoRun is one Pareto query: governor, pristine template (cloned
// per cube, never solved), lowered objective specs, and per-cube
// results.
type paretoRun struct {
	g     *enumGov
	tpl   *compiled
	specs []objectiveSpec
	strat OptimizeStrategy

	mu    sync.Mutex
	cubes []paretoCube
	fail  error // first non-budget solver error, surfaced to the caller
}

func (r *paretoRun) run(workers int) *ParetoResult {
	cubes := cubeAssumptions(r.tpl)
	r.cubes = make([]paretoCube, len(cubes))
	ch := make(chan int, len(cubes))
	for i := range cubes {
		ch <- i
	}
	close(ch)
	if workers > len(cubes) {
		workers = len(cubes)
	}
	if workers <= 1 {
		r.drain(ch, cubes)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				r.drain(ch, cubes)
			}()
		}
		wg.Wait()
	}
	return r.finish()
}

func (r *paretoRun) drain(cubes <-chan int, cubeAssumps [][]sat.Lit) {
	for i := range cubes {
		if r.g.stopped() {
			return
		}
		c := r.tpl.fork(r.tpl.solver.Clone())
		release := r.g.adopt(c.solver)
		ok := r.solveCube(c, i, cubeAssumps[i])
		release()
		if !ok {
			return
		}
	}
}

// solveCube computes one cube's local frontier on a fresh clone. The
// cube's point sequence is a pure function of the compiled instance —
// same purity argument as enumeration — so the merged result cannot
// depend on worker count or scheduling. Returns false when the whole
// query must stop (budget trip or solver failure).
func (r *paretoRun) solveCube(c *compiled, idx int, cube []sat.Lit) bool {
	objs := make([]maxsat.Objective, len(r.specs))
	for i := range r.specs {
		objs[i] = r.specs[i].instantiate(c)
	}
	hard := append(c.assumptions(), cube...)
	res, err := maxsat.Pareto(c.solver, objs, maxsat.Options{
		Strategy: r.strat,
		Hard:     hard,
		Phase:    func() { r.g.phase(c.solver) },
	})
	if errors.Is(err, maxsat.ErrInfeasible) {
		// No design in this cube: an empty, certified-complete frontier.
		r.mu.Lock()
		r.cubes[idx].exact = true
		r.mu.Unlock()
		return true
	}
	if err != nil {
		r.mu.Lock()
		if r.fail == nil {
			r.fail = err
		}
		r.mu.Unlock()
		r.g.trip("interrupt", nil)
		return false
	}
	pts := make([]ParetoPoint, len(res.Points))
	for i, p := range res.Points {
		pts[i] = ParetoPoint{Values: p.Values, Design: c.designFrom(p.Model)}
	}
	r.mu.Lock()
	r.cubes[idx] = paretoCube{points: pts, exact: res.Exact}
	r.mu.Unlock()
	if !res.Exact {
		r.g.tripFrom(c.solver)
		return false
	}
	return true
}

// finish merges the cube frontiers deterministically: union, drop
// points dominated by any other cube's point, dedupe equal vectors in
// cube order, sort by objective vector.
func (r *paretoRun) finish() *ParetoResult {
	r.mu.Lock()
	cubes := r.cubes
	fail := r.fail
	r.mu.Unlock()
	_ = fail // surfaced via Exhausted below; kept for diagnostics

	res := &ParetoResult{Complete: true}
	var all []ParetoPoint
	for i := range cubes {
		if !cubes[i].exact {
			res.Complete = false
		}
		all = append(all, cubes[i].points...)
	}
	for i, p := range all {
		keep := true
		for j, q := range all {
			if i == j {
				continue
			}
			switch dominance(q.Values, p.Values) {
			case -1:
				keep = false // strictly dominated
			case 0:
				if j < i {
					keep = false // duplicate vector: earliest cube wins
				}
			}
			if !keep {
				break
			}
		}
		if keep {
			res.Points = append(res.Points, p)
		}
	}
	sort.Slice(res.Points, func(i, j int) bool {
		return lessValues(res.Points[i].Values, res.Points[j].Values)
	})
	if r.g.hasTripped() {
		res.Complete = false
		res.Exhausted = r.g.exhausted()
		res.Spent = res.Exhausted.Spent
		return res
	}
	res.Spent = r.g.spent()
	return res
}

// dominance compares objective vectors: -1 when a dominates b (a ≤ b
// componentwise, a ≠ b), 0 when equal, +1 otherwise.
func dominance(a, b []int64) int {
	leq, equal := true, true
	for i := range a {
		if a[i] > b[i] {
			leq = false
		}
		if a[i] != b[i] {
			equal = false
		}
	}
	switch {
	case equal:
		return 0
	case leq:
		return -1
	default:
		return 1
	}
}

// lessValues orders objective vectors lexicographically.
func lessValues(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// This file implements query amortization: compilation pays once per
// (KB, scenario shape) instead of once per query. A scenario is split
// into its structural "shape" (workloads, fleet size, hardware catalog
// restrictions, bounds, cost cap — everything that changes the CNF) and
// its query-side requirements (context pins, Require, pinned/forbidden
// systems — everything expressible as assumption-guarded selector
// clauses). Shapes compile to frozen, Simplify()-ed bases keyed by
// Scenario.fingerprint(); each query clones the base solver and layers
// its own selectors on the private clone. Different contexts and
// requirements over the same workload set therefore share one base.

// DefaultCacheCapacity is the number of compiled bases an Engine retains
// by default. See Engine.SetCacheCapacity.
const DefaultCacheCapacity = 32

// CacheStats reports the state of an engine's compiled-base cache.
type CacheStats struct {
	// Size is the number of compiled bases currently cached; Capacity is
	// the retention limit (0 means caching is disabled).
	Size     int
	Capacity int
	// Hits and Misses count queries served from an in-memory base vs
	// queries that had to compile one, over the engine's lifetime
	// (InvalidateCache does not reset them). A query revived from disk
	// counts as a DiskHit, not a Hit or a Miss, so Misses is exactly the
	// number of base compiles: Hits + DiskHits + Misses = queries.
	Hits   int64
	Misses int64
	// Disk-tier counters (all zero unless SetCacheDir is active).
	// DiskHits: bases revived from a snapshot file. DiskMisses: lookups
	// with no usable file. DiskWrites: snapshot files persisted.
	// DiskEvictions: files removed by the size/count bound.
	// DiskCorrupt: files rejected (bad CRC/magic/version, fingerprint
	// mismatch) and quarantined. DiskStale: snapshots skipped because
	// they were written from a different KB revision — left on disk
	// untouched (the revision that wrote them may still be using them,
	// and a live UpdateKB rewrites them in place), not quarantined.
	DiskHits      int64
	DiskMisses    int64
	DiskWrites    int64
	DiskEvictions int64
	DiskCorrupt   int64
	DiskStale     int64
	// Clone-pool counters (all zero unless SetClonePool is active).
	// PoolHits: queries served from a pre-made pristine clone.
	// PoolMisses: queries that cloned inline because the pool was empty.
	PoolHits   int64
	PoolMisses int64
	// Relevance-slicing counters (all zero unless slicing engaged — see
	// Engine.SetSliceMode). SliceComputed: cone-of-influence slices
	// computed; SliceHits: slices served from the request memo.
	// SliceSKUsIn/SliceSKUsKept: cumulative catalog sizes entering and
	// surviving slicing, so SliceSKUsKept/SliceSKUsIn is the average
	// retention ratio.
	SliceComputed int64
	SliceHits     int64
	SliceSKUsIn   int64
	SliceSKUsKept int64
}

// String renders the cache stats.
func (cs CacheStats) String() string {
	total := cs.Hits + cs.DiskHits + cs.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(cs.Hits+cs.DiskHits) / float64(total) * 100
	}
	s := fmt.Sprintf("%d bases cached (cap %d), %d hits / %d misses (%.0f%% hit rate)",
		cs.Size, cs.Capacity, cs.Hits, cs.Misses, rate)
	if cs.DiskHits+cs.DiskMisses+cs.DiskWrites+cs.DiskEvictions+cs.DiskCorrupt+cs.DiskStale > 0 {
		s += fmt.Sprintf("; disk: %d hits / %d misses, %d writes, %d evicted, %d corrupt, %d stale",
			cs.DiskHits, cs.DiskMisses, cs.DiskWrites, cs.DiskEvictions, cs.DiskCorrupt, cs.DiskStale)
	}
	if cs.PoolHits+cs.PoolMisses > 0 {
		s += fmt.Sprintf("; pool: %d hits / %d misses", cs.PoolHits, cs.PoolMisses)
	}
	if cs.SliceComputed+cs.SliceHits > 0 {
		s += fmt.Sprintf("; slice: %d computed / %d memo hits, avg %d→%d SKUs",
			cs.SliceComputed, cs.SliceHits,
			cs.SliceSKUsIn/max64(cs.SliceComputed, 1),
			cs.SliceSKUsKept/max64(cs.SliceComputed, 1))
	}
	return s
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// CacheStats returns a snapshot of the compiled-base cache counters.
//
// Consistency contract: every query bumps exactly one of Hits, DiskHits
// and Misses, so in an instantaneous view Hits+DiskHits+Misses is the
// number of queries counted so far. The counters are independent
// atomics (the warm path must not serialize through a lock just to be
// counted), so one pass over them could tear: each value individually
// correct but read at a different instant. To keep the invariant
// observable mid-flight the snapshot is double-collected — re-read
// until two consecutive collections are identical. Counters are
// monotonic, so two identical collections pin every counter to a
// constant value over the window between the passes: the result is a
// true instantaneous snapshot. Under sustained concurrent traffic that
// never quiesces, the bounded retry loop falls back to the last
// collection; the relaxed guarantee is still that each counter is exact
// at its own read instant and the Hits+DiskHits+Misses sum lies between
// the instantaneous sums at the start and end of the call (each query
// moves the sum by exactly one, so the sum always equals the query
// count at some instant within the call). TestCacheStatsSnapshotHammer
// pins both guarantees under the race detector.
func (e *Engine) CacheStats() CacheStats {
	collect := func() CacheStats {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return CacheStats{
			Size: len(e.bases), Capacity: e.cacheCap,
			Hits: e.hits.Load(), Misses: e.misses.Load(),
			DiskHits: e.diskHits.Load(), DiskMisses: e.diskMisses.Load(),
			DiskWrites: e.diskWrites.Load(), DiskEvictions: e.diskEvictions.Load(),
			DiskCorrupt: e.diskCorrupt.Load(), DiskStale: e.diskStale.Load(),
			PoolHits: e.poolHits.Load(), PoolMisses: e.poolMisses.Load(),
			SliceComputed: e.sliceComputed.Load(), SliceHits: e.sliceHits.Load(),
			SliceSKUsIn: e.sliceSKUsIn.Load(), SliceSKUsKept: e.sliceSKUsKept.Load(),
		}
	}
	prev := collect()
	for i := 0; i < 4; i++ {
		cur := collect()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// InvalidateCache drops every cached compiled base. Call it after
// mutating the knowledge base in place; queries in flight keep their
// private clones and are unaffected. Hit/miss counters are lifetime
// counters and are not reset.
// InvalidateCache also re-fingerprints the knowledge base for the disk
// tier, so snapshots written before the mutation are rejected as stale
// (their KB hash no longer matches) rather than deleted — another process
// on the old KB can still use them.
func (e *Engine) InvalidateCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bases = make(map[string]*compiled)
	e.baseOrder = nil
	// Bump the KB generation: a compile that started before the
	// invalidation must not insert its pre-mutation base into the emptied
	// cache (baseFor checks the generation at insert time).
	e.kbGen++
	if e.cacheDir != "" {
		e.kbHash = kbContentHash(e.kbCur)
	}
	// Memoized slices were computed from the previous KB content; the
	// generation in their memo key already fences them, but dropping them
	// keeps the memo from holding dead sub-KBs alive.
	e.invalidateSliceMemo()
}

// SetCacheCapacity bounds how many compiled bases the engine retains
// (FIFO eviction). n <= 0 disables caching entirely: every query
// compiles from scratch, restoring the pre-cache behavior. Safe to call
// concurrently with queries.
func (e *Engine) SetCacheCapacity(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = 0
	}
	e.cacheCap = n
	for len(e.baseOrder) > n {
		e.evictOldestLocked()
	}
}

// evictOldestLocked removes the oldest cached base (FIFO). Caller holds
// the write lock. The order slice is slid down in place and its vacated
// tail slot cleared — the previous `baseOrder = baseOrder[1:]` reslice
// kept every evicted key alive in the backing array, pinning the strings
// (and, for code holding the slice, the illusion the entries were gone)
// until a much later append finally reallocated it.
func (e *Engine) evictOldestLocked() {
	if len(e.baseOrder) == 0 {
		return
	}
	delete(e.bases, e.baseOrder[0])
	copy(e.baseOrder, e.baseOrder[1:])
	last := len(e.baseOrder) - 1
	e.baseOrder[last] = ""
	e.baseOrder = e.baseOrder[:last]
}

// baseShape strips a scenario to the fields that shape the compiled base.
// Context, Require, PinnedSystems and ForbiddenSystems are query-side:
// specialize() re-asserts them on each clone under fresh selectors. Two
// exceptions stay base-side: the cxl_pooling atom feeds the memory-
// capacity arithmetic structurally, and when performance Bounds are
// present the full Context does (order guards resolve against it at
// compile time).
func baseShape(sc *Scenario) Scenario {
	shape := Scenario{
		NumServers:  sc.NumServers,
		NumSwitches: sc.NumSwitches,
		Workloads:   append([]string(nil), sc.Workloads...),
		Bounds:      append([]PerformanceBound(nil), sc.Bounds...),
		MaxCostUSD:  sc.MaxCostUSD,
	}
	if sc.PinnedHardware != nil {
		shape.PinnedHardware = make(map[kb.HardwareKind]string, len(sc.PinnedHardware))
		for k, v := range sc.PinnedHardware {
			shape.PinnedHardware[k] = v
		}
	}
	if sc.AllowedHardware != nil {
		shape.AllowedHardware = make(map[kb.HardwareKind][]string, len(sc.AllowedHardware))
		for k, v := range sc.AllowedHardware {
			shape.AllowedHardware[k] = append([]string(nil), v...)
		}
	}
	if sc.RackServers != nil {
		shape.RackServers = make(map[string]int, len(sc.RackServers))
		for k, v := range sc.RackServers {
			shape.RackServers[k] = v
		}
	}
	if len(sc.Bounds) > 0 {
		if sc.Context != nil {
			shape.Context = make(map[string]bool, len(sc.Context))
			for a, v := range sc.Context {
				shape.Context[a] = v
			}
		}
	} else if v, ok := sc.Context["cxl_pooling"]; ok {
		shape.Context = map[string]bool{"cxl_pooling": v}
	}
	return shape
}

// baseFor resolves the compiled base for a scenario's shape: a cached
// (or freshly cached) frozen base when caching is enabled, a private
// compile when it is disabled. shared reports whether other queries may
// reference the base concurrently — callers must then solve against a
// clone of base.solver, never the base solver itself.
func (e *Engine) baseFor(sc *Scenario) (base *compiled, shared bool, err error) {
	shape := baseShape(sc)
	e.mu.RLock()
	enabled := e.cacheCap > 0
	gen := e.kbGen
	k := e.kbCur
	e.mu.RUnlock()

	// Relevance slicing (slice.go): resolve the scenario's cone-of-
	// influence slice up front so the cache key names the slice identity
	// — a sliced base can never alias a full one or another slice's.
	sl := e.sliceFor(k, gen, sc, &shape)
	var key string
	if enabled {
		key = shape.fingerprint() + sliceKeySuffix(sl)
		e.mu.RLock()
		base = e.bases[key]
		e.mu.RUnlock()
	}

	if !enabled {
		base, err = e.compileSliced(k, &shape, sl)
		if err != nil {
			return nil, false, err
		}
		return base, false, nil
	}
	if base != nil {
		// The counters are atomic: warm queries must not serialize
		// through the write lock just to be counted.
		e.hits.Add(1)
		return base, true, nil
	}
	// Memory miss: try the disk tier before paying the compile. A revived
	// base bumps DiskHits only — Misses stays the compile count.
	var fresh *compiled
	fromDisk := false
	if fresh = e.loadDiskBase(&shape, key, sl); fresh != nil {
		e.diskHits.Add(1)
		fromDisk = true
	} else {
		fresh, err = e.compileSliced(k, &shape, sl)
		if err != nil {
			return nil, false, err
		}
		e.misses.Add(1)
	}
	e.mu.Lock()
	if e.kbGen != gen {
		// The KB moved (UpdateKB or InvalidateCache) while this base was
		// compiling or loading: it belongs to the previous generation.
		// Hand it to this query privately — it answers against the KB the
		// query started under — but never cache or persist it, which
		// would poison the fresh generation's cache.
		e.mu.Unlock()
		return fresh, false, nil
	}
	if existing := e.bases[key]; existing != nil {
		// Lost a compile race: adopt the stored base so every query over
		// this shape clones the same instance.
		base = existing
	} else {
		base = fresh
		e.bases[key] = base
		e.baseOrder = append(e.baseOrder, key)
		if len(e.baseOrder) > e.cacheCap {
			e.evictOldestLocked()
		}
	}
	e.mu.Unlock()
	if base == fresh && !fromDisk {
		// Persist freshly compiled bases so the next process skips the
		// compile too. Best-effort: a failed write only costs warmth.
		e.writeDiskBase(base, key)
	}
	return base, true, nil
}

// instance produces the per-query compiled instance: a cached (or fresh)
// base specialized with the query's own selectors. With caching enabled
// the query gets a private clone of the base solver; with it disabled the
// freshly compiled base is used directly. Both paths flow through
// compileBase + specialize, so cached and cold queries are byte-identical.
func (e *Engine) instance(sc *Scenario) (*compiled, error) {
	base, shared, err := e.baseFor(sc)
	if err != nil {
		return nil, err
	}
	s := base.solver
	if shared {
		s = e.takeClone(base)
	}
	c := e.specialize(base, sc, s)
	if shared {
		// Remember the frozen base so the portfolio can mint helper
		// clones from it (clone + re-specialize reproduces this instance
		// exactly — specialize is deterministic). On the cache-off path
		// c.solver IS the base's solver, already specialized, so helpers
		// must clone c.solver instead; c.base stays nil to signal that.
		c.base = base
	}
	return c, nil
}

// specialize layers one query's requirements onto a compiled base:
// context overrides and additions, Require groups, and pinned/forbidden
// systems all become assumption-guarded selector clauses on the given
// solver (a private clone, or the base solver itself on the cache-off
// path). The base is only read, never written — the returned compiled
// owns the solver and a fresh selector list, so concurrent queries over
// one base cannot interfere.
func (e *Engine) specialize(base *compiled, sc *Scenario, solver *sat.Solver) *compiled {
	solver.SetFaultHook(e.fault)
	c := &compiled{
		kb:          base.kb,
		sc:          sc,
		vocab:       base.vocab, // frozen: query-time access is Lookup-only
		solver:      solver,
		arith:       base.arith.WithAdder(solver),
		sysLit:      base.sysLit,
		hwLit:       base.hwLit,
		sysNames:    base.sysNames,
		workloads:   base.workloads,
		derivedCtx:  base.derivedCtx,
		provides:    base.provides,
		frozen:      true,
		coresUsed:   base.coresUsed,
		coresTotal:  base.coresTotal,
		costTotal:   base.costTotal,
		powerTotal:  base.powerTotal,
		portTotal:   base.portTotal,
		warm:        base.warm,
		totalKFlows: base.totalKFlows,
		maxPeakBW:   base.maxPeakBW,
	}

	// The query's pinned context: base pins overlaid with the scenario's.
	c.pinnedCtx = make(map[string]bool, len(base.pinnedCtx)+len(sc.Context))
	for a, v := range base.pinnedCtx {
		c.pinnedCtx[a] = v
	}
	for a, v := range sc.Context {
		c.pinnedCtx[a] = v
	}

	// Keep base selectors, dropping context pins the query overrides
	// (their asserted value disagrees with the query's); those atoms are
	// re-pinned below under fresh selectors.
	c.selectors = make([]selector, 0,
		len(base.selectors)+len(sc.Context)+len(sc.Require)+len(sc.PinnedSystems)+len(sc.ForbiddenSystems))
	covered := make(map[string]bool)
	for _, s := range base.selectors {
		if atom, isCtx := strings.CutPrefix(s.name, "context:"); isCtx {
			if c.pinnedCtx[atom] != base.pinnedCtx[atom] {
				continue
			}
			covered[atom] = true
		}
		c.selectors = append(c.selectors, s)
	}
	names := make(map[string]bool, len(c.selectors))
	for _, s := range c.selectors {
		names[s.name] = true
	}
	// add registers one query-scope selector: a fresh solver variable sel
	// with the clause sel → implied (or the unit ¬sel when nothing can
	// satisfy the group). Duplicate names collapse, matching the base
	// compiler's addSelector behavior.
	add := func(name, note string, implied ...sat.Lit) {
		if names[name] {
			return
		}
		names[name] = true
		sel := sat.Lit(c.solver.NewVar())
		c.selectors = append(c.selectors, selector{name: name, note: note, lit: sel})
		c.solver.AddClause(append([]sat.Lit{sel.Flip()}, implied...)...)
	}

	// Context atoms the base does not assert: query additions + overrides.
	atoms := make([]string, 0, len(c.pinnedCtx))
	for a := range c.pinnedCtx {
		if !covered[a] {
			atoms = append(atoms, a)
		}
	}
	sort.Strings(atoms)
	for _, a := range atoms {
		f := c.ctxLit(a)
		if !c.pinnedCtx[a] {
			f = f.Flip()
		}
		add("context:"+a, fmt.Sprintf("environment fact: %s=%v", a, c.pinnedCtx[a]), f)
	}

	// Architect requirements. A property nothing in the KB provides gets
	// an unconditionally violated selector (the base asserted ¬prop for
	// workload needs; for query-only requires the unit ¬sel is equivalent
	// and keeps the MUS pointing at the require group).
	for _, p := range sc.Require {
		name := fmt.Sprintf("require:%s", p)
		note := fmt.Sprintf("architect requires %s", p)
		if c.provides[p] {
			add(name, note, sat.Lit(c.vocab.Lookup("prop:"+string(p))))
		} else {
			add(name, note)
		}
	}

	// Pinned and forbidden systems.
	for _, s := range sc.PinnedSystems {
		add("pin:system:"+s, fmt.Sprintf("architect pinned %s as deployed", s), c.systemLit(s))
	}
	for _, s := range sc.ForbiddenSystems {
		add("forbid:system:"+s, fmt.Sprintf("architect forbade %s", s), c.systemLit(s).Flip())
	}
	return c
}

// ctxLit returns the literal for a context atom, allocating a private
// solver variable for atoms absent from the frozen base vocabulary.
func (c *compiled) ctxLit(atom string) sat.Lit {
	if v := c.vocab.Lookup("ctx:" + atom); v != 0 {
		return sat.Lit(v)
	}
	if l, ok := c.extraCtx[atom]; ok {
		return l
	}
	l := sat.Lit(c.solver.NewVar())
	if c.extraCtx == nil {
		c.extraCtx = make(map[string]sat.Lit)
	}
	c.extraCtx[atom] = l
	return l
}

// systemLit returns the literal for a system name, allocating a private
// solver variable for names unknown to the KB (so pinning and forbidding
// the same unknown system still conflict, as they always did).
func (c *compiled) systemLit(name string) sat.Lit {
	if l, ok := c.sysLit[name]; ok {
		return l
	}
	if l, ok := c.extraSys[name]; ok {
		return l
	}
	l := sat.Lit(c.solver.NewVar())
	if c.extraSys == nil {
		c.extraSys = make(map[string]sat.Lit)
	}
	c.extraSys[name] = l
	return l
}

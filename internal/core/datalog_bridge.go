package core

import (
	"fmt"
	"sort"
	"strconv"

	"netarch/internal/datalog"
)

// DatalogViolation is one structured-constraint violation found by the
// rule-based backend.
type DatalogViolation struct {
	Kind   string // "cap", "dep", "anyof", "conflict", "context", "need", "exclusive"
	Detail string
}

// String renders the violation.
func (v DatalogViolation) String() string { return v.Kind + ": " + v.Detail }

// DatalogCheck validates a fully-specified design with the stratified
// Datalog backend — the "rule-based systems" alternative of §3.4. It
// covers the structured constraint classes (capability requirements,
// system dependencies, any-of groups, conflicts, context conditions, need
// coverage, role exclusivity) and, by design, NOT the free-form
// predicate-logic rules or the arithmetic budgets: forward chaining over
// Horn clauses cannot express them, which is exactly the trade-off that
// pushed the paper to a SAT shim. Compare with Engine.Check.
//
// The design's context must be fully specified via sc.Context plus
// workload properties; unspecified atoms are treated as false, matching
// negation-as-failure semantics.
func (e *Engine) DatalogCheck(design Design, sc Scenario) ([]DatalogViolation, error) {
	k := e.kbSnapshot()
	db := datalog.NewDB()
	add := func(pred string, args ...string) {
		if err := db.AddFact(pred, args...); err != nil {
			panic(fmt.Sprintf("core: datalog fact %s%v: %v", pred, args, err))
		}
	}

	// --- EDB: the knowledge base ---------------------------------------
	for i := range k.Systems {
		s := &k.Systems[i]
		add("system", s.Name, string(s.Role))
		for _, p := range s.Solves {
			add("solves", s.Name, string(p))
		}
		for kind, caps := range s.RequiresCaps {
			for _, c := range caps {
				add("requiresCap", s.Name, string(kind), string(c))
			}
		}
		for _, d := range s.RequiresSystems {
			add("requiresSystem", s.Name, d)
		}
		for gi, group := range s.RequiresAnyOf {
			gid := s.Name + "#" + strconv.Itoa(gi)
			add("anyofGroup", s.Name, gid)
			for _, d := range group {
				add("anyofMember", gid, d)
			}
		}
		for _, c := range s.ConflictsWith {
			add("conflictsWith", s.Name, c)
		}
		for _, cond := range s.RequiresContext {
			add("requiresCtx", s.Name, cond.Atom, boolStr(cond.Value))
		}
		for _, cond := range s.UsefulOnlyWhen {
			add("usefulWhen", s.Name, cond.Atom, boolStr(cond.Value))
		}
		if s.AppModification {
			add("requiresCtx", s.Name, "app_modifiable", "true")
		}
	}
	for role := range exclusiveRoles {
		add("exclusiveRole", string(role))
	}
	for kind, name := range design.Hardware {
		h := k.HardwareByName(name)
		if h == nil || h.Kind != kind {
			return nil, fmt.Errorf("core: design selects unknown %s %q", kind, name)
		}
		for _, c := range h.Caps {
			add("capAvailable", string(kind), string(c))
		}
	}

	// --- EDB: the design and query context ------------------------------
	for _, s := range design.Systems {
		if k.SystemByName(s) == nil {
			return nil, fmt.Errorf("core: design deploys unknown system %q", s)
		}
		add("deployed", s)
	}
	ctx := map[string]bool{}
	workloads := sc.Workloads
	if len(workloads) == 0 {
		for i := range k.Workloads {
			workloads = append(workloads, k.Workloads[i].Name)
		}
	}
	for _, wn := range workloads {
		w := k.WorkloadByName(wn)
		if w == nil {
			return nil, fmt.Errorf("core: unknown workload %q", wn)
		}
		for _, p := range w.Properties {
			ctx[p] = true
		}
		for _, p := range w.Needs {
			add("needed", string(p))
		}
	}
	for _, p := range sc.Require {
		add("needed", string(p))
	}
	for a, v := range sc.Context {
		ctx[a] = v
	}
	for a, v := range ctx {
		if v {
			add("ctxTrue", a)
		}
	}

	// --- IDB: the checking rules ----------------------------------------
	// Negation-as-failure over absent predicates is safe: the evaluator
	// treats a missing relation as empty.
	var p datalog.Program
	va, vb, vc := datalog.V("a"), datalog.V("b"), datalog.V("c")
	vs, vk, vg, vp, vr := datalog.V("s"), datalog.V("k"), datalog.V("g"), datalog.V("p"), datalog.V("r")

	// violationCap(S,K,C): deployed S needs cap C on K, hardware lacks it.
	p.Add(datalog.NewAtom("violationCap", vs, vk, vc),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("requiresCap", vs, vk, vc)),
		datalog.Neg(datalog.NewAtom("capAvailable", vk, vc)))

	// violationDep(S,D): dependency not deployed.
	p.Add(datalog.NewAtom("violationDep", vs, vb),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("requiresSystem", vs, vb)),
		datalog.Neg(datalog.NewAtom("deployed", vb)))

	// anyofSatisfied(G): some member deployed.
	p.Add(datalog.NewAtom("anyofSatisfied", vg),
		datalog.Pos(datalog.NewAtom("anyofMember", vg, vb)),
		datalog.Pos(datalog.NewAtom("deployed", vb)))
	p.Add(datalog.NewAtom("violationAnyof", vs, vg),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("anyofGroup", vs, vg)),
		datalog.Neg(datalog.NewAtom("anyofSatisfied", vg)))

	// violationConflict(S,T): both sides deployed.
	p.Add(datalog.NewAtom("violationConflict", vs, vb),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("conflictsWith", vs, vb)),
		datalog.Pos(datalog.NewAtom("deployed", vb)))

	// Context requirements: requiresCtx(S,A,"true") needs ctxTrue(A);
	// requiresCtx(S,A,"false") needs ¬ctxTrue(A).
	p.Add(datalog.NewAtom("violationCtx", vs, va),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("requiresCtx", vs, va, datalog.C("true"))),
		datalog.Neg(datalog.NewAtom("ctxTrue", va)))
	p.Add(datalog.NewAtom("violationCtx", vs, va),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("requiresCtx", vs, va, datalog.C("false"))),
		datalog.Pos(datalog.NewAtom("ctxTrue", va)))

	// Usefulness: a deployed system is blocked if any useful-when
	// condition fails; needs count only unblocked providers.
	p.Add(datalog.NewAtom("usefulBlocked", vs),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("usefulWhen", vs, va, datalog.C("true"))),
		datalog.Neg(datalog.NewAtom("ctxTrue", va)))
	p.Add(datalog.NewAtom("usefulBlocked", vs),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("usefulWhen", vs, va, datalog.C("false"))),
		datalog.Pos(datalog.NewAtom("ctxTrue", va)))
	p.Add(datalog.NewAtom("needSatisfied", vp),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("solves", vs, vp)),
		datalog.Neg(datalog.NewAtom("usefulBlocked", vs)))
	p.Add(datalog.NewAtom("violationNeed", vp),
		datalog.Pos(datalog.NewAtom("needed", vp)),
		datalog.Neg(datalog.NewAtom("needSatisfied", vp)))

	// Common-sense rule (§3.4): some network stack must be deployed.
	p.Add(datalog.NewAtom("stackDeployed"),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("system", vs, datalog.C("network_stack"))))
	p.Add(datalog.NewAtom("violationStack"),
		datalog.Neg(datalog.NewAtom("stackDeployed")))

	// Role exclusivity: two deployed systems of the same exclusive role.
	p.Add(datalog.NewAtom("violationExclusive", vs, vb, vr),
		datalog.Pos(datalog.NewAtom("deployed", vs)),
		datalog.Pos(datalog.NewAtom("deployed", vb)),
		datalog.Pos(datalog.NewAtom("system", vs, vr)),
		datalog.Pos(datalog.NewAtom("system", vb, vr)),
		datalog.Pos(datalog.NewAtom("exclusiveRole", vr)),
		datalog.Pos(datalog.NewAtom("distinct", vs, vb)))

	// distinct(A,B) for deployed pairs (Datalog has no built-in ≠).
	for _, a := range design.Systems {
		for _, b := range design.Systems {
			if a < b {
				add("distinct", a, b)
			}
		}
	}

	out, err := p.Eval(db)
	if err != nil {
		return nil, err
	}

	var violations []DatalogViolation
	for _, t := range out.All("violationCap") {
		violations = append(violations, DatalogViolation{"cap",
			fmt.Sprintf("%s needs %s on %s", t[0], t[2], t[1])})
	}
	for _, t := range out.All("violationDep") {
		violations = append(violations, DatalogViolation{"dep",
			fmt.Sprintf("%s requires %s", t[0], t[1])})
	}
	for _, t := range out.All("violationAnyof") {
		violations = append(violations, DatalogViolation{"anyof",
			fmt.Sprintf("%s needs one of group %s", t[0], t[1])})
	}
	for _, t := range out.All("violationConflict") {
		violations = append(violations, DatalogViolation{"conflict",
			fmt.Sprintf("%s conflicts with %s", t[0], t[1])})
	}
	for _, t := range out.All("violationCtx") {
		violations = append(violations, DatalogViolation{"context",
			fmt.Sprintf("%s requires context %s", t[0], t[1])})
	}
	for _, t := range out.All("violationNeed") {
		violations = append(violations, DatalogViolation{"need",
			fmt.Sprintf("nothing deployed usefully solves %s", t[0])})
	}
	for _, t := range out.All("violationExclusive") {
		violations = append(violations, DatalogViolation{"exclusive",
			fmt.Sprintf("%s and %s both fill exclusive role %s", t[0], t[1], t[2])})
	}
	if out.Count("violationStack") > 0 {
		violations = append(violations, DatalogViolation{"stack",
			"no network stack deployed (common-sense rule, §3.4)"})
	}
	sort.Slice(violations, func(i, j int) bool {
		if violations[i].Kind != violations[j].Kind {
			return violations[i].Kind < violations[j].Kind
		}
		return violations[i].Detail < violations[j].Detail
	})
	return violations, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

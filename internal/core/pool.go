package core

import (
	"sync"

	"netarch/internal/sat"
)

// The clone pool moves the per-query Clone off the request's critical
// path. Every query over a cached base solves on a private clone of the
// frozen base solver (cache.go); the clone is near-memcpy since the
// arena rewrite, but under a latency-sensitive server even that copy is
// better paid in the background. With a pool configured (SetClonePool),
// each cached base keeps up to N pristine pre-made clones: a query pops
// one and a background refiller tops the pool back up.
//
// Safety model: the pool only ever holds pristine clones of the frozen
// base — a clone that has been handed out is never re-admitted, so a
// query that panics, trips a budget, or is abandoned mid-solve simply
// strands its clone for the GC. Quarantine is therefore structural:
// there is no path by which a dirtied solver can serve a later query.

// clonePool holds pristine pre-made clones of one compiled base's
// solver. The zero value is ready to use (and empty).
type clonePool struct {
	mu      sync.Mutex
	free    []*sat.Solver
	filling bool
}

// take pops a pristine clone, or returns nil when the pool is empty.
func (p *clonePool) take() *sat.Solver {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.free)
	if n == 0 {
		return nil
	}
	s := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return s
}

// takeN pops up to k pristine clones in a single lock round-trip (the
// portfolio wants K clones per query; K lock acquisitions would invite
// contention exactly when the pool is busiest). Returns fewer than k —
// possibly none — when the pool runs dry.
func (p *clonePool) takeN(k int) []*sat.Solver {
	if k <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.free)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]*sat.Solver, k)
	copy(out, p.free[n-k:])
	for i := n - k; i < n; i++ {
		p.free[i] = nil
	}
	p.free = p.free[:n-k]
	return out
}

// refill tops the pool up to target clones of src. At most one refiller
// runs per pool at a time; extra callers return immediately, so a burst
// of queries costs one background cloning loop, not one goroutine each.
// Cloning happens outside the lock — concurrent Clone of a frozen base
// is the same pattern queries themselves use.
func (p *clonePool) refill(src *sat.Solver, target int) {
	p.mu.Lock()
	if p.filling {
		p.mu.Unlock()
		return
	}
	p.filling = true
	p.mu.Unlock()
	for {
		p.mu.Lock()
		if len(p.free) >= target {
			p.filling = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		c := src.Clone()
		p.mu.Lock()
		p.free = append(p.free, c)
		p.mu.Unlock()
	}
}

// size reports the current number of pooled clones.
func (p *clonePool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// SetClonePool configures per-base pre-cloning: each cached base keeps
// up to n pristine solver clones so queries pop one instead of cloning
// inline (see takeClone). n <= 0 disables pooling (the default), which
// restores the clone-per-query behavior exactly. Pool effectiveness is
// visible in CacheStats.PoolHits / PoolMisses. Safe to call
// concurrently with queries.
func (e *Engine) SetClonePool(n int) {
	if n < 0 {
		n = 0
	}
	e.poolSize.Store(int32(n))
}

// takeClone produces the private solver for one query over a shared
// base: a pooled pristine clone when available, an inline clone
// otherwise. Either way a background refill is kicked so the next query
// finds the pool warm.
func (e *Engine) takeClone(base *compiled) *sat.Solver {
	n := int(e.poolSize.Load())
	if n <= 0 {
		return base.solver.Clone()
	}
	if s := base.pool.take(); s != nil {
		e.poolHits.Add(1)
		go base.pool.refill(base.solver, n)
		return s
	}
	e.poolMisses.Add(1)
	go base.pool.refill(base.solver, n)
	return base.solver.Clone()
}

// takeCloneN produces k private solvers for one query's portfolio
// helpers: pooled pristine clones while they last, inline clones for the
// rest, with one batch pool acquisition and one background refill kick
// regardless of k.
func (e *Engine) takeCloneN(base *compiled, k int) []*sat.Solver {
	if k <= 0 {
		return nil
	}
	out := make([]*sat.Solver, 0, k)
	if n := int(e.poolSize.Load()); n > 0 {
		pooled := base.pool.takeN(k)
		e.poolHits.Add(int64(len(pooled)))
		e.poolMisses.Add(int64(k - len(pooled)))
		go base.pool.refill(base.solver, n)
		out = append(out, pooled...)
	}
	for len(out) < k {
		out = append(out, base.solver.Clone())
	}
	return out
}

// Prewarm compiles (or revives from the disk tier) the base for the
// scenario's shape and, when a clone pool is configured, fills it
// synchronously — so the first real query over that shape pays neither
// the compile nor the clone. It counts as one query in the cache
// counters (a miss on a cold engine, a hit on a warm one). Serving
// processes call this per expected scenario shape before reporting
// ready.
func (e *Engine) Prewarm(sc Scenario) error {
	base, shared, err := e.baseFor(&sc)
	if err != nil {
		return err
	}
	if n := int(e.poolSize.Load()); shared && n > 0 {
		base.pool.refill(base.solver, n)
	}
	return nil
}

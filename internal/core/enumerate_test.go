package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

func TestLessSystemsElementwise(t *testing.T) {
	// Regression: the old sort key fmt.Sprint(systems) renders
	// ["a b","c"] and ["a","b c"] identically ("[a b c]"), so their
	// relative order was undefined. Element-wise comparison keeps them
	// distinct and total.
	cases := []struct {
		a, b []string
		want bool
	}{
		{[]string{"a", "b c"}, []string{"a b", "c"}, true},
		{[]string{"a b", "c"}, []string{"a", "b c"}, false},
		{[]string{"a"}, []string{"a", "b"}, true},
		{[]string{"a", "b"}, []string{"a"}, false},
		{[]string{"a", "b"}, []string{"a", "b"}, false},
		{nil, []string{"a"}, true},
		{nil, nil, false},
		{[]string{"cubic", "linux"}, []string{"dctcp", "linux"}, true},
	}
	for _, tc := range cases {
		if got := lessSystems(tc.a, tc.b); got != tc.want {
			t.Errorf("lessSystems(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// hardwareOnlyKB is a valid knowledge base with an empty system
// vocabulary: hardware must still be selected, but no system variable
// exists to project designs onto.
func hardwareOnlyKB() *kb.KB {
	return &kb.KB{Hardware: miniKB().Hardware}
}

func TestEnumerateEmptyProjection(t *testing.T) {
	// Regression: with no system variables the blocking clause is empty,
	// and the old loop asserted it — AddClause() with zero literals
	// poisons the solver (okay=false) and needs a second, vacuous solve
	// to notice the enumeration is "done". The guard decides the single
	// (empty) class in exactly one solve and reports completion.
	e := mustEngine(t, hardwareOnlyKB())
	e.SetWorkers(1)
	solves := 0
	e.SetFaultHook(func(ev sat.FaultEvent, _ sat.Stats) bool {
		if ev == sat.EventSolve {
			solves++
		}
		return false
	})
	res, err := e.EnumerateCtx(context.Background(), Scenario{}, 10, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || res.Exhausted != nil || res.Reason != "" {
		t.Fatalf("empty projection must terminate as complete: %+v", res)
	}
	if len(res.Designs) != 1 {
		t.Fatalf("got %d designs, want the single empty class", len(res.Designs))
	}
	if d := res.Designs[0]; len(d.Systems) != 0 || len(d.Hardware) == 0 {
		t.Fatalf("empty-class design wrong: systems=%v hardware=%v", d.Systems, d.Hardware)
	}
	if solves != 1 {
		t.Errorf("empty projection took %d solves, want 1 (no poisoned re-solve)", solves)
	}
}

func TestEnumerateEmptyProjectionInfeasible(t *testing.T) {
	// An infeasible instance with no system vocabulary is a complete,
	// empty enumeration — not a truncation.
	k := hardwareOnlyKB()
	e := mustEngine(t, k)
	sc := Scenario{Context: map[string]bool{"pfc_enabled": true}}
	// Force infeasibility through contradictory context pins on a KB
	// with the pfc_no_flooding rule but no systems.
	k2 := &kb.KB{Hardware: k.Hardware, Rules: miniKB().Rules}
	e = mustEngine(t, k2)
	sc = Scenario{Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true}}
	res, err := e.EnumerateCtx(context.Background(), sc, 10, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || len(res.Designs) != 0 {
		t.Fatalf("infeasible empty projection must be complete and empty: %+v", res)
	}
}

// enumKey renders a result for byte-identity comparison, excluding Spent
// (the one field the determinism contract lets vary).
func enumKey(res *EnumerateResult) [3]interface{} {
	return [3]interface{}{res.Designs, res.Truncated, res.Reason}
}

func TestEnumerateWorkerCountInvariance(t *testing.T) {
	// The determinism contract: Designs (content and order), Truncated,
	// and Reason must not depend on the worker count — across the
	// complete path (max above the space), the exact-fit path, and the
	// capped path (max below the space).
	e := mustEngine(t, miniKB())
	for _, max := range []int{1, 2, 3, 100} {
		e.SetWorkers(1)
		want, err := e.EnumerateCtx(context.Background(), Scenario{}, max, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			e.SetWorkers(w)
			got, err := e.EnumerateCtx(context.Background(), Scenario{}, max, Budget{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(enumKey(got), enumKey(want)) {
				t.Errorf("max=%d workers=%d diverges from sequential:\nseq: %+v\npar: %+v",
					max, w, want, got)
			}
			if (got.Exhausted == nil) != (want.Exhausted == nil) {
				t.Errorf("max=%d workers=%d: Exhausted nil-ness diverges", max, w)
			}
		}
	}
}

func TestEnumerateRepeatedRunsIdentical(t *testing.T) {
	// Within one worker setting, repeated enumerations must be
	// byte-identical too: blocking clauses and canonical pins are built
	// in sorted vocabulary order, so no map-iteration nondeterminism
	// can leak into the search.
	e := mustEngine(t, miniKB())
	e.SetWorkers(4)
	first, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(enumKey(first), enumKey(again)) {
			t.Fatalf("run %d diverges from the first:\n%+v\nvs\n%+v", i+2, first, again)
		}
	}
}

func TestEnumerateCacheOffMatchesCacheOn(t *testing.T) {
	// The cache-off path specializes the private base directly (no
	// clone); both paths must yield identical enumerations.
	on := mustEngine(t, miniKB())
	off := mustEngine(t, miniKB())
	off.SetCacheCapacity(0)
	a, err := on.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enumKey(a), enumKey(b)) {
		t.Fatalf("cache-on and cache-off enumerations diverge:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEnumerateNonPositiveMax(t *testing.T) {
	// max <= 0 must keep the historical contract: compile, admit
	// nothing, report a (vacuous) limit truncation.
	e := mustEngine(t, miniKB())
	for _, max := range []int{0, -3} {
		res, err := e.EnumerateCtx(context.Background(), Scenario{}, max, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated || res.Reason != "limit" || len(res.Designs) != 0 || res.Exhausted != nil {
			t.Fatalf("max=%d: %+v", max, res)
		}
	}
}

func TestEnumerateConcurrentQueries(t *testing.T) {
	// Parallel enumerations from many goroutines over one engine must
	// not interfere: private clones per worker, atomic cache counters,
	// per-query governors. Run with -race.
	e := mustEngine(t, miniKB())
	e.SetWorkers(2)
	want, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.EnumerateCtx(context.Background(), Scenario{}, 100, Budget{})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(enumKey(got), enumKey(want)) {
				t.Errorf("concurrent enumeration diverged")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDisambiguateLimitTruncationIncomplete(t *testing.T) {
	// Regression: a limit-truncated enumeration (Truncated=true,
	// Exhausted=nil) is a provably partial class set, so the
	// disambiguation built from it must be marked Incomplete — the old
	// code keyed on Exhausted and reported it as complete.
	e := mustEngine(t, miniKB())
	d, err := e.DisambiguateCtx(context.Background(), Scenario{}, 1, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes != 1 {
		t.Fatalf("got %d classes, want exactly the limit", d.Classes)
	}
	if !d.Incomplete {
		t.Fatal("limit-truncated disambiguation must be Incomplete")
	}
	// A complete enumeration must stay complete.
	full, err := e.DisambiguateCtx(context.Background(), Scenario{}, 100, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Incomplete {
		t.Fatalf("complete disambiguation mislabeled: %+v", full)
	}
}

package core

import (
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

// miniKB is a small hand-built knowledge base with one system per concept
// under test, so failures localize.
func miniKB() *kb.KB {
	return &kb.KB{
		Systems: []kb.System{
			{Name: "linux", Role: kb.RoleNetworkStack,
				Solves: []kb.Property{"kernel_network_stack"}, Maturity: "production"},
			{Name: "shenango", Role: kb.RoleNetworkStack,
				Solves:          []kb.Property{"low_latency_stack"},
				RequiresCaps:    map[kb.HardwareKind][]kb.Capability{kb.KindNIC: {kb.CapInterruptPoll}},
				RequiresContext: []kb.Condition{{Atom: "deadline_tight", Value: false}},
				Resources:       map[kb.Resource]int64{kb.ResCores: 1},
				Maturity:        "research"},
			{Name: "cubic", Role: kb.RoleCongestionControl,
				Solves: []kb.Property{"congestion_control"}, Maturity: "production"},
			{Name: "dctcp", Role: kb.RoleCongestionControl,
				Solves:       []kb.Property{"congestion_control"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapECN}},
				Maturity:     "production"},
			{Name: "annulus", Role: kb.RoleCongestionControl,
				Solves:         []kb.Property{"congestion_control", "tail_latency_control"},
				RequiresCaps:   map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapQCN}},
				UsefulOnlyWhen: []kb.Condition{{Atom: "wan_dc_mix", Value: true}},
				Maturity:       "research"},
			{Name: "sonata", Role: kb.RoleMonitoring,
				Solves:       []kb.Property{"detect_queue_length"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
				Resources:    map[kb.Resource]int64{kb.ResP4Stages: 8},
				Maturity:     "research"},
			{Name: "marple", Role: kb.RoleMonitoring,
				Solves:       []kb.Property{"flow_telemetry"},
				RequiresCaps: map[kb.HardwareKind][]kb.Capability{kb.KindSwitch: {kb.CapP4}},
				Resources:    map[kb.Resource]int64{kb.ResP4Stages: 10},
				Maturity:     "research"},
			{Name: "roce", Role: kb.RoleTransport,
				Solves:          []kb.Property{"low_latency_transport"},
				RequiresContext: []kb.Condition{{Atom: "pfc_enabled", Value: true}},
				Maturity:        "production"},
		},
		Hardware: []kb.Hardware{
			{Name: "sw-fixed", Kind: kb.KindSwitch,
				Quant: map[kb.Resource]int64{kb.ResBandwidthGbps: 100}, CostUSD: 5000},
			{Name: "sw-ecn", Kind: kb.KindSwitch, Caps: []kb.Capability{kb.CapECN},
				Quant: map[kb.Resource]int64{kb.ResBandwidthGbps: 100}, CostUSD: 8000},
			{Name: "sw-p4", Kind: kb.KindSwitch,
				Caps:    []kb.Capability{kb.CapECN, kb.CapP4, kb.CapQCN},
				Quant:   map[kb.Resource]int64{kb.ResBandwidthGbps: 100, kb.ResP4Stages: 12},
				CostUSD: 20000},
			{Name: "sw-p4-big", Kind: kb.KindSwitch,
				Caps:    []kb.Capability{kb.CapECN, kb.CapP4, kb.CapQCN},
				Quant:   map[kb.Resource]int64{kb.ResBandwidthGbps: 100, kb.ResP4Stages: 20},
				CostUSD: 30000},
			{Name: "nic-basic", Kind: kb.KindNIC,
				Quant: map[kb.Resource]int64{kb.ResBandwidthGbps: 25}, CostUSD: 300},
			{Name: "nic-poll", Kind: kb.KindNIC, Caps: []kb.Capability{kb.CapInterruptPoll},
				Quant: map[kb.Resource]int64{kb.ResBandwidthGbps: 100}, CostUSD: 900},
			{Name: "srv-small", Kind: kb.KindServer,
				Quant: map[kb.Resource]int64{kb.ResCores: 16}, CostUSD: 4000},
			{Name: "srv-big", Kind: kb.KindServer,
				Quant: map[kb.Resource]int64{kb.ResCores: 64}, CostUSD: 12000},
		},
		Rules: []kb.Rule{
			{Name: "pfc_no_flooding",
				Expr: kb.Implies(kb.CtxAtom("pfc_enabled"), kb.Not(kb.CtxAtom("flooding_enabled"))),
				Note: "PFC deadlocks under flooding"},
		},
		Orders: []kb.OrderSpec{
			{Dimension: "monitoring", Edges: []kb.OrderEdge{
				{Better: "sonata", Worse: "marple", Note: "test order"},
			}},
		},
	}
}

func mustEngine(t *testing.T, k *kb.KB) *Engine {
	t.Helper()
	e, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSynthesizeBasic(t *testing.T) {
	e := mustEngine(t, miniKB())
	rep, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("empty scenario must be feasible: %v", rep.Explanation)
	}
	d := rep.Design
	// Common-sense rule: a network stack must be present.
	hasStack := d.HasSystem("linux") || d.HasSystem("shenango")
	if !hasStack {
		t.Errorf("design lacks a network stack: %v", d.Systems)
	}
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		if d.Hardware[kind] == "" {
			t.Errorf("no %s selected", kind)
		}
	}
}

func TestRequirePropagatesToHardware(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Require queue-length monitoring: only sonata solves it, which
	// needs a P4 switch.
	rep, err := e.Synthesize(Scenario{Require: []kb.Property{"detect_queue_length"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	if !rep.Design.HasSystem("sonata") {
		t.Errorf("sonata must be deployed: %v", rep.Design.Systems)
	}
	sw := rep.Design.Hardware[kb.KindSwitch]
	if sw != "sw-p4" && sw != "sw-p4-big" {
		t.Errorf("a P4 switch must be selected, got %s", sw)
	}
}

func TestRuleConflictExplained(t *testing.T) {
	e := mustEngine(t, miniKB())
	rep, err := e.Synthesize(Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("PFC+flooding must be infeasible")
	}
	found := false
	for _, c := range rep.Explanation.Conflicts {
		if c.Name == "rule:pfc_no_flooding" {
			found = true
		}
	}
	if !found {
		t.Errorf("explanation must cite the PFC rule: %v", rep.Explanation)
	}
	// Minimality: the explanation should name the rule plus the two
	// context pins, nothing else.
	if n := len(rep.Explanation.Conflicts); n > 3 {
		t.Errorf("explanation not minimal: %d items: %v", n, rep.Explanation)
	}
}

func TestUsefulOnlyWhenGating(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Forbid cubic and dctcp so only annulus could provide CC — but
	// without WAN/DC mix it is useless.
	sc := Scenario{
		Require:          []kb.Property{"congestion_control"},
		ForbiddenSystems: []string{"cubic", "dctcp"},
		Context:          map[string]bool{"wan_dc_mix": false},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("annulus without wan_dc_mix must not satisfy congestion_control")
	}
	// With the mix present it works.
	sc.Context["wan_dc_mix"] = true
	rep, err = e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("annulus with wan_dc_mix must work: %v", rep.Explanation)
	}
	if !rep.Design.HasSystem("annulus") {
		t.Errorf("annulus must be deployed: %v", rep.Design.Systems)
	}
}

func TestResearchSystemBlockedByDeadline(t *testing.T) {
	e := mustEngine(t, miniKB())
	sc := Scenario{
		Require: []kb.Property{"low_latency_stack"},
		Context: map[string]bool{"deadline_tight": true},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("shenango under a tight deadline must be infeasible")
	}
	sc.Context["deadline_tight"] = false
	rep, err = e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible || !rep.Design.HasSystem("shenango") {
		t.Fatalf("shenango must deploy without deadline: %+v", rep)
	}
	if rep.Design.Hardware[kb.KindNIC] != "nic-poll" {
		t.Errorf("shenango needs the interrupt-polling NIC, got %s",
			rep.Design.Hardware[kb.KindNIC])
	}
}

func TestP4StageBudget(t *testing.T) {
	e := mustEngine(t, miniKB())
	// sonata(8) + marple(10) = 18 stages: doesn't fit sw-p4 (12), fits
	// sw-p4-big (20).
	sc := Scenario{
		Require: []kb.Property{"detect_queue_length", "flow_telemetry"},
		AllowedHardware: map[kb.HardwareKind][]string{
			kb.KindSwitch: {"sw-p4"},
		},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("18 stages must not fit a 12-stage switch")
	}
	cites := false
	for _, c := range rep.Explanation.Conflicts {
		if strings.Contains(c.Name, "p4_stages") {
			cites = true
		}
	}
	if !cites {
		t.Errorf("explanation must cite the stage budget: %v", rep.Explanation)
	}

	sc.AllowedHardware[kb.KindSwitch] = []string{"sw-p4", "sw-p4-big"}
	rep, err = e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("20-stage switch must fit both: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindSwitch] != "sw-p4-big" {
		t.Errorf("must pick the big switch, got %s", rep.Design.Hardware[kb.KindSwitch])
	}
}

func TestCoreBudget(t *testing.T) {
	k := miniKB()
	k.Workloads = append(k.Workloads, kb.Workload{
		Name: "heavy", PeakCores: 2000, Needs: []kb.Property{"congestion_control"},
	})
	e := mustEngine(t, k)
	// 48 small servers = 768 cores < 2000: must force srv-big (3072).
	rep, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindServer] != "srv-big" {
		t.Errorf("big servers required, got %s", rep.Design.Hardware[kb.KindServer])
	}
	// Pinning small servers must be infeasible and explained.
	rep, err = e.Synthesize(Scenario{
		PinnedHardware: map[kb.HardwareKind]string{kb.KindServer: "srv-small"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("2000 cores on 768-core fleet must be infeasible")
	}
	cites := false
	for _, c := range rep.Explanation.Conflicts {
		if strings.Contains(c.Name, "resources:cores") {
			cites = true
		}
	}
	if !cites {
		t.Errorf("explanation must cite the core budget: %v", rep.Explanation)
	}
}

func TestNICBandwidthConstraint(t *testing.T) {
	k := miniKB()
	k.Workloads = append(k.Workloads, kb.Workload{
		Name: "fat", PeakBandwidthGbps: 80,
	})
	e := mustEngine(t, k)
	rep, err := e.Synthesize(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindNIC] != "nic-poll" {
		t.Errorf("80G peak needs the 100G NIC, got %s", rep.Design.Hardware[kb.KindNIC])
	}
}

func TestCheckRejectsNonCompliantDesign(t *testing.T) {
	e := mustEngine(t, miniKB())
	// dctcp on a non-ECN switch.
	bad := Design{
		Systems:  []string{"linux", "dctcp"},
		Hardware: map[kb.HardwareKind]string{kb.KindSwitch: "sw-fixed"},
	}
	rep, err := e.Check(bad, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("dctcp without ECN must fail Check")
	}
	cites := false
	for _, c := range rep.Explanation.Conflicts {
		if strings.Contains(c.Name, "system:dctcp:caps") {
			cites = true
		}
	}
	if !cites {
		t.Errorf("explanation must cite dctcp's capability requirement: %v", rep.Explanation)
	}
	// The same design on an ECN switch passes.
	good := bad
	good.Hardware = map[kb.HardwareKind]string{kb.KindSwitch: "sw-ecn"}
	rep, err = e.Check(good, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("dctcp with ECN must pass: %v", rep.Explanation)
	}
}

func TestCheckUnknownNames(t *testing.T) {
	e := mustEngine(t, miniKB())
	if _, err := e.Check(Design{Systems: []string{"ghost"}}, Scenario{}); err == nil {
		t.Error("unknown system must error")
	}
	if _, err := e.Check(Design{
		Hardware: map[kb.HardwareKind]string{kb.KindSwitch: "ghost"},
	}, Scenario{}); err == nil {
		t.Error("unknown hardware must error")
	}
}

func TestEnumerateDistinctSystemSets(t *testing.T) {
	e := mustEngine(t, miniKB())
	designs, err := e.Enumerate(Scenario{Require: []kb.Property{"congestion_control"}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) < 2 {
		t.Fatalf("expected multiple equivalence classes, got %d", len(designs))
	}
	seen := map[string]bool{}
	for _, d := range designs {
		key := strings.Join(d.Systems, ",")
		if seen[key] {
			t.Errorf("duplicate system set %s", key)
		}
		seen[key] = true
	}
}

func TestOptimizeMinimizeSystemsAndCost(t *testing.T) {
	e := mustEngine(t, miniKB())
	res, err := e.Optimize(Scenario{Require: []kb.Property{"congestion_control"}},
		[]Objective{{Kind: MinimizeSystems}, {Kind: MinimizeCost}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Feasible {
		t.Fatalf("infeasible: %v", res.Explanation)
	}
	// Minimum: linux + cubic = 2 systems.
	if res.ObjectiveValues[0] != 2 {
		t.Errorf("min systems: got %d, want 2 (%v)", res.ObjectiveValues[0], res.Design.Systems)
	}
	// Cheapest hardware: sw-fixed + nic-basic + srv-small.
	wantCost := int64(4*5000 + 48*300 + 48*4000)
	if res.ObjectiveValues[1] != wantCost {
		t.Errorf("min cost: got %d, want %d", res.ObjectiveValues[1], wantCost)
	}
	if res.Design.Hardware[kb.KindSwitch] != "sw-fixed" {
		t.Errorf("cheapest switch expected, got %s", res.Design.Hardware[kb.KindSwitch])
	}
}

func TestOptimizeLexicographicDominance(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Cost-first ordering may pick more systems if cheaper; system-first
	// must pick 2 systems even if hardware then costs more. Verify that
	// the first objective is never sacrificed.
	sysFirst, err := e.Optimize(Scenario{Require: []kb.Property{"detect_queue_length"}},
		[]Objective{{Kind: MinimizeSystems}, {Kind: MinimizeCost}})
	if err != nil {
		t.Fatal(err)
	}
	costFirst, err := e.Optimize(Scenario{Require: []kb.Property{"detect_queue_length"}},
		[]Objective{{Kind: MinimizeCost}, {Kind: MinimizeSystems}})
	if err != nil {
		t.Fatal(err)
	}
	if sysFirst.ObjectiveValues[0] > costFirst.ObjectiveValues[1] {
		t.Errorf("system-first found %d systems, cost-first %d — lexicographic order violated",
			sysFirst.ObjectiveValues[0], costFirst.ObjectiveValues[1])
	}
	if costFirst.ObjectiveValues[0] > sysFirst.ObjectiveValues[1] {
		t.Errorf("cost-first cost %d exceeds system-first cost %d",
			costFirst.ObjectiveValues[0], sysFirst.ObjectiveValues[1])
	}
}

func TestOptimizePreferOrder(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Need both telemetry props; sonata > marple on "monitoring".
	// Monitoring isn't exclusive so both deploy; penalties should then be
	// 0 since sonata (the better one) is deployed.
	res, err := e.Optimize(Scenario{
		Require: []kb.Property{"detect_queue_length", "flow_telemetry"},
	}, []Objective{{Kind: PreferOrder, Dimension: "monitoring"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Feasible {
		t.Fatalf("infeasible: %v", res.Explanation)
	}
	if res.ObjectiveValues[0] != 0 {
		t.Errorf("deploying the better system should zero the penalty, got %d",
			res.ObjectiveValues[0])
	}
	if _, err := e.Optimize(Scenario{}, []Objective{{Kind: PreferOrder, Dimension: "nope"}}); err == nil {
		t.Error("unknown dimension must error")
	}
}

func TestPerformanceBound(t *testing.T) {
	e := mustEngine(t, catalog.CaseStudy())
	sc := Scenario{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{"app_modifiable": true},
		Bounds: []PerformanceBound{
			{Dimension: "load_balancing", Reference: "packet-spraying"},
		},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	// Only packet-spraying itself qualifies (nothing beats it in the
	// load_balancing order).
	if !rep.Design.HasSystem("packet-spraying") {
		t.Errorf("bound must force packet-spraying: %v", rep.Design.Systems)
	}
	// NIC must then have large reorder buffers.
	nic := e.KB().HardwareByName(rep.Design.Hardware[kb.KindNIC])
	if !nic.HasCap("LARGE_REORDER_BUFFER") {
		t.Errorf("packet spraying requires reorder buffers; NIC %s lacks them", nic.Name)
	}
}

func TestFullCatalogCaseStudyFeasible(t *testing.T) {
	e := mustEngine(t, catalog.CaseStudy())
	rep, err := e.Synthesize(Scenario{Workloads: []string{"inference_app"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("case study must be feasible: %v", rep.Explanation)
	}
	d := rep.Design
	// All three needs covered: CC, LB, queue monitoring.
	hasCC, hasLB, hasMon := false, false, false
	for _, s := range d.Systems {
		sys := e.KB().SystemByName(s)
		for _, p := range sys.Solves {
			switch p {
			case "congestion_control":
				hasCC = true
			case "load_balancing":
				hasLB = true
			case "detect_queue_length":
				hasMon = true
			}
		}
	}
	if !hasCC || !hasLB || !hasMon {
		t.Errorf("needs uncovered (cc=%v lb=%v mon=%v): %v", hasCC, hasLB, hasMon, d.Systems)
	}
	if d.Metrics["cores_used"] > d.Metrics["cores_total"] {
		t.Errorf("core budget violated: %v", d.Metrics)
	}
}

func TestGreedyMinCoresCorrect(t *testing.T) {
	k := catalog.CaseStudy()
	g := NewGreedy(k)
	got := g.MinCores([]string{"inference_app"}, []string{"simon"})
	// inference_app peak 2800 + simon 2 cores/kflow × 50 kflows = 2900.
	if got != 2800+2*50 {
		t.Errorf("MinCores: got %d, want 2900", got)
	}
}

func TestGreedyFailsOnGlobalRule(t *testing.T) {
	// The §5.2 asymmetry: a scenario whose constraints interact globally.
	// Storage wants RoCE (needs pfc_enabled); the fabric has flooding
	// enabled. The rule pfc_no_flooding makes this infeasible — the SAT
	// engine says so; the greedy baseline happily produces a "design".
	k := catalog.Default()
	k.Workloads = append(k.Workloads, catalog.StorageWorkload())
	e := mustEngine(t, k)
	sc := Scenario{
		Workloads: []string{"storage_backend"},
		Context:   map[string]bool{"flooding_enabled": true, "pfc_enabled": true},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("SAT engine must detect the PFC/flooding conflict")
	}

	g := NewGreedy(k)
	d, ok := g.Synthesize(sc)
	if !ok {
		t.Skip("greedy gave up; acceptable but not the documented behaviour")
	}
	// The greedy design claims success; Check must refute it under the
	// same context.
	chk, err := e.Check(*d, sc)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Verdict != Infeasible {
		t.Error("greedy design unexpectedly passes the global check")
	}
}

func TestVerdictAndObjectiveStrings(t *testing.T) {
	if Feasible.String() != "FEASIBLE" || Infeasible.String() != "INFEASIBLE" {
		t.Error("verdict strings wrong")
	}
	if MinimizeCost.String() != "minimize_cost" || PreferOrder.String() != "prefer_order" {
		t.Error("objective strings wrong")
	}
	var ex *Explanation
	if ex.String() != "no explanation available" {
		t.Error("nil explanation string wrong")
	}
}

func TestUnknownWorkload(t *testing.T) {
	e := mustEngine(t, miniKB())
	if _, err := e.Synthesize(Scenario{Workloads: []string{"ghost"}}); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestNewRejectsInvalidKB(t *testing.T) {
	k := miniKB()
	k.Systems[0].Role = "bogus"
	if _, err := New(k); err == nil {
		t.Error("invalid KB must be rejected")
	}
}

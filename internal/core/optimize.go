package core

import (
	"fmt"

	"netarch/internal/cardinality"
	"netarch/internal/intlin"
	"netarch/internal/sat"
)

// OptimizeResult extends a feasible report with the achieved objective
// values, in priority order.
type OptimizeResult struct {
	Report
	// ObjectiveValues[i] is the minimum achieved for objectives[i].
	ObjectiveValues []int64
}

// Optimize finds a design minimizing the objectives lexicographically
// (the paper's "Optimize(latency > Hardware cost > monitoring)", Listing
// 3). Earlier objectives dominate: each level is minimized subject to all
// previous levels being at their minima.
func (e *Engine) Optimize(sc Scenario, objectives []Objective) (*OptimizeResult, error) {
	c, err := e.compile(&sc)
	if err != nil {
		return nil, err
	}
	assumps := c.assumptions()
	status := c.solver.SolveAssuming(assumps)
	if status == sat.Unsat {
		return &OptimizeResult{Report: Report{
			Verdict:     Infeasible,
			Explanation: e.minimizeCore(c, nil),
		}}, nil
	}
	if status != sat.Sat {
		return nil, fmt.Errorf("core: solver returned %v", status)
	}

	res := &OptimizeResult{Report: Report{Verdict: Feasible}}
	for _, obj := range objectives {
		val, err := c.minimizeObjective(obj, assumps)
		if err != nil {
			return nil, err
		}
		res.ObjectiveValues = append(res.ObjectiveValues, val)
	}
	// Re-solve under the accumulated bounds for the final witness.
	if c.solver.SolveAssuming(assumps) != sat.Sat {
		return nil, fmt.Errorf("core: optimum vanished after bounding (internal error)")
	}
	res.Design = c.designFromModel()
	res.SolverConflicts = c.solver.Stats().Conflicts
	res.SolverDecisions = c.solver.Stats().Decisions
	return res, nil
}

// minimizeObjective minimizes one objective level and permanently asserts
// its optimum, returning the achieved value.
func (c *compiled) minimizeObjective(obj Objective, assumps []sat.Lit) (int64, error) {
	switch obj.Kind {
	case MinimizeCost:
		return c.minimizeInt(c.costTotal, assumps)
	case MinimizeCores:
		return c.minimizeInt(c.coresUsed, assumps)
	case MinimizeSystems:
		lits := make([]sat.Lit, 0, len(c.sysLit))
		for i := range c.kb.Systems {
			lits = append(lits, c.sysLit[c.kb.Systems[i].Name])
		}
		return c.minimizeCount(lits, assumps)
	case PreferOrder:
		lits, err := c.orderPenaltyLits(obj.Dimension)
		if err != nil {
			return 0, err
		}
		if len(lits) == 0 {
			return 0, nil
		}
		return c.minimizeCount(lits, assumps)
	default:
		return 0, fmt.Errorf("core: unknown objective kind %v", obj.Kind)
	}
}

// minimizeInt binary-searches the minimum of an arithmetic term under the
// assumptions, then asserts term ≤ min permanently.
func (c *compiled) minimizeInt(term intlin.Int, assumps []sat.Lit) (int64, error) {
	if c.solver.SolveAssuming(assumps) != sat.Sat {
		return 0, fmt.Errorf("core: objective base became infeasible")
	}
	best := intlin.ValueOf(term, c.solver.Model())
	lo := int64(0)
	for lo < best {
		mid := lo + (best-lo)/2
		bound := c.arith.LeqConst(term, mid)
		switch c.solver.SolveAssuming(append(append([]sat.Lit(nil), assumps...), bound)) {
		case sat.Sat:
			best = intlin.ValueOf(term, c.solver.Model())
			if best > mid {
				best = mid // model read-back can only improve the bound
			}
		case sat.Unsat:
			lo = mid + 1
		default:
			return 0, fmt.Errorf("core: solver indeterminate during optimization")
		}
	}
	c.arith.Assert(c.arith.LeqConst(term, best))
	return best, nil
}

// minimizeCount minimizes the number of true literals via a totalizer and
// binary search, then asserts the optimum permanently.
func (c *compiled) minimizeCount(lits []sat.Lit, assumps []sat.Lit) (int64, error) {
	if c.solver.SolveAssuming(assumps) != sat.Sat {
		return 0, fmt.Errorf("core: objective base became infeasible")
	}
	tot := cardinality.NewTotalizer(c.solver, lits)
	best := int64(tot.CountTrue(c.solver.Model()))
	lo := int64(0)
	for lo < best {
		mid := lo + (best-lo)/2
		trial := append([]sat.Lit(nil), assumps...)
		if bl := tot.AtMostLit(int(mid)); bl != 0 {
			trial = append(trial, bl)
		}
		switch c.solver.SolveAssuming(trial) {
		case sat.Sat:
			if v := int64(tot.CountTrue(c.solver.Model())); v < mid {
				best = v
			} else {
				best = mid
			}
		case sat.Unsat:
			lo = mid + 1
		default:
			return 0, fmt.Errorf("core: solver indeterminate during optimization")
		}
	}
	tot.ConstrainAtMost(int(best))
	return best, nil
}

// orderPenaltyLits builds one penalty literal per "dominated deployment":
// deploying system w while leaving undeployed some same-role system b that
// is strictly better than w in the resolved order. Minimizing the count
// steers the design toward the order's maximal elements.
func (c *compiled) orderPenaltyLits(dimension string) ([]sat.Lit, error) {
	resolved, err := c.resolveOrder(dimension)
	if err != nil {
		return nil, err
	}
	if resolved == nil {
		return nil, fmt.Errorf("core: unknown order dimension %q", dimension)
	}
	var lits []sat.Lit
	for i := range c.kb.Systems {
		worse := &c.kb.Systems[i]
		for j := range c.kb.Systems {
			better := &c.kb.Systems[j]
			if i == j || better.Role != worse.Role {
				continue
			}
			if !resolved.Better(better.Name, worse.Name) {
				continue
			}
			// penalty ≥ (worse ∧ ¬better)
			p := sat.Lit(c.solver.NewVar())
			c.solver.AddClause(c.sysLit[worse.Name].Flip(), c.sysLit[better.Name], p)
			lits = append(lits, p)
		}
	}
	return lits, nil
}

package core

import (
	"context"
	"fmt"

	"netarch/internal/cardinality"
	"netarch/internal/intlin"
	"netarch/internal/sat"
)

// OptimizeResult extends a feasible report with the achieved objective
// values, in priority order.
type OptimizeResult struct {
	Report
	// ObjectiveValues[i] is the minimum achieved for objectives[i]. When
	// Approximate, the tail of the list may be missing (levels the
	// budget never reached) and the last present value may be an upper
	// bound rather than a certified optimum.
	ObjectiveValues []int64
	// Approximate reports that a resource budget tripped mid-
	// optimization: Design is the best witness found before the trip,
	// not a certified lexicographic optimum.
	Approximate bool
	// ApproxCause names the tripped budget when Approximate.
	ApproxCause string
}

// Optimize finds a design minimizing the objectives lexicographically
// (the paper's "Optimize(latency > Hardware cost > monitoring)", Listing
// 3). Earlier objectives dominate: each level is minimized subject to all
// previous levels being at their minima.
func (e *Engine) Optimize(sc Scenario, objectives []Objective) (*OptimizeResult, error) {
	return e.OptimizeCtx(context.Background(), sc, objectives, Budget{})
}

// OptimizeCtx is Optimize under a context and resource budget. Each
// objective level runs as its own budget phase. If a budget trips after
// feasibility is established, the best design and bounds proven so far
// are returned with Approximate set — the optimizer degrades, it does
// not discard work. Only an exhaustion before any verdict yields
// *ErrResourceExhausted.
func (e *Engine) OptimizeCtx(ctx context.Context, sc Scenario, objectives []Objective, b Budget) (*OptimizeResult, error) {
	c, err := e.instance(&sc)
	if err != nil {
		return nil, err
	}
	g := govern(ctx, "optimize", b, c.solver)
	defer g.done()
	assumps := c.assumptions()
	switch status := c.solver.SolveAssuming(assumps); status {
	case sat.Sat:
	case sat.Unsat:
		res := &OptimizeResult{Report: Report{
			Verdict:     Infeasible,
			Explanation: e.minimizeCore(c, nil, g, false),
		}}
		res.setSpent(g.spent())
		return res, nil
	default:
		return nil, g.exhausted()
	}

	res := &OptimizeResult{Report: Report{Verdict: Feasible}}
	c.witness = c.designFromModel()
	for _, obj := range objectives {
		g.phase() // fresh allowance per objective level
		val, exact, err := c.minimizeObjective(obj, assumps)
		if err != nil {
			return nil, err
		}
		if val >= 0 {
			res.ObjectiveValues = append(res.ObjectiveValues, val)
		}
		if !exact {
			res.Approximate = true
			res.ApproxCause, _ = g.cause()
			break
		}
	}
	if !res.Approximate {
		// Re-solve under the accumulated bounds for the final witness.
		g.phase()
		switch c.solver.SolveAssuming(assumps) {
		case sat.Sat:
			c.witness = c.designFromModel()
		case sat.Unsat:
			return nil, fmt.Errorf("core: optimum vanished after bounding (internal error)")
		default:
			// Budget tripped on the witness re-solve: the last snapshot
			// from the search is still a valid (optimal-valued) design.
			res.Approximate = true
			res.ApproxCause, _ = g.cause()
		}
	}
	res.Design = c.witness
	res.setSpent(g.spent())
	return res, nil
}

// minimizeObjective minimizes one objective level and permanently asserts
// its optimum, returning the achieved value. The bool result reports
// exactness: false means a resource budget stopped the search — the
// returned value (if ≥ 0) is a witnessed upper bound, and -1 means the
// level never established any value.
func (c *compiled) minimizeObjective(obj Objective, assumps []sat.Lit) (int64, bool, error) {
	switch obj.Kind {
	case MinimizeCost:
		return c.minimizeInt(c.costTotal, assumps)
	case MinimizeCores:
		return c.minimizeInt(c.coresUsed, assumps)
	case MinimizeSystems:
		lits := make([]sat.Lit, 0, len(c.sysLit))
		for i := range c.kb.Systems {
			lits = append(lits, c.sysLit[c.kb.Systems[i].Name])
		}
		return c.minimizeCount(lits, assumps)
	case PreferOrder:
		lits, err := c.orderPenaltyLits(obj.Dimension)
		if err != nil {
			return 0, false, err
		}
		if len(lits) == 0 {
			return 0, true, nil
		}
		return c.minimizeCount(lits, assumps)
	default:
		return 0, false, fmt.Errorf("core: unknown objective kind %v", obj.Kind)
	}
}

// minimizeInt binary-searches the minimum of an arithmetic term under the
// assumptions, then asserts term ≤ best permanently. On a budget trip the
// best witnessed value so far is asserted and returned as inexact.
func (c *compiled) minimizeInt(term intlin.Int, assumps []sat.Lit) (int64, bool, error) {
	switch c.solver.SolveAssuming(assumps) {
	case sat.Sat:
	case sat.Unknown:
		return -1, false, nil // budget tripped before any value was seen
	default:
		return 0, false, fmt.Errorf("core: objective base became infeasible")
	}
	best := intlin.ValueOf(term, c.solver.Model())
	c.witness = c.designFromModel()
	lo := int64(0)
	for lo < best {
		mid := lo + (best-lo)/2
		bound := c.arith.LeqConst(term, mid)
		switch c.solver.SolveAssuming(append(append([]sat.Lit(nil), assumps...), bound)) {
		case sat.Sat:
			if v := intlin.ValueOf(term, c.solver.Model()); v < mid {
				best = v // model read-back can only improve the bound
			} else {
				best = mid
			}
			c.witness = c.designFromModel()
		case sat.Unsat:
			lo = mid + 1
		default:
			// Budget tripped mid-search: keep the witnessed upper bound.
			c.arith.Assert(c.arith.LeqConst(term, best))
			return best, false, nil
		}
	}
	c.arith.Assert(c.arith.LeqConst(term, best))
	return best, true, nil
}

// minimizeCount minimizes the number of true literals via a totalizer and
// binary search, then asserts the optimum permanently. Degrades like
// minimizeInt on a budget trip.
func (c *compiled) minimizeCount(lits []sat.Lit, assumps []sat.Lit) (int64, bool, error) {
	switch c.solver.SolveAssuming(assumps) {
	case sat.Sat:
	case sat.Unknown:
		return -1, false, nil
	default:
		return 0, false, fmt.Errorf("core: objective base became infeasible")
	}
	tot := cardinality.NewTotalizer(c.solver, lits)
	best := int64(tot.CountTrue(c.solver.Model()))
	c.witness = c.designFromModel()
	lo := int64(0)
	for lo < best {
		mid := lo + (best-lo)/2
		trial := append([]sat.Lit(nil), assumps...)
		if bl := tot.AtMostLit(int(mid)); bl != 0 {
			trial = append(trial, bl)
		}
		switch c.solver.SolveAssuming(trial) {
		case sat.Sat:
			if v := int64(tot.CountTrue(c.solver.Model())); v < mid {
				best = v
			} else {
				best = mid
			}
			c.witness = c.designFromModel()
		case sat.Unsat:
			lo = mid + 1
		default:
			tot.ConstrainAtMost(int(best))
			return best, false, nil
		}
	}
	tot.ConstrainAtMost(int(best))
	return best, true, nil
}

// orderPenaltyLits builds one penalty literal per "dominated deployment":
// deploying system w while leaving undeployed some same-role system b that
// is strictly better than w in the resolved order. Minimizing the count
// steers the design toward the order's maximal elements.
func (c *compiled) orderPenaltyLits(dimension string) ([]sat.Lit, error) {
	resolved, err := c.resolveOrder(dimension)
	if err != nil {
		return nil, err
	}
	if resolved == nil {
		return nil, fmt.Errorf("core: unknown order dimension %q", dimension)
	}
	var lits []sat.Lit
	for i := range c.kb.Systems {
		worse := &c.kb.Systems[i]
		for j := range c.kb.Systems {
			better := &c.kb.Systems[j]
			if i == j || better.Role != worse.Role {
				continue
			}
			if !resolved.Better(better.Name, worse.Name) {
				continue
			}
			// penalty ≥ (worse ∧ ¬better)
			p := sat.Lit(c.solver.NewVar())
			c.solver.AddClause(c.sysLit[worse.Name].Flip(), c.sysLit[better.Name], p)
			lits = append(lits, p)
		}
	}
	return lits, nil
}

package core

import (
	"context"
	"fmt"

	"netarch/internal/intlin"
	"netarch/internal/maxsat"
	"netarch/internal/sat"
)

// OptimizeStrategy selects the MaxSAT descent strategy for Optimize and
// Pareto queries; see the maxsat package for the trade-off.
type OptimizeStrategy = maxsat.Strategy

// Optimization strategies.
const (
	// StrategyBinary bisects the objective range (the default): budget
	// trips leave tight two-sided bounds.
	StrategyBinary = maxsat.BinarySearch
	// StrategyLinear descends SAT-UNSAT: every step improves the
	// witness, but the lower bound stays trivial until the final Unsat.
	StrategyLinear = maxsat.LinearSatUnsat
)

// SetOptimizeStrategy sets the engine-wide default MaxSAT strategy used
// by Optimize/OptimizeCtx and Pareto/ParetoCtx. Safe to call
// concurrently; queries in flight keep the strategy they started with.
// Per-query overrides go through OptimizeWithStrategyCtx.
func (e *Engine) SetOptimizeStrategy(s OptimizeStrategy) {
	e.optStrategy.Store(int32(s))
}

// OptimizeStrategy reports the engine-wide default MaxSAT strategy.
func (e *Engine) OptimizeStrategy() OptimizeStrategy {
	return OptimizeStrategy(e.optStrategy.Load())
}

// ParseOptimizeStrategy parses the CLI/serve strategy spelling: "binary"
// (or empty, the default) and "linear".
func ParseOptimizeStrategy(s string) (OptimizeStrategy, error) {
	return maxsat.ParseStrategy(s)
}

// OptimizeResult extends a feasible report with the achieved objective
// values, in priority order.
type OptimizeResult struct {
	Report
	// ObjectiveValues[i] is the best witnessed value for objectives[i].
	// Every certified level's value is the exact optimum; when
	// Approximate, the tail of the list may be missing (levels the
	// budget never reached) and the last present value is an upper
	// bound on that level's optimum.
	ObjectiveValues []int64
	// LowerBounds[i] is the proven lower bound for objectives[i],
	// parallel to ObjectiveValues: every value below it was refuted by
	// an Unsat verdict (or is below the trivial floor 0). On a
	// certified level LowerBounds[i] == ObjectiveValues[i]; under a
	// budget trip the last level may be loose — the true optimum lies
	// in [LowerBounds[i], ObjectiveValues[i]]. That bracket is the
	// bounded-suboptimality contract: a degraded optimization is never
	// just "here is some design", it is "the optimum is in this box".
	LowerBounds []int64
	// Approximate reports that a resource budget tripped mid-
	// optimization: Design is the best witness found before the trip,
	// not a certified lexicographic optimum.
	Approximate bool
	// ApproxCause names the tripped budget when Approximate.
	ApproxCause string
}

// Optimize finds a design minimizing the objectives lexicographically
// (the paper's "Optimize(latency > Hardware cost > monitoring)", Listing
// 3). Earlier objectives dominate: each level is minimized subject to all
// previous levels being at their minima. The result is certified: every
// level's value is a MaxSAT optimum, not a heuristic.
func (e *Engine) Optimize(sc Scenario, objectives []Objective) (*OptimizeResult, error) {
	return e.OptimizeCtx(context.Background(), sc, objectives, Budget{})
}

// OptimizeCtx is Optimize under a context and resource budget, using the
// engine's default strategy (SetOptimizeStrategy). Each objective level
// runs as its own budget phase. If a budget trips after feasibility is
// established, the best design and bounds proven so far are returned
// with Approximate set — the optimizer degrades, it does not discard
// work. Only an exhaustion before any verdict yields
// *ErrResourceExhausted.
func (e *Engine) OptimizeCtx(ctx context.Context, sc Scenario, objectives []Objective, b Budget) (*OptimizeResult, error) {
	return e.OptimizeWithStrategyCtx(ctx, sc, objectives, b, e.OptimizeStrategy())
}

// OptimizeWithStrategyCtx is OptimizeCtx with an explicit per-query
// strategy (the serve layer threads the request's strategy here so
// concurrent requests cannot race an engine-wide knob).
func (e *Engine) OptimizeWithStrategyCtx(ctx context.Context, sc Scenario, objectives []Objective, b Budget, strat OptimizeStrategy) (*OptimizeResult, error) {
	c, err := e.instance(&sc)
	if err != nil {
		return nil, err
	}
	g := govern(ctx, "optimize", b, c.solver)
	defer g.done()
	if e.warmStart.Load() {
		if p := c.warmProfile(); p != nil {
			c.solver.ApplyProfile(p)
		}
	}
	assumps := c.assumptions()
	switch status := c.solver.SolveAssuming(assumps); status {
	case sat.Sat:
	case sat.Unsat:
		res := &OptimizeResult{Report: Report{
			Verdict:     Infeasible,
			Explanation: e.minimizeCore(c, nil, g, false),
		}}
		res.setSpent(g.spent())
		return res, nil
	default:
		return nil, g.exhausted()
	}
	witness := c.designFromModel()

	specs, err := c.objectiveSpecs(objectives)
	if err != nil {
		return nil, err
	}
	objs := make([]maxsat.Objective, len(specs))
	for i := range specs {
		objs[i] = specs[i].instantiate(c)
	}
	lex, err := maxsat.Lexicographic(c.solver, objs, maxsat.Options{
		Strategy: strat,
		Hard:     assumps,
		Phase:    g.phase,
	})
	if err != nil {
		// Feasibility was just established on this solver, so the hard
		// side cannot be unsatisfiable; surface the inconsistency.
		return nil, fmt.Errorf("core: optimize lost feasibility mid-search: %w", err)
	}
	res := &OptimizeResult{Report: Report{Verdict: Feasible}}
	res.ObjectiveValues = lex.Values
	res.LowerBounds = lex.LowerBounds
	if !lex.Exact {
		res.Approximate = true
		res.ApproxCause, _ = g.cause()
	}
	if lex.Model != nil {
		witness = c.designFrom(lex.Model)
	}
	res.Design = witness
	if e.warmStart.Load() {
		c.storeWarmProfile()
	}
	res.setSpent(g.spent())
	return res, nil
}

// objectiveSpec is one optimization level lowered onto a compiled
// instance: either an arithmetic term that already lives in the base
// circuits (cost, cores, power, ports) or a freshly built counting
// network (systems, order penalties). Count circuits are emitted into
// the instance the spec was built on; their bound literals are pure
// lookups afterwards, so a spec is safe to instantiate on any fork of
// that instance (the Pareto cube workers rely on this).
type objectiveSpec struct {
	term  intlin.Int             // int-backed objectives
	isInt bool                   // term valid
	count *maxsat.CountObjective // count-backed objectives
}

// instantiate binds the spec to a fork's solver: int-backed objectives
// get the fork's arithmetic builder (comparator gates must land in the
// fork, not the template), count-backed objectives are shared as-is.
func (sp objectiveSpec) instantiate(f *compiled) maxsat.Objective {
	if sp.isInt {
		return maxsat.NewInt(f.arith, sp.term)
	}
	return sp.count
}

// objectiveSpecs lowers the objective list onto c, building whatever
// circuits the levels need (totalizers, order-penalty literals). Call it
// on the instance whose clones will be searched — before cloning.
func (c *compiled) objectiveSpecs(objectives []Objective) ([]objectiveSpec, error) {
	specs := make([]objectiveSpec, len(objectives))
	for i, obj := range objectives {
		switch obj.Kind {
		case MinimizeCost:
			specs[i] = objectiveSpec{term: c.costTotal, isInt: true}
		case MinimizeCores:
			specs[i] = objectiveSpec{term: c.coresUsed, isInt: true}
		case MinimizePower:
			specs[i] = objectiveSpec{term: c.powerTotal, isInt: true}
		case MinimizePorts:
			specs[i] = objectiveSpec{term: c.portTotal, isInt: true}
		case MinimizeSystems:
			lits := make([]sat.Lit, 0, len(c.sysLit))
			for j := range c.kb.Systems {
				lits = append(lits, c.sysLit[c.kb.Systems[j].Name])
			}
			specs[i] = objectiveSpec{count: maxsat.NewCount(c.solver, lits)}
		case PreferOrder:
			lits, err := c.orderPenaltyLits(obj.Dimension)
			if err != nil {
				return nil, err
			}
			specs[i] = objectiveSpec{count: maxsat.NewCount(c.solver, lits)}
		default:
			return nil, fmt.Errorf("core: unknown objective kind %v", obj.Kind)
		}
	}
	return specs, nil
}

// ParseObjective parses the CLI/serve spelling of one objective level:
// "cost", "cores", "systems", "power", "ports", "latency" (shorthand
// for the tail_latency preference order), or "order:<dimension>".
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "cost":
		return Objective{Kind: MinimizeCost}, nil
	case "cores":
		return Objective{Kind: MinimizeCores}, nil
	case "systems":
		return Objective{Kind: MinimizeSystems}, nil
	case "power":
		return Objective{Kind: MinimizePower}, nil
	case "ports":
		return Objective{Kind: MinimizePorts}, nil
	case "latency":
		// The latency rule of thumb: prefer designs maximal in the
		// tail_latency partial order (Figure 1's latency panel).
		return Objective{Kind: PreferOrder, Dimension: "tail_latency"}, nil
	}
	if len(name) > 6 && name[:6] == "order:" {
		return Objective{Kind: PreferOrder, Dimension: name[6:]}, nil
	}
	return Objective{}, fmt.Errorf("core: unknown objective %q (want cost, cores, systems, power, ports, latency, or order:<dimension>)", name)
}

// orderPenaltyLits builds one penalty literal per "dominated deployment":
// deploying system w while leaving undeployed some same-role system b that
// is strictly better than w in the resolved order. Minimizing the count
// steers the design toward the order's maximal elements.
func (c *compiled) orderPenaltyLits(dimension string) ([]sat.Lit, error) {
	resolved, err := c.resolveOrder(dimension)
	if err != nil {
		return nil, err
	}
	if resolved == nil {
		return nil, fmt.Errorf("core: unknown order dimension %q", dimension)
	}
	var lits []sat.Lit
	for i := range c.kb.Systems {
		worse := &c.kb.Systems[i]
		for j := range c.kb.Systems {
			better := &c.kb.Systems[j]
			if i == j || better.Role != worse.Role {
				continue
			}
			if !resolved.Better(better.Name, worse.Name) {
				continue
			}
			// penalty ≥ (worse ∧ ¬better)
			p := sat.Lit(c.solver.NewVar())
			c.solver.AddClause(c.sysLit[worse.Name].Flip(), c.sysLit[better.Name], p)
			lits = append(lits, p)
		}
	}
	return lits, nil
}

package core

import "testing"

// TestWarmQueryAllocBudget pins the allocation budget of a warm
// cache-hit query. A warm Synthesize clones the compiled base (the
// arena makes that a handful of slab copies, not one allocation per
// clause) and re-solves under assumptions, so its allocation count is
// small and stable — measured ~340 allocs/run on the mini KB. The
// budget below has ~1.5x headroom for incidental churn; blowing past
// it means a structural regression (per-clause heap objects creeping
// back, clone losing its slab packing, per-query encode work on the
// warm path) that BenchmarkQuery1 would only surface at the next
// manual bench run.
func TestWarmQueryAllocBudget(t *testing.T) {
	const budget = 500

	e := mustEngine(t, miniKB())
	sc := Scenario{}
	for i := 0; i < 2; i++ { // warm: compile once, settle caches
		if _, err := e.Synthesize(sc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		rep, err := e.Synthesize(sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != Feasible {
			t.Fatal("warm query must stay feasible")
		}
	})
	if allocs > budget {
		t.Fatalf("warm cache-hit Synthesize allocated %.0f allocs/run; budget is %d", allocs, budget)
	}
}

package core

import (
	"errors"
	"testing"

	"netarch/internal/maxsat"
	"netarch/internal/sat"
)

// FuzzMaxSATBounds throws random soft-clause weight vectors at the
// MaxSAT engine on the small fixed miniKB catalog and checks the two
// halves of the optimality contract on every input:
//
//   - achievable: the returned model really evaluates to the claimed
//     optimum (re-checked through Objective.Eval, not the search state);
//   - unbeatable: assuming the bound circuit at optimum−1 is Unsat —
//     the decrement is refuted by the solver itself, a certificate
//     independent of the descent that produced the value.
//
// Both strategies are exercised (the fuzzer flips the boolean freely).
// Wired into `make fuzz-smoke` so every verify gate shakes it briefly.
func FuzzMaxSATBounds(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, true)
	f.Add([]byte{255, 1, 255, 1, 255, 1, 255, 1}, false)
	f.Add([]byte{13}, true)
	f.Add([]byte{7, 7, 7, 200, 200}, true)
	f.Fuzz(func(t *testing.T, data []byte, linear bool) {
		if len(data) == 0 {
			return
		}
		e, err := New(miniKB())
		if err != nil {
			t.Fatal(err)
		}
		sc := Scenario{}
		c, err := e.instance(&sc)
		if err != nil {
			t.Fatal(err)
		}
		// One weight per system, driven by the fuzz input. Weights are
		// clamped to a small range so the bound circuits stay shallow;
		// zero weights are legal and must be ignored by the encoding.
		lits := make([]sat.Lit, len(c.sysNames))
		weights := make([]int64, len(c.sysNames))
		for i, name := range c.sysNames {
			lits[i] = c.sysLit[name]
			weights[i] = int64(data[i%len(data)]) % 29
		}
		obj, err := maxsat.NewWeighted(c.arith, lits, weights)
		if err != nil {
			t.Fatal(err)
		}
		strat := maxsat.BinarySearch
		if linear {
			strat = maxsat.LinearSatUnsat
		}
		hard := c.assumptions()
		res, err := maxsat.Minimize(c.solver, obj, maxsat.Options{Strategy: strat, Hard: hard})
		if errors.Is(err, maxsat.ErrInfeasible) {
			t.Fatal("empty scenario must be feasible regardless of weights")
		}
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || !res.Witnessed {
			t.Fatalf("unbudgeted minimize must certify: %+v", res)
		}
		if res.LowerBound != res.Value {
			t.Fatalf("certified bracket must be tight: [%d, %d]", res.LowerBound, res.Value)
		}
		// Achievable: the model evaluates to the claimed optimum.
		if got := obj.Eval(res.Model); got != res.Value {
			t.Fatalf("model evaluates to %d, claimed optimum %d (weights %v)",
				got, res.Value, weights)
		}
		// Unbeatable: one less is refutable.
		if res.Value > 0 {
			bound := obj.BoundLit(res.Value - 1)
			if bound == 0 {
				t.Fatalf("bound circuit vanished at %d", res.Value-1)
			}
			if st := c.solver.SolveAssuming(append(hard, bound)); st != sat.Unsat {
				t.Fatalf("optimum %d is beatable: bound %d solved %v (weights %v)",
					res.Value, res.Value-1, st, weights)
			}
		}
	})
}

package core

import (
	"context"
	"fmt"
	"testing"

	"netarch/internal/kb"
)

// optimize_diff_test.go is the §5.1-style optimality differential for
// the MaxSAT optimizer: every certified answer is checked against the
// brute-force oracle (oracle.go), which searches by exhaustive
// projected-model enumeration and evaluates objectives by plain KB
// arithmetic — two independent search algorithms AND two independent
// evaluation paths. The sweep covers both descent strategies, worker
// counts 1/2/8 (the Pareto cube merge must be schedule-independent),
// and cold vs warm-started solvers. Metamorphic properties follow:
// objective scaling/translation invariance, dominated-SKU frontier
// no-ops, and bound-tightening monotonicity.

const oracleLimit = 200000

// diffKB extends miniKB with power-draw and port-count quantities so
// the power and ports objectives have signal, deliberately arranged so
// the cheapest hardware is NOT the most power-frugal (cost/power trade
// off, giving the Pareto tests a multi-point frontier).
func diffKB() *kb.KB {
	k := miniKB()
	quants := map[string]map[kb.Resource]int64{
		"sw-fixed":  {kb.ResPowerW: 400, kb.ResPortCount: 64},
		"sw-ecn":    {kb.ResPowerW: 250, kb.ResPortCount: 48},
		"sw-p4":     {kb.ResPowerW: 800, kb.ResPortCount: 32},
		"sw-p4-big": {kb.ResPowerW: 550, kb.ResPortCount: 64},
		"nic-basic": {kb.ResPowerW: 15},
		"nic-poll":  {kb.ResPowerW: 40},
		"srv-small": {kb.ResPowerW: 300},
		"srv-big":   {kb.ResPowerW: 900},
	}
	for i := range k.Hardware {
		for r, v := range quants[k.Hardware[i].Name] {
			k.Hardware[i].Quant[r] = v
		}
	}
	return k
}

// diffCase is one scenario × objective-list differential row.
type diffCase struct {
	name string
	sc   Scenario
	objs []Objective
}

func diffCases() []diffCase {
	return []diffCase{
		{name: "cost", sc: Scenario{},
			objs: []Objective{{Kind: MinimizeCost}}},
		{name: "power-then-cost",
			sc:   Scenario{Require: []kb.Property{"congestion_control"}},
			objs: []Objective{{Kind: MinimizePower}, {Kind: MinimizeCost}}},
		{name: "systems-cost-ports",
			sc:   Scenario{Require: []kb.Property{"detect_queue_length"}},
			objs: []Objective{{Kind: MinimizeSystems}, {Kind: MinimizeCost}, {Kind: MinimizePorts}}},
		{name: "order-then-power",
			sc:   Scenario{Require: []kb.Property{"flow_telemetry"}},
			objs: []Objective{{Kind: PreferOrder, Dimension: "monitoring"}, {Kind: MinimizePower}}},
		{name: "cores-under-cost-cap",
			sc:   Scenario{Require: []kb.Property{"congestion_control"}, MaxCostUSD: 500000},
			objs: []Objective{{Kind: MinimizeCores}, {Kind: MinimizeCost}}},
	}
}

// TestOptimizeDifferential sweeps strategy × workers × cold/warm and
// demands the MaxSAT optimum equal the brute-force argmin exactly, with
// every level certified (LowerBounds == ObjectiveValues).
func TestOptimizeDifferential(t *testing.T) {
	oracleEng := mustEngine(t, diffKB())
	cold := mustEngine(t, diffKB())
	cold.SetWarmStart(false)
	warm := mustEngine(t, diffKB())
	warm.SetWarmStart(true)
	for _, tc := range diffCases() {
		want, err := oracleEng.BruteOptimize(tc.sc, tc.objs, oracleLimit)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.name, err)
		}
		if !want.Feasible {
			t.Fatalf("%s: oracle says infeasible; differential rows must be feasible", tc.name)
		}
		for _, strat := range []OptimizeStrategy{StrategyLinear, StrategyBinary} {
			for _, workers := range []int{1, 2, 8} {
				for _, eng := range []struct {
					temp string
					e    *Engine
				}{{"cold", cold}, {"warm", warm}} {
					name := fmt.Sprintf("%s/%s/w%d/%s", tc.name, strat, workers, eng.temp)
					eng.e.SetWorkers(workers)
					if eng.temp == "warm" {
						// Prime the warm-start profile; the checked run rides it.
						if _, err := eng.e.OptimizeWithStrategyCtx(context.Background(), tc.sc, tc.objs, Budget{}, strat); err != nil {
							t.Fatalf("%s: priming: %v", name, err)
						}
					}
					res, err := eng.e.OptimizeWithStrategyCtx(context.Background(), tc.sc, tc.objs, Budget{}, strat)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if res.Verdict != Feasible || res.Approximate {
						t.Fatalf("%s: want certified feasible, got verdict=%v approx=%v",
							name, res.Verdict, res.Approximate)
					}
					if !eqVec(res.ObjectiveValues, want.Values) {
						t.Errorf("%s: optimum %v, oracle argmin %v", name, res.ObjectiveValues, want.Values)
					}
					if !eqVec(res.LowerBounds, res.ObjectiveValues) {
						t.Errorf("%s: certified run must have tight bounds: lb %v, values %v",
							name, res.LowerBounds, res.ObjectiveValues)
					}
					// The witness must actually achieve the claimed vector:
					// re-check it through the independent evaluators.
					if chk, err := eng.e.Check(*res.Design, tc.sc); err != nil || chk.Verdict != Feasible {
						t.Errorf("%s: optimal witness fails Check: %v %v", name, err, chk)
					}
				}
			}
		}
	}
}

// TestParetoDifferential demands the Pareto query return exactly the
// oracle's non-dominated vector set, for both strategies and worker
// counts 1/2/8 — the same sorted frontier regardless of scheduling.
func TestParetoDifferential(t *testing.T) {
	oracleEng := mustEngine(t, diffKB())
	e := mustEngine(t, diffKB())
	cases := []diffCase{
		{name: "cost-power", sc: Scenario{},
			objs: []Objective{{Kind: MinimizeCost}, {Kind: MinimizePower}}},
		{name: "cost-power-cc",
			sc:   Scenario{Require: []kb.Property{"congestion_control"}},
			objs: []Objective{{Kind: MinimizeCost}, {Kind: MinimizePower}}},
		{name: "systems-power-mon",
			sc:   Scenario{Require: []kb.Property{"detect_queue_length"}},
			objs: []Objective{{Kind: MinimizeSystems}, {Kind: MinimizePower}, {Kind: MinimizeCost}}},
	}
	for _, tc := range cases {
		want, err := oracleEng.BruteOptimize(tc.sc, tc.objs, oracleLimit)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.name, err)
		}
		if len(want.Frontier) < 2 {
			t.Fatalf("%s: degenerate oracle frontier %v — pick a scenario with a real trade-off",
				tc.name, want.Frontier)
		}
		for _, strat := range []OptimizeStrategy{StrategyLinear, StrategyBinary} {
			for _, workers := range []int{1, 2, 8} {
				name := fmt.Sprintf("%s/%s/w%d", tc.name, strat, workers)
				e.SetWorkers(workers)
				res, err := e.ParetoWithStrategyCtx(context.Background(), tc.sc, tc.objs, Budget{}, strat)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Complete {
					t.Fatalf("%s: unbudgeted pareto must be complete", name)
				}
				got := make([][]int64, len(res.Points))
				for i, p := range res.Points {
					got[i] = p.Values
					// Every frontier witness must be compliant.
					if chk, err := e.Check(*p.Design, tc.sc); err != nil || chk.Verdict != Feasible {
						t.Errorf("%s: frontier witness %v fails Check", name, p.Values)
					}
				}
				if !eqFrontier(got, want.Frontier) {
					t.Errorf("%s: frontier %v, oracle %v", name, got, want.Frontier)
				}
			}
		}
	}
}

// TestMetamorphicCostScaling: multiplying every SKU price by a constant
// scales the cost optimum by the same constant and leaves the power
// optimum untouched.
func TestMetamorphicCostScaling(t *testing.T) {
	const k = 7
	objs := []Objective{{Kind: MinimizeCost}, {Kind: MinimizePower}}
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	base, err := mustEngine(t, diffKB()).Optimize(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	scaled := diffKB()
	for i := range scaled.Hardware {
		scaled.Hardware[i].CostUSD *= k
	}
	got, err := mustEngine(t, scaled).Optimize(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjectiveValues[0] != k*base.ObjectiveValues[0] {
		t.Errorf("cost optimum must scale ×%d: base %d, scaled %d",
			k, base.ObjectiveValues[0], got.ObjectiveValues[0])
	}
	if got.ObjectiveValues[1] != base.ObjectiveValues[1] {
		t.Errorf("power optimum must be invariant under cost scaling: %d vs %d",
			base.ObjectiveValues[1], got.ObjectiveValues[1])
	}
}

// TestMetamorphicCostTranslation: adding Δ to every switch SKU shifts
// any design's total cost by exactly Δ×numSwitches, so the optimum
// translates by that amount and the optimal witness class is unchanged.
func TestMetamorphicCostTranslation(t *testing.T) {
	const delta = 1234
	objs := []Objective{{Kind: MinimizeCost}}
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	base, err := mustEngine(t, diffKB()).Optimize(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	shifted := diffKB()
	nsw := int64(sc.numSwitches())
	for i := range shifted.Hardware {
		if shifted.Hardware[i].Kind == kb.KindSwitch {
			shifted.Hardware[i].CostUSD += delta
		}
	}
	got, err := mustEngine(t, shifted).Optimize(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.ObjectiveValues[0] + delta*nsw; got.ObjectiveValues[0] != want {
		t.Errorf("cost optimum must translate by Δ×nsw: got %d, want %d",
			got.ObjectiveValues[0], want)
	}
}

// TestMetamorphicDominatedSKU: adding a switch strictly worse than an
// existing one on every axis (same caps, higher cost, higher power,
// fewer ports) must not change the Pareto frontier.
func TestMetamorphicDominatedSKU(t *testing.T) {
	objs := []Objective{{Kind: MinimizeCost}, {Kind: MinimizePower}}
	sc := Scenario{}
	base, err := mustEngine(t, diffKB()).Pareto(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	worse := diffKB()
	worse.Hardware = append(worse.Hardware, kb.Hardware{
		// Dominated by sw-fixed: no extra caps, costs more, burns more.
		Name: "sw-lemon", Kind: kb.KindSwitch,
		Quant: map[kb.Resource]int64{
			kb.ResBandwidthGbps: 100, kb.ResPowerW: 999, kb.ResPortCount: 8,
		},
		CostUSD: 50000,
	})
	got, err := mustEngine(t, worse).Pareto(sc, objs)
	if err != nil {
		t.Fatal(err)
	}
	bv := make([][]int64, len(base.Points))
	for i, p := range base.Points {
		bv[i] = p.Values
	}
	gv := make([][]int64, len(got.Points))
	for i, p := range got.Points {
		gv[i] = p.Values
	}
	if !eqFrontier(gv, bv) {
		t.Errorf("dominated SKU changed the frontier: %v vs %v", gv, bv)
	}
}

// TestMetamorphicBoundTightening: shrinking MaxCostUSD can only worsen
// (never improve) the optimum of any other objective.
func TestMetamorphicBoundTightening(t *testing.T) {
	e := mustEngine(t, diffKB())
	objs := []Objective{{Kind: MinimizePower}}
	sc := Scenario{Require: []kb.Property{"detect_queue_length"}}
	prev := int64(-1)
	// Descending cost caps, loosest first; 0 means unlimited.
	for _, cap := range []int64{0, 2000000, 1000000, 700000} {
		sc.MaxCostUSD = cap
		res, err := e.Optimize(sc, objs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Feasible {
			// A cap can price the scenario out entirely; that ends the chain.
			break
		}
		if res.ObjectiveValues[0] < prev {
			t.Errorf("cap %d improved the power optimum: %d < %d",
				cap, res.ObjectiveValues[0], prev)
		}
		prev = res.ObjectiveValues[0]
	}
	if prev < 0 {
		t.Fatal("no cap in the chain was feasible")
	}
}

func eqVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqFrontier(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eqVec(a[i], b[i]) {
			return false
		}
	}
	return true
}

package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"netarch/internal/catalog"
	"netarch/internal/kb"
	"netarch/internal/sat"
)

// randomScenario draws a scenario over the case-study KB.
func randomScenario(r *rand.Rand) Scenario {
	props := []kb.Property{
		"congestion_control", "load_balancing", "detect_queue_length",
		"flow_telemetry", "low_latency_stack", "packet_filtering",
		"network_virtualization", "tail_latency_control", "reliable_transport",
	}
	atoms := []string{
		"deadline_tight", "app_modifiable", "wan_dc_mix",
		"flooding_enabled", "pfc_enabled", "scavenger_ok", "deep_queues",
	}
	sc := Scenario{
		Workloads: []string{"inference_app"},
		Context:   map[string]bool{},
	}
	for _, a := range atoms {
		if r.Intn(2) == 0 {
			sc.Context[a] = r.Intn(2) == 0
		}
	}
	for _, i := range r.Perm(len(props))[:1+r.Intn(3)] {
		sc.Require = append(sc.Require, props[i])
	}
	return sc
}

// TestQuickSynthesizedDesignsPassCheck is the engine's self-consistency
// property: every witness returned by Synthesize must be accepted by
// Check under the same scenario, and must actually cover every required
// property with a deployed, useful system.
func TestQuickSynthesizedDesignsPassCheck(t *testing.T) {
	k := catalog.CaseStudy()
	e := mustEngine(t, k)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := randomScenario(r)
		rep, err := e.Synthesize(sc)
		if err != nil {
			return false
		}
		if rep.Verdict != Feasible {
			return len(rep.Explanation.Conflicts) > 0 // explanation required
		}
		chk, err := e.Check(*rep.Design, sc)
		if err != nil {
			return false
		}
		if chk.Verdict != Feasible {
			t.Logf("witness rejected: %v\ndesign: %+v", chk.Explanation, rep.Design)
			return false
		}
		// Every required property is solved by a deployed useful system.
		for _, p := range sc.Require {
			covered := false
			for _, name := range rep.Design.Systems {
				s := k.SystemByName(name)
				if !s.SolvesProp(p) {
					continue
				}
				useful := true
				for _, cond := range s.UsefulOnlyWhen {
					if rep.Design.Context[cond.Atom] != cond.Value {
						useful = false
					}
				}
				if useful {
					covered = true
					break
				}
			}
			if !covered {
				t.Logf("property %s uncovered in %v", p, rep.Design.Systems)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickExplanationsAreUnsatCores verifies MUS soundness: assuming
// exactly the selectors named in an explanation must itself be UNSAT.
func TestQuickExplanationsAreUnsatCores(t *testing.T) {
	e := mustEngine(t, catalog.CaseStudy())
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := randomScenario(r)
		// Bias toward infeasibility.
		sc.Context["deadline_tight"] = true
		sc.Context["app_modifiable"] = false
		c, err := e.instance(&sc)
		if err != nil {
			return false
		}
		if c.solver.SolveAssuming(c.assumptions()) != sat.Unsat {
			return true // feasible draw: nothing to verify
		}
		g := govern(context.Background(), "test", Budget{}, c.solver)
		defer g.done()
		ex := e.minimizeCore(c, nil, g, seed%2 == 0)
		if len(ex.Conflicts) == 0 {
			return false
		}
		assumps := make([]sat.Lit, 0, len(ex.Conflicts))
		for _, item := range ex.Conflicts {
			l, ok := c.selectorLit(item.Name)
			if !ok {
				return false
			}
			assumps = append(assumps, l)
		}
		if c.solver.SolveAssuming(assumps) != sat.Unsat {
			t.Logf("explanation %v is not an unsat core", ex.Conflicts)
			return false
		}
		// Minimality: dropping any single item restores satisfiability.
		for i := range assumps {
			trial := make([]sat.Lit, 0, len(assumps)-1)
			trial = append(trial, assumps[:i]...)
			trial = append(trial, assumps[i+1:]...)
			if c.solver.SolveAssuming(trial) != sat.Sat {
				t.Logf("explanation not minimal: %v still unsat without %s",
					ex.Conflicts, ex.Conflicts[i].Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"fmt"
	"sort"

	"netarch/internal/intlin"
	"netarch/internal/kb"
	"netarch/internal/logic"
	"netarch/internal/order"
	"netarch/internal/sat"
)

// selector is a named, assumable constraint group. Solving assumes every
// selector; a final conflict over selectors names the facts in conflict,
// and deletion-based shrinking turns it into a minimal explanation.
type selector struct {
	name string
	note string
	lit  sat.Lit
}

// compiled is one scenario compiled to a SAT+arithmetic instance.
type compiled struct {
	kb     *kb.KB
	sc     *Scenario
	vocab  *logic.Vocabulary
	solver *sat.Solver
	arith  *intlin.Builder

	// names is the engine's shared atom-string interner (nil degrades to
	// plain concatenation — restored and specialized instances build few
	// or no new atoms).
	names *atomInterner

	// pending accumulates the boolean assertions in emission order during
	// the section methods; compileBase converts them to CNF in one shot
	// (sharded across workers, deterministically merged — see
	// logic.ConvertShards) and clears the list. Deferring conversion this
	// way fixes the atom variable space before the first auxiliary
	// variable is allocated, which is what makes per-assertion conversion
	// order-free.
	pending []logic.Formula

	sysLit map[string]sat.Lit
	hwLit  map[string]sat.Lit
	// sysNames is the sorted system vocabulary. Enumeration builds its
	// blocking clauses, canonical pins, and cube assumptions by walking
	// this slice so their literal order — and hence the solver's watch
	// setup and search — is reproducible (map iteration over sysLit is
	// not).
	sysNames []string

	selectors []selector
	selByName map[string]int // name -> index in selectors

	// pool holds pristine pre-made clones of solver for cached bases
	// (see pool.go). Set by compileBase/restoreBase; per-query compiled
	// values returned by specialize leave it nil.
	pool *clonePool

	// shards retains the per-assertion CNF conversion results this base
	// was compiled from, so Engine.UpdateKB can delta-recompile it —
	// reconverting only the assertions the KB edit actually changed (see
	// logic.ConvertShardsDelta). Bases restored from disk snapshots carry
	// no shard set (nil) and delta-recompile as a full reconversion;
	// specialized per-query instances leave it nil too. The retention
	// roughly doubles a base's clause memory — the price of sub-second
	// live KB updates.
	shards *logic.ShardSet

	// base points back at the shared compiled base a specialized query
	// instance was cloned from, or is nil when the instance owns its
	// solver outright (cache disabled). The portfolio uses it to mint
	// helper clones from the frozen base + re-specialization instead of
	// deep-copying the query solver.
	base *compiled

	// warm holds the scenario family's warm-start profile (see
	// warmstart.go in internal/sat): the phases and quantized activities
	// of the last solve over this base, persisted in the snapshot
	// envelope. It is a shared pointer — specialized instances alias the
	// base's slot — so profiles survive across queries and flow to disk.
	warm *warmSlot

	// sliceID / sliceReq identify the relevance slice this base was
	// compiled against (slice.go): empty/nil for full-KB bases. The ID
	// extends the cache key and the snapshot envelope; the request lets
	// UpdateKB recompute the slice under the incoming KB revision.
	sliceID  string
	sliceReq *sliceRequest

	workloads []*kb.Workload
	pinnedCtx map[string]bool // context atoms with known values

	// derivedCtx is the workload-derived slice of pinnedCtx (before any
	// scenario Context overlay); specialize() rebuilds a query's pinnedCtx
	// from it. provides records which properties some system solves, so
	// query-time Require groups know whether a property is satisfiable at
	// all. Both are populated at base-compile time and read-only after.
	derivedCtx map[string]bool
	provides   map[kb.Property]bool

	// extraCtx / extraSys hold query-time variables for context atoms and
	// system names absent from the base vocabulary (the vocabulary is
	// frozen and shared across clones, so late names get private solver
	// variables instead).
	extraCtx map[string]sat.Lit
	extraSys map[string]sat.Lit

	// frozen is set once the boolean CNF has been handed to the solver;
	// from then on the solver is the only variable allocator (the
	// vocabulary's index space is fixed), so later selectors must come
	// from solver.NewVar.
	frozen bool

	coresUsed  intlin.Int
	coresTotal intlin.Int
	costTotal  intlin.Int
	powerTotal intlin.Int
	portTotal  intlin.Int

	// witness is the most recent Sat model read back as a design; the
	// optimizer snapshots it so a budget trip mid-optimization can still
	// return the best design seen (graceful degradation).
	witness *Design

	totalKFlows int64
	maxPeakBW   int64
}

// exclusiveRoles lists roles where co-deploying two systems is incoherent
// (one network stack per host fleet, one fabric CCA, one vswitch dataplane,
// one load-balancing scheme).
var exclusiveRoles = map[kb.Role]bool{
	kb.RoleNetworkStack:      true,
	kb.RoleCongestionControl: true,
	kb.RoleVirtualSwitch:     true,
	kb.RoleLoadBalancer:      true,
}

// compileBase lowers the current KB + scenario into a solver instance.
// With the compiled-base cache this runs on a stripped "shape" scenario
// (see baseShape) and the result is frozen: the instance is simplified
// once and thereafter only cloned, never solved or mutated.
// Query-specific requirements are layered on by specialize().
func (e *Engine) compileBase(sc *Scenario) (*compiled, error) {
	return e.compileBaseWith(e.kbSnapshot(), sc, nil)
}

// compileSliced compiles a base against a relevance slice's sub-KB (or
// the full KB when sl is nil), stamping the slice identity onto the
// result so the cache, snapshot envelope, and UpdateKB can reproduce
// it. The compile pipeline itself is unchanged: a sliced base is just a
// compile of a smaller knowledge base.
func (e *Engine) compileSliced(k *kb.KB, sc *Scenario, sl *kbSlice) (*compiled, error) {
	if sl == nil {
		return e.compileBaseWith(k, sc, nil)
	}
	c, err := e.compileBaseWith(sl.sub, sc, nil)
	if err != nil {
		return nil, err
	}
	c.sliceID = sl.id
	c.sliceReq = sl.req
	return c, nil
}

// compileBaseWith is compileBase against an explicit KB revision and an
// optional previous shard set. UpdateKB uses it to rebuild cached bases
// against the incoming KB: prev carries the outgoing base's per-assertion
// conversion results, so only assertions the edit changed are reconverted
// — and the result is still byte-identical to a cold compile of the new
// KB (the ConvertShardsDelta contract, pinned by TestUpdateKBByteIdentity).
func (e *Engine) compileBaseWith(k *kb.KB, sc *Scenario, prev *logic.ShardSet) (*compiled, error) {
	c := &compiled{
		kb:         k,
		sc:         sc,
		names:      &e.names,
		vocab:      logic.NewVocabulary(),
		sysLit:     make(map[string]sat.Lit),
		hwLit:      make(map[string]sat.Lit),
		selByName:  make(map[string]int),
		pinnedCtx:  make(map[string]bool),
		derivedCtx: make(map[string]bool),
		pool:       &clonePool{},
		warm:       &warmSlot{},
	}
	if err := c.pickWorkloads(); err != nil {
		return nil, err
	}
	c.deriveContext()

	c.declareVars()
	c.sysNames = make([]string, 0, len(c.sysLit))
	for name := range c.sysLit {
		c.sysNames = append(c.sysNames, name)
	}
	sort.Strings(c.sysNames)
	c.hardwareSelection()
	c.capabilityDefinitions()
	c.systemConstraints()
	c.propertyDefinitions()
	c.structuralConstraints()
	c.ruleConstraints()
	c.contextPins()
	c.workloadConstraints()
	c.scenarioPins()
	if err := c.performanceBounds(); err != nil {
		return nil, err
	}

	// Boolean phase done: every named atom (and pre-freeze selector) is
	// in the vocabulary, so the assertion list can be converted to CNF in
	// one shot — sharded across workers and merged deterministically, so
	// the compiled base is byte-identical for every worker count. The
	// anonymous Tseitin variables land in one block after the atoms; pad
	// the vocabulary to cover them so vocabulary and solver keep agreeing
	// on the variable space.
	base := c.vocab.Len()
	cnf, shards := logic.ConvertShardsDelta(base, c.pending, prev, e.enumWorkers())
	c.shards = shards
	c.pending = nil
	for v := base; v < cnf.NumVars; v++ {
		c.vocab.Fresh("")
	}

	// Materialize the CNF into a solver, then bolt the arithmetic
	// circuits on top of the same variable space.
	c.solver = sat.NewSolver()
	if e.fault != nil {
		c.solver.SetFaultHook(e.fault)
	}
	c.solver.EnsureVars(c.vocab.Len())
	nLits := 0
	for _, cl := range cnf.Clauses {
		nLits += len(cl)
	}
	// Pre-size the arena for the whole CNF (capacity-only — snapshot
	// bytes are unchanged): the exact clause and literal counts are known
	// here, so the bulk load appends into one slab allocation.
	c.solver.ReserveClauses(len(cnf.Clauses), nLits)
	var lits []sat.Lit
	for _, cl := range cnf.Clauses {
		lits = lits[:0]
		for _, l := range cl {
			lits = append(lits, sat.Lit(l))
		}
		c.solver.AddClause(lits...)
	}
	c.frozen = true
	c.arith = intlin.New(c.solver)
	c.resourceConstraints()
	c.costModel()
	c.powerModel()
	c.portModel()
	// One inprocessing pass pays off across every clone of this base (and
	// runs on the cache-off path too, so both paths stay byte-identical).
	c.solver.Simplify()
	return c, nil
}

// pickWorkloads resolves the scenario's workload names.
func (c *compiled) pickWorkloads() error {
	if len(c.sc.Workloads) == 0 {
		for i := range c.kb.Workloads {
			c.workloads = append(c.workloads, &c.kb.Workloads[i])
		}
		return nil
	}
	for _, name := range c.sc.Workloads {
		w := c.kb.WorkloadByName(name)
		if w == nil {
			return fmt.Errorf("core: unknown workload %q", name)
		}
		c.workloads = append(c.workloads, w)
	}
	return nil
}

// deriveContext computes the pinned context atoms: scenario pins,
// workload properties, and workload-derived facts (§3.1's "easy to
// accurately characterize" quantities).
func (c *compiled) deriveContext() {
	for _, w := range c.workloads {
		for _, p := range w.Properties {
			c.derivedCtx[p] = true
		}
		c.totalKFlows += w.KFlows
		if w.PeakBandwidthGbps > c.maxPeakBW {
			c.maxPeakBW = w.PeakBandwidthGbps
		}
	}
	if _, set := c.derivedCtx["load_ge_40gbps"]; !set {
		if _, userSet := c.sc.Context["load_ge_40gbps"]; !userSet {
			c.derivedCtx["load_ge_40gbps"] = c.maxPeakBW >= 40
		}
	}
	// Scenario pins override workload-derived values.
	for atom, v := range c.derivedCtx {
		c.pinnedCtx[atom] = v
	}
	for atom, v := range c.sc.Context {
		c.pinnedCtx[atom] = v
	}
}

// atom helpers ---------------------------------------------------------------

func (c *compiled) sysVar(name string) logic.Var {
	return c.vocab.Get(c.names.full(tierSystem, name))
}
func (c *compiled) hwVar(name string) logic.Var {
	return c.vocab.Get(c.names.full(tierHw, name))
}
func (c *compiled) ctxVar(name string) logic.Var {
	return c.vocab.Get(c.names.full(tierCtx, name))
}
func (c *compiled) propVar(p kb.Property) logic.Var {
	return c.vocab.Get(c.names.full(tierProp, string(p)))
}
func (c *compiled) capVar(kind kb.HardwareKind, cap kb.Capability) logic.Var {
	return c.vocab.Get(c.names.full(tierCap, string(kind)+":"+string(cap)))
}

// addSelector registers a named assumable group and returns its literal.
// Before the CNF is materialized, selector variables live in the shared
// vocabulary (they appear inside formulas); afterwards they are allocated
// directly from the solver so they never collide with arithmetic-circuit
// variables.
func (c *compiled) addSelector(name, note string) sat.Lit {
	if i, ok := c.selByName[name]; ok {
		return c.selectors[i].lit
	}
	var l sat.Lit
	if c.frozen {
		l = sat.Lit(c.solver.NewVar())
	} else {
		l = sat.Lit(c.vocab.Get(c.names.full(tierSel, name)))
	}
	c.selByName[name] = len(c.selectors)
	c.selectors = append(c.selectors, selector{name: name, note: note, lit: l})
	return l
}

// assert queues a boolean assertion for the one-shot CNF conversion at
// the end of the boolean phase. Only valid before the CNF is
// materialized (atoms inside f must live in the shared vocabulary).
func (c *compiled) assert(f logic.Formula) {
	if c.frozen {
		panic("core: assert after CNF materialization")
	}
	c.pending = append(c.pending, f)
}

// assertGuarded asserts f under a named selector.
func (c *compiled) assertGuarded(name, note string, f logic.Formula) {
	l := c.addSelector(name, note)
	c.assert(logic.Implies(logic.V(logic.Var(l)), f))
}

// declareVars allocates the well-known variables in a stable order so the
// model read-back is deterministic.
func (c *compiled) declareVars() {
	for i := range c.kb.Systems {
		c.sysLit[c.kb.Systems[i].Name] = sat.Lit(c.sysVar(c.kb.Systems[i].Name))
	}
	for _, h := range c.allowedHardwareAll() {
		c.hwLit[h.Name] = sat.Lit(c.hwVar(h.Name))
	}
}

// allowedHardware returns the candidate SKUs for one kind, honouring
// scenario restrictions and pins.
func (c *compiled) allowedHardware(kind kb.HardwareKind) []*kb.Hardware {
	if pinned, ok := c.sc.PinnedHardware[kind]; ok {
		if h := c.kb.HardwareByName(pinned); h != nil && h.Kind == kind {
			return []*kb.Hardware{h}
		}
		return nil
	}
	if allowed, ok := c.sc.AllowedHardware[kind]; ok {
		var out []*kb.Hardware
		for _, name := range allowed {
			if h := c.kb.HardwareByName(name); h != nil && h.Kind == kind {
				out = append(out, h)
			}
		}
		return out
	}
	return c.kb.HardwareByKind(kind)
}

func (c *compiled) allowedHardwareAll() []*kb.Hardware {
	var out []*kb.Hardware
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		out = append(out, c.allowedHardware(kind)...)
	}
	return out
}

// amoPairwiseMax is the largest per-kind candidate count still encoded
// with pairwise at-most-one clauses. Seed-scale catalogs (≈200 SKUs,
// ≤105 per kind) stay below it, keeping their compiled bases — and every
// snapshot built from them — byte-identical to the pre-slicing encoding.
const amoPairwiseMax = 128

// hardwareSelection asserts exactly-one SKU per hardware kind.
func (c *compiled) hardwareSelection() {
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		hws := c.allowedHardware(kind)
		name := fmt.Sprintf("hardware:%s:selection", kind)
		note := fmt.Sprintf("exactly one %s model must be selected", kind)
		if len(hws) == 0 {
			c.assertGuarded(name, note+" (no candidates available)", logic.False)
			continue
		}
		atoms := make([]logic.Formula, len(hws))
		for i, h := range hws {
			atoms[i] = logic.V(c.hwVar(h.Name))
		}
		c.assertGuarded(name, note, logic.Or(atoms...))
		// At-most-one (unguarded: definitional structure). Pairwise is
		// smallest for the seed-scale catalogs every pre-slicing test and
		// snapshot was built from; above amoPairwiseMax candidates the
		// O(n²) clause count turns into the compile cliff the scale-out
		// chases, so large kinds switch to a sequential ladder (3n clauses,
		// n-1 aux commander atoms named amo:<kind>:<i>).
		if len(atoms) <= amoPairwiseMax {
			for i := 0; i < len(atoms); i++ {
				for j := i + 1; j < len(atoms); j++ {
					c.assert(logic.Or(logic.Not(atoms[i]), logic.Not(atoms[j])))
				}
			}
		} else {
			ladder := make([]logic.Formula, len(atoms))
			for i := range atoms {
				ladder[i] = logic.V(c.vocab.Get(fmt.Sprintf("amo:%s:%d", kind, i)))
			}
			conj := make([]logic.Formula, 0, 3*len(atoms))
			for i, a := range atoms {
				conj = append(conj, logic.Implies(a, ladder[i]))
				if i > 0 {
					conj = append(conj, logic.Implies(ladder[i-1], ladder[i]))
					conj = append(conj, logic.Implies(a, logic.Not(ladder[i-1])))
				}
			}
			c.assert(logic.And(conj...))
		}
		// SKUs outside the allowed set are off.
		allowedSet := map[string]bool{}
		for _, h := range hws {
			allowedSet[h.Name] = true
		}
		for _, h := range c.kb.HardwareByKind(kind) {
			if !allowedSet[h.Name] {
				if _, declared := c.hwLit[h.Name]; declared {
					c.assert(logic.Not(logic.V(c.hwVar(h.Name))))
				}
			}
		}
	}
}

// capabilityDefinitions ties cap atoms to the selected hardware:
// cap(kind, X) ↔ OR of selected SKUs of that kind having X.
func (c *compiled) capabilityDefinitions() {
	caps := map[kb.HardwareKind]map[kb.Capability][]logic.Formula{}
	referenced := c.referencedCaps()
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		caps[kind] = map[kb.Capability][]logic.Formula{}
		for cap := range referenced[kind] {
			caps[kind][cap] = nil
		}
		for _, h := range c.allowedHardware(kind) {
			for _, cap := range h.Caps {
				if _, ok := referenced[kind][cap]; ok {
					caps[kind][cap] = append(caps[kind][cap], logic.V(c.hwVar(h.Name)))
				}
			}
		}
		// Sorted: assertion order allocates cap variables, and compilation
		// must be deterministic for the base cache's differential guarantee.
		names := make([]string, 0, len(caps[kind]))
		for cap := range caps[kind] {
			names = append(names, string(cap))
		}
		sort.Strings(names)
		for _, name := range names {
			cap := kb.Capability(name)
			c.assert(logic.Iff(logic.V(c.capVar(kind, cap)), logic.Or(caps[kind][cap]...)))
		}
	}
}

// referencedCaps collects every capability atom mentioned by systems or
// rules, so only those get defined.
func (c *compiled) referencedCaps() map[kb.HardwareKind]map[kb.Capability]bool {
	out := map[kb.HardwareKind]map[kb.Capability]bool{
		kb.KindSwitch: {}, kb.KindNIC: {}, kb.KindServer: {},
	}
	for i := range c.kb.Systems {
		for kind, caps := range c.kb.Systems[i].RequiresCaps {
			for _, cap := range caps {
				out[kind][cap] = true
			}
		}
	}
	for _, r := range c.kb.Rules {
		for _, atom := range r.Expr.Atoms(nil) {
			var kindStr, capStr string
			if parseCapAtom(atom, &kindStr, &capStr) {
				k := kb.HardwareKind(kindStr)
				if _, ok := out[k]; ok {
					out[k][kb.Capability(capStr)] = true
				}
			}
		}
	}
	return out
}

// parseCapAtom splits "cap:<kind>:<cap>".
func parseCapAtom(atom string, kind, cap *string) bool {
	const prefix = "cap:"
	if len(atom) <= len(prefix) || atom[:len(prefix)] != prefix {
		return false
	}
	rest := atom[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			*kind = rest[:i]
			*cap = rest[i+1:]
			return *kind != "" && *cap != ""
		}
	}
	return false
}

// systemConstraints encodes each system's deployment requirements, one
// selector per requirement class for fine-grained explanations.
func (c *compiled) systemConstraints() {
	for i := range c.kb.Systems {
		s := &c.kb.Systems[i]
		sys := logic.V(c.sysVar(s.Name))

		if len(s.RequiresCaps) > 0 {
			var reqs []logic.Formula
			kinds := make([]string, 0, len(s.RequiresCaps))
			for kind := range s.RequiresCaps {
				kinds = append(kinds, string(kind))
			}
			sort.Strings(kinds)
			for _, kindStr := range kinds {
				kind := kb.HardwareKind(kindStr)
				for _, cap := range s.RequiresCaps[kind] {
					reqs = append(reqs, logic.V(c.capVar(kind, cap)))
				}
			}
			c.assertGuarded(
				"system:"+s.Name+":caps",
				fmt.Sprintf("%s requires hardware capabilities %v", s.Name, s.RequiresCaps),
				logic.Implies(sys, logic.And(reqs...)))
		}
		if len(s.RequiresSystems) > 0 {
			var deps []logic.Formula
			for _, d := range s.RequiresSystems {
				deps = append(deps, logic.V(c.sysVar(d)))
			}
			c.assertGuarded(
				"system:"+s.Name+":deps",
				fmt.Sprintf("%s requires %v", s.Name, s.RequiresSystems),
				logic.Implies(sys, logic.And(deps...)))
		}
		for gi, group := range s.RequiresAnyOf {
			var opts []logic.Formula
			for _, d := range group {
				opts = append(opts, logic.V(c.sysVar(d)))
			}
			c.assertGuarded(
				fmt.Sprintf("system:%s:anyof:%d", s.Name, gi),
				fmt.Sprintf("%s requires one of %v", s.Name, group),
				logic.Implies(sys, logic.Or(opts...)))
		}
		if len(s.ConflictsWith) > 0 {
			var nots []logic.Formula
			for _, d := range s.ConflictsWith {
				nots = append(nots, logic.Not(logic.V(c.sysVar(d))))
			}
			c.assertGuarded(
				"system:"+s.Name+":conflicts",
				fmt.Sprintf("%s conflicts with %v", s.Name, s.ConflictsWith),
				logic.Implies(sys, logic.And(nots...)))
		}
		if len(s.RequiresContext) > 0 {
			var conds []logic.Formula
			for _, cond := range s.RequiresContext {
				f, err := kb.ConditionExpr(cond).Compile(c.vocab.Get)
				if err != nil {
					// Conditions are atoms; Compile cannot fail.
					panic(err)
				}
				conds = append(conds, f)
			}
			c.assertGuarded(
				"system:"+s.Name+":context",
				fmt.Sprintf("%s requires context %v", s.Name, s.RequiresContext),
				logic.Implies(sys, logic.And(conds...)))
		}
		if s.AppModification {
			c.assertGuarded(
				"system:"+s.Name+":app_modification",
				fmt.Sprintf("%s requires modifying applications", s.Name),
				logic.Implies(sys, logic.V(c.ctxVar("app_modifiable"))))
		}
	}
}

// usefulFormula returns the formula under which a deployed system
// contributes its Solves properties.
func (c *compiled) usefulFormula(s *kb.System) logic.Formula {
	var conds []logic.Formula
	for _, cond := range s.UsefulOnlyWhen {
		f, err := kb.ConditionExpr(cond).Compile(c.vocab.Get)
		if err != nil {
			panic(err)
		}
		conds = append(conds, f)
	}
	return logic.And(conds...)
}

// propertyDefinitions ties property atoms to providing systems:
// prop(p) ↔ OR over systems solving p of (deployed ∧ useful).
func (c *compiled) propertyDefinitions() {
	provides := map[kb.Property][]logic.Formula{}
	for i := range c.kb.Systems {
		s := &c.kb.Systems[i]
		contrib := logic.And(logic.V(c.sysVar(s.Name)), c.usefulFormula(s))
		for _, p := range s.Solves {
			provides[p] = append(provides[p], contrib)
		}
	}
	c.provides = make(map[kb.Property]bool, len(provides))
	for p := range provides {
		c.provides[p] = true
	}
	props := make([]string, 0, len(provides))
	for p := range provides {
		props = append(props, string(p))
	}
	sort.Strings(props)
	for _, p := range props {
		c.assert(logic.Iff(
			logic.V(c.propVar(kb.Property(p))),
			logic.Or(provides[kb.Property(p)]...)))
	}
	// Properties nobody provides are false.
	needed := map[kb.Property]bool{}
	for _, w := range c.workloads {
		for _, p := range w.Needs {
			needed[p] = true
		}
	}
	for _, p := range c.sc.Require {
		needed[p] = true
	}
	// Sorted for deterministic variable allocation (see capabilityDefinitions).
	missing := make([]string, 0, len(needed))
	for p := range needed {
		if _, ok := provides[p]; !ok {
			missing = append(missing, string(p))
		}
	}
	sort.Strings(missing)
	for _, p := range missing {
		c.assert(logic.Not(logic.V(c.propVar(kb.Property(p)))))
	}
}

// structuralConstraints encodes role exclusivity and the common-sense
// "every fleet runs a network stack" rule (§3.4).
func (c *compiled) structuralConstraints() {
	for _, role := range kb.Roles() {
		if !exclusiveRoles[role] {
			continue
		}
		systems := c.kb.SystemsByRole(role)
		for i := 0; i < len(systems); i++ {
			for j := i + 1; j < len(systems); j++ {
				c.assertGuarded(
					fmt.Sprintf("structural:exclusive:%s", role),
					fmt.Sprintf("at most one %s may be deployed fleet-wide", role),
					logic.Or(
						logic.Not(logic.V(c.sysVar(systems[i].Name))),
						logic.Not(logic.V(c.sysVar(systems[j].Name)))))
			}
		}
	}
	stacks := c.kb.SystemsByRole(kb.RoleNetworkStack)
	if len(stacks) > 0 {
		var opts []logic.Formula
		for _, s := range stacks {
			opts = append(opts, logic.V(c.sysVar(s.Name)))
		}
		c.assertGuarded(
			"structural:need_network_stack",
			"common-sense: every server fleet runs some network stack (§3.4)",
			logic.Or(opts...))
	}
}

// ruleConstraints asserts every free-form KB rule under its own selector.
func (c *compiled) ruleConstraints() {
	for _, r := range c.kb.Rules {
		f, err := r.Expr.Compile(c.vocab.Get)
		if err != nil {
			panic(fmt.Sprintf("core: rule %q failed to compile after validation: %v", r.Name, err))
		}
		c.assertGuarded("rule:"+r.Name, r.Note, f)
	}
}

// contextPins asserts the derived/pinned context atoms.
func (c *compiled) contextPins() {
	atoms := make([]string, 0, len(c.pinnedCtx))
	for a := range c.pinnedCtx {
		atoms = append(atoms, a)
	}
	sort.Strings(atoms)
	for _, a := range atoms {
		v := logic.V(c.ctxVar(a))
		f := v
		if !c.pinnedCtx[a] {
			f = logic.Not(v)
		}
		c.assertGuarded(
			"context:"+a,
			fmt.Sprintf("environment fact: %s=%v", a, c.pinnedCtx[a]),
			f)
	}
}

// workloadConstraints asserts every workload's needs.
func (c *compiled) workloadConstraints() {
	for _, w := range c.workloads {
		for _, p := range w.Needs {
			c.assertGuarded(
				fmt.Sprintf("workload:%s:needs:%s", w.Name, p),
				fmt.Sprintf("workload %s needs %s", w.Name, p),
				logic.V(c.propVar(p)))
		}
	}
	for _, p := range c.sc.Require {
		c.assertGuarded(
			fmt.Sprintf("require:%s", p),
			fmt.Sprintf("architect requires %s", p),
			logic.V(c.propVar(p)))
	}
}

// scenarioPins asserts pinned and forbidden systems.
func (c *compiled) scenarioPins() {
	for _, s := range c.sc.PinnedSystems {
		c.assertGuarded(
			"pin:system:"+s,
			fmt.Sprintf("architect pinned %s as deployed", s),
			logic.V(c.sysVar(s)))
	}
	for _, s := range c.sc.ForbiddenSystems {
		c.assertGuarded(
			"forbid:system:"+s,
			fmt.Sprintf("architect forbade %s", s),
			logic.Not(logic.V(c.sysVar(s))))
	}
}

// performanceBounds encodes Listing 3-style bounds against the resolved
// partial orders.
func (c *compiled) performanceBounds() error {
	for _, b := range c.sc.Bounds {
		resolved, err := c.resolveOrder(b.Dimension)
		if err != nil {
			return err
		}
		if resolved == nil {
			return fmt.Errorf("core: unknown order dimension %q", b.Dimension)
		}
		var qualifying []logic.Formula
		for i := range c.kb.Systems {
			name := c.kb.Systems[i].Name
			ok := resolved.Better(name, b.Reference)
			if !b.Strict {
				ok = ok || name == b.Reference || resolved.Equal(name, b.Reference)
			}
			if ok {
				qualifying = append(qualifying, logic.V(c.sysVar(name)))
			}
		}
		c.assertGuarded(
			fmt.Sprintf("bound:%s:better_than:%s", b.Dimension, b.Reference),
			fmt.Sprintf("performance bound: deployed %s choice must beat %s", b.Dimension, b.Reference),
			logic.Or(qualifying...))
	}
	return nil
}

// resolveOrder resolves a KB order dimension under the pinned context
// (unpinned atoms are treated as false — conservative: only edges whose
// guards are entailed by known facts apply). Resolution happens over a
// private vocabulary (kb.OrderSpec.Resolve), never the shared one: this
// also runs at query time (orderPenaltyLits), where the base vocabulary
// is frozen and shared across concurrent queries.
func (c *compiled) resolveOrder(dimension string) (*order.Resolved, error) {
	spec := c.kb.OrderByDimension(dimension)
	if spec == nil {
		return nil, nil
	}
	return spec.Resolve(c.pinnedCtx)
}

// resourceConstraints adds the arithmetic budgets (§3.1's accurately
// characterizable quantities): cores, P4 stages, switch SRAM, QoS
// classes, and NIC line rate.
func (c *compiled) resourceConstraints() {
	ns := int64(c.sc.numServers())

	// Total cores provided by the selected server SKU.
	var maxCores int64 = 1
	for _, h := range c.allowedHardware(kb.KindServer) {
		if v := h.Q(kb.ResCores) * ns; v > maxCores {
			maxCores = v
		}
	}
	c.coresTotal = c.arith.Var(maxCores)
	for _, h := range c.allowedHardware(kb.KindServer) {
		c.arith.AssertImplies(c.hwLit[h.Name],
			c.arith.EqConst(c.coresTotal, h.Q(kb.ResCores)*ns))
	}

	// Cores consumed: workload peaks + per-system overheads.
	var wlCores int64
	for _, w := range c.workloads {
		wlCores += w.PeakCores
	}
	terms := []intlin.Int{c.arith.Const(wlCores)}
	for i := range c.kb.Systems {
		s := &c.kb.Systems[i]
		cost := s.Resources[kb.ResCores]*ns + s.CoresPerKFlows*c.totalKFlows
		if cost > 0 {
			terms = append(terms, c.arith.ScaledBool(c.sysLit[s.Name], cost))
		}
	}
	c.coresUsed = c.arith.Sum(terms...)
	selCores := c.addSelector("resources:cores",
		fmt.Sprintf("deployed systems and workloads must fit %d servers' cores", ns))
	c.arith.AssertImplies(selCores, c.arith.Leq(c.coresUsed, c.coresTotal))

	// Memory: workloads must fit the selected server SKU's aggregate
	// memory. CXL memory pooling (an architect decision, pinned via the
	// cxl_pooling context atom) stretches CXL-capable servers' capacity
	// by 50% — the quantitative lever behind the §5.1 "is CXL pooling
	// worthwhile?" query.
	var wlMem int64
	for _, w := range c.workloads {
		wlMem += w.PeakMemoryGB
	}
	if wlMem > 0 {
		cxlOn := c.pinnedCtx["cxl_pooling"]
		var maxMem int64 = 1
		memOf := func(h *kb.Hardware) int64 {
			m := h.Q(kb.ResMemoryGB) * ns
			if cxlOn && h.HasCap(kb.CapCXL) {
				m += m / 2
			}
			return m
		}
		for _, h := range c.allowedHardware(kb.KindServer) {
			if v := memOf(h); v > maxMem {
				maxMem = v
			}
		}
		memTotal := c.arith.Var(maxMem)
		for _, h := range c.allowedHardware(kb.KindServer) {
			c.arith.AssertImplies(c.hwLit[h.Name], c.arith.EqConst(memTotal, memOf(h)))
		}
		selMem := c.addSelector("resources:memory",
			fmt.Sprintf("workloads need %d GB of aggregate server memory", wlMem))
		c.arith.AssertImplies(selMem, c.arith.GeqConst(memTotal, wlMem))
	}

	// Rack-level placement: each workload pinned to racks must fit its
	// per-rack core share into the rack's servers of the selected SKU.
	// This grounds Listing 3's "deployed_at = racks[0:3]" in capacity.
	if c.sc.RackServers != nil {
		rackDemand := map[string]int64{}
		for _, w := range c.workloads {
			if len(w.DeployedAt) == 0 || w.PeakCores == 0 {
				continue
			}
			share := (w.PeakCores + int64(len(w.DeployedAt)) - 1) / int64(len(w.DeployedAt))
			for _, r := range w.DeployedAt {
				rackDemand[r] += share
			}
		}
		racks := make([]string, 0, len(rackDemand))
		for r := range rackDemand {
			racks = append(racks, r)
		}
		sort.Strings(racks)
		for _, r := range racks {
			nRack, known := c.sc.RackServers[r]
			sel := c.addSelector("resources:rack:"+r,
				fmt.Sprintf("workloads placed on %s need %d cores there", r, rackDemand[r]))
			if !known {
				// Workload names a rack the fleet does not have.
				c.solver.AddClause(sel.Flip())
				continue
			}
			for _, h := range c.allowedHardware(kb.KindServer) {
				if h.Q(kb.ResCores)*int64(nRack) < rackDemand[r] {
					// This SKU cannot provision the rack: selecting it
					// violates the rack constraint.
					c.solver.AddClause(sel.Flip(), c.hwLit[h.Name].Flip())
				}
			}
		}
	}

	// P4 stages and SRAM against the selected switch.
	c.switchBudget(kb.ResP4Stages, "resources:p4_stages",
		"P4 programs must fit the selected switch's pipeline stages")
	c.switchBudget(kb.ResSRAMMB, "resources:switch_sram",
		"P4 programs must fit the selected switch's SRAM")

	// QoS classes: fabrics expose 8 traffic classes.
	var qosTerms []intlin.Int
	for i := range c.kb.Systems {
		s := &c.kb.Systems[i]
		if q := s.Resources[kb.ResQoSClasses]; q > 0 {
			qosTerms = append(qosTerms, c.arith.ScaledBool(c.sysLit[s.Name], q))
		}
	}
	if len(qosTerms) > 0 {
		used := c.arith.Sum(qosTerms...)
		sel := c.addSelector("resources:qos_classes",
			"systems contend for the fabric's 8 QoS classes (§2.2 resource contention)")
		c.arith.AssertImplies(sel, c.arith.LeqConst(used, 8))
	}

	// NIC line rate must cover the peak per-server workload bandwidth.
	if c.maxPeakBW > 0 {
		sel := c.addSelector("resources:nic_bandwidth",
			fmt.Sprintf("the NIC must carry the %d Gbit/s peak workload", c.maxPeakBW))
		for _, h := range c.allowedHardware(kb.KindNIC) {
			if h.Q(kb.ResBandwidthGbps) < c.maxPeakBW {
				c.solver.AddClause(sel.Flip(), c.hwLit[h.Name].Flip())
			}
		}
	}
}

// switchBudget constrains the sum of a per-system resource against the
// selected switch's capacity for it.
func (c *compiled) switchBudget(res kb.Resource, selName, note string) {
	var terms []intlin.Int
	for i := range c.kb.Systems {
		s := &c.kb.Systems[i]
		if q := s.Resources[res]; q > 0 {
			terms = append(terms, c.arith.ScaledBool(c.sysLit[s.Name], q))
		}
	}
	if len(terms) == 0 {
		return
	}
	used := c.arith.Sum(terms...)
	var maxBudget int64 = 1
	for _, h := range c.allowedHardware(kb.KindSwitch) {
		if v := h.Q(res); v > maxBudget {
			maxBudget = v
		}
	}
	budget := c.arith.Var(maxBudget)
	for _, h := range c.allowedHardware(kb.KindSwitch) {
		c.arith.AssertImplies(c.hwLit[h.Name], c.arith.EqConst(budget, h.Q(res)))
	}
	sel := c.addSelector(selName, note)
	c.arith.AssertImplies(sel, c.arith.Leq(used, budget))
}

// kindTotal builds a muxed per-kind contribution: one bounded integer,
// forced to val(h) exactly while SKU h is selected. The previous
// encoding summed one ScaledBool per SKU, which grows an adder chain
// linear in the catalog — ruinous at scaled-catalog sizes, where one
// kind can hold tens of thousands of candidates. The mux follows the
// coresTotal/memTotal precedent: at most one SKU per kind is selected,
// so exactly one EqConst fires and the variable is pinned to the
// selected SKU's value. When no SKU of the kind is selected (possible
// only in MUS deletion trials that drop the selection selector) the
// variable floats; such trials only ask satisfiability, which a
// floating total never changes.
// muxTotals reports whether the cost/power/port circuits should use the
// muxed per-kind encoding. Gated on the same threshold as the AMO
// ladder: below it the ScaledBool adder chains are small and the seed
// encoding (and every snapshot and model trajectory built on it) stays
// byte-identical; above it the chains dominate compile time and memory.
func (c *compiled) muxTotals() bool {
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		if len(c.allowedHardware(kind)) > amoPairwiseMax {
			return true
		}
	}
	return false
}

func (c *compiled) kindTotal(kind kb.HardwareKind, val func(*kb.Hardware) int64) intlin.Int {
	hws := c.allowedHardware(kind)
	var maxV int64
	for _, h := range hws {
		if v := val(h); v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		return c.arith.Const(0)
	}
	t := c.arith.Var(maxV)
	for _, h := range hws {
		c.arith.AssertImplies(c.hwLit[h.Name], c.arith.EqConst(t, val(h)))
	}
	return t
}

// costModel builds the total hardware cost and the optional budget cap.
func (c *compiled) costModel() {
	ns := int64(c.sc.numServers())
	nsw := int64(c.sc.numSwitches())
	if c.muxTotals() {
		c.costTotal = c.arith.Sum(
			c.kindTotal(kb.KindServer, func(h *kb.Hardware) int64 { return h.CostUSD * ns }),
			c.kindTotal(kb.KindNIC, func(h *kb.Hardware) int64 { return h.CostUSD * ns }),
			c.kindTotal(kb.KindSwitch, func(h *kb.Hardware) int64 { return h.CostUSD * nsw }),
		)
	} else {
		var terms []intlin.Int
		add := func(kind kb.HardwareKind, count int64) {
			for _, h := range c.allowedHardware(kind) {
				if cost := h.CostUSD * count; cost > 0 {
					terms = append(terms, c.arith.ScaledBool(c.hwLit[h.Name], cost))
				}
			}
		}
		add(kb.KindServer, ns)
		add(kb.KindNIC, ns)
		add(kb.KindSwitch, nsw)
		c.costTotal = c.arith.Sum(terms...)
	}
	if c.sc.MaxCostUSD > 0 {
		sel := c.addSelector("budget:cost",
			fmt.Sprintf("total hardware cost must not exceed $%d", c.sc.MaxCostUSD))
		c.arith.AssertImplies(sel, c.arith.LeqConst(c.costTotal, c.sc.MaxCostUSD))
	}
}

// powerModel builds the fleet's total power draw in watts: each SKU's
// power_w rule of thumb (Listing 1 quantities) times its deployment
// count, summed over servers, NICs, and switches. The circuit exists on
// every base so MinimizePower and the power_w design metric work for
// any scenario shape.
func (c *compiled) powerModel() {
	ns := int64(c.sc.numServers())
	nsw := int64(c.sc.numSwitches())
	if c.muxTotals() {
		c.powerTotal = c.arith.Sum(
			c.kindTotal(kb.KindServer, func(h *kb.Hardware) int64 { return h.Q(kb.ResPowerW) * ns }),
			c.kindTotal(kb.KindNIC, func(h *kb.Hardware) int64 { return h.Q(kb.ResPowerW) * ns }),
			c.kindTotal(kb.KindSwitch, func(h *kb.Hardware) int64 { return h.Q(kb.ResPowerW) * nsw }),
		)
		return
	}
	var terms []intlin.Int
	add := func(kind kb.HardwareKind, count int64) {
		for _, h := range c.allowedHardware(kind) {
			if w := h.Q(kb.ResPowerW) * count; w > 0 {
				terms = append(terms, c.arith.ScaledBool(c.hwLit[h.Name], w))
			}
		}
	}
	add(kb.KindServer, ns)
	add(kb.KindNIC, ns)
	add(kb.KindSwitch, nsw)
	c.powerTotal = c.arith.Sum(terms...)
}

// portModel builds the fabric's total switch port count (selected
// switch's ports times the switch count) — the MinimizePorts objective
// and the switch_ports design metric.
func (c *compiled) portModel() {
	nsw := int64(c.sc.numSwitches())
	if c.muxTotals() {
		c.portTotal = c.kindTotal(kb.KindSwitch, func(h *kb.Hardware) int64 {
			return h.Q(kb.ResPortCount) * nsw
		})
		return
	}
	var terms []intlin.Int
	for _, h := range c.allowedHardware(kb.KindSwitch) {
		if p := h.Q(kb.ResPortCount) * nsw; p > 0 {
			terms = append(terms, c.arith.ScaledBool(c.hwLit[h.Name], p))
		}
	}
	c.portTotal = c.arith.Sum(terms...)
}

// selectorLit returns the literal of the selector registered under name.
// Specialized instances carry no name index (selByName stays base-side),
// so this scans; it is used by tests and diagnostics, not hot paths.
func (c *compiled) selectorLit(name string) (sat.Lit, bool) {
	for _, s := range c.selectors {
		if s.name == name {
			return s.lit, true
		}
	}
	return 0, false
}

// assumptions returns all selector literals.
func (c *compiled) assumptions() []sat.Lit {
	out := make([]sat.Lit, len(c.selectors))
	for i, s := range c.selectors {
		out[i] = s.lit
	}
	return out
}

// designFromModel reads a Design off the current solver model.
func (c *compiled) designFromModel() *Design {
	return c.designFrom(c.solver.Model())
}

// designFrom reads a Design off the given model (the solver's own, or
// one returned by a portfolio race whose winning solver is elsewhere).
func (c *compiled) designFrom(model []bool) *Design {
	lit := func(l sat.Lit) bool { return model[l.Var()-1] != l.Neg() }
	d := &Design{
		Hardware: map[kb.HardwareKind]string{},
		Context:  map[string]bool{},
		Metrics:  map[string]int64{},
	}
	for i := range c.kb.Systems {
		name := c.kb.Systems[i].Name
		if lit(c.sysLit[name]) {
			d.Systems = append(d.Systems, name)
		}
	}
	sort.Strings(d.Systems)
	for _, h := range c.allowedHardwareAll() {
		if lit(c.hwLit[h.Name]) {
			d.Hardware[h.Kind] = h.Name
		}
	}
	// Context atoms: every vocab name with the ctx: prefix, plus any
	// query-time atoms that live outside the frozen vocabulary.
	for i := 1; i <= c.vocab.Len(); i++ {
		name := c.vocab.Name(logic.Var(i))
		if len(name) > 4 && name[:4] == "ctx:" {
			d.Context[name[4:]] = model[i-1]
		}
	}
	for atom, l := range c.extraCtx {
		d.Context[atom] = model[l.Var()-1]
	}
	d.Metrics["cores_used"] = intlin.ValueOf(c.coresUsed, model)
	d.Metrics["cores_total"] = intlin.ValueOf(c.coresTotal, model)
	d.Metrics["cost_usd"] = intlin.ValueOf(c.costTotal, model)
	d.Metrics["power_w"] = intlin.ValueOf(c.powerTotal, model)
	d.Metrics["switch_ports"] = intlin.ValueOf(c.portTotal, model)
	return d
}

package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"netarch/internal/intlin"
	"netarch/internal/kb"
	"netarch/internal/logic"
	"netarch/internal/sat"
)

// This file defines the on-disk format for frozen compiled bases — the
// persistence half of DESIGN.md §7's cache (§9 documents the format). A
// base snapshot is a self-describing envelope around a sat.Solver
// snapshot:
//
//	magic (8B) | envelope version (u32) | KB content hash (32B) |
//	scenario fingerprint | vocabulary names | arith true literal |
//	selectors (name, note, lit) | coresUsed/coresTotal/costTotal bit
//	vectors | warm-start profile | solver snapshot | CRC32-IEEE over
//	everything above
//
// The warm-start section (v3) is a presence flag byte; when 1, the
// scenario family's last search profile follows — saved phases as a
// bitset and VSIDS activities quantized to uint16 (see internal/sat
// warmstart.go) — so a restarted process seeds its first solve from the
// previous process's last one. Both arrays are bounded by the solver's
// variable count; a profile is advisory (it biases search, never
// correctness), but a malformed one still fails decode like any other
// section.
//
// Everything else a compiled base carries (workloads, derived context,
// system/hardware literal maps, provides, sysNames, flow totals) is a
// deterministic function of the KB and the shape scenario, so the decoder
// recomputes it instead of trusting the file; the KB hash and fingerprint
// checks guarantee both sides agree on the inputs. A snapshot can
// therefore never disagree with a fresh compile about anything but the
// solver state — and the solver section restores byte-identically by
// construction (sat.RestoreSnapshot).
//
// Failure taxonomy: every decode failure wraps ErrSnapshotCorrupt,
// ErrSnapshotVersion, ErrSnapshotStale, or ErrSnapshotMismatch. The cache
// tier treats all four as "this file is useless": quarantine + recompile,
// never a query error.

// baseSnapshotMagic identifies a netarch base snapshot file.
var baseSnapshotMagic = [8]byte{'N', 'A', 'B', 'A', 'S', 'E', 1, '\n'}

// baseSnapshotVersion is the envelope format version; bump on any
// incompatible change (the embedded solver section carries its own).
// v2: the arena solver snapshot (sat snapshot v2) plus the sharded CNF
// conversion, which renumbers auxiliary variables relative to v1 bases.
// v3: the warm-start profile section between the arithmetic bit vectors
// and the solver snapshot.
// v4: the powerTotal/portTotal arithmetic bit vectors (MaxSAT cost
// models) after costTotal — and the circuits themselves change the
// compiled solver state, so v3 bases are unusable anyway.
// v5: the relevance-slice identity string after the fingerprint (empty
// for full-KB bases). A sliced base's derived state must be rebuilt
// from the recomputed sub-KB, so the slice a file was compiled under
// has to be named — and verified — before restore trusts it.
const baseSnapshotVersion = 5

// Snapshot decode failure classes.
var (
	// ErrSnapshotCorrupt: structurally invalid bytes (bad magic, bad CRC,
	// truncation, out-of-range references, vocabulary drift).
	ErrSnapshotCorrupt = errors.New("core: corrupt base snapshot")
	// ErrSnapshotVersion: a format version this build does not speak.
	ErrSnapshotVersion = errors.New("core: unsupported base snapshot version")
	// ErrSnapshotStale: the snapshot was compiled from a different
	// knowledge base (content hash mismatch).
	ErrSnapshotStale = errors.New("core: base snapshot stale (knowledge base changed)")
	// ErrSnapshotMismatch: the snapshot is for a different scenario shape.
	ErrSnapshotMismatch = errors.New("core: base snapshot fingerprint mismatch")
)

// kbContentHash fingerprints the knowledge base content. kb.Save renders
// through encoding/json (sorted map keys), so equal KBs hash equally.
func kbContentHash(k *kb.KB) [32]byte {
	h := sha256.New()
	if err := k.Save(h); err != nil {
		// Save into a hash cannot fail for a validated KB; a zero hash
		// would alias distinct KBs, so fail loudly in development.
		panic(fmt.Sprintf("core: hashing knowledge base: %v", err))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendLit(buf []byte, l sat.Lit) []byte {
	return binary.AppendVarint(buf, int64(l))
}

func appendInt(buf []byte, a intlin.Int) []byte {
	bits := a.Bits()
	buf = binary.AppendUvarint(buf, uint64(len(bits)))
	for _, l := range bits {
		buf = appendLit(buf, l)
	}
	return binary.AppendUvarint(buf, uint64(a.Max()))
}

// snapshotBase serializes a frozen compiled base. The base must come out
// of compileBase (frozen, level-0 solver); specialized per-query instances
// are not snapshot material.
func snapshotBase(c *compiled, kbHash [32]byte) []byte {
	solverSnap := c.solver.Snapshot()
	fp := c.sc.fingerprint()
	names := c.vocab.Names()

	buf := make([]byte, 0, len(solverSnap)+len(fp)+16*len(names)+1024)
	buf = append(buf, baseSnapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, baseSnapshotVersion)
	buf = append(buf, kbHash[:]...)
	buf = appendString(buf, fp)
	buf = appendString(buf, c.sliceID)

	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
	}

	buf = appendLit(buf, c.arith.True())
	buf = binary.AppendUvarint(buf, uint64(len(c.selectors)))
	for _, s := range c.selectors {
		buf = appendString(buf, s.name)
		buf = appendString(buf, s.note)
		buf = appendLit(buf, s.lit)
	}
	buf = appendInt(buf, c.coresUsed)
	buf = appendInt(buf, c.coresTotal)
	buf = appendInt(buf, c.costTotal)
	buf = appendInt(buf, c.powerTotal)
	buf = appendInt(buf, c.portTotal)

	var warm *sat.WarmProfile
	if c.warm != nil {
		warm = c.warm.p.Load()
	}
	if warm == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(warm.Phases)))
		var acc byte
		for i, ph := range warm.Phases {
			if ph {
				acc |= 1 << (i % 8)
			}
			if i%8 == 7 {
				buf = append(buf, acc)
				acc = 0
			}
		}
		if len(warm.Phases)%8 != 0 {
			buf = append(buf, acc)
		}
		buf = binary.AppendUvarint(buf, uint64(len(warm.Activity)))
		for _, q := range warm.Activity {
			buf = binary.LittleEndian.AppendUint16(buf, q)
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(solverSnap)))
	buf = append(buf, solverSnap...)

	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// envReader is a bounds-checked cursor over untrusted envelope bytes.
type envReader struct {
	b   []byte
	off int
}

func (r *envReader) rem() int { return len(r.b) - r.off }

func (r *envReader) fail(what string) error {
	return fmt.Errorf("%w: truncated or oversized %s at offset %d", ErrSnapshotCorrupt, what, r.off)
}

func (r *envReader) take(n int, what string) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, r.fail(what)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *envReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

// count reads a length prefix bounded by the remaining input (each
// counted element occupies ≥ 1 byte), so allocations stay O(input).
func (r *envReader) count(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, r.fail(what)
	}
	return int(v), nil
}

func (r *envReader) str(what string) (string, error) {
	n, err := r.count(what)
	if err != nil {
		return "", err
	}
	b, err := r.take(n, what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *envReader) lit(what string, nVars int) (sat.Lit, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	if v == 0 || v > int64(nVars) || v < -int64(nVars) {
		return 0, fmt.Errorf("%w: %s literal %d out of solver range", ErrSnapshotCorrupt, what, v)
	}
	return sat.Lit(v), nil
}

func (r *envReader) intlinInt(what string, nVars int) (intlin.Int, error) {
	n, err := r.count(what)
	if err != nil {
		return intlin.Int{}, err
	}
	bits := make([]sat.Lit, n)
	for i := range bits {
		if bits[i], err = r.lit(what, nVars); err != nil {
			return intlin.Int{}, err
		}
	}
	max, err := r.uvarint(what)
	if err != nil {
		return intlin.Int{}, err
	}
	if max > 1<<62 {
		return intlin.Int{}, fmt.Errorf("%w: %s maximum %d out of range", ErrSnapshotCorrupt, what, max)
	}
	return intlin.RestoreInt(bits, int64(max)), nil
}

// restoreBase decodes a base snapshot for the given shape scenario,
// validating it against the given KB revision's content hash and the
// shape's fingerprint. On success the returned compiled is
// indistinguishable from a fresh compile of the shape against k — same
// vocabulary, same selector list, and a solver that searches
// byte-identically. k and kbHash must be captured together (diskConfig
// does) so the derived state recomputed below comes from the exact KB
// the hash vouches for.
func restoreBase(k *kb.KB, shape *Scenario, kbHash [32]byte, data []byte) (*compiled, error) {
	return restoreBaseSlice(k, shape, kbHash, data, nil)
}

// restoreBaseSlice is restoreBase with an expected relevance slice: nil
// demands a full-KB snapshot (empty slice identity); non-nil demands a
// snapshot compiled under exactly that slice, and rebuilds the derived
// state from the slice's sub-KB — the same KB revision the compile saw.
// A slice-identity mismatch is ErrSnapshotMismatch: like a fingerprint
// alias, the file answers a different question than the caller's.
func restoreBaseSlice(k *kb.KB, shape *Scenario, kbHash [32]byte, data []byte, sl *kbSlice) (*compiled, error) {
	// Integrity first: CRC over everything before the trailing checksum.
	// Random corruption dies here, cheaply, before any structural work.
	if len(data) < len(baseSnapshotMagic)+4+32+4 {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum envelope", ErrSnapshotCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrSnapshotCorrupt)
	}

	r := &envReader{b: body}
	magic, err := r.take(len(baseSnapshotMagic), "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != string(baseSnapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	verBytes, err := r.take(4, "version")
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(verBytes); v != baseSnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (have %d)", ErrSnapshotVersion, v, baseSnapshotVersion)
	}
	hash, err := r.take(32, "knowledge-base hash")
	if err != nil {
		return nil, err
	}
	if string(hash) != string(kbHash[:]) {
		return nil, ErrSnapshotStale
	}
	fp, err := r.str("fingerprint")
	if err != nil {
		return nil, err
	}
	if fp != shape.fingerprint() {
		return nil, ErrSnapshotMismatch
	}
	sliceID, err := r.str("slice identity")
	if err != nil {
		return nil, err
	}
	wantSliceID := ""
	ck := k
	if sl != nil {
		wantSliceID = sl.id
		ck = sl.sub
	}
	if sliceID != wantSliceID {
		return nil, fmt.Errorf("%w: slice identity %q (want %q)", ErrSnapshotMismatch, sliceID, wantSliceID)
	}

	nNames, err := r.count("vocabulary size")
	if err != nil {
		return nil, err
	}
	names := make([]string, nNames)
	for i := range names {
		if names[i], err = r.str("vocabulary name"); err != nil {
			return nil, err
		}
	}

	// The solver section sits at the end; literals referenced by the
	// envelope are validated against its variable count, so decode order
	// is: scan ahead is unnecessary — the envelope stores literal fields
	// before the solver, but all of them fit in int64 varints and are
	// range-checked after the solver restores. Collect them raw first.
	trueLitRaw, err := r.lit("true", 1<<30)
	if err != nil {
		return nil, err
	}
	nSel, err := r.count("selector count")
	if err != nil {
		return nil, err
	}
	type rawSelector struct {
		name, note string
		lit        sat.Lit
	}
	rawSels := make([]rawSelector, nSel)
	for i := range rawSels {
		if rawSels[i].name, err = r.str("selector name"); err != nil {
			return nil, err
		}
		if rawSels[i].note, err = r.str("selector note"); err != nil {
			return nil, err
		}
		if rawSels[i].lit, err = r.lit("selector", 1<<30); err != nil {
			return nil, err
		}
	}
	coresUsed, err := r.intlinInt("coresUsed", 1<<30)
	if err != nil {
		return nil, err
	}
	coresTotal, err := r.intlinInt("coresTotal", 1<<30)
	if err != nil {
		return nil, err
	}
	costTotal, err := r.intlinInt("costTotal", 1<<30)
	if err != nil {
		return nil, err
	}
	powerTotal, err := r.intlinInt("powerTotal", 1<<30)
	if err != nil {
		return nil, err
	}
	portTotal, err := r.intlinInt("portTotal", 1<<30)
	if err != nil {
		return nil, err
	}

	warmFlag, err := r.take(1, "warm-start flag")
	if err != nil {
		return nil, err
	}
	var warmProf *sat.WarmProfile
	switch warmFlag[0] {
	case 0:
	case 1:
		nPh, err := r.uvarint("warm-start phase count")
		if err != nil {
			return nil, err
		}
		if nPh > 1<<24 {
			return nil, fmt.Errorf("%w: warm-start phase count %d out of range", ErrSnapshotCorrupt, nPh)
		}
		bits, err := r.take((int(nPh)+7)/8, "warm-start phases")
		if err != nil {
			return nil, err
		}
		phases := make([]bool, nPh)
		for i := range phases {
			phases[i] = bits[i/8]&(1<<(i%8)) != 0
		}
		nAct, err := r.uvarint("warm-start activity count")
		if err != nil {
			return nil, err
		}
		if nAct > 1<<24 {
			return nil, fmt.Errorf("%w: warm-start activity count %d out of range", ErrSnapshotCorrupt, nAct)
		}
		raw, err := r.take(2*int(nAct), "warm-start activities")
		if err != nil {
			return nil, err
		}
		activity := make([]uint16, nAct)
		for i := range activity {
			activity[i] = binary.LittleEndian.Uint16(raw[2*i:])
		}
		warmProf = &sat.WarmProfile{Phases: phases, Activity: activity}
	default:
		return nil, fmt.Errorf("%w: warm-start flag %d", ErrSnapshotCorrupt, warmFlag[0])
	}

	nSolver, err := r.count("solver section")
	if err != nil {
		return nil, err
	}
	solverSnap, err := r.take(nSolver, "solver section")
	if err != nil {
		return nil, err
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing envelope bytes", ErrSnapshotCorrupt, r.rem())
	}
	solver, err := sat.RestoreSnapshot(solverSnap)
	if err != nil {
		return nil, fmt.Errorf("%w: solver section: %v", ErrSnapshotCorrupt, err)
	}

	// Cross-validate every envelope literal against the restored solver's
	// variable space (1<<30 above only bounded the varint range).
	nVars := solver.NumVars()
	checkLit := func(what string, l sat.Lit) error {
		if int(l.Var()) > nVars {
			return fmt.Errorf("%w: %s literal %d beyond solver variables (%d)", ErrSnapshotCorrupt, what, l, nVars)
		}
		return nil
	}
	if err := checkLit("true", trueLitRaw); err != nil {
		return nil, err
	}
	for _, s := range rawSels {
		if err := checkLit("selector", s.lit); err != nil {
			return nil, err
		}
	}
	for _, a := range []intlin.Int{coresUsed, coresTotal, costTotal, powerTotal, portTotal} {
		for _, l := range a.Bits() {
			if err := checkLit("arith", l); err != nil {
				return nil, err
			}
		}
	}
	if nNames > nVars {
		return nil, fmt.Errorf("%w: vocabulary (%d) larger than solver variables (%d)", ErrSnapshotCorrupt, nNames, nVars)
	}
	if warmProf != nil && (len(warmProf.Phases) > nVars || len(warmProf.Activity) > nVars) {
		return nil, fmt.Errorf("%w: warm-start profile (%d phases, %d activities) beyond solver variables (%d)",
			ErrSnapshotCorrupt, len(warmProf.Phases), len(warmProf.Activity), nVars)
	}

	// Reassemble the compiled base: serialized solver + envelope state,
	// everything else recomputed from the KB and the shape exactly as
	// compileBase derives it.
	c := &compiled{
		kb:         ck,
		sc:         shape,
		vocab:      logic.RestoreVocabulary(names),
		solver:     solver,
		arith:      intlin.Attach(solver, trueLitRaw),
		sysLit:     make(map[string]sat.Lit),
		hwLit:      make(map[string]sat.Lit),
		selByName:  make(map[string]int, nSel),
		pool:       &clonePool{},
		warm:       &warmSlot{},
		pinnedCtx:  make(map[string]bool),
		derivedCtx: make(map[string]bool),
		frozen:     true,
		coresUsed:  coresUsed,
		coresTotal: coresTotal,
		costTotal:  costTotal,
		powerTotal: powerTotal,
		portTotal:  portTotal,
	}
	c.selectors = make([]selector, nSel)
	for i, s := range rawSels {
		c.selectors[i] = selector{name: s.name, note: s.note, lit: s.lit}
		if _, dup := c.selByName[s.name]; dup {
			return nil, fmt.Errorf("%w: duplicate selector %q", ErrSnapshotCorrupt, s.name)
		}
		c.selByName[s.name] = i
	}
	if err := c.pickWorkloads(); err != nil {
		// The fingerprint matched, so the shape's workloads exist in the
		// KB the hash vouches for; reaching here means the file lied.
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	c.deriveContext()

	// System/hardware literals resolve through the restored vocabulary;
	// a fresh compile allocated them before any Tseitin variable, so they
	// must all be present — absence means vocabulary drift.
	for i := range ck.Systems {
		name := ck.Systems[i].Name
		v := c.vocab.Lookup("system:" + name)
		if v == 0 {
			return nil, fmt.Errorf("%w: system %q missing from vocabulary", ErrSnapshotCorrupt, name)
		}
		c.sysLit[name] = sat.Lit(v)
	}
	for _, h := range c.allowedHardwareAll() {
		v := c.vocab.Lookup("hw:" + h.Name)
		if v == 0 {
			return nil, fmt.Errorf("%w: hardware %q missing from vocabulary", ErrSnapshotCorrupt, h.Name)
		}
		c.hwLit[h.Name] = sat.Lit(v)
	}
	if warmProf != nil {
		c.warm.p.Store(warmProf)
	}
	c.sysNames = make([]string, 0, len(c.sysLit))
	for name := range c.sysLit {
		c.sysNames = append(c.sysNames, name)
	}
	sort.Strings(c.sysNames)
	c.provides = make(map[kb.Property]bool)
	for i := range ck.Systems {
		for _, p := range ck.Systems[i].Solves {
			c.provides[p] = true
		}
	}
	if sl != nil {
		c.sliceID = sl.id
		c.sliceReq = sl.req
	}
	return c, nil
}

package core

import (
	"bytes"
	"testing"
)

// TestParallelCompileByteIdentity is the tentpole differential for the
// sharded CNF conversion: for every §5.1 query shape, the compiled base
// serialized through snapshotBase must be byte-identical whether the
// assertion shards were converted by 1, 2, or 8 workers. Everything
// downstream — clause order, auxiliary variable numbering, the solver's
// watch setup, Simplify's outcome — hangs off this, so one byte of
// divergence here would surface as worker-count-dependent answers.
func TestParallelCompileByteIdentity(t *testing.T) {
	k, cases := caseStudyQueries()
	hash := kbContentHash(k)
	for _, tc := range cases {
		shape := baseShape(&tc.sc)
		var want []byte
		for _, w := range []int{1, 2, 8} {
			e := mustEngine(t, k) // fresh engine: no cached base can leak across counts
			e.SetWorkers(w)
			base, err := e.compileBase(&shape)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			snap := snapshotBase(base, hash)
			if w == 1 {
				want = snap
				continue
			}
			if !bytes.Equal(snap, want) {
				t.Errorf("%s: compiled base for workers=%d differs from sequential (%d vs %d bytes)",
					tc.name, w, len(snap), len(want))
			}
		}
	}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"netarch/internal/kb"
)

// Relevance-filtered compilation (DESIGN.md §16). Before encoding, the
// engine computes the cone of influence of a scenario — the set of
// systems, rules and hardware SKUs that can possibly affect the verdict
// — and compiles only that slice of the knowledge base. At 50k SKUs the
// full encoding spends almost all of its time on hardware candidates
// and rule shards no query answer ever depends on; the slice shrinks
// the encoding back to case-study size while staying provably
// answer-equivalent (make scale-diff).
//
// The slice is computed from a *slice request*: the scenario's shape
// plus every query-side field that can pull knowledge into relevance —
// required properties, workload needs, pinned systems, bound
// references, and the *names* (not values) of pinned context atoms.
// Two queries with the same request share one slice and therefore one
// compiled base; the request is part of the cache key (sliceKeySuffix)
// and of the snapshot envelope (version 5), so a cached sliced base can
// never alias a full one.
//
// Soundness argument (both directions, per verdict):
//
//   - sliced ⇒ full: a model of the sliced encoding extends to the full
//     encoding by switching every out-of-cone system off. All full-only
//     constraints are then satisfied: requirement implications are
//     vacuous, property definitions only gain false disjuncts, and
//     arithmetic terms contribute zero. Dropped rules are grouped into
//     connected components over shared atoms, and a component is only
//     dropped if all of its rules evaluate true under an assignment
//     with every system/property atom false and its context atoms
//     uniformly true or uniformly false — an assignment the full
//     encoding always permits, because the component (by construction)
//     shares no atom with anything the in-cone encoding constrains.
//   - full ⇒ sliced: a model of the full encoding maps into the slice
//     by switching out-of-cone systems off (nothing in-cone requires
//     them — the cone is closed under requirement edges, any-of groups,
//     order mentions and kept-rule mentions) and remapping a dominated
//     SKU to its surviving dominator (equal on every referenced
//     capability, no worse on any resource axis, no more expensive).
//
// ForbiddenSystems deliberately do NOT join the request: forbidding an
// out-of-cone system is trivially satisfiable (specialize()'s extraSys
// fallback pins a private fresh variable) and can never flip a verdict,
// because anything that could force the system on pulls it into the
// cone. This matters operationally — Engine.Check forbids every
// non-design system, and including those would degenerate every check
// slice to the full KB.

// SliceMode selects the engine's relevance-slicing policy.
type SliceMode int32

const (
	// SliceAuto slices only when the catalog is large enough for slicing
	// to pay for itself (> sliceAutoThreshold SKUs). The default: small
	// catalogs compile byte-identically to the pre-slicing engine.
	SliceAuto SliceMode = iota
	// SliceOff never slices.
	SliceOff
	// SliceOn always slices.
	SliceOn
)

// sliceAutoThreshold is the catalog size (total SKUs) above which
// SliceAuto starts slicing. Chosen above the ~200-SKU seed catalog so
// every pre-existing differential keeps exercising the unsliced path.
const sliceAutoThreshold = 512

// sliceMemoCap bounds the per-engine request→slice memo; the map is
// reset wholesale when it fills (requests are tiny to recompute).
const sliceMemoCap = 256

// String renders the mode as its flag spelling.
func (m SliceMode) String() string {
	switch m {
	case SliceOff:
		return "off"
	case SliceOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseSliceMode parses -slice=on/off/auto.
func ParseSliceMode(s string) (SliceMode, error) {
	switch s {
	case "on":
		return SliceOn, nil
	case "off":
		return SliceOff, nil
	case "auto", "":
		return SliceAuto, nil
	}
	return SliceAuto, fmt.Errorf("core: unknown slice mode %q (want on, off or auto)", s)
}

// SetSliceMode sets the slicing policy. Safe to call concurrently with
// queries; takes effect for subsequent base compiles (cached bases keep
// the slice they were compiled with — their cache key names it).
func (e *Engine) SetSliceMode(m SliceMode) {
	if m != SliceOff && m != SliceOn {
		m = SliceAuto
	}
	e.sliceMode.Store(int32(m))
}

// GetSliceMode reports the current slicing policy.
func (e *Engine) GetSliceMode() SliceMode { return SliceMode(e.sliceMode.Load()) }

// sliceRequest is the canonical, order-independent summary of every
// scenario field that can affect slice membership.
type sliceRequest struct {
	shapeFP   string   // structural shape (workloads, fleet, hw restrictions, bounds)
	props     []string // sorted: workload needs ∪ sc.Require
	pins      []string // sorted: pinned systems
	ctxKeys   []string // sorted: names of pinned context atoms (derived ∪ scenario)
	boundRefs []string // sorted: bound reference systems
	// mandatoryHW names SKUs that must survive dominance pruning
	// (scenario pins/allow-lists); restrictedKinds skips pruning for
	// kinds whose candidate set the scenario already restricts.
	mandatoryHW     []string
	restrictedKinds map[kb.HardwareKind]bool
}

// key is the memo key for the request (unique per canonical content).
func (r *sliceRequest) key() string {
	var b strings.Builder
	b.WriteString(r.shapeFP)
	b.WriteString("|p=")
	b.WriteString(strings.Join(r.props, ","))
	b.WriteString("|s=")
	b.WriteString(strings.Join(r.pins, ","))
	b.WriteString("|c=")
	b.WriteString(strings.Join(r.ctxKeys, ","))
	b.WriteString("|b=")
	b.WriteString(strings.Join(r.boundRefs, ","))
	return b.String()
}

// sortedUnique sorts and dedups in place.
func sortedUnique(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// deriveSliceRequest canonicalizes a scenario into a slice request, or
// nil when the scenario references unknown workloads (the unsliced
// compile then reports the proper error).
func deriveSliceRequest(k *kb.KB, sc *Scenario, shape *Scenario) *sliceRequest {
	req := &sliceRequest{shapeFP: shape.fingerprint()}

	// Workload resolution mirrors compiled.pickWorkloads: empty means
	// every KB workload.
	var wls []*kb.Workload
	if len(sc.Workloads) == 0 {
		for i := range k.Workloads {
			wls = append(wls, &k.Workloads[i])
		}
	} else {
		for _, name := range sc.Workloads {
			w := k.WorkloadByName(name)
			if w == nil {
				return nil
			}
			wls = append(wls, w)
		}
	}
	for _, w := range wls {
		for _, p := range w.Needs {
			req.props = append(req.props, string(p))
		}
		for _, p := range w.Properties {
			req.ctxKeys = append(req.ctxKeys, p)
		}
	}
	for _, p := range sc.Require {
		req.props = append(req.props, string(p))
	}
	req.pins = append(req.pins, sc.PinnedSystems...)
	for a := range sc.Context {
		req.ctxKeys = append(req.ctxKeys, a)
	}
	// deriveContext always pins load_ge_40gbps (derived or user-set).
	req.ctxKeys = append(req.ctxKeys, "load_ge_40gbps")
	for _, b := range sc.Bounds {
		req.boundRefs = append(req.boundRefs, b.Reference)
	}
	req.restrictedKinds = map[kb.HardwareKind]bool{}
	for kind, name := range sc.PinnedHardware {
		req.restrictedKinds[kind] = true
		req.mandatoryHW = append(req.mandatoryHW, name)
	}
	for kind, names := range sc.AllowedHardware {
		req.restrictedKinds[kind] = true
		req.mandatoryHW = append(req.mandatoryHW, names...)
	}
	req.props = sortedUnique(req.props)
	req.pins = sortedUnique(req.pins)
	req.ctxKeys = sortedUnique(req.ctxKeys)
	req.boundRefs = sortedUnique(req.boundRefs)
	req.mandatoryHW = sortedUnique(req.mandatoryHW)
	return req
}

// kbSlice is a computed cone-of-influence slice: the sub-KB to compile
// plus its identity and size accounting.
type kbSlice struct {
	id  string // short content hash; part of the cache key and envelope
	req *sliceRequest
	sub *kb.KB

	systemsIn, systemsKept int
	rulesIn, rulesKept     int
	skusIn, skusKept       int
}

// sliceKeySuffix extends a shape fingerprint into the sliced cache key.
// Unsliced bases keep the bare fingerprint, so turning slicing on can
// never alias a full base.
func sliceKeySuffix(sl *kbSlice) string {
	if sl == nil {
		return ""
	}
	return "|slice:" + sl.id
}

// sliceFor resolves the slice for a scenario under the current mode,
// memoized per (KB generation, request). Returns nil when slicing is
// off, below the auto threshold, or the request cannot be derived.
func (e *Engine) sliceFor(k *kb.KB, gen uint64, sc *Scenario, shape *Scenario) *kbSlice {
	switch SliceMode(e.sliceMode.Load()) {
	case SliceOff:
		return nil
	case SliceAuto:
		if len(k.Hardware) <= sliceAutoThreshold {
			return nil
		}
	}
	req := deriveSliceRequest(k, sc, shape)
	if req == nil {
		return nil
	}
	key := fmt.Sprintf("%d|%s", gen, req.key())
	e.sliceMu.Lock()
	if sl, ok := e.sliceMemo[key]; ok {
		e.sliceMu.Unlock()
		e.sliceHits.Add(1)
		return sl
	}
	e.sliceMu.Unlock()
	// Compute off-lock: deterministic, so a racing duplicate is merely
	// redundant work, never an inconsistency.
	sl := computeSlice(k, req)
	e.sliceMu.Lock()
	if e.sliceMemo == nil || len(e.sliceMemo) >= sliceMemoCap {
		e.sliceMemo = make(map[string]*kbSlice, sliceMemoCap)
	}
	if prior, ok := e.sliceMemo[key]; ok {
		sl = prior
		e.sliceMu.Unlock()
	} else {
		e.sliceMemo[key] = sl
		e.sliceMu.Unlock()
		e.sliceComputed.Add(1)
		e.sliceSKUsIn.Add(int64(sl.skusIn))
		e.sliceSKUsKept.Add(int64(sl.skusKept))
	}
	return sl
}

// invalidateSliceMemoLocked drops memoized slices; callers hold e.mu
// (the memo has its own lock, but invalidation points already serialize
// on the engine lock).
func (e *Engine) invalidateSliceMemo() {
	e.sliceMu.Lock()
	e.sliceMemo = nil
	e.sliceMu.Unlock()
}

// atom namespace tests for slice membership.
func atomSystem(a string) (string, bool) { return strings.CutPrefix(a, "system:") }
func atomCtx(a string) (string, bool)    { return strings.CutPrefix(a, "ctx:") }
func atomProp(a string) (string, bool)   { return strings.CutPrefix(a, "prop:") }
func atomHw(a string) (string, bool)     { return strings.CutPrefix(a, "hw:") }

// computeSlice runs the cone-of-influence fixpoint and builds the
// sub-KB. Deterministic: iteration is over catalog order and sorted
// sets only.
func computeSlice(k *kb.KB, req *sliceRequest) *kbSlice {
	sysIdx := make(map[string]int, len(k.Systems))
	for i := range k.Systems {
		sysIdx[k.Systems[i].Name] = i
	}
	providersOf := map[string][]int{}
	for i := range k.Systems {
		for _, p := range k.Systems[i].Solves {
			providersOf[string(p)] = append(providersOf[string(p)], i)
		}
	}

	inCone := make([]bool, len(k.Systems))
	activeCtx := map[string]bool{}  // ctx atoms tied to in-cone structure
	activeProp := map[string]bool{} // prop atoms tied to in-cone structure
	var queue []int

	addSys := func(i int) {
		if i >= 0 && !inCone[i] {
			inCone[i] = true
			queue = append(queue, i)
		}
	}
	addSysName := func(name string) {
		if i, ok := sysIdx[name]; ok {
			addSys(i)
		}
	}
	// pullProp marks a property as referenced by the sliced encoding:
	// every provider must join the cone so the sliced property
	// definition equals the full one.
	pullProp := func(p string) {
		activeProp[p] = true
		for _, i := range providersOf[p] {
			addSys(i)
		}
	}

	// Seeds: providers of every needed property; pinned systems; every
	// network-stack system (the structural at-least-one disjunction is
	// always asserted); every order-mentioned system plus bound
	// references (performance bounds quantify over them); and the
	// request's context atoms.
	for _, p := range req.props {
		pullProp(p)
	}
	for _, name := range req.pins {
		addSysName(name)
	}
	for i := range k.Systems {
		if k.Systems[i].Role == kb.RoleNetworkStack {
			addSys(i)
		}
	}
	for _, spec := range k.Orders {
		for _, e := range spec.Edges {
			addSysName(e.Better)
			addSysName(e.Worse)
		}
		for _, q := range spec.Equals {
			addSysName(q.A)
			addSysName(q.B)
		}
	}
	for _, name := range req.boundRefs {
		addSysName(name)
	}
	for _, a := range req.ctxKeys {
		activeCtx[a] = true
	}

	ruleAtoms := make([][]string, len(k.Rules))
	for ri := range k.Rules {
		ruleAtoms[ri] = k.Rules[ri].Expr.Atoms(nil)
	}
	ruleKept := make([]bool, len(k.Rules))
	mandatoryHw := map[string]bool{}
	for _, name := range req.mandatoryHW {
		mandatoryHw[name] = true
	}

	// keepRule marks a rule in-cone and activates its atoms.
	keepRule := func(ri int) {
		ruleKept[ri] = true
		for _, a := range ruleAtoms[ri] {
			if name, ok := atomSystem(a); ok {
				addSysName(name)
			} else if name, ok := atomCtx(a); ok {
				activeCtx[name] = true
			} else if name, ok := atomProp(a); ok {
				pullProp(name)
			} else if name, ok := atomHw(a); ok {
				mandatoryHw[name] = true
			}
		}
	}

	for {
		changed := false
		// Close the system cone under requirement edges; activate the
		// atoms each newly coned system is structurally tied to.
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			s := &k.Systems[i]
			changed = true
			for _, d := range s.RequiresSystems {
				addSysName(d)
			}
			for _, group := range s.RequiresAnyOf {
				for _, d := range group {
					addSysName(d)
				}
			}
			for _, cond := range s.RequiresContext {
				activeCtx[cond.Atom] = true
			}
			for _, cond := range s.UsefulOnlyWhen {
				activeCtx[cond.Atom] = true
			}
			if s.AppModification {
				activeCtx["app_modifiable"] = true
			}
			// Solves makes the property atom depend on this system, so
			// rules mentioning it must be kept — but providers are only
			// pulled if some kept constraint references the property.
			for _, p := range s.Solves {
				if !activeProp[string(p)] {
					activeProp[string(p)] = true
				}
			}
		}
		// Keep every rule that mentions an active atom. Capability and
		// hardware atoms are always active: they are tied to the per-kind
		// SKU selection, which every scenario constrains.
		for ri := range k.Rules {
			if ruleKept[ri] {
				continue
			}
			mention := false
			for _, a := range ruleAtoms[ri] {
				if name, ok := atomSystem(a); ok {
					if i, known := sysIdx[name]; known && inCone[i] {
						mention = true
					}
				} else if name, ok := atomCtx(a); ok {
					if activeCtx[name] {
						mention = true
					}
				} else if name, ok := atomProp(a); ok {
					if activeProp[name] {
						mention = true
					}
				} else {
					// cap:/hw:/unknown namespaces: always active.
					mention = true
				}
				if mention {
					break
				}
			}
			if mention {
				keepRule(ri)
				changed = true
			}
		}
		if changed {
			continue
		}
		// Stable: check that every still-unkept rule component is
		// genuinely droppable — satisfiable by the canonical "everything
		// irrelevant is off" witness (system/prop atoms false, its ctx
		// atoms uniformly false or uniformly true). Components that are
		// not get conservatively kept, which reactivates the fixpoint.
		if !dropComponentsOrKeep(k, ruleAtoms, ruleKept, keepRule) {
			break
		}
	}

	keepHw := pruneHardware(k, inCone, ruleAtoms, ruleKept, mandatoryHw, req.restrictedKinds)

	sub := &kb.KB{Workloads: k.Workloads, Orders: k.Orders}
	for i := range k.Systems {
		if inCone[i] {
			sub.Systems = append(sub.Systems, k.Systems[i])
		}
	}
	for i := range k.Hardware {
		if keepHw[i] {
			sub.Hardware = append(sub.Hardware, k.Hardware[i])
		}
	}
	for ri := range k.Rules {
		if ruleKept[ri] {
			sub.Rules = append(sub.Rules, k.Rules[ri])
		}
	}

	sl := &kbSlice{
		req:       req,
		sub:       sub,
		systemsIn: len(k.Systems), systemsKept: len(sub.Systems),
		rulesIn: len(k.Rules), rulesKept: len(sub.Rules),
		skusIn: len(k.Hardware), skusKept: len(sub.Hardware),
	}
	h := sha256.New()
	for _, s := range sub.Systems {
		h.Write([]byte(s.Name))
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
	for _, hw := range sub.Hardware {
		h.Write([]byte(hw.Name))
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
	for _, r := range sub.Rules {
		h.Write([]byte(r.Name))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	sl.id = hex.EncodeToString(sum[:8])
	return sl
}

// dropComponentsOrKeep partitions the unkept rules into connected
// components over shared atoms and verifies each component evaluates
// true under the drop witness (system/prop atoms false, ctx atoms
// uniformly false or uniformly true). Components failing the check are
// kept via keepRule. Returns true if anything was kept (fixpoint must
// continue), false when every remaining component is provably
// droppable.
func dropComponentsOrKeep(k *kb.KB, ruleAtoms [][]string, ruleKept []bool, keepRule func(int)) bool {
	// Union-find over unkept rule indices, unioned through shared atoms.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	atomOwner := map[string]int{}
	for ri := range k.Rules {
		if ruleKept[ri] {
			continue
		}
		parent[ri] = ri
		for _, a := range ruleAtoms[ri] {
			if prev, ok := atomOwner[a]; ok {
				union(prev, ri)
			} else {
				atomOwner[a] = ri
			}
		}
	}
	okFalse := map[int]bool{}
	okTrue := map[int]bool{}
	for ri := range parent {
		root := find(ri)
		if _, seen := okFalse[root]; !seen {
			okFalse[root], okTrue[root] = true, true
		}
	}
	for ri := range parent {
		root := find(ri)
		if !evalDropWitness(k.Rules[ri].Expr, false) {
			okFalse[root] = false
		}
		if !evalDropWitness(k.Rules[ri].Expr, true) {
			okTrue[root] = false
		}
	}
	keptAny := false
	// Deterministic order: scan rules, not map order.
	for ri := range k.Rules {
		if ruleKept[ri] {
			continue
		}
		root := find(ri)
		if !okFalse[root] && !okTrue[root] {
			keepRule(ri)
			keptAny = true
		}
	}
	return keptAny
}

// evalDropWitness evaluates a rule under the drop witness: system,
// prop, hw and cap atoms false (out-of-cone structure is off; rules
// with cap/hw atoms are never candidates for dropping anyway), ctx
// atoms uniformly ctxVal.
func evalDropWitness(e kb.Expr, ctxVal bool) bool {
	switch e.Op {
	case "atom":
		if _, ok := atomCtx(e.Atom); ok {
			return ctxVal
		}
		return false
	case "true":
		return true
	case "false":
		return false
	case "not":
		return !evalDropWitness(e.Args[0], ctxVal)
	case "and":
		for _, a := range e.Args {
			if !evalDropWitness(a, ctxVal) {
				return false
			}
		}
		return true
	case "or":
		for _, a := range e.Args {
			if evalDropWitness(a, ctxVal) {
				return true
			}
		}
		return false
	case "implies":
		return !evalDropWitness(e.Args[0], ctxVal) || evalDropWitness(e.Args[1], ctxVal)
	case "iff":
		return evalDropWitness(e.Args[0], ctxVal) == evalDropWitness(e.Args[1], ctxVal)
	}
	// Unknown op: never claim satisfied (conservative — rule gets kept).
	return false
}

// smallerBetterQuant reports resource axes where less is at least as
// good: power feeds only the minimized power total, and switch port
// count only the minimized port total. Every other quantity either
// relaxes a lower-bound budget (cores, memory, stages, SRAM, QoS,
// bandwidth) or is unused by the circuits, where assuming bigger-better
// only makes dominance stricter — never unsound.
func smallerBetterQuant(kind kb.HardwareKind, res kb.Resource) bool {
	if res == kb.ResPowerW {
		return true
	}
	return kind == kb.KindSwitch && res == kb.ResPortCount
}

// pruneHardware drops dominated SKUs per kind. Candidates are grouped
// by their signature over the capabilities the sliced encoding can
// observe (cone systems' RequiresCaps, kept rules' cap atoms, and CXL
// for servers — the memory model reads it); within a group, capability
// semantics are identical, so a SKU that is no better on any quantity
// axis and no cheaper than a surviving SKU can never change a verdict,
// an optimum, or a Pareto frontier. Kinds the scenario restricts
// (pinned/allow-listed) keep exactly their restricted set; mandatory
// SKUs (pins, rule mentions) always survive.
func pruneHardware(k *kb.KB, inCone []bool, ruleAtoms [][]string, ruleKept []bool,
	mandatory map[string]bool, restricted map[kb.HardwareKind]bool) []bool {

	observable := map[kb.HardwareKind]map[kb.Capability]bool{
		kb.KindSwitch: {}, kb.KindNIC: {}, kb.KindServer: {kb.CapCXL: true},
	}
	for i := range k.Systems {
		if !inCone[i] {
			continue
		}
		for kind, caps := range k.Systems[i].RequiresCaps {
			if m, ok := observable[kind]; ok {
				for _, c := range caps {
					m[c] = true
				}
			}
		}
	}
	for ri := range k.Rules {
		if !ruleKept[ri] {
			continue
		}
		for _, a := range ruleAtoms[ri] {
			var kindStr, capStr string
			if parseCapAtom(a, &kindStr, &capStr) {
				if m, ok := observable[kb.HardwareKind(kindStr)]; ok {
					m[kb.Capability(capStr)] = true
				}
			}
		}
	}

	keep := make([]bool, len(k.Hardware))
	type group struct{ kept []int } // surviving SKU indices, cost-ascending
	groups := map[string]*group{}
	sig := func(h *kb.Hardware) string {
		obs := observable[h.Kind]
		var caps []string
		for _, c := range h.Caps {
			if obs[c] {
				caps = append(caps, string(c))
			}
		}
		sort.Strings(caps)
		return string(h.Kind) + "|" + strings.Join(caps, ",")
	}
	// dominates reports a ≥ b on every axis (a no worse everywhere).
	dominates := func(a, b *kb.Hardware) bool {
		if a.CostUSD > b.CostUSD {
			return false
		}
		for res, bv := range b.Quant {
			av := a.Q(res)
			if smallerBetterQuant(a.Kind, res) {
				if av > bv {
					return false
				}
			} else if av < bv {
				return false
			}
		}
		for res, av := range a.Quant {
			if _, ok := b.Quant[res]; ok {
				continue
			}
			// Axis only a has: a's value must be on the good side of b's
			// implicit zero.
			if smallerBetterQuant(a.Kind, res) && av > 0 {
				return false
			}
		}
		return true
	}

	// Cost-ascending pass per kind: a SKU survives unless an
	// already-surviving group member dominates it. Sorting by cost makes
	// the surviving set a proper skyline prefix and keeps the scan
	// near-linear; ties resolve to catalog order, so byte-identical
	// firmware clones collapse onto the earliest listing.
	idx := make([]int, 0, len(k.Hardware))
	for i := range k.Hardware {
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return k.Hardware[idx[x]].CostUSD < k.Hardware[idx[y]].CostUSD
	})
	for _, i := range idx {
		h := &k.Hardware[i]
		if restricted[h.Kind] {
			keep[i] = mandatory[h.Name]
			continue
		}
		if mandatory[h.Name] {
			keep[i] = true
			continue
		}
		g := groups[sig(h)]
		if g == nil {
			g = &group{}
			groups[sig(h)] = g
		}
		dominated := false
		for _, j := range g.kept {
			if dominates(&k.Hardware[j], h) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep[i] = true
			g.kept = append(g.kept, i)
		}
	}
	return keep
}

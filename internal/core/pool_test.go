package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/sat"
)

// TestClonePoolServesQueries proves pooling is a pure latency knob: with
// a pool configured, queries answer identically to the unpooled engine,
// the pool actually serves hits after a prewarm, and a handed-out clone
// is never re-admitted (the pool only ever holds pristine clones).
func TestClonePoolServesQueries(t *testing.T) {
	k := catalog.CaseStudy()
	sc := Scenario{Workloads: []string{"inference_app"}}

	plain, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}

	pooled, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	pooled.SetClonePool(4)
	if err := pooled.Prewarm(sc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		got, err := pooled.Synthesize(sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Verdict != want.Verdict {
			t.Fatalf("pooled verdict %v, unpooled %v", got.Verdict, want.Verdict)
		}
		if want.Verdict == Feasible {
			if gs, ws := len(got.Design.Systems), len(want.Design.Systems); gs != ws {
				t.Fatalf("pooled design %v, unpooled %v", got.Design.Systems, want.Design.Systems)
			}
		}
	}
	st := pooled.CacheStats()
	if st.PoolHits == 0 {
		t.Fatalf("prewarmed pool served no hits: %+v", st)
	}
	if st.PoolHits+st.PoolMisses != 6 {
		t.Fatalf("pool hits(%d)+misses(%d) != 6 pooled queries", st.PoolHits, st.PoolMisses)
	}
}

// TestClonePoolTakeNeverReadmits pins the structural quarantine: take
// hands out each pooled clone exactly once, and nothing ever flows back.
func TestClonePoolTakeNeverReadmits(t *testing.T) {
	k := catalog.CaseStudy()
	eng, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetClonePool(3)
	sc := Scenario{Workloads: []string{"inference_app"}}
	if err := eng.Prewarm(sc); err != nil {
		t.Fatal(err)
	}
	base, shared, err := eng.baseFor(&sc)
	if err != nil || !shared {
		t.Fatalf("baseFor: shared=%v err=%v", shared, err)
	}
	got := map[interface{}]bool{}
	for i := 0; i < 3; i++ {
		s := base.pool.take()
		if s == nil {
			t.Fatalf("take %d: pool empty early", i)
		}
		if got[s] {
			t.Fatalf("take %d: clone handed out twice", i)
		}
		got[s] = true
	}
	if s := base.pool.take(); s != nil {
		t.Fatalf("pool produced a 4th clone from a pool of 3 with no refill")
	}
}

// TestClonePoolTakeNBatch pins the batch acquire: takeN hands out up to
// k distinct clones in one lock round-trip, returns short (or nothing)
// when the pool runs dry, and a poisoned clone — one that was handed out
// and mutated by a query — is never re-admitted, even after refills.
func TestClonePoolTakeNBatch(t *testing.T) {
	eng, err := New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetClonePool(4)
	sc := Scenario{Workloads: []string{"inference_app"}}
	if err := eng.Prewarm(sc); err != nil {
		t.Fatal(err)
	}
	base, shared, err := eng.baseFor(&sc)
	if err != nil || !shared {
		t.Fatalf("baseFor: shared=%v err=%v", shared, err)
	}
	poisoned := map[*sat.Solver]bool{}
	first := base.pool.takeN(3)
	if len(first) != 3 {
		t.Fatalf("takeN(3) from a pool of 4 returned %d", len(first))
	}
	for _, s := range first {
		if s == nil || poisoned[s] {
			t.Fatal("takeN returned nil or a duplicate clone")
		}
		poisoned[s] = true
		s.NewVar() // dirty it, as a real query would
	}
	rest := base.pool.takeN(10)
	if len(rest) != 1 {
		t.Fatalf("takeN(10) from 1 remaining returned %d", len(rest))
	}
	if poisoned[rest[0]] {
		t.Fatal("takeN re-issued a handed-out clone")
	}
	poisoned[rest[0]] = true
	if got := base.pool.takeN(5); got != nil {
		t.Fatalf("takeN on an empty pool returned %d clones", len(got))
	}
	if got := base.pool.takeN(0); got != nil {
		t.Fatalf("takeN(0) returned %d clones", len(got))
	}
	// Refill synchronously: every new clone must be fresh — poisoned
	// clones have no path back in (structural quarantine).
	base.pool.refill(base.solver, 4)
	for _, s := range base.pool.takeN(4) {
		if poisoned[s] {
			t.Fatal("refill re-admitted a poisoned clone")
		}
	}

	// takeCloneN: pooled while they last, inline clones for the rest.
	base.pool.refill(base.solver, 4)
	clones := eng.takeCloneN(base, 7)
	if len(clones) != 7 {
		t.Fatalf("takeCloneN(7) returned %d", len(clones))
	}
	seen := map[*sat.Solver]bool{}
	for _, s := range clones {
		if s == nil || seen[s] || s == base.solver {
			t.Fatal("takeCloneN returned nil, a duplicate, or the base solver itself")
		}
		seen[s] = true
	}
}

// TestClonePoolOffByDefault: with no SetClonePool call the engine clones
// inline and the pool counters stay zero (pre-pool behavior, exactly).
func TestClonePoolOffByDefault(t *testing.T) {
	eng, err := New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Workloads: []string{"inference_app"}}
	for i := 0; i < 3; i++ {
		if _, err := eng.Synthesize(sc); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.CacheStats()
	if st.PoolHits != 0 || st.PoolMisses != 0 {
		t.Fatalf("pool counters moved with pooling disabled: %+v", st)
	}
}

// TestCacheStatsSnapshotHammer hammers CacheStats from a reader while
// concurrent queries bump the counters, pinning the documented snapshot
// semantics (cache.go:CacheStats): the Hits+DiskHits+Misses sum is
// monotone across reads, bounded by started-queries from above and
// completed-queries from below, and reconciles exactly once the engine
// quiesces. Run it under -race to also catch torn counter access.
func TestCacheStatsSnapshotHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test")
	}
	eng, err := New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetClonePool(2)

	// Two scenario shapes so hits and misses both move.
	scs := []Scenario{
		{Workloads: []string{"inference_app"}},
		{Workloads: []string{"inference_app"}, NumServers: 24},
	}

	var started, completed atomic.Int64
	const goroutines, rounds = 8, 6
	var workers, reader sync.WaitGroup
	stop := make(chan struct{})

	// Reader: continuously snapshot and check the envelope invariants.
	readerErr := make(chan error, 1)
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastSum int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			before := completed.Load()
			st := eng.CacheStats()
			after := started.Load()
			sum := st.Hits + st.DiskHits + st.Misses
			if sum < lastSum {
				select {
				case readerErr <- fmt.Errorf("sum went backwards: %d -> %d", lastSum, sum):
				default:
				}
				return
			}
			lastSum = sum
			if sum < before || sum > after {
				select {
				case readerErr <- fmt.Errorf("sum %d outside [completed=%d, started=%d]", sum, before, after):
				default:
				}
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for r := 0; r < rounds; r++ {
				sc := scs[(g+r)%len(scs)]
				started.Add(1)
				if _, err := eng.Synthesize(sc); err != nil {
					t.Error(err)
				}
				completed.Add(1)
			}
		}(g)
	}
	// Stop the reader only after the workers are done.
	workers.Wait()
	close(stop)
	reader.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	st := eng.CacheStats()
	total := int64(goroutines * rounds)
	if st.Hits+st.DiskHits+st.Misses != total {
		t.Fatalf("quiesced counters do not reconcile: hits=%d diskHits=%d misses=%d, want sum %d",
			st.Hits, st.DiskHits, st.Misses, total)
	}
}

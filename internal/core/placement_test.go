package core

import (
	"strings"
	"testing"

	"netarch/internal/kb"
)

// placementKB extends miniKB with a rack-pinned workload.
func placementKB(peakCores int64, racks []string) *kb.KB {
	k := miniKB()
	k.Workloads = append(k.Workloads, kb.Workload{
		Name:       "pinned",
		DeployedAt: racks,
		PeakCores:  peakCores,
		Needs:      []kb.Property{"congestion_control"},
	})
	return k
}

func TestRackPlacementFits(t *testing.T) {
	// 600 cores over 2 racks = 300/rack; 8 servers × 64 cores = 512/rack
	// with srv-big. srv-small (16 cores → 128/rack) must be excluded.
	k := placementKB(600, []string{"rack0", "rack1"})
	e := mustEngine(t, k)
	sc := Scenario{
		RackServers: map[string]int{"rack0": 8, "rack1": 8},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("infeasible: %v", rep.Explanation)
	}
	if rep.Design.Hardware[kb.KindServer] != "srv-big" {
		t.Errorf("rack demand must force big servers, got %s",
			rep.Design.Hardware[kb.KindServer])
	}
}

func TestRackPlacementOverflow(t *testing.T) {
	// 300 cores/rack demand vs 4 servers × 64 = 256/rack: infeasible.
	k := placementKB(600, []string{"rack0", "rack1"})
	e := mustEngine(t, k)
	sc := Scenario{
		RackServers: map[string]int{"rack0": 4, "rack1": 4},
	}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("overfull racks must be infeasible")
	}
	cited := false
	for _, c := range rep.Explanation.Conflicts {
		if strings.HasPrefix(c.Name, "resources:rack:") {
			cited = true
		}
	}
	if !cited {
		t.Errorf("explanation must cite the rack budget: %v", rep.Explanation)
	}
}

func TestRackPlacementUnknownRack(t *testing.T) {
	k := placementKB(10, []string{"rack-missing"})
	e := mustEngine(t, k)
	rep, err := e.Synthesize(Scenario{
		RackServers: map[string]int{"rack0": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("placement on an unknown rack must be infeasible")
	}
	cited := false
	for _, c := range rep.Explanation.Conflicts {
		if c.Name == "resources:rack:rack-missing" {
			cited = true
		}
	}
	if !cited {
		t.Errorf("explanation must name the missing rack: %v", rep.Explanation)
	}
}

func TestRackPlacementIgnoredWithoutMap(t *testing.T) {
	// Without RackServers the DeployedAt list is advisory only.
	k := placementKB(10000, []string{"rack0"})
	k.Workloads[0].PeakCores = 0 // avoid tripping the fleet core budget
	e := mustEngine(t, k)
	sc := Scenario{Workloads: []string{"pinned"}, NumServers: 200}
	rep, err := e.Synthesize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Fatalf("without RackServers placement must not constrain: %v", rep.Explanation)
	}
}

func TestRacksOfHelper(t *testing.T) {
	m := RacksOf([]string{"a", "b"}, 4)
	if len(m) != 2 || m["a"] != 4 || m["b"] != 4 {
		t.Errorf("RacksOf wrong: %v", m)
	}
}

package core

import (
	"math/rand"
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

func TestDatalogCheckCleanDesign(t *testing.T) {
	e := mustEngine(t, miniKB())
	good := Design{
		Systems: []string{"linux", "dctcp"},
		Hardware: map[kb.HardwareKind]string{
			kb.KindSwitch: "sw-ecn", kb.KindNIC: "nic-basic", kb.KindServer: "srv-small",
		},
	}
	viols, err := e.DatalogCheck(good, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("clean design flagged: %v", viols)
	}
}

func TestDatalogCheckFindsStructuredViolations(t *testing.T) {
	e := mustEngine(t, miniKB())
	cases := []struct {
		name   string
		design Design
		sc     Scenario
		want   string
	}{
		{
			"missing cap",
			Design{Systems: []string{"linux", "dctcp"},
				Hardware: map[kb.HardwareKind]string{kb.KindSwitch: "sw-fixed"}},
			Scenario{},
			"cap: dctcp needs ECN on switch",
		},
		{
			"conflict is symmetric-enough",
			Design{Systems: []string{"linux", "cubic", "dctcp"}},
			Scenario{},
			"exclusive",
		},
		{
			"context requirement",
			Design{Systems: []string{"shenango"},
				Hardware: map[kb.HardwareKind]string{kb.KindNIC: "nic-poll"}},
			Scenario{Context: map[string]bool{"deadline_tight": true}},
			"context: shenango requires context deadline_tight",
		},
		{
			"need uncovered",
			Design{Systems: []string{"linux"}},
			Scenario{Require: []kb.Property{"congestion_control"}},
			"need: nothing deployed usefully solves congestion_control",
		},
		{
			"useless provider does not count",
			Design{Systems: []string{"linux", "annulus"},
				Hardware: map[kb.HardwareKind]string{kb.KindSwitch: "sw-p4"}},
			Scenario{Require: []kb.Property{"congestion_control"},
				Context: map[string]bool{"wan_dc_mix": false}},
			"need: nothing deployed usefully solves congestion_control",
		},
	}
	for _, c := range cases {
		viols, err := e.DatalogCheck(c.design, c.sc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		found := false
		for _, v := range viols {
			if strings.Contains(v.String(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want violation containing %q, got %v", c.name, c.want, viols)
		}
	}
}

func TestDatalogBlindToFreeFormRules(t *testing.T) {
	// §3.4's trade-off made concrete: the Horn-clause backend cannot see
	// the simon_needs_smartnic rule, while the SAT engine rejects the
	// same design. (Timestamps present, SmartNIC absent.)
	k := catalog.CaseStudy()
	e := mustEngine(t, k)
	design := Design{
		Systems: []string{"linux", "cubic", "ecmp", "simon", "tcp", "ovs"},
		Hardware: map[kb.HardwareKind]string{
			kb.KindSwitch: "Aristo EX-32x100G",
			kb.KindNIC:    "Mellanor CX-100G", // timestamps yes, SmartNIC no
			kb.KindServer: "Suprima HD-128c",
		},
	}
	sc := Scenario{Workloads: []string{"inference_app"}}

	viols, err := e.DatalogCheck(design, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		if strings.Contains(v.Detail, "SMARTNIC") {
			t.Fatalf("datalog backend unexpectedly saw the SmartNIC rule: %v", v)
		}
	}

	rep, err := e.Check(design, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Fatal("SAT engine must reject the design via the SmartNIC rule")
	}
	cited := false
	for _, c := range rep.Explanation.Conflicts {
		if c.Name == "rule:simon_needs_smartnic" {
			cited = true
		}
	}
	if !cited {
		t.Errorf("SAT explanation must cite the rule: %v", rep.Explanation)
	}
}

func TestDatalogAgreesWithSATOnStructuredConstraints(t *testing.T) {
	// Randomized agreement: for designs over a KB with no free-form rules
	// and no binding arithmetic, the two backends must agree.
	k := miniKB()
	k.Rules = nil // remove the PFC rule: structured constraints only
	e := mustEngine(t, k)
	r := rand.New(rand.NewSource(31))
	names := make([]string, len(k.Systems))
	for i := range k.Systems {
		names[i] = k.Systems[i].Name
	}
	agree := 0
	for trial := 0; trial < 60; trial++ {
		var systems []string
		for _, n := range names {
			if r.Intn(3) == 0 {
				systems = append(systems, n)
			}
		}
		design := Design{
			Systems: systems,
			Hardware: map[kb.HardwareKind]string{
				kb.KindSwitch: []string{"sw-fixed", "sw-ecn", "sw-p4", "sw-p4-big"}[r.Intn(4)],
				kb.KindNIC:    []string{"nic-basic", "nic-poll"}[r.Intn(2)],
				kb.KindServer: "srv-big",
			},
		}
		sc := Scenario{Context: map[string]bool{
			"deadline_tight": r.Intn(2) == 0,
			"wan_dc_mix":     r.Intn(2) == 0,
			"pfc_enabled":    r.Intn(2) == 0,
		}}
		viols, err := e.DatalogCheck(design, sc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Check(design, sc)
		if err != nil {
			t.Fatal(err)
		}
		// Filter arithmetic/stage-budget conflicts: the Datalog backend
		// does not model them.
		satStructural := rep.Verdict == Infeasible
		if satStructural {
			// Ignore the query's own pins; if the substantive conflict
			// items are all arithmetic/selection facts, the case is out
			// of the Datalog backend's scope by design.
			onlyArith := true
			for _, c := range rep.Explanation.Conflicts {
				switch {
				case strings.HasPrefix(c.Name, "pin:"),
					strings.HasPrefix(c.Name, "forbid:"),
					strings.HasPrefix(c.Name, "context:"):
					// query framing, not a constraint class
				case strings.HasPrefix(c.Name, "resources:"),
					strings.HasPrefix(c.Name, "hardware:"):
					// arithmetic / SKU-selection: datalog doesn't model
				default:
					onlyArith = false
				}
			}
			if onlyArith {
				continue
			}
		}
		if satStructural == (len(viols) > 0) {
			agree++
		} else {
			t.Errorf("trial %d disagreement: sat=%v datalog=%v\ndesign=%v sc=%v\nexpl=%v",
				trial, rep.Verdict, viols, design.Systems, sc.Context, rep.Explanation)
		}
	}
	if agree == 0 {
		t.Fatal("no comparable trials")
	}
}

func TestDatalogCheckErrors(t *testing.T) {
	e := mustEngine(t, miniKB())
	if _, err := e.DatalogCheck(Design{Systems: []string{"ghost"}}, Scenario{}); err == nil {
		t.Error("unknown system must error")
	}
	if _, err := e.DatalogCheck(Design{
		Hardware: map[kb.HardwareKind]string{kb.KindNIC: "ghost"},
	}, Scenario{}); err == nil {
		t.Error("unknown hardware must error")
	}
	if _, err := e.DatalogCheck(Design{}, Scenario{Workloads: []string{"ghost"}}); err == nil {
		t.Error("unknown workload must error")
	}
}

package core

import (
	"errors"
	"fmt"

	"netarch/internal/kb"
)

// Live knowledge-base updates. Production catalogs churn — one new SKU,
// one edited rule — and before UpdateKB any mutation meant dropping every
// compiled base, invalidating every disk snapshot, and paying cold-start
// compiles on the next queries. UpdateKB instead revalidates the cache in
// place: each cached base is delta-recompiled against the incoming KB,
// reusing the per-assertion CNF shards the edit did not touch (see
// logic.ConvertShardsDelta — the result is byte-identical to a cold
// compile of the new KB), warm-start profiles are carried over, and the
// base's disk snapshot is rewritten under the new KB hash so the disk
// tier stays warm too. In-flight queries are never disturbed: they solve
// on private clones of the old bases, which stay frozen and valid until
// the last query referencing them finishes.

// KBUpdate reports what one UpdateKB call did.
type KBUpdate struct {
	// Diff is the section-level difference between the outgoing and
	// incoming KBs (see kb.Diff).
	Diff []kb.DiffEntry
	// BasesUpdated counts cached bases delta-recompiled against the new
	// KB; BasesDropped counts bases whose shape no longer compiles under
	// it (e.g. their workload was removed) and were evicted instead.
	BasesUpdated int
	BasesDropped int
	// ShardsReused and ShardsConverted total, across all updated bases,
	// how many per-assertion CNF shards were spliced from the previous
	// compile vs reconverted. A one-assertion edit shows almost all reuse.
	ShardsReused    int
	ShardsConverted int
	// ProfilesCarried counts warm-start profiles transplanted onto
	// updated bases (truncated to the new variable space when it shrank).
	ProfilesCarried int
	// SnapshotsRewritten counts disk snapshots rewritten under the new KB
	// hash (zero without a cache directory).
	SnapshotsRewritten int
}

// String renders the update summary.
func (u *KBUpdate) String() string {
	return fmt.Sprintf("%d KB changes; %d bases updated (%d dropped), %d shards reused / %d converted, %d profiles carried, %d snapshots rewritten",
		len(u.Diff), u.BasesUpdated, u.BasesDropped, u.ShardsReused, u.ShardsConverted, u.ProfilesCarried, u.SnapshotsRewritten)
}

// UpdateKB swaps the engine's knowledge base for newKB, delta-recompiling
// every cached base in place of dropping it. Safe to call concurrently
// with queries: in-flight queries finish on clones of the outgoing bases,
// queries admitted after the swap see only the new ones, and a compile
// racing the update is detected by the KB generation counter and never
// cached (see baseFor). Concurrent UpdateKB calls serialize.
//
// The incoming KB is validated first; on error the engine is unchanged.
// newKB must not be mutated after the call (the engine holds it by
// reference — to edit further, Save/Load a copy or build a new KB).
//
// Every updated base is byte-identical to what a cold compile against
// newKB would produce, so answers never depend on the update history.
// Bases revived from disk snapshots carry no shard set and recompile
// fully; they still count as updated.
func (e *Engine) UpdateKB(newKB *kb.KB) (*KBUpdate, error) {
	if newKB == nil {
		return nil, errors.New("core: UpdateKB: nil knowledge base")
	}
	if err := newKB.Validate(); err != nil {
		return nil, err
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()

	old := e.kbSnapshot()
	up := &KBUpdate{Diff: kb.Diff(old, newKB)}
	if len(up.Diff) == 0 {
		// Content-identical KB: adopt the new pointer (callers may hold
		// it) but keep every base, snapshot, and the generation — bases
		// compiled against the old pointer answer identically.
		e.mu.Lock()
		e.kbCur = newKB
		e.mu.Unlock()
		return up, nil
	}

	// Snapshot the cached bases in insertion order under the read lock.
	e.mu.RLock()
	keys := append([]string(nil), e.baseOrder...)
	outgoing := make(map[string]*compiled, len(keys))
	for _, key := range keys {
		outgoing[key] = e.bases[key]
	}
	e.mu.RUnlock()

	// Delta-recompile each base outside the lock: outgoing bases are
	// frozen and read-only, so queries keep cloning them while we build
	// their successors.
	type rebuilt struct {
		key  string
		base *compiled
	}
	fresh := make([]rebuilt, 0, len(keys))
	for _, key := range keys {
		ob := outgoing[key]
		// Sliced bases recompute their cone under the incoming KB: the
		// request is re-derived from the stored slice request, so a SKU or
		// rule edit that changes slice membership changes the sub-KB (and
		// the cache key — slice identity is part of it). When the slice is
		// unchanged, ConvertShardsDelta reuses every untouched shard; when
		// it changed, exactly the shards whose assertions differ under the
		// new sub-KB are reconverted.
		var newSlice *kbSlice
		compileKB := newKB
		newKey := ob.sc.fingerprint()
		if ob.sliceReq != nil {
			newSlice = computeSlice(newKB, ob.sliceReq)
			compileKB = newSlice.sub
			newKey += sliceKeySuffix(newSlice)
		}
		nb, err := e.compileBaseWith(compileKB, ob.sc, ob.shards)
		if err != nil {
			// The shape no longer compiles under the new KB (its
			// workload or pinned hardware was removed): evict it rather
			// than failing the whole update. Its old disk snapshot is
			// now stale and will be skipped — not quarantined — until
			// eviction ages it out.
			up.BasesDropped++
			continue
		}
		if set := nb.shards; set != nil {
			up.ShardsReused += set.Reused
			up.ShardsConverted += set.Converted
		}
		if p := ob.warm.p.Load(); p != nil {
			// Carry the scenario family's search prior across the update.
			// Clone before truncating — the old profile is still shared
			// with clones of the outgoing base. Variable indices survive
			// small edits (atoms allocate before Tseitin variables in a
			// fixed order), and a profile is advisory: at worst a stale
			// prior biases the first search, never an answer.
			q := p.Clone()
			q.Truncate(nb.solver.NumVars())
			nb.warm.p.Store(q)
			up.ProfilesCarried++
		}
		if newSlice != nil {
			nb.sliceID = newSlice.id
			nb.sliceReq = newSlice.req
		}
		fresh = append(fresh, rebuilt{newKey, nb})
		up.BasesUpdated++
	}

	dir, _, _, _, _ := e.diskConfig()
	var hash [32]byte
	if dir != "" {
		hash = kbContentHash(newKB)
	}

	// The swap: new KB, new generation, rebuilt cache. Queries admitted
	// from here on see only new-KB state.
	e.mu.Lock()
	e.kbCur = newKB
	e.kbGen++
	e.kbHash = hash
	e.bases = make(map[string]*compiled, len(fresh))
	e.baseOrder = e.baseOrder[:0]
	for _, rb := range fresh {
		e.bases[rb.key] = rb.base
		e.baseOrder = append(e.baseOrder, rb.key)
	}
	e.mu.Unlock()
	e.invalidateSliceMemo()

	// Rewrite the disk tier and refill clone pools off the lock. The
	// rewrite reuses each shape's snapshot path, so the files that just
	// went stale are replaced in place — the disk tier is warm for the
	// new KB the moment this returns.
	poolN := int(e.poolSize.Load())
	for _, rb := range fresh {
		if e.writeDiskBase(rb.base, rb.key) {
			up.SnapshotsRewritten++
		}
		if poolN > 0 {
			rb.base.pool.refill(rb.base.solver, poolN)
		}
	}
	return up, nil
}

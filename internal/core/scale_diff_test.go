package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
	"netarch/internal/sat"
)

// Differential harness for relevance-filtered compilation (make
// scale-diff): every query answered from a cone-of-influence slice must
// match the answer from the full encoding. The suite adapts the §5.1
// queries to a scaled catalog, adds seeded randomized scenarios (some
// deliberately infeasible), and compares across worker counts on both
// cold and warm caches:
//
//   - verdicts must match exactly;
//   - lexicographic optima (ObjectiveValues) must match exactly;
//   - Pareto frontiers must match as value-vector sets, with witnesses
//     cross-validated on the opposite engine;
//   - feasible designs are cross-validated: the full engine must Check
//     the sliced design as Feasible and vice versa (designs themselves
//     may differ — both encodings admit many optima);
//   - explanations match exactly, or the sliced explanation is proven a
//     valid unsatisfiable core on the full encoding by assumption
//     solving over exactly its named selectors.
//
// Full-engine Enumerate is deliberately NOT compared: out-of-cone
// systems that no rule, order, or requirement observes (the catalog's
// plain "udp") form extra equivalence classes in the full space that the
// slice correctly omits.

const scaleDiffSKUs = 5000

// scaleDiffScenarios is the §5.1 suite adapted to the scaled catalog,
// plus an overconstrained query that must be infeasible. Q1's grown
// scenario freezes the server SKU at the full engine's cost optimum,
// exactly as the experiment does — using the full engine keeps the
// reference trajectory slice-free.
func scaleDiffScenarios(t *testing.T, off *Engine) (names []string, scs map[string]Scenario) {
	t.Helper()
	base, err := off.Optimize(Scenario{Workloads: []string{"inference_app"}},
		[]Objective{{Kind: MinimizeCost}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Verdict != Feasible {
		t.Fatalf("Q1 baseline infeasible on the scaled catalog: %v", base.Explanation)
	}
	frozenServer := base.Design.Hardware[kb.KindServer]

	scs = map[string]Scenario{
		"q1-baseline": {Workloads: []string{"inference_app"}},
		"q1-grown": {
			Workloads:      []string{"inference_app", "batch_analytics", "storage_backend"},
			PinnedHardware: map[kb.HardwareKind]string{kb.KindServer: frozenServer},
			Context:        map[string]bool{"pfc_enabled": true},
			NumServers:     128,
		},
		"q2-monitoring": {
			Workloads: []string{"inference_app"},
			Require:   []kb.Property{"flow_telemetry", "detect_queue_length"},
		},
		"q2-sonata-pinned": {
			Workloads:     []string{"inference_app"},
			Require:       []kb.Property{"flow_telemetry", "detect_queue_length"},
			PinnedSystems: []string{"sonata"},
		},
		"q3-cxl-off": {
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": false},
		},
		"q3-cxl-on": {
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": true},
		},
		"overconstrained": {
			Workloads: []string{"inference_app"},
			Require:   []kb.Property{"flow_telemetry", "perpetual_motion"},
		},
	}
	for n := range scs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, scs
}

// addRandomScenarios appends seeded randomized scenarios: random
// workload subsets, requirement draws from the catalog's real property
// vocabulary (occasionally an unprovidable one), context bindings over
// the rule-mentioned atoms, and server counts. The fixed seed keeps the
// suite reproducible.
func addRandomScenarios(k *kb.KB, names []string, scs map[string]Scenario) []string {
	rng := rand.New(rand.NewSource(20240508))

	var props []kb.Property
	seen := map[kb.Property]bool{}
	for i := range k.Systems {
		for _, p := range k.Systems[i].Solves {
			if !seen[p] {
				seen[p] = true
				props = append(props, p)
			}
		}
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	var ctxAtoms []string
	seenCtx := map[string]bool{}
	for _, r := range k.Rules {
		for _, a := range r.Expr.Atoms(nil) {
			if name, ok := atomCtx(a); ok && !seenCtx[name] {
				seenCtx[name] = true
				ctxAtoms = append(ctxAtoms, name)
			}
		}
	}
	sort.Strings(ctxAtoms)
	workloads := make([]string, len(k.Workloads))
	for i := range k.Workloads {
		workloads[i] = k.Workloads[i].Name
	}
	sort.Strings(workloads)

	for i := 0; i < 6; i++ {
		sc := Scenario{NumServers: []int{0, 16, 64, 128}[rng.Intn(4)]}
		perm := rng.Perm(len(workloads))
		for _, wi := range perm[:1+rng.Intn(2)] {
			sc.Workloads = append(sc.Workloads, workloads[wi])
		}
		sort.Strings(sc.Workloads)
		for _, p := range props {
			if rng.Intn(len(props)) == 0 {
				sc.Require = append(sc.Require, p)
			}
		}
		if i%3 == 2 {
			// Every third scenario demands the unprovidable, exercising
			// the explanation path on a non-trivial cone.
			sc.Require = append(sc.Require, "perpetual_motion")
		}
		if rng.Intn(2) == 0 {
			sc.Context = map[string]bool{}
			for _, a := range ctxAtoms {
				if rng.Intn(3) == 0 {
					sc.Context[a] = rng.Intn(2) == 0
				}
			}
			if len(sc.Context) == 0 {
				sc.Context = nil
			}
		}
		name := fmt.Sprintf("rand-%d", i)
		scs[name] = sc
		names = append(names, name)
	}
	return names
}

// diffEngines builds the sliced/full engine pair over one shared KB.
func diffEngines(t *testing.T, k *kb.KB) (on, off *Engine) {
	t.Helper()
	var err error
	if on, err = New(k); err != nil {
		t.Fatal(err)
	}
	on.SetSliceMode(SliceOn)
	if off, err = New(k); err != nil {
		t.Fatal(err)
	}
	off.SetSliceMode(SliceOff)
	return on, off
}

// conflictNames extracts the sorted selector names of an explanation.
func conflictNames(ex *Explanation) []string {
	if ex == nil {
		return nil
	}
	out := make([]string, len(ex.Conflicts))
	for i, c := range ex.Conflicts {
		out[i] = c.Name
	}
	sort.Strings(out)
	return out
}

// validateCoreOn proves an explanation is a genuine unsatisfiable core
// of eng's encoding for sc: specialize the scenario, assume exactly the
// named selectors, and demand Unsat. This is the fallback when sliced
// and full minimization land on different (both minimal) cores.
func validateCoreOn(t *testing.T, eng *Engine, sc Scenario, ex *Explanation, label string) {
	t.Helper()
	c, err := eng.instance(&sc)
	if err != nil {
		t.Errorf("%s: core validation compile failed: %v", label, err)
		return
	}
	assume := make([]sat.Lit, 0, len(ex.Conflicts))
	for _, ci := range ex.Conflicts {
		lit, ok := c.selectorLit(ci.Name)
		if !ok {
			t.Errorf("%s: core names selector %q absent from the full encoding", label, ci.Name)
			return
		}
		assume = append(assume, lit)
	}
	if st := c.solver.SolveAssuming(assume); st != sat.Unsat {
		t.Errorf("%s: claimed core %v is satisfiable on the full encoding (status %v)",
			label, conflictNames(ex), st)
	}
}

// crossCheckDesign validates one engine's design on the other: a
// compliant design under the sliced encoding must be compliant under
// the full one, and vice versa.
func crossCheckDesign(t *testing.T, other *Engine, d *Design, sc Scenario, label string) {
	t.Helper()
	rep, err := other.Check(*d, sc)
	if err != nil {
		t.Errorf("%s: cross-check errored: %v", label, err)
		return
	}
	if rep.Verdict != Feasible {
		t.Errorf("%s: design rejected by the opposite engine: %v\n%v",
			label, rep.Verdict, rep.Explanation)
	}
}

// compareSynthesize runs one scenario through both engines and applies
// the verdict / design / explanation contracts. deep additionally
// cross-validates designs and explanations (bounded work, so the
// per-worker sweeps stay fast while one pass checks everything).
func compareSynthesize(t *testing.T, on, off *Engine, name string, sc Scenario, deep bool) {
	t.Helper()
	got, err := on.Synthesize(sc)
	if err != nil {
		t.Fatalf("%s: sliced: %v", name, err)
	}
	want, err := off.Synthesize(sc)
	if err != nil {
		t.Fatalf("%s: full: %v", name, err)
	}
	if got.Verdict != want.Verdict {
		t.Fatalf("%s: verdict diverges: sliced=%v full=%v (sliced expl %v, full expl %v)",
			name, got.Verdict, want.Verdict, got.Explanation, want.Explanation)
	}
	if !deep {
		return
	}
	switch got.Verdict {
	case Feasible:
		crossCheckDesign(t, off, got.Design, sc, name+": sliced design on full")
		crossCheckDesign(t, on, want.Design, sc, name+": full design on sliced")
	case Infeasible:
		gotN, wantN := conflictNames(got.Explanation), conflictNames(want.Explanation)
		if len(gotN) == 0 || len(wantN) == 0 {
			t.Errorf("%s: infeasible without explanation (sliced %v, full %v)", name, gotN, wantN)
			return
		}
		if fmt.Sprint(gotN) != fmt.Sprint(wantN) {
			// Different minimal cores are legitimate; the sliced one must
			// still be a real core of the FULL encoding.
			validateCoreOn(t, off, sc, got.Explanation, name+": sliced core on full")
		}
	}
}

// compareOptimize demands bit-exact lexicographic optima.
func compareOptimize(t *testing.T, on, off *Engine, name string, sc Scenario, objs []Objective) {
	t.Helper()
	got, err := on.Optimize(sc, objs)
	if err != nil {
		t.Fatalf("%s: sliced optimize: %v", name, err)
	}
	want, err := off.Optimize(sc, objs)
	if err != nil {
		t.Fatalf("%s: full optimize: %v", name, err)
	}
	if got.Verdict != want.Verdict {
		t.Fatalf("%s: optimize verdict diverges: sliced=%v full=%v", name, got.Verdict, want.Verdict)
	}
	if got.Verdict != Feasible {
		return
	}
	if fmt.Sprint(got.ObjectiveValues) != fmt.Sprint(want.ObjectiveValues) {
		t.Errorf("%s: optima diverge: sliced=%v full=%v",
			name, got.ObjectiveValues, want.ObjectiveValues)
	}
	crossCheckDesign(t, off, got.Design, sc, name+": sliced optimum on full")
}

// comparePareto demands identical frontiers as value-vector sets and
// cross-validates the sliced witnesses on the full engine.
func comparePareto(t *testing.T, on, off *Engine, name string, sc Scenario, objs []Objective) {
	t.Helper()
	got, err := on.Pareto(sc, objs)
	if err != nil {
		t.Fatalf("%s: sliced pareto: %v", name, err)
	}
	want, err := off.Pareto(sc, objs)
	if err != nil {
		t.Fatalf("%s: full pareto: %v", name, err)
	}
	if got.Complete != want.Complete {
		t.Fatalf("%s: completeness diverges: sliced=%v full=%v", name, got.Complete, want.Complete)
	}
	vecs := func(r *ParetoResult) []string {
		out := make([]string, len(r.Points))
		for i, p := range r.Points {
			out[i] = fmt.Sprint(p.Values)
		}
		return out // Points are sorted by vector; no extra sort needed.
	}
	gv, wv := vecs(got), vecs(want)
	if fmt.Sprint(gv) != fmt.Sprint(wv) {
		t.Fatalf("%s: frontiers diverge:\n  sliced %v\n  full   %v", name, gv, wv)
	}
	for i, p := range got.Points {
		if i >= 3 {
			break // witnesses beyond the first few add no new coverage
		}
		crossCheckDesign(t, off, p.Design, sc,
			fmt.Sprintf("%s: sliced pareto witness %v on full", name, p.Values))
	}
}

// TestScaleDifferential is the soundness gate for relevance-filtered
// compilation (make scale-diff).
func TestScaleDifferential(t *testing.T) {
	k := catalog.ScaledCatalog(scaleDiffSKUs)
	on, off := diffEngines(t, k)

	names, scs := scaleDiffScenarios(t, off)
	names = addRandomScenarios(k, names, scs)

	// Cold pass, sequential: both caches empty, every scenario compiles
	// fresh; deep checks cross-validate designs and explanations.
	on.SetWorkers(1)
	off.SetWorkers(1)
	for _, n := range names {
		compareSynthesize(t, on, off, "cold/"+n, scs[n], true)
	}

	// Optima and frontiers ride the now-warm bases.
	objSuites := map[string][]Objective{
		"cost":       {{Kind: MinimizeCost}},
		"power-cost": {{Kind: MinimizePower}, {Kind: MinimizeCost}},
		"systems":    {{Kind: MinimizeSystems}},
	}
	for _, n := range []string{"q1-baseline", "q1-grown", "q3-cxl-on"} {
		for suite, objs := range objSuites {
			compareOptimize(t, on, off, n+"/"+suite, scs[n], objs)
		}
	}
	comparePareto(t, on, off, "q1-baseline/pareto", scs["q1-baseline"],
		[]Objective{{Kind: MinimizeCost}, {Kind: MinimizePower}})
	comparePareto(t, on, off, "q3-cxl-on/pareto", scs["q3-cxl-on"],
		[]Objective{{Kind: MinimizeCost}, {Kind: MinimizeSystems}})

	// Warm passes across worker counts: answers must not depend on the
	// parallel split.
	for _, w := range []int{2, 8} {
		on.SetWorkers(w)
		off.SetWorkers(w)
		for _, n := range names {
			compareSynthesize(t, on, off, fmt.Sprintf("warm/w%d/%s", w, n), scs[n], false)
		}
	}

	// Cold re-check at the widest worker count: invalidate both caches
	// and replay a representative subset (one feasible multi-workload
	// query, one infeasible one) so cold compilation under parallel
	// solving is covered without recompiling the full suite.
	on.InvalidateCache()
	off.InvalidateCache()
	for _, n := range []string{"q3-cxl-on", "overconstrained"} {
		compareSynthesize(t, on, off, "cold/w8/"+n, scs[n], true)
	}

	// The sliced engine must actually have sliced: this harness proving
	// agreement is vacuous if auto/on fell through to full compiles.
	if st := on.CacheStats(); st.SliceComputed == 0 || st.SliceSKUsKept >= st.SliceSKUsIn {
		t.Fatalf("sliced engine did not slice: %+v", st)
	}
}

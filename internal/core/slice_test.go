package core

import (
	"errors"
	"strings"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

// Slicer soundness edge cases (ISSUE 10 satellite): the corners where a
// relevance slice could plausibly diverge from the full encoding. The
// broad equivalence sweep lives in scale_diff_test.go (make scale-diff);
// these tests pin the specific traps.

// sliceTestScenario is the canonical scaled-catalog query shape.
func sliceTestScenario() Scenario {
	return Scenario{Workloads: []string{"inference_app"}, NumServers: 64}
}

// mustSlice computes the slice the engine would use for sc.
func mustSlice(t *testing.T, k *kb.KB, sc Scenario) *kbSlice {
	t.Helper()
	shape := baseShape(&sc)
	req := deriveSliceRequest(k, &sc, &shape)
	if req == nil {
		t.Fatal("slice request underivable for a known-workload scenario")
	}
	return computeSlice(k, req)
}

// TestSliceInfeasibleAgreesWithFull: a requirement nothing provides
// yields an (almost) empty provider cone — the slice must still report
// the same infeasibility, with an explanation, not a degenerate pass.
func TestSliceInfeasibleAgreesWithFull(t *testing.T) {
	k := catalog.ScaledCatalog(1000)
	sc := sliceTestScenario()
	sc.Require = []kb.Property{"teleportation"}

	var verdicts []Verdict
	for _, mode := range []SliceMode{SliceOn, SliceOff} {
		eng, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSliceMode(mode)
		rep, err := eng.Synthesize(sc)
		if err != nil {
			t.Fatalf("slice=%v: %v", mode, err)
		}
		verdicts = append(verdicts, rep.Verdict)
		if rep.Verdict == Infeasible && len(rep.Explanation.Conflicts) == 0 {
			t.Fatalf("slice=%v: infeasible with empty explanation", mode)
		}
	}
	if verdicts[0] != verdicts[1] {
		t.Fatalf("verdict mismatch: sliced=%v full=%v", verdicts[0], verdicts[1])
	}
	if verdicts[0] != Infeasible {
		t.Fatalf("unprovidable requirement must be infeasible, got %v", verdicts[0])
	}
}

// TestSliceTouchingEverythingEqualsFull: a scenario that requires every
// property, pins every system, binds every context atom, and
// allow-lists every SKU leaves nothing to slice away — the sub-KB must
// be the full KB, and the slice must still compile and answer. (The
// pins matter: a system nothing solves-for, requires, orders, or rules
// over — the seed catalog's plain "udp" — is correctly sliceable under
// any scenario that does not name it.)
func TestSliceTouchingEverythingEqualsFull(t *testing.T) {
	k := catalog.CaseStudy()
	sc := Scenario{Workloads: []string{"inference_app"}, NumServers: 64}
	seenProp := map[kb.Property]bool{}
	for i := range k.Systems {
		sc.PinnedSystems = append(sc.PinnedSystems, k.Systems[i].Name)
		for _, p := range k.Systems[i].Solves {
			if !seenProp[p] {
				seenProp[p] = true
				sc.Require = append(sc.Require, p)
			}
		}
	}
	sc.Context = map[string]bool{}
	for _, r := range k.Rules {
		for _, a := range r.Expr.Atoms(nil) {
			if name, ok := atomCtx(a); ok {
				sc.Context[name] = true
			}
		}
	}
	sc.AllowedHardware = map[kb.HardwareKind][]string{}
	for i := range k.Hardware {
		h := &k.Hardware[i]
		sc.AllowedHardware[h.Kind] = append(sc.AllowedHardware[h.Kind], h.Name)
	}

	sl := mustSlice(t, k, sc)
	if sl.systemsKept != len(k.Systems) {
		t.Fatalf("systems sliced away under a touch-everything scenario: kept %d of %d",
			sl.systemsKept, len(k.Systems))
	}
	if sl.rulesKept != len(k.Rules) {
		t.Fatalf("rules sliced away under a touch-everything scenario: kept %d of %d",
			sl.rulesKept, len(k.Rules))
	}
	if sl.skusKept != len(k.Hardware) {
		t.Fatalf("allow-listed SKUs pruned: kept %d of %d", sl.skusKept, len(k.Hardware))
	}

	// The slice being the whole KB, sliced and full must agree exactly.
	for _, mode := range []SliceMode{SliceOn, SliceOff} {
		eng, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSliceMode(mode)
		if _, err := eng.Synthesize(sc); err != nil {
			t.Fatalf("slice=%v: %v", mode, err)
		}
	}
}

// TestSlicePinnedPrunedSKU: dominance pruning drops a SKU, then a
// scenario pins exactly that SKU. The pin restricts its kind, which
// must bypass pruning entirely — the sliced verdict and selected
// hardware must match the full engine's.
func TestSlicePinnedPrunedSKU(t *testing.T) {
	k := catalog.ScaledCatalog(2000)
	sc := sliceTestScenario()
	sl := mustSlice(t, k, sc)

	inSub := map[string]bool{}
	for i := range sl.sub.Hardware {
		inSub[sl.sub.Hardware[i].Name] = true
	}
	var pruned *kb.Hardware
	for i := range k.Hardware {
		if h := &k.Hardware[i]; h.Kind == kb.KindSwitch && !inSub[h.Name] {
			pruned = h
			break
		}
	}
	if pruned == nil {
		t.Fatal("dominance pruning kept every switch SKU at 2000 SKUs; test needs a pruned one")
	}

	pinned := sc
	pinned.PinnedHardware = map[kb.HardwareKind]string{kb.KindSwitch: pruned.Name}

	var reports []*Report
	for _, mode := range []SliceMode{SliceOn, SliceOff} {
		eng, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSliceMode(mode)
		rep, err := eng.Synthesize(pinned)
		if err != nil {
			t.Fatalf("slice=%v: %v", mode, err)
		}
		reports = append(reports, rep)
	}
	if reports[0].Verdict != reports[1].Verdict {
		t.Fatalf("verdict mismatch pinning pruned SKU %q: sliced=%v full=%v",
			pruned.Name, reports[0].Verdict, reports[1].Verdict)
	}
	for i, rep := range reports {
		if rep.Verdict == Feasible && rep.Design.Hardware[kb.KindSwitch] != pruned.Name {
			t.Fatalf("engine %d ignored the pinned SKU: got %q want %q",
				i, rep.Design.Hardware[kb.KindSwitch], pruned.Name)
		}
	}
}

// TestSliceIdentityInCacheKey: the compiled-base cache key must carry
// the slice identity, and the snapshot envelope must refuse to revive a
// base under a different slice — otherwise a sliced base could alias a
// full one (or another slice) and serve answers for the wrong sub-KB.
func TestSliceIdentityInCacheKey(t *testing.T) {
	k := catalog.ScaledCatalog(1000)
	eng, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSliceMode(SliceOn)
	sc := sliceTestScenario()
	if _, err := eng.Synthesize(sc); err != nil {
		t.Fatal(err)
	}

	eng.mu.RLock()
	keys := append([]string(nil), eng.baseOrder...)
	var base *compiled
	if len(keys) == 1 {
		base = eng.bases[keys[0]]
	}
	eng.mu.RUnlock()
	if base == nil {
		t.Fatalf("want exactly one cached base, got keys %q", keys)
	}
	if base.sliceID == "" {
		t.Fatal("sliced base carries no slice identity")
	}
	wantSuffix := "|slice:" + base.sliceID
	if !strings.HasSuffix(keys[0], wantSuffix) {
		t.Fatalf("cache key %q does not end in slice identity %q", keys[0], wantSuffix)
	}
	if keys[0] != base.sc.fingerprint()+wantSuffix {
		t.Fatalf("cache key %q is not fingerprint+slice identity", keys[0])
	}

	// Envelope guard: the snapshot names its slice; restoring it while
	// expecting a different slice (or none) is a mismatch, never a
	// silent alias.
	hash := kbContentHash(k)
	data := snapshotBase(base, hash)
	if _, err := restoreBaseSlice(k, base.sc, hash, data, nil); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("reviving a sliced snapshot as unsliced: got %v, want ErrSnapshotMismatch", err)
	}
	sl := mustSlice(t, k, sc)
	if sl.id != base.sliceID {
		t.Fatalf("recomputed slice id %q differs from compiled %q", sl.id, base.sliceID)
	}
	if _, err := restoreBaseSlice(k, base.sc, hash, data, sl); err != nil {
		t.Fatalf("reviving under the matching slice failed: %v", err)
	}
	other := *sl
	other.id = "0000000000000000"
	if _, err := restoreBaseSlice(k, base.sc, hash, data, &other); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("reviving under a different slice id: got %v, want ErrSnapshotMismatch", err)
	}
}

// TestSliceAutoThreshold: auto mode must leave seed-scale catalogs
// unsliced (byte-compatible with the pre-slicing engine) and slice
// scaled ones.
func TestSliceAutoThreshold(t *testing.T) {
	sc := sliceTestScenario()

	seed, err := New(catalog.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	if st := seed.CacheStats(); st.SliceComputed != 0 {
		t.Fatalf("auto mode sliced a seed-scale catalog: %+v", st)
	}

	big, err := New(catalog.ScaledCatalog(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	st := big.CacheStats()
	if st.SliceComputed == 0 {
		t.Fatalf("auto mode did not slice a %d-SKU catalog: %+v", 1000, st)
	}
	if st.SliceSKUsKept >= st.SliceSKUsIn {
		t.Fatalf("slice kept every SKU (%d of %d); pruning is inert",
			st.SliceSKUsKept, st.SliceSKUsIn)
	}
}

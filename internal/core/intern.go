package core

import "sync"

// Tiered atom-name interning. Every compile builds namespaced vocabulary
// names by concatenation — "system:"+name, "hw:"+name, … — one fresh
// string per atom per compile. A seed-scale compile barely notices, but
// the relevance slicer turns one large catalog into many small compiles
// (one per scenario shape, re-run on every UpdateKB), and the same few
// hundred atom names are then re-concatenated for each of them. The
// engine therefore owns one interner with a tier per namespace; the
// first compile to mention an atom pays the concatenation, every later
// compile (any goroutine, any slice) reuses the canonical string. The
// vocabulary itself stays per-compile — interning shares the name
// strings, never the variable numbering, so a sliced base's var space
// is exactly as dense as its sub-KB.
//
// Tiers are keyed by the undecorated name (the capability tier by the
// precomposed "kind:cap" pair), so lookups on the hit path cost one
// lock-free sync.Map read and zero allocations.

const (
	tierSystem = iota
	tierHw
	tierCtx
	tierProp
	tierCap
	tierSel
	nTiers
)

var tierPrefix = [nTiers]string{"system:", "hw:", "ctx:", "prop:", "cap:", "sel:"}

// atomInterner canonicalizes namespaced atom names. The zero value is
// ready to use; a nil interner degrades to plain concatenation (restored
// bases construct atoms before any engine wiring).
type atomInterner struct {
	tiers [nTiers]sync.Map // undecorated name -> canonical "prefix:name"
}

// full returns the canonical "prefix+name" string for a tier.
func (in *atomInterner) full(tier int, name string) string {
	if in == nil {
		return tierPrefix[tier] + name
	}
	if s, ok := in.tiers[tier].Load(name); ok {
		return s.(string)
	}
	actual, _ := in.tiers[tier].LoadOrStore(name, tierPrefix[tier]+name)
	return actual.(string)
}

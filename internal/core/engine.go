package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// Engine is the reasoning engine over one knowledge base. It is cheap to
// construct and safe for concurrent queries: compilation is amortized
// through a compiled-base cache (see cache.go) guarded by a RWMutex, and
// every query solves against a private clone of the cached base, so
// goroutines never share mutable solver state. Use CacheStats,
// SetCacheCapacity and InvalidateCache to observe and control the cache.
type Engine struct {
	// kbCur is the engine's current knowledge base, guarded by mu —
	// UpdateKB swaps it live. Read it once per operation through
	// kbSnapshot() and use the captured pointer throughout; the KBs
	// themselves are immutable from the engine's point of view.
	kbCur *kb.KB
	// kbGen counts KB swaps (UpdateKB) and in-place invalidations
	// (InvalidateCache), guarded by mu. baseFor records the generation it
	// compiled against and discards the result instead of caching it when
	// the generation moved — a compile raced an update and would poison
	// the fresh cache with a previous-KB base.
	kbGen uint64
	// updateMu serializes UpdateKB calls (queries never take it).
	updateMu sync.Mutex

	fault func(sat.FaultEvent, sat.Stats) bool

	// Compiled-base cache: scenario-shape fingerprint → frozen instance.
	// baseOrder tracks insertion for FIFO eviction at cacheCap entries.
	// The hit/miss counters are atomic so the warm path (a read lock and
	// a counter bump) never serializes concurrent queries.
	mu        sync.RWMutex
	bases     map[string]*compiled
	baseOrder []string
	cacheCap  int
	hits      atomic.Int64
	misses    atomic.Int64

	// Disk tier (see diskcache.go): cacheDir enables persistence of
	// frozen bases across processes; kbHash keys the snapshots to the
	// exact knowledge-base content. diskMu serializes writes+eviction
	// (loads are lock-free). The disk counters are atomic for the same
	// reason hits/misses are.
	cacheDir      string
	kbHash        [32]byte
	diskMu        sync.Mutex
	diskMaxFiles  int
	diskMaxBytes  int64
	diskHits      atomic.Int64
	diskMisses    atomic.Int64
	diskWrites    atomic.Int64
	diskEvictions atomic.Int64
	diskCorrupt   atomic.Int64
	diskStale     atomic.Int64

	// workers is the enumeration worker-pool size; 0 means the default,
	// runtime.GOMAXPROCS(0) at query time. See SetWorkers.
	workers atomic.Int32

	// poolSize is the per-base pre-clone pool target (see SetClonePool);
	// 0 disables pooling. poolHits/poolMisses count queries served from a
	// pooled clone vs queries that cloned inline.
	poolSize   atomic.Int32
	poolHits   atomic.Int64
	poolMisses atomic.Int64

	// portfolio is the diversified race width for decision queries
	// (see SetPortfolio); <= 1 keeps the single-solver path. warmStart
	// toggles cross-query phase/activity profile reuse (SetWarmStart).
	portfolio atomic.Int32
	warmStart atomic.Bool
	// optStrategy is the engine-wide default MaxSAT descent strategy
	// for Optimize/Pareto queries (see SetOptimizeStrategy); the zero
	// value is StrategyBinary.
	optStrategy atomic.Int32
	// Lifetime clause-exchange totals across portfolio queries
	// (PortfolioStats).
	portExported atomic.Int64
	portImported atomic.Int64

	// Relevance slicing (slice.go). sliceMode is the policy (SliceAuto /
	// SliceOff / SliceOn); sliceMemo caches computed slices per
	// (generation, request) under its own lock so the warm path never
	// recomputes a cone. The counters feed CacheStats.
	sliceMode     atomic.Int32
	sliceMu       sync.Mutex
	sliceMemo     map[string]*kbSlice
	sliceComputed atomic.Int64
	sliceHits     atomic.Int64
	sliceSKUsIn   atomic.Int64
	sliceSKUsKept atomic.Int64

	// names interns namespaced atom strings across compiles (intern.go):
	// with slicing, one engine runs many small compiles over the same
	// catalog vocabulary, and the canonical strings are shared by all of
	// them.
	names atomInterner
}

// New validates the knowledge base and returns an engine over it.
func New(k *kb.KB) (*Engine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		kbCur:    k,
		bases:    make(map[string]*compiled),
		cacheCap: DefaultCacheCapacity,
	}, nil
}

// KB returns the engine's current knowledge base. UpdateKB swaps the
// pointer live, so callers spanning multiple KB reads should capture the
// result once rather than calling KB() repeatedly.
func (e *Engine) KB() *kb.KB { return e.kbSnapshot() }

// kbSnapshot captures the current KB pointer under the read lock. Every
// engine operation that reads the KB takes one snapshot up front and uses
// it throughout, so a concurrent UpdateKB can never hand one operation
// two different KB revisions.
func (e *Engine) kbSnapshot() *kb.KB {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.kbCur
}

// SetFaultHook installs a fault-injection callback on every solver the
// engine compiles from now on (see sat.Options.FaultHook): it fires at
// each solve entry and conflict boundary, and returning true interrupts
// the solve there. It makes every degraded path — interrupts, budget
// trips at the Nth conflict — deterministically testable. Not meant for
// production use; not safe to change while queries are in flight.
func (e *Engine) SetFaultHook(h func(sat.FaultEvent, sat.Stats) bool) { e.fault = h }

// Synthesize answers the existential query: does a compliant design exist
// for the scenario? On success the report carries a witness design; on
// failure it carries a minimal explanation.
func (e *Engine) Synthesize(sc Scenario) (*Report, error) {
	return e.SynthesizeCtx(context.Background(), sc, Budget{})
}

// SynthesizeCtx is Synthesize under a context and resource budget. When
// the context is cancelled, its deadline (or b.Timeout) expires, or a
// work budget trips before a verdict, it returns *ErrResourceExhausted;
// when only the explanation-minimization phase is cut short, it returns
// the report with Explanation.Approximate set instead of failing.
func (e *Engine) SynthesizeCtx(ctx context.Context, sc Scenario, b Budget) (*Report, error) {
	return e.run(ctx, "synthesize", sc, b)
}

func (e *Engine) run(ctx context.Context, query string, sc Scenario, b Budget) (*Report, error) {
	c, err := e.instance(&sc)
	if err != nil {
		return nil, err
	}
	return e.decide(ctx, query, b, c, nil)
}

// Check verifies a concrete design against the scenario: exactly the
// design's systems deployed and its hardware selected. On violation the
// explanation names the facts the design breaks.
func (e *Engine) Check(design Design, sc Scenario) (*Report, error) {
	return e.CheckCtx(context.Background(), design, sc, Budget{})
}

// CheckCtx is Check under a context and resource budget; see
// SynthesizeCtx for the degradation contract.
func (e *Engine) CheckCtx(ctx context.Context, design Design, sc Scenario, b Budget) (*Report, error) {
	// Pin the design by construction: every system var gets a
	// pin/forbid selector so explanations reference the design choices.
	k := e.kbSnapshot()
	sc2 := sc
	sc2.PinnedSystems = append([]string(nil), sc.PinnedSystems...)
	sc2.ForbiddenSystems = append([]string(nil), sc.ForbiddenSystems...)
	deployed := map[string]bool{}
	for _, s := range design.Systems {
		if k.SystemByName(s) == nil {
			return nil, fmt.Errorf("core: design deploys unknown system %q", s)
		}
		deployed[s] = true
		sc2.PinnedSystems = append(sc2.PinnedSystems, s)
	}
	for i := range k.Systems {
		if !deployed[k.Systems[i].Name] {
			sc2.ForbiddenSystems = append(sc2.ForbiddenSystems, k.Systems[i].Name)
		}
	}
	if len(design.Hardware) > 0 {
		sc2.PinnedHardware = map[kb.HardwareKind]string{}
		for kind, name := range sc.PinnedHardware {
			sc2.PinnedHardware[kind] = name
		}
		for kind, name := range design.Hardware {
			if h := k.HardwareByName(name); h == nil || h.Kind != kind {
				return nil, fmt.Errorf("core: design selects unknown %s %q", kind, name)
			}
			sc2.PinnedHardware[kind] = name
		}
	}
	return e.run(ctx, "check", sc2, b)
}

// decide solves under all selectors plus extra assumptions, producing a
// report with either a witness or a minimized explanation. An Unknown
// verdict on the main decision maps to *ErrResourceExhausted; Unknown
// during minimization degrades to an approximate explanation.
func (e *Engine) decide(ctx context.Context, query string, b Budget, c *compiled, extra []sat.Lit) (*Report, error) {
	g := govern(ctx, query, b, c.solver)
	defer g.done()
	if e.warmStart.Load() {
		if p := c.warmProfile(); p != nil {
			c.solver.ApplyProfile(p)
		}
	}
	assumps := append(c.assumptions(), extra...)
	rep := &Report{}
	if n := int(e.portfolio.Load()); n > 1 {
		// Diversified race: the query solver as deterministic reference
		// plus n-1 perturbed helpers sharing learnt clauses, minted once
		// and reused across the main race and every minimization trial.
		// The verdict is worker-count independent (see sat.RacePortfolio);
		// Unsat explanations are re-minimized from all selectors so they
		// do not depend on which worker's conflict ended the race.
		team := e.portfolioTeam(b, c, n)
		switch res := e.racePortfolio(g, team, assumps); res.Status {
		case sat.Sat:
			rep.Verdict = Feasible
			rep.Design = c.designFrom(res.Model)
		case sat.Unsat:
			rep.Verdict = Infeasible
			rep.Explanation = e.minimizeCore(c, extra, g, true)
		default:
			return nil, g.exhausted()
		}
		// Team solvers are minted per query, so their counters are this
		// query's clause-exchange volume.
		for _, s := range team {
			st := s.Stats()
			e.portExported.Add(st.Exported)
			e.portImported.Add(st.Imported)
		}
	} else {
		switch status := c.solver.SolveAssuming(assumps); status {
		case sat.Sat:
			rep.Verdict = Feasible
			rep.Design = c.designFromModel()
		case sat.Unsat:
			rep.Verdict = Infeasible
			rep.Explanation = e.minimizeCore(c, extra, g, false)
		default:
			return nil, g.exhausted()
		}
	}
	if e.warmStart.Load() {
		c.storeWarmProfile()
	}
	rep.setSpent(g.spent())
	return rep, nil
}

// minimizeCore shrinks an Unsat verdict to a minimal unsatisfiable
// subset of selectors (deletion-based MUS extraction), then maps selector
// names to notes. The deletion loop runs under its own phase budget:
// when it trips (or the query deadline fires mid-minimization), the
// current — correct but possibly unminimized — conflict is returned with
// Approximate set instead of spinning through O(n²) solver calls.
//
// Two modes, keyed on team. With team == nil (single-solver path) the
// candidate set is seeded from the solver's FinalConflict and keeps
// intersecting with each trial's new core — the fast path when one
// deterministic solver produced the conflict. The normalized mode
// (team != nil, portfolio races) starts from ALL selectors and runs a
// plain deletion scan: which worker's conflict ended a race is a
// scheduling accident, and the interrupted reference's conflict-clause
// state varies with timing, but trial *verdicts* are properties of the
// formula alone — so a verdict-driven scan yields one explanation for
// every worker count and schedule. The two modes can legitimately land
// on different (equally minimal) cores. Normalized trials run on the
// reference solver alone: after the main race its phases and activities
// already point at the conflict, so trials are short re-solves, and
// racing them would cost a team fan-out per trial for no verdict change.
func (e *Engine) minimizeCore(c *compiled, extra []sat.Lit, g *governor, normalized bool) *Explanation {
	var candidates []selector
	if normalized {
		candidates = append(candidates, c.selectors...)
	} else {
		inCore := map[sat.Lit]bool{}
		for _, l := range c.solver.FinalConflict() {
			inCore[l] = true
		}
		// Candidate selectors (extras are always kept: they are the query).
		for _, s := range c.selectors {
			if inCore[s.lit] {
				candidates = append(candidates, s)
			}
		}
	}
	// Minimization is its own phase: a fresh work allowance, so the main
	// decision cannot starve it, and it cannot spin unboundedly.
	g.phase()
	ex := &Explanation{}
	// Deletion loop: try dropping each candidate; keep dropped if still
	// unsat without it.
	kept := append([]selector(nil), candidates...)
loop:
	for i := 0; i < len(kept); i++ {
		trial := make([]sat.Lit, 0, len(kept)-1+len(extra))
		for j, s := range kept {
			if j != i {
				trial = append(trial, s.lit)
			}
		}
		trial = append(trial, extra...)
		switch c.solver.SolveAssuming(trial) {
		case sat.Unsat:
			if normalized {
				// Verdict-driven removal only: core intersection would
				// reintroduce the solver's timing-dependent state.
				kept = append(kept[:i:i], kept[i+1:]...)
				i--
				continue
			}
			// Still unsat without kept[i]: remove it. Additionally
			// intersect with the new (possibly smaller) core.
			newCore := map[sat.Lit]bool{}
			for _, l := range c.solver.FinalConflict() {
				newCore[l] = true
			}
			var next []selector
			for j, s := range kept {
				if j != i && newCore[s.lit] {
					next = append(next, s)
				}
			}
			kept = next
			i = -1 // restart scan over the smaller set
		case sat.Sat:
			// kept[i] is necessary; keep scanning.
		default:
			// Budget exhausted or interrupted mid-minimization: degrade
			// to the unminimized set rather than hang.
			ex.Approximate = true
			ex.ApproxCause, _ = g.cause()
			break loop
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].name < kept[j].name })
	for _, s := range kept {
		ex.Conflicts = append(ex.Conflicts, ConflictItem{Name: s.name, Note: s.note})
	}
	return ex
}

// Explain runs Synthesize and returns only the explanation (nil when the
// scenario is feasible).
func (e *Engine) Explain(sc Scenario) (*Explanation, error) {
	return e.ExplainCtx(context.Background(), sc, Budget{})
}

// ExplainCtx is Explain under a context and resource budget; see
// SynthesizeCtx for the degradation contract.
func (e *Engine) ExplainCtx(ctx context.Context, sc Scenario, b Budget) (*Explanation, error) {
	rep, err := e.run(ctx, "explain", sc, b)
	if err != nil {
		return nil, err
	}
	return rep.Explanation, nil
}

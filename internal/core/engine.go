package core

import (
	"fmt"
	"sort"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// Engine is the reasoning engine over one knowledge base. It is cheap to
// construct; each query compiles a fresh solver instance, so an Engine is
// safe for concurrent queries.
type Engine struct {
	kb *kb.KB
}

// New validates the knowledge base and returns an engine over it.
func New(k *kb.KB) (*Engine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &Engine{kb: k}, nil
}

// KB returns the engine's knowledge base.
func (e *Engine) KB() *kb.KB { return e.kb }

// Synthesize answers the existential query: does a compliant design exist
// for the scenario? On success the report carries a witness design; on
// failure it carries a minimal explanation.
func (e *Engine) Synthesize(sc Scenario) (*Report, error) {
	c, err := e.compile(&sc)
	if err != nil {
		return nil, err
	}
	return e.decide(c, nil)
}

// Check verifies a concrete design against the scenario: exactly the
// design's systems deployed and its hardware selected. On violation the
// explanation names the facts the design breaks.
func (e *Engine) Check(design Design, sc Scenario) (*Report, error) {
	// Pin the design by construction: every system var gets a
	// pin/forbid selector so explanations reference the design choices.
	sc2 := sc
	sc2.PinnedSystems = append([]string(nil), sc.PinnedSystems...)
	sc2.ForbiddenSystems = append([]string(nil), sc.ForbiddenSystems...)
	deployed := map[string]bool{}
	for _, s := range design.Systems {
		if e.kb.SystemByName(s) == nil {
			return nil, fmt.Errorf("core: design deploys unknown system %q", s)
		}
		deployed[s] = true
		sc2.PinnedSystems = append(sc2.PinnedSystems, s)
	}
	for i := range e.kb.Systems {
		if !deployed[e.kb.Systems[i].Name] {
			sc2.ForbiddenSystems = append(sc2.ForbiddenSystems, e.kb.Systems[i].Name)
		}
	}
	if len(design.Hardware) > 0 {
		sc2.PinnedHardware = map[kb.HardwareKind]string{}
		for kind, name := range sc.PinnedHardware {
			sc2.PinnedHardware[kind] = name
		}
		for kind, name := range design.Hardware {
			if h := e.kb.HardwareByName(name); h == nil || h.Kind != kind {
				return nil, fmt.Errorf("core: design selects unknown %s %q", kind, name)
			}
			sc2.PinnedHardware[kind] = name
		}
	}
	c, err := e.compile(&sc2)
	if err != nil {
		return nil, err
	}
	return e.decide(c, nil)
}

// decide solves under all selectors plus extra assumptions, producing a
// report with either a witness or a minimized explanation.
func (e *Engine) decide(c *compiled, extra []sat.Lit) (*Report, error) {
	assumps := append(c.assumptions(), extra...)
	status := c.solver.SolveAssuming(assumps)
	rep := &Report{
		SolverConflicts: c.solver.Stats().Conflicts,
		SolverDecisions: c.solver.Stats().Decisions,
	}
	switch status {
	case sat.Sat:
		rep.Verdict = Feasible
		rep.Design = c.designFromModel()
		return rep, nil
	case sat.Unsat:
		rep.Verdict = Infeasible
		rep.Explanation = e.minimizeCore(c, extra)
		return rep, nil
	default:
		return nil, fmt.Errorf("core: solver returned %v", status)
	}
}

// minimizeCore shrinks the final conflict to a minimal unsatisfiable
// subset of selectors (deletion-based MUS extraction), then maps selector
// names to notes.
func (e *Engine) minimizeCore(c *compiled, extra []sat.Lit) *Explanation {
	inCore := map[sat.Lit]bool{}
	for _, l := range c.solver.FinalConflict() {
		inCore[l] = true
	}
	// Candidate selectors (extras are always kept: they are the query).
	var candidates []selector
	for _, s := range c.selectors {
		if inCore[s.lit] {
			candidates = append(candidates, s)
		}
	}
	// Deletion loop: try dropping each candidate; keep dropped if still
	// unsat without it.
	kept := append([]selector(nil), candidates...)
	for i := 0; i < len(kept); i++ {
		trial := make([]sat.Lit, 0, len(kept)-1+len(extra))
		for j, s := range kept {
			if j != i {
				trial = append(trial, s.lit)
			}
		}
		trial = append(trial, extra...)
		if c.solver.SolveAssuming(trial) == sat.Unsat {
			// Still unsat without kept[i]: remove it. Additionally
			// intersect with the new (possibly smaller) core.
			newCore := map[sat.Lit]bool{}
			for _, l := range c.solver.FinalConflict() {
				newCore[l] = true
			}
			var next []selector
			for j, s := range kept {
				if j != i && newCore[s.lit] {
					next = append(next, s)
				}
			}
			kept = next
			i = -1 // restart scan over the smaller set
		}
	}
	ex := &Explanation{}
	sort.Slice(kept, func(i, j int) bool { return kept[i].name < kept[j].name })
	for _, s := range kept {
		ex.Conflicts = append(ex.Conflicts, ConflictItem{Name: s.name, Note: s.note})
	}
	return ex
}

// Explain runs Synthesize and returns only the explanation (nil when the
// scenario is feasible).
func (e *Engine) Explain(sc Scenario) (*Explanation, error) {
	rep, err := e.Synthesize(sc)
	if err != nil {
		return nil, err
	}
	return rep.Explanation, nil
}

// Enumerate returns up to max distinct compliant designs, where designs
// are distinguished by their deployed system set (hardware variations of
// the same system set collapse into one equivalence class, per §6
// "identify equivalence classes of system deployments").
func (e *Engine) Enumerate(sc Scenario, max int) ([]*Design, error) {
	c, err := e.compile(&sc)
	if err != nil {
		return nil, err
	}
	var out []*Design
	assumps := c.assumptions()
	for len(out) < max {
		if c.solver.SolveAssuming(assumps) != sat.Sat {
			break
		}
		d := c.designFromModel()
		out = append(out, d)
		// Block this system set (projection): at least one system var
		// must differ.
		block := make([]sat.Lit, 0, len(c.sysLit))
		for name, l := range c.sysLit {
			if d.HasSystem(name) {
				block = append(block, l.Flip())
			} else {
				block = append(block, l)
			}
		}
		c.solver.AddClause(block...)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i].Systems) < fmt.Sprint(out[j].Systems)
	})
	return out, nil
}

package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"netarch/internal/sat"
)

// This file implements design-class enumeration (§6 "identify equivalence
// classes of system deployments") as a governed, parallel blocking-clause
// loop. The class space is split into a fixed set of disjoint cubes
// (independent of the worker count), each cube is drained on a fresh
// clone of the pristine template with only its own blocking clauses — so
// every cube's class-and-model sequence is a pure function of the
// compiled instance — and the per-cube results are merged in cube order,
// cut at the class cap. That purity is the whole determinism argument:
// no per-class canonicalization re-solve is needed (PR 3 paid one clone
// + solve per class for it, back when workers shared blocking clauses
// and discovery models were scheduling-dependent), and capped results
// need no sequential replay. DESIGN.md §8 documents the contract.

// EnumerateResult is the outcome of a governed enumeration: the design
// classes found, plus an explicit account of whether — and why — the
// enumeration stopped before provably exhausting the space.
//
// Except under a budget trip, the result is deterministic: Designs
// (content and order), Truncated, and Reason are a function of the
// knowledge base, the scenario, and max alone — never of the worker
// count (SetWorkers) or goroutine scheduling. Spent aggregates every
// worker's consumption and is the one field that legitimately varies
// from run to run.
type EnumerateResult struct {
	Designs []*Design
	// Truncated reports that enumeration stopped while more classes may
	// exist: the class limit was hit or a resource budget tripped. A
	// false Truncated means Designs is provably the complete set.
	Truncated bool
	// Reason is "limit" when the class cap stopped the enumeration, or
	// the exhausted resource ("deadline", "conflict budget", ...).
	Reason string
	// Exhausted carries the typed resource error when a budget tripped
	// (nil for "limit" truncation and for complete enumerations).
	Exhausted *ErrResourceExhausted
	// Spent is the total resource consumption of the enumeration,
	// summed across all worker, canonicalization, and probe solvers.
	Spent BudgetSpent
}

// SetWorkers sets how many cloned solvers EnumerateCtx (and the queries
// built on it, like DisambiguateCtx) may run concurrently. n <= 0
// restores the default, runtime.GOMAXPROCS(0). The determinism contract
// makes the result independent of this knob — it trades CPU for latency,
// nothing else. Safe to call concurrently; queries in flight keep the
// count they started with.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// Workers reports the configured enumeration worker count; 0 means the
// default (runtime.GOMAXPROCS(0) at query time).
func (e *Engine) Workers() int { return int(e.workers.Load()) }

func (e *Engine) enumWorkers() int {
	if n := int(e.workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Enumerate returns up to max distinct compliant designs, where designs
// are distinguished by their deployed system set (hardware variations of
// the same system set collapse into one equivalence class, per §6
// "identify equivalence classes of system deployments"). If the solver
// gives up mid-enumeration (only possible when a fault hook or budget is
// armed), the partial designs are returned together with the typed
// *ErrResourceExhausted — never silently.
func (e *Engine) Enumerate(sc Scenario, max int) ([]*Design, error) {
	res, err := e.EnumerateCtx(context.Background(), sc, max, Budget{})
	if err != nil {
		return nil, err
	}
	if res.Exhausted != nil {
		// Propagate the giving-up status: callers must be able to tell
		// "only these designs exist" from "the solver gave up".
		return res.Designs, res.Exhausted
	}
	return res.Designs, nil
}

// EnumerateCtx is Enumerate under a context and resource budget. Each
// solve — one class discovery, one canonicalization — gets a fresh phase
// allowance. Resource exhaustion is not an error here: the partial
// result is returned with Truncated, Reason, and Exhausted set, so
// callers can use what was found.
//
// Enumeration runs on a worker pool of solver clones (see SetWorkers):
// the compiled instance is specialized once into a pristine template,
// the class space is split into a fixed set of disjoint cubes, and
// workers drain cubes — each on a fresh clone of the template, so the
// cube's class sequence (models included) cannot depend on what any
// other cube (or worker) did. See EnumerateResult for the determinism
// contract.
func (e *Engine) EnumerateCtx(ctx context.Context, sc Scenario, max int, b Budget) (*EnumerateResult, error) {
	base, shared, err := e.baseFor(&sc)
	if err != nil {
		return nil, err
	}
	solver := base.solver
	if shared {
		solver = e.takeClone(base)
	}
	g := newEnumGov(ctx, b)
	defer g.done()
	r := &enumRun{
		g:   g,
		tpl: e.specialize(base, &sc, solver),
		co:  &enumCoord{max: max},
	}
	return r.run(e.enumWorkers()), nil
}

// enumGov is the multi-solver analogue of governor: one query-global
// watchdog (context deadline/cancel → interrupt on every registered
// solver), per-phase budgets armed on whichever solver runs the phase,
// spent accounting summed across all solvers, and first-trip-wins cause
// recording. A budget trip cancels the shared context, which drains the
// whole pool through the watchdog.
type enumGov struct {
	ctx    context.Context
	cancel context.CancelFunc
	budget Budget
	query  string // entry-point name for exhaustion errors
	start  time.Time
	watch  *sat.WatchGroup

	mu        sync.Mutex
	conflicts int64
	decisions int64
	tripped   bool
	cause     string
	ctxErr    error
}

func newEnumGov(ctx context.Context, b Budget) *enumGov {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &enumGov{budget: b, query: "enumerate", start: time.Now()}
	if b.Timeout > 0 {
		g.ctx, g.cancel = context.WithTimeout(ctx, b.Timeout)
	} else {
		g.ctx, g.cancel = context.WithCancel(ctx)
	}
	g.watch = sat.WatchAll(g.ctx)
	return g
}

// adopt places a solver under governance: registered with the shared
// watchdog, to be interrupted when the context fires or another solver
// trips. The returned release detaches it and folds its counters into
// the aggregate spent; call it exactly once, after the solver's last
// solve.
func (g *enumGov) adopt(s *sat.Solver) (release func()) {
	detach := g.watch.Add(s)
	return func() {
		detach()
		st := s.Stats()
		g.mu.Lock()
		g.conflicts += st.Conflicts
		g.decisions += st.Decisions
		g.mu.Unlock()
	}
}

// phase arms a fresh per-phase allowance on s. One discovery solve or
// one canonicalization solve is one phase, matching the sequential
// governor's per-class budget semantics; the wall-clock deadline is
// query-global and never re-armed.
func (g *enumGov) phase(s *sat.Solver) {
	s.SetBudget(g.budget.MaxConflicts, g.budget.MaxDecisions)
}

// trip records the first budget trip and cancels the shared context so
// the watchdog drains every other in-flight solver. Later trips are
// echoes of that drain and keep the first cause.
func (g *enumGov) trip(cause string, ctxErr error) {
	g.mu.Lock()
	if !g.tripped {
		g.tripped = true
		g.cause = cause
		g.ctxErr = ctxErr
	}
	g.mu.Unlock()
	g.cancel()
}

// tripFrom classifies solver s's Unknown verdict and records the trip.
func (g *enumGov) tripFrom(s *sat.Solver) {
	cause, ctxErr := stopCause(s, g.ctx)
	g.trip(cause, ctxErr)
}

// stopped reports whether discovery must halt because a budget tripped
// or the shared context fired. A fired context is recorded as a trip
// here too, so the result is labeled even when no solver happened to be
// mid-solve at the time.
func (g *enumGov) stopped() bool {
	g.mu.Lock()
	t := g.tripped
	g.mu.Unlock()
	if t {
		return true
	}
	if err := g.ctx.Err(); err != nil {
		cause := "canceled"
		if err == context.DeadlineExceeded {
			cause = "deadline"
		}
		g.trip(cause, err)
		return true
	}
	return false
}

func (g *enumGov) hasTripped() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tripped
}

// spent reports the aggregate consumption: every released solver's
// counters plus wall time. The final accounting runs after all solvers
// are released, so nothing is lost.
func (g *enumGov) spent() BudgetSpent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return BudgetSpent{
		Conflicts: g.conflicts,
		Decisions: g.decisions,
		Wall:      time.Since(g.start),
	}
}

// exhausted builds the typed error for the recorded trip.
func (g *enumGov) exhausted() *ErrResourceExhausted {
	g.mu.Lock()
	cause, ctxErr := g.cause, g.ctxErr
	g.mu.Unlock()
	return &ErrResourceExhausted{Query: g.query, Cause: cause, Spent: g.spent(), ctxErr: ctxErr}
}

// done releases the watchdog. Call exactly once, when the query ends.
func (g *enumGov) done() {
	g.watch.Release()
	g.cancel()
}

// enumClass is one admitted equivalence class: its (sorted) system set
// and the design reported for it. The discovery model is already
// canonical — the cube's solver evolves deterministically from the
// pristine template, untouched by other cubes or workers.
type enumClass struct {
	systems []string
	design  *Design
}

// enumCoord collects per-cube results under one lock. Every cube's class
// sequence is a pure function of the compiled instance (fresh clone, own
// blocking clauses only — see drain), so the merged, capped class list
// is deterministic for any worker count: capped runs no longer need a
// sequential replay.
type enumCoord struct {
	max int

	mu    sync.Mutex
	cubes []cubeResult
}

// cubeResult is one cube's outcome: the classes discovered in order, and
// whether the cube was drained to Unsat (its list provably complete). A
// cube stopped at the per-cube cap or by a budget trip stays
// inexhausted.
type cubeResult struct {
	classes   []*enumClass
	exhausted bool
}

func (co *enumCoord) append(cube int, cls *enumClass) {
	co.mu.Lock()
	co.cubes[cube].classes = append(co.cubes[cube].classes, cls)
	co.mu.Unlock()
}

func (co *enumCoord) markExhausted(cube int) {
	co.mu.Lock()
	co.cubes[cube].exhausted = true
	co.mu.Unlock()
}

// merge assembles the result list: cubes in index order, classes in
// within-cube discovery order, cut at max. complete reports that the
// list is provably the whole class space — every cube drained to Unsat
// and nothing was cut — which is what lets an exact-fit enumeration
// (space size == max) come back untruncated.
func (co *enumCoord) merge() (out []*enumClass, complete bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	complete = true
	total := 0
	for i := range co.cubes {
		total += len(co.cubes[i].classes)
		if !co.cubes[i].exhausted {
			complete = false
		}
	}
	if total > co.max {
		complete = false
	}
	for i := range co.cubes {
		for _, cls := range co.cubes[i].classes {
			if len(out) >= co.max {
				return out, complete
			}
			out = append(out, cls)
		}
	}
	return out, complete
}

// fork views the shared compilation artifacts over a private solver.
// Everything else on a specialized compiled is read-only, so forks of
// one template can solve concurrently.
func (c *compiled) fork(s *sat.Solver) *compiled {
	n := *c
	n.solver = s
	n.arith = c.arith.WithAdder(s)
	return &n
}

// blockingClause appends, to buf, the clause forcing at least one
// system-set difference from the given class. Literals follow the sorted
// system vocabulary: clause literal order shapes the solver's watch
// setup and hence its search, so map-order iteration here would make
// repeated enumerations diverge. systems is sorted (designFromModel
// sorts it), so membership is a two-pointer merge against sysNames — no
// per-class set, and callers reuse one buffer across a whole cube drain
// (AddClause copies the literals).
func (c *compiled) blockingClause(systems []string, buf []sat.Lit) []sat.Lit {
	block := buf[:0]
	j := 0
	for _, name := range c.sysNames {
		l := c.sysLit[name]
		for j < len(systems) && systems[j] < name {
			j++
		}
		if j < len(systems) && systems[j] == name {
			l = l.Flip()
		}
		block = append(block, l)
	}
	return block
}

// cubeAssumptions splits the class space into 2^k disjoint cubes — the
// assignments of the first k sorted system variables. The split is a
// fixed function of the instance, NOT of the worker count: cube results
// feed the deterministic capped merge, so the same cubes must exist no
// matter how many workers drain them. k is capped at 3 (8 cubes): enough
// cubes to keep a typical pool busy, few enough that the per-cube
// overhead (one clone, one closing Unsat solve each) stays negligible.
// Every class satisfies exactly one cube, so cubes cannot re-derive each
// other's classes and cross-cube blocking clauses would be vacuous.
func cubeAssumptions(tpl *compiled) [][]sat.Lit {
	k := len(tpl.sysNames)
	if k > 3 {
		k = 3
	}
	cubes := make([][]sat.Lit, 1<<k)
	for m := range cubes {
		cube := make([]sat.Lit, k)
		for b := 0; b < k; b++ {
			l := tpl.sysLit[tpl.sysNames[b]]
			if m&(1<<b) == 0 {
				l = l.Flip()
			}
			cube[b] = l
		}
		cubes[m] = cube
	}
	return cubes
}

// enumRun is one enumeration query: the governor, the pristine template
// (never solved — every solve happens on a clone of it, which is what
// makes results worker-count-independent), and the coordinator.
type enumRun struct {
	g   *enumGov
	tpl *compiled
	co  *enumCoord
}

// run drives the enumeration: cube discovery (parallel when workers > 1),
// then the deterministic merge.
func (r *enumRun) run(workers int) *EnumerateResult {
	res := &EnumerateResult{}
	if r.co.max <= 0 {
		// A non-positive cap admits nothing: a vacuous limit truncation,
		// as the sequential loop always reported.
		res.Truncated = true
		res.Reason = "limit"
		res.Spent = r.g.spent()
		return res
	}
	if len(r.tpl.sysNames) == 0 {
		return r.emptyProjection(res)
	}
	cubes := cubeAssumptions(r.tpl)
	r.co.cubes = make([]cubeResult, len(cubes))
	ch := make(chan int, len(cubes))
	for i := range cubes {
		ch <- i
	}
	close(ch)
	if workers > len(cubes) {
		workers = len(cubes)
	}
	if workers <= 1 {
		r.drain(ch, cubes)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				r.drain(ch, cubes)
			}()
		}
		wg.Wait()
	}
	return r.finish(res)
}

// drain is one worker: it pulls cube indices until they run out or
// discovery stops, solving every cube on a FRESH clone of the pristine
// template — which worker drains which cube, and in what order, cannot
// leak into any cube's result. The template itself is never solved, so
// concurrent clones straight off it are safe; the worker carries one
// reusable blocking-clause buffer across its cubes.
func (r *enumRun) drain(cubes <-chan int, cubeAssumps [][]sat.Lit) {
	var blockBuf []sat.Lit
	for i := range cubes {
		c := r.tpl.fork(r.tpl.solver.Clone())
		release := r.g.adopt(c.solver)
		ok := r.solveCube(c, i, cubeAssumps[i], &blockBuf)
		release()
		if !ok {
			return
		}
	}
}

// solveCube enumerates the classes inside one cube, delivering each to
// the coordinator as it is admitted. The reported design is the
// discovery model itself: the cube's solver is a fresh clone of the
// pristine template evolving only by its own (sorted, deterministic)
// blocking clauses, so the k-th model of cube i is a pure function of
// the compiled instance — no per-class canonicalization re-solve is
// needed, which saves one template clone and one from-scratch solve per
// class. The cube stops early — without being marked exhausted — after
// max classes: the merge never takes more than max classes from any
// cube prefix, so draining further is wasted work. Returns false when
// the whole discovery must stop: budget tripped or context fired.
func (r *enumRun) solveCube(c *compiled, idx int, cube []sat.Lit, blockBuf *[]sat.Lit) bool {
	assumps := c.assumptions()
	assumps = append(assumps, cube...)
	found := 0
	for {
		if r.g.stopped() {
			return false
		}
		r.g.phase(c.solver)
		switch c.solver.SolveAssuming(assumps) {
		case sat.Sat:
			d := c.designFromModel()
			r.co.append(idx, &enumClass{systems: d.Systems, design: d})
			found++
			if found >= r.co.max {
				return true // per-cube cap; cube stays inexhausted
			}
			*blockBuf = c.blockingClause(d.Systems, *blockBuf)
			c.solver.AddClause(*blockBuf...)
		case sat.Unsat:
			r.co.markExhausted(idx)
			return true // cube provably drained; on to the next
		default:
			r.g.tripFrom(c.solver)
			return false
		}
	}
}

// finish assembles the deterministic result from the cube merge. Three
// outcomes:
//   - budget tripped: partial designs plus the typed Exhausted error,
//     exactly as the sequential path reported;
//   - the merge was cut at max, or some needed cube was not drained:
//     Truncated with Reason "limit" — more classes may exist;
//   - otherwise every cube ran dry and nothing was cut: Designs is
//     provably complete (an exact fit of space size == max included).
func (r *enumRun) finish(res *EnumerateResult) *EnumerateResult {
	classes, complete := r.co.merge()
	res.Designs = sortDesigns(classes)
	if r.g.hasTripped() {
		res.Truncated = true
		res.Exhausted = r.g.exhausted()
		res.Reason = res.Exhausted.Cause
		res.Spent = res.Exhausted.Spent
		return res
	}
	if !complete {
		// Stopped at the class cap: more classes may exist.
		res.Truncated = true
		res.Reason = "limit"
	}
	res.Spent = r.g.spent()
	return res
}

// emptyProjection handles an instance with no system vocabulary: every
// model projects onto the single empty class, so one solve on a pristine
// clone decides the whole enumeration (and is already canonical).
// Without this guard the blocking clause would be empty, and asserting
// it would poison the solver (okay=false) and — with proof logging
// armed — record a bogus empty-clause derivation.
func (r *enumRun) emptyProjection(res *EnumerateResult) *EnumerateResult {
	c := r.tpl.fork(r.tpl.solver.Clone())
	release := r.g.adopt(c.solver)
	defer release()
	r.g.phase(c.solver)
	switch c.solver.SolveAssuming(c.assumptions()) {
	case sat.Sat:
		res.Designs = []*Design{c.designFromModel()}
	case sat.Unsat:
		// No compliant design at all: complete and empty.
	default:
		r.g.tripFrom(c.solver)
		res.Truncated = true
		res.Exhausted = r.g.exhausted()
		res.Reason = res.Exhausted.Cause
	}
	res.Spent = r.g.spent()
	return res
}

// sortDesigns returns the merged designs sorted element-wise by system
// set. (Comparing fmt.Sprint of the slices, as the pre-refactor sort
// did, is ambiguous — ["a b","c"] renders like ["a","b c"] — and
// allocates on every comparison.)
func sortDesigns(classes []*enumClass) []*Design {
	if len(classes) == 0 {
		return nil
	}
	out := make([]*Design, len(classes))
	for i, cls := range classes {
		out[i] = cls.design
	}
	sort.Slice(out, func(i, j int) bool { return lessSystems(out[i].Systems, out[j].Systems) })
	return out
}

// lessSystems orders system sets element-wise: lexicographic over the
// elements, shorter prefix first.
func lessSystems(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

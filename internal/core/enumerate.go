package core

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"netarch/internal/sat"
)

// This file implements design-class enumeration (§6 "identify equivalence
// classes of system deployments") as a governed, parallel blocking-clause
// loop. A pool of cloned solvers explores disjoint cubes of the class
// space concurrently, a coordinator shares every admitted class's
// blocking clause across the pool, and each class's reported Design is
// re-solved canonically on a pristine clone — which is what makes the
// result independent of the worker count and of scheduling. DESIGN.md §8
// documents the determinism contract and its one capped-result caveat.

// EnumerateResult is the outcome of a governed enumeration: the design
// classes found, plus an explicit account of whether — and why — the
// enumeration stopped before provably exhausting the space.
//
// Except under a budget trip, the result is deterministic: Designs
// (content and order), Truncated, and Reason are a function of the
// knowledge base, the scenario, and max alone — never of the worker
// count (SetWorkers) or goroutine scheduling. Spent aggregates every
// worker's consumption and is the one field that legitimately varies
// from run to run.
type EnumerateResult struct {
	Designs []*Design
	// Truncated reports that enumeration stopped while more classes may
	// exist: the class limit was hit or a resource budget tripped. A
	// false Truncated means Designs is provably the complete set.
	Truncated bool
	// Reason is "limit" when the class cap stopped the enumeration, or
	// the exhausted resource ("deadline", "conflict budget", ...).
	Reason string
	// Exhausted carries the typed resource error when a budget tripped
	// (nil for "limit" truncation and for complete enumerations).
	Exhausted *ErrResourceExhausted
	// Spent is the total resource consumption of the enumeration,
	// summed across all worker, canonicalization, and probe solvers.
	Spent BudgetSpent
}

// SetWorkers sets how many cloned solvers EnumerateCtx (and the queries
// built on it, like DisambiguateCtx) may run concurrently. n <= 0
// restores the default, runtime.GOMAXPROCS(0). The determinism contract
// makes the result independent of this knob — it trades CPU for latency,
// nothing else. Safe to call concurrently; queries in flight keep the
// count they started with.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// Workers reports the configured enumeration worker count; 0 means the
// default (runtime.GOMAXPROCS(0) at query time).
func (e *Engine) Workers() int { return int(e.workers.Load()) }

func (e *Engine) enumWorkers() int {
	if n := int(e.workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Enumerate returns up to max distinct compliant designs, where designs
// are distinguished by their deployed system set (hardware variations of
// the same system set collapse into one equivalence class, per §6
// "identify equivalence classes of system deployments"). If the solver
// gives up mid-enumeration (only possible when a fault hook or budget is
// armed), the partial designs are returned together with the typed
// *ErrResourceExhausted — never silently.
func (e *Engine) Enumerate(sc Scenario, max int) ([]*Design, error) {
	res, err := e.EnumerateCtx(context.Background(), sc, max, Budget{})
	if err != nil {
		return nil, err
	}
	if res.Exhausted != nil {
		// Propagate the giving-up status: callers must be able to tell
		// "only these designs exist" from "the solver gave up".
		return res.Designs, res.Exhausted
	}
	return res.Designs, nil
}

// EnumerateCtx is Enumerate under a context and resource budget. Each
// solve — one class discovery, one canonicalization — gets a fresh phase
// allowance. Resource exhaustion is not an error here: the partial
// result is returned with Truncated, Reason, and Exhausted set, so
// callers can use what was found.
//
// Enumeration runs on a worker pool of solver clones (see SetWorkers):
// the compiled instance is specialized once into a pristine template,
// workers clone it and drain disjoint cubes of the class space, and a
// coordinator shares each admitted class's blocking clause across the
// pool so no worker re-derives another's class. Every admitted class is
// then re-solved on a fresh clone with the class pinned, so the reported
// Design is canonical — a function of the compiled instance, not of
// discovery order. See EnumerateResult for the determinism contract.
func (e *Engine) EnumerateCtx(ctx context.Context, sc Scenario, max int, b Budget) (*EnumerateResult, error) {
	base, shared, err := e.baseFor(&sc)
	if err != nil {
		return nil, err
	}
	solver := base.solver
	if shared {
		solver = solver.Clone()
	}
	g := newEnumGov(ctx, b)
	defer g.done()
	r := &enumRun{
		g:   g,
		tpl: e.specialize(base, &sc, solver),
		co:  &enumCoord{max: max, seen: make(map[string]bool)},
	}
	return r.run(e.enumWorkers()), nil
}

// enumGov is the multi-solver analogue of governor: one query-global
// watchdog (context deadline/cancel → interrupt on every registered
// solver), per-phase budgets armed on whichever solver runs the phase,
// spent accounting summed across all solvers, and first-trip-wins cause
// recording. A budget trip cancels the shared context, which drains the
// whole pool through the watchdog.
type enumGov struct {
	ctx    context.Context
	cancel context.CancelFunc
	budget Budget
	start  time.Time
	watch  *sat.WatchGroup

	mu        sync.Mutex
	conflicts int64
	decisions int64
	tripped   bool
	cause     string
	ctxErr    error
}

func newEnumGov(ctx context.Context, b Budget) *enumGov {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &enumGov{budget: b, start: time.Now()}
	if b.Timeout > 0 {
		g.ctx, g.cancel = context.WithTimeout(ctx, b.Timeout)
	} else {
		g.ctx, g.cancel = context.WithCancel(ctx)
	}
	g.watch = sat.WatchAll(g.ctx)
	return g
}

// adopt places a solver under governance: registered with the shared
// watchdog, to be interrupted when the context fires or another solver
// trips. The returned release detaches it and folds its counters into
// the aggregate spent; call it exactly once, after the solver's last
// solve.
func (g *enumGov) adopt(s *sat.Solver) (release func()) {
	detach := g.watch.Add(s)
	return func() {
		detach()
		st := s.Stats()
		g.mu.Lock()
		g.conflicts += st.Conflicts
		g.decisions += st.Decisions
		g.mu.Unlock()
	}
}

// phase arms a fresh per-phase allowance on s. One discovery solve or
// one canonicalization solve is one phase, matching the sequential
// governor's per-class budget semantics; the wall-clock deadline is
// query-global and never re-armed.
func (g *enumGov) phase(s *sat.Solver) {
	s.SetBudget(g.budget.MaxConflicts, g.budget.MaxDecisions)
}

// trip records the first budget trip and cancels the shared context so
// the watchdog drains every other in-flight solver. Later trips are
// echoes of that drain and keep the first cause.
func (g *enumGov) trip(cause string, ctxErr error) {
	g.mu.Lock()
	if !g.tripped {
		g.tripped = true
		g.cause = cause
		g.ctxErr = ctxErr
	}
	g.mu.Unlock()
	g.cancel()
}

// tripFrom classifies solver s's Unknown verdict and records the trip.
func (g *enumGov) tripFrom(s *sat.Solver) {
	cause, ctxErr := stopCause(s, g.ctx)
	g.trip(cause, ctxErr)
}

// stopped reports whether discovery must halt because a budget tripped
// or the shared context fired. A fired context is recorded as a trip
// here too, so the result is labeled even when no solver happened to be
// mid-solve at the time.
func (g *enumGov) stopped() bool {
	g.mu.Lock()
	t := g.tripped
	g.mu.Unlock()
	if t {
		return true
	}
	if err := g.ctx.Err(); err != nil {
		cause := "canceled"
		if err == context.DeadlineExceeded {
			cause = "deadline"
		}
		g.trip(cause, err)
		return true
	}
	return false
}

func (g *enumGov) hasTripped() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tripped
}

// spent reports the aggregate consumption: every released solver's
// counters plus wall time. The final accounting runs after all solvers
// are released, so nothing is lost.
func (g *enumGov) spent() BudgetSpent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return BudgetSpent{
		Conflicts: g.conflicts,
		Decisions: g.decisions,
		Wall:      time.Since(g.start),
	}
}

// exhausted builds the typed error for the recorded trip.
func (g *enumGov) exhausted() *ErrResourceExhausted {
	g.mu.Lock()
	cause, ctxErr := g.cause, g.ctxErr
	g.mu.Unlock()
	return &ErrResourceExhausted{Query: "enumerate", Cause: cause, Spent: g.spent(), ctxErr: ctxErr}
}

// done releases the watchdog. Call exactly once, when the query ends.
func (g *enumGov) done() {
	g.watch.Release()
	g.cancel()
}

// enumClass is one admitted equivalence class: its (sorted) system set
// and the design reported for it — the canonical model once
// canonicalization succeeds, the discovery model if a budget tripped
// first.
type enumClass struct {
	key     string
	systems []string
	design  *Design
}

func classKeyOf(systems []string) string { return strings.Join(systems, "\x00") }

// enumCoord collects admitted classes under one lock. Workers propose
// candidate classes with admit and import each other's blocking clauses
// from snapshot, so no worker re-derives a class already found
// elsewhere.
type enumCoord struct {
	max int

	mu      sync.Mutex
	seen    map[string]bool
	classes []*enumClass
	full    bool
}

// admit records a candidate class. cls is nil when the class was already
// known or the cap had been reached; full reports that discovery is over
// because max classes are now admitted.
func (co *enumCoord) admit(d *Design) (cls *enumClass, full bool) {
	key := classKeyOf(d.Systems)
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.full || co.seen[key] {
		return nil, co.full
	}
	cls = &enumClass{key: key, systems: d.Systems, design: d}
	co.seen[key] = true
	co.classes = append(co.classes, cls)
	if len(co.classes) >= co.max {
		co.full = true
	}
	return cls, co.full
}

func (co *enumCoord) snapshot() []*enumClass {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.classes[:len(co.classes):len(co.classes)]
}

func (co *enumCoord) isFull() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.full
}

// fork views the shared compilation artifacts over a private solver.
// Everything else on a specialized compiled is read-only, so forks of
// one template can solve concurrently.
func (c *compiled) fork(s *sat.Solver) *compiled {
	n := *c
	n.solver = s
	n.arith = c.arith.WithAdder(s)
	return &n
}

// blockingClause is the clause forcing at least one system-set
// difference from the given class. Literals follow the sorted system
// vocabulary: clause literal order shapes the solver's watch setup and
// hence its search, so map-order iteration here would make replayed
// enumerations diverge.
func (c *compiled) blockingClause(systems []string) []sat.Lit {
	member := make(map[string]bool, len(systems))
	for _, s := range systems {
		member[s] = true
	}
	block := make([]sat.Lit, 0, len(c.sysNames))
	for _, name := range c.sysNames {
		l := c.sysLit[name]
		if member[name] {
			l = l.Flip()
		}
		block = append(block, l)
	}
	return block
}

// canonicalAssumptions pins exactly the given system set on top of the
// query selectors. Solving a pristine clone under these assumptions
// yields the class's canonical model: a deterministic function of the
// compiled instance alone.
func (c *compiled) canonicalAssumptions(systems []string) []sat.Lit {
	member := make(map[string]bool, len(systems))
	for _, s := range systems {
		member[s] = true
	}
	out := c.assumptions()
	for _, name := range c.sysNames {
		l := c.sysLit[name]
		if !member[name] {
			l = l.Flip()
		}
		out = append(out, l)
	}
	return out
}

// cubeAssumptions splits the class space into 2^k disjoint cubes — the
// assignments of the first k sorted system variables — sized for about
// two cubes per worker (so the pool load-balances) and capped at 64.
// Every class satisfies exactly one cube, so parallel workers explore
// disjoint regions and cannot race to re-derive one class.
func cubeAssumptions(tpl *compiled, workers int) [][]sat.Lit {
	k := 0
	for 1<<k < 2*workers && k < len(tpl.sysNames) && k < 6 {
		k++
	}
	cubes := make([][]sat.Lit, 1<<k)
	for m := range cubes {
		cube := make([]sat.Lit, k)
		for b := 0; b < k; b++ {
			l := tpl.sysLit[tpl.sysNames[b]]
			if m&(1<<b) == 0 {
				l = l.Flip()
			}
			cube[b] = l
		}
		cubes[m] = cube
	}
	return cubes
}

// enumRun is one enumeration query: the governor, the pristine template
// (never solved — every solve happens on a clone of it, which is what
// makes results worker-count-independent), and the coordinator.
type enumRun struct {
	g   *enumGov
	tpl *compiled
	co  *enumCoord
}

// run drives the enumeration: discovery (parallel over cubes when
// workers > 1 and the projection is large enough to split), then the
// deterministic finish.
func (r *enumRun) run(workers int) *EnumerateResult {
	res := &EnumerateResult{}
	if r.co.max <= 0 {
		// A non-positive cap admits nothing: a vacuous limit truncation,
		// as the sequential loop always reported.
		res.Truncated = true
		res.Reason = "limit"
		res.Spent = r.g.spent()
		return res
	}
	if len(r.tpl.sysNames) == 0 {
		return r.emptyProjection(res)
	}
	if workers <= 1 {
		r.drain(oneCube())
	} else {
		cubes := cubeAssumptions(r.tpl, workers)
		ch := make(chan []sat.Lit, len(cubes))
		for _, cu := range cubes {
			ch <- cu
		}
		close(ch)
		n := workers
		if n > len(cubes) {
			n = len(cubes)
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func() {
				defer wg.Done()
				r.drain(ch)
			}()
		}
		wg.Wait()
	}
	return r.finish(res, workers)
}

// oneCube is the degenerate cube list of the single-worker path: the
// whole space, no splitting assumptions.
func oneCube() <-chan []sat.Lit {
	ch := make(chan []sat.Lit, 1)
	ch <- nil
	close(ch)
	return ch
}

// drain is one worker: a private clone of the template draining cubes
// until they run out or discovery stops. Each worker also keeps its own
// pristine snapshot of the template to clone canonicalization solvers
// from: a clone of a clone is the same snapshot, and per-worker sources
// keep the pool off the template's clone lock.
func (r *enumRun) drain(cubes <-chan []sat.Lit) {
	c := r.tpl.fork(r.tpl.solver.Clone())
	pristine := c.solver.Clone()
	release := r.g.adopt(c.solver)
	defer release()
	blocked := make(map[string]bool)
	for cube := range cubes {
		if !r.solveCube(c, pristine, cube, blocked) {
			return
		}
	}
}

// solveCube enumerates the classes inside one cube, admitting each to
// the coordinator and canonicalizing it as soon as it is admitted.
// Returns false when discovery must stop: cap reached, budget tripped,
// or context fired. blocked tracks which classes this worker's solver
// already carries blocking clauses for, across cubes.
func (r *enumRun) solveCube(c *compiled, pristine *sat.Solver, cube []sat.Lit, blocked map[string]bool) bool {
	assumps := c.assumptions()
	assumps = append(assumps, cube...)
	for {
		if r.g.stopped() || r.co.isFull() {
			return false
		}
		// Import blocking clauses for classes admitted elsewhere: the
		// coordinator's shared list keeps workers from re-deriving each
		// other's classes.
		for _, cls := range r.co.snapshot() {
			if !blocked[cls.key] {
				blocked[cls.key] = true
				c.solver.AddClause(c.blockingClause(cls.systems)...)
			}
		}
		r.g.phase(c.solver)
		switch c.solver.SolveAssuming(assumps) {
		case sat.Sat:
			d := c.designFromModel()
			cls, full := r.co.admit(d)
			if cls != nil {
				if cd, ok := r.canonicalize(pristine, cls.systems); ok {
					cls.design = cd
				} else if r.g.hasTripped() {
					// The budget tripped mid-canonicalization: the class
					// keeps its discovery model and enumeration stops,
					// labeled through the governor.
					return false
				}
			}
			if full {
				return false
			}
			key := classKeyOf(d.Systems)
			if !blocked[key] {
				blocked[key] = true
				c.solver.AddClause(c.blockingClause(d.Systems)...)
			}
		case sat.Unsat:
			return true // cube exhausted; on to the next
		default:
			r.g.tripFrom(c.solver)
			return false
		}
	}
}

// canonicalize re-solves the class on a fresh clone of the worker's
// pristine template snapshot with exactly this system set pinned. A
// clone is a verbatim snapshot and two clones of the same solver run
// identical searches, so the model — and hence the Design — is a
// deterministic function of the compiled instance, not of which worker
// discovered the class or of what its solver had learned by then.
func (r *enumRun) canonicalize(pristine *sat.Solver, systems []string) (*Design, bool) {
	c := r.tpl.fork(pristine.Clone())
	release := r.g.adopt(c.solver)
	defer release()
	r.g.phase(c.solver)
	switch c.solver.SolveAssuming(c.canonicalAssumptions(systems)) {
	case sat.Sat:
		return c.designFromModel(), true
	case sat.Unsat:
		// Unreachable: the pinned set was just satisfied by a solver
		// carrying strictly more clauses. Keep the discovery model.
		return nil, false
	default:
		r.g.tripFrom(c.solver)
		return nil, false
	}
}

// spaceExhausted probes whether the admitted classes cover the whole
// space: one solve on a fresh clone with every admitted class blocked.
// Unsat means the cap coincided with exhaustion, so the admitted set is
// the complete (worker-count-independent) set and no replay is needed.
func (r *enumRun) spaceExhausted() bool {
	c := r.tpl.fork(r.tpl.solver.Clone())
	release := r.g.adopt(c.solver)
	defer release()
	for _, cls := range r.co.snapshot() {
		c.solver.AddClause(c.blockingClause(cls.systems)...)
	}
	r.g.phase(c.solver)
	switch c.solver.SolveAssuming(c.assumptions()) {
	case sat.Unsat:
		return true
	case sat.Sat:
		return false
	default:
		r.g.tripFrom(c.solver)
		return false
	}
}

// replay reruns discovery single-worker from a fresh clone: same
// pristine template, no cube split, so it admits exactly the classes —
// in exactly the order — a workers=1 run admits.
func (r *enumRun) replay() {
	r.co = &enumCoord{max: r.co.max, seen: make(map[string]bool)}
	r.drain(oneCube())
}

// finish assembles the deterministic result. Three outcomes:
//   - budget tripped: partial designs plus the typed Exhausted error,
//     exactly as the sequential path reported;
//   - cap reached ("limit"): with several workers the admitted subset
//     depends on scheduling, so it is returned directly only when a
//     probe proves it is the whole space; otherwise a single-worker
//     replay reproduces the sequential prefix byte-for-byte — capped
//     results trade the speedup for determinism;
//   - otherwise every cube ran dry: Designs is provably complete.
func (r *enumRun) finish(res *EnumerateResult, workers int) *EnumerateResult {
	limited := r.co.isFull()
	if limited && !r.g.hasTripped() && workers > 1 && !r.spaceExhausted() && !r.g.hasTripped() {
		r.replay()
	}
	if r.g.hasTripped() {
		res.Truncated = true
		res.Exhausted = r.g.exhausted()
		res.Reason = res.Exhausted.Cause
		res.Designs = r.designs()
		res.Spent = res.Exhausted.Spent
		return res
	}
	if limited {
		// Stopped at the class cap: more classes may exist.
		res.Truncated = true
		res.Reason = "limit"
	}
	res.Designs = r.designs()
	res.Spent = r.g.spent()
	return res
}

// emptyProjection handles an instance with no system vocabulary: every
// model projects onto the single empty class, so one solve on a pristine
// clone decides the whole enumeration (and is already canonical).
// Without this guard the blocking clause would be empty, and asserting
// it would poison the solver (okay=false) and — with proof logging
// armed — record a bogus empty-clause derivation.
func (r *enumRun) emptyProjection(res *EnumerateResult) *EnumerateResult {
	c := r.tpl.fork(r.tpl.solver.Clone())
	release := r.g.adopt(c.solver)
	defer release()
	r.g.phase(c.solver)
	switch c.solver.SolveAssuming(c.assumptions()) {
	case sat.Sat:
		res.Designs = []*Design{c.designFromModel()}
	case sat.Unsat:
		// No compliant design at all: complete and empty.
	default:
		r.g.tripFrom(c.solver)
		res.Truncated = true
		res.Exhausted = r.g.exhausted()
		res.Reason = res.Exhausted.Cause
	}
	res.Spent = r.g.spent()
	return res
}

// designs returns the admitted designs sorted element-wise by system
// set. (Comparing fmt.Sprint of the slices, as the pre-refactor sort
// did, is ambiguous — ["a b","c"] renders like ["a","b c"] — and
// allocates on every comparison.)
func (r *enumRun) designs() []*Design {
	classes := r.co.snapshot()
	if len(classes) == 0 {
		return nil
	}
	out := make([]*Design, len(classes))
	for i, cls := range classes {
		out[i] = cls.design
	}
	sort.Slice(out, func(i, j int) bool { return lessSystems(out[i].Systems, out[j].Systems) })
	return out
}

// lessSystems orders system sets element-wise: lexicographic over the
// elements, shorter prefix first.
func lessSystems(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// Suggestion is a minimal correction set: a smallest set of relaxable
// requirements whose removal makes the scenario feasible. The §6 vision —
// "if there are no viable solutions, the reasoning framework should tell
// the architect which of their requirements are in conflict" — covers
// both naming the conflict (Explain) and proposing what to give up
// (Suggest).
type Suggestion struct {
	// Drop lists the requirement groups to relax, with provenance notes.
	Drop []ConflictItem
	// Witness is a design that becomes feasible after relaxing them.
	Witness *Design
}

// String renders the suggestion.
func (s *Suggestion) String() string {
	var b strings.Builder
	b.WriteString("relax:\n")
	for _, c := range s.Drop {
		fmt.Fprintf(&b, "  - %s", c.Name)
		if c.Note != "" {
			fmt.Fprintf(&b, " (%s)", c.Note)
		}
		b.WriteString("\n")
	}
	if s.Witness != nil {
		fmt.Fprintf(&b, "then feasible with: %s\n", strings.Join(s.Witness.Systems, " "))
	}
	return b.String()
}

// relaxable reports whether a selector represents an architect-supplied
// requirement (which may be negotiated away) as opposed to a fact about
// the world (which may not).
func relaxable(name string) bool {
	for _, prefix := range []string{
		"context:", "pin:", "forbid:", "workload:", "require:", "bound:", "budget:",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// Suggest computes up to max distinct minimal correction sets for an
// infeasible scenario. It returns nil (no error) when the scenario is
// already feasible. When even the non-relaxable facts conflict on their
// own, it returns an error — the knowledge base itself is contradictory,
// which Suggest cannot fix.
func (e *Engine) Suggest(sc Scenario, max int) ([]*Suggestion, error) {
	return e.SuggestCtx(context.Background(), sc, max, Budget{})
}

// SuggestCtx is Suggest under a context and resource budget. Each grow
// pass gets a fresh phase allowance. When a budget trips before
// feasibility of the scenario (or of the hard facts alone) is settled,
// it returns *ErrResourceExhausted; when it trips mid-enumeration, the
// correction sets found so far are returned alongside the typed error —
// partial suggestions are still useful.
func (e *Engine) SuggestCtx(ctx context.Context, sc Scenario, max int, b Budget) ([]*Suggestion, error) {
	c, err := e.instance(&sc)
	if err != nil {
		return nil, err
	}
	g := govern(ctx, "suggest", b, c.solver)
	defer g.done()
	switch c.solver.SolveAssuming(c.assumptions()) {
	case sat.Sat:
		return nil, nil
	case sat.Unsat:
	default:
		return nil, g.exhausted()
	}

	var hard, soft []selector
	for _, s := range c.selectors {
		if relaxable(s.name) {
			soft = append(soft, s)
		} else {
			hard = append(hard, s)
		}
	}
	hardLits := make([]sat.Lit, len(hard))
	for i, s := range hard {
		hardLits[i] = s.lit
	}
	g.phase()
	switch c.solver.SolveAssuming(hardLits) {
	case sat.Sat:
	case sat.Unsat:
		return nil, fmt.Errorf("core: the knowledge base is infeasible even without architect requirements")
	default:
		return nil, g.exhausted()
	}

	var out []*Suggestion
	blocked := map[string]bool{}
	// Enumerate correction sets by rotating which soft selector the grow
	// phase tries first; dedupe by the dropped-set key.
	for start := 0; start < len(soft) && len(out) < max; start++ {
		g.phase() // fresh allowance per grow pass
		mcs, witness, ok := c.growMSS(hardLits, soft, start)
		if !ok {
			// Budget tripped mid-grow: hand back what we have, typed.
			sortSuggestions(out)
			return out, g.exhausted()
		}
		if len(mcs) == 0 {
			continue
		}
		key := mcsKey(mcs)
		if blocked[key] {
			continue
		}
		blocked[key] = true
		sug := &Suggestion{Witness: witness}
		for _, s := range mcs {
			sug.Drop = append(sug.Drop, ConflictItem{Name: s.name, Note: s.note})
		}
		sort.Slice(sug.Drop, func(i, j int) bool { return sug.Drop[i].Name < sug.Drop[j].Name })
		out = append(out, sug)
	}
	sortSuggestions(out)
	return out, nil
}

func sortSuggestions(out []*Suggestion) {
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Drop) != len(out[j].Drop) {
			return len(out[i].Drop) < len(out[j].Drop)
		}
		return fmt.Sprint(out[i].Drop) < fmt.Sprint(out[j].Drop)
	})
}

// growMSS grows a maximal satisfiable subset of the soft selectors
// (starting the scan at index start) and returns the complement (the
// correction set) plus a witness design for the relaxed scenario. The
// bool result is false when a resource budget tripped mid-grow, in which
// case the returned set would be incomplete and must not be used.
func (c *compiled) growMSS(hardLits []sat.Lit, soft []selector, start int) ([]selector, *Design, bool) {
	kept := append([]sat.Lit(nil), hardLits...)
	inMSS := make([]bool, len(soft))
	var witness *Design
	for i := 0; i < len(soft); i++ {
		idx := (start + i) % len(soft)
		trial := append(append([]sat.Lit(nil), kept...), soft[idx].lit)
		switch c.solver.SolveAssuming(trial) {
		case sat.Sat:
			kept = trial
			inMSS[idx] = true
			witness = c.designFromModel()
		case sat.Unsat:
			// soft[idx] conflicts with the kept set: leave it out.
		default:
			return nil, nil, false
		}
	}
	var mcs []selector
	for i, s := range soft {
		if !inMSS[i] {
			mcs = append(mcs, s)
		}
	}
	return mcs, witness, true
}

func mcsKey(mcs []selector) string {
	names := make([]string, len(mcs))
	for i, s := range mcs {
		names[i] = s.name
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// Disambiguation describes where the solution space still forks — the §6
// ask: "identify a minimal-effort ordering for the architect to provide
// to make the solution unique … identify equivalence classes of system
// deployments, rather than simply returning an arbitrary but compliant
// solution".
type Disambiguation struct {
	// Classes is the number of distinct compliant system sets found
	// (capped by the enumeration limit).
	Classes int
	// Forks lists, per role, the alternative systems the classes split
	// over, plus the order dimensions that could discriminate them and
	// whether those orders already rank the alternatives.
	Forks []Fork
	// FreeAtoms lists context atoms whose value differs across designs:
	// pinning them is zero-cost disambiguation.
	FreeAtoms []string
	// Incomplete reports that the underlying enumeration stopped before
	// provably covering the design space — the class limit was hit or a
	// resource budget tripped — so further classes (and hence further
	// forks and free atoms) may exist beyond what this report covers. A
	// report with Incomplete false is a complete disambiguation: every
	// compliant class was considered.
	Incomplete bool
}

// Fork is one undecided role choice.
type Fork struct {
	Role kb.Role
	// Alternatives are the systems that appear in some but not all
	// compliant designs for this role.
	Alternatives []string
	// Dimensions lists order dimensions covering at least two of the
	// alternatives; Unranked lists alternative pairs no dimension
	// relates — the measurements worth making (§3.1: an experiment is
	// only needed if the answer changes the final design).
	Dimensions []string
	Unranked   [][2]string
}

// String renders the disambiguation report.
func (d *Disambiguation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d compliant design classes", d.Classes)
	if d.Incomplete {
		b.WriteString(" (enumeration cut short: more classes may exist)")
	}
	b.WriteString("\n")
	for _, f := range d.Forks {
		fmt.Fprintf(&b, "  %s: %s", f.Role, strings.Join(f.Alternatives, " | "))
		if len(f.Dimensions) > 0 {
			fmt.Fprintf(&b, "  (rankable via: %s)", strings.Join(f.Dimensions, ", "))
		}
		for _, p := range f.Unranked {
			fmt.Fprintf(&b, "  [no known comparison: %s vs %s]", p[0], p[1])
		}
		b.WriteString("\n")
	}
	if len(d.FreeAtoms) > 0 {
		fmt.Fprintf(&b, "  context atoms left open: %s\n", strings.Join(d.FreeAtoms, ", "))
	}
	return b.String()
}

// Disambiguate enumerates up to limit compliant design classes and
// reports where they disagree: the roles with multiple viable systems,
// which order dimensions could settle each fork, and which context atoms
// are still free.
func (e *Engine) Disambiguate(sc Scenario, limit int) (*Disambiguation, error) {
	return e.DisambiguateCtx(context.Background(), sc, limit, Budget{})
}

// DisambiguateCtx is Disambiguate under a context and resource budget.
// When the enumeration is cut short — by the class limit or by a budget
// trip — the report is built from the classes found and marked
// Incomplete rather than discarded. A limit-truncated enumeration
// (Truncated with a nil Exhausted) is a provably partial class set, so
// it must be Incomplete too: only an exhaustive enumeration yields a
// report that covers every fork.
func (e *Engine) DisambiguateCtx(ctx context.Context, sc Scenario, limit int, b Budget) (*Disambiguation, error) {
	k := e.kbSnapshot()
	res, err := e.EnumerateCtx(ctx, sc, limit, b)
	if err != nil {
		return nil, err
	}
	designs := res.Designs
	d := &Disambiguation{Classes: len(designs), Incomplete: res.Truncated}
	if len(designs) < 2 {
		return d, nil
	}

	// Systems appearing in some but not all designs, grouped by role.
	counts := map[string]int{}
	for _, dsg := range designs {
		for _, s := range dsg.Systems {
			counts[s]++
		}
	}
	byRole := map[kb.Role][]string{}
	for name, n := range counts {
		if n == len(designs) {
			continue // in every design: settled
		}
		sys := k.SystemByName(name)
		byRole[sys.Role] = append(byRole[sys.Role], name)
	}
	roles := make([]kb.Role, 0, len(byRole))
	for r := range byRole {
		roles = append(roles, r)
	}
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	for _, role := range roles {
		alts := byRole[role]
		if len(alts) < 2 {
			continue
		}
		sort.Strings(alts)
		fork := Fork{Role: role, Alternatives: alts}
		// Which dimensions rank at least two alternatives?
		for _, spec := range k.Orders {
			resolved, err := spec.Resolve(sc.Context)
			if err != nil {
				continue // contradictory guards under this context: skip
			}
			related := false
			for i := 0; i < len(alts) && !related; i++ {
				for j := i + 1; j < len(alts); j++ {
					if resolved.Comparable(alts[i], alts[j]) {
						related = true
						break
					}
				}
			}
			if related {
				fork.Dimensions = append(fork.Dimensions, spec.Dimension)
			}
		}
		// Which pairs does no dimension relate at all?
		for i := 0; i < len(alts); i++ {
		pair:
			for j := i + 1; j < len(alts); j++ {
				for _, spec := range k.Orders {
					resolved, err := spec.Resolve(sc.Context)
					if err != nil {
						continue
					}
					if resolved.Comparable(alts[i], alts[j]) {
						continue pair
					}
				}
				fork.Unranked = append(fork.Unranked, [2]string{alts[i], alts[j]})
			}
		}
		d.Forks = append(d.Forks, fork)
	}

	// Context atoms that differ across designs.
	atomVals := map[string]map[bool]bool{}
	for _, dsg := range designs {
		for atom, v := range dsg.Context {
			if atomVals[atom] == nil {
				atomVals[atom] = map[bool]bool{}
			}
			atomVals[atom][v] = true
		}
	}
	for atom, vals := range atomVals {
		if len(vals) > 1 {
			d.FreeAtoms = append(d.FreeAtoms, atom)
		}
	}
	sort.Strings(d.FreeAtoms)
	return d, nil
}

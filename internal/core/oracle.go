package core

import (
	"fmt"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// This file is the optimizer's reference implementation — the slow,
// obviously-correct path the §5.1-style optimality differential (and
// BenchmarkOptimize) compares the MaxSAT engine against. It enumerates
// EVERY compliant assignment of the decision variables (deployed system
// set × hardware selection) by projection with blocking clauses, then
// computes the lexicographic argmin and the non-dominated frontier by
// exhaustive comparison. Objective values are recomputed from the
// knowledge base's quantities directly — not read off the compiled
// arithmetic circuits — so the differential crosses two independent
// evaluation paths as well as two independent search algorithms.

// BruteResult is the reference optimizer's answer.
type BruteResult struct {
	// Feasible is false when no compliant design exists.
	Feasible bool
	// Values is the lexicographic minimum objective vector.
	Values []int64
	// Frontier is the set of non-dominated objective vectors, sorted
	// lexicographically and deduplicated.
	Frontier [][]int64
	// Models counts the distinct projected assignments enumerated.
	Models int
}

// BruteOptimize exhaustively solves the optimization and Pareto queries
// by enumeration. limit caps the number of projected models (the oracle
// is meant for small catalogs and benchmarks; exceeding the cap is an
// error, never a silent truncation).
func (e *Engine) BruteOptimize(sc Scenario, objectives []Objective, limit int) (*BruteResult, error) {
	c, err := e.instance(&sc)
	if err != nil {
		return nil, err
	}
	evals, err := c.oracleEvaluators(objectives)
	if err != nil {
		return nil, err
	}
	// Projection variables: every system plus every candidate SKU, in
	// deterministic order.
	proj := make([]sat.Lit, 0, len(c.sysNames)+8)
	for _, name := range c.sysNames {
		proj = append(proj, c.sysLit[name])
	}
	for _, h := range c.allowedHardwareAll() {
		proj = append(proj, c.hwLit[h.Name])
	}
	assumps := c.assumptions()
	res := &BruteResult{}
	var vectors [][]int64
	block := make([]sat.Lit, len(proj))
	for {
		switch c.solver.SolveAssuming(assumps) {
		case sat.Sat:
		case sat.Unsat:
			return finishBrute(res, vectors), nil
		default:
			return nil, fmt.Errorf("core: brute-force oracle interrupted after %d models", res.Models)
		}
		res.Models++
		if res.Models > limit {
			return nil, fmt.Errorf("core: brute-force oracle exceeded %d models; shrink the scenario", limit)
		}
		model := c.solver.Model()
		d := c.designFrom(model)
		vec := make([]int64, len(evals))
		for i, ev := range evals {
			vec[i] = ev(d)
		}
		vectors = append(vectors, vec)
		// Block this projected assignment: some decision variable must
		// flip.
		for i, l := range proj {
			if model[l.Var()-1] != l.Neg() {
				block[i] = l.Flip()
			} else {
				block[i] = l
			}
		}
		c.solver.AddClause(block...)
	}
}

// finishBrute reduces the enumerated vectors to the lexicographic
// argmin and the sorted, deduplicated non-dominated frontier.
func finishBrute(res *BruteResult, vectors [][]int64) *BruteResult {
	if len(vectors) == 0 {
		return res
	}
	res.Feasible = true
	best := vectors[0]
	for _, v := range vectors[1:] {
		if lessValues(v, best) {
			best = v
		}
	}
	res.Values = best
	for i, v := range vectors {
		keep := true
		for j, w := range vectors {
			if i == j {
				continue
			}
			switch dominance(w, v) {
			case -1:
				keep = false
			case 0:
				if j < i {
					keep = false // dedupe equal vectors
				}
			}
			if !keep {
				break
			}
		}
		if keep {
			res.Frontier = append(res.Frontier, v)
		}
	}
	sortVectors(res.Frontier)
	return res
}

func sortVectors(vs [][]int64) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && lessValues(vs[j], vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// oracleEvaluators builds one independent evaluator per objective:
// plain KB arithmetic over the decoded design, no solver circuits.
func (c *compiled) oracleEvaluators(objectives []Objective) ([]func(*Design) int64, error) {
	ns := int64(c.sc.numServers())
	nsw := int64(c.sc.numSwitches())
	countOf := func(kind kb.HardwareKind) int64 {
		if kind == kb.KindSwitch {
			return nsw
		}
		return ns
	}
	evals := make([]func(*Design) int64, len(objectives))
	for i, obj := range objectives {
		switch obj.Kind {
		case MinimizeCost:
			evals[i] = func(d *Design) int64 {
				var v int64
				for kind, name := range d.Hardware {
					if h := c.kb.HardwareByName(name); h != nil {
						v += h.CostUSD * countOf(kind)
					}
				}
				return v
			}
		case MinimizePower:
			evals[i] = func(d *Design) int64 {
				var v int64
				for kind, name := range d.Hardware {
					if h := c.kb.HardwareByName(name); h != nil {
						v += h.Q(kb.ResPowerW) * countOf(kind)
					}
				}
				return v
			}
		case MinimizePorts:
			evals[i] = func(d *Design) int64 {
				h := c.kb.HardwareByName(d.Hardware[kb.KindSwitch])
				if h == nil {
					return 0
				}
				return h.Q(kb.ResPortCount) * nsw
			}
		case MinimizeSystems:
			evals[i] = func(d *Design) int64 { return int64(len(d.Systems)) }
		case MinimizeCores:
			var wlCores int64
			for _, w := range c.workloads {
				wlCores += w.PeakCores
			}
			kflows := c.totalKFlows
			evals[i] = func(d *Design) int64 {
				v := wlCores
				for _, name := range d.Systems {
					if s := c.kb.SystemByName(name); s != nil {
						v += s.Resources[kb.ResCores]*ns + s.CoresPerKFlows*kflows
					}
				}
				return v
			}
		case PreferOrder:
			resolved, err := c.resolveOrder(obj.Dimension)
			if err != nil {
				return nil, err
			}
			if resolved == nil {
				return nil, fmt.Errorf("core: unknown order dimension %q", obj.Dimension)
			}
			evals[i] = func(d *Design) int64 {
				deployed := make(map[string]bool, len(d.Systems))
				for _, s := range d.Systems {
					deployed[s] = true
				}
				var v int64
				for j := range c.kb.Systems {
					worse := &c.kb.Systems[j]
					if !deployed[worse.Name] {
						continue
					}
					for k := range c.kb.Systems {
						better := &c.kb.Systems[k]
						if j == k || better.Role != worse.Role || deployed[better.Name] {
							continue
						}
						if resolved.Better(better.Name, worse.Name) {
							v++
						}
					}
				}
				return v
			}
		default:
			return nil, fmt.Errorf("core: oracle cannot evaluate objective kind %v", obj.Kind)
		}
	}
	return evals, nil
}

package core

import (
	"sync/atomic"

	"netarch/internal/sat"
)

// This file wires diversified portfolio solving (internal/sat
// RacePortfolio) into the engine's decision path, plus the warm-start
// profile plumbing that lets one solve seed the next over the same
// scenario family.

// warmSlot holds a compiled base's warm-start profile. It is a separate
// heap object (not an inline field on compiled) so specialized query
// instances can alias the base's slot, and so compiled values stay
// copyable — atomic.Pointer must not be copied after first use.
type warmSlot struct {
	p atomic.Pointer[sat.WarmProfile]
}

// SetPortfolio sets the number of diversified solver workers raced per
// decision query (synthesize/check/explain and the serve what-ifs);
// n <= 1 disables racing and restores the single-solver path exactly.
//
// The race preserves the engine's determinism contract: verdicts,
// models, and explanations are independent of n and of scheduling for
// every n > 1 (worker 0 is a reference whose search never consumes
// shared clauses, Unsat is sound from any worker, and explanations are
// re-minimized verdict-first — see sat.RacePortfolio). Note that n == 1
// keeps the legacy conflict-core-seeded minimization, which may pick a
// different (equally minimal) explanation than the portfolio path.
// Safe to call concurrently with queries.
func (e *Engine) SetPortfolio(n int) {
	if n < 0 {
		n = 0
	}
	e.portfolio.Store(int32(n))
}

// SetWarmStart toggles warm-start reuse: after each decision query the
// engine snapshots the reference solver's phases and quantized VSIDS
// activities against the compiled base, and later queries over the same
// scenario family apply that profile before solving. Profiles persist in
// the snapshot envelope (SetCacheDir), so warmth survives restarts.
//
// Off by default: a profile makes the search depend on query history, so
// repeating one query need not replay an identical search (results are
// still correct, and portfolio verdicts remain worker-count independent,
// but byte-level reproducibility across a sequence of queries is lost).
func (e *Engine) SetWarmStart(on bool) { e.warmStart.Store(on) }

// PortfolioStats reports the engine-lifetime clause-exchange volume of
// portfolio queries: how many learnt clauses workers published to the
// ring and how many were imported by helpers. Zero on both when the
// portfolio has never been enabled.
func (e *Engine) PortfolioStats() (exported, imported int64) {
	return e.portExported.Load(), e.portImported.Load()
}

// warmProfile returns the instance's stored warm-start profile, nil when
// none has been recorded yet.
func (c *compiled) warmProfile() *sat.WarmProfile {
	if c.warm == nil {
		return nil
	}
	return c.warm.p.Load()
}

// storeWarmProfile snapshots the reference solver's current phases and
// activities into the base's warm slot. Profiles are always extracted
// from c.solver — the deterministic reference — and truncated to the
// base vocabulary when the instance is a specialized clone (selector
// variables are query-scoped and meaningless to the next query).
func (c *compiled) storeWarmProfile() {
	if c.warm == nil {
		return
	}
	p := c.solver.ExtractProfile()
	if c.base != nil {
		p.Truncate(c.base.solver.NumVars())
	}
	c.warm.p.Store(p)
}

// portfolioTeam mints the diversified worker team for one decision
// query: the query's own solver as the deterministic reference plus n-1
// helper clones with perturbed heuristics. Helpers are minted from the
// frozen base (batch pool acquire + re-specialization, which is
// deterministic) when the instance came from the cache, and from a
// direct clone of the query solver otherwise. The team is built once
// per query and reused across the main race and every minimization
// trial — clause exchange is sound across trials because learnt clauses
// are implied by the formula alone, never by the assumptions in force
// when they were derived. Helpers get one work allowance for the whole
// query (the reference's is re-armed per phase by the governor).
func (e *Engine) portfolioTeam(b Budget, c *compiled, n int) []*sat.Solver {
	solvers := make([]*sat.Solver, 1, n)
	solvers[0] = c.solver
	if c.base != nil {
		for _, h := range e.takeCloneN(c.base, n-1) {
			solvers = append(solvers, e.specialize(c.base, c.sc, h).solver)
		}
	} else {
		for i := 1; i < n; i++ {
			solvers = append(solvers, c.solver.Clone())
		}
	}
	ref := c.solver.Options()
	for i := 1; i < len(solvers); i++ {
		h := solvers[i]
		h.SetOptions(sat.PortfolioOptions(i, ref))
		h.SetBudget(b.MaxConflicts, b.MaxDecisions)
	}
	return solvers
}

// racePortfolio runs one decision (the main solve or a minimization
// trial) as a diversified race over the team, then re-arms the workers
// for the next race of the same query.
func (e *Engine) racePortfolio(g *governor, team []*sat.Solver, assumps []sat.Lit) sat.PortfolioResult {
	res := sat.RacePortfolio(g.ctx, team, assumps)
	// The race interrupts every worker on teardown, and the team still
	// has minimization work ahead of it. Re-arm the workers, then
	// re-assert if the context fired meanwhile: the watchdog only
	// interrupts after the context's Err is set, so a nil Err after the
	// clear proves no watchdog interrupt was swallowed, and a non-nil
	// Err restores the conservative stopped state.
	if res.Status != sat.Unknown {
		for _, s := range team {
			s.ClearInterrupt()
		}
		if g.ctx.Err() != nil {
			for _, s := range team {
				s.Interrupt()
			}
		}
	}
	return res
}

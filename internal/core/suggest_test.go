package core

import (
	"strings"
	"testing"

	"netarch/internal/kb"
)

func TestSuggestFeasibleReturnsNil(t *testing.T) {
	e := mustEngine(t, miniKB())
	sugs, err := e.Suggest(Scenario{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sugs != nil {
		t.Errorf("feasible scenario must yield no suggestions, got %v", sugs)
	}
}

func TestSuggestNamesRelaxableRequirement(t *testing.T) {
	e := mustEngine(t, miniKB())
	// pfc+flooding conflict: the fix is to drop one of the two pins (the
	// rule itself is a fact, never suggested).
	sc := Scenario{
		Context: map[string]bool{"pfc_enabled": true, "flooding_enabled": true},
	}
	sugs, err := e.Suggest(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("expected suggestions")
	}
	for _, s := range sugs {
		if len(s.Drop) == 0 {
			t.Fatal("empty correction set")
		}
		for _, c := range s.Drop {
			if !relaxable(c.Name) {
				t.Errorf("suggested relaxing a non-relaxable fact: %s", c.Name)
			}
			if strings.HasPrefix(c.Name, "rule:") {
				t.Errorf("rules must never be suggested for relaxation: %s", c.Name)
			}
		}
		if s.Witness == nil {
			t.Error("suggestion must carry a witness design")
		}
	}
	// The smallest correction set should be a single context pin.
	if len(sugs[0].Drop) != 1 {
		t.Errorf("smallest correction set should have 1 item: %v", sugs[0].Drop)
	}
	name := sugs[0].Drop[0].Name
	if name != "context:pfc_enabled" && name != "context:flooding_enabled" {
		t.Errorf("unexpected correction: %s", name)
	}
}

func TestSuggestCorrectionActuallyWorks(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Impossible: require low_latency_stack while under deadline.
	sc := Scenario{
		Require: []kb.Property{"low_latency_stack"},
		Context: map[string]bool{"deadline_tight": true},
	}
	sugs, err := e.Suggest(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("expected suggestions")
	}
	// Applying the first suggestion must produce a feasible scenario.
	drop := map[string]bool{}
	for _, c := range sugs[0].Drop {
		drop[c.Name] = true
	}
	relaxed := Scenario{Context: map[string]bool{}}
	if !drop["require:low_latency_stack"] {
		relaxed.Require = []kb.Property{"low_latency_stack"}
	}
	if !drop["context:deadline_tight"] {
		relaxed.Context["deadline_tight"] = true
	}
	rep, err := e.Synthesize(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Feasible {
		t.Errorf("applying suggestion %v did not restore feasibility", sugs[0].Drop)
	}
}

func TestSuggestString(t *testing.T) {
	s := &Suggestion{
		Drop:    []ConflictItem{{Name: "context:x", Note: "why"}},
		Witness: &Design{Systems: []string{"linux"}},
	}
	out := s.String()
	for _, want := range []string{"relax:", "context:x", "why", "linux"} {
		if !strings.Contains(out, want) {
			t.Errorf("Suggestion.String missing %q:\n%s", want, out)
		}
	}
}

func TestDisambiguateUniqueSolution(t *testing.T) {
	e := mustEngine(t, miniKB())
	// Pin everything down so only one class remains.
	sc := Scenario{
		Require:          []kb.Property{"congestion_control"},
		PinnedSystems:    []string{"linux", "cubic"},
		ForbiddenSystems: []string{"shenango", "dctcp", "annulus", "sonata", "marple", "roce"},
	}
	d, err := e.Disambiguate(sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes != 1 || len(d.Forks) != 0 {
		t.Errorf("expected unique class, got %+v", d)
	}
}

func TestDisambiguateReportsForks(t *testing.T) {
	e := mustEngine(t, miniKB())
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	// miniKB admits 48 design classes under this scenario; a limit above
	// that makes the enumeration complete, so the fork contents are
	// determined by the model set rather than the solver's search order.
	d, err := e.Disambiguate(sc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes < 2 {
		t.Fatalf("expected multiple classes, got %d", d.Classes)
	}
	// Congestion control must be a fork (cubic vs dctcp vs annulus).
	var ccFork *Fork
	for i := range d.Forks {
		if d.Forks[i].Role == kb.RoleCongestionControl {
			ccFork = &d.Forks[i]
		}
	}
	if ccFork == nil {
		t.Fatalf("no congestion-control fork: %+v", d)
	}
	if len(ccFork.Alternatives) < 2 {
		t.Errorf("fork should list alternatives: %v", ccFork.Alternatives)
	}
	// miniKB has no order over CC systems, so the pairs are unranked —
	// exactly the "measurement worth making" signal.
	if len(ccFork.Unranked) == 0 {
		t.Error("CC alternatives should be unranked in miniKB")
	}
	out := d.String()
	if !strings.Contains(out, "congestion_control") {
		t.Errorf("report missing fork role:\n%s", out)
	}
}

func TestDisambiguateRankableFork(t *testing.T) {
	// With an order over the fork's systems, the dimension is offered.
	k := miniKB()
	k.Orders = append(k.Orders, kb.OrderSpec{
		Dimension: "cc_quality",
		Edges:     []kb.OrderEdge{{Better: "dctcp", Worse: "cubic", Note: "ECN beats loss"}},
	})
	e := mustEngine(t, k)
	// Limit 64 > 48 classes: complete enumeration, deterministic forks.
	d, err := e.Disambiguate(Scenario{Require: []kb.Property{"congestion_control"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Forks {
		if f.Role == kb.RoleCongestionControl {
			found := false
			for _, dim := range f.Dimensions {
				if dim == "cc_quality" {
					found = true
				}
			}
			if !found {
				t.Errorf("cc_quality should rank the CC fork: %+v", f)
			}
		}
	}
}

package core

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"netarch/internal/kb"
	"netarch/internal/sat"
)

// kbMutation names one delta kind against miniKB's rule list; each
// returns a fresh KB so the outgoing one is never mutated in place.
var kbMutations = []struct {
	name   string
	mutate func(k *kb.KB)
}{
	{"add", func(k *kb.KB) {
		k.Rules = append(k.Rules, kb.Rule{
			Name: "wan_no_pfc",
			Expr: kb.Implies(kb.CtxAtom("wan_dc_mix"), kb.Not(kb.CtxAtom("pfc_enabled"))),
			Note: "PFC does not cross the WAN",
		})
	}},
	{"remove", func(k *kb.KB) {
		k.Rules = k.Rules[:0]
	}},
	{"edit", func(k *kb.KB) {
		k.Rules[0].Expr = kb.Implies(kb.CtxAtom("pfc_enabled"),
			kb.And(kb.Not(kb.CtxAtom("flooding_enabled")), kb.CtxAtom("lossless_fabric")))
	}},
}

// TestUpdateKBByteIdentity is the tentpole contract: after UpdateKB, every
// cached base must be byte-identical (snapshot encoding, which covers the
// full solver state) to what a cold engine over the new KB compiles — for
// add, remove, and edit deltas, at 1, 2, and 8 workers. Warm start stays
// off: profiles are solve-history, deliberately outside the identity.
func TestUpdateKBByteIdentity(t *testing.T) {
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	shape := baseShape(&sc)
	key := shape.fingerprint()
	for _, mut := range kbMutations {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/w%d", mut.name, workers), func(t *testing.T) {
				next := miniKB()
				mut.mutate(next)

				e := mustEngine(t, miniKB())
				e.SetWorkers(workers)
				if _, err := e.Synthesize(sc); err != nil {
					t.Fatal(err)
				}
				up, err := e.UpdateKB(next)
				if err != nil {
					t.Fatal(err)
				}
				if len(up.Diff) == 0 || up.BasesUpdated != 1 {
					t.Fatalf("update did not revalidate the cached base: %+v", up)
				}
				e.mu.RLock()
				updated := e.bases[key]
				e.mu.RUnlock()
				if updated == nil {
					t.Fatal("cached base vanished across UpdateKB")
				}

				cold := mustEngine(t, next)
				cold.SetWorkers(workers)
				want, err := cold.compileBase(&shape)
				if err != nil {
					t.Fatal(err)
				}
				var hash [32]byte
				if !bytes.Equal(snapshotBase(updated, hash), snapshotBase(want, hash)) {
					t.Errorf("%s delta at %d workers: delta-updated base diverges from cold compile", mut.name, workers)
				}
			})
		}
	}
}

// TestUpdateKBStats pins the shard-reuse accounting: a one-rule edit on a
// cached base must reconvert only the edited assertion's shard and report
// the rest reused, and queries after the update must answer against the
// new KB.
func TestUpdateKBStats(t *testing.T) {
	e := mustEngine(t, miniKB())
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	next := miniKB()
	next.Rules[0].Expr = kb.Implies(kb.CtxAtom("pfc_enabled"), kb.FalseExpr())

	up, err := e.UpdateKB(next)
	if err != nil {
		t.Fatal(err)
	}
	if up.BasesUpdated != 1 || up.BasesDropped != 0 {
		t.Fatalf("bases: %+v", up)
	}
	if up.ShardsConverted == 0 || up.ShardsReused == 0 {
		t.Fatalf("one-rule edit must reuse most shards and convert the edited one: %+v", up)
	}
	if up.ShardsConverted >= up.ShardsReused {
		t.Errorf("expected reuse to dominate on a one-rule edit: %d reused / %d converted",
			up.ShardsReused, up.ShardsConverted)
	}
	if e.KB() != next {
		t.Error("KB() does not return the updated knowledge base")
	}

	// The rewritten rule makes pfc_enabled untenable: a query pinning it
	// must now be infeasible, proving post-update queries see the new KB.
	rep, err := e.Synthesize(Scenario{Context: map[string]bool{"pfc_enabled": true}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Infeasible {
		t.Errorf("query after update answered against the old KB: verdict %v", rep.Verdict)
	}
}

// TestUpdateKBNoChange: a content-identical KB is a pointer swap — bases,
// snapshots, and counters all survive.
func TestUpdateKBNoChange(t *testing.T) {
	e := mustEngine(t, miniKB())
	if _, err := e.Synthesize(Scenario{}); err != nil {
		t.Fatal(err)
	}
	same := miniKB()
	up, err := e.UpdateKB(same)
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Diff) != 0 || up.BasesUpdated != 0 {
		t.Fatalf("identical KB produced a non-trivial update: %+v", up)
	}
	if st := e.CacheStats(); st.Size != 1 {
		t.Errorf("no-op update dropped cached bases: %+v", st)
	}
	if e.KB() != same {
		t.Error("no-op update must still adopt the caller's pointer")
	}
}

// TestUpdateKBRejectsInvalid: nil and non-validating KBs leave the engine
// untouched.
func TestUpdateKBRejectsInvalid(t *testing.T) {
	e := mustEngine(t, miniKB())
	old := e.KB()
	if _, err := e.UpdateKB(nil); err == nil {
		t.Error("nil KB accepted")
	}
	bad := miniKB()
	bad.Systems = append(bad.Systems, bad.Systems[0]) // duplicate name
	if _, err := e.UpdateKB(bad); err == nil {
		t.Error("invalid KB accepted")
	}
	if e.KB() != old {
		t.Error("failed update swapped the KB anyway")
	}
}

// TestUpdateKBDropsUncompilableBases: a base whose workload the new KB no
// longer defines cannot be revalidated; it must be evicted (counted as
// dropped), while other bases update, and the whole call still succeeds.
func TestUpdateKBDropsUncompilableBases(t *testing.T) {
	k := miniKB()
	k.Workloads = append(k.Workloads, kb.Workload{Name: "cache_tier", Properties: []string{"dc_flows"}})
	e := mustEngine(t, k)
	if _, err := e.Synthesize(Scenario{Workloads: []string{"cache_tier"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Synthesize(Scenario{}); err != nil {
		t.Fatal(err)
	}

	next := miniKB() // cache_tier gone
	next.Rules[0].Note = "changed"
	up, err := e.UpdateKB(next)
	if err != nil {
		t.Fatal(err)
	}
	if up.BasesDropped != 1 || up.BasesUpdated != 1 {
		t.Fatalf("want 1 dropped + 1 updated: %+v", up)
	}
	if st := e.CacheStats(); st.Size != 1 {
		t.Errorf("dropped base still cached: %+v", st)
	}
	if _, err := e.Synthesize(Scenario{Workloads: []string{"cache_tier"}}); err == nil {
		t.Error("query over the removed workload must fail after the update")
	}
}

// TestUpdateKBCarriesWarmProfile: a warm-start profile recorded before the
// update must survive it — cloned (not shared with the outgoing base) and
// truncated to the new variable space.
func TestUpdateKBCarriesWarmProfile(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetWarmStart(true)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	shape := baseShape(&sc)
	key := shape.fingerprint()
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	e.mu.RLock()
	old := e.bases[key]
	e.mu.RUnlock()
	before := old.warm.p.Load()
	if before == nil {
		t.Fatal("warm-start solve recorded no profile")
	}

	next := miniKB()
	next.Rules = next.Rules[:0]
	up, err := e.UpdateKB(next)
	if err != nil {
		t.Fatal(err)
	}
	if up.ProfilesCarried != 1 {
		t.Fatalf("ProfilesCarried = %d, want 1", up.ProfilesCarried)
	}
	e.mu.RLock()
	nb := e.bases[key]
	e.mu.RUnlock()
	after := nb.warm.p.Load()
	if after == nil {
		t.Fatal("profile lost across UpdateKB")
	}
	if after == before {
		t.Error("profile must be cloned, not shared with the outgoing base")
	}
	if n := nb.solver.NumVars(); len(after.Phases) > n || len(after.Activity) > n {
		t.Errorf("carried profile wider than the new base: %d phases for %d vars", len(after.Phases), n)
	}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatalf("warm-start query on the carried profile: %v", err)
	}
}

// TestUpdateKBRewritesSnapshots: with a disk tier configured, UpdateKB
// must rewrite each updated base's snapshot in place under the new KB
// hash, so a cold process over the new KB gets disk hits, not stale skips.
func TestUpdateKBRewritesSnapshots(t *testing.T) {
	dir := t.TempDir()
	e := mustDiskEngine(t, miniKB(), dir)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	next := miniKB()
	next.Rules[0].Note = "rev2"
	up, err := e.UpdateKB(next)
	if err != nil {
		t.Fatal(err)
	}
	if up.SnapshotsRewritten != 1 {
		t.Fatalf("SnapshotsRewritten = %d, want 1", up.SnapshotsRewritten)
	}
	// Save/Load round-trips next's content; a cold engine over it must
	// revive the rewritten snapshot from disk without compiling.
	cold := mustDiskEngine(t, next, dir)
	if _, err := cold.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	if st := cold.CacheStats(); st.DiskHits != 1 || st.Misses != 0 || st.DiskStale != 0 {
		t.Errorf("rewritten snapshot not served to the new-KB process: %+v", st)
	}
}

// TestUpdateKBConcurrentQueries hammers queries across an update: no
// query may error or observe a torn state, and queries after the update
// must answer against the new KB. Run under -race this also proves the
// locking discipline.
func TestUpdateKBConcurrentQueries(t *testing.T) {
	e := mustEngine(t, miniKB())
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	stop := make(chan struct{})
	errs := make(chan error, queriers)
	var wg sync.WaitGroup
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep, err := e.Synthesize(sc)
				if err != nil {
					errs <- err
					return
				}
				if rep.Verdict != Feasible {
					errs <- fmt.Errorf("verdict %v mid-update", rep.Verdict)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		next := miniKB()
		next.Rules[0].Note = fmt.Sprintf("rev%d", i)
		if _, err := e.UpdateKB(next); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestCacheEvictionReleasesEvictedKeys is the regression test for the
// FIFO eviction leak: the old `baseOrder = baseOrder[1:]` reslice kept
// every evicted key (and through the map, at one point, its base) alive
// in the backing array. Eviction must clear the vacated slot and let the
// evicted base be collected.
func TestCacheEvictionReleasesEvictedKeys(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetCacheCapacity(2)
	for _, n := range []int{0, 8, 16, 24} {
		if _, err := e.Synthesize(Scenario{NumServers: n}); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.RLock()
	order := e.baseOrder
	if len(order) != 2 {
		e.mu.RUnlock()
		t.Fatalf("len(baseOrder) = %d, want 2", len(order))
	}
	// The vacated tail of the backing array must hold no evicted keys.
	tail := order[len(order):cap(order)]
	for i, s := range tail {
		if s != "" {
			t.Errorf("backing array slot %d still pins evicted key %q", i, s)
		}
	}
	e.mu.RUnlock()

	// And an evicted base must be collectable: compile one more shape,
	// plant a finalizer on the base eviction will push out, evict it,
	// and GC until the finalizer runs.
	shape := baseShape(&Scenario{NumServers: 16})
	e.mu.RLock()
	victim := e.bases[shape.fingerprint()]
	e.mu.RUnlock()
	if victim == nil {
		t.Fatal("expected NumServers=16 base to still be cached")
	}
	collected := make(chan struct{})
	runtime.SetFinalizer(victim, func(*compiled) { close(collected) })
	victim = nil
	for _, n := range []int{32, 40} {
		if _, err := e.Synthesize(Scenario{NumServers: n}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
		}
	}
	t.Error("evicted base never became collectable; eviction still pins it")
}

// TestDiskCacheQuarantineBudget is the regression test for the quarantine
// eviction leak: ".bad" files must count against the disk byte budget and
// age out through the same mtime-ordered eviction as live snapshots.
func TestDiskCacheQuarantineBudget(t *testing.T) {
	dir := t.TempDir()
	e := mustDiskEngine(t, miniKB(), dir)
	if _, err := e.Synthesize(Scenario{}); err != nil {
		t.Fatal(err)
	}
	files := cacheFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one cache file, got %v", files)
	}
	liveSize, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}

	// Plant quarantined files that alone exceed the byte budget; they are
	// older than any live file, so eviction must take them first.
	junk := bytes.Repeat([]byte{0xde}, int(liveSize.Size()))
	stale := liveSize.ModTime().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("%s/%04d%s%s", dir, i, baseSnapshotExt, quarantineExt)
		if err := os.WriteFile(name, junk, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(name, stale, stale); err != nil {
			t.Fatal(err)
		}
	}
	e.SetDiskCacheLimit(100, 2*liveSize.Size())

	// The next write triggers eviction; the quarantined bulk must go.
	if _, err := e.Synthesize(Scenario{NumServers: 8}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined, live int
	for _, ent := range entries {
		switch {
		case strings.HasSuffix(ent.Name(), baseSnapshotExt+quarantineExt):
			quarantined++
		case strings.HasSuffix(ent.Name(), baseSnapshotExt):
			live++
		}
	}
	if live != 2 {
		t.Errorf("live snapshots = %d, want 2 (both shapes)", live)
	}
	if quarantined > 0 {
		t.Errorf("%d quarantined files survived a byte budget they exceed alone", quarantined)
	}
	if st := e.CacheStats(); st.DiskEvictions == 0 {
		t.Errorf("evictions not counted: %+v", st)
	}
}

// TestKBMutationStalenessOrdering pins the documented in-place-mutation
// protocol: disable the disk tier, mutate the KB in place, InvalidateCache,
// re-enable the disk tier. Snapshots written before the mutation must be
// rejected as stale (not quarantined, not silently reused), and a query
// mid-flight on a clone of the old base must still complete.
func TestKBMutationStalenessOrdering(t *testing.T) {
	dir := t.TempDir()
	k := miniKB()
	e := mustDiskEngine(t, k, dir)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	if len(cacheFiles(t, dir)) != 1 {
		t.Fatal("expected one snapshot on disk")
	}

	// A query mid-flight: clone the old base before the mutation, solve it
	// after. Old bases are frozen, so the clone answers the old KB's
	// question regardless of what the engine does meanwhile.
	base, shared, err := e.baseFor(&sc)
	if err != nil || !shared {
		t.Fatalf("baseFor: %v (shared=%v)", err, shared)
	}
	oldClone := base.solver.Clone()

	// The documented protocol for in-place mutation.
	if err := e.SetCacheDir(""); err != nil {
		t.Fatal(err)
	}
	k.Hardware[0].CostUSD += 500 // in-place content change
	e.InvalidateCache()
	if err := e.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}

	// The pre-mutation snapshot must be skipped as stale and replaced by
	// the recompile's write — never quarantined, never silently reused.
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.DiskStale != 1 || st.DiskCorrupt != 0 {
		t.Errorf("pre-mutation snapshot: %+v (want 1 stale, 0 corrupt)", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), quarantineExt) {
			t.Errorf("stale snapshot was quarantined: %s", ent.Name())
		}
	}

	// The mid-flight clone still solves.
	if status := oldClone.Solve(); status != sat.Sat {
		t.Errorf("mid-flight clone of the old base: status %v, want Sat", status)
	}
}

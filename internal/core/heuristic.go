package core

import (
	"netarch/internal/kb"
)

// GreedyReasoner is the deliberately weak baseline reproducing the
// paper's LLM-as-reasoner experiment (§5.2): it follows local rules one
// decision at a time, never revises earlier choices, and ignores global
// interactions (free-form rules, resource aggregation across systems,
// order guards). The paper found such a reasoner "accurately determined
// straightforward requirements such as the minimum number of cores …
// but failed to return correct results when faced with nuances"; the
// comparison experiment (E5.2) reproduces that asymmetry against the SAT
// engine.
type GreedyReasoner struct {
	kb *kb.KB
}

// NewGreedy returns the greedy baseline over a knowledge base.
func NewGreedy(k *kb.KB) *GreedyReasoner { return &GreedyReasoner{kb: k} }

// MinCores answers the simple aggregate query "how many cores do these
// workloads and systems need", which the baseline gets right: it is a
// single pass of arithmetic with no interactions.
func (g *GreedyReasoner) MinCores(workloads []string, systems []string) int64 {
	var total, kflows int64
	for _, name := range workloads {
		if w := g.kb.WorkloadByName(name); w != nil {
			total += w.PeakCores
			kflows += w.KFlows
		}
	}
	perServer := int64(0)
	for _, name := range systems {
		if s := g.kb.SystemByName(name); s != nil {
			perServer += s.Resources[kb.ResCores]
			total += s.CoresPerKFlows * kflows
		}
	}
	// Per-server overheads scale with a default 48-server fleet, the
	// same default the engine uses.
	total += perServer * 48
	return total
}

// Synthesize produces a design greedily. It returns the design and
// whether the baseline believes it is valid; the believed-valid design
// may still violate global rules — that discrepancy is the experiment.
func (g *GreedyReasoner) Synthesize(sc Scenario) (*Design, bool) {
	ctx := g.pinnedContext(&sc)
	d := &Design{
		Hardware: map[kb.HardwareKind]string{},
		Context:  ctx,
		Metrics:  map[string]int64{},
	}

	// Hardware: pinned SKU, or the first catalog entry of each kind that
	// covers the workloads' peak line rate and capacity — the sizing any
	// careful human does on a whiteboard. What the baseline does NOT do
	// is revisit these picks when later system choices add capability or
	// budget requirements.
	var peakBW, peakCores, peakMem int64
	names := sc.Workloads
	if len(names) == 0 {
		for i := range g.kb.Workloads {
			names = append(names, g.kb.Workloads[i].Name)
		}
	}
	for _, n := range names {
		if w := g.kb.WorkloadByName(n); w != nil {
			if w.PeakBandwidthGbps > peakBW {
				peakBW = w.PeakBandwidthGbps
			}
			peakCores += w.PeakCores
			peakMem += w.PeakMemoryGB
		}
	}
	ns := int64(sc.NumServers)
	if ns <= 0 {
		ns = 48
	}
	fits := func(h *kb.Hardware) bool {
		switch h.Kind {
		case kb.KindSwitch, kb.KindNIC:
			return h.Q(kb.ResBandwidthGbps) >= peakBW
		case kb.KindServer:
			return h.Q(kb.ResCores)*ns >= peakCores && h.Q(kb.ResMemoryGB)*ns >= peakMem
		}
		return true
	}
	for _, kind := range []kb.HardwareKind{kb.KindSwitch, kb.KindNIC, kb.KindServer} {
		if name, ok := sc.PinnedHardware[kind]; ok {
			d.Hardware[kind] = name
			continue
		}
		hws := g.kb.HardwareByKind(kind)
		for _, h := range hws {
			if fits(h) {
				d.Hardware[kind] = h.Name
				break
			}
		}
		if d.Hardware[kind] == "" && len(hws) > 0 {
			d.Hardware[kind] = hws[0].Name
		}
	}

	forbidden := map[string]bool{}
	for _, s := range sc.ForbiddenSystems {
		forbidden[s] = true
	}
	roleTaken := map[kb.Role]bool{}
	deployed := map[string]bool{}
	deploy := func(s *kb.System) {
		deployed[s.Name] = true
		d.Systems = append(d.Systems, s.Name)
		if exclusiveRoles[s.Role] {
			roleTaken[s.Role] = true
		}
		// Upgrade hardware locally if the system needs capabilities the
		// current SKU lacks — without reconsidering earlier systems'
		// needs (the no-backtracking flaw).
		for kind, caps := range s.RequiresCaps {
			cur := g.kb.HardwareByName(d.Hardware[kind])
			ok := cur != nil
			for _, cap := range caps {
				if cur == nil || !cur.HasCap(cap) {
					ok = false
				}
			}
			if ok {
				continue
			}
			if _, pinned := sc.PinnedHardware[kind]; pinned {
				continue // cannot change; baseline ploughs on regardless
			}
			for _, h := range g.kb.HardwareByKind(kind) {
				if !fits(h) {
					continue
				}
				all := true
				for _, cap := range caps {
					if !h.HasCap(cap) {
						all = false
						break
					}
				}
				if all {
					d.Hardware[kind] = h.Name
					break
				}
			}
		}
	}

	for _, name := range sc.PinnedSystems {
		if s := g.kb.SystemByName(name); s != nil && !deployed[name] {
			deploy(s)
		}
	}

	needs := g.neededProps(&sc)
	for _, p := range needs {
		if g.propCovered(p, deployed, ctx) {
			continue
		}
		// Among locally-fitting candidates, prefer the one covering the
		// most outstanding needs (a human's "one system for both jobs"
		// instinct) — still strictly local: no backtracking, no global
		// rules, no aggregate budgets.
		if s := g.bestFit(p, needs, ctx, deployed, forbidden, roleTaken); s != nil {
			deploy(s)
		} else {
			return d, false // baseline admits defeat on this need
		}
	}

	// A network stack afterwards if none was needed explicitly (the
	// baseline knows the common-sense rule).
	if !roleTaken[kb.RoleNetworkStack] {
		if s := g.firstFit(kb.RoleNetworkStack, "", ctx, deployed, forbidden, roleTaken); s != nil {
			deploy(s)
		}
	}
	return d, true
}

// pinnedContext mirrors the engine's context derivation.
func (g *GreedyReasoner) pinnedContext(sc *Scenario) map[string]bool {
	ctx := map[string]bool{}
	names := sc.Workloads
	if len(names) == 0 {
		for i := range g.kb.Workloads {
			names = append(names, g.kb.Workloads[i].Name)
		}
	}
	var maxBW int64
	for _, n := range names {
		if w := g.kb.WorkloadByName(n); w != nil {
			for _, p := range w.Properties {
				ctx[p] = true
			}
			if w.PeakBandwidthGbps > maxBW {
				maxBW = w.PeakBandwidthGbps
			}
		}
	}
	if _, ok := sc.Context["load_ge_40gbps"]; !ok {
		ctx["load_ge_40gbps"] = maxBW >= 40
	}
	for k, v := range sc.Context {
		ctx[k] = v
	}
	return ctx
}

// neededProps collects needed properties in deterministic order.
func (g *GreedyReasoner) neededProps(sc *Scenario) []kb.Property {
	var out []kb.Property
	seen := map[kb.Property]bool{}
	names := sc.Workloads
	if len(names) == 0 {
		for i := range g.kb.Workloads {
			names = append(names, g.kb.Workloads[i].Name)
		}
	}
	for _, n := range names {
		if w := g.kb.WorkloadByName(n); w != nil {
			for _, p := range w.Needs {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	for _, p := range sc.Require {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// propCovered reports whether a deployed, useful system already solves p.
func (g *GreedyReasoner) propCovered(p kb.Property, deployed map[string]bool, ctx map[string]bool) bool {
	for i := range g.kb.Systems {
		s := &g.kb.Systems[i]
		if !deployed[s.Name] || !s.SolvesProp(p) {
			continue
		}
		if g.usefulNow(s, ctx) {
			return true
		}
	}
	return false
}

// usefulNow checks UsefulOnlyWhen against known context (unknown atoms
// are optimistically assumed favourable — an LLM-ish mistake).
func (g *GreedyReasoner) usefulNow(s *kb.System, ctx map[string]bool) bool {
	for _, cond := range s.UsefulOnlyWhen {
		if v, known := ctx[cond.Atom]; known && v != cond.Value {
			return false
		}
	}
	return true
}

// bestFit returns the locally-fitting system solving prop that covers the
// most still-outstanding needs (ties broken by catalog order).
func (g *GreedyReasoner) bestFit(prop kb.Property, needs []kb.Property, ctx map[string]bool,
	deployed, forbidden map[string]bool, roleTaken map[kb.Role]bool) *kb.System {
	var best *kb.System
	bestScore := -1
	for i := range g.kb.Systems {
		s := &g.kb.Systems[i]
		if !g.localFit(s, "", prop, ctx, deployed, forbidden, roleTaken) {
			continue
		}
		score := 0
		for _, need := range needs {
			if s.SolvesProp(need) && !g.propCovered(need, deployed, ctx) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// localFit reports whether s matches role (if nonempty) / prop (if
// nonempty) and fits locally. Local means: context conditions against
// known atoms only, conflicts against current deployments only — global
// rules and aggregate budgets are ignored.
func (g *GreedyReasoner) localFit(s *kb.System, role kb.Role, prop kb.Property, ctx map[string]bool,
	deployed, forbidden map[string]bool, roleTaken map[kb.Role]bool) bool {
	if role != "" && s.Role != role {
		return false
	}
	if prop != "" && (!s.SolvesProp(prop) || !g.usefulNow(s, ctx)) {
		return false
	}
	if forbidden[s.Name] || deployed[s.Name] {
		return false
	}
	if exclusiveRoles[s.Role] && roleTaken[s.Role] {
		return false
	}
	if !g.contextOK(s, ctx) {
		return false
	}
	for _, cName := range s.ConflictsWith {
		if deployed[cName] {
			return false
		}
	}
	for dName := range deployed {
		dSys := g.kb.SystemByName(dName)
		for _, cName := range dSys.ConflictsWith {
			if cName == s.Name {
				return false
			}
		}
	}
	return true
}

// firstFit returns the first catalog system that locally fits.
func (g *GreedyReasoner) firstFit(role kb.Role, prop kb.Property, ctx map[string]bool,
	deployed, forbidden map[string]bool, roleTaken map[kb.Role]bool) *kb.System {
	for i := range g.kb.Systems {
		s := &g.kb.Systems[i]
		if g.localFit(s, role, prop, ctx, deployed, forbidden, roleTaken) {
			return s
		}
	}
	return nil
}

// contextOK checks RequiresContext against known atoms only.
func (g *GreedyReasoner) contextOK(s *kb.System, ctx map[string]bool) bool {
	for _, cond := range s.RequiresContext {
		if v, known := ctx[cond.Atom]; known && v != cond.Value {
			return false
		}
	}
	return true
}

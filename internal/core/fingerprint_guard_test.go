package core

import (
	"fmt"
	"reflect"
	"testing"
)

// sampleValue builds a non-zero value of type t that plausibly differs
// from the zero value's rendering: numbers become 7, strings "zz-probe",
// bools true, slices/maps one sampled element. It exists so the guard
// below keeps working for field types a future Scenario might add.
func sampleValue(t reflect.Type) reflect.Value {
	v := reflect.New(t).Elem()
	switch t.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7)
	case reflect.String:
		v.SetString("zz-probe")
	case reflect.Slice:
		v.Set(reflect.MakeSlice(t, 1, 1))
		v.Index(0).Set(sampleValue(t.Elem()))
	case reflect.Map:
		v.Set(reflect.MakeMap(t))
		v.SetMapIndex(sampleValue(t.Key()), sampleValue(t.Elem()))
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				v.Field(i).Set(sampleValue(t.Field(i).Type))
			}
		}
	case reflect.Ptr:
		v.Set(reflect.New(t.Elem()))
		v.Elem().Set(sampleValue(t.Elem()))
	default:
		panic(fmt.Sprintf("sampleValue: unhandled kind %v — extend the guard", t.Kind()))
	}
	return v
}

// TestFingerprintCoversEveryScenarioField is the aliasing guard demanded
// by the disk tier: fingerprints name snapshot files that outlive the
// process, so a Scenario field the fingerprint ignores would silently
// alias different scenarios to one cache entry — across restarts, with no
// recompile to save you. Every exported field, present and future, must
// perturb the fingerprint.
func TestFingerprintCoversEveryScenarioField(t *testing.T) {
	scType := reflect.TypeOf(Scenario{})
	zero := Scenario{}
	zeroFP := zero.fingerprint()
	for i := 0; i < scType.NumField(); i++ {
		field := scType.Field(i)
		if !field.IsExported() {
			continue
		}
		probe := reflect.New(scType).Elem()
		probe.Field(i).Set(sampleValue(field.Type))
		sc := probe.Addr().Interface().(*Scenario)
		if got := sc.fingerprint(); got == zeroFP {
			t.Errorf("Scenario.%s does not perturb fingerprint(): a new field must be added to the "+
				"fingerprint before it ships, or on-disk cache entries alias across scenarios", field.Name)
		}
	}
}

package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"netarch/internal/catalog"
	"netarch/internal/kb"
)

// caseStudyQueries returns the §5.1 query scenarios (plus the over-
// constrained Explain scenario) used by the differential tests. The KB is
// the case-study catalog extended with the two extra §5.1 workloads.
func caseStudyQueries() (*kb.KB, []struct {
	name string
	sc   Scenario
	kind string // "synthesize", "optimize", "explain"
}) {
	k := catalog.CaseStudy()
	k.Workloads = append(k.Workloads, catalog.BatchAnalyticsWorkload(), catalog.StorageWorkload())
	cases := []struct {
		name string
		sc   Scenario
		kind string
	}{
		{"q1-baseline", Scenario{Workloads: []string{"inference_app"}}, "optimize"},
		{"q1-grown-frozen", Scenario{
			Workloads: []string{"inference_app", "batch_analytics", "storage_backend"},
			Context:   map[string]bool{"pfc_enabled": true},
		}, "synthesize"},
		{"q2-keep-sonata", Scenario{
			Workloads:     []string{"inference_app"},
			Require:       []kb.Property{"flow_telemetry", "detect_queue_length"},
			PinnedSystems: []string{"sonata"},
		}, "optimize"},
		{"q2-replan-free", Scenario{
			Workloads: []string{"inference_app"},
			Require:   []kb.Property{"flow_telemetry", "detect_queue_length"},
		}, "optimize"},
		{"q3-without-cxl", Scenario{
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": false},
		}, "optimize"},
		{"q3-with-cxl", Scenario{
			Workloads:  []string{"inference_app", "batch_analytics", "storage_backend"},
			NumServers: 64,
			Context:    map[string]bool{"pfc_enabled": true, "cxl_pooling": true},
		}, "optimize"},
		{"overconstrained-explain", Scenario{
			Workloads: []string{"inference_app"},
			Context: map[string]bool{
				"pfc_enabled":      true,
				"flooding_enabled": true,
				"deadline_tight":   true,
			},
			Require: []kb.Property{"low_latency_stack"},
		}, "explain"},
	}
	return k, cases
}

// renderReport serializes everything semantically meaningful in a report
// — verdict, witness design, minimized explanation, deterministic solver
// work counters — while dropping wall-clock time.
func renderReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict=%s\n", rep.Verdict)
	if rep.Design != nil {
		fmt.Fprintf(&b, "systems=%v\nhardware=%v\ncontext=%v\nmetrics=%v\n",
			rep.Design.Systems, rep.Design.Hardware, rep.Design.Context, rep.Design.Metrics)
	}
	if rep.Explanation != nil {
		fmt.Fprintf(&b, "explanation=%v approx=%v\n", rep.Explanation.Conflicts, rep.Explanation.Approximate)
	}
	fmt.Fprintf(&b, "conflicts=%d decisions=%d\n", rep.SolverConflicts, rep.SolverDecisions)
	return b.String()
}

func renderOptimize(res *OptimizeResult) string {
	return fmt.Sprintf("%sobjectives=%v approx=%v\n",
		renderReport(&res.Report), res.ObjectiveValues, res.Approximate)
}

// execQuery executes one differential query against an engine and
// renders the outcome. Safe to call from any goroutine.
func execQuery(e *Engine, kind string, sc Scenario) (string, error) {
	switch kind {
	case "synthesize":
		rep, err := e.Synthesize(sc)
		if err != nil {
			return "", fmt.Errorf("synthesize: %w", err)
		}
		return renderReport(rep), nil
	case "optimize":
		res, err := e.Optimize(sc, []Objective{{Kind: MinimizeCost}})
		if err != nil {
			return "", fmt.Errorf("optimize: %w", err)
		}
		return renderOptimize(res), nil
	case "explain":
		ex, err := e.Explain(sc)
		if err != nil {
			return "", fmt.Errorf("explain: %w", err)
		}
		if ex == nil {
			return "feasible\n", nil
		}
		return fmt.Sprintf("explanation=%v approx=%v\n", ex.Conflicts, ex.Approximate), nil
	default:
		return "", fmt.Errorf("unknown kind %q", kind)
	}
}

// runQuery is execQuery for test main goroutines: errors are fatal.
func runQuery(t *testing.T, e *Engine, kind string, sc Scenario) string {
	t.Helper()
	out, err := execQuery(e, kind, sc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCacheDifferential is the tentpole correctness gate: for every §5.1
// query (and the over-constrained Explain scenario), a cache-disabled
// engine, a cold cache miss, and a warm cache hit must produce byte-
// identical verdicts, designs, objective values, and minimized cores.
// The warm run repeats to confirm clones never leak query state (an
// Optimize asserts bounds on its instance; a later identical query must
// not see them).
func TestCacheDifferential(t *testing.T) {
	k, cases := caseStudyQueries()
	cold, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	cold.SetCacheCapacity(0) // every query compiles from scratch
	warm, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runQuery(t, cold, tc.kind, tc.sc)
			miss := runQuery(t, warm, tc.kind, tc.sc)
			hit := runQuery(t, warm, tc.kind, tc.sc)
			if miss != want {
				t.Errorf("cold-cache miss diverges from uncached:\nuncached:\n%s\nmiss:\n%s", want, miss)
			}
			if hit != want {
				t.Errorf("warm-cache hit diverges from uncached:\nuncached:\n%s\nhit:\n%s", want, hit)
			}
		})
	}
	st := warm.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if st.Size == 0 || st.Size > st.Capacity {
		t.Errorf("cache size out of range: %+v", st)
	}
}

// TestCacheSharedBaseAcrossQueries verifies the amortization claim at the
// cache level: queries differing only in Context/Require/pins share one
// compiled base.
func TestCacheSharedBaseAcrossQueries(t *testing.T) {
	e := mustEngine(t, miniKB())
	scs := []Scenario{
		{Require: []kb.Property{"congestion_control"}},
		{Require: []kb.Property{"congestion_control"}, Context: map[string]bool{"x": true}},
		{Require: []kb.Property{"congestion_control"}, PinnedSystems: []string{"cubic"}},
		{Require: []kb.Property{"congestion_control"}, ForbiddenSystems: []string{"cubic"}},
	}
	for _, sc := range scs {
		if _, err := e.Synthesize(sc); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Misses != 1 {
		t.Errorf("expected one base compile across query-side variants, got %+v", st)
	}
	if st.Hits != int64(len(scs)-1) {
		t.Errorf("expected %d hits, got %+v", len(scs)-1, st)
	}
	if st.Size != 1 {
		t.Errorf("expected a single cached base, got %+v", st)
	}
}

// TestCacheInvalidate verifies InvalidateCache empties the cache (forcing
// recompiles that observe KB mutations) while keeping lifetime counters.
func TestCacheInvalidate(t *testing.T) {
	e := mustEngine(t, miniKB())
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	before := e.CacheStats()
	if before.Size != 1 || before.Misses != 1 {
		t.Fatalf("unexpected pre-invalidate stats: %+v", before)
	}
	e.InvalidateCache()
	if st := e.CacheStats(); st.Size != 0 || st.Misses != 1 {
		t.Fatalf("invalidate should clear bases, keep counters: %+v", st)
	}
	if _, err := e.Synthesize(sc); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("post-invalidate query should recompile: %+v", st)
	}
}

// TestCacheEviction verifies FIFO eviction at the configured capacity.
func TestCacheEviction(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetCacheCapacity(2)
	// Three distinct shapes (fleet size shapes the CNF).
	for _, n := range []int{0, 8, 16} {
		sc := Scenario{NumServers: n, Require: []kb.Property{"congestion_control"}}
		if _, err := e.Synthesize(sc); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Size != 2 || st.Misses != 3 {
		t.Fatalf("expected 2 cached bases after FIFO eviction of 3 shapes: %+v", st)
	}
	// The oldest shape was evicted: querying it again is a miss; the
	// newest is still a hit.
	if _, err := e.Synthesize(Scenario{NumServers: 0, Require: []kb.Property{"congestion_control"}}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Misses != 4 {
		t.Fatalf("evicted shape should recompile: %+v", st)
	}
	if _, err := e.Synthesize(Scenario{NumServers: 16, Require: []kb.Property{"congestion_control"}}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Hits != 1 {
		t.Fatalf("retained shape should hit: %+v", st)
	}
}

// TestCacheDisabledBypasses verifies SetCacheCapacity(0) restores the
// compile-every-query behavior.
func TestCacheDisabledBypasses(t *testing.T) {
	e := mustEngine(t, miniKB())
	e.SetCacheCapacity(0)
	sc := Scenario{Require: []kb.Property{"congestion_control"}}
	for i := 0; i < 3; i++ {
		if _, err := e.Synthesize(sc); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.CacheStats(); st.Size != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache must not retain or hit: %+v", st)
	}
}

// TestFingerprintDistinguishesShapes spot-checks that structurally
// different scenarios get different fingerprints and that query-side
// fields do not leak into the shape.
func TestFingerprintDistinguishesShapes(t *testing.T) {
	base := Scenario{Workloads: []string{"inference_app"}}
	distinct := []Scenario{
		{Workloads: []string{"inference_app"}, NumServers: 8},
		{Workloads: []string{"inference_app", "batch_analytics"}},
		{Workloads: []string{"inference_app"}, MaxCostUSD: 100},
		{Workloads: []string{"inference_app"}, RackServers: map[string]int{}},
		{Workloads: []string{"inference_app"}, Context: map[string]bool{"cxl_pooling": true}},
	}
	seen := map[string]int{}
	bs := baseShape(&base)
	baseFP := bs.fingerprint()
	seen[baseFP] = -1
	for i, sc := range distinct {
		shape := baseShape(&sc)
		fp := shape.fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("scenario %d collides with %d: %q", i, prev, fp)
		}
		seen[fp] = i
	}
	// Query-side fields must not change the shape.
	queryOnly := Scenario{
		Workloads:        []string{"inference_app"},
		Context:          map[string]bool{"deadline_tight": true},
		Require:          []kb.Property{"congestion_control"},
		PinnedSystems:    []string{"cubic"},
		ForbiddenSystems: []string{"dctcp"},
	}
	qs := baseShape(&queryOnly)
	if got := qs.fingerprint(); got != baseFP {
		t.Errorf("query-side fields leaked into the shape:\n%q\nvs\n%q", got, baseFP)
	}
}

// TestCacheConcurrentQueries hammers one engine from many goroutines —
// mixed feasible/infeasible queries over a handful of shapes, with a
// cache invalidation racing the queries. Run under -race this is the
// regression test for the clone-per-query isolation contract.
func TestCacheConcurrentQueries(t *testing.T) {
	k, cases := caseStudyQueries()
	e := mustEngine(t, k)
	// Sequential reference results.
	want := make([]string, len(cases))
	for i, tc := range cases {
		want[i] = runQuery(t, e, tc.kind, tc.sc)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				tc := cases[(g+i)%len(cases)]
				got, err := execQuery(e, tc.kind, tc.sc)
				if err != nil {
					errs <- fmt.Sprintf("goroutine %d query %s: %v", g, tc.name, err)
					continue
				}
				if got != want[(g+i)%len(cases)] {
					errs <- fmt.Sprintf("goroutine %d query %s diverged:\n%s", g, tc.name, got)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			e.InvalidateCache()
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestCacheHitCountingConcurrent(t *testing.T) {
	// Regression for the hit-counter hot path: warm cache hits used to
	// take the cache write lock just to bump an int, serializing every
	// concurrent warm query (and, worse, contending with InvalidateCache).
	// The counters are atomics now; this hammer asserts the exact lifetime
	// totals under concurrency and gives the race detector a workload.
	e := mustEngine(t, miniKB())
	sc := Scenario{Context: map[string]bool{"pfc_enabled": true}}
	if _, err := e.Synthesize(sc); err != nil { // prime: one miss
		t.Fatal(err)
	}
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := e.Synthesize(sc); err != nil {
					t.Errorf("warm query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.CacheStats()
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want exactly the priming compile", st.Misses)
	}
	if want := int64(goroutines * perG); st.Hits != want {
		t.Errorf("Hits = %d, want %d (no lost updates)", st.Hits, want)
	}
}

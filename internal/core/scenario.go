// Package core implements the paper's primary contribution: the
// lightweight automated reasoning engine — "a shim layer over SAT solvers"
// (§5.1) that compiles knowledge-base encodings into propositional logic
// plus bounded arithmetic and answers architects' queries:
//
//   - Check: is a concrete design compliant with every encoded fact?
//   - Synthesize: does any compliant design exist; produce a witness.
//   - Optimize: find the best design under lexicographic objectives
//     (Listing 3's "Optimize(latency > Hardware cost > monitoring)").
//   - Explain: when no design exists, name the minimal set of conflicting
//     requirements (§6 "Explainability").
//   - Enumerate: list distinct compliant designs as equivalence classes
//     over hardware choices (§6).
//
// A deliberately weak greedy reasoner (heuristic.go) reproduces the
// paper's LLM-as-reasoner baseline (§5.2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"netarch/internal/kb"
)

// Scenario describes one reasoning query: the environment, the fleet
// shape, extra requirements, and any pinned decisions.
type Scenario struct {
	// Context pins environment atoms (e.g. "deadline_tight": true).
	// Unpinned atoms are free: the solver may choose them, subject to
	// the rules.
	Context map[string]bool

	// NumServers and NumSwitches give the fleet shape used for resource
	// and cost accounting. Zero values default to 48 servers, 4 switches.
	NumServers  int
	NumSwitches int

	// Require lists objectives that must be solved in addition to the
	// workloads' needs.
	Require []kb.Property

	// Workloads to support, by name (must exist in the KB). Empty means
	// every workload in the KB.
	Workloads []string

	// PinnedSystems must be deployed; ForbiddenSystems must not.
	PinnedSystems    []string
	ForbiddenSystems []string

	// PinnedHardware fixes the SKU for a hardware kind ("I can't change
	// my servers", §5.1 query 1). AllowedHardware restricts the
	// candidate SKUs for a kind; nil means the whole catalog.
	PinnedHardware  map[kb.HardwareKind]string
	AllowedHardware map[kb.HardwareKind][]string

	// Bounds are hard performance bounds in the Listing 3 style: the
	// deployed system for the dimension must be at least as good as the
	// reference system under the resolved partial order.
	Bounds []PerformanceBound

	// MaxCostUSD caps total hardware cost; 0 means unlimited.
	MaxCostUSD int64

	// RackServers, when non-nil, enables rack-level placement checking:
	// it maps rack names to server counts, and every workload with a
	// DeployedAt list must fit its share of peak cores into those racks
	// (each rack holds RackServers[r] servers of the selected SKU).
	// Workloads without a DeployedAt list are unconstrained. Use
	// RacksOf to derive the map from a topo.Topology.
	RackServers map[string]int
}

// RacksOf derives a RackServers map from rack names and server counts
// produced by a topology (see topo.Topology.Racks / ServersInRack).
func RacksOf(racks []string, serversPerRack int) map[string]int {
	out := make(map[string]int, len(racks))
	for _, r := range racks {
		out[r] = serversPerRack
	}
	return out
}

// PerformanceBound requires the design to include, for the given order
// dimension, some system that is better than or equal to the reference
// (Listing 3: set_performance_bound(load_balancing, better_than=PacketSpray)).
type PerformanceBound struct {
	Dimension string
	Reference string
	// Strict requires strictly better (default: at least as good, i.e.
	// the reference itself also qualifies).
	Strict bool
}

// fingerprint returns a canonical string identifying the scenario for
// compiled-base caching: two scenarios with equal fingerprints compile to
// identical solver instances. Map-valued fields are serialized in sorted
// key order; list-valued fields keep their order, because workload and
// pin order determine selector order and hence the search trajectory.
// Every string element is quoted so names containing separator characters
// cannot collide.
func (s *Scenario) fingerprint() string {
	var b strings.Builder
	writeList := func(tag string, items []string) {
		b.WriteString(tag)
		b.WriteByte('=')
		for _, it := range items {
			fmt.Fprintf(&b, "%q,", it)
		}
		b.WriteByte(';')
	}
	writeBoolMap := func(tag string, m map[string]bool) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(tag)
		b.WriteByte('=')
		for _, k := range keys {
			fmt.Fprintf(&b, "%q:%t,", k, m[k])
		}
		b.WriteByte(';')
	}

	writeList("w", s.Workloads)
	fmt.Fprintf(&b, "ns=%d;nsw=%d;", s.numServers(), s.numSwitches())
	writeBoolMap("ctx", s.Context)
	reqs := make([]string, len(s.Require))
	for i, p := range s.Require {
		reqs[i] = string(p)
	}
	writeList("req", reqs)
	writeList("pin", s.PinnedSystems)
	writeList("forbid", s.ForbiddenSystems)

	kinds := make([]string, 0, len(s.PinnedHardware))
	for k := range s.PinnedHardware {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	b.WriteString("pinhw=")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%q:%q,", k, s.PinnedHardware[kb.HardwareKind(k)])
	}
	b.WriteByte(';')
	kinds = kinds[:0]
	for k := range s.AllowedHardware {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	b.WriteString("allowhw=")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%q:[", k)
		for _, name := range s.AllowedHardware[kb.HardwareKind(k)] {
			fmt.Fprintf(&b, "%q,", name)
		}
		b.WriteString("],")
	}
	b.WriteByte(';')

	b.WriteString("bounds=")
	for _, pb := range s.Bounds {
		fmt.Fprintf(&b, "%q>%q/%t,", pb.Dimension, pb.Reference, pb.Strict)
	}
	fmt.Fprintf(&b, ";maxcost=%d;", s.MaxCostUSD)

	if s.RackServers != nil {
		racks := make([]string, 0, len(s.RackServers))
		for r := range s.RackServers {
			racks = append(racks, r)
		}
		sort.Strings(racks)
		b.WriteString("racks=")
		for _, r := range racks {
			fmt.Fprintf(&b, "%q:%d,", r, s.RackServers[r])
		}
		b.WriteByte(';')
	}
	return b.String()
}

func (s *Scenario) numServers() int {
	if s.NumServers <= 0 {
		return 48
	}
	return s.NumServers
}

func (s *Scenario) numSwitches() int {
	if s.NumSwitches <= 0 {
		return 4
	}
	return s.NumSwitches
}

// Design is a concrete architecture: the deployed systems, the selected
// hardware SKU per kind, and the context the design operates in.
type Design struct {
	Systems  []string                   `json:"systems"`
	Hardware map[kb.HardwareKind]string `json:"hardware"`
	Context  map[string]bool            `json:"context,omitempty"`
	// Metrics are read off the model: used cores, cost, etc.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// HasSystem reports whether the design deploys the named system.
func (d *Design) HasSystem(name string) bool {
	for _, s := range d.Systems {
		if s == name {
			return true
		}
	}
	return false
}

// Verdict is the outcome of a query.
type Verdict int

// Query verdicts.
const (
	// Feasible: a compliant design exists (and is attached).
	Feasible Verdict = iota
	// Infeasible: no compliant design exists; see Explanation.
	Infeasible
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == Feasible {
		return "FEASIBLE"
	}
	return "INFEASIBLE"
}

// Report is the engine's answer to a query.
type Report struct {
	Verdict Verdict
	Design  *Design
	// Explanation names the conflicting constraint groups when
	// Infeasible (a minimal unsatisfiable subset).
	Explanation *Explanation
	// Spent accounts for the resources the query consumed (conflicts,
	// decisions, wall time). Populated on feasible, infeasible, and
	// degraded paths alike.
	Spent BudgetSpent
	// Stats from the underlying solver. Retained for compatibility;
	// they mirror Spent.Conflicts / Spent.Decisions.
	SolverConflicts int64
	SolverDecisions int64
}

// setSpent records the budget accounting on every report path.
func (r *Report) setSpent(sp BudgetSpent) {
	r.Spent = sp
	r.SolverConflicts = sp.Conflicts
	r.SolverDecisions = sp.Decisions
}

// Explanation is a minimal set of constraint groups that cannot hold
// together, each with the provenance note from the knowledge base.
type Explanation struct {
	Conflicts []ConflictItem
	// Approximate reports that minimization stopped early because a
	// resource budget tripped: Conflicts is still a correct
	// unsatisfiable set, but possibly not minimal.
	Approximate bool
	// ApproxCause names the tripped budget when Approximate ("deadline",
	// "conflict budget", ...).
	ApproxCause string
}

// ConflictItem names one constraint group participating in the conflict.
type ConflictItem struct {
	Name string // e.g. "rule:pfc_no_flooding", "system:simon:requires_caps"
	Note string // provenance / human reading
}

// String renders the explanation for architects.
func (e *Explanation) String() string {
	if e == nil || len(e.Conflicts) == 0 {
		return "no explanation available"
	}
	out := "requirements in conflict:\n"
	if e.Approximate {
		out = fmt.Sprintf("requirements in conflict (approximate: minimization stopped on %s):\n",
			e.ApproxCause)
	}
	for _, c := range e.Conflicts {
		out += fmt.Sprintf("  - %s", c.Name)
		if c.Note != "" {
			out += fmt.Sprintf(" (%s)", c.Note)
		}
		out += "\n"
	}
	return out
}

// Objective is one level of a lexicographic optimization goal.
type Objective struct {
	Kind ObjectiveKind
	// Dimension names the partial order for PreferOrder objectives.
	Dimension string
}

// ObjectiveKind selects what an optimization level minimizes.
type ObjectiveKind int

// Objective kinds.
const (
	// MinimizeCost minimizes total hardware cost in USD.
	MinimizeCost ObjectiveKind = iota
	// MinimizeCores minimizes total cores consumed by systems+workloads.
	MinimizeCores
	// MinimizeSystems minimizes the number of deployed systems.
	MinimizeSystems
	// PreferOrder minimizes the number of violated preference edges of
	// the named dimension: deploying a system while some strictly
	// better same-role alternative is left undeployed counts as one
	// violation.
	PreferOrder
	// MinimizePower minimizes the fleet's total power draw in watts
	// (per-SKU power_w rules of thumb times the deployment counts).
	MinimizePower
	// MinimizePorts minimizes the total switch port count — a proxy for
	// fabric size and cabling.
	MinimizePorts
)

// String names the objective kind.
func (k ObjectiveKind) String() string {
	switch k {
	case MinimizeCost:
		return "minimize_cost"
	case MinimizeCores:
		return "minimize_cores"
	case MinimizeSystems:
		return "minimize_systems"
	case PreferOrder:
		return "prefer_order"
	case MinimizePower:
		return "minimize_power"
	case MinimizePorts:
		return "minimize_ports"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"netarch/internal/sat"
)

// This file is the engine's resource-governance layer. Every query entry
// point has a *Ctx variant threading a context.Context plus an explicit
// Budget down into the SAT solver; a watchdog converts cancellation and
// deadline expiry into solver interrupts, and per-phase conflict/decision
// budgets arm the solver's work limits. Queries degrade gracefully
// instead of hanging or silently truncating: Unknown verdicts surface as
// a typed *ErrResourceExhausted, explanation minimization falls back to
// an unminimized-but-correct core (Explanation.Approximate), and
// enumeration reports truncation explicitly.

// Budget bounds the resources one query may spend. The zero value means
// unbounded (beyond any deadline already carried by the context).
type Budget struct {
	// Timeout caps wall-clock time for the whole query. It composes
	// with any deadline on the context — the earlier one wins. Zero
	// means no extra deadline.
	Timeout time.Duration
	// MaxConflicts bounds solver conflicts per phase: the main decision
	// and each degradable follow-up phase (explanation minimization, one
	// objective level, one enumeration class) get a fresh allowance.
	// Zero means unlimited.
	MaxConflicts int64
	// MaxDecisions bounds solver decisions per phase. Zero means
	// unlimited.
	MaxDecisions int64
}

// BudgetSpent reports the resources a query actually consumed. It is
// populated on every path — feasible, infeasible, and exhausted.
type BudgetSpent struct {
	Conflicts int64
	Decisions int64
	Wall      time.Duration
}

// String renders the spent budget.
func (b BudgetSpent) String() string {
	return fmt.Sprintf("%d conflicts, %d decisions, %s wall",
		b.Conflicts, b.Decisions, b.Wall.Round(time.Microsecond))
}

// ErrResourceExhausted reports that a query stopped because a resource
// budget tripped, naming which one and what was spent. Retrieve it with
// errors.As or IsResourceExhausted; when a context deadline or cancel
// was the cause, errors.Is(err, context.DeadlineExceeded) (respectively
// context.Canceled) also holds via Unwrap.
type ErrResourceExhausted struct {
	// Query names the entry point that stopped ("synthesize", "check",
	// "explain", "enumerate", "optimize", "suggest").
	Query string
	// Cause names the budget that tripped: "deadline", "canceled",
	// "conflict budget", "decision budget", or "interrupt".
	Cause string
	// Spent is what the query consumed before stopping.
	Spent BudgetSpent

	ctxErr error // the context error when it caused the stop
}

// Error renders the exhaustion report.
func (e *ErrResourceExhausted) Error() string {
	return fmt.Sprintf("core: %s stopped: %s exhausted after %s", e.Query, e.Cause, e.Spent)
}

// Unwrap exposes the underlying context error (nil for pure work-budget
// trips), so errors.Is against context.DeadlineExceeded/Canceled works.
func (e *ErrResourceExhausted) Unwrap() error { return e.ctxErr }

// IsResourceExhausted reports whether err is (or wraps) a resource-
// exhaustion error.
func IsResourceExhausted(err error) bool {
	var e *ErrResourceExhausted
	return errors.As(err, &e)
}

// governor threads one query's context and budgets into its solver. It
// arms a watchdog (context → Interrupt), re-arms per-phase work budgets,
// and translates Unknown verdicts into typed errors.
type governor struct {
	ctx    context.Context
	cancel context.CancelFunc
	budget Budget
	query  string
	start  time.Time
	solver *sat.Solver

	release func()
}

// govern attaches governance for one query to a freshly compiled solver
// and arms the first phase's budget. Callers must defer g.done().
func govern(ctx context.Context, query string, b Budget, s *sat.Solver) *governor {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &governor{ctx: ctx, budget: b, query: query, start: time.Now(), solver: s}
	if b.Timeout > 0 {
		g.ctx, g.cancel = context.WithTimeout(ctx, b.Timeout)
	}
	g.release = sat.Watch(g.ctx, s)
	g.phase()
	return g
}

// phase re-arms the per-phase budgets: the next solver calls get a fresh
// MaxConflicts/MaxDecisions allowance on top of whatever earlier phases
// spent. The wall-clock deadline is query-global and is NOT re-armed: a
// fired watchdog interrupt stays sticky across phases.
func (g *governor) phase() {
	g.solver.SetBudget(g.budget.MaxConflicts, g.budget.MaxDecisions)
}

// spent reports cumulative consumption since the query started (the
// solver is per-query, so its stats are the query's).
func (g *governor) spent() BudgetSpent {
	st := g.solver.Stats()
	return BudgetSpent{
		Conflicts: st.Conflicts,
		Decisions: st.Decisions,
		Wall:      time.Since(g.start),
	}
}

// cause names the reason for the solver's last Unknown, preferring the
// context's story (deadline vs cancel) when it fired.
func (g *governor) cause() (string, error) {
	return stopCause(g.solver, g.ctx)
}

// stopCause classifies a solver's last Unknown verdict under its
// governing context: work budgets are named directly; an interrupt is
// attributed to the context (deadline vs cancel) when it fired. Shared
// by the single-solver governor and the enumeration pool's enumGov.
func stopCause(s *sat.Solver, ctx context.Context) (string, error) {
	switch s.StopCause() {
	case sat.StopConflicts:
		return "conflict budget", nil
	case sat.StopDecisions:
		return "decision budget", nil
	}
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return "deadline", err
		}
		return "canceled", err
	}
	return "interrupt", nil
}

// exhausted builds the typed error for an Unknown verdict.
func (g *governor) exhausted() *ErrResourceExhausted {
	e := &ErrResourceExhausted{Query: g.query, Spent: g.spent()}
	e.Cause, e.ctxErr = g.cause()
	return e
}

// done releases the watchdog. Call exactly once, when the query ends.
func (g *governor) done() {
	g.release()
	if g.cancel != nil {
		g.cancel()
	}
}
